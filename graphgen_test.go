package graphgen

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"graphgen/internal/datagen"
)

// demoDB builds the toy DBLP database used across the public-API tests.
func demoDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	author, err := db.Create("Author", Column{Name: "id", Type: Int}, Column{Name: "name", Type: String})
	if err != nil {
		t.Fatal(err)
	}
	ap, err := db.Create("AuthorPub", Column{Name: "aid", Type: Int}, Column{Name: "pid", Type: Int})
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range []string{"ann", "bob", "cat", "dan", "eve"} {
		author.Insert(IntVal(int64(i+1)), StrVal(n))
	}
	for _, p := range [][2]int64{{1, 10}, {2, 10}, {3, 10}, {3, 20}, {4, 20}, {5, 30}} {
		ap.Insert(IntVal(p[0]), IntVal(p[1]))
	}
	return db
}

const demoQuery = `
Nodes(ID, Name) :- Author(ID, Name).
Edges(ID1, ID2) :- AuthorPub(ID1, PubID), AuthorPub(ID2, PubID).
`

func TestEngineExtractAndAPI(t *testing.T) {
	g, err := NewEngine(demoDB(t), WithForceCondensed(), WithoutPreprocessing()).Extract(demoQuery)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 5 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	if g.Representation() != CDUP {
		t.Fatalf("representation = %v", g.Representation())
	}
	if !g.ExistsEdge(1, 2) || g.ExistsEdge(1, 4) {
		t.Fatal("edge structure wrong")
	}
	var nbrs []NodeID
	it := g.Neighbors(3)
	for {
		id, ok := it.Next()
		if !ok {
			break
		}
		nbrs = append(nbrs, id)
	}
	if len(nbrs) != 3 { // 1, 2, 4
		t.Fatalf("neighbors(3) = %v", nbrs)
	}
	if name, ok := g.PropertyOf(2, "Name"); !ok || name != "bob" {
		t.Fatalf("PropertyOf = %q, %v", name, ok)
	}
	if g.ExtractionStats().LargeOutputJoins != 1 {
		t.Fatalf("stats = %+v", g.ExtractionStats())
	}
}

func TestGraphConversionsAgree(t *testing.T) {
	g, err := NewEngine(demoDB(t), WithForceCondensed(), WithoutPreprocessing()).Extract(demoQuery)
	if err != nil {
		t.Fatal(err)
	}
	wantEdges := g.LogicalEdges()
	wantPR := g.PageRank(10, 0.85)
	for _, rep := range []Representation{EXP, DEDUP1, DEDUP2, BITMAP, CDUP} {
		conv, err := g.As(rep)
		if err != nil {
			t.Fatalf("%v: %v", rep, err)
		}
		if conv.Representation() != rep {
			t.Fatalf("converted representation = %v, want %v", conv.Representation(), rep)
		}
		if got := conv.LogicalEdges(); got != wantEdges {
			t.Fatalf("%v: logical edges = %d, want %d", rep, got, wantEdges)
		}
		pr := conv.PageRank(10, 0.85)
		for id, want := range wantPR {
			if math.Abs(pr[id]-want) > 1e-9 {
				t.Fatalf("%v: pagerank(%d) = %g, want %g", rep, id, pr[id], want)
			}
		}
	}
}

func TestAsDedup1AllAlgorithms(t *testing.T) {
	g, err := NewEngine(demoDB(t), WithForceCondensed(), WithoutPreprocessing()).Extract(demoQuery)
	if err != nil {
		t.Fatal(err)
	}
	want := g.LogicalEdges()
	for _, alg := range []Dedup1Algorithm{GreedyVirtualFirst, NaiveVirtualFirst, NaiveRealFirst, GreedyRealFirst} {
		d, err := g.AsDedup1(alg, DedupOptions{Seed: 1})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if d.LogicalEdges() != want {
			t.Fatalf("%v: edges = %d, want %d", alg, d.LogicalEdges(), want)
		}
	}
}

func TestAnalysisEntryPoints(t *testing.T) {
	g, err := NewEngine(demoDB(t)).Extract(demoQuery)
	if err != nil {
		t.Fatal(err)
	}
	deg := g.Degrees()
	if deg[3] != 3 || deg[5] != 0 {
		t.Fatalf("degrees = %v", deg)
	}
	visited, depth := g.BFS(1)
	if visited != 4 || depth != 2 {
		t.Fatalf("BFS = %d/%d, want 4/2", visited, depth)
	}
	_, comps := g.ConnectedComponents()
	if comps != 2 { // {1,2,3,4} and {5}
		t.Fatalf("components = %d, want 2", comps)
	}
	if tri := g.CountTriangles(); tri != 1 { // {1,2,3}
		t.Fatalf("triangles = %d, want 1", tri)
	}
	labels, n := g.Communities(10, 1)
	if n <= 0 || len(labels) != g.NumVertices() {
		t.Fatalf("communities = %d over %d labels", n, len(labels))
	}
	cores := g.KCore()
	if cores[1] != 2 { // 1 sits in the {1,2,3} triangle
		t.Fatalf("kcore(1) = %d, want 2", cores[1])
	}
	if cc := g.ClusteringCoefficient(); cc <= 0 || cc > 1 {
		t.Fatalf("clustering coefficient = %g", cc)
	}
	hist := g.DegreeHistogram()
	if hist[3] != 1 { // vertex 3 has degree 3
		t.Fatalf("degree histogram = %v", hist)
	}
}

func TestSuggestPublicAPI(t *testing.T) {
	props, err := Suggest(demoDB(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(props) == 0 {
		t.Fatal("no proposals for the demo schema")
	}
	// The top proposal must be runnable end to end.
	g, err := NewEngine(demoDB(t)).Extract(props[0].Query)
	if err != nil {
		t.Fatalf("top proposal failed: %v\n%s", err, props[0].Query)
	}
	if g.NumVertices() == 0 {
		t.Fatal("proposal produced an empty graph")
	}
}

func TestVertexCentricViaPublicAPI(t *testing.T) {
	g, err := NewEngine(demoDB(t), WithForceCondensed(), WithoutPreprocessing()).Extract(demoQuery)
	if err != nil {
		t.Fatal(err)
	}
	vals, supersteps := g.RunVertexCentric(ComputeFunc(func(ctx *VertexContext) {
		ctx.SetValue(float64(ctx.Degree()))
		ctx.VoteToHalt()
	}), 2)
	if supersteps < 1 {
		t.Fatalf("supersteps = %d", supersteps)
	}
	if vals[3] != 3 {
		t.Fatalf("vertex-centric degree(3) = %v", vals[3])
	}
}

func TestMutationsViaPublicAPI(t *testing.T) {
	g, err := NewEngine(demoDB(t), WithForceCondensed(), WithoutPreprocessing()).Extract(demoQuery)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.AddVertex(100); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(100, 1); err != nil {
		t.Fatal(err)
	}
	if !g.ExistsEdge(100, 1) {
		t.Fatal("AddEdge failed")
	}
	if err := g.DeleteEdge(1, 3); err != nil {
		t.Fatal(err)
	}
	if g.ExistsEdge(1, 3) {
		t.Fatal("DeleteEdge failed")
	}
	if err := g.DeleteVertex(4); err != nil {
		t.Fatal(err)
	}
	g.Compact()
	if g.NumVertices() != 5 { // 1,2,3,5,100
		t.Fatalf("vertices = %d, want 5", g.NumVertices())
	}
}

func TestSerializationViaPublicAPI(t *testing.T) {
	g, err := NewEngine(demoDB(t)).Extract(demoQuery)
	if err != nil {
		t.Fatal(err)
	}
	var el, js bytes.Buffer
	if err := g.WriteEdgeList(&el); err != nil {
		t.Fatal(err)
	}
	if err := g.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if el.Len() == 0 || js.Len() == 0 {
		t.Fatal("empty serialization")
	}
}

func TestValidateClassifiesRules(t *testing.T) {
	ok, err := Validate(demoQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(ok) != 1 || !ok[0] {
		t.Fatalf("Validate = %v, want [true]", ok)
	}
	cyclic := `
Nodes(ID) :- R(ID).
Edges(A, B) :- R(A, X), S(X, B), T(A, B).
`
	ok, err = Validate(cyclic)
	if err != nil {
		t.Fatal(err)
	}
	if ok[0] {
		t.Fatal("cyclic rule classified as Case 1")
	}
	if _, err := Validate("garbage("); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestMaxEdgesGuardViaPublicAPI(t *testing.T) {
	db := datagen.TPCHLike(1, 30, 200, 3, 4)
	_, err := NewEngine(db, WithForceExpand(), WithMaxEdges(50)).Extract(datagen.QuerySamePart)
	if err == nil {
		t.Fatal("expected the memory guard to trip")
	}
}

func TestExtractBatched(t *testing.T) {
	db := demoDB(t)
	engine := NewEngine(db, WithForceCondensed(), WithoutPreprocessing())
	queries := []string{demoQuery, demoQuery, demoQuery}
	// Unbounded budget: one batch.
	batches, err := engine.ExtractBatched(queries, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != 1 || len(batches[0]) != 3 {
		t.Fatalf("batches = %d/%v", len(batches), len(batches[0]))
	}
	// A budget that fits roughly one graph: three batches.
	size := batches[0][0].MemBytes()
	batches, err = engine.ExtractBatched(queries, size+size/2)
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != 3 {
		t.Fatalf("batches = %d, want 3", len(batches))
	}
	// A budget below a single graph: error.
	if _, err := engine.ExtractBatched(queries, 16); err == nil {
		t.Fatal("expected over-budget error")
	}
	// A broken query surfaces with its index.
	if _, err := engine.ExtractBatched([]string{demoQuery, "broken("}, 0); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestCondensedSerializationPublicAPI(t *testing.T) {
	g, err := NewEngine(demoDB(t), WithForceCondensed(), WithoutPreprocessing()).Extract(demoQuery)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := g.As(DEDUP1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d1.WriteCondensed(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCondensed(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Representation() != DEDUP1 {
		t.Fatalf("representation = %v", back.Representation())
	}
	if back.LogicalEdges() != d1.LogicalEdges() {
		t.Fatalf("edges = %d, want %d", back.LogicalEdges(), d1.LogicalEdges())
	}
	// LoadEdgeList round trip.
	var el bytes.Buffer
	if err := g.WriteEdgeList(&el); err != nil {
		t.Fatal(err)
	}
	exp, err := LoadEdgeList(&el)
	if err != nil {
		t.Fatal(err)
	}
	if exp.LogicalEdges() != g.LogicalEdges() {
		t.Fatalf("edge list round trip: %d vs %d", exp.LogicalEdges(), g.LogicalEdges())
	}
}

func TestWrapCoreAndUnsupported(t *testing.T) {
	g := WrapCore(datagen.Condensed(datagen.CondensedConfig{
		Seed: 1, RealNodes: 10, VirtualNodes: 4, MeanSize: 3, StdDev: 1,
	}))
	if g.Core() == nil {
		t.Fatal("Core accessor broken")
	}
	if _, err := g.As(Representation(99)); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("err = %v, want ErrUnsupported", err)
	}
}
