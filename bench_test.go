package graphgen

// Benchmark harness: one benchmark family per table/figure of the paper's
// evaluation (Section 6). The heavyweight paper-style rows are produced by
// cmd/experiments; these testing.B benchmarks time the same operations on
// quick-scale datasets and report the size metrics the tables track, so
// `go test -bench=. -benchmem` regenerates the comparisons.

import (
	"fmt"
	"sync"
	"testing"

	"graphgen/internal/algo"
	"graphgen/internal/bsp"
	"graphgen/internal/core"
	"graphgen/internal/datalog"
	"graphgen/internal/dedup"
	"graphgen/internal/experiments"
	"graphgen/internal/extract"
	"graphgen/internal/vertexcentric"
	"graphgen/internal/vminer"
)

var (
	benchOnce   sync.Once
	benchGraphs map[string]*core.Graph // small-dataset C-DUP graphs
	benchNames  []string
)

func benchSetup(b *testing.B) {
	b.Helper()
	benchOnce.Do(func() {
		benchNames, benchGraphs = experimentsSmall()
	})
}

func experimentsSmall() ([]string, map[string]*core.Graph) {
	s := experiments.Scale{Quick: true}
	dbs, condensed := experiments.SmallDatasets(s)
	graphs := make(map[string]*core.Graph)
	for _, d := range dbs {
		g, _, err := experiments.ExtractCondensed(d)
		if err != nil {
			panic(err)
		}
		graphs[d.Name] = g
	}
	for name, g := range condensed {
		graphs[name] = g
	}
	return []string{"DBLP", "IMDB", "Synthetic_1", "Synthetic_2"}, graphs
}

// BenchmarkTable1_Extraction times condensed vs full extraction for the
// four Table 1 workloads and reports the resulting edge counts.
func BenchmarkTable1_Extraction(b *testing.B) {
	for _, d := range experiments.Table1Datasets(experiments.Scale{Quick: true}) {
		prog, err := datalog.Parse(d.Query)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(d.Name+"/Condensed", func(b *testing.B) {
			var edges int64
			for i := 0; i < b.N; i++ {
				opts := extract.DefaultOptions()
				opts.ForceCondensed = true
				opts.SkipPreprocess = true
				res, err := extract.Extract(d.DB, prog, opts)
				if err != nil {
					b.Fatal(err)
				}
				edges = res.Graph.RepEdges()
			}
			b.ReportMetric(float64(edges), "edges")
		})
		b.Run(d.Name+"/FullGraph", func(b *testing.B) {
			var edges int64
			for i := 0; i < b.N; i++ {
				opts := extract.DefaultOptions()
				opts.ForceExpand = true
				res, err := extract.Extract(d.DB, prog, opts)
				if err != nil {
					b.Fatal(err)
				}
				edges = res.Graph.RepEdges()
			}
			b.ReportMetric(float64(edges), "edges")
		})
	}
}

// BenchmarkTable2_Shapes reports the Table 2 dataset shape metrics.
func BenchmarkTable2_Shapes(b *testing.B) {
	benchSetup(b)
	for _, name := range benchNames {
		g := benchGraphs[name]
		b.Run(name, func(b *testing.B) {
			var edges int64
			for i := 0; i < b.N; i++ {
				edges = g.LogicalEdges()
			}
			b.ReportMetric(float64(g.NumRealNodes()), "realnodes")
			b.ReportMetric(float64(g.NumVirtualNodes()), "virtnodes")
			b.ReportMetric(float64(edges), "expedges")
		})
	}
}

type repBuild struct {
	name  string
	build func(*core.Graph) (*core.Graph, error)
}

func benchRepBuilders() []repBuild {
	o := dedup.Options{Seed: 7}
	return []repBuild{
		{"C-DUP", func(g *core.Graph) (*core.Graph, error) { return g.Clone(), nil }},
		{"DEDUP-1", func(g *core.Graph) (*core.Graph, error) {
			out, _, err := dedup.Dedup1GreedyVirtualFirst(g, o)
			return out, err
		}},
		{"DEDUP-2", func(g *core.Graph) (*core.Graph, error) {
			out, _, err := dedup.Dedup2Greedy(g, o)
			return out, err
		}},
		{"BITMAP-1", func(g *core.Graph) (*core.Graph, error) {
			out, _, err := dedup.Bitmap1(g)
			return out, err
		}},
		{"BITMAP-2", func(g *core.Graph) (*core.Graph, error) {
			out, _, err := dedup.Bitmap2(g, o)
			return out, err
		}},
		{"EXP", func(g *core.Graph) (*core.Graph, error) { return g.Expand(0) }},
		{"VMiner", func(g *core.Graph) (*core.Graph, error) {
			out, _, err := vminer.Mine(g, vminer.Options{})
			return out, err
		}},
	}
}

// BenchmarkFigure10_Compression times building each representation and
// reports its node/edge/memory sizes (Figure 10's bars).
func BenchmarkFigure10_Compression(b *testing.B) {
	benchSetup(b)
	for _, name := range benchNames {
		g := benchGraphs[name]
		for _, rb := range benchRepBuilders() {
			b.Run(name+"/"+rb.name, func(b *testing.B) {
				var out *core.Graph
				for i := 0; i < b.N; i++ {
					var err error
					out, err = rb.build(g)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(out.TotalNodes()), "nodes")
				b.ReportMetric(float64(out.RepEdges()), "edges")
				b.ReportMetric(float64(out.MemBytes()), "membytes")
			})
		}
	}
}

// builtReps caches converted representations of the benchmark graphs.
var (
	builtOnce sync.Once
	builtReps map[string]map[string]*core.Graph
)

func benchReps(b *testing.B) map[string]map[string]*core.Graph {
	b.Helper()
	benchSetup(b)
	builtOnce.Do(func() {
		builtReps = make(map[string]map[string]*core.Graph)
		for _, name := range benchNames {
			g := benchGraphs[name]
			reps := map[string]*core.Graph{"C-DUP": g}
			for _, rb := range benchRepBuilders()[1:6] { // skip clone & VMiner
				if out, err := rb.build(g); err == nil {
					reps[rb.name] = out
				}
			}
			builtReps[name] = reps
		}
	})
	return builtReps
}

// BenchmarkFigure11_Algorithms times Degree (vertex-centric), BFS, and
// PageRank per representation (Figure 11's bars).
func BenchmarkFigure11_Algorithms(b *testing.B) {
	reps := benchReps(b)
	for _, name := range []string{"DBLP", "Synthetic_1"} {
		for rep, g := range reps[name] {
			b.Run(name+"/"+rep+"/Degree", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					vertexcentric.Run(g, vertexcentric.DegreeProgram(), vertexcentric.Options{Workers: 2})
				}
			})
			b.Run(name+"/"+rep+"/BFS", func(b *testing.B) {
				src := g.RealID(0)
				for i := 0; i < b.N; i++ {
					algo.BFS(g, src)
				}
			})
			b.Run(name+"/"+rep+"/PageRank", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					vertexcentric.Run(g, vertexcentric.PageRankProgram(g, 5, 0.85), vertexcentric.Options{Workers: 2})
				}
			})
		}
	}
}

// BenchmarkFigure12a_Dedup times every deduplication algorithm (Figure
// 12a's log-scale bars) and reports the output edge count.
func BenchmarkFigure12a_Dedup(b *testing.B) {
	benchSetup(b)
	type namedAlgo struct {
		name string
		run  func(*core.Graph) (*core.Graph, error)
	}
	o := dedup.Options{Ordering: dedup.OrderRandom, Seed: 7}
	algos := []namedAlgo{
		{"BITMAP-1", func(g *core.Graph) (*core.Graph, error) { out, _, err := dedup.Bitmap1(g); return out, err }},
		{"BITMAP-2", func(g *core.Graph) (*core.Graph, error) { out, _, err := dedup.Bitmap2(g, o); return out, err }},
		{"NaiveVNF", func(g *core.Graph) (*core.Graph, error) {
			out, _, err := dedup.Dedup1NaiveVirtualFirst(g, o)
			return out, err
		}},
		{"NaiveRNF", func(g *core.Graph) (*core.Graph, error) {
			out, _, err := dedup.Dedup1NaiveRealFirst(g, o)
			return out, err
		}},
		{"GreedyRNF", func(g *core.Graph) (*core.Graph, error) {
			out, _, err := dedup.Dedup1GreedyRealFirst(g, o)
			return out, err
		}},
		{"GreedyVNF", func(g *core.Graph) (*core.Graph, error) {
			out, _, err := dedup.Dedup1GreedyVirtualFirst(g, o)
			return out, err
		}},
		{"DEDUP2", func(g *core.Graph) (*core.Graph, error) { out, _, err := dedup.Dedup2Greedy(g, o); return out, err }},
	}
	for _, name := range benchNames {
		g := benchGraphs[name]
		for _, a := range algos {
			b.Run(name+"/"+a.name, func(b *testing.B) {
				var out *core.Graph
				for i := 0; i < b.N; i++ {
					var err error
					out, err = a.run(g)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(out.RepEdges()), "edges")
			})
		}
	}
}

// BenchmarkFigure12b_Ordering times Greedy Virtual Nodes First under the
// three processing orders (Figure 12b).
func BenchmarkFigure12b_Ordering(b *testing.B) {
	benchSetup(b)
	g := benchGraphs["Synthetic_1"]
	for _, ord := range []dedup.Ordering{dedup.OrderRandom, dedup.OrderSizeAsc, dedup.OrderSizeDesc} {
		b.Run(ord.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := dedup.Dedup1GreedyVirtualFirst(g, dedup.Options{Ordering: ord, Seed: 7}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable3_Large times Degree/PageRank/BFS on C-DUP, BITMAP, and EXP
// for the large datasets (Table 3's columns).
func BenchmarkTable3_Large(b *testing.B) {
	for _, d := range experiments.LargeDatasets(experiments.Scale{Quick: true}) {
		prog, err := datalog.Parse(d.Query)
		if err != nil {
			b.Fatal(err)
		}
		opts := extract.DefaultOptions()
		opts.ForceCondensed = true
		opts.SkipPreprocess = true
		res, err := extract.Extract(d.DB, prog, opts)
		if err != nil {
			b.Fatal(err)
		}
		cdup := res.Graph
		reps := map[string]*core.Graph{"C-DUP": cdup}
		if bm, _, err := dedup.Bitmap2(cdup, dedup.Options{Seed: 3}); err == nil {
			reps["BITMAP"] = bm
		}
		if exp, err := cdup.Expand(d.ExpBudget); err == nil {
			reps["EXP"] = exp
		}
		for rep, g := range reps {
			b.Run(d.Name+"/"+rep+"/Degree", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					algo.Degrees(g)
				}
				b.ReportMetric(float64(g.MemBytes()), "membytes")
			})
			b.Run(d.Name+"/"+rep+"/PageRank", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					algo.PageRank(g, 3, 0.85)
				}
			})
			b.Run(d.Name+"/"+rep+"/BFS", func(b *testing.B) {
				src := g.RealID(0)
				for i := 0; i < b.N; i++ {
					algo.BFS(g, src)
				}
			})
		}
	}
}

// BenchmarkFigure13_Micro times the Graph API microbenchmarks per
// representation (Figure 13).
func BenchmarkFigure13_Micro(b *testing.B) {
	reps := benchReps(b)
	for _, name := range benchNames {
		for rep, g := range reps[name] {
			ids := make([]int64, 0, 64)
			g.ForEachReal(func(r int32) bool {
				ids = append(ids, g.RealID(r))
				return len(ids) < 64
			})
			b.Run(name+"/"+rep+"/GetNeighbors", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					id := ids[i%len(ids)]
					r, _ := g.RealIndex(id)
					g.ForNeighbors(r, func(int32) bool { return true })
				}
			})
			b.Run(name+"/"+rep+"/ExistsEdge", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					g.ExistsEdge(ids[i%len(ids)], ids[(i+1)%len(ids)])
				}
			})
			b.Run(name+"/"+rep+"/AddDeleteEdge", func(b *testing.B) {
				work := g.Clone()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					u, v := ids[i%len(ids)], ids[(i+7)%len(ids)]
					if work.ExistsEdge(u, v) {
						continue
					}
					if err := work.AddEdge(u, v); err != nil {
						b.Fatal(err)
					}
					if err := work.DeleteEdge(u, v); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTable4_BSP times the Giraph-style runs per representation and
// reports the message counts (Table 4).
func BenchmarkTable4_BSP(b *testing.B) {
	reps := benchReps(b)
	for _, name := range []string{"IMDB", "Synthetic_2"} {
		for _, rep := range []string{"EXP", "DEDUP-1", "BITMAP-2"} {
			g, ok := reps[name][rep]
			if !ok {
				continue
			}
			b.Run(name+"/"+rep+"/Degree", func(b *testing.B) {
				var msgs int64
				for i := 0; i < b.N; i++ {
					res, err := bsp.Degree(g)
					if err != nil {
						b.Fatal(err)
					}
					msgs = res.Messages
				}
				b.ReportMetric(float64(msgs), "messages")
			})
			b.Run(name+"/"+rep+"/ConComp", func(b *testing.B) {
				var msgs int64
				for i := 0; i < b.N; i++ {
					res, err := bsp.Components(g)
					if err != nil {
						b.Fatal(err)
					}
					msgs = res.Messages
				}
				b.ReportMetric(float64(msgs), "messages")
			})
			b.Run(name+"/"+rep+"/PageRank", func(b *testing.B) {
				var msgs int64
				for i := 0; i < b.N; i++ {
					res, err := bsp.PageRank(g, 3, 0.85)
					if err != nil {
						b.Fatal(err)
					}
					msgs = res.Messages
				}
				b.ReportMetric(float64(msgs), "messages")
			})
		}
	}
}

// BenchmarkTable5_Shapes reports the per-representation sizes of the BSP
// datasets (Table 5's rows) while timing the size computation.
func BenchmarkTable5_Shapes(b *testing.B) {
	reps := benchReps(b)
	for _, name := range []string{"IMDB", "Synthetic_2"} {
		for rep, g := range reps[name] {
			b.Run(name+"/"+rep, func(b *testing.B) {
				var edges int64
				for i := 0; i < b.N; i++ {
					edges = g.RepEdges()
				}
				b.ReportMetric(float64(g.TotalNodes()), "nodes")
				b.ReportMetric(float64(edges), "edges")
			})
		}
	}
}

// BenchmarkParallelism times the three parallelized hot paths — extraction,
// BSP PageRank, and dedup conversion — at Parallelism 1 vs 4 on the
// full-scale (non-Quick) large datasets, quantifying the worker-pool
// speedup. On multi-core hardware the P4 rows should run >= 1.5x faster
// than P1; on a single-core runner they only measure the staging overhead.
func BenchmarkParallelism(b *testing.B) {
	large := experiments.LargeDatasets(experiments.Scale{})
	d := large[2] // Single_1: the widest join fan-out of the Table 3 set
	prog, err := datalog.Parse(d.Query)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("Extraction/%s/P%d", d.Name, workers), func(b *testing.B) {
			opts := extract.DefaultOptions()
			opts.ForceCondensed = true
			opts.SkipPreprocess = true
			opts.Workers = workers
			for i := 0; i < b.N; i++ {
				if _, err := extract.Extract(d.DB, prog, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	opts := extract.DefaultOptions()
	opts.ForceCondensed = true
	opts.SkipPreprocess = true
	res, err := extract.Extract(d.DB, prog, opts)
	if err != nil {
		b.Fatal(err)
	}
	cdup := res.Graph
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("DedupBitmap2/%s/P%d", d.Name, workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := dedup.Bitmap2(cdup, dedup.Options{Seed: 3, Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	bm, _, err := dedup.Bitmap2(cdup, dedup.Options{Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("PageRankBSP/%s/P%d", d.Name, workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bsp.PageRank(bm, 5, 0.85, bsp.Options{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("ComponentsBSP/%s/P%d", d.Name, workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bsp.Components(cdup, bsp.Options{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable6_Selectivity times the planner's selectivity analysis
// (catalog distinct counts) for the Table 6 datasets.
func BenchmarkTable6_Selectivity(b *testing.B) {
	for _, d := range experiments.LargeDatasets(experiments.Scale{Quick: true}) {
		b.Run(d.Name, func(b *testing.B) {
			prog, err := datalog.Parse(d.Query)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				chain, err := datalog.AnalyzeChain(prog.Edges[0])
				if err != nil {
					b.Fatal(err)
				}
				for _, step := range chain.Steps {
					t, err := d.DB.Table(step.Atom.Pred)
					if err != nil {
						b.Fatal(err)
					}
					_ = t.NumRows()
				}
			}
		})
	}
}
