// Command graphload drives a sustained mixed workload against a
// graphgend endpoint and reports per-op-class latency percentiles in a
// form the cmd/benchjson pipeline ingests.
//
// It replays three op classes against one live graph session, with a
// configurable weight mix:
//
//	read     GET  /v1/graphs/{s}/neighbors?v=ID   point lookups on random vertices
//	mutate   POST /v1/db/Knows/insert|delete      paired insert/delete of synthetic
//	                                           edges (the live session follows)
//	analyze  GET  /v1/graphs/{s}/analyze/...      rotation over degree, components,
//	                                           sssp, closeness
//
// With no -addr it generates an SNB social network (internal/datagen)
// at the requested scale factor and serves it from an in-process
// server, so a single command is a self-contained load test:
//
//	graphload -sf 0.1 -duration 5s
//	graphload -addr localhost:8080 -clients 16 -mix read=80,mutate=15,analyze=5
//
// Alongside the human summary it emits one machine-readable line per op
// class:
//
//	LOADSTAT graphload/read ops=5000 errors=0 p50_ns=120000 p95_ns=300000 p99_ns=500000 ops_per_s=1234.5
//
// which `benchjson convert` folds into the benchmark artifact (schema
// v2 "latencies") next to the ns/op rows, and `benchjson compare`
// gates on p99. Exit codes follow the repo convention: 0 on success
// (any op errors make the run a failure), 1 on runtime errors, 2 on
// usage errors; -h exits 0.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"graphgen"
	"graphgen/internal/datagen"
	"graphgen/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// Op classes, in reporting order.
const (
	classRead = iota
	classMutate
	classAnalyze
	numClasses
)

var classNames = [numClasses]string{"read", "mutate", "analyze"}

// mutIDBase keeps synthetic mutation vertex IDs clear of every
// generated entity range (persons, forums at 1e7, posts at 2e7).
const mutIDBase = int64(900_000_000)

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("graphload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "", "graphgend endpoint (host:port or URL); empty runs an in-process server")
	sf := fs.Float64("sf", 0.1, "SNB scale factor for the in-process server (ignored with -addr)")
	seed := fs.Int64("seed", 1, "generator and client RNG seed")
	clients := fs.Int("clients", 8, "concurrent client connections")
	duration := fs.Duration("duration", 10*time.Second, "sustained load duration")
	mixSpec := fs.String("mix", "read=60,mutate=30,analyze=10", "op class weights as class=weight pairs")
	sessName := fs.String("session", "load", "live session name created on the endpoint")
	outPath := fs.String("out", "", "also append the LOADSTAT rows to this file")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	usage := func(format string, a ...any) int {
		fmt.Fprintf(stderr, "graphload: "+format+"\n", a...)
		return 2
	}
	if fs.NArg() > 0 {
		return usage("unexpected arguments: %s", strings.Join(fs.Args(), " "))
	}
	if *clients < 1 || *clients > 4096 {
		return usage("-clients must be in [1,4096], got %d", *clients)
	}
	if *duration <= 0 {
		return usage("-duration must be positive, got %v", *duration)
	}
	if *addr == "" && *sf <= 0 {
		return usage("-sf must be positive for the in-process server, got %g", *sf)
	}
	mix, err := parseMix(*mixSpec)
	if err != nil {
		return usage("%v", err)
	}

	base := *addr
	if base == "" {
		db := datagen.SNB(datagen.SNBConfig{Seed: *seed, ScaleFactor: *sf})
		srv := server.New(graphgen.NewEngine(db), server.Options{})
		defer srv.Close()
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		base = ts.URL
	} else if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")

	lg := &loadgen{
		base:    base,
		session: *sessName,
		hc: &http.Client{
			Timeout: 30 * time.Second,
			Transport: &http.Transport{
				MaxIdleConns:        *clients * 2,
				MaxIdleConnsPerHost: *clients * 2,
			},
		},
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "graphload:", err)
		return 1
	}
	if err := lg.health(); err != nil {
		return fail(err)
	}
	vertices, err := lg.createSession()
	if err != nil {
		return fail(err)
	}
	defer lg.deleteSession()

	where := "remote"
	if *addr == "" {
		where = fmt.Sprintf("in-process, snb sf=%g", *sf)
	}
	fmt.Fprintf(stdout, "graphload: %d clients for %v against %s (%s; session %q; %d vertices; mix %s)\n",
		*clients, *duration, base, where, *sessName, vertices, *mixSpec)

	workers := make([]*worker, *clients)
	start := time.Now()
	deadline := start.Add(*duration)
	var wg sync.WaitGroup
	for i := range workers {
		workers[i] = &worker{
			id:    i,
			lg:    lg,
			rng:   rand.New(rand.NewSource(*seed*1_000_003 + int64(i))),
			maxID: max(vertices, 1),
			mix:   mix,
		}
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			w.loop(deadline)
		}(workers[i])
	}
	wg.Wait()
	elapsed := time.Since(start)

	var loadstats []string
	totalErrors := int64(0)
	var firstErr error
	for class := 0; class < numClasses; class++ {
		if mix.weights[class] == 0 {
			continue
		}
		var lat []int64
		var errs int64
		for _, w := range workers {
			b := &w.buckets[class]
			lat = append(lat, b.lat...)
			errs += b.errors
			if firstErr == nil && b.lastErr != nil {
				firstErr = b.lastErr
			}
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		ops := int64(len(lat))
		totalErrors += errs
		p50, p95, p99 := pct(lat, 50), pct(lat, 95), pct(lat, 99)
		opsPerSec := float64(ops) / elapsed.Seconds()
		name := classNames[class]
		fmt.Fprintf(stdout, "graphload: %-7s ops=%d errors=%d p50=%v p95=%v p99=%v (%s ops/s)\n",
			name, ops, errs, time.Duration(p50), time.Duration(p95), time.Duration(p99), fmtF(opsPerSec))
		loadstats = append(loadstats, fmt.Sprintf(
			"LOADSTAT graphload/%s ops=%d errors=%d p50_ns=%d p95_ns=%d p99_ns=%d ops_per_s=%s",
			name, ops, errs, p50, p95, p99, fmtF(opsPerSec)))
	}
	for _, row := range loadstats {
		fmt.Fprintln(stdout, row)
	}
	if *outPath != "" {
		f, err := os.OpenFile(*outPath, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			return fail(err)
		}
		for _, row := range loadstats {
			fmt.Fprintln(f, row)
		}
		if err := f.Close(); err != nil {
			return fail(err)
		}
	}
	if totalErrors > 0 {
		return fail(fmt.Errorf("%d op errors (first: %v)", totalErrors, firstErr))
	}
	fmt.Fprintf(stdout, "graphload: OK, zero op errors in %v\n", elapsed.Round(time.Millisecond))
	return 0
}

// --- mix parsing ---

type mixWeights struct {
	weights [numClasses]int
	total   int
}

// parseMix parses "read=60,mutate=30,analyze=10". Classes may be
// omitted (weight 0); at least one weight must be positive.
func parseMix(spec string) (mixWeights, error) {
	var m mixWeights
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return m, fmt.Errorf("-mix entry %q is not class=weight", part)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 0 {
			return m, fmt.Errorf("-mix weight for %q must be a non-negative integer, got %q", name, val)
		}
		class := -1
		for c, n := range classNames {
			if n == name {
				class = c
			}
		}
		if class < 0 {
			return m, fmt.Errorf("-mix class %q unknown (valid: %s)", name, strings.Join(classNames[:], ", "))
		}
		m.weights[class] = w
	}
	for _, w := range m.weights {
		m.total += w
	}
	if m.total == 0 {
		return m, fmt.Errorf("-mix %q has no positive weights", spec)
	}
	return m, nil
}

// pct returns the nearest-rank q-th percentile of an ascending-sorted
// slice (0 when empty).
func pct(sorted []int64, q int) int64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := (q*len(sorted) + 99) / 100
	if idx < 1 {
		idx = 1
	}
	return sorted[idx-1]
}

// fmtF renders a rate with one decimal and never in exponent notation
// (the LOADSTAT grammar only admits [0-9.]).
func fmtF(v float64) string { return strconv.FormatFloat(v, 'f', 1, 64) }

// --- HTTP plumbing ---

// loadgen holds what every worker shares: the endpoint, the HTTP client
// (pooled connections), and the session name.
type loadgen struct {
	base    string
	session string
	hc      *http.Client
}

func trimBody(b []byte) string {
	s := strings.TrimSpace(string(b))
	if len(s) > 200 {
		s = s[:200] + "..."
	}
	return s
}

// reqID extracts the server-assigned request id from a failed response
// (header first, error envelope as fallback) so an op error in the
// summary can be joined to the daemon's log line for that request.
func reqID(resp *http.Response, body []byte) string {
	if id := resp.Header.Get("X-Request-Id"); id != "" {
		return id
	}
	var env struct {
		Error struct {
			RequestID string `json:"request_id"`
		} `json:"error"`
	}
	if json.Unmarshal(body, &env) == nil {
		return env.Error.RequestID
	}
	return ""
}

func reqIDSuffix(resp *http.Response, body []byte) string {
	if id := reqID(resp, body); id != "" {
		return " [request_id " + id + "]"
	}
	return ""
}

// getJSON GETs a path, requires 200, and decodes the body into v.
func (lg *loadgen) getJSON(path string, v any) error {
	resp, err := lg.hc.Get(lg.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s: %s%s", path, resp.Status, trimBody(body), reqIDSuffix(resp, body))
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("GET %s: malformed reply: %v", path, err)
	}
	return nil
}

// postJSON POSTs a JSON body, requires one of the given statuses, and
// decodes the reply into v.
func (lg *loadgen) postJSON(path string, req any, v any, okStatus ...int) error {
	payload, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, err := lg.hc.Post(lg.base+path, "application/json", strings.NewReader(string(payload)))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return err
	}
	ok := false
	for _, s := range okStatus {
		if resp.StatusCode == s {
			ok = true
		}
	}
	if !ok {
		return fmt.Errorf("POST %s: %s: %s%s", path, resp.Status, trimBody(body), reqIDSuffix(resp, body))
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("POST %s: malformed reply: %v", path, err)
	}
	return nil
}

func (lg *loadgen) health() error {
	var body struct {
		Status string `json:"status"`
	}
	if err := lg.getJSON("/v1/healthz", &body); err != nil {
		return fmt.Errorf("endpoint %s unreachable or unhealthy: %w", lg.base, err)
	}
	if body.Status != "ok" {
		return fmt.Errorf("endpoint %s reported status %q", lg.base, body.Status)
	}
	return nil
}

// createSession creates the live Knows session the read and analyze
// ops target and returns its vertex count. A leftover session from an
// earlier run (409) is dropped and re-created so repeated invocations
// against a long-lived daemon just work.
func (lg *loadgen) createSession() (int64, error) {
	req := map[string]any{"name": lg.session, "query": datagen.QueryKnows, "live": true}
	var body struct {
		Vertices int64 `json:"vertices"`
	}
	err := lg.postJSON("/v1/graphs", req, &body, http.StatusCreated)
	if err != nil && strings.Contains(err.Error(), "409") {
		lg.deleteSession()
		err = lg.postJSON("/v1/graphs", req, &body, http.StatusCreated)
	}
	if err != nil {
		return 0, fmt.Errorf("creating session (does the endpoint serve an SNB-schema dataset?): %w", err)
	}
	return body.Vertices, nil
}

func (lg *loadgen) deleteSession() {
	req, err := http.NewRequest(http.MethodDelete, lg.base+"/v1/graphs/"+lg.session, nil)
	if err != nil {
		return
	}
	resp, err := lg.hc.Do(req)
	if err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

// --- workers ---

type bucket struct {
	lat     []int64
	errors  int64
	lastErr error
}

type worker struct {
	id      int
	lg      *loadgen
	rng     *rand.Rand
	maxID   int64
	mix     mixWeights
	buckets [numClasses]bucket

	analyzeSeq int
	mutSeq     int64
	pending    []int64 // inserted Knows row awaiting its paired delete
}

func (w *worker) loop(deadline time.Time) {
	for time.Now().Before(deadline) {
		class := w.pick()
		start := time.Now()
		err := w.do(class)
		ns := time.Since(start).Nanoseconds()
		b := &w.buckets[class]
		b.lat = append(b.lat, ns)
		if err != nil {
			b.errors++
			b.lastErr = err
		}
	}
}

func (w *worker) pick() int {
	x := w.rng.Intn(w.mix.total)
	for class, weight := range w.mix.weights {
		if x < weight {
			return class
		}
		x -= weight
	}
	return classRead // unreachable
}

func (w *worker) do(class int) error {
	switch class {
	case classRead:
		return w.doRead()
	case classMutate:
		return w.doMutate()
	default:
		return w.doAnalyze()
	}
}

// doRead probes the out-neighbors of a random vertex. A vertex absent
// from the graph is a legitimate read (degree 0), not an error; the
// degree field must be present, so a syntactically-valid reply of the
// wrong shape still counts as a failure.
func (w *worker) doRead() error {
	v := 1 + w.rng.Int63n(w.maxID)
	var body struct {
		Degree *int `json:"degree"`
	}
	path := fmt.Sprintf("/v1/graphs/%s/neighbors?v=%d", w.lg.session, v)
	if err := w.lg.getJSON(path, &body); err != nil {
		return err
	}
	if body.Degree == nil {
		return fmt.Errorf("GET %s: reply carries no degree field", path)
	}
	return nil
}

// doMutate alternates inserting a synthetic Knows edge and deleting it
// again, so the dataset's steady-state size is unchanged while every
// mutation forces the live session through its incremental-maintenance
// path (and invalidates the analytics cache).
func (w *worker) doMutate() error {
	var body struct {
		Applied *int `json:"applied"`
	}
	if w.pending == nil {
		src := mutIDBase + int64(w.id)*1_000_000 + w.mutSeq
		w.mutSeq++
		row := []int64{src, src + 1}
		if err := w.lg.postJSON("/v1/db/Knows/insert", map[string]any{"row": row}, &body, http.StatusOK); err != nil {
			return err
		}
		if body.Applied == nil || *body.Applied != 1 {
			return fmt.Errorf("insert applied %v rows, want 1", body.Applied)
		}
		w.pending = row
		return nil
	}
	row := w.pending
	w.pending = nil
	if err := w.lg.postJSON("/v1/db/Knows/delete", map[string]any{"row": row}, &body, http.StatusOK); err != nil {
		return err
	}
	if body.Applied == nil || *body.Applied != 1 {
		return fmt.Errorf("delete applied %v rows, want 1", body.Applied)
	}
	return nil
}

// analyzePaths is the rotation every worker cycles through: the two
// contest-family queries (sssp, closeness) plus the two cheapest
// classic analytics, all with small fixed parameters so an individual
// op stays bounded.
var analyzePaths = [...]string{
	"degree?k=10",
	"components",
	"sssp?sources=4",
	"closeness?samples=8&k=5",
}

func (w *worker) doAnalyze() error {
	p := analyzePaths[w.analyzeSeq%len(analyzePaths)]
	w.analyzeSeq++
	var body struct {
		Analysis string `json:"analysis"`
	}
	path := "/v1/graphs/" + w.lg.session + "/analyze/" + p
	if err := w.lg.getJSON(path, &body); err != nil {
		return err
	}
	if body.Analysis == "" {
		return fmt.Errorf("GET %s: reply carries no analysis field", path)
	}
	return nil
}
