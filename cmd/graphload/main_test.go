package main

import (
	"bytes"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync/atomic"
	"testing"
)

func runCapture(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestHelpExitsZero(t *testing.T) {
	code, _, stderr := runCapture(t, "-h")
	if code != 0 {
		t.Fatalf("-h exited %d, want 0\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "-duration") {
		t.Fatalf("usage text missing flags:\n%s", stderr)
	}
}

func TestUsageErrorsExitTwo(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"unknown flag", []string{"-nope"}},
		{"stray argument", []string{"extra"}},
		{"zero clients", []string{"-clients", "0"}},
		{"zero duration", []string{"-duration", "0s"}},
		{"negative sf", []string{"-sf", "-1"}},
		{"mix unknown class", []string{"-mix", "read=1,write=2"}},
		{"mix malformed entry", []string{"-mix", "read"}},
		{"mix negative weight", []string{"-mix", "read=-5"}},
		{"mix all zero", []string{"-mix", "read=0,mutate=0"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := runCapture(t, tc.args...)
			if code != 2 {
				t.Fatalf("args %v exited %d, want 2\nstderr: %s", tc.args, code, stderr)
			}
		})
	}
}

func TestParseMix(t *testing.T) {
	m, err := parseMix("read=80, mutate=15,analyze=5")
	if err != nil {
		t.Fatal(err)
	}
	if m.weights[classRead] != 80 || m.weights[classMutate] != 15 || m.weights[classAnalyze] != 5 || m.total != 100 {
		t.Fatalf("parsed mix %+v", m)
	}
	if m, err := parseMix("read=100"); err != nil || m.weights[classMutate] != 0 {
		t.Fatalf("single-class mix: %+v, %v", m, err)
	}
}

func TestPct(t *testing.T) {
	lat := []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := pct(lat, 50); got != 5 {
		t.Fatalf("p50 = %d, want 5", got)
	}
	if got := pct(lat, 99); got != 10 {
		t.Fatalf("p99 = %d, want 10", got)
	}
	if got := pct(nil, 99); got != 0 {
		t.Fatalf("p99 of empty = %d, want 0", got)
	}
	if got := pct([]int64{7}, 50); got != 7 {
		t.Fatalf("p50 of singleton = %d, want 7", got)
	}
}

// TestUnreachableEndpoint: a connection-refused endpoint fails fast with
// exit 1 before any load is generated.
func TestUnreachableEndpoint(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // the port is now closed: connections are refused

	code, _, stderr := runCapture(t, "-addr", addr, "-duration", "5s")
	if code != 1 {
		t.Fatalf("unreachable endpoint exited %d, want 1\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "unreachable") {
		t.Fatalf("stderr does not explain the failure:\n%s", stderr)
	}
}

// fakeDaemon mimics the graphgend surface graphload touches, with a
// pluggable neighbors handler — the hook the error-path table uses.
func fakeDaemon(t *testing.T, neighbors http.HandlerFunc) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte(`{"status":"ok"}`))
	})
	mux.HandleFunc("POST /v1/graphs", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusCreated)
		w.Write([]byte(`{"name":"load","live":true,"vertices":100}`))
	})
	mux.HandleFunc("DELETE /v1/graphs/load", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte(`{"deleted":"load"}`))
	})
	mux.HandleFunc("GET /v1/graphs/load/neighbors", neighbors)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// TestReadErrorPaths drives a read-only load against fakes that go bad
// in different ways; each must surface as counted op errors and exit 1,
// never as a hang or a silent success.
func TestReadErrorPaths(t *testing.T) {
	var calls atomic.Int64
	cases := []struct {
		name      string
		neighbors http.HandlerFunc
	}{
		{
			// The session disappears mid-run (another client deleted it):
			// the first few reads succeed, the rest 404.
			name: "session deleted mid-run",
			neighbors: func(w http.ResponseWriter, _ *http.Request) {
				if calls.Add(1) <= 5 {
					w.Write([]byte(`{"session":"load","vertex":1,"degree":0,"neighbors":[]}`))
					return
				}
				w.WriteHeader(http.StatusNotFound)
				w.Write([]byte(`{"error":"no session \"load\""}`))
			},
		},
		{
			name: "malformed JSON reply",
			neighbors: func(w http.ResponseWriter, _ *http.Request) {
				w.Write([]byte(`{"session": "load", truncated`))
			},
		},
		{
			name: "valid JSON of the wrong shape",
			neighbors: func(w http.ResponseWriter, _ *http.Request) {
				w.Write([]byte(`{"unexpected": true}`))
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			calls.Store(0)
			ts := fakeDaemon(t, tc.neighbors)
			code, stdout, stderr := runCapture(t,
				"-addr", ts.URL, "-mix", "read=100", "-clients", "2", "-duration", "200ms")
			if code != 1 {
				t.Fatalf("exited %d, want 1\nstdout: %s\nstderr: %s", code, stdout, stderr)
			}
			if !strings.Contains(stderr, "op errors") {
				t.Fatalf("stderr does not report op errors:\n%s", stderr)
			}
			// The LOADSTAT row still comes out (partial data beats none)
			// and its error count is honest.
			for _, line := range strings.Split(stdout, "\n") {
				if strings.HasPrefix(line, "LOADSTAT graphload/read") {
					if strings.Contains(line, "errors=0") {
						t.Fatalf("LOADSTAT row claims zero errors:\n%s", line)
					}
					return
				}
			}
			t.Fatalf("no LOADSTAT row for reads in:\n%s", stdout)
		})
	}
}

// TestSessionCreateConflictRetries: a leftover session from a previous
// run is dropped and re-created rather than failing the run.
func TestSessionCreateConflictRetries(t *testing.T) {
	var creates, deletes atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte(`{"status":"ok"}`))
	})
	mux.HandleFunc("POST /v1/graphs", func(w http.ResponseWriter, _ *http.Request) {
		if creates.Add(1) == 1 {
			w.WriteHeader(http.StatusConflict)
			w.Write([]byte(`{"error":"session \"load\" already exists"}`))
			return
		}
		w.WriteHeader(http.StatusCreated)
		w.Write([]byte(`{"name":"load","vertices":10}`))
	})
	mux.HandleFunc("DELETE /v1/graphs/load", func(w http.ResponseWriter, _ *http.Request) {
		deletes.Add(1)
		w.Write([]byte(`{"deleted":"load"}`))
	})
	mux.HandleFunc("GET /v1/graphs/load/neighbors", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte(`{"degree":0,"neighbors":[]}`))
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	code, _, stderr := runCapture(t,
		"-addr", ts.URL, "-mix", "read=100", "-clients", "1", "-duration", "100ms")
	if code != 0 {
		t.Fatalf("exited %d, want 0\nstderr: %s", code, stderr)
	}
	if creates.Load() != 2 || deletes.Load() < 1 {
		t.Fatalf("creates=%d deletes=%d, want a delete-and-retry", creates.Load(), deletes.Load())
	}
}

// TestInProcessSmoke is the CI load-smoke: a short in-process run must
// complete with zero errors and emit one LOADSTAT row per class.
func TestInProcessSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: CI runs the load smoke as a separate step")
	}
	code, stdout, stderr := runCapture(t,
		"-sf", "0.02", "-clients", "4", "-duration", "300ms")
	if code != 0 {
		t.Fatalf("exited %d, want 0\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	for _, class := range classNames {
		prefix := "LOADSTAT graphload/" + class + " "
		found := false
		for _, line := range strings.Split(stdout, "\n") {
			if strings.HasPrefix(line, prefix) {
				found = true
				if !strings.Contains(line, "errors=0") {
					t.Fatalf("%s row reports errors:\n%s", class, line)
				}
			}
		}
		if !found {
			t.Fatalf("no LOADSTAT row for %s in:\n%s", class, stdout)
		}
	}
	if !strings.Contains(stdout, "zero op errors") {
		t.Fatalf("missing success line:\n%s", stdout)
	}
}

// TestOutFileAppends: -out collects the LOADSTAT rows for artifact
// pipelines that don't capture stdout.
func TestOutFileAppends(t *testing.T) {
	ts := fakeDaemon(t, func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte(`{"degree":0,"neighbors":[]}`))
	})
	path := t.TempDir() + "/load.out"
	for i := 0; i < 2; i++ {
		code, _, stderr := runCapture(t,
			"-addr", ts.URL, "-mix", "read=100", "-clients", "1", "-duration", "50ms", "-out", path)
		if code != 0 {
			t.Fatalf("run %d exited %d\nstderr: %s", i, code, stderr)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(data), "LOADSTAT graphload/read"); n != 2 {
		t.Fatalf("out file holds %d read rows after 2 runs, want 2:\n%s", n, data)
	}
}
