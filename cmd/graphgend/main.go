// Command graphgend is the GraphGen serving daemon: it loads a relational
// database (a built-in generated dataset or CSV tables), binds an
// extraction engine to it, and serves named graph sessions — static
// snapshots or live incrementally-maintained graphs — over a concurrent
// HTTP JSON API with LRU-cached analytics (see internal/server for the
// endpoint reference and docs/ARCHITECTURE.md for the cache contract).
//
// Usage examples:
//
//	graphgend -addr :8080 -dataset dblp
//	graphgend -addr :8080 -csv authors=a.csv,authorpub=ap.csv
//
// Then drive it with curl (examples/serving walks through this):
//
//	curl -s localhost:8080/v1/healthz
//	curl -s -X POST localhost:8080/v1/graphs -d '{"name":"coauth","live":true,"query":"..."}'
//	curl -s localhost:8080/v1/graphs/coauth/analyze/pagerank
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"graphgen"
	"graphgen/internal/datagen"
	"graphgen/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run parses flags, loads the database, and serves until the context is
// cancelled by SIGINT/SIGTERM. Flag and configuration errors (unknown
// dataset, malformed -csv spec) exit 2; runtime failures exit 1.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("graphgend", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8080", "listen address")
	dataset := fs.String("dataset", "dblp", "built-in dataset: "+strings.Join(datagen.BuiltinDatasets, ", "))
	seed := fs.Int64("seed", 1, "dataset generator seed")
	csvTables := fs.String("csv", "", "comma-separated name=path.csv pairs loaded instead of -dataset")
	workers := fs.Int("workers", 0, "extraction worker-pool parallelism (0 = GOMAXPROCS)")
	noIndex := fs.Bool("no-index", false, "disable automatic secondary hash indexes on join/predicate columns (indexes are on by default)")
	cacheEntries := fs.Int("cache-entries", 256, "analytics cache: max entries")
	cacheMB := fs.Int64("cache-mb", 64, "analytics cache: max total result megabytes")
	maxSessions := fs.Int("max-sessions", 64, "max concurrent graph sessions")
	maxDerived := fs.Int64("max-derived", 10_000_000, "Datalog program sessions: max derived tuples per evaluation (-1 disables)")
	logLevel := fs.String("log-level", "info", "request log level: debug, info, warn, error")
	logFormat := fs.String("log-format", "text", "request log format: text or json (written to stderr)")
	pprofOn := fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof (profiling exposes heap contents; keep off on public listeners)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	logger, err := buildLogger(stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(stderr, "graphgend:", err)
		return 2
	}

	db, canonical, err := loadDB(*csvTables, *dataset, *seed)
	if err != nil {
		fmt.Fprintln(stderr, "graphgend:", err)
		// Usage errors (bad -dataset name, malformed -csv spec) exit 2;
		// runtime failures (unreadable or malformed CSV files) exit 1,
		// matching cmd/graphgen.
		if *csvTables == "" || errors.Is(err, graphgen.ErrCSVSpec) {
			return 2
		}
		return 1
	}
	engine := graphgen.NewEngine(db, graphgen.WithParallelism(*workers), graphgen.WithAutoIndex(!*noIndex))
	srv := server.New(engine, server.Options{
		CacheEntries:     *cacheEntries,
		CacheBytes:       *cacheMB << 20,
		MaxSessions:      *maxSessions,
		MaxDerivedTuples: *maxDerived,
		Logger:           logger,
		EnablePprof:      *pprofOn,
	})
	defer srv.Close()

	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	fmt.Fprintf(stdout, "graphgend: serving on %s (%d tables, %d rows)\n", *addr, len(db.TableNames()), db.TotalRows())
	for _, name := range db.TableNames() {
		t, _ := db.Table(name)
		fmt.Fprintf(stdout, "graphgend:   table %s: %d rows\n", name, t.NumRows())
	}
	if canonical != "" {
		fmt.Fprintf(stdout, "graphgend: canonical query for -dataset %s:\n%s\n", *dataset, strings.TrimSpace(canonical))
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpServer.ListenAndServe() }()
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(stderr, "graphgend:", err)
			return 1
		}
	case <-ctx.Done():
		fmt.Fprintln(stdout, "graphgend: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpServer.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintln(stderr, "graphgend: shutdown:", err)
			return 1
		}
	}
	return 0
}

// buildLogger assembles the request logger from the -log-level and
// -log-format flags; unknown values are usage errors.
func buildLogger(w io.Writer, levelName, format string) (*slog.Logger, error) {
	var level slog.Level
	if err := level.UnmarshalText([]byte(levelName)); err != nil {
		return nil, fmt.Errorf("-log-level %q: want debug, info, warn, or error", levelName)
	}
	opts := &slog.HandlerOptions{Level: level}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("-log-format %q: want text or json", format)
	}
}

// loadDB builds the served database: CSV tables when -csv is given,
// otherwise the named built-in dataset (returning its canonical query for
// the startup banner).
func loadDB(csvTables, dataset string, seed int64) (*graphgen.DB, string, error) {
	if csvTables == "" {
		return datagen.ByName(dataset, seed)
	}
	db := graphgen.NewDB()
	if err := db.LoadCSVFiles(csvTables); err != nil {
		return nil, "", err
	}
	return db, "", nil
}
