// Command benchjson is the CI benchmark-tracking tool: it converts `go
// test -bench` text output — and the LOADSTAT latency-percentile rows
// emitted by cmd/graphload — into a stable JSON artifact and compares two
// such artifacts for regressions.
//
//	go test -run '^$' -bench ... -benchtime=1x -count=3 ./... | benchjson convert -out BENCH_pr.json
//	benchjson compare -baseline BENCH_baseline.json -pr BENCH_pr.json -max-regression 0.30
//
// The JSON schema is committed (BENCH_baseline.json is checked in and
// reviewed like code):
//
//	{
//	  "schema_version": 2,
//	  "benchmarks": [
//	    {"name": "...", "runs_ns_per_op": [..], "median_ns_per_op": N, "count": n}
//	  ],
//	  "latencies": [
//	    {"name": "graphload/read", "ops": N, "errors": 0,
//	     "p50_ns": ..., "p95_ns": ..., "p99_ns": ..., "ops_per_s": ...,
//	     "runs_p99_ns": [..], "min_p99_ns": ..., "count": n}
//	  ]
//	}
//
// Schema version 2 added the "latencies" array (sourced from LOADSTAT
// lines, one per operation class per load run); version-1 artifacts are
// still read — they simply carry no latency rows — so a baseline written
// before the bump keeps gating the ns/op benchmarks.
//
// Benchmark names are normalized by stripping the trailing -GOMAXPROCS
// suffix, so artifacts from machines with different core counts compare.
// The gate metric is the MINIMUM of the -count runs (noise only ever
// slows a run down, so the fastest run is the stablest estimate for
// single-shot -benchtime=1x timings on shared runners); compare fails
// when a benchmark's PR min exceeds baseline * (1 + max-regression), and
// when a baseline benchmark is missing from the PR artifact (renames
// must update the baseline in the same PR). New benchmarks only present
// in the PR are reported, not failed — they enter the baseline when it
// is refreshed. Absolute times are machine-dependent: refresh
// BENCH_baseline.json from a CI run's BENCH_pr.json artifact, not from a
// developer machine, whenever performance changes intentionally.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"slices"
	"sort"
	"strconv"
)

// SchemaVersion identifies the artifact layout; bump on breaking change.
// Version 2 added latency-percentile rows; version-1 artifacts are still
// accepted by loadArtifact (back-compat is tested against the committed
// baseline).
const SchemaVersion = 2

// minReadableSchemaVersion is the oldest artifact layout this tool still
// reads: every field of version 1 kept its meaning in version 2.
const minReadableSchemaVersion = 1

// Artifact is the committed-schema benchmark report.
type Artifact struct {
	SchemaVersion int         `json:"schema_version"`
	Benchmarks    []Benchmark `json:"benchmarks"`
	// Latencies carries the load-driver percentile rows (absent in
	// version-1 artifacts and in artifacts converted from pure `go test
	// -bench` output).
	Latencies []Latency `json:"latencies,omitempty"`
}

// Latency aggregates the LOADSTAT rows of one operation class (one name).
// Repeated runs keep the run with the smallest p99 as the representative
// (the same one-sided-noise argument as MinNsPerOp) and record every
// run's p99 for transparency; the regression gate compares MinP99Ns.
type Latency struct {
	Name      string  `json:"name"`
	Ops       int64   `json:"ops"`
	Errors    int64   `json:"errors"`
	P50Ns     int64   `json:"p50_ns"`
	P95Ns     int64   `json:"p95_ns"`
	P99Ns     int64   `json:"p99_ns"`
	OpsPerSec float64 `json:"ops_per_s"`
	RunsP99Ns []int64 `json:"runs_p99_ns"`
	MinP99Ns  int64   `json:"min_p99_ns"`
	Count     int     `json:"count"`
}

// Benchmark aggregates the runs of one benchmark (one name after
// GOMAXPROCS-suffix normalization). The regression gate compares
// MinNsPerOp: benchmark noise is one-sided (scheduling jitter only ever
// slows a run down), so the fastest of the -count runs is the stablest
// estimate of the code's true cost, especially for -benchtime=1x
// single-shot runs on shared CI runners. The median is kept for
// reporting.
type Benchmark struct {
	Name          string  `json:"name"`
	RunsNsPerOp   []int64 `json:"runs_ns_per_op"`
	MinNsPerOp    int64   `json:"min_ns_per_op"`
	MedianNsPerOp int64   `json:"median_ns_per_op"`
	Count         int     `json:"count"`
	// Extras carries custom b.ReportMetric units (e.g.
	// "peak_intermediate_rows", "edges") — the smallest value observed
	// across the runs, informational rather than gated. Additive to
	// schema version 2: artifacts without it load unchanged.
	Extras map[string]float64 `json:"extras,omitempty"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		fmt.Fprintln(stderr, "benchjson: usage: benchjson <convert|compare> [flags]")
		return 2
	}
	switch args[0] {
	case "convert":
		return runConvert(args[1:], stdin, stdout, stderr)
	case "compare":
		return runCompare(args[1:], stdout, stderr)
	default:
		fmt.Fprintf(stderr, "benchjson: unknown subcommand %q (valid: convert, compare)\n", args[0])
		return 2
	}
}

func runConvert(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchjson convert", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "", "bench output file (default: stdin)")
	out := fs.String("out", "", "artifact path (default: stdout)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	r := stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(stderr, "benchjson:", err)
			return 1
		}
		defer f.Close()
		r = f
	}
	art, err := Convert(r)
	if err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 1
	}
	if len(art.Benchmarks) == 0 && len(art.Latencies) == 0 {
		fmt.Fprintln(stderr, "benchjson: no benchmark or LOADSTAT lines found in input")
		return 1
	}
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 1
	}
	data = append(data, '\n')
	if *out == "" {
		if _, err := stdout.Write(data); err != nil {
			fmt.Fprintln(stderr, "benchjson:", err)
			return 1
		}
		return 0
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 1
	}
	return 0
}

func runCompare(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchjson compare", flag.ContinueOnError)
	fs.SetOutput(stderr)
	baselinePath := fs.String("baseline", "BENCH_baseline.json", "baseline artifact")
	prPath := fs.String("pr", "BENCH_pr.json", "candidate artifact")
	maxRegression := fs.Float64("max-regression", 0.30, "fail when a benchmark's min-of-runs slows down by more than this fraction")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	baseline, err := loadArtifact(*baselinePath)
	if err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 1
	}
	pr, err := loadArtifact(*prPath)
	if err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 1
	}
	report, failed := Compare(baseline, pr, *maxRegression)
	fmt.Fprint(stdout, report)
	if failed {
		return 1
	}
	return 0
}

func loadArtifact(path string) (*Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var art Artifact
	if err := json.Unmarshal(data, &art); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if art.SchemaVersion < minReadableSchemaVersion || art.SchemaVersion > SchemaVersion {
		return nil, fmt.Errorf("%s: schema_version %d, this tool reads %d..%d", path, art.SchemaVersion, minReadableSchemaVersion, SchemaVersion)
	}
	return &art, nil
}

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkServerThroughput-8   	     100	    123456 ns/op	  12 B/op
//
// Group 1 is the name (GOMAXPROCS suffix excluded), group 2 the ns/op
// value (go emits a float for sub-ns results).
var benchLine = regexp.MustCompile(`^(Benchmark\S*?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// metricPair matches one "<value> <unit>" cell after the ns/op column:
// the standard testing columns (B/op, allocs/op, MB/s) and any custom
// b.ReportMetric units like "253804 peak_intermediate_rows".
var metricPair = regexp.MustCompile(`([0-9]+(?:\.[0-9]+)?(?:e[+-]?[0-9]+)?)\s+([A-Za-z_][A-Za-z0-9_/%-]*)`)

// standardUnits are the cells Convert already models (ns/op) or
// deliberately ignores (allocator counters move with GOGC and would make
// every artifact diff noisy); everything else lands in Extras.
var standardUnits = map[string]bool{"ns/op": true, "B/op": true, "allocs/op": true, "MB/s": true}

// loadstatLine matches one latency row emitted by cmd/graphload, e.g.
//
//	LOADSTAT graphload/read ops=5000 errors=0 p50_ns=120000 p95_ns=300000 p99_ns=500000 ops_per_s=1234.5
//
// Fields are key=value pairs; unknown keys are ignored so the format can
// grow without breaking older converters.
var loadstatLine = regexp.MustCompile(`^LOADSTAT\s+(\S+)((?:\s+\w+=[0-9.]+)+)\s*$`)

var loadstatField = regexp.MustCompile(`(\w+)=([0-9.]+)`)

// Convert parses `go test -bench` text output (plus any interleaved
// LOADSTAT rows) into an artifact, grouping repeated runs (-count=N, or
// repeated load runs) of one name.
func Convert(r io.Reader) (*Artifact, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	runs := make(map[string][]int64)
	extraRuns := make(map[string]map[string][]float64)
	var order []string
	latRuns := make(map[string][]Latency)
	var latOrder []string
	start := 0
	for pos := 0; pos <= len(raw); pos++ {
		if pos != len(raw) && raw[pos] != '\n' {
			continue
		}
		line := string(raw[start:pos])
		start = pos + 1
		if loc := benchLine.FindStringSubmatchIndex(line); loc != nil {
			name := line[loc[2]:loc[3]]
			ns, err := strconv.ParseFloat(line[loc[4]:loc[5]], 64)
			if err != nil {
				return nil, fmt.Errorf("parsing %q: %w", line, err)
			}
			if _, seen := runs[name]; !seen {
				order = append(order, name)
			}
			runs[name] = append(runs[name], int64(ns))
			for _, pm := range metricPair.FindAllStringSubmatch(line[loc[1]:], -1) {
				if standardUnits[pm[2]] {
					continue
				}
				val, err := strconv.ParseFloat(pm[1], 64)
				if err != nil {
					return nil, fmt.Errorf("parsing %q: %w", line, err)
				}
				if extraRuns[name] == nil {
					extraRuns[name] = make(map[string][]float64)
				}
				extraRuns[name][pm[2]] = append(extraRuns[name][pm[2]], val)
			}
			continue
		}
		if m := loadstatLine.FindStringSubmatch(line); m != nil {
			lat, err := parseLoadstat(m[1], m[2])
			if err != nil {
				return nil, fmt.Errorf("parsing %q: %w", line, err)
			}
			if _, seen := latRuns[lat.Name]; !seen {
				latOrder = append(latOrder, lat.Name)
			}
			latRuns[lat.Name] = append(latRuns[lat.Name], lat)
		}
	}
	art := &Artifact{SchemaVersion: SchemaVersion}
	for _, name := range order {
		ns := runs[name]
		var extras map[string]float64
		if per := extraRuns[name]; len(per) > 0 {
			extras = make(map[string]float64, len(per))
			for unit, vals := range per {
				extras[unit] = slices.Min(vals)
			}
		}
		art.Benchmarks = append(art.Benchmarks, Benchmark{
			Name:          name,
			RunsNsPerOp:   ns,
			MinNsPerOp:    slices.Min(ns),
			MedianNsPerOp: median(ns),
			Count:         len(ns),
			Extras:        extras,
		})
	}
	for _, name := range latOrder {
		art.Latencies = append(art.Latencies, mergeLatencyRuns(latRuns[name]))
	}
	return art, nil
}

// parseLoadstat decodes one LOADSTAT row's key=value fields.
func parseLoadstat(name, fields string) (Latency, error) {
	lat := Latency{Name: name}
	for _, kv := range loadstatField.FindAllStringSubmatch(fields, -1) {
		val, err := strconv.ParseFloat(kv[2], 64)
		if err != nil {
			return lat, fmt.Errorf("field %s: %w", kv[1], err)
		}
		switch kv[1] {
		case "ops":
			lat.Ops = int64(val)
		case "errors":
			lat.Errors = int64(val)
		case "p50_ns":
			lat.P50Ns = int64(val)
		case "p95_ns":
			lat.P95Ns = int64(val)
		case "p99_ns":
			lat.P99Ns = int64(val)
		case "ops_per_s":
			lat.OpsPerSec = val
		}
	}
	return lat, nil
}

// mergeLatencyRuns aggregates the repeated runs of one operation class:
// the representative row is the run with the smallest p99 (one-sided
// noise, as with MinNsPerOp), errors are summed so a single failing run
// cannot hide.
func mergeLatencyRuns(all []Latency) Latency {
	best := all[0]
	var errs int64
	for _, lat := range all {
		errs += lat.Errors
		if lat.P99Ns < best.P99Ns {
			best = lat
		}
	}
	out := best
	out.Errors = errs
	out.Count = len(all)
	out.RunsP99Ns = make([]int64, len(all))
	for i, lat := range all {
		out.RunsP99Ns[i] = lat.P99Ns
	}
	out.MinP99Ns = slices.Min(out.RunsP99Ns)
	return out
}

// median returns the middle value (lower-middle for even counts) without
// mutating its input.
func median(ns []int64) int64 {
	s := append([]int64(nil), ns...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[(len(s)-1)/2]
}

// gateValue is the metric the regression gate compares: the fastest of
// the recorded runs, falling back to the median for artifacts written
// before min_ns_per_op existed.
func gateValue(b Benchmark) int64 {
	if b.MinNsPerOp > 0 {
		return b.MinNsPerOp
	}
	return b.MedianNsPerOp
}

// Compare renders a per-benchmark report and reports whether the gate
// fails: a baseline benchmark missing from pr, or a min-of-runs
// regression beyond maxRegression.
func Compare(baseline, pr *Artifact, maxRegression float64) (string, bool) {
	prByName := make(map[string]Benchmark, len(pr.Benchmarks))
	for _, b := range pr.Benchmarks {
		prByName[b.Name] = b
	}
	baseByName := make(map[string]Benchmark, len(baseline.Benchmarks))
	var out string
	failed := false
	for _, base := range baseline.Benchmarks {
		baseByName[base.Name] = base
		cand, ok := prByName[base.Name]
		if !ok {
			out += fmt.Sprintf("MISSING  %s: in baseline but not in PR artifact (update BENCH_baseline.json if renamed)\n", base.Name)
			failed = true
			continue
		}
		if gateValue(base) <= 0 {
			out += fmt.Sprintf("SKIP     %s: baseline is %d ns/op\n", base.Name, gateValue(base))
			continue
		}
		ratio := float64(gateValue(cand)) / float64(gateValue(base))
		verdict := "OK      "
		if ratio > 1+maxRegression {
			verdict = "REGRESS "
			failed = true
		} else if ratio < 1-maxRegression {
			verdict = "IMPROVE "
		}
		out += fmt.Sprintf("%s %s: %d -> %d ns/op (%.2fx, limit %.2fx)\n",
			verdict, base.Name, gateValue(base), gateValue(cand), ratio, 1+maxRegression)
	}
	for _, cand := range pr.Benchmarks {
		if _, ok := baseByName[cand.Name]; !ok {
			out += fmt.Sprintf("NEW      %s: %d ns/op (no baseline; added on next baseline refresh)\n", cand.Name, gateValue(cand))
		}
	}
	latReport, latFailed := compareLatencies(baseline.Latencies, pr.Latencies, maxRegression)
	return out + latReport, failed || latFailed
}

// latencyGate is the metric the latency regression gate compares: the
// smallest p99 across the recorded runs.
func latencyGate(l Latency) int64 {
	if l.MinP99Ns > 0 {
		return l.MinP99Ns
	}
	return l.P99Ns
}

// compareLatencies applies the same missing/regression gate to the
// latency rows, on min-of-runs p99.
func compareLatencies(baseline, pr []Latency, maxRegression float64) (string, bool) {
	prByName := make(map[string]Latency, len(pr))
	for _, l := range pr {
		prByName[l.Name] = l
	}
	baseByName := make(map[string]Latency, len(baseline))
	var out string
	failed := false
	for _, base := range baseline {
		baseByName[base.Name] = base
		cand, ok := prByName[base.Name]
		if !ok {
			out += fmt.Sprintf("MISSING  %s: latency row in baseline but not in PR artifact (update BENCH_baseline.json if renamed)\n", base.Name)
			failed = true
			continue
		}
		if latencyGate(base) <= 0 {
			out += fmt.Sprintf("SKIP     %s: baseline p99 is %d ns\n", base.Name, latencyGate(base))
			continue
		}
		ratio := float64(latencyGate(cand)) / float64(latencyGate(base))
		verdict := "OK      "
		if ratio > 1+maxRegression {
			verdict = "REGRESS "
			failed = true
		} else if ratio < 1-maxRegression {
			verdict = "IMPROVE "
		}
		out += fmt.Sprintf("%s %s: p99 %d -> %d ns (%.2fx, limit %.2fx)\n",
			verdict, base.Name, latencyGate(base), latencyGate(cand), ratio, 1+maxRegression)
	}
	for _, cand := range pr {
		if _, ok := baseByName[cand.Name]; !ok {
			out += fmt.Sprintf("NEW      %s: p99 %d ns (no baseline; added on next baseline refresh)\n", cand.Name, latencyGate(cand))
		}
	}
	return out, failed
}
