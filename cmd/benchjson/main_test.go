package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: graphgen
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkTable1_Extraction/dblp-8         	       1	  51234567 ns/op
BenchmarkTable1_Extraction/dblp-8         	       1	  49234567 ns/op
BenchmarkTable1_Extraction/dblp-8         	       1	  53234567 ns/op
BenchmarkServerThroughput-8               	     100	    123456 ns/op	  12 B/op	       3 allocs/op
BenchmarkServerThroughput-8               	     120	    120000 ns/op
BenchmarkServerThroughput-8               	     110	    130000 ns/op
PASS
ok  	graphgen	2.345s
`

func TestConvertGroupsRunsAndStripsGOMAXPROCS(t *testing.T) {
	art, err := Convert(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if art.SchemaVersion != SchemaVersion {
		t.Fatalf("schema version %d", art.SchemaVersion)
	}
	if len(art.Benchmarks) != 2 {
		t.Fatalf("got %d benchmarks, want 2: %+v", len(art.Benchmarks), art.Benchmarks)
	}
	ext := art.Benchmarks[0]
	if ext.Name != "BenchmarkTable1_Extraction/dblp" {
		t.Fatalf("GOMAXPROCS suffix not stripped: %q", ext.Name)
	}
	if ext.Count != 3 || ext.MedianNsPerOp != 51234567 || ext.MinNsPerOp != 49234567 {
		t.Fatalf("aggregates over 3 runs: %+v", ext)
	}
	srv := art.Benchmarks[1]
	if srv.Name != "BenchmarkServerThroughput" || srv.MedianNsPerOp != 123456 || srv.MinNsPerOp != 120000 {
		t.Fatalf("server benchmark: %+v", srv)
	}
}

// TestConvertExtras: custom b.ReportMetric units after the ns/op column
// land in Extras (min across runs); the standard allocator columns do
// not.
func TestConvertExtras(t *testing.T) {
	input := "BenchmarkStreamingExtraction/Streaming-8 \t 1\t 251000000 ns/op\t 215586 peak_intermediate_rows\t 1024 B/op\t 12 allocs/op\n" +
		"BenchmarkStreamingExtraction/Streaming-8 \t 1\t 252000000 ns/op\t 215590 peak_intermediate_rows\n" +
		"BenchmarkStreamingExtraction/Materializing-8 \t 1\t 260000000 ns/op\t 567678 peak_intermediate_rows\n"
	art, err := Convert(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(art.Benchmarks) != 2 {
		t.Fatalf("got %d benchmarks, want 2: %+v", len(art.Benchmarks), art.Benchmarks)
	}
	stream := art.Benchmarks[0]
	if stream.Extras["peak_intermediate_rows"] != 215586 {
		t.Fatalf("streaming extras = %v, want min of runs 215586", stream.Extras)
	}
	if len(stream.Extras) != 1 {
		t.Fatalf("standard units leaked into extras: %v", stream.Extras)
	}
	if art.Benchmarks[1].Extras["peak_intermediate_rows"] != 567678 {
		t.Fatalf("materializing extras = %v", art.Benchmarks[1].Extras)
	}
	// Round trip: Extras survive the JSON artifact.
	data, err := json.Marshal(art)
	if err != nil {
		t.Fatal(err)
	}
	var back Artifact
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Benchmarks[0].Extras["peak_intermediate_rows"] != 215586 {
		t.Fatalf("extras lost in round trip: %+v", back.Benchmarks[0])
	}
}

func TestConvertEmptyInput(t *testing.T) {
	art, err := Convert(strings.NewReader("no benchmarks here\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(art.Benchmarks) != 0 {
		t.Fatalf("parsed benchmarks from noise: %+v", art.Benchmarks)
	}
}

func art(pairs ...any) *Artifact {
	a := &Artifact{SchemaVersion: SchemaVersion}
	for i := 0; i < len(pairs); i += 2 {
		ns := int64(pairs[i+1].(int))
		a.Benchmarks = append(a.Benchmarks, Benchmark{
			Name: pairs[i].(string), RunsNsPerOp: []int64{ns}, MinNsPerOp: ns, MedianNsPerOp: ns, Count: 1,
		})
	}
	return a
}

// TestCompareGatesOnMinNotMedian pins the gate metric: a PR whose median
// regressed from one noisy run but whose fastest run matches the
// baseline must pass.
func TestCompareGatesOnMinNotMedian(t *testing.T) {
	base := art("BenchmarkA", 1000)
	pr := &Artifact{SchemaVersion: SchemaVersion, Benchmarks: []Benchmark{{
		Name: "BenchmarkA", RunsNsPerOp: []int64{1000, 2000, 2500}, MinNsPerOp: 1000, MedianNsPerOp: 2000, Count: 3,
	}}}
	report, failed := Compare(base, pr, 0.30)
	if failed {
		t.Fatalf("min-of-runs within threshold failed the gate:\n%s", report)
	}
}

// TestGateValueFallsBackToMedian covers artifacts written before
// min_ns_per_op existed.
func TestGateValueFallsBackToMedian(t *testing.T) {
	if v := gateValue(Benchmark{MedianNsPerOp: 42}); v != 42 {
		t.Fatalf("fallback gate value = %d, want 42", v)
	}
	if v := gateValue(Benchmark{MinNsPerOp: 7, MedianNsPerOp: 42}); v != 7 {
		t.Fatalf("gate value = %d, want 7", v)
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		name     string
		baseline *Artifact
		pr       *Artifact
		wantFail bool
		wantMark string
	}{
		{
			name:     "within threshold",
			baseline: art("BenchmarkA", 1000),
			pr:       art("BenchmarkA", 1250),
			wantFail: false,
			wantMark: "OK",
		},
		{
			name:     "regression beyond 30 percent",
			baseline: art("BenchmarkA", 1000),
			pr:       art("BenchmarkA", 1400),
			wantFail: true,
			wantMark: "REGRESS",
		},
		{
			name:     "exactly at threshold passes",
			baseline: art("BenchmarkA", 1000),
			pr:       art("BenchmarkA", 1300),
			wantFail: false,
			wantMark: "OK",
		},
		{
			name:     "improvement",
			baseline: art("BenchmarkA", 1000),
			pr:       art("BenchmarkA", 500),
			wantFail: false,
			wantMark: "IMPROVE",
		},
		{
			name:     "baseline benchmark missing from pr fails",
			baseline: art("BenchmarkA", 1000, "BenchmarkB", 2000),
			pr:       art("BenchmarkA", 1000),
			wantFail: true,
			wantMark: "MISSING",
		},
		{
			name:     "new benchmark reported not failed",
			baseline: art("BenchmarkA", 1000),
			pr:       art("BenchmarkA", 1000, "BenchmarkNew", 5),
			wantFail: false,
			wantMark: "NEW",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			report, failed := Compare(tc.baseline, tc.pr, 0.30)
			if failed != tc.wantFail {
				t.Fatalf("failed=%v want %v\n%s", failed, tc.wantFail, report)
			}
			if !strings.Contains(report, tc.wantMark) {
				t.Fatalf("report missing %q:\n%s", tc.wantMark, report)
			}
		})
	}
}

const sampleLoadOutput = `graphload: 8 clients for 5s against http://127.0.0.1:1234 (in-process)
graphload: read    ops=5000 errors=0 p50=120µs p95=300µs p99=500µs (1000.0 ops/s)
LOADSTAT graphload/read ops=5000 errors=0 p50_ns=120000 p95_ns=300000 p99_ns=500000 ops_per_s=1000.0
LOADSTAT graphload/mutate ops=2500 errors=0 p50_ns=150000 p95_ns=400000 p99_ns=700000 ops_per_s=500.0
LOADSTAT graphload/read ops=5100 errors=2 p50_ns=110000 p95_ns=290000 p99_ns=480000 ops_per_s=1020.0
BenchmarkExtract-8	1	1000000 ns/op
PASS
`

// TestConvertLoadstat: LOADSTAT rows interleave with benchmark lines;
// repeated runs of one class merge on min-p99 with summed errors.
func TestConvertLoadstat(t *testing.T) {
	art, err := Convert(strings.NewReader(sampleLoadOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(art.Benchmarks) != 1 || art.Benchmarks[0].Name != "BenchmarkExtract" {
		t.Fatalf("benchmark lines lost among LOADSTAT rows: %+v", art.Benchmarks)
	}
	if len(art.Latencies) != 2 {
		t.Fatalf("got %d latency rows, want 2: %+v", len(art.Latencies), art.Latencies)
	}
	read := art.Latencies[0]
	if read.Name != "graphload/read" {
		t.Fatalf("first latency row %q, want graphload/read (input order)", read.Name)
	}
	// The second read run had the smaller p99, so it is the representative;
	// errors sum across runs.
	if read.P99Ns != 480000 || read.MinP99Ns != 480000 || read.Ops != 5100 {
		t.Fatalf("representative run is not the min-p99 run: %+v", read)
	}
	if read.Errors != 2 || read.Count != 2 || len(read.RunsP99Ns) != 2 {
		t.Fatalf("run aggregation wrong: %+v", read)
	}
	mut := art.Latencies[1]
	if mut.Name != "graphload/mutate" || mut.P50Ns != 150000 || mut.OpsPerSec != 500.0 {
		t.Fatalf("mutate row: %+v", mut)
	}
	// The human-readable "graphload: read ops=..." line must NOT parse as
	// a stat row.
	if read.Count != 2 {
		t.Fatalf("summary line leaked into stats: %+v", read)
	}
}

func latArt(pairs ...any) *Artifact {
	a := &Artifact{SchemaVersion: SchemaVersion}
	for i := 0; i < len(pairs); i += 2 {
		ns := int64(pairs[i+1].(int))
		a.Latencies = append(a.Latencies, Latency{
			Name: pairs[i].(string), P99Ns: ns, MinP99Ns: ns, RunsP99Ns: []int64{ns}, Count: 1,
		})
	}
	return a
}

func TestCompareLatencies(t *testing.T) {
	cases := []struct {
		name     string
		baseline *Artifact
		pr       *Artifact
		wantFail bool
		wantMark string
	}{
		{"within threshold", latArt("graphload/read", 1000), latArt("graphload/read", 1200), false, "OK"},
		{"p99 regression", latArt("graphload/read", 1000), latArt("graphload/read", 1400), true, "REGRESS"},
		{"improvement", latArt("graphload/read", 1000), latArt("graphload/read", 500), false, "IMPROVE"},
		{"missing row fails", latArt("graphload/read", 1000), latArt(), true, "MISSING"},
		{"new row reported", latArt(), latArt("graphload/read", 1000), false, "NEW"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			report, failed := Compare(tc.baseline, tc.pr, 0.30)
			if failed != tc.wantFail {
				t.Fatalf("failed=%v want %v\n%s", failed, tc.wantFail, report)
			}
			if !strings.Contains(report, tc.wantMark) {
				t.Fatalf("report missing %q:\n%s", tc.wantMark, report)
			}
		})
	}
}

// TestCompareLatencyGatesOnMinP99: like the ns/op gate, one noisy run
// must not fail the latency gate when the best run is clean.
func TestCompareLatencyGatesOnMinP99(t *testing.T) {
	base := latArt("graphload/read", 1000)
	pr := &Artifact{SchemaVersion: SchemaVersion, Latencies: []Latency{{
		Name: "graphload/read", P99Ns: 1000, RunsP99Ns: []int64{1000, 3000}, MinP99Ns: 1000, Count: 2,
	}}}
	report, failed := Compare(base, pr, 0.30)
	if failed {
		t.Fatalf("min-of-runs p99 within threshold failed the gate:\n%s", report)
	}
}

// TestLoadArtifactSchemaV1BackCompat pins that an artifact written by
// the schema-1 tool (no latencies key at all) still loads and gates its
// benchmarks.
func TestLoadArtifactSchemaV1BackCompat(t *testing.T) {
	v1 := `{
  "schema_version": 1,
  "benchmarks": [
    {"name": "BenchmarkOld", "runs_ns_per_op": [100], "min_ns_per_op": 100, "median_ns_per_op": 100, "count": 1}
  ]
}`
	path := t.TempDir() + "/v1.json"
	if err := os.WriteFile(path, []byte(v1), 0o644); err != nil {
		t.Fatal(err)
	}
	art, err := loadArtifact(path)
	if err != nil {
		t.Fatalf("schema-1 artifact rejected: %v", err)
	}
	if len(art.Benchmarks) != 1 || art.Latencies != nil {
		t.Fatalf("unexpected shape: %+v", art)
	}
	// And it compares cleanly against a v2 candidate with extra latency
	// rows (NEW, not a failure).
	report, failed := Compare(art, &Artifact{
		SchemaVersion: SchemaVersion,
		Benchmarks:    art.Benchmarks,
		Latencies:     []Latency{{Name: "graphload/read", P99Ns: 10, MinP99Ns: 10}},
	}, 0.30)
	if failed {
		t.Fatalf("v1 baseline vs v2 candidate failed:\n%s", report)
	}

	future := strings.Replace(v1, `"schema_version": 1`, `"schema_version": 99`, 1)
	if err := os.WriteFile(path, []byte(future), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadArtifact(path); err == nil {
		t.Fatal("future schema version accepted")
	}
}

// TestCommittedBaselineLoads: the checked-in baseline must stay readable
// by the tool at head — this is the back-compat contract CI relies on.
func TestCommittedBaselineLoads(t *testing.T) {
	art, err := loadArtifact("../../BENCH_baseline.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(art.Benchmarks) == 0 {
		t.Fatal("committed baseline has no benchmarks")
	}
	for _, l := range art.Latencies {
		if l.Errors != 0 {
			t.Fatalf("committed baseline records op errors in %s: %+v", l.Name, l)
		}
	}
}

func TestMedian(t *testing.T) {
	if m := median([]int64{3, 1, 2}); m != 2 {
		t.Fatalf("median odd = %d", m)
	}
	if m := median([]int64{4, 1, 3, 2}); m != 2 {
		t.Fatalf("median even (lower middle) = %d", m)
	}
	in := []int64{9, 1}
	median(in)
	if in[0] != 9 {
		t.Fatal("median mutated its input")
	}
}
