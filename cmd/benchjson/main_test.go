package main

import (
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: graphgen
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkTable1_Extraction/dblp-8         	       1	  51234567 ns/op
BenchmarkTable1_Extraction/dblp-8         	       1	  49234567 ns/op
BenchmarkTable1_Extraction/dblp-8         	       1	  53234567 ns/op
BenchmarkServerThroughput-8               	     100	    123456 ns/op	  12 B/op	       3 allocs/op
BenchmarkServerThroughput-8               	     120	    120000 ns/op
BenchmarkServerThroughput-8               	     110	    130000 ns/op
PASS
ok  	graphgen	2.345s
`

func TestConvertGroupsRunsAndStripsGOMAXPROCS(t *testing.T) {
	art, err := Convert(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if art.SchemaVersion != SchemaVersion {
		t.Fatalf("schema version %d", art.SchemaVersion)
	}
	if len(art.Benchmarks) != 2 {
		t.Fatalf("got %d benchmarks, want 2: %+v", len(art.Benchmarks), art.Benchmarks)
	}
	ext := art.Benchmarks[0]
	if ext.Name != "BenchmarkTable1_Extraction/dblp" {
		t.Fatalf("GOMAXPROCS suffix not stripped: %q", ext.Name)
	}
	if ext.Count != 3 || ext.MedianNsPerOp != 51234567 || ext.MinNsPerOp != 49234567 {
		t.Fatalf("aggregates over 3 runs: %+v", ext)
	}
	srv := art.Benchmarks[1]
	if srv.Name != "BenchmarkServerThroughput" || srv.MedianNsPerOp != 123456 || srv.MinNsPerOp != 120000 {
		t.Fatalf("server benchmark: %+v", srv)
	}
}

func TestConvertEmptyInput(t *testing.T) {
	art, err := Convert(strings.NewReader("no benchmarks here\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(art.Benchmarks) != 0 {
		t.Fatalf("parsed benchmarks from noise: %+v", art.Benchmarks)
	}
}

func art(pairs ...any) *Artifact {
	a := &Artifact{SchemaVersion: SchemaVersion}
	for i := 0; i < len(pairs); i += 2 {
		ns := int64(pairs[i+1].(int))
		a.Benchmarks = append(a.Benchmarks, Benchmark{
			Name: pairs[i].(string), RunsNsPerOp: []int64{ns}, MinNsPerOp: ns, MedianNsPerOp: ns, Count: 1,
		})
	}
	return a
}

// TestCompareGatesOnMinNotMedian pins the gate metric: a PR whose median
// regressed from one noisy run but whose fastest run matches the
// baseline must pass.
func TestCompareGatesOnMinNotMedian(t *testing.T) {
	base := art("BenchmarkA", 1000)
	pr := &Artifact{SchemaVersion: SchemaVersion, Benchmarks: []Benchmark{{
		Name: "BenchmarkA", RunsNsPerOp: []int64{1000, 2000, 2500}, MinNsPerOp: 1000, MedianNsPerOp: 2000, Count: 3,
	}}}
	report, failed := Compare(base, pr, 0.30)
	if failed {
		t.Fatalf("min-of-runs within threshold failed the gate:\n%s", report)
	}
}

// TestGateValueFallsBackToMedian covers artifacts written before
// min_ns_per_op existed.
func TestGateValueFallsBackToMedian(t *testing.T) {
	if v := gateValue(Benchmark{MedianNsPerOp: 42}); v != 42 {
		t.Fatalf("fallback gate value = %d, want 42", v)
	}
	if v := gateValue(Benchmark{MinNsPerOp: 7, MedianNsPerOp: 42}); v != 7 {
		t.Fatalf("gate value = %d, want 7", v)
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		name     string
		baseline *Artifact
		pr       *Artifact
		wantFail bool
		wantMark string
	}{
		{
			name:     "within threshold",
			baseline: art("BenchmarkA", 1000),
			pr:       art("BenchmarkA", 1250),
			wantFail: false,
			wantMark: "OK",
		},
		{
			name:     "regression beyond 30 percent",
			baseline: art("BenchmarkA", 1000),
			pr:       art("BenchmarkA", 1400),
			wantFail: true,
			wantMark: "REGRESS",
		},
		{
			name:     "exactly at threshold passes",
			baseline: art("BenchmarkA", 1000),
			pr:       art("BenchmarkA", 1300),
			wantFail: false,
			wantMark: "OK",
		},
		{
			name:     "improvement",
			baseline: art("BenchmarkA", 1000),
			pr:       art("BenchmarkA", 500),
			wantFail: false,
			wantMark: "IMPROVE",
		},
		{
			name:     "baseline benchmark missing from pr fails",
			baseline: art("BenchmarkA", 1000, "BenchmarkB", 2000),
			pr:       art("BenchmarkA", 1000),
			wantFail: true,
			wantMark: "MISSING",
		},
		{
			name:     "new benchmark reported not failed",
			baseline: art("BenchmarkA", 1000),
			pr:       art("BenchmarkA", 1000, "BenchmarkNew", 5),
			wantFail: false,
			wantMark: "NEW",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			report, failed := Compare(tc.baseline, tc.pr, 0.30)
			if failed != tc.wantFail {
				t.Fatalf("failed=%v want %v\n%s", failed, tc.wantFail, report)
			}
			if !strings.Contains(report, tc.wantMark) {
				t.Fatalf("report missing %q:\n%s", tc.wantMark, report)
			}
		})
	}
}

func TestMedian(t *testing.T) {
	if m := median([]int64{3, 1, 2}); m != 2 {
		t.Fatalf("median odd = %d", m)
	}
	if m := median([]int64{4, 1, 3, 2}); m != 2 {
		t.Fatalf("median even (lower middle) = %d", m)
	}
	in := []int64{9, 1}
	median(in)
	if in[0] != 9 {
		t.Fatal("median mutated its input")
	}
}
