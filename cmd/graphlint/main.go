// Command graphlint machine-checks GraphGen's repo-specific invariants —
// the contracts previously enforced only by review and randomized tests:
//
//	keyencode     composite keys over relstore.Value data use Value.AppendKey
//	lockorder     internal/server: dbMu before sessMu; table access under dbMu
//	notifyorder   relstore mutators route through notify; indexes before subscribers
//	determinism   deterministic packages shun wall clocks, global rand, map-order appends
//	lockedreturn  returns must not leak a held mutex
//	iterclose     row iterators in relstore/extract/datalogeval are closed or handed off
//	spanend       trace spans in relstore/extract/datalogeval are ended or handed off
//	guardedby     fields annotated graphlint:guardedby are accessed under their mutex
//	nilsafe       internal/obs: exported *Trace/*Span methods begin with a nil guard
//
// Usage:
//
//	graphlint [-list] [-counts] [package patterns]
//
// Patterns default to ./... rooted at the current directory. Findings are
// suppressed only by an inline "//lint:ignore <analyzer> <justification>"
// on the same or preceding line; malformed or stale directives are
// themselves findings. Exit status: 0 clean, 1 findings or analysis
// failure, 2 usage errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"graphgen/internal/analyzers"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("graphlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list analyzers and exit")
	counts := fs.Bool("counts", false, "print per-analyzer finding counts after the findings")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: graphlint [-list] [-counts] [package patterns]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	suite := analyzers.All()
	if *list {
		for _, a := range suite {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(stdout, "%-14s %s\n", analyzers.LintName, "lint:ignore directives carry a justification and suppress something")
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analyzers.LoadPackages(".", patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "graphlint: %v\n", err)
		return 1
	}
	diags, err := analyzers.RunAnalyzers(pkgs, suite)
	if err != nil {
		fmt.Fprintf(stderr, "graphlint: %v\n", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if *counts {
		byName := map[string]int{}
		for _, d := range diags {
			byName[d.Analyzer]++
		}
		for _, a := range suite {
			fmt.Fprintf(stdout, "%-14s %d\n", a.Name, byName[a.Name])
		}
		fmt.Fprintf(stdout, "%-14s %d\n", analyzers.LintName, byName[analyzers.LintName])
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "graphlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
