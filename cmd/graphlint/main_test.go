package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// inDir runs fn with the working directory switched to dir.
func inDir(t *testing.T, dir string, fn func()) {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(old); err != nil {
			t.Fatal(err)
		}
	}()
	fn()
}

func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const smokeGoMod = "module graphlintsmoke\n\ngo 1.22\n"

// TestSeededViolations: a module seeded with a locked return and a bare
// lint:ignore directive exits nonzero and names both analyzers.
func TestSeededViolations(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": smokeGoMod,
		"bad.go": `package smoke

import "sync"

var mu sync.Mutex

func leak(fail bool) int {
	mu.Lock()
	if fail {
		return 0
	}
	mu.Unlock()
	return 1
}

func stale() {
	//lint:ignore lockedreturn
	mu.Lock()
	mu.Unlock()
}
`,
	})
	inDir(t, dir, func() {
		var out, errb bytes.Buffer
		code := run([]string{"./..."}, &out, &errb)
		if code != 1 {
			t.Fatalf("exit %d, want 1\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
		}
		for _, sub := range []string{"lockedreturn: return leaks mu.Lock", "lint: lint:ignore needs an analyzer list"} {
			if !strings.Contains(out.String(), sub) {
				t.Errorf("output missing %q:\n%s", sub, out.String())
			}
		}
	})
}

// TestCleanModule: nothing to report, exit 0, no output.
func TestCleanModule(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": smokeGoMod,
		"ok.go": `package smoke

import "sync"

var mu sync.Mutex

func fine() int {
	mu.Lock()
	defer mu.Unlock()
	return 1
}
`,
	})
	inDir(t, dir, func() {
		var out, errb bytes.Buffer
		if code := run([]string{"./..."}, &out, &errb); code != 0 {
			t.Fatalf("exit %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
		}
		if out.Len() != 0 {
			t.Errorf("unexpected output: %s", out.String())
		}
	})
}

// TestRepoClean gates the repository itself: the full graphlint suite over
// every module package must be silent. This is the tree-wide invariant
// check the linter exists for, enforced from go test.
func TestRepoClean(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"graphgen/..."}, &out, &errb); code != 0 {
		t.Fatalf("graphlint is not clean over the repo (exit %d):\n%s%s", code, out.String(), errb.String())
	}
}

// TestListFlag prints the suite and exits 0.
func TestListFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	for _, name := range []string{"keyencode", "lockorder", "notifyorder", "determinism", "lockedreturn", "guardedby", "nilsafe", "lint"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, out.String())
		}
	}
}

// TestCountsFlag: -counts appends a per-analyzer tally — findings under
// their analyzers, zeros for the quiet ones — without changing the exit
// semantics.
func TestCountsFlag(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": smokeGoMod,
		"bad.go": `package smoke

import "sync"

var mu sync.Mutex

func leak(fail bool) int {
	mu.Lock()
	if fail {
		return 0
	}
	mu.Unlock()
	return 1
}
`,
	})
	inDir(t, dir, func() {
		var out, errb bytes.Buffer
		if code := run([]string{"-counts", "./..."}, &out, &errb); code != 1 {
			t.Fatalf("exit %d, want 1\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
		}
		var sawLocked, sawQuiet bool
		for _, line := range strings.Split(out.String(), "\n") {
			fields := strings.Fields(line)
			if len(fields) != 2 {
				continue
			}
			switch fields[0] {
			case "lockedreturn":
				sawLocked = fields[1] == "1"
			case "keyencode":
				sawQuiet = fields[1] == "0"
			}
		}
		if !sawLocked || !sawQuiet {
			t.Errorf("-counts output missing tallies (lockedreturn=1: %v, keyencode=0: %v):\n%s", sawLocked, sawQuiet, out.String())
		}
	})
}

// TestUsageError: flag errors are usage errors, exit 2.
func TestUsageError(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-nosuchflag"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}
