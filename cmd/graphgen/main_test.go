package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunDispatch is the table-driven flag-to-pipeline dispatch test: for
// each invocation it checks the process exit code and a substring of the
// stream the outcome is reported on (stdout for results, stderr for
// errors). Usage errors exit 2 and name the valid options; runtime
// failures exit 1.
func TestRunDispatch(t *testing.T) {
	tmp := t.TempDir()
	edgeFile := filepath.Join(tmp, "out.el")
	queryFile := filepath.Join(tmp, "q.dl")
	if err := os.WriteFile(queryFile, []byte(
		"Nodes(ID, Name) :- Student(ID, Name).\nEdges(A, B) :- TookCourse(A, C), TookCourse(B, C).\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	badQueryFile := filepath.Join(tmp, "bad.dl")
	if err := os.WriteFile(badQueryFile, []byte("Nodes("), 0o644); err != nil {
		t.Fatal(err)
	}
	// Recursive reachability over the course-link graph (courses linked
	// when a student took both), then instructor pairs connected through
	// reachable courses — 3 strata once the Edges body (it carries a
	// comparison) desugars into its own derived predicate.
	programFile := filepath.Join(tmp, "reach.dl")
	if err := os.WriteFile(programFile, []byte(
		"Link(C, D) :- TookCourse(S, C), TookCourse(S, D), C != D.\n"+
			"CReach(C, D) :- Link(C, D).\n"+
			"CReach(C, E) :- CReach(C, D), Link(D, E).\n"+
			"Nodes(ID, Name) :- Instructor(ID, Name).\n"+
			"Edges(A, B) :- TaughtCourse(A, C), CReach(C, D), TaughtCourse(B, D), A != B.\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	unstratifiedFile := filepath.Join(tmp, "cycle.dl")
	if err := os.WriteFile(unstratifiedFile, []byte(
		"P(A) :- Student(A, _), !P(A).\nNodes(A) :- Student(A, _).\nEdges(A, B) :- P(A), P(B).\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name       string
		args       []string
		wantCode   int
		wantStdout string // substring; "" skips the check
		wantStderr string
	}{
		{
			name:       "validate case 1",
			args:       []string{"-validate", "Nodes(A):-R(A). Edges(A,B):-R(A,X),R(B,X)."},
			wantCode:   0,
			wantStdout: "Case 1 (condensable chain)",
		},
		{
			name:       "validate parse error exits 1",
			args:       []string{"-validate", "Nodes("},
			wantCode:   1,
			wantStderr: "graphgen:",
		},
		{
			name:       "extraction on builtin dataset",
			args:       []string{"-dataset", "univ"},
			wantCode:   0,
			wantStdout: "extracted",
		},
		{
			name:       "analysis dispatch",
			args:       []string{"-dataset", "univ", "-analyze", "components"},
			wantCode:   0,
			wantStdout: "connected components:",
		},
		{
			name:       "sssp analysis on the social network",
			args:       []string{"-dataset", "snb", "-analyze", "sssp"},
			wantCode:   0,
			wantStdout: "sssp from 4 sources: reached",
		},
		{
			name:       "closeness analysis on the social network",
			args:       []string{"-dataset", "snb", "-analyze", "closeness"},
			wantCode:   0,
			wantStdout: "closeness: top vertex",
		},
		{
			name:       "representation conversion dispatch",
			args:       []string{"-dataset", "univ", "-rep", "exp"},
			wantCode:   0,
			wantStdout: "converted to EXP",
		},
		{
			name:       "edge list output",
			args:       []string{"-dataset", "univ", "-out", edgeFile},
			wantCode:   0,
			wantStdout: "wrote edge list",
		},
		{
			name:       "query file override",
			args:       []string{"-dataset", "univ", "-query-file", queryFile, "-analyze", "degree"},
			wantCode:   0,
			wantStdout: "degree: max",
		},
		{
			name:       "suggest mode",
			args:       []string{"-dataset", "univ", "-suggest"},
			wantCode:   0,
			wantStdout: "co-membership",
		},
		{
			name:       "recursive program extraction",
			args:       []string{"-dataset", "univ", "-program", programFile, "-analyze", "components"},
			wantCode:   0,
			wantStdout: "program: 3 strata",
		},
		{
			name:       "program with analysis output",
			args:       []string{"-dataset", "univ", "-program", programFile},
			wantCode:   0,
			wantStdout: "derived tuples",
		},
		{
			name:       "program and query-file together exit 2",
			args:       []string{"-dataset", "univ", "-program", programFile, "-query-file", queryFile},
			wantCode:   2,
			wantStderr: "mutually exclusive",
		},
		{
			name:       "missing program file exits 1",
			args:       []string{"-dataset", "univ", "-program", filepath.Join(tmp, "nope.dl")},
			wantCode:   1,
			wantStderr: "no such file",
		},
		{
			name:       "unstratifiable program exits 1",
			args:       []string{"-dataset", "univ", "-program", unstratifiedFile},
			wantCode:   1,
			wantStderr: "negation cycle",
		},
		{
			name:       "unknown dataset exits 2 and lists options",
			args:       []string{"-dataset", "oracle"},
			wantCode:   2,
			wantStderr: "valid: dblp, imdb, tpch, univ",
		},
		{
			name:       "unknown rep exits 2 and lists options",
			args:       []string{"-rep", "csr"},
			wantCode:   2,
			wantStderr: "valid: cdup, exp, dedup1, dedup2, bitmap",
		},
		{
			name:       "unknown analyze exits 2 and lists options",
			args:       []string{"-analyze", "eigenvector"},
			wantCode:   2,
			wantStderr: "valid: degree, bfs, pagerank, components, triangles",
		},
		{
			name:       "unknown flag exits 2",
			args:       []string{"-no-such-flag"},
			wantCode:   2,
			wantStderr: "flag provided but not defined",
		},
		{
			name:       "bad csv pair exits 2",
			args:       []string{"-csv", "nopath"},
			wantCode:   2,
			wantStderr: "name=path pairs",
		},
		{
			name:       "missing csv file exits 1",
			args:       []string{"-csv", "t=" + filepath.Join(tmp, "missing.csv")},
			wantCode:   1,
			wantStderr: "no such file",
		},
		{
			name:       "csv db without query exits 2",
			args:       []string{"-csv", "t=" + mustCSV(t, tmp), "-analyze", "degree"},
			wantCode:   2,
			wantStderr: "no query",
		},
		{
			name:       "malformed query file exits 1",
			args:       []string{"-dataset", "univ", "-query-file", badQueryFile},
			wantCode:   1,
			wantStderr: "graphgen:",
		},
		{
			name:       "unwritable out path exits 1",
			args:       []string{"-dataset", "univ", "-out", filepath.Join(tmp, "no-dir", "x.el")},
			wantCode:   1,
			wantStderr: "no such file",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr strings.Builder
			code := run(tc.args, &stdout, &stderr)
			if code != tc.wantCode {
				t.Fatalf("exit code %d, want %d\nstdout: %s\nstderr: %s", code, tc.wantCode, stdout.String(), stderr.String())
			}
			if tc.wantStdout != "" && !strings.Contains(stdout.String(), tc.wantStdout) {
				t.Fatalf("stdout missing %q:\n%s", tc.wantStdout, stdout.String())
			}
			if tc.wantStderr != "" && !strings.Contains(stderr.String(), tc.wantStderr) {
				t.Fatalf("stderr missing %q:\n%s", tc.wantStderr, stderr.String())
			}
		})
	}
}

// mustCSV writes a tiny CSV table and returns its path.
func mustCSV(t *testing.T, dir string) string {
	t.Helper()
	path := filepath.Join(dir, "t.csv")
	if err := os.WriteFile(path, []byte("id,grp\n1,10\n2,10\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseRep(t *testing.T) {
	for _, s := range []string{"cdup", "C-DUP", "exp", "dedup1", "DEDUP-2", "bitmap", "bmp"} {
		if _, err := parseRep(s); err != nil {
			t.Errorf("parseRep(%q) = %v, want nil", s, err)
		}
	}
	if _, err := parseRep("adjacency"); err == nil || !strings.Contains(err.Error(), "valid:") {
		t.Errorf("parseRep(adjacency) = %v, want usage error listing options", err)
	}
}
