// Command graphgen runs a graph-extraction query against one of the built-in
// generated databases (or demonstrates the planner with -validate), prints
// extraction statistics, optionally converts the representation, runs an
// analysis, and serializes the result.
//
// Usage examples:
//
//	graphgen -dataset dblp -query-file coauthors.dl -analyze pagerank
//	graphgen -dataset tpch -rep bitmap -out graph.el
//	graphgen -validate 'Nodes(A):-R(A). Edges(A,B):-R(A,X),R(B,X).'
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"graphgen"
	"graphgen/internal/datagen"
)

func main() {
	dataset := flag.String("dataset", "dblp", "built-in dataset: dblp, imdb, tpch, univ")
	queryFile := flag.String("query-file", "", "file containing the extraction query (default: the dataset's canonical query)")
	rep := flag.String("rep", "cdup", "target representation: cdup, exp, dedup1, dedup2, bitmap")
	analyze := flag.String("analyze", "", "analysis to run: degree, bfs, pagerank, components, triangles")
	out := flag.String("out", "", "write the expanded edge list to this file")
	outJSON := flag.String("out-json", "", "write the graph as JSON to this file")
	validate := flag.String("validate", "", "parse and classify a query (Case 1 vs Case 2) and exit")
	seed := flag.Int64("seed", 1, "dataset generator seed")
	suggestFlag := flag.Bool("suggest", false, "propose candidate extraction queries for the dataset's schema and exit")
	csvTables := flag.String("csv", "", "comma-separated name=path.csv pairs loaded into a fresh database instead of -dataset")
	workers := flag.Int("workers", 0, "worker-pool parallelism for extraction and conversion (0 = GOMAXPROCS, 1 = serial)")
	flag.Parse()

	if *validate != "" {
		cases, err := graphgen.Validate(*validate)
		if err != nil {
			fatal(err)
		}
		for i, ok := range cases {
			kind := "Case 2 (full expansion)"
			if ok {
				kind = "Case 1 (condensable chain)"
			}
			fmt.Printf("Edges rule %d: %s\n", i+1, kind)
		}
		return
	}

	var db *graphgen.DB
	var query string
	if *csvTables != "" {
		db = graphgen.NewDB()
		for _, pair := range strings.Split(*csvTables, ",") {
			name, path, ok := strings.Cut(pair, "=")
			if !ok {
				fatal(fmt.Errorf("-csv needs name=path pairs, got %q", pair))
			}
			f, err := os.Open(path)
			if err != nil {
				fatal(err)
			}
			_, err = db.LoadCSV(name, f)
			f.Close()
			if err != nil {
				fatal(err)
			}
		}
	} else {
		db, query = builtinDataset(*dataset, *seed)
	}
	if *queryFile != "" {
		data, err := os.ReadFile(*queryFile)
		if err != nil {
			fatal(err)
		}
		query = string(data)
	}

	if *suggestFlag {
		props, err := graphgen.Suggest(db)
		if err != nil {
			fatal(err)
		}
		if len(props) == 0 {
			fmt.Println("no graph proposals found for this schema")
			return
		}
		for i, p := range props {
			fmt.Printf("#%d [%s] %s (est. %d edges)\n%s\n", i+1, p.Kind, p.Description, p.EstimatedEdges, indent(p.Query))
		}
		return
	}
	if query == "" {
		fatal(fmt.Errorf("no query: pass -query-file or use a built-in -dataset"))
	}

	engine := graphgen.NewEngine(db, graphgen.WithParallelism(*workers))
	g, err := engine.Extract(query)
	if err != nil {
		fatal(err)
	}
	st := g.ExtractionStats()
	fmt.Printf("extracted %s graph: %d vertices, %d virtual nodes, %d representation edges\n",
		g.Representation(), g.NumVertices(), g.NumVirtualNodes(), g.RepEdges())
	fmt.Printf("planner: %d large-output joins postponed, %d joins handed to the database, %d Case-2 rules\n",
		st.LargeOutputJoins, st.DatabaseJoins, st.Case2Rules)

	if target := parseRep(*rep); target != g.Representation() {
		conv, err := g.As(target, graphgen.DedupOptions{Workers: *workers})
		if err != nil {
			fatal(fmt.Errorf("converting to %v: %w", target, err))
		}
		g = conv
		fmt.Printf("converted to %s: %d representation edges, ~%.2f MB\n",
			g.Representation(), g.RepEdges(), float64(g.MemBytes())/(1<<20))
	}

	switch *analyze {
	case "":
	case "degree":
		deg := g.Degrees()
		max, maxID := -1, int64(0)
		for id, d := range deg {
			if d > max {
				max, maxID = d, id
			}
		}
		fmt.Printf("degree: max %d at vertex %d\n", max, maxID)
	case "bfs":
		it := g.Vertices()
		src, _ := it.Next()
		visited, depth := g.BFS(src)
		fmt.Printf("bfs from %d: visited %d vertices, max depth %d\n", src, visited, depth)
	case "pagerank":
		pr := g.PageRank(20, 0.85)
		best, bestID := -1.0, int64(0)
		for id, r := range pr {
			if r > best {
				best, bestID = r, id
			}
		}
		name, _ := g.PropertyOf(bestID, "Name")
		fmt.Printf("pagerank: top vertex %d (%s) with rank %.6f\n", bestID, name, best)
	case "components":
		_, n := g.ConnectedComponents()
		fmt.Printf("connected components: %d\n", n)
	case "triangles":
		fmt.Printf("triangles: %d\n", g.CountTriangles())
	default:
		fatal(fmt.Errorf("unknown -analyze %q", *analyze))
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := g.WriteEdgeList(f); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote edge list to %s\n", *out)
	}
	if *outJSON != "" {
		f, err := os.Create(*outJSON)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := g.WriteJSON(f); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote JSON to %s\n", *outJSON)
	}
}

func builtinDataset(name string, seed int64) (*graphgen.DB, string) {
	switch strings.ToLower(name) {
	case "dblp":
		return datagen.DBLPLike(seed, 2000, 1600), datagen.QueryCoauthors
	case "imdb":
		return datagen.IMDBLike(seed, 1200, 200), datagen.QueryCoactors
	case "tpch":
		return datagen.TPCHLike(seed, 250, 1500, 30, 3), datagen.QuerySamePart
	case "univ":
		return datagen.UnivLike(seed, 600, 20, 40, 4), datagen.QuerySameCourse
	default:
		fatal(fmt.Errorf("unknown dataset %q (have dblp, imdb, tpch, univ)", name))
		return nil, ""
	}
}

func parseRep(s string) graphgen.Representation {
	switch strings.ToLower(s) {
	case "cdup", "c-dup":
		return graphgen.CDUP
	case "exp":
		return graphgen.EXP
	case "dedup1", "dedup-1":
		return graphgen.DEDUP1
	case "dedup2", "dedup-2":
		return graphgen.DEDUP2
	case "bitmap", "bmp":
		return graphgen.BITMAP
	default:
		fatal(fmt.Errorf("unknown representation %q", s))
		return graphgen.CDUP
	}
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = "    " + lines[i]
	}
	return strings.Join(lines, "\n")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "graphgen:", err)
	os.Exit(1)
}
