// Command graphgen runs a graph-extraction query against one of the built-in
// generated databases (or demonstrates the planner with -validate), prints
// extraction statistics, optionally converts the representation, runs an
// analysis, and serializes the result.
//
// Usage examples:
//
//	graphgen -dataset dblp -query-file coauthors.dl -analyze pagerank
//	graphgen -dataset dblp -program reach.dl -analyze components
//	graphgen -dataset tpch -rep bitmap -out graph.el
//	graphgen -validate 'Nodes(A):-R(A). Edges(A,B):-R(A,X),R(B,X).'
//
// Exit codes: 0 on success, 1 on runtime failure (I/O, extraction,
// serialization), 2 on usage errors (unknown flags or invalid flag
// values — the error lists the valid options).
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"slices"
	"strings"

	"graphgen"
	"graphgen/internal/datagen"
	"graphgen/internal/workload"
)

// Valid flag-value sets, shared by dispatch and error messages.
var (
	validReps     = []string{"cdup", "exp", "dedup1", "dedup2", "bitmap"}
	validAnalyses = []string{"degree", "bfs", "pagerank", "components", "triangles", "sssp", "closeness"}
)

// usageError marks a flag-validation failure: run exits 2 instead of 1.
type usageError struct{ error }

func usagef(format string, args ...any) error {
	return usageError{fmt.Errorf(format, args...)}
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// config is the parsed, validated flag set — the flag-to-pipeline
// dispatch input, separated from flag.Parse so tests can drive it.
type config struct {
	dataset     string
	queryFile   string
	programFile string
	rep         graphgen.Representation
	analyze     string
	out         string
	outJSON     string
	validate    string
	seed        int64
	suggest     bool
	csvTables   string
	workers     int
	noIndex     bool
	explain     bool
}

// errParseReported marks a flag.Parse failure: the FlagSet has already
// printed the error and usage to stderr, so run must not print it again.
var errParseReported = errors.New("flag parse error (already reported)")

// run parses and validates flags, then dispatches the pipeline. It is
// the testable entry point behind main.
func run(args []string, stdout, stderr io.Writer) int {
	cfg, err := parseFlags(args, stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		if !errors.Is(err, errParseReported) {
			fmt.Fprintln(stderr, "graphgen:", err)
		}
		return 2
	}
	if err := dispatch(cfg, stdout); err != nil {
		fmt.Fprintln(stderr, "graphgen:", err)
		var ue usageError
		if errors.As(err, &ue) {
			return 2
		}
		return 1
	}
	return 0
}

// parseFlags parses the command line and validates every enumerated flag
// value, so bad invocations fail before any dataset is generated.
func parseFlags(args []string, stderr io.Writer) (config, error) {
	fs := flag.NewFlagSet("graphgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dataset := fs.String("dataset", "dblp", "built-in dataset: "+strings.Join(datagen.BuiltinDatasets, ", "))
	queryFile := fs.String("query-file", "", "file containing the extraction query (default: the dataset's canonical query)")
	programFile := fs.String("program", "", "file containing a multi-rule Datalog program (recursion, negation, comparisons); mutually exclusive with -query-file")
	rep := fs.String("rep", "cdup", "target representation: "+strings.Join(validReps, ", "))
	analyze := fs.String("analyze", "", "analysis to run: "+strings.Join(validAnalyses, ", "))
	out := fs.String("out", "", "write the expanded edge list to this file")
	outJSON := fs.String("out-json", "", "write the graph as JSON to this file")
	validate := fs.String("validate", "", "parse and classify a query (Case 1 vs Case 2) and exit")
	seed := fs.Int64("seed", 1, "dataset generator seed")
	suggestFlag := fs.Bool("suggest", false, "propose candidate extraction queries for the dataset's schema and exit")
	csvTables := fs.String("csv", "", "comma-separated name=path.csv pairs loaded into a fresh database instead of -dataset")
	workers := fs.Int("workers", 0, "worker-pool parallelism for extraction and conversion (0 = GOMAXPROCS, 1 = serial)")
	noIndex := fs.Bool("no-index", false, "disable automatic secondary hash indexes on join/predicate columns (indexes are on by default)")
	explain := fs.Bool("explain", false, "trace the extraction and print its execution profile as JSON (operator tree, access-path choices, rows, wall time)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return config{}, err
		}
		return config{}, fmt.Errorf("%w: %v", errParseReported, err)
	}
	cfg := config{
		dataset:     *dataset,
		queryFile:   *queryFile,
		programFile: *programFile,
		analyze:     *analyze,
		out:         *out,
		outJSON:     *outJSON,
		validate:    *validate,
		seed:        *seed,
		suggest:     *suggestFlag,
		csvTables:   *csvTables,
		workers:     *workers,
		noIndex:     *noIndex,
		explain:     *explain,
	}
	var err error
	if cfg.rep, err = parseRep(*rep); err != nil {
		return config{}, err
	}
	if cfg.programFile != "" && cfg.queryFile != "" {
		return config{}, usagef("-program and -query-file are mutually exclusive (pass one of them)")
	}
	if cfg.analyze != "" && !slices.Contains(validAnalyses, strings.ToLower(cfg.analyze)) {
		return config{}, usagef("unknown -analyze %q (valid: %s)", cfg.analyze, strings.Join(validAnalyses, ", "))
	}
	cfg.analyze = strings.ToLower(cfg.analyze)
	return cfg, nil
}

// dispatch routes a validated config through the pipeline: validate-only
// and suggest-only modes short-circuit; otherwise extract, convert,
// analyze, serialize.
func dispatch(cfg config, stdout io.Writer) error {
	if cfg.validate != "" {
		cases, err := graphgen.Validate(cfg.validate)
		if err != nil {
			return err
		}
		for i, ok := range cases {
			kind := "Case 2 (full expansion)"
			if ok {
				kind = "Case 1 (condensable chain)"
			}
			fmt.Fprintf(stdout, "Edges rule %d: %s\n", i+1, kind)
		}
		return nil
	}

	db, query, err := loadDatabase(cfg)
	if err != nil {
		return err
	}
	if cfg.queryFile != "" {
		data, err := os.ReadFile(cfg.queryFile)
		if err != nil {
			return err
		}
		query = string(data)
	}

	if cfg.suggest {
		props, err := graphgen.Suggest(db)
		if err != nil {
			return err
		}
		if len(props) == 0 {
			fmt.Fprintln(stdout, "no graph proposals found for this schema")
			return nil
		}
		for i, p := range props {
			fmt.Fprintf(stdout, "#%d [%s] %s (est. %d edges)\n%s\n", i+1, p.Kind, p.Description, p.EstimatedEdges, indent(p.Query))
		}
		return nil
	}
	engine := graphgen.NewEngine(db, graphgen.WithParallelism(cfg.workers), graphgen.WithAutoIndex(!cfg.noIndex))
	var extractOpts []graphgen.Option
	if cfg.explain {
		extractOpts = append(extractOpts, graphgen.WithProfile())
	}
	var g *graphgen.Graph
	if cfg.programFile != "" {
		data, err := os.ReadFile(cfg.programFile)
		if err != nil {
			return err
		}
		if g, err = engine.ExtractProgram(string(data), extractOpts...); err != nil {
			return err
		}
		es, _ := g.ProgramStats()
		fmt.Fprintf(stdout, "program: %d strata, %d semi-naive iterations, %d derived tuples in %d temp tables\n",
			es.Strata, es.Iterations, es.DerivedTuples, es.TempTables)
	} else {
		if query == "" {
			return usagef("no query: pass -query-file, -program, or use a built-in -dataset")
		}
		if g, err = engine.Extract(query, extractOpts...); err != nil {
			return err
		}
	}
	if cfg.explain {
		if prof := g.Profile(); prof != nil {
			fmt.Fprintln(stdout, "execution profile:")
			enc := json.NewEncoder(stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(prof); err != nil {
				return err
			}
		}
	}
	st := g.ExtractionStats()
	fmt.Fprintf(stdout, "extracted %s graph: %d vertices, %d virtual nodes, %d representation edges\n",
		g.Representation(), g.NumVertices(), g.NumVirtualNodes(), g.RepEdges())
	fmt.Fprintf(stdout, "planner: %d large-output joins postponed, %d joins handed to the database, %d Case-2 rules\n",
		st.LargeOutputJoins, st.DatabaseJoins, st.Case2Rules)

	if cfg.rep != g.Representation() {
		conv, err := g.As(cfg.rep, graphgen.DedupOptions{Workers: cfg.workers})
		if err != nil {
			return fmt.Errorf("converting to %v: %w", cfg.rep, err)
		}
		g = conv
		fmt.Fprintf(stdout, "converted to %s: %d representation edges, ~%.2f MB\n",
			g.Representation(), g.RepEdges(), float64(g.MemBytes())/(1<<20))
	}

	if err := runAnalysis(g, cfg.analyze, stdout); err != nil {
		return err
	}

	if cfg.out != "" {
		if err := writeFile(cfg.out, g.WriteEdgeList); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote edge list to %s\n", cfg.out)
	}
	if cfg.outJSON != "" {
		if err := writeFile(cfg.outJSON, g.WriteJSON); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote JSON to %s\n", cfg.outJSON)
	}
	return nil
}

// loadDatabase builds the queried database: CSV tables when -csv is
// given, otherwise the named built-in dataset with its canonical query.
func loadDatabase(cfg config) (*graphgen.DB, string, error) {
	if cfg.csvTables == "" {
		db, query, err := datagen.ByName(cfg.dataset, cfg.seed)
		if err != nil {
			return nil, "", usageError{err}
		}
		return db, query, nil
	}
	db := graphgen.NewDB()
	if err := db.LoadCSVFiles(cfg.csvTables); err != nil {
		if errors.Is(err, graphgen.ErrCSVSpec) {
			return nil, "", usageError{err}
		}
		return nil, "", err
	}
	return db, "", nil
}

// runAnalysis executes the named analysis and prints its summary line.
// The name is validated at flag-parse time; "" is a no-op.
func runAnalysis(g *graphgen.Graph, analyze string, stdout io.Writer) error {
	switch analyze {
	case "":
		return nil
	case "degree":
		deg := g.Degrees()
		max, maxID := -1, int64(0)
		for id, d := range deg {
			if d > max {
				max, maxID = d, id
			}
		}
		fmt.Fprintf(stdout, "degree: max %d at vertex %d\n", max, maxID)
	case "bfs":
		it := g.Vertices()
		src, _ := it.Next()
		visited, depth := g.BFS(src)
		fmt.Fprintf(stdout, "bfs from %d: visited %d vertices, max depth %d\n", src, visited, depth)
	case "pagerank":
		pr := g.PageRank(20, 0.85)
		best, bestID := -1.0, int64(0)
		for id, r := range pr {
			if r > best {
				best, bestID = r, id
			}
		}
		name, _ := g.PropertyOf(bestID, "Name")
		fmt.Fprintf(stdout, "pagerank: top vertex %d (%s) with rank %.6f\n", bestID, name, best)
	case "components":
		_, n := g.ConnectedComponents()
		fmt.Fprintf(stdout, "connected components: %d\n", n)
	case "triangles":
		fmt.Fprintf(stdout, "triangles: %d\n", g.CountTriangles())
	case "sssp":
		snap := workload.Snap(g)
		res := snap.MultiSourceBFS(snap.SampleSources(4))
		fmt.Fprintf(stdout, "sssp from %d sources: reached %d vertices (%d unreached), max depth %d, sum of distances %d\n",
			len(res.Sources), res.Reached, res.Unreached, res.MaxDepth, res.SumDist)
	case "closeness":
		snap := workload.Snap(g)
		top := workload.TopCloseness(snap.Closeness(snap.SampleSources(64), 0), 1)
		if len(top) == 0 {
			fmt.Fprintln(stdout, "closeness: empty graph")
			return nil
		}
		name, _ := g.PropertyOf(top[0].ID, "Name")
		fmt.Fprintf(stdout, "closeness: top vertex %d (%s) with score %.6f (reached %d)\n",
			top[0].ID, name, top[0].Closeness, top[0].Reached)
	default:
		return usagef("unknown -analyze %q (valid: %s)", analyze, strings.Join(validAnalyses, ", "))
	}
	return nil
}

func parseRep(s string) (graphgen.Representation, error) {
	switch strings.ToLower(s) {
	case "cdup", "c-dup":
		return graphgen.CDUP, nil
	case "exp":
		return graphgen.EXP, nil
	case "dedup1", "dedup-1":
		return graphgen.DEDUP1, nil
	case "dedup2", "dedup-2":
		return graphgen.DEDUP2, nil
	case "bitmap", "bmp":
		return graphgen.BITMAP, nil
	default:
		return graphgen.CDUP, usagef("unknown representation %q (valid: %s)", s, strings.Join(validReps, ", "))
	}
}

func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = "    " + lines[i]
	}
	return strings.Join(lines, "\n")
}
