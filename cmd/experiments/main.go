// Command experiments regenerates the tables and figures of the paper's
// evaluation (Section 6). Each experiment prints rows in the layout of the
// corresponding table/figure; see EXPERIMENTS.md for the paper-vs-measured
// comparison.
//
// Usage:
//
//	experiments -exp table1          # one experiment
//	experiments -exp all             # everything (the EXPERIMENTS.md run)
//	experiments -exp fig10 -quick    # smaller datasets, faster
//	experiments -list
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"graphgen/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (table1, table2, fig10, fig11, fig12a, fig12b, table3, fig13, table4, table5, table6, all)")
	quick := flag.Bool("quick", false, "use smaller datasets for a fast smoke run")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	scale := experiments.Scale{Quick: *quick}
	run := func(e experiments.Experiment) {
		start := time.Now()
		fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
		fmt.Print(e.Run(scale))
		fmt.Printf("(%s elapsed)\n\n", time.Since(start).Round(time.Millisecond))
	}
	if *exp == "all" {
		for _, e := range experiments.All() {
			run(e)
		}
		return
	}
	e, err := experiments.Lookup(*exp)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	run(e)
}
