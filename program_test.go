package graphgen

import (
	"errors"
	"math/rand"
	"testing"
)

// followsDB builds Person(id, name) and Follows(src, dst) with the given
// directed edges.
func followsDB(t *testing.T, n int, edges [][2]int64) *DB {
	t.Helper()
	db := NewDB()
	pt, err := db.Create("Person", Column{Name: "id", Type: Int}, Column{Name: "name", Type: String})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < int64(n); i++ {
		if err := pt.Insert(IntVal(i), StrVal("p")); err != nil {
			t.Fatal(err)
		}
	}
	ft, err := db.Create("Follows", Column{Name: "src", Type: Int}, Column{Name: "dst", Type: Int})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range edges {
		if err := ft.Insert(IntVal(e[0]), IntVal(e[1])); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// closure computes reachability pairs independently (per-source BFS).
func closure(n int, edges [][2]int64) map[[2]int64]struct{} {
	adj := make(map[int64][]int64)
	for _, e := range edges {
		adj[e[0]] = append(adj[e[0]], e[1])
	}
	out := make(map[[2]int64]struct{})
	for s := int64(0); s < int64(n); s++ {
		seen := map[int64]struct{}{}
		queue := []int64{s}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range adj[u] {
				if _, dup := seen[v]; dup {
					continue
				}
				seen[v] = struct{}{}
				out[[2]int64{s, v}] = struct{}{}
				queue = append(queue, v)
			}
		}
	}
	return out
}

const reachabilityProgram = `
Reach(A, B) :- Follows(A, B).
Reach(A, C) :- Reach(A, B), Follows(B, C).
Nodes(ID, Name) :- Person(ID, Name).
Edges(A, B) :- Reach(A, B).
`

// TestExtractProgramMatchesFixpoint is the end-to-end acceptance check: a
// recursive program extracted through the public API yields exactly the
// edges of an independently computed fixpoint, on randomized graphs.
func TestExtractProgramMatchesFixpoint(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 15 + rng.Intn(25)
		seen := make(map[[2]int64]struct{})
		var edges [][2]int64
		for len(edges) < n+rng.Intn(2*n) {
			e := [2]int64{int64(rng.Intn(n)), int64(rng.Intn(n))}
			if e[0] == e[1] {
				continue
			}
			if _, dup := seen[e]; dup {
				continue
			}
			seen[e] = struct{}{}
			edges = append(edges, e)
		}
		want := closure(n, edges)

		engine := NewEngine(followsDB(t, n, edges))
		g, err := engine.ExtractProgram(reachabilityProgram)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Self-loops are dropped by extraction (SelfLoops defaults off);
		// mirror that in the expectation.
		wantCount := 0
		for p := range want {
			if p[0] != p[1] {
				wantCount++
			}
		}
		var got int64
		it := g.Vertices()
		for {
			u, ok := it.Next()
			if !ok {
				break
			}
			nt := g.Neighbors(u)
			for {
				v, ok := nt.Next()
				if !ok {
					break
				}
				got++
				if _, ok := want[[2]int64{u, v}]; !ok {
					t.Fatalf("seed %d: extracted edge %d->%d not in the fixpoint", seed, u, v)
				}
			}
		}
		if got != int64(wantCount) {
			t.Fatalf("seed %d: %d edges, want %d", seed, got, wantCount)
		}
		st, ok := g.ProgramStats()
		if !ok || st.Strata != 1 || st.DerivedTuples != int64(len(want)) {
			t.Fatalf("seed %d: ProgramStats = %+v ok=%v, want %d derived tuples", seed, st, ok, len(want))
		}
	}
}

// TestExtractProgramNonRecursiveEquivalence: without derived predicates,
// ExtractProgram and Extract build the same graph.
func TestExtractProgramNonRecursiveEquivalence(t *testing.T) {
	edges := [][2]int64{{0, 1}, {1, 2}, {2, 3}, {3, 0}}
	db := followsDB(t, 4, edges)
	const q = `
Nodes(ID, Name) :- Person(ID, Name).
Edges(A, B) :- Follows(A, B).
`
	engine := NewEngine(db)
	g1, err := engine.Extract(q)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := engine.ExtractProgram(q)
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumVertices() != g2.NumVertices() || g1.LogicalEdges() != g2.LogicalEdges() {
		t.Fatalf("Extract %d/%d vs ExtractProgram %d/%d",
			g1.NumVertices(), g1.LogicalEdges(), g2.NumVertices(), g2.LogicalEdges())
	}
	if _, ok := g2.ProgramStats(); !ok {
		t.Fatal("ExtractProgram graphs must carry ProgramStats")
	}
	if st, _ := g2.ProgramStats(); st.Strata != 0 || st.DerivedTuples != 0 {
		t.Fatalf("non-recursive program stats = %+v, want zeros", st)
	}
}

func TestExtractProgramDerivedFeedsCondensedPlanner(t *testing.T) {
	// A recursive predicate used inside a chain body: the planner still
	// condenses the co-reachability join over the materialized temp
	// table. On a 12-node chain, Reach(A, X) holds for every A < X, so
	// each join value X is shared by many sources.
	db := followsDB(t, 12, func() [][2]int64 {
		var es [][2]int64
		for i := int64(0); i < 11; i++ {
			es = append(es, [2]int64{i, i + 1})
		}
		return es
	}())
	// WithoutPreprocessing keeps the small virtual nodes the Step-6 pass
	// would otherwise inline, so the assertion sees the condensed wiring.
	engine := NewEngine(db, WithForceCondensed(), WithoutPreprocessing())
	g, err := engine.ExtractProgram(`
Reach(A, B) :- Follows(A, B).
Reach(A, C) :- Reach(A, B), Follows(B, C).
Nodes(ID, Name) :- Person(ID, Name).
Edges(A, B) :- Reach(A, X), Reach(B, X).
`)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVirtualNodes() == 0 {
		t.Fatal("forced condensation over a derived predicate produced no virtual nodes")
	}
	if g.LogicalEdges() == 0 {
		t.Fatal("no edges extracted")
	}
	// Co-reachability through a shared X: nodes 0 and 1 both reach 2.
	if !g.ExistsEdge(0, 1) {
		t.Fatal("expected co-reachability edge 0-1")
	}
}

func TestExtractProgramMaxDerivedTuples(t *testing.T) {
	edges := [][2]int64{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}}
	engine := NewEngine(followsDB(t, 6, edges))
	_, err := engine.ExtractProgram(reachabilityProgram, WithMaxDerivedTuples(3))
	if !errors.Is(err, ErrTooManyDerived) {
		t.Fatalf("err = %v, want ErrTooManyDerived", err)
	}
}

func TestExtractProgramParseAndStratifyErrors(t *testing.T) {
	engine := NewEngine(followsDB(t, 3, [][2]int64{{0, 1}}))
	if _, err := engine.ExtractProgram("Nodes("); err == nil {
		t.Fatal("syntax error must surface")
	}
	_, err := engine.ExtractProgram(`
P(A) :- Person(A, _), !P(A).
Nodes(A) :- Person(A, _).
Edges(A, B) :- P(A), P(B).
`)
	if err == nil {
		t.Fatal("negation cycle must surface")
	}
}
