package graphgen

import (
	"graphgen/internal/datalog"
	"graphgen/internal/datalogeval"
	"graphgen/internal/extract"
)

// This file is the public surface of the recursive Datalog subsystem:
// Engine.ExtractProgram evaluates a multi-rule program (derived predicates,
// recursion, stratified negation, comparison literals) bottom-up with
// semi-naive iteration (internal/datalogeval) and hands the resulting
// Nodes/Edges statements to the same extraction pipeline Extract uses — so
// condensed representations, conversions, and analytics apply to recursive
// graphs unchanged.

// EvalStats describes one Datalog program evaluation: strata count, total
// semi-naive iterations, derived tuples materialized, and temporary-table
// count.
type EvalStats = datalogeval.Stats

// ErrTooManyDerived marks a program evaluation aborted by the
// WithMaxDerivedTuples budget.
var ErrTooManyDerived = datalogeval.ErrTooManyDerived

// WithMaxDerivedTuples bounds the total number of tuples the program
// evaluator may materialize for derived predicates (0, the default,
// disables the guard). It is the evaluation-side counterpart of
// WithMaxEdges.
func WithMaxDerivedTuples(n int64) Option {
	return func(o *extract.Options) { o.MaxDerivedTuples = n }
}

// ExtractProgram parses and runs a multi-rule Datalog program: derived
// (IDB) predicates — possibly recursive, with stratified negation (`!P(X)`
// or `not P(X)`) and comparison literals (`<`, `<=`, `>`, `>=`, `=`,
// `!=`) — are evaluated bottom-up to fixpoint and materialized as
// temporary tables, then the program's Nodes/Edges statements extract the
// graph exactly as Extract would. Example (transitive co-authorship
// reachability):
//
//	Coauthor(A, B) :- AuthorPub(A, P), AuthorPub(B, P), A != B.
//	Reach(A, B)    :- Coauthor(A, B).
//	Reach(A, C)    :- Reach(A, B), Coauthor(B, C).
//	Nodes(ID, N)   :- Author(ID, N).
//	Edges(A, B)    :- Reach(A, B).
//
// The returned graph's ProgramStats reports strata, iterations, and
// derived-tuple counts. Programs without derived predicates behave exactly
// like Extract. The temporary tables live only for the duration of the
// call; the base database is never modified.
func (e *Engine) ExtractProgram(src string, opts ...Option) (*Graph, error) {
	ps, err := datalog.ParseProgram(src)
	if err != nil {
		return nil, err
	}
	o := e.opts
	for _, fn := range opts {
		fn(&o)
	}
	ev, err := datalogeval.Evaluate(e.db, ps, datalogeval.Options{
		Workers:          o.Workers,
		MaxDerivedTuples: o.MaxDerivedTuples,
		NoIndex:          o.NoIndex,
		NoStream:         o.NoStream,
		Trace:            o.Trace,
	})
	if err != nil {
		return nil, err
	}
	res, err := extract.Extract(ev.DB, ev.Program, o)
	if err != nil {
		return nil, err
	}
	evalStats := ev.Stats
	// The peak reported to callers covers the whole call: program
	// evaluation and the extraction of the Nodes/Edges statements that
	// follows it (a high-water mark, so take the larger of the two).
	if res.Stats.PeakIntermediateRows > evalStats.PeakIntermediateRows {
		evalStats.PeakIntermediateRows = res.Stats.PeakIntermediateRows
	}
	return &Graph{c: res.Graph, stats: res.Stats, evalStats: &evalStats, profile: o.Trace.Finish()}, nil
}

// ProgramStats returns the Datalog evaluation statistics when the graph
// was built by ExtractProgram; ok is false for graphs from Extract.
func (g *Graph) ProgramStats() (stats EvalStats, ok bool) {
	if g.evalStats == nil {
		return EvalStats{}, false
	}
	return *g.evalStats, true
}
