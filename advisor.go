package graphgen

// This file implements the representation-choice guidance of Section 6.5 as
// an executable advisor: "the system ... suggest[s] that the graph be
// expanded if the memory increase is not substantial, e.g., less than 20%.
// If expanding the graph is not an option, then the system needs to choose
// between C-DUP, BITMAP-2, DEDUP-1, DEDUP-2 ... the choice comes down to
// the use-case."

// Workload describes how an extracted graph will be used, mirroring the
// use cases Section 6.5 distinguishes.
type Workload int

// Workload kinds.
const (
	// WorkloadPointQueries: algorithms that touch a small portion of the
	// graph (e.g. BFS from a few sources, neighborhood lookups).
	WorkloadPointQueries Workload = iota
	// WorkloadFullScans: complex algorithms making multiple passes over
	// the whole graph (e.g. PageRank).
	WorkloadFullScans
	// WorkloadRepeatedAnalysis: many algorithms run over a period of
	// time, amortizing a one-time deduplication cost.
	WorkloadRepeatedAnalysis
)

func (w Workload) String() string {
	switch w {
	case WorkloadPointQueries:
		return "point-queries"
	case WorkloadFullScans:
		return "full-scans"
	case WorkloadRepeatedAnalysis:
		return "repeated-analysis"
	default:
		return "unknown"
	}
}

// Advice is the advisor's recommendation.
type Advice struct {
	Representation Representation
	// Reason is a human-readable justification.
	Reason string
	// ExpansionRatio is expanded edges / representation edges, computed
	// as a free side effect (the paper obtains it from deduplication).
	ExpansionRatio float64
}

// AdviseOptions tunes Advise.
type AdviseOptions struct {
	// ExpandThreshold is the maximum expansion ratio at which full
	// expansion is recommended (the paper suggests 1.2).
	ExpandThreshold float64
	// Workload describes the intended use.
	Workload Workload
}

// Advise recommends an in-memory representation for the graph following
// Section 6.5's decision procedure: expand when cheap; otherwise C-DUP for
// point queries, BITMAP for repeated full scans, and DEDUP-1 (or DEDUP-2
// when the graph class allows and it is smaller) when the one-time
// deduplication cost will be amortized across many analyses.
func (g *Graph) Advise(opts AdviseOptions) Advice {
	threshold := opts.ExpandThreshold
	if threshold <= 0 {
		threshold = 1.2
	}
	rep := g.RepEdges()
	exp := g.LogicalEdges()
	ratio := 0.0
	if rep > 0 {
		ratio = float64(exp) / float64(rep)
	}
	if g.NumVirtualNodes() == 0 {
		return Advice{Representation: EXP, Reason: "graph is already expanded", ExpansionRatio: 1}
	}
	if ratio > 0 && ratio <= threshold {
		return Advice{
			Representation: EXP,
			ExpansionRatio: ratio,
			Reason:         "expansion grows the graph only marginally; EXP iterates fastest",
		}
	}
	switch opts.Workload {
	case WorkloadPointQueries:
		return Advice{
			Representation: CDUP,
			ExpansionRatio: ratio,
			Reason:         "point queries touch little of the graph; C-DUP needs no preprocessing and the on-the-fly hash set stays small",
		}
	case WorkloadRepeatedAnalysis:
		// Prefer DEDUP-2 when the conversion is possible and smaller.
		if d2, err := g.As(DEDUP2); err == nil {
			if d1, err := g.As(DEDUP1); err == nil && d2.RepEdges() < d1.RepEdges() {
				return Advice{
					Representation: DEDUP2,
					ExpansionRatio: ratio,
					Reason:         "repeated analyses amortize deduplication; DEDUP-2 is smaller than DEDUP-1 on this graph's clique structure",
				}
			}
		}
		return Advice{
			Representation: DEDUP1,
			ExpansionRatio: ratio,
			Reason:         "repeated analyses amortize the one-time deduplication; DEDUP-1 iterates without hash sets or masks and serializes portably",
		}
	default: // WorkloadFullScans
		return Advice{
			Representation: BITMAP,
			ExpansionRatio: ratio,
			Reason:         "multi-pass whole-graph algorithms favor BITMAP-2: cheap preprocessing, no per-call hash set",
		}
	}
}
