package graphgen

// Equivalence tests for the secondary-index subsystem at the extraction
// level: the indexed pipeline (auto-created hash indexes, IndexScan /
// IndexedJoin access paths) must extract a graph row-for-row identical to
// the pure-scan pipeline for every workload — the planner's index choice
// is cost-only, never semantics.

import (
	"fmt"
	"math/rand"
	"testing"

	"graphgen/internal/datagen"
	"graphgen/internal/datalog"
	"graphgen/internal/experiments"
	"graphgen/internal/extract"
	"graphgen/internal/relstore"
)

// extractFingerprint extracts with the given options and fingerprints the
// resulting graph structure.
func extractFingerprint(t *testing.T, db *relstore.DB, query string, opts extract.Options) string {
	t.Helper()
	prog, err := datalog.Parse(query)
	if err != nil {
		t.Fatal(err)
	}
	res, err := extract.Extract(db, prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	return coreFingerprint(res.Graph)
}

// TestIndexedExtractionEquivalenceTable1 checks indexed == unindexed
// across the Table 1 workloads in both planner modes. The unindexed run
// goes second on the same database, proving NoIndex really bypasses the
// indexes the first run created.
func TestIndexedExtractionEquivalenceTable1(t *testing.T) {
	for _, d := range experiments.Table1Datasets(experiments.Scale{Quick: true}) {
		for _, condensed := range []bool{true, false} {
			opts := extract.DefaultOptions()
			opts.ForceCondensed = condensed
			opts.ForceExpand = !condensed
			indexed := extractFingerprint(t, d.DB, d.Query, opts)
			opts.NoIndex = true
			unindexed := extractFingerprint(t, d.DB, d.Query, opts)
			if indexed != unindexed {
				t.Errorf("%s (condensed=%t): indexed extraction differs from scan extraction", d.Name, condensed)
			}
		}
	}
}

// TestIndexedExtractionEquivalenceSelective exercises the IndexScan path
// hard: constant equality predicates on a temporal dataset, where the
// indexed plan answers from a year bucket while the scan plan walks the
// whole membership table.
func TestIndexedExtractionEquivalenceSelective(t *testing.T) {
	db := datagen.DBLPTemporal(9, 300, 1500, 2000, 2019)
	for year := 2000; year <= 2004; year++ {
		query := fmt.Sprintf(`
Nodes(ID, Name) :- Author(ID, Name).
Edges(ID1, ID2) :- AuthorPubYear(ID1, P, %d), AuthorPubYear(ID2, P, %d).
`, year, year)
		opts := extract.DefaultOptions()
		indexed := extractFingerprint(t, db, query, opts)
		opts.NoIndex = true
		unindexed := extractFingerprint(t, db, query, opts)
		if indexed != unindexed {
			t.Errorf("year %d: indexed extraction differs from scan extraction", year)
		}
	}
}

// TestIndexedExtractionEquivalenceRandomized builds randomized two-table
// membership databases (duplicate rows included) and compares indexed vs
// unindexed extraction across random constant-predicate queries and the
// plain co-membership join, under several worker counts.
func TestIndexedExtractionEquivalenceRandomized(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		db := relstore.NewDB()
		ent, _ := db.Create("Ent", relstore.Column{Name: "id", Type: relstore.Int}, relstore.Column{Name: "name", Type: relstore.String})
		mem, _ := db.Create("Mem", relstore.Column{Name: "eid", Type: relstore.Int}, relstore.Column{Name: "gid", Type: relstore.Int}, relstore.Column{Name: "kind", Type: relstore.Int})
		nEnt := 40 + rng.Intn(40)
		for i := 1; i <= nEnt; i++ {
			ent.Insert(relstore.IntVal(int64(i)), relstore.StrVal(fmt.Sprintf("e%d", i)))
		}
		for i := 0; i < 600; i++ {
			mem.Insert(relstore.IntVal(int64(rng.Intn(nEnt)+1)), relstore.IntVal(int64(rng.Intn(25)+1)), relstore.IntVal(int64(rng.Intn(4))))
		}
		queries := []string{
			`Nodes(ID, N) :- Ent(ID, N).
Edges(A, B) :- Mem(A, G, k), Mem(B, G, k).`,
			fmt.Sprintf(`Nodes(ID, N) :- Ent(ID, N).
Edges(A, B) :- Mem(A, G, %d), Mem(B, G, %d).`, rng.Intn(4), rng.Intn(4)),
		}
		for qi, query := range queries {
			for _, workers := range []int{1, 3} {
				opts := extract.DefaultOptions()
				opts.Workers = workers
				indexed := extractFingerprint(t, db, query, opts)
				opts.NoIndex = true
				unindexed := extractFingerprint(t, db, query, opts)
				if indexed != unindexed {
					t.Errorf("seed %d query %d workers %d: indexed differs from scan", seed, qi, workers)
				}
			}
		}
	}
}

// TestIndexedProgramEquivalence checks the public surface: Extract and
// ExtractProgram produce identical graphs with WithAutoIndex(true) and
// WithAutoIndex(false), including a recursive program whose semi-naive
// loop probes the temp-table indexes.
func TestIndexedProgramEquivalence(t *testing.T) {
	db := datagen.DBLPLike(13, 120, 200)
	indexedEngine := NewEngine(db, WithAutoIndex(true))
	scanEngine := NewEngine(db, WithAutoIndex(false))

	gi, err := indexedEngine.Extract(datagen.QueryCoauthors)
	if err != nil {
		t.Fatal(err)
	}
	gs, err := scanEngine.Extract(datagen.QueryCoauthors)
	if err != nil {
		t.Fatal(err)
	}
	if coreFingerprint(gi.c) != coreFingerprint(gs.c) {
		t.Error("Extract: indexed graph differs from scan graph")
	}

	program := `
Coauthor(A, B) :- AuthorPub(A, P), AuthorPub(B, P), A != B.
Reach(A, B) :- Coauthor(A, B).
Reach(A, C) :- Reach(A, B), Coauthor(B, C).
Nodes(ID, N) :- Author(ID, N).
Edges(A, B) :- Reach(A, B).
`
	pi, err := indexedEngine.ExtractProgram(program)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := scanEngine.ExtractProgram(program)
	if err != nil {
		t.Fatal(err)
	}
	if coreFingerprint(pi.c) != coreFingerprint(ps.c) {
		t.Error("ExtractProgram: indexed graph differs from scan graph")
	}
	si, _ := pi.ProgramStats()
	ss, _ := ps.ProgramStats()
	if si.DerivedTuples != ss.DerivedTuples || si.Iterations != ss.Iterations {
		t.Errorf("eval stats diverge: indexed %+v vs scan %+v", si, ss)
	}
}
