// Coauthors: extract the co-author graph from a generated DBLP-scale
// database, compare all five in-memory representations, and find the most
// central authors — the paper's Section 6.1 study as an application.
package main

import (
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"graphgen"
	"graphgen/internal/datagen"
)

func main() {
	// A synthetic DBLP: 5000 authors, 4000 publications with the paper's
	// authors-per-publication distribution.
	db := datagen.DBLPLike(2024, 5000, 4000)

	engine := graphgen.NewEngine(db, graphgen.WithoutPreprocessing())
	start := time.Now()
	g, err := engine.Extract(datagen.QueryCoauthors)
	if err != nil {
		log.Fatal(err)
	}
	st := g.ExtractionStats()
	fmt.Printf("extraction: %s (%d rows in, %d large-output joins postponed)\n",
		time.Since(start).Round(time.Millisecond), db.TotalRows(), st.LargeOutputJoins)
	fmt.Printf("condensed: %d authors + %d virtual nodes, %d physical edges (expanded would be %d)\n\n",
		g.NumVertices(), g.NumVirtualNodes(), g.RepEdges(), g.LogicalEdges())

	// Compare the representations, Figure 10 style.
	fmt.Printf("%-10s %12s %12s %10s\n", "repr", "phys.edges", "mem(KB)", "build")
	for _, rep := range []graphgen.Representation{
		graphgen.CDUP, graphgen.DEDUP1, graphgen.DEDUP2, graphgen.BITMAP, graphgen.EXP,
	} {
		t0 := time.Now()
		conv, err := g.As(rep)
		if err != nil {
			fmt.Printf("%-10s unsupported: %v\n", rep, err)
			continue
		}
		fmt.Printf("%-10s %12d %12d %10s\n",
			rep, conv.RepEdges(), conv.MemBytes()/1024, time.Since(t0).Round(time.Microsecond))
	}

	// Most collaborative authors by degree, most central by PageRank —
	// both run directly on the condensed graph.
	deg := g.Degrees()
	pr := g.PageRank(20, 0.85)
	type author struct {
		id   int64
		deg  int
		rank float64
	}
	var as []author
	for id, d := range deg {
		as = append(as, author{id, d, pr[id]})
	}
	sort.Slice(as, func(i, j int) bool { return as[i].rank > as[j].rank })
	fmt.Println("\ntop authors by pagerank:")
	for _, a := range as[:5] {
		name, _ := g.PropertyOf(a.id, "Name")
		fmt.Printf("  %-14s degree=%-4d rank=%.6f\n", name, a.deg, a.rank)
	}

	_, comps := g.ConnectedComponents()
	fmt.Printf("\ncollaboration communities (connected components): %d\n", comps)

	// Serialize for external tools (NetworkX-style workflow).
	f, err := os.CreateTemp("", "coauthors-*.el")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := g.WriteEdgeList(f); err != nil {
		log.Fatal(err)
	}
	info, _ := f.Stat()
	fmt.Printf("serialized expanded edge list to %s (%d bytes)\n", f.Name(), info.Size())
}
