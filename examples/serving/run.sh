#!/usr/bin/env bash
# Executes the serving quickstart (see README.md) against a graphgend
# it starts on a scratch port, then shuts it down. Run from the repo
# root:  bash examples/serving/run.sh
set -euo pipefail

ADDR="127.0.0.1:18080"
BASE="http://$ADDR"

go build -o /tmp/graphgend ./cmd/graphgend
/tmp/graphgend -addr "$ADDR" -dataset dblp &
DAEMON=$!
trap 'kill $DAEMON 2>/dev/null || true' EXIT

for _ in $(seq 1 50); do
  curl -sf "$BASE/v1/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done
curl -sf "$BASE/v1/healthz"; echo

echo "== extract live co-author session =="
curl -sf -X POST "$BASE/v1/graphs" -d '{
  "name": "coauth",
  "live": true,
  "query": "Nodes(ID, Name) :- Author(ID, Name). Edges(ID1, ID2) :- AuthorPub(ID1, P), AuthorPub(ID2, P)."
}'

echo "== analyze twice (second is cached) =="
curl -sf "$BASE/v1/graphs/coauth/analyze/pagerank?k=5" | head -c 400; echo
curl -sf "$BASE/v1/graphs/coauth/analyze/pagerank?k=5" | grep -o '"cached": [a-z]*'

echo "== mutate: live graph and cache follow =="
curl -sf -X POST "$BASE/v1/db/AuthorPub/insert" -d '{"rows": [[1, 99991], [2, 99991]]}'; echo
curl -sf "$BASE/v1/graphs/coauth/analyze/pagerank?k=5" | grep -o '"cached": [a-z]*'
curl -sf "$BASE/v1/graphs/coauth/neighbors?v=1" | head -c 200; echo
curl -sf -X POST "$BASE/v1/db/AuthorPub/delete" -d '{"row": [2, 99991]}'; echo

echo "== recursive program session, created with ANALYZE tracing =="
# ?analyze=true arms operator-span tracing for the one evaluation this
# request runs; the response carries the full execution profile, whose
# semi-naive delta-round spans reconcile with eval.derived_tuples.
curl -sf -X POST "$BASE/v1/graphs?analyze=true" -d '{
  "name": "reach",
  "program": "Coauthor(A, B) :- AuthorPub(A, P), AuthorPub(B, P), A != B, A < 150, B < 150. Reach(A, B) :- Coauthor(A, B). Reach(A, C) :- Reach(A, B), Coauthor(B, C). Nodes(ID, Name) :- Author(ID, Name). Edges(A, B) :- Reach(A, B)."
}' > /tmp/reach_create.json
head -c 500 /tmp/reach_create.json; echo
grep -o '"derived_tuples": [0-9]*' /tmp/reach_create.json | head -1
echo "-- delta rounds recorded in the profile:"
grep -o '"op": "round"' /tmp/reach_create.json | wc -l
# the recorded build plan re-attaches to analytics calls on demand
curl -sf "$BASE/v1/graphs/reach/analyze/components?explain=true" | grep -o '"op": "[a-z_]*"' | sort | uniq -c | sort -rn | head -5
curl -sf "$BASE/v1/graphs/reach/analyze/components" | head -c 300; echo
# program sessions are static-only: live=true is rejected with the
# structured error envelope (stable "code", human-readable "message")
curl -s -X POST "$BASE/v1/graphs" -d '{"name": "reach-live", "live": true,
  "program": "Nodes(A) :- Author(A, _). Edges(A, B) :- AuthorPub(A, P), AuthorPub(B, P)."}' \
  | grep -o '"code": "[^"]*"'

echo "== request ids: header, error envelope, and the server log agree =="
curl -sf -D - -o /dev/null "$BASE/v1/healthz" | grep -i 'x-request-id'
curl -s "$BASE/v1/graphs/no-such-session/stats" | grep -o '"request_id": "[^"]*"'

echo "== metrics =="
curl -sf "$BASE/v1/metrics" | head -c 600; echo
curl -sf "$BASE/v1/metrics" | grep -o '"programs": [0-9]*'
echo "-- Prometheus exposition (status-class counters, latency histograms):"
curl -sf "$BASE/v1/metrics?format=prometheus" | grep -E 'requests_total|uptime' | head -8

echo "== clean up =="
curl -sf -X DELETE "$BASE/v1/graphs/coauth"; echo
curl -sf -X DELETE "$BASE/v1/graphs/reach"; echo

echo "== sustained load against a social-network daemon (cmd/graphload) =="
# A second daemon serving the LDBC-style SNB dataset; graphload creates
# a live Knows session on it and replays a mixed read/mutate/analyze
# stream, reporting p50/p95/p99 per op class. Exit 0 means zero op
# errors.
SNB_ADDR="127.0.0.1:18081"
/tmp/graphgend -addr "$SNB_ADDR" -dataset snb >/dev/null &
SNB_DAEMON=$!
trap 'kill $DAEMON $SNB_DAEMON 2>/dev/null || true' EXIT
for _ in $(seq 1 50); do
  curl -sf "http://$SNB_ADDR/v1/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done
go run ./cmd/graphload -addr "$SNB_ADDR" -duration 3s -clients 4 \
  -mix read=70,mutate=20,analyze=10

echo "quickstart OK"
