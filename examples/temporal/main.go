// Temporal: the paper's introduction motivates juxtaposing graphs extracted
// over different time periods. Constant terms in the DSL act as selection
// predicates, so a per-year co-author graph is just a query with the year
// inlined — this example extracts one graph per year and tracks how the
// collaboration network densifies.
package main

import (
	"fmt"
	"log"

	"graphgen"
	"graphgen/internal/datagen"
)

func main() {
	db := datagen.DBLPTemporal(99, 1500, 2500, 2010, 2014)
	engine := graphgen.NewEngine(db, graphgen.WithoutPreprocessing())

	fmt.Println("per-year co-author graphs (constant selections in the DSL):")
	fmt.Printf("%-6s %10s %12s %12s %12s\n", "year", "authors", "phys.edges", "log.edges", "components")
	type yearStats struct {
		year  int
		edges int64
	}
	var series []yearStats
	for year := 2010; year <= 2014; year++ {
		query := fmt.Sprintf(`
			Nodes(ID, Name) :- Author(ID, Name).
			Edges(ID1, ID2) :- AuthorPubYear(ID1, P, %d), AuthorPubYear(ID2, P, %d).
		`, year, year)
		g, err := engine.Extract(query)
		if err != nil {
			log.Fatal(err)
		}
		_, comps := g.ConnectedComponents()
		fmt.Printf("%-6d %10d %12d %12d %12d\n",
			year, g.NumVertices(), g.RepEdges(), g.LogicalEdges(), comps)
		series = append(series, yearStats{year, g.LogicalEdges()})
	}

	// The cumulative graph for comparison: wildcards ignore the year.
	all, err := engine.Extract(`
		Nodes(ID, Name) :- Author(ID, Name).
		Edges(ID1, ID2) :- AuthorPubYear(ID1, P, _), AuthorPubYear(ID2, P, _).
	`)
	if err != nil {
		log.Fatal(err)
	}
	_, comps := all.ConnectedComponents()
	fmt.Printf("%-6s %10d %12d %12d %12d\n",
		"all", all.NumVertices(), all.RepEdges(), all.LogicalEdges(), comps)

	// Network evolution: year-over-year growth of the collaboration graph.
	fmt.Println("\nyear-over-year logical-edge growth:")
	for i := 1; i < len(series); i++ {
		prev, cur := series[i-1], series[i]
		fmt.Printf("  %d -> %d: %+.1f%%\n", prev.year, cur.year,
			100*(float64(cur.edges)-float64(prev.edges))/float64(prev.edges))
	}
}
