// Quickstart: build a small relational database by hand, extract the hidden
// co-author graph with the Datalog DSL, and analyze it — the Figure 1
// walkthrough of the paper as runnable code.
package main

import (
	"fmt"
	"log"
	"sort"

	"graphgen"
)

func main() {
	// A DBLP-like schema: Author(id, name) and AuthorPub(aid, pid).
	db := graphgen.NewDB()
	author, err := db.Create("Author",
		graphgen.Column{Name: "id", Type: graphgen.Int},
		graphgen.Column{Name: "name", Type: graphgen.String})
	if err != nil {
		log.Fatal(err)
	}
	authorPub, err := db.Create("AuthorPub",
		graphgen.Column{Name: "aid", Type: graphgen.Int},
		graphgen.Column{Name: "pid", Type: graphgen.Int})
	if err != nil {
		log.Fatal(err)
	}
	names := []string{"ann", "bob", "carol", "dave", "erin", "frank"}
	for i, n := range names {
		author.Insert(graphgen.IntVal(int64(i+1)), graphgen.StrVal(n))
	}
	// Publications: p1 by {ann,bob,carol}, p2 by {ann,dave}, p3 by
	// {carol,dave,erin}; frank has no co-authors.
	for _, row := range [][2]int64{
		{1, 101}, {2, 101}, {3, 101},
		{1, 102}, {4, 102},
		{3, 103}, {4, 103}, {5, 103},
		{6, 104},
	} {
		authorPub.Insert(graphgen.IntVal(row[0]), graphgen.IntVal(row[1]))
	}

	// The co-authors extraction query ([Q1] in the paper): two authors
	// are connected iff they wrote a publication together. On a dataset
	// this tiny the planner would expand the join; force the condensed
	// representation so the virtual-node machinery is visible.
	engine := graphgen.NewEngine(db,
		graphgen.WithForceCondensed(), graphgen.WithoutPreprocessing())
	g, err := engine.Extract(`
		Nodes(ID, Name) :- Author(ID, Name).
		Edges(ID1, ID2) :- AuthorPub(ID1, PubID), AuthorPub(ID2, PubID).
	`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("extracted a %s graph: %d authors, %d virtual nodes, %d logical edges\n",
		g.Representation(), g.NumVertices(), g.NumVirtualNodes(), g.LogicalEdges())

	// Walk the graph through the representation-independent API.
	fmt.Println("\nco-authors:")
	it := g.Vertices()
	for {
		id, ok := it.Next()
		if !ok {
			break
		}
		name, _ := g.PropertyOf(id, "Name")
		var coauthors []string
		nit := g.Neighbors(id)
		for {
			nb, ok := nit.Next()
			if !ok {
				break
			}
			cn, _ := g.PropertyOf(nb, "Name")
			coauthors = append(coauthors, cn)
		}
		sort.Strings(coauthors)
		fmt.Printf("  %-6s -> %v\n", name, coauthors)
	}

	// Run PageRank directly on the condensed representation.
	pr := g.PageRank(20, 0.85)
	type ranked struct {
		name string
		rank float64
	}
	var rs []ranked
	for id, r := range pr {
		name, _ := g.PropertyOf(id, "Name")
		rs = append(rs, ranked{name, r})
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].rank > rs[j].rank })
	fmt.Println("\npagerank:")
	for _, r := range rs {
		fmt.Printf("  %-6s %.4f\n", r.name, r.rank)
	}

	// Convert to the deduplicated DEDUP-1 representation.
	d1, err := g.As(graphgen.DEDUP1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDEDUP-1 conversion: %d physical edges (C-DUP had %d)\n",
		d1.RepEdges(), g.RepEdges())
}
