// Retail: the paper's TPC-H motivation — customers who buy the same parts
// form a hidden graph far larger than the database itself. This example
// extracts it condensed (the expanded version trips the memory guard),
// segments customers into co-purchase communities, and finds hub customers,
// all without ever materializing the expanded graph.
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"graphgen"
	"graphgen/internal/datagen"
)

func main() {
	// 400 customers, 3000 orders over only 40 distinct parts: the
	// same-part self-join explodes, exactly like the paper's 765K-row
	// TPCH database hiding a 100M-edge graph.
	db := datagen.TPCHLike(7, 400, 3000, 40, 3)
	fmt.Printf("database: %d rows\n", db.TotalRows())

	// First try the naive route: force full expansion under a memory
	// budget; it must fail.
	guarded := graphgen.NewEngine(db, graphgen.WithForceExpand(), graphgen.WithMaxEdges(100_000))
	if _, err := guarded.Extract(datagen.QuerySamePart); err != nil {
		fmt.Printf("full expansion under a 100k-edge budget: %v\n", err)
	} else {
		log.Fatal("expected the expansion guard to trip")
	}

	// The condensed route works: the planner hands the two key-foreign-
	// key joins to the database and postpones the same-part join.
	engine := graphgen.NewEngine(db)
	start := time.Now()
	g, err := engine.Extract(datagen.QuerySamePart)
	if err != nil {
		log.Fatal(err)
	}
	st := g.ExtractionStats()
	fmt.Printf("condensed extraction: %s, %d physical edges for %d logical edges (%.0fx compression)\n",
		time.Since(start).Round(time.Millisecond), g.RepEdges(), g.LogicalEdges(),
		float64(g.LogicalEdges())/float64(g.RepEdges()))
	fmt.Printf("planner: %d joins to the database, %d postponed\n\n",
		st.DatabaseJoins, st.LargeOutputJoins)

	// Customer segmentation: co-purchase communities.
	labels, n := g.ConnectedComponents()
	sizes := map[int]int{}
	for _, l := range labels {
		sizes[l]++
	}
	largest := 0
	for _, s := range sizes {
		if s > largest {
			largest = s
		}
	}
	fmt.Printf("co-purchase communities: %d (largest has %d customers)\n", n, largest)

	// Hub customers: highest co-purchase degree.
	deg := g.Degrees()
	type cust struct {
		id  int64
		deg int
	}
	var cs []cust
	for id, d := range deg {
		cs = append(cs, cust{id, d})
	}
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].deg != cs[j].deg {
			return cs[i].deg > cs[j].deg
		}
		return cs[i].id < cs[j].id
	})
	fmt.Println("hub customers (most co-purchasers):")
	for _, c := range cs[:5] {
		name, _ := g.PropertyOf(c.id, "Name")
		fmt.Printf("  %-14s shares a part with %d customers\n", name, c.deg)
	}

	// "Related customers" lookup: a point query that only touches a tiny
	// part of the graph — the workload where C-DUP shines.
	probe := cs[0].id
	fmt.Printf("\ncustomers related to %d:", probe)
	it := g.Neighbors(probe)
	count := 0
	for {
		id, ok := it.Next()
		if !ok {
			break
		}
		if count < 8 {
			fmt.Printf(" %d", id)
		}
		count++
	}
	fmt.Printf(" ... (%d total)\n", count)
}
