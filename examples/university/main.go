// University: heterogeneous graph extraction ([Q3] of the paper) — a
// directed bipartite instructor->student graph and a student co-enrollment
// graph from the same database, analyzed with a custom vertex-centric
// program (teaching reach via 2-hop propagation).
package main

import (
	"fmt"
	"log"
	"sort"

	"graphgen"
	"graphgen/internal/datagen"
)

func main() {
	db := datagen.UnivLike(11, 900, 25, 50, 4)
	engine := graphgen.NewEngine(db)

	// Heterogeneous bipartite graph: two Nodes statements, one Edges
	// statement connecting instructors to the students they taught.
	bip, err := engine.Extract(datagen.QueryInstructorStudent)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bipartite graph: %d vertices (instructors + students), %d logical edges\n",
		bip.NumVertices(), bip.LogicalEdges())

	// Teaching reach: number of students each instructor taught.
	deg := bip.Degrees()
	type inst struct {
		id    int64
		reach int
	}
	var is []inst
	for id, d := range deg {
		if d > 0 { // instructors are the only sources in this graph
			is = append(is, inst{id, d})
		}
	}
	sort.Slice(is, func(i, j int) bool {
		if is[i].reach != is[j].reach {
			return is[i].reach > is[j].reach
		}
		return is[i].id < is[j].id
	})
	fmt.Println("\ninstructors by teaching reach:")
	for _, i := range is[:min(5, len(is))] {
		name, _ := bip.PropertyOf(i.id, "Name")
		fmt.Printf("  %-16s taught %d students\n", name, i.reach)
	}

	// Same-course student graph from the same database, extracted
	// condensed (one virtual node per course).
	co, err := engine.Extract(datagen.QuerySameCourse, graphgen.WithoutPreprocessing())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nco-enrollment graph: %d students, %d virtual course nodes, %d physical edges (%d logical)\n",
		co.NumVertices(), co.NumVirtualNodes(), co.RepEdges(), co.LogicalEdges())

	// A custom vertex-centric program on the condensed graph: two rounds
	// of neighborhood-size propagation approximating each student's
	// 2-hop study network.
	vals, supersteps := co.RunVertexCentric(graphgen.ComputeFunc(func(ctx *graphgen.VertexContext) {
		switch ctx.Superstep() {
		case 0:
			ctx.SetValue(float64(ctx.Degree()))
		case 1:
			sum := ctx.Value()
			ctx.ForNeighbors(func(u int32) bool {
				sum += ctx.NeighborValue(u)
				return true
			})
			ctx.SetValue(sum)
			ctx.VoteToHalt()
		}
	}), 4)
	best, bestID := -1.0, int64(0)
	for id, v := range vals {
		if v > best {
			best, bestID = v, id
		}
	}
	name, _ := co.PropertyOf(bestID, "Name")
	fmt.Printf("vertex-centric (%d supersteps): best-connected student %s with 2-hop score %.0f\n",
		supersteps, name, best)

	// Convert the co-enrollment graph to DEDUP-2, the representation
	// built for exactly this clique-heavy shape.
	d2, err := co.As(graphgen.DEDUP2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDEDUP-2: %d physical edges vs %d in C-DUP (same %d logical edges)\n",
		d2.RepEdges(), co.RepEdges(), d2.LogicalEdges())
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
