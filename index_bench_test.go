package graphgen

import (
	"runtime"
	"testing"
	"time"

	"graphgen/internal/datagen"
	"graphgen/internal/datalog"
	"graphgen/internal/extract"
	"graphgen/internal/relstore"
)

// The indexed-extraction benchmark workload: a temporal co-author dataset
// whose extraction query carries a selective equality predicate (one
// publication year out of a thousand, ~0.1% of a ~350k-row membership
// table). The scan pipeline walks the whole table once per predicate per
// extraction; the indexed pipeline answers each predicate from a year
// bucket — the access-path contrast the paper gets from PostgreSQL's
// indexes. The author table and the per-year join output are kept small
// so graph construction does not drown the relational cost under
// measurement.
func indexedBenchWorkload() (*relstore.DB, *datalog.Program) {
	db := datagen.DBLPTemporal(77, 400, 120000, 1000, 1999)
	prog, err := datalog.Parse(`
Nodes(ID, Name) :- Author(ID, Name).
Edges(ID1, ID2) :- AuthorPubYear(ID1, P, 1500), AuthorPubYear(ID2, P, 1500).
`)
	if err != nil {
		panic(err)
	}
	return db, prog
}

// BenchmarkIndexedExtraction times the same selective-predicate
// extraction through the index-backed access paths (the default) and the
// pure parallel-scan pipeline (-no-index / WithAutoIndex(false)), on one
// shared database — the NoIndex run bypasses the indexes the indexed run
// created, which is exactly the graphgend opt-out's behavior.
func BenchmarkIndexedExtraction(b *testing.B) {
	db, prog := indexedBenchWorkload()
	for _, mode := range []struct {
		name    string
		noIndex bool
	}{{"Indexed", false}, {"Scan", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var edges int64
			for i := 0; i < b.N; i++ {
				opts := extract.DefaultOptions()
				opts.NoIndex = mode.noIndex
				res, err := extract.Extract(db, prog, opts)
				if err != nil {
					b.Fatal(err)
				}
				edges = res.Graph.RepEdges()
			}
			b.ReportMetric(float64(edges), "edges")
		})
	}
}

// TestIndexedExtractionSpeedup asserts the headline claim: on the
// selective-predicate workload, indexed extraction is at least 2x faster
// than the scan pipeline (the measured gap is far larger; 2x is the
// regression bar). Timing-sensitive, so skipped in -short mode.
func TestIndexedExtractionSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test skipped in -short mode")
	}
	db, prog := indexedBenchWorkload()
	measure := func(noIndex bool) time.Duration {
		opts := extract.DefaultOptions()
		opts.NoIndex = noIndex
		// One warm-up extraction (builds indexes on the indexed arm),
		// then best of five timed runs, each behind a forced GC so
		// garbage left by earlier tests in the suite cannot bill its
		// collection time to whichever arm runs first.
		if _, err := extract.Extract(db, prog, opts); err != nil {
			t.Fatal(err)
		}
		best := time.Duration(0)
		for i := 0; i < 5; i++ {
			runtime.GC()
			start := time.Now()
			if _, err := extract.Extract(db, prog, opts); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); best == 0 || d < best {
				best = d
			}
		}
		if best == 0 {
			best = time.Nanosecond
		}
		return best
	}
	indexed := measure(false)
	scan := measure(true)
	ratio := float64(scan) / float64(indexed)
	t.Logf("scan %v vs indexed %v per extraction: %.1fx", scan, indexed, ratio)
	if ratio < 2 {
		t.Fatalf("indexed extraction only %.2fx faster than the scan path, want >= 2x", ratio)
	}
	// The speedup must not come from computing something different.
	iOpts := extract.DefaultOptions()
	sOpts := extract.DefaultOptions()
	sOpts.NoIndex = true
	ri, err := extract.Extract(db, prog, iOpts)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := extract.Extract(db, prog, sOpts)
	if err != nil {
		t.Fatal(err)
	}
	if fi, fs := coreFingerprint(ri.Graph), coreFingerprint(rs.Graph); fi != fs {
		t.Fatal("indexed and scan extractions disagree on the benchmark workload")
	}
}
