package graphgen

// Ablation benchmarks for the design choices DESIGN.md calls out:
//
//   - Step-6 preprocessing (inline tiny virtual nodes) on vs off;
//   - the C-DUP on-the-fly hash set vs DEDUP-1's hashset-free traversal on
//     a graph with NO duplication — isolating the pure hashset cost;
//   - BITMAP mask consultation vs C-DUP hash set on a duplicated graph;
//   - multi-layer traversal vs the flattened single-layer equivalent.

import (
	"testing"

	"graphgen/internal/core"
	"graphgen/internal/datagen"
	"graphgen/internal/datalog"
	"graphgen/internal/dedup"
	"graphgen/internal/extract"
)

// BenchmarkAblation_Preprocessing compares extraction with and without the
// Step-6 pass (Section 4.2): the pass costs time but shrinks the graph.
func BenchmarkAblation_Preprocessing(b *testing.B) {
	db := datagen.DBLPLike(5, 1200, 1000)
	prog, err := datalog.Parse(datagen.QueryCoauthors)
	if err != nil {
		b.Fatal(err)
	}
	for _, skip := range []bool{false, true} {
		name := "WithPreprocess"
		if skip {
			name = "WithoutPreprocess"
		}
		b.Run(name, func(b *testing.B) {
			var virtuals int
			for i := 0; i < b.N; i++ {
				opts := extract.DefaultOptions()
				opts.ForceCondensed = true
				opts.SkipPreprocess = skip
				res, err := extract.Extract(db, prog, opts)
				if err != nil {
					b.Fatal(err)
				}
				virtuals = res.Graph.NumVirtualNodes()
			}
			b.ReportMetric(float64(virtuals), "virtnodes")
		})
	}
}

// noDupGraph builds a condensed graph with DISJOINT virtual nodes: zero
// duplication, so C-DUP's hash set is pure overhead.
func noDupGraph() *core.Graph {
	g := core.New(core.CDUP)
	g.Symmetric = true
	const nVirt, size = 300, 8
	for i := int64(1); i <= nVirt*size; i++ {
		g.AddRealNode(i)
	}
	for v := 0; v < nVirt; v++ {
		vn := g.AddVirtualNode(1)
		for m := 0; m < size; m++ {
			g.AddMember(vn, int32(v*size+m))
		}
	}
	g.SortAdjacency()
	return g
}

// BenchmarkAblation_HashSetOverhead isolates the on-the-fly deduplication
// cost: the same duplication-free graph traversed in C-DUP mode (hash set)
// vs DEDUP-1 mode (plain traversal).
func BenchmarkAblation_HashSetOverhead(b *testing.B) {
	g := noDupGraph()
	for _, mode := range []core.Mode{core.CDUP, core.DEDUP1} {
		work := g.Clone()
		work.SetMode(mode)
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				work.ForEachReal(func(r int32) bool {
					work.ForNeighbors(r, func(int32) bool { return true })
					return true
				})
			}
		})
	}
}

// BenchmarkAblation_BitmapVsHashSet compares the two duplicate-suppression
// mechanisms on a genuinely duplicated graph.
func BenchmarkAblation_BitmapVsHashSet(b *testing.B) {
	g := datagen.Condensed(datagen.CondensedConfig{
		Seed: 9, RealNodes: 800, VirtualNodes: 600, MeanSize: 7, StdDev: 2,
	})
	bm, _, err := dedup.Bitmap2(g, dedup.Options{Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		g    *core.Graph
	}{{"C-DUP/hashset", g}, {"BITMAP/masks", bm}} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tc.g.ForEachReal(func(r int32) bool {
					tc.g.ForNeighbors(r, func(int32) bool { return true })
					return true
				})
			}
		})
	}
}

// BenchmarkAblation_FlattenLayers compares traversing a 3-layer condensed
// graph against its flattened single-layer equivalent (Section 5.2.2's
// suggested conversion).
func BenchmarkAblation_FlattenLayers(b *testing.B) {
	db := datagen.Layered(datagen.LayeredSpec{Seed: 6, Rows: 4000, Entities: 600, Sel1: 0.05, Sel2: 0.1})
	prog, err := datalog.Parse(datagen.LayeredQuery)
	if err != nil {
		b.Fatal(err)
	}
	opts := extract.DefaultOptions()
	opts.ForceCondensed = true
	opts.SkipPreprocess = true
	res, err := extract.Extract(db, prog, opts)
	if err != nil {
		b.Fatal(err)
	}
	multi := res.Graph
	flat := multi.Clone()
	if err := flat.FlattenToSingleLayer(0); err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		g    *core.Graph
	}{{"MultiLayer", multi}, {"Flattened", flat}} {
		b.Run(tc.name, func(b *testing.B) {
			ids := make([]int64, 0, 64)
			tc.g.ForEachReal(func(r int32) bool {
				ids = append(ids, tc.g.RealID(r))
				return len(ids) < 64
			})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				id := ids[i%len(ids)]
				r, _ := tc.g.RealIndex(id)
				tc.g.ForNeighbors(r, func(int32) bool { return true })
			}
			b.ReportMetric(float64(tc.g.RepEdges()), "edges")
		})
	}
}
