package graphgen

import (
	"errors"
	"testing"

	"graphgen/internal/graphapi"
)

// TestExtractLive walks the public live-maintenance workflow: extract once,
// mutate the relational tables, read the graph without re-extracting.
func TestExtractLive(t *testing.T) {
	db := demoDB(t)
	ap, err := db.Table("AuthorPub")
	if err != nil {
		t.Fatal(err)
	}
	engine := NewEngine(db, WithForceCondensed())
	lg, err := engine.ExtractLive(demoQuery)
	if err != nil {
		t.Fatal(err)
	}
	defer lg.Close()

	if !lg.ExistsEdge(1, 2) || lg.ExistsEdge(1, 4) {
		t.Fatal("initial live graph does not match the extraction")
	}
	if n := lg.NumVertices(); n != 5 {
		t.Fatalf("vertices = %d, want 5", n)
	}
	if name, ok := lg.PropertyOf(1, "Name"); !ok || name != "ann" {
		t.Fatalf("PropertyOf(1) = %q, %v", name, ok)
	}

	// A tuple insert shows up on the next read, no re-extraction.
	if err := ap.Insert(IntVal(1), IntVal(20)); err != nil {
		t.Fatal(err)
	}
	if lg.Pending() == 0 {
		t.Fatal("insert queued no deltas")
	}
	if !lg.ExistsEdge(1, 4) {
		t.Fatal("edge 1->4 missing after shared-pub insert")
	}
	// A delete severs only edges that lost their last support.
	if ok, err := ap.Delete(IntVal(1), IntVal(20)); err != nil || !ok {
		t.Fatalf("delete: %v %v", ok, err)
	}
	if lg.ExistsEdge(1, 4) {
		t.Fatal("edge 1->4 survived losing its only support")
	}
	if !lg.ExistsEdge(1, 2) {
		t.Fatal("unrelated edge 1->2 was damaged")
	}

	// The live graph rejects direct mutation: updates flow through tables.
	if err := lg.AddEdge(1, 5); !errors.Is(err, ErrLiveMutation) {
		t.Fatalf("AddEdge = %v, want ErrLiveMutation", err)
	}
	if err := lg.DeleteVertex(1); !errors.Is(err, ErrLiveMutation) {
		t.Fatalf("DeleteVertex = %v, want ErrLiveMutation", err)
	}

	// Snapshot detaches: analysis and conversion work on the copy while
	// the live graph keeps tracking.
	snap := lg.Snapshot()
	if _, err := snap.As(DEDUP1); err != nil {
		t.Fatal(err)
	}
	ap.Insert(IntVal(5), IntVal(10))
	if !lg.ExistsEdge(1, 5) {
		t.Fatal("live graph missed the post-snapshot insert")
	}
	if snap.ExistsEdge(1, 5) {
		t.Fatal("snapshot is not detached from maintenance")
	}
	if lg.MaintenanceStats().Transitions == 0 {
		t.Fatal("no maintenance transitions recorded")
	}

	// Close freezes the graph.
	lg.Close()
	ap.Insert(IntVal(4), IntVal(30))
	if lg.ExistsEdge(4, 5) {
		t.Fatal("closed live graph kept maintaining")
	}

	// Iterator-shaped reads satisfy the graph API.
	ids := graphapi.ToList(lg.Vertices())
	if len(ids) != 5 {
		t.Fatalf("Vertices yielded %d ids, want 5", len(ids))
	}
	if n := graphapi.Count(lg.Neighbors(3)); n == 0 {
		t.Fatal("Neighbors(3) is empty")
	}
}
