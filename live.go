package graphgen

import (
	"errors"

	"graphgen/internal/datalog"
	"graphgen/internal/graphapi"
	"graphgen/internal/incremental"
)

// ErrLiveMutation is returned by the direct graph-mutation methods of
// LiveGraph: a live graph tracks its source tables, so edges and vertices
// are changed by mutating the relational data (Table.Insert, Table.Delete),
// not the graph.
var ErrLiveMutation = errors.New("graphgen: LiveGraph is maintained from its source tables; mutate the relational data instead")

// LiveGraph is an extracted condensed graph kept consistent with its source
// database under single-tuple updates (Table.Insert / Table.Delete /
// Table.DeleteWhere on the tables the extraction query reads). Updates are
// tracked through the relstore change log, turned into per-segment support
// deltas, and applied in batch on the next read, so after any update
// sequence the live graph's logical edge set equals a fresh Extract over
// the mutated database.
//
// Any number of goroutines may read concurrently; table mutations must come
// from one goroutine at a time but may overlap with reads.
type LiveGraph struct {
	live *incremental.Live
	// profile is the initial build's execution trace under WithProfile
	// (BuildProfile exposes it); maintenance is never traced.
	profile *Profile
}

// LiveGraph implements the read half of the paper's Graph API; the mutating
// operations return ErrLiveMutation.
var _ graphapi.Graph = (*LiveGraph)(nil)

// ExtractLive parses and executes an extraction program like Extract, then
// subscribes to the change logs of every table the program reads and keeps
// the result graph live. Close the returned graph to stop maintenance.
//
// Limits: changes to tables referenced by Nodes rules trigger a full
// re-extraction, executed immediately on the mutating goroutine (node-set
// maintenance is not incremental); the live graph always stays in the
// condensed C-DUP representation — take a Snapshot to convert or analyze;
// and WithMaxEdges is enforced at build and rebuild time only.
func (e *Engine) ExtractLive(dsl string, opts ...Option) (*LiveGraph, error) {
	prog, err := datalog.Parse(dsl)
	if err != nil {
		return nil, err
	}
	o := e.opts
	for _, fn := range opts {
		fn(&o)
	}
	live, err := incremental.New(e.db, prog, o)
	if err != nil {
		return nil, err
	}
	return &LiveGraph{live: live, profile: o.Trace.Finish()}, nil
}

// Vertices returns an iterator over all vertices.
func (g *LiveGraph) Vertices() Iterator {
	return graphapi.NewSliceIterator(g.live.Vertices())
}

// Neighbors returns an iterator over v's logical out-neighbors after
// applying pending deltas.
func (g *LiveGraph) Neighbors(v NodeID) Iterator {
	return graphapi.NewSliceIterator(g.live.Neighbors(v))
}

// ExistsEdge reports whether the logical edge u -> v exists after applying
// pending deltas.
func (g *LiveGraph) ExistsEdge(u, v NodeID) bool { return g.live.ExistsEdge(u, v) }

// NumVertices returns the number of live vertices.
func (g *LiveGraph) NumVertices() int { return g.live.NumVertices() }

// PropertyOf returns a vertex property set by the Nodes statements.
func (g *LiveGraph) PropertyOf(v NodeID, key string) (string, bool) {
	return g.live.PropertyOf(v, key)
}

// LogicalEdges returns the logical (expanded) edge count.
func (g *LiveGraph) LogicalEdges() int64 { return g.live.LogicalEdges() }

// AddVertex returns ErrLiveMutation; insert into the node tables instead.
func (g *LiveGraph) AddVertex(NodeID) error { return ErrLiveMutation }

// DeleteVertex returns ErrLiveMutation; delete from the node tables instead.
func (g *LiveGraph) DeleteVertex(NodeID) error { return ErrLiveMutation }

// AddEdge returns ErrLiveMutation; insert into the edge tables instead.
func (g *LiveGraph) AddEdge(NodeID, NodeID) error { return ErrLiveMutation }

// DeleteEdge returns ErrLiveMutation; delete from the edge tables instead.
func (g *LiveGraph) DeleteEdge(NodeID, NodeID) error { return ErrLiveMutation }

// Flush applies all pending deltas now and reports any rebuild error.
func (g *LiveGraph) Flush() error { return g.live.Flush() }

// Pending returns the number of queued, not-yet-applied deltas.
func (g *LiveGraph) Pending() int { return g.live.Pending() }

// Snapshot applies pending deltas and returns a detached Graph copy, for
// representation conversion (Graph.As) and the analysis entry points.
func (g *LiveGraph) Snapshot() *Graph { return WrapCore(g.live.Snapshot()) }

// Version applies pending deltas and returns the snapshot version: a
// counter that increases every time the served graph state changes (the
// initial build, each batched delta application, every rebuild). Two reads
// returning the same version observed the same graph, which makes the
// version the cache-invalidation half of a memoized-analytics key — see
// internal/server, which keys its result cache by
// (session, version, analysis, params).
func (g *LiveGraph) Version() uint64 { return g.live.Version() }

// SnapshotWithVersion is Snapshot plus the version the copy was taken at,
// read atomically, so derived results can be keyed to exactly the state
// they were computed from even while table mutations race the read.
func (g *LiveGraph) SnapshotWithVersion() (*Graph, uint64) {
	c, ver := g.live.SnapshotVersioned()
	return WrapCore(c), ver
}

// MaintenanceStats returns counters of the maintenance activity.
func (g *LiveGraph) MaintenanceStats() incremental.Stats { return g.live.Stats() }

// Summarize applies pending deltas and returns vertices, logical edges,
// version, and pending-delta count as one consistent view (separate
// accessor calls could tear under concurrent mutations).
func (g *LiveGraph) Summarize() incremental.Summary { return g.live.Summarize() }

// Close stops maintenance: the graph stays readable but frozen.
func (g *LiveGraph) Close() { g.live.Close() }
