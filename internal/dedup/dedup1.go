package dedup

import (
	"math/rand"

	"graphgen/internal/core"
	"graphgen/internal/parallel"
)

// This file implements the four DEDUP-1 algorithms of Section 5.2.1. All of
// them operate on single-layer symmetric membership graphs: every virtual
// node V carries a member set M(V) (= I(V) = O(V)), realizing the clique on
// M(V); the deduplicated target state is that every real pair is connected
// through at most one virtual node or one direct edge. "Removing a node from
// a virtual node" removes the full membership (both edge directions), and
// every removal is compensated with undirected direct edges for the pairs
// that would otherwise lose their only path — so the logical graph is
// preserved exactly (minimizing the edges added is NP-hard; these are the
// paper's heuristics).

// Dedup1NaiveVirtualFirst implements "Naive Virtual Nodes First": virtual
// nodes are added one at a time to an (initially virtual-free) partial graph
// that is kept duplication-free throughout. For each processed virtual node
// Ri overlapping the incoming V in more than one member, overlap members are
// evicted one at a time — from the smaller of the two virtual nodes, since
// that requires fewer compensating direct edges.
func Dedup1NaiveVirtualFirst(g *core.Graph, opts Options) (*core.Graph, Stats, error) {
	return dedup1VirtualFirst(g, opts, false)
}

// Dedup1GreedyVirtualFirst implements "Greedy Virtual Nodes First"
// (Algorithm 3): like the naive variant it adds virtual nodes one at a time,
// but each eviction picks the (member, side) pair with the best benefit/cost
// ratio, where benefit counts how many pairwise intersections the removal
// shrinks and cost counts the direct edges needed to compensate. This is the
// algorithm the paper uses for DEDUP-1 in its evaluation (Section 6.1.1).
func Dedup1GreedyVirtualFirst(g *core.Graph, opts Options) (*core.Graph, Stats, error) {
	return dedup1VirtualFirst(g, opts, true)
}

func dedup1VirtualFirst(g *core.Graph, opts Options, greedy bool) (*core.Graph, Stats, error) {
	if err := requireSymmetricSingleLayer(g, opts.Workers); err != nil {
		return nil, Stats{}, err
	}
	out := g.Clone()
	out.SortAdjacency()
	out.NormalizeDirects()
	var st Stats
	st.RepEdgesBefore = out.RepEdges()
	rng := rand.New(rand.NewSource(opts.Seed))

	order := virtualOrder(out, opts)
	processed := make(map[int32]bool, len(order))
	// memberIndex maps a real node to the processed virtual nodes it
	// belongs to, so overlap candidates are found without a full scan.
	memberIndex := make(map[int32][]int32)

	for _, v := range order {
		if !out.VirtAlive(v) {
			continue
		}
		if greedy {
			dedupVirtualGreedy(out, v, processed, memberIndex, &st, opts.Workers)
		} else {
			dedupVirtualNaive(out, v, processed, memberIndex, rng, &st)
		}
		processed[v] = true
		for _, m := range out.VirtTargets(v) {
			memberIndex[m] = append(memberIndex[m], v)
		}
	}
	out.SetMode(core.DEDUP1)
	st.RepEdgesAfter = out.RepEdges()
	return out, st, nil
}

// relevantProcessed returns the processed virtual nodes sharing at least
// minShared members with v, using the member index.
func relevantProcessed(out *core.Graph, v int32, memberIndex map[int32][]int32, minShared int) []int32 {
	counts := make(map[int32]int)
	for _, m := range out.VirtTargets(v) {
		for _, w := range memberIndex[m] {
			if out.VirtAlive(w) && contains(out.VirtTargets(w), m) {
				counts[w]++
			}
		}
	}
	var rel []int32
	for w, c := range counts {
		if c >= minShared {
			rel = append(rel, w)
		}
	}
	mergeSortBy(rel, func(a, b int32) bool { return a < b })
	return rel
}

func dedupVirtualNaive(out *core.Graph, v int32, processed map[int32]bool, memberIndex map[int32][]int32, rng *rand.Rand, st *Stats) {
	for _, ri := range relevantProcessed(out, v, memberIndex, 2) {
		for {
			c := intersectSorted(out.VirtTargets(v), out.VirtTargets(ri))
			if len(c) <= 1 {
				break
			}
			r := c[rng.Intn(len(c))]
			// Evict from the lower-degree virtual node: fewer
			// compensating direct edges.
			side := v
			if len(out.VirtTargets(ri)) < len(out.VirtTargets(v)) {
				side = ri
			}
			removeMembershipWithCompensation(out, side, r, st)
		}
	}
	// A direct edge between two members of v would itself be a duplicate
	// path: v covers that pair now, so the direct edge is dropped.
	dropRedundantDirects(out, v, st)
}

func dedupVirtualGreedy(out *core.Graph, v int32, processed map[int32]bool, memberIndex map[int32][]int32, st *Stats, workers int) {
	for {
		rel := relevantProcessed(out, v, memberIndex, 2)
		if len(rel) == 0 {
			break
		}
		// Find the (member, side) eviction with the best benefit/cost
		// ratio across all intersections (Algorithm 3's
		// maxBenefitRatio).
		type choice struct {
			side, member int32
			ratio        float64
		}
		best := choice{ratio: -1}
		memberDupCount := make(map[int32]int)
		intersections := make([][]int32, len(rel))
		for i, s := range rel {
			intersections[i] = intersectSorted(out.VirtTargets(v), out.VirtTargets(s))
			for _, m := range intersections[i] {
				memberDupCount[m]++
			}
		}
		// compensationCost dominates the scan. The candidate (side,
		// member) pairs are collected in the serial encounter order,
		// their costs computed concurrently (each is a read-only
		// coverage check), and the winner picked by a serial reduction
		// over that same order — so the eviction chosen is identical to
		// the serial algorithm's for every worker count.
		type cand struct {
			side, member int32
		}
		var cands []cand
		candIdx := make(map[int64]int)
		idxOf := func(side, m int32) int {
			key := int64(side)<<32 | int64(uint32(m))
			if i, ok := candIdx[key]; ok {
				return i
			}
			candIdx[key] = len(cands)
			cands = append(cands, cand{side: side, member: m})
			return len(cands) - 1
		}
		for i, s := range rel {
			if len(intersections[i]) <= 1 {
				continue
			}
			for _, m := range intersections[i] {
				idxOf(v, m)
				idxOf(s, m)
			}
		}
		costs := make([]int, len(cands))
		parallel.RunMin(len(cands), workers, 4, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				costs[i] = compensationCost(out, cands[i].side, cands[i].member)
			}
		})
		for i, s := range rel {
			if len(intersections[i]) <= 1 {
				continue
			}
			for _, m := range intersections[i] {
				// Removing m from v shrinks every intersection
				// containing m; removing it from s shrinks one.
				evalChoice := func(side int32, benefit int) {
					cost := costs[idxOf(side, m)]
					ratio := float64(benefit) / float64(cost+1)
					if ratio > best.ratio {
						best = choice{side: side, member: m, ratio: ratio}
					}
				}
				evalChoice(v, memberDupCount[m])
				evalChoice(s, 1)
			}
		}
		if best.ratio < 0 {
			break
		}
		removeMembershipWithCompensation(out, best.side, best.member, st)
	}
	dropRedundantDirects(out, v, st)
}

// compensationCost counts the direct-edge pairs that removing member m from
// virtual node v would require.
func compensationCost(out *core.Graph, v, m int32) int {
	cost := 0
	for _, y := range out.VirtTargets(v) {
		if y == m {
			continue
		}
		if !coveredPairExcluding(out, m, y, v) {
			cost++
		}
	}
	return cost
}

// coveredPairExcluding reports whether the pair (a, b) has a path not going
// through virtual node exclude.
func coveredPairExcluding(g *core.Graph, a, b, exclude int32) bool {
	return coveredPair(g, a, b, exclude)
}

// dropRedundantDirects removes direct edges between members of v, which are
// duplicates of the paths through v.
func dropRedundantDirects(out *core.Graph, v int32, st *Stats) {
	members := out.VirtTargets(v)
	if len(members) < 2 {
		return
	}
	inV := make(map[int32]struct{}, len(members))
	for _, m := range members {
		inV[m] = struct{}{}
	}
	for _, m := range members {
		for _, t := range append([]int32(nil), out.OutDirect(m)...) {
			if _, ok := inV[t]; ok && t != m {
				out.RemoveDirectEdgeIdx(m, t)
				st.DirectEdgesAdded--
			}
		}
	}
}

// Dedup1NaiveRealFirst implements "Naive Real Nodes First": each real node's
// virtual neighborhood is deduplicated pairwise in encounter order, with the
// processed set scoped to that neighborhood and cleared per real node.
func Dedup1NaiveRealFirst(g *core.Graph, opts Options) (*core.Graph, Stats, error) {
	if err := requireSymmetricSingleLayer(g, opts.Workers); err != nil {
		return nil, Stats{}, err
	}
	out := g.Clone()
	out.SortAdjacency()
	out.NormalizeDirects()
	var st Stats
	st.RepEdgesBefore = out.RepEdges()
	rng := rand.New(rand.NewSource(opts.Seed))

	for _, rn := range realOrder(out, opts) {
		var local []int32 // processed set scoped to rn's neighborhood
		for _, v := range append([]int32(nil), out.OutVirtuals(rn)...) {
			if !out.VirtAlive(v) || contains(local, v) {
				continue
			}
			for _, w := range local {
				if !out.VirtAlive(w) {
					continue
				}
				for {
					c := intersectSorted(out.VirtTargets(v), out.VirtTargets(w))
					if len(c) <= 1 {
						break
					}
					r := c[rng.Intn(len(c))]
					side := v
					if len(out.VirtTargets(w)) < len(out.VirtTargets(v)) {
						side = w
					}
					removeMembershipWithCompensation(out, side, r, &st)
				}
			}
			local = append(local, v)
		}
	}
	out.SetMode(core.DEDUP1)
	st.RepEdgesAfter = out.RepEdges()
	return out, st, nil
}

// Dedup1GreedyRealFirst implements "Greedy Real Nodes First": each real node
// u is deduplicated individually with a set-cover flavored heuristic. u's
// virtual memberships are split into a kept set V' and a dropped set V”:
// greedily move the virtual node with the highest benefit (new coverage of
// N(u) minus eviction cost) into V'; members of a newly kept node that are
// already covered are evicted from it (with compensation); when no node has
// positive benefit, u is removed from the remaining nodes and connected to
// any still-uncovered neighbors with direct edges.
func Dedup1GreedyRealFirst(g *core.Graph, opts Options) (*core.Graph, Stats, error) {
	if err := requireSymmetricSingleLayer(g, opts.Workers); err != nil {
		return nil, Stats{}, err
	}
	out := g.Clone()
	out.SortAdjacency()
	out.NormalizeDirects()
	var st Stats
	st.RepEdgesBefore = out.RepEdges()

	for _, u := range realOrder(out, opts) {
		covered := make(map[int32]struct{}) // X: neighbors covered via V'
		for _, t := range out.OutDirect(u) {
			covered[t] = struct{}{}
		}
		remaining := append([]int32(nil), out.OutVirtuals(u)...)
		for {
			bestIdx := -1
			bestBenefit := 0
			for i, v := range remaining {
				if v < 0 || !out.VirtAlive(v) {
					continue
				}
				gain, evictions := 0, 0
				for _, m := range out.VirtTargets(v) {
					if m == u {
						continue
					}
					if _, ok := covered[m]; ok {
						evictions++
					} else {
						gain++
					}
				}
				benefit := gain - evictions
				if gain > 0 && benefit > bestBenefit {
					bestBenefit, bestIdx = benefit, i
				}
			}
			if bestIdx < 0 {
				break
			}
			v := remaining[bestIdx]
			remaining[bestIdx] = -1
			// Evict already-covered members (other than u) so that
			// u sees each of them through exactly one path.
			for _, m := range append([]int32(nil), out.VirtTargets(v)...) {
				if m == u {
					continue
				}
				if _, ok := covered[m]; ok {
					removeMembershipWithCompensation(out, v, m, &st)
				} else {
					covered[m] = struct{}{}
				}
			}
		}
		// Drop u from the remaining (not kept) virtual nodes; any of
		// their members not covered through V' get direct edges via
		// the standard compensation path.
		for _, v := range remaining {
			if v < 0 || !out.VirtAlive(v) {
				continue
			}
			removeMembershipWithCompensation(out, v, u, &st)
		}
	}
	out.SetMode(core.DEDUP1)
	st.RepEdgesAfter = out.RepEdges()
	return out, st, nil
}
