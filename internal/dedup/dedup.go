// Package dedup implements the preprocessing and deduplication algorithms of
// Section 5 of the GraphGen paper: BITMAP-1 and BITMAP-2 (set-cover based)
// for the BITMAP representation, four algorithms producing DEDUP-1 (Naive /
// Greedy x Virtual-Nodes-First / Real-Nodes-First), and the greedy splitting
// algorithm of Appendix B producing DEDUP-2.
//
// Input contract: all functions take a C-DUP graph and return a new graph in
// the target representation; the input is never modified. The BITMAP
// algorithms accept arbitrary (multi-layer, asymmetric) condensed graphs.
// The DEDUP-1 and DEDUP-2 algorithms follow the paper's scope (Section 5.2:
// "a series of novel algorithms ... for single-layer condensed graphs") and
// require single-layer symmetric membership graphs, where every virtual node
// V satisfies I(V) == O(V); they return ErrUnsupported otherwise — the paper
// likewise found the multi-layer variants "infeasible to run even on small
// multi-layer graphs" and recommends BITMAP-2 there.
package dedup

import (
	"errors"
	"math/rand"

	"graphgen/internal/core"
	"graphgen/internal/parallel"
)

// ErrUnsupported is returned when an algorithm is applied to a graph outside
// its supported class (e.g. DEDUP-1 on a multi-layer or asymmetric graph).
var ErrUnsupported = errors.New("dedup: representation conversion unsupported for this graph class")

// Ordering selects the node processing order studied in Figure 12b.
type Ordering int

// Processing orders. The paper's sortByDuplication is approximated by
// membership size, its dominant term.
const (
	// OrderRandom processes nodes in a seeded random shuffle (the paper's
	// recommended robust default).
	OrderRandom Ordering = iota
	// OrderSizeAsc processes smaller virtual nodes (or lower-membership
	// real nodes) first.
	OrderSizeAsc
	// OrderSizeDesc processes larger nodes first.
	OrderSizeDesc
)

func (o Ordering) String() string {
	switch o {
	case OrderRandom:
		return "RAND"
	case OrderSizeAsc:
		return "ASC"
	case OrderSizeDesc:
		return "DESC"
	default:
		return "?"
	}
}

// Options configures a deduplication run.
type Options struct {
	// Ordering is the node processing order (Figure 12b).
	Ordering Ordering
	// Seed drives the random ordering and random choices; runs are
	// deterministic for a fixed seed.
	Seed int64
	// Workers bounds the parallelism of the conversion's independent
	// phases, all run on the shared worker pool (internal/parallel): the
	// BITMAP-1/BITMAP-2 per-origin plans, DEDUP-1's greedy candidate cost
	// evaluation, DEDUP-2's pair-coverage checks, and the input-contract
	// validation scan. Every phase merges deterministically, so the output
	// graph is identical for any setting; <= 0 means GOMAXPROCS.
	Workers int
}

// Stats reports what a deduplication run did.
type Stats struct {
	// RepEdgesBefore / RepEdgesAfter are physical edge counts.
	RepEdgesBefore, RepEdgesAfter int64
	// DirectEdgesAdded counts compensating direct edges added (directed).
	DirectEdgesAdded int64
	// MembershipsRemoved counts virtual-membership removals.
	MembershipsRemoved int64
	// BitmapsCreated counts bitmaps attached (BITMAP algorithms).
	BitmapsCreated int64
	// VirtualNodesCreated counts virtual nodes created (DEDUP-2 splits).
	VirtualNodesCreated int64
}

// --- shared helpers ---

// requireSymmetricSingleLayer validates the DEDUP-1/DEDUP-2 input contract:
// one virtual layer, member-set virtual nodes (I(V) == O(V)), symmetric
// direct edges, and no logical self loops (a member of two virtual nodes
// would emit its self edge once per membership, which membership surgery
// cannot deduplicate — the BITMAP representations handle that case). The
// per-node checks are independent and read-only, so they run chunked on the
// worker pool with an order-insensitive all-of reduction.
func requireSymmetricSingleLayer(g *core.Graph, workers int) error {
	if g.SelfLoops {
		return ErrUnsupported
	}
	if g.MaxLayer() > 1 {
		return ErrUnsupported
	}
	virtOK := parallel.MapChunks(g.NumVirtualSlots(), workers, 0, func(lo, hi int) bool {
		for v := int32(lo); v < int32(hi); v++ {
			if !g.VirtAlive(v) {
				continue
			}
			if !sameMembers(g.VirtSources(v), g.VirtTargets(v)) {
				return false
			}
		}
		return true
	})
	ok := allOf(virtOK)
	if ok {
		realOK := parallel.MapChunks(g.NumRealSlots(), workers, 0, func(lo, hi int) bool {
			for u := int32(lo); u < int32(hi); u++ {
				if !g.Alive(u) {
					continue
				}
				for _, w := range g.OutDirect(u) {
					if !contains(g.OutDirect(w), u) {
						return false
					}
				}
			}
			return true
		})
		ok = allOf(realOK)
	}
	if !ok {
		return ErrUnsupported
	}
	return nil
}

func allOf(flags []bool) bool {
	for _, f := range flags {
		if !f {
			return false
		}
	}
	return true
}

func sameMembers(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// intersectSorted returns the intersection of two ascending-sorted slices.
func intersectSorted(a, b []int32) []int32 {
	var out []int32
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func contains(s []int32, x int32) bool {
	for _, e := range s {
		if e == x {
			return true
		}
	}
	return false
}

// coveredPair reports whether the symmetric pair (a, b) is currently covered
// by the full graph through a direct edge or any virtual node other than
// exclude. Deduplication removals consult it before compensating so that no
// logical edge is ever lost. Virtual target lists stay sorted throughout
// deduplication (removals preserve order), so they are binary-searched.
func coveredPair(g *core.Graph, a, b, exclude int32) bool {
	if contains(g.OutDirect(a), b) {
		return true
	}
	for _, v := range g.OutVirtuals(a) {
		if v == exclude {
			continue
		}
		if containsSorted(g.VirtTargets(v), b) {
			return true
		}
	}
	return false
}

// containsSorted binary-searches an ascending slice, falling back to a scan
// on short slices.
func containsSorted(s []int32, x int32) bool {
	if len(s) <= 16 {
		return contains(s, x)
	}
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(s) && s[lo] == x
}

// removeMembershipWithCompensation removes real node r from virtual node v
// (both the source and target side), then restores any pair (r, y) for
// y in M(v) that lost its only path by adding an undirected direct edge.
func removeMembershipWithCompensation(g *core.Graph, v, r int32, st *Stats) {
	others := append([]int32(nil), g.VirtTargets(v)...)
	g.DisconnectRealToVirt(r, v)
	g.DisconnectVirtToReal(v, r)
	st.MembershipsRemoved++
	for _, y := range others {
		if y == r {
			continue
		}
		if coveredPair(g, r, y, -1) {
			continue
		}
		g.AddDirectEdgeIdx(r, y)
		g.AddDirectEdgeIdx(y, r)
		st.DirectEdgesAdded += 2
	}
}

// virtualOrder returns the processing order over live virtual nodes.
func virtualOrder(g *core.Graph, opts Options) []int32 {
	var vs []int32
	g.ForEachVirtual(func(v int32) bool { vs = append(vs, v); return true })
	orderBySize(vs, opts, func(v int32) int { return len(g.VirtTargets(v)) })
	return vs
}

// realOrder returns the processing order over live real nodes.
func realOrder(g *core.Graph, opts Options) []int32 {
	var rs []int32
	g.ForEachReal(func(r int32) bool { rs = append(rs, r); return true })
	orderBySize(rs, opts, func(r int32) int { return len(g.OutVirtuals(r)) })
	return rs
}

func orderBySize(s []int32, opts Options, size func(int32) int) {
	switch opts.Ordering {
	case OrderRandom:
		rng := rand.New(rand.NewSource(opts.Seed))
		rng.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	case OrderSizeAsc:
		insertionSortBy(s, func(a, b int32) bool { return size(a) < size(b) || (size(a) == size(b) && a < b) })
	case OrderSizeDesc:
		insertionSortBy(s, func(a, b int32) bool { return size(a) > size(b) || (size(a) == size(b) && a < b) })
	}
}

func insertionSortBy(s []int32, less func(a, b int32) bool) {
	// Simple merge sort to keep determinism and O(n log n) without
	// importing sort with closures repeatedly; slices here are large, so
	// use the stdlib-equivalent approach.
	mergeSortBy(s, less)
}

func mergeSortBy(s []int32, less func(a, b int32) bool) {
	if len(s) < 2 {
		return
	}
	mid := len(s) / 2
	left := append([]int32(nil), s[:mid]...)
	right := append([]int32(nil), s[mid:]...)
	mergeSortBy(left, less)
	mergeSortBy(right, less)
	i, j, k := 0, 0, 0
	for i < len(left) && j < len(right) {
		if less(right[j], left[i]) {
			s[k] = right[j]
			j++
		} else {
			s[k] = left[i]
			i++
		}
		k++
	}
	for i < len(left) {
		s[k] = left[i]
		i++
		k++
	}
	for j < len(right) {
		s[k] = right[j]
		j++
		k++
	}
}
