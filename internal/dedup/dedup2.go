package dedup

import (
	"graphgen/internal/core"
	"graphgen/internal/parallel"
)

// This file implements the DEDUP-2 greedy algorithm of Appendix B. DEDUP-2
// targets single-layer symmetric condensed graphs and enriches the
// representation with undirected edges between virtual nodes: a member u of
// virtual node V is logically connected to M(V) and to the members of V's
// 1-hop undirected virtual neighborhood, so an undirected edge A <-> B
// realizes the complete bipartite pair set M(A) x M(B) with a single edge.
//
// The algorithm processes the input's virtual nodes one at a time, keeping
// the partial graph duplicate-free. Incorporating a member set S:
//
//  1. find the processed virtual node V1 with the highest member overlap;
//  2. split V1 into W1 = S ∩ M(V1) and W2 = M(V1) - W1 connected by an
//     undirected edge, both inheriting V1's previous virtual neighbors
//     (this preserves every pair V1 realized);
//  3. the rest of S splits into W4 — members that appear in V1's old
//     neighborhood, whose pairs with W1 are therefore already realized "for
//     free" — and W3, which is clean;
//  4. W4 then W3 are incorporated recursively, and the piece lists are
//     linked: W1 <-> pieces(W3) and pieces(W3) <-> pieces(W4).
//
// Every virtual-virtual edge is added through a checked path that verifies
// the structural invariants (adjacent virtual nodes member-disjoint, virtual
// neighborhoods pairwise disjoint) and that no pair would become duplicated;
// when a check fails the affected uncovered pairs fall back to direct edges,
// so equivalence always holds. Singleton virtual nodes represent what would
// otherwise be direct edges, as in the paper; pure fallback pairs use direct
// edges for compactness.

// Dedup2Greedy converts a single-layer symmetric C-DUP graph into the
// DEDUP-2 representation.
func Dedup2Greedy(g *core.Graph, opts Options) (*core.Graph, Stats, error) {
	if err := requireSymmetricSingleLayer(g, opts.Workers); err != nil {
		return nil, Stats{}, err
	}
	var st Stats
	st.RepEdgesBefore = g.RepEdges()

	// Work from a normalized copy: direct edges that duplicate virtual
	// paths disappear, the rest must be carried into the output.
	src := g.Clone()
	src.NormalizeDirects()
	g = src

	b := &dedup2Builder{src: g, out: core.New(core.DEDUP2), idx: make(map[int32][]int32), st: &st, workers: opts.Workers}
	b.out.Symmetric = true
	b.out.SelfLoops = false
	// Real nodes copy (dense indices align with the source by insertion
	// order, but we map defensively through external IDs).
	g.ForEachReal(func(r int32) bool {
		nr := b.out.AddRealNode(g.RealID(r))
		for key, val := range g.Properties(r) {
			b.out.SetProperty(nr, key, val)
		}
		return true
	})

	for _, v := range virtualOrder(g, opts) {
		members := make([]int32, 0, len(g.VirtTargets(v)))
		seen := make(map[int32]struct{})
		for _, m := range g.VirtTargets(v) {
			nr, _ := b.out.RealIndex(g.RealID(m))
			if _, dup := seen[nr]; dup {
				continue
			}
			seen[nr] = struct{}{}
			members = append(members, nr)
		}
		b.resolve(members)
	}
	// Carry over the input's surviving direct edges (symmetric pairs)
	// unless the constructed virtual structure already covers them.
	g.ForEachReal(func(u int32) bool {
		nu, _ := b.out.RealIndex(g.RealID(u))
		for _, w := range g.OutDirect(u) {
			nw, _ := b.out.RealIndex(g.RealID(w))
			if nu == nw || b.covered(nu, nw) {
				continue
			}
			b.out.AddDirectEdgeIdx(nu, nw)
			b.out.AddDirectEdgeIdx(nw, nu)
			st.DirectEdgesAdded += 2
		}
		return true
	})
	st.RepEdgesAfter = b.out.RepEdges()
	return b.out, st, nil
}

type dedup2Builder struct {
	src *core.Graph
	out *core.Graph
	// idx maps a real node to the processed virtual nodes it belongs to.
	idx map[int32][]int32
	st  *Stats
	// workers bounds the parallelism of the candidate-evaluation checks.
	workers int
}

func (b *dedup2Builder) members(v int32) []int32 { return b.out.VirtTargets(v) }

func (b *dedup2Builder) virtsOf(m int32) []int32 {
	// Filter dead or stale entries lazily.
	vs := b.idx[m][:0]
	for _, v := range b.idx[m] {
		if b.out.VirtAlive(v) && contains(b.members(v), m) {
			vs = append(vs, v)
		}
	}
	b.idx[m] = vs
	return vs
}

// newVirtual creates a processed virtual node with the given member set.
func (b *dedup2Builder) newVirtual(members []int32) int32 {
	v := b.out.AddVirtualNode(1)
	b.st.VirtualNodesCreated++
	for _, m := range members {
		b.out.AddMember(v, m)
		b.idx[m] = append(b.idx[m], v)
	}
	return v
}

// covered reports whether the pair (a, c) is already realized: by a direct
// edge, by co-membership, or through a 1-hop virtual edge.
func (b *dedup2Builder) covered(a, c int32) bool {
	if contains(b.out.OutDirect(a), c) {
		return true
	}
	for _, v := range b.virtsOf(a) {
		if contains(b.members(v), c) {
			return true
		}
		for _, n := range b.out.VirtUndirected(v) {
			if contains(b.members(n), c) {
				return true
			}
		}
	}
	return false
}

// coveredRO is covered without virtsOf's index compaction: it only reads
// builder state, so concurrent calls from the worker pool are safe. Stale
// index entries are skipped instead of pruned, which cannot change the
// answer — only the cost of reaching it.
func (b *dedup2Builder) coveredRO(a, c int32) bool {
	if contains(b.out.OutDirect(a), c) {
		return true
	}
	for _, v := range b.idx[a] {
		if !b.out.VirtAlive(v) || !contains(b.members(v), a) {
			continue
		}
		if contains(b.members(v), c) {
			return true
		}
		for _, n := range b.out.VirtUndirected(v) {
			if contains(b.members(n), c) {
				return true
			}
		}
	}
	return false
}

// split replaces virtual node v with w1 (members = part) and w2 (the rest),
// both inheriting v's undirected neighbors, with w1 <-> w2 linking them.
// If part covers all of v's members, v is reused unchanged.
func (b *dedup2Builder) split(v int32, part []int32) (w1, w2 int32) {
	all := b.members(v)
	if len(part) == len(all) {
		return v, -1
	}
	inPart := make(map[int32]struct{}, len(part))
	for _, m := range part {
		inPart[m] = struct{}{}
	}
	var restMembers []int32
	for _, m := range all {
		if _, ok := inPart[m]; !ok {
			restMembers = append(restMembers, m)
		}
	}
	oldNeighbors := append([]int32(nil), b.out.VirtUndirected(v)...)
	b.out.RemoveVirtualNode(v)
	w1 = b.newVirtual(part)
	w2 = b.newVirtual(restMembers)
	b.out.ConnectVirtUndirected(w1, w2)
	for _, n := range oldNeighbors {
		if b.out.VirtAlive(n) {
			b.out.ConnectVirtUndirected(w1, n)
			b.out.ConnectVirtUndirected(w2, n)
		}
	}
	return w1, w2
}

// maxOverlap returns the processed virtual node sharing the most members
// with s, or -1.
func (b *dedup2Builder) maxOverlap(s []int32) (int32, int) {
	counts := make(map[int32]int)
	for _, m := range s {
		for _, v := range b.virtsOf(m) {
			counts[v]++
		}
	}
	best, bestN := int32(-1), 0
	for v, n := range counts {
		if n > bestN || (n == bestN && best >= 0 && v < best) {
			best, bestN = v, n
		}
	}
	return best, bestN
}

// resolve incorporates member set s into the partial graph and returns the
// virtual-node pieces that now partition s.
func (b *dedup2Builder) resolve(s []int32) []int32 {
	if len(s) == 0 {
		return nil
	}
	v1, overlap := b.maxOverlap(s)
	if v1 < 0 || overlap == 0 {
		return []int32{b.newVirtual(s)}
	}
	inV1 := make(map[int32]struct{})
	for _, m := range b.members(v1) {
		inV1[m] = struct{}{}
	}
	var w1set, rest []int32
	for _, m := range s {
		if _, ok := inV1[m]; ok {
			w1set = append(w1set, m)
		} else {
			rest = append(rest, m)
		}
	}
	// Neighborhood members of v1 BEFORE the split decide the W3/W4 split.
	neigh := make(map[int32]struct{})
	for _, n := range b.out.VirtUndirected(v1) {
		for _, m := range b.members(n) {
			neigh[m] = struct{}{}
		}
	}
	w1, _ := b.split(v1, w1set)
	if len(rest) == 0 {
		return []int32{w1}
	}
	var w3set, w4set []int32
	for _, m := range rest {
		if _, ok := neigh[m]; ok {
			w4set = append(w4set, m) // pairs with W1 realized for free
		} else {
			w3set = append(w3set, m)
		}
	}
	p4 := b.resolve(w4set)
	p3 := b.resolve(w3set)
	// Link the pieces: W1 <-> W3 pieces, W3 pieces <-> W4 pieces.
	for _, p := range p3 {
		b.addEdgeChecked(w1, p)
	}
	for _, a := range p3 {
		for _, c := range p4 {
			b.addEdgeChecked(a, c)
		}
	}
	pieces := append([]int32{w1}, p3...)
	return append(pieces, p4...)
}

// addEdgeChecked adds the undirected virtual edge a <-> c when doing so is
// provably safe; otherwise it covers the not-yet-covered pairs with direct
// edges. It never creates a duplicate pair and never loses a pair.
func (b *dedup2Builder) addEdgeChecked(a, c int32) {
	if a == c || !b.out.VirtAlive(a) || !b.out.VirtAlive(c) {
		return
	}
	if contains(b.out.VirtUndirected(a), c) {
		return
	}
	ok := true
	// Adjacent virtual nodes must be member-disjoint.
	if len(intersectMembers(b.members(a), b.members(c))) > 0 {
		ok = false
	}
	// The neighborhoods of a and c must stay pairwise disjoint.
	if ok {
		for _, n := range b.out.VirtUndirected(a) {
			if len(intersectMembers(b.members(n), b.members(c))) > 0 {
				ok = false
				break
			}
		}
	}
	if ok {
		for _, n := range b.out.VirtUndirected(c) {
			if len(intersectMembers(b.members(n), b.members(a))) > 0 {
				ok = false
				break
			}
		}
	}
	// No pair may already be covered. The per-pair checks are read-only
	// (coveredRO) and independent, so the |M(a)| x |M(c)| scan — the
	// expensive candidate evaluation of the conversion — fans out over the
	// worker pool; any-covered is an order-insensitive reduction.
	if ok {
		ma, mc := b.members(a), b.members(c)
		anyCovered := parallel.MapChunks(len(ma), b.workers, 8, func(lo, hi int) bool {
			for _, x := range ma[lo:hi] {
				for _, y := range mc {
					if b.coveredRO(x, y) {
						return true
					}
				}
			}
			return false
		})
		for _, hit := range anyCovered {
			if hit {
				ok = false
				break
			}
		}
	}
	if ok {
		b.out.ConnectVirtUndirected(a, c)
		return
	}
	// Fallback: direct edges for the uncovered pairs.
	for _, x := range b.members(a) {
		for _, y := range b.members(c) {
			if x == y || b.covered(x, y) {
				continue
			}
			b.out.AddDirectEdgeIdx(x, y)
			b.out.AddDirectEdgeIdx(y, x)
			b.st.DirectEdgesAdded += 2
		}
	}
}

func intersectMembers(a, c []int32) []int32 {
	set := make(map[int32]struct{}, len(a))
	for _, m := range a {
		set[m] = struct{}{}
	}
	var out []int32
	for _, m := range c {
		if _, ok := set[m]; ok {
			out = append(out, m)
		}
	}
	return out
}
