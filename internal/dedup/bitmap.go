package dedup

import (
	"graphgen/internal/bitset"
	"graphgen/internal/core"
	"graphgen/internal/parallel"
)

// This file implements the BITMAP preprocessing algorithms of Section 5.1.
//
// BITMAP-1 (Algorithm 2) associates bitmaps only with virtual nodes in the
// penultimate layer (those with outgoing edges to real targets): for every
// real node u it walks u's reachable virtual nodes once, and in each node's
// target list marks 1 the first occurrence of every real target and 0 any
// repeat. The edge structure is untouched.
//
// BITMAP-2 (Algorithm 1) phrases the per-origin problem as set cover (the
// minimal-bitmaps problem is NP-hard, Section 5.1.2) and runs the standard
// greedy approximation: repeatedly pick the reachable virtual node covering
// the most uncovered targets. Chosen nodes get a bitmap with exactly the
// newly covered bits set; unchosen reachable nodes get an all-zero mask; and
// first-layer edges whose subtree contributed nothing are deleted outright
// ("the edges from us to those nodes are simply deleted since there is no
// reason to traverse those"). Outgoing edges of virtual nodes are never
// deleted — another origin may need them.

// Bitmap1 builds the BITMAP representation with the naive BITMAP-1
// algorithm. It accepts any condensed graph (single- or multi-layer).
//
// The per-origin walks are independent and read-only, so they run on the
// shared worker pool (Options.Workers); each chunk stages its planned
// bitmaps and the mutations apply serially afterwards, making the output
// identical for every worker count.
func Bitmap1(g *core.Graph, opts ...Options) (*core.Graph, Stats, error) {
	workers := 0 // the Options contract: <= 0 means GOMAXPROCS
	if len(opts) > 0 {
		workers = opts[0].Workers
	}
	out := g.Clone()
	var st Stats
	st.RepEdgesBefore = out.RepEdges()
	out.NormalizeDirects()

	var origins []int32
	out.ForEachReal(func(u int32) bool { origins = append(origins, u); return true })
	chunks := parallel.MapChunks(len(origins), workers, 8, func(lo, hi int) []bitmap2Plan {
		var plans []bitmap2Plan
		seen := make(map[int32]struct{})
		seenVirt := make(map[int32]struct{})
		for _, u := range origins[lo:hi] {
			clear(seen)
			clear(seenVirt)
			p := bitmap2Plan{origin: u}
			var stack []int32
			stack = append(stack, out.OutVirtuals(u)...)
			for len(stack) > 0 {
				v := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if _, dup := seenVirt[v]; dup {
					continue
				}
				seenVirt[v] = struct{}{}
				targets := out.VirtTargets(v)
				if len(targets) > 0 {
					bmp := bitset.New(len(targets))
					for i, t := range targets {
						if t == u && !out.SelfLoops {
							continue // self edge: leave masked
						}
						if _, dup := seen[t]; dup {
							continue
						}
						seen[t] = struct{}{}
						bmp.Set(i)
					}
					p.bitmaps = append(p.bitmaps, plannedBitmap{virt: v, bits: bmp})
				}
				stack = append(stack, out.VirtOutVirt(v)...)
			}
			if len(p.bitmaps) > 0 {
				plans = append(plans, p)
			}
		}
		return plans
	})
	for _, ps := range chunks {
		for _, p := range ps {
			for _, pb := range p.bitmaps {
				out.SetBitmap(pb.virt, p.origin, pb.bits)
				st.BitmapsCreated++
			}
		}
	}
	out.SetMode(core.BITMAP)
	st.RepEdgesAfter = out.RepEdges()
	return out, st, nil
}

// bitmap2Plan is the per-origin result of the parallel analysis phase of
// BITMAP-2: which virtual nodes get which bitmaps and which first-layer
// edges are deleted. Mutations are applied serially afterwards; the paper
// notes its own multi-threaded implementation needed careful concurrency
// control for exactly this reason.
type bitmap2Plan struct {
	origin  int32
	bitmaps []plannedBitmap
	drop    []int32 // first-layer virtual nodes to disconnect from origin
}

type plannedBitmap struct {
	virt int32
	bits *bitset.Set
}

// Bitmap2 builds the BITMAP representation with the greedy set-cover
// BITMAP-2 algorithm. It accepts any condensed graph; the analysis phase is
// parallelized over chunks of real nodes (Section 5.1.3).
func Bitmap2(g *core.Graph, opts Options) (*core.Graph, Stats, error) {
	out := g.Clone()
	var st Stats
	st.RepEdgesBefore = out.RepEdges()
	out.NormalizeDirects()

	var origins []int32
	out.ForEachReal(func(r int32) bool { origins = append(origins, r); return true })

	plans := parallel.MapChunks(len(origins), opts.Workers, 8, func(lo, hi int) []bitmap2Plan {
		var ps []bitmap2Plan
		for _, u := range origins[lo:hi] {
			if p := planBitmap2(out, u); p != nil {
				ps = append(ps, *p)
			}
		}
		return ps
	})

	for _, ps := range plans {
		for _, p := range ps {
			for _, pb := range p.bitmaps {
				out.SetBitmap(pb.virt, p.origin, pb.bits)
				st.BitmapsCreated++
			}
			for _, v := range p.drop {
				out.DisconnectRealToVirt(p.origin, v)
			}
		}
	}
	out.SetMode(core.BITMAP)
	st.RepEdgesAfter = out.RepEdges()
	return out, st, nil
}

// planBitmap2 computes the greedy set cover for one origin. It only reads
// the graph, so it is safe to run concurrently with other origins.
func planBitmap2(g *core.Graph, u int32) *bitmap2Plan {
	first := g.OutVirtuals(u)
	if len(first) == 0 {
		return nil
	}
	// Collect the virtual nodes reachable from u (each once) and remember
	// through which first-layer child they were first discovered so that
	// useless first-layer subtrees can be pruned afterwards.
	reach := make([]int32, 0, len(first))
	seenVirt := make(map[int32]struct{})
	var dfs func(v int32)
	dfs = func(v int32) {
		if _, dup := seenVirt[v]; dup {
			return
		}
		seenVirt[v] = struct{}{}
		reach = append(reach, v)
		for _, w := range g.VirtOutVirt(v) {
			dfs(w)
		}
	}
	for _, v := range first {
		dfs(v)
	}
	// Greedy set cover over the reachable nodes' target lists.
	covered := make(map[int32]struct{})
	chosen := make(map[int32]*bitset.Set)
	remaining := append([]int32(nil), reach...)
	for {
		bestIdx, bestGain := -1, 0
		for i, v := range remaining {
			if v < 0 {
				continue
			}
			gain := 0
			for _, t := range g.VirtTargets(v) {
				if t == u && !g.SelfLoops {
					continue
				}
				if _, ok := covered[t]; !ok {
					gain++
				}
			}
			if gain > bestGain {
				bestGain, bestIdx = gain, i
			}
		}
		if bestIdx < 0 {
			break
		}
		v := remaining[bestIdx]
		remaining[bestIdx] = -1
		targets := g.VirtTargets(v)
		bmp := bitset.New(len(targets))
		for i, t := range targets {
			if t == u && !g.SelfLoops {
				continue
			}
			if _, ok := covered[t]; ok {
				continue
			}
			covered[t] = struct{}{}
			bmp.Set(i)
		}
		chosen[v] = bmp
	}
	// Emit the chosen bitmaps in discovery (reach) order, not map order, so a
	// plan's bitmap sequence is identical run to run.
	p := &bitmap2Plan{origin: u}
	for _, v := range reach {
		if bmp, ok := chosen[v]; ok {
			p.bitmaps = append(p.bitmaps, plannedBitmap{virt: v, bits: bmp})
		}
	}
	// Prune first-layer edges whose whole subtree contributed nothing.
	kept := make(map[int32]struct{})
	for _, v := range first {
		if !subtreeHasChosen(g, v, chosen) {
			p.drop = append(p.drop, v)
		} else {
			kept[v] = struct{}{}
		}
	}
	// Unchosen nodes still reachable after the drops get an all-zero mask
	// so traversal skips their targets but still descends their subtrees.
	// Nodes made unreachable by the drops need no mask at all — on
	// single-layer graphs this eliminates every redundant bitmap.
	reachable := make(map[int32]struct{})
	var mark func(v int32)
	mark = func(v int32) {
		if _, dup := reachable[v]; dup {
			return
		}
		reachable[v] = struct{}{}
		for _, w := range g.VirtOutVirt(v) {
			mark(w)
		}
	}
	for v := range kept {
		mark(v)
	}
	for _, v := range reach {
		if _, ok := chosen[v]; ok {
			continue
		}
		if _, ok := reachable[v]; !ok {
			continue
		}
		if n := len(g.VirtTargets(v)); n > 0 {
			p.bitmaps = append(p.bitmaps, plannedBitmap{virt: v, bits: bitset.New(n)})
		}
	}
	return p
}

func subtreeHasChosen(g *core.Graph, v int32, chosen map[int32]*bitset.Set) bool {
	if bmp, ok := chosen[v]; ok && bmp.Any() {
		return true
	}
	for _, w := range g.VirtOutVirt(v) {
		if subtreeHasChosen(g, w, chosen) {
			return true
		}
	}
	return false
}
