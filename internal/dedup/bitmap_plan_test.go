package dedup

import (
	"testing"

	"graphgen/internal/core"
)

// TestPlanBitmap2StableOrder pins the fix for a map-iteration-order leak
// graphlint's determinism analyzer surfaced: planBitmap2 used to emit the
// greedy cover straight out of the chosen map, so a plan's bitmap sequence
// varied run to run. It must now follow discovery (reach) order and be
// identical on every repetition.
func TestPlanBitmap2StableOrder(t *testing.T) {
	graphs := []*core.Graph{
		randomSymmetric(3, 24, 14, 6),
		randomMultiLayer(7, 20, 10, 6),
	}
	for gi, g := range graphs {
		out := g.Clone()
		out.NormalizeDirects()
		var origins []int32
		out.ForEachReal(func(u int32) bool { origins = append(origins, u); return true })
		for _, u := range origins {
			base := planBitmap2(out, u)
			if base == nil {
				continue
			}
			for rep := 0; rep < 10; rep++ {
				p := planBitmap2(out, u)
				if len(p.bitmaps) != len(base.bitmaps) {
					t.Fatalf("graph %d origin %d rep %d: %d bitmaps, first run had %d",
						gi, u, rep, len(p.bitmaps), len(base.bitmaps))
				}
				for i := range p.bitmaps {
					if p.bitmaps[i].virt != base.bitmaps[i].virt {
						t.Fatalf("graph %d origin %d rep %d: bitmap %d targets virtual %d, first run had %d — plan order depends on map iteration",
							gi, u, rep, i, p.bitmaps[i].virt, base.bitmaps[i].virt)
					}
				}
			}
		}
	}
}
