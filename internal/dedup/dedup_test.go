package dedup

import (
	"math/rand"
	"testing"
	"testing/quick"

	"graphgen/internal/core"
)

// randomSymmetric builds a random single-layer symmetric C-DUP graph:
// nReal real nodes, nVirt virtual nodes whose member sets are random subsets
// (sizes in [2, maxSize]). Heavy overlap is likely, so duplication abounds.
func randomSymmetric(seed int64, nReal, nVirt, maxSize int) *core.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := core.New(core.CDUP)
	g.Symmetric = true
	for i := 0; i < nReal; i++ {
		g.AddRealNode(int64(i + 1))
	}
	for v := 0; v < nVirt; v++ {
		size := 2 + rng.Intn(maxSize-1)
		if size > nReal {
			size = nReal
		}
		vn := g.AddVirtualNode(1)
		perm := rng.Perm(nReal)
		for _, r := range perm[:size] {
			g.AddMember(vn, int32(r))
		}
	}
	g.SortAdjacency()
	return g
}

// randomMultiLayer builds a random 2-layer condensed graph: sources connect
// to layer-1 virtual nodes, which connect to layer-2 virtual nodes and to
// real targets, which layer-2 nodes also have.
func randomMultiLayer(seed int64, nReal, nV1, nV2 int) *core.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := core.New(core.CDUP)
	for i := 0; i < nReal; i++ {
		g.AddRealNode(int64(i + 1))
	}
	v2s := make([]int32, nV2)
	for i := range v2s {
		v2s[i] = g.AddVirtualNode(2)
		for k := 0; k < 1+rng.Intn(4); k++ {
			g.ConnectVirtToReal(v2s[i], int32(rng.Intn(nReal)))
		}
	}
	for i := 0; i < nV1; i++ {
		v1 := g.AddVirtualNode(1)
		for k := 0; k < 1+rng.Intn(3); k++ {
			g.ConnectRealToVirt(int32(rng.Intn(nReal)), v1)
		}
		for k := 0; k < 1+rng.Intn(2); k++ {
			g.ConnectVirtToVirt(v1, v2s[rng.Intn(nV2)])
		}
		if rng.Intn(2) == 0 {
			g.ConnectVirtToReal(v1, int32(rng.Intn(nReal)))
		}
	}
	g.SortAdjacency()
	return g
}

type convert struct {
	name string
	fn   func(*core.Graph, Options) (*core.Graph, Stats, error)
}

func allConverters() []convert {
	return []convert{
		{"BITMAP-1", func(g *core.Graph, _ Options) (*core.Graph, Stats, error) { return Bitmap1(g) }},
		{"BITMAP-2", Bitmap2},
		{"DEDUP1-NaiveVNF", Dedup1NaiveVirtualFirst},
		{"DEDUP1-NaiveRNF", Dedup1NaiveRealFirst},
		{"DEDUP1-GreedyRNF", Dedup1GreedyRealFirst},
		{"DEDUP1-GreedyVNF", Dedup1GreedyVirtualFirst},
		{"DEDUP2-Greedy", Dedup2Greedy},
	}
}

// assertEquivalent checks the paper's central correctness property: the
// converted representation has exactly the logical edge set of the input
// C-DUP graph and is free of duplicate paths.
func assertEquivalent(t *testing.T, name string, in, out *core.Graph) {
	t.Helper()
	want := in.EdgeSetByID()
	got := out.EdgeSetByID()
	if len(want) != len(got) {
		t.Fatalf("%s: edge count %d, want %d", name, len(got), len(want))
	}
	for e := range want {
		if _, ok := got[e]; !ok {
			t.Fatalf("%s: lost edge %v", name, e)
		}
	}
	if err := out.VerifyNoDuplicates(); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
}

func TestAllConvertersEquivalenceSingleLayer(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 7, 42} {
		g := randomSymmetric(seed, 30, 18, 8)
		for _, c := range allConverters() {
			out, st, err := c.fn(g, Options{Seed: seed})
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, c.name, err)
			}
			assertEquivalent(t, c.name, g, out)
			if st.RepEdgesBefore == 0 {
				t.Fatalf("%s: stats not populated", c.name)
			}
			// The input must not have been mutated.
			if err := checkStillCDUP(g); err != nil {
				t.Fatalf("seed %d %s mutated input: %v", seed, c.name, err)
			}
		}
	}
}

func checkStillCDUP(g *core.Graph) error {
	if g.Mode() != core.CDUP {
		return errMode
	}
	return nil
}

var errMode = &modeError{}

type modeError struct{}

func (*modeError) Error() string { return "input mode changed" }

func TestBitmapEquivalenceMultiLayer(t *testing.T) {
	for _, seed := range []int64{5, 11, 13} {
		g := randomMultiLayer(seed, 20, 10, 6)
		for _, c := range allConverters()[:2] { // BITMAP-1, BITMAP-2
			out, _, err := c.fn(g, Options{Seed: seed})
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, c.name, err)
			}
			assertEquivalent(t, c.name, g, out)
		}
	}
}

func TestDedup1RejectsMultiLayer(t *testing.T) {
	g := randomMultiLayer(3, 10, 5, 3)
	for _, c := range allConverters()[2:] {
		if _, _, err := c.fn(g, Options{}); err != ErrUnsupported {
			t.Fatalf("%s: err = %v, want ErrUnsupported", c.name, err)
		}
	}
}

func TestDedup1RejectsAsymmetric(t *testing.T) {
	g := core.New(core.CDUP)
	a := g.AddRealNode(1)
	bb := g.AddRealNode(2)
	v := g.AddVirtualNode(1)
	g.ConnectRealToVirt(a, v)
	g.ConnectVirtToReal(v, bb) // I(V) = {a}, O(V) = {b}: asymmetric
	for _, c := range allConverters()[2:] {
		if _, _, err := c.fn(g, Options{}); err != ErrUnsupported {
			t.Fatalf("%s: err = %v, want ErrUnsupported", c.name, err)
		}
	}
}

func TestSelfLoopGraphs(t *testing.T) {
	g := randomSymmetric(2, 15, 8, 5)
	g.SelfLoops = true
	// DEDUP-1/DEDUP-2 cannot deduplicate self loops; they must refuse.
	for _, c := range allConverters()[2:] {
		if _, _, err := c.fn(g, Options{}); err != ErrUnsupported {
			t.Fatalf("%s: err = %v, want ErrUnsupported", c.name, err)
		}
	}
	// The BITMAP algorithms handle them exactly.
	for _, c := range allConverters()[:2] {
		out, _, err := c.fn(g, Options{Seed: 2})
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		assertEquivalent(t, c.name+"/selfloops", g, out)
	}
}

func TestOrderingsAllValid(t *testing.T) {
	g := randomSymmetric(9, 25, 15, 7)
	for _, ord := range []Ordering{OrderRandom, OrderSizeAsc, OrderSizeDesc} {
		for _, c := range allConverters()[2:] {
			out, _, err := c.fn(g, Options{Ordering: ord, Seed: 9})
			if err != nil {
				t.Fatalf("%s/%s: %v", c.name, ord, err)
			}
			assertEquivalent(t, c.name+"/"+ord.String(), g, out)
		}
	}
}

func TestDeterministicForFixedSeed(t *testing.T) {
	g := randomSymmetric(21, 20, 12, 6)
	a, _, err := Dedup1GreedyVirtualFirst(g, Options{Ordering: OrderRandom, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Dedup1GreedyVirtualFirst(g, Options{Ordering: OrderRandom, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a.RepEdges() != b.RepEdges() || a.NumVirtualNodes() != b.NumVirtualNodes() {
		t.Fatalf("same seed produced different graphs: %d/%d edges, %d/%d virtuals",
			a.RepEdges(), b.RepEdges(), a.NumVirtualNodes(), b.NumVirtualNodes())
	}
}

func TestDedup2Invariants(t *testing.T) {
	for _, seed := range []int64{4, 8, 15, 16, 23} {
		g := randomSymmetric(seed, 24, 14, 6)
		out, _, err := Dedup2Greedy(g, Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if err := out.VerifyDedup2Invariants(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestBitmap2NeverLosesVirtualOutEdges(t *testing.T) {
	// BITMAP-2 may delete real->virtual edges but must never delete a
	// virtual node's outgoing edges (another origin may need them).
	g := randomSymmetric(6, 20, 12, 6)
	out, _, err := Bitmap2(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var before, after int64
	g.ForEachVirtual(func(v int32) bool {
		before += int64(len(g.VirtTargets(v)))
		return true
	})
	out.ForEachVirtual(func(v int32) bool {
		after += int64(len(out.VirtTargets(v)))
		return true
	})
	if before != after {
		t.Fatalf("virtual out-edges changed: %d -> %d", before, after)
	}
}

func TestBitmap1KeepsEdgeStructure(t *testing.T) {
	g := randomSymmetric(10, 20, 12, 6)
	out, st, err := Bitmap1(g)
	if err != nil {
		t.Fatal(err)
	}
	if out.RepEdges() != g.RepEdges() {
		t.Fatalf("BITMAP-1 changed edges: %d -> %d", g.RepEdges(), out.RepEdges())
	}
	if st.BitmapsCreated == 0 {
		t.Fatal("BITMAP-1 created no bitmaps")
	}
	// BITMAP-2 initializes no more bitmaps than BITMAP-1 (set cover).
	out2, st2, err := Bitmap2(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st2.BitmapsCreated > st.BitmapsCreated {
		t.Fatalf("BITMAP-2 created more bitmaps (%d) than BITMAP-1 (%d)",
			st2.BitmapsCreated, st.BitmapsCreated)
	}
	if out2.RepEdges() > out.RepEdges() {
		t.Fatalf("BITMAP-2 has more edges (%d) than BITMAP-1 (%d)",
			out2.RepEdges(), out.RepEdges())
	}
}

// TestQuickEquivalence drives the equivalence property through testing/quick
// with generated seeds and shapes.
func TestQuickEquivalence(t *testing.T) {
	f := func(seed int64, nR, nV uint8) bool {
		nReal := 5 + int(nR%40)
		nVirt := 2 + int(nV%20)
		g := randomSymmetric(seed, nReal, nVirt, 6)
		want := g.EdgeSetByID()
		for _, c := range allConverters() {
			out, _, err := c.fn(g, Options{Seed: seed})
			if err != nil {
				t.Logf("%s: %v", c.name, err)
				return false
			}
			got := out.EdgeSetByID()
			if len(got) != len(want) {
				t.Logf("%s: %d edges, want %d (seed %d, %d/%d)", c.name, len(got), len(want), seed, nReal, nVirt)
				return false
			}
			for e := range want {
				if _, ok := got[e]; !ok {
					t.Logf("%s: lost %v", c.name, e)
					return false
				}
			}
			if err := out.VerifyNoDuplicates(); err != nil {
				t.Logf("%s: %v", c.name, err)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestDirectEdgeInputs checks the algorithms on graphs that mix virtual
// paths with pre-existing direct edges, including direct edges duplicating
// a virtual path (which NormalizeDirects must collapse).
func TestDirectEdgeInputs(t *testing.T) {
	for _, seed := range []int64{3, 12, 27} {
		g := randomSymmetric(seed, 25, 12, 6)
		// Symmetric direct edges: some duplicating virtual paths, some new.
		addDirect := func(u, w int32) {
			g.AddDirectEdgeIdx(u, w)
			g.AddDirectEdgeIdx(w, u)
		}
		v0 := int32(-1)
		g.ForEachVirtual(func(v int32) bool { v0 = v; return false })
		members := g.VirtTargets(v0)
		if len(members) >= 2 {
			addDirect(members[0], members[1]) // duplicates the path via v0
		}
		addDirect(0, 24) // likely a brand-new logical edge
		for _, c := range allConverters() {
			out, _, err := c.fn(g, Options{Seed: seed})
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, c.name, err)
			}
			assertEquivalent(t, c.name+"/directs", g, out)
		}
	}
}

func TestDedup2OnVirtualFreeGraph(t *testing.T) {
	// A graph with only direct edges (the planner expanded everything):
	// DEDUP-2 must carry them through unchanged.
	g := core.New(core.CDUP)
	g.Symmetric = true
	for i := int64(1); i <= 4; i++ {
		g.AddRealNode(i)
	}
	g.AddDirectEdgeIdx(0, 1)
	g.AddDirectEdgeIdx(1, 0)
	g.AddDirectEdgeIdx(2, 3)
	g.AddDirectEdgeIdx(3, 2)
	out, _, err := Dedup2Greedy(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, "DEDUP2/direct-only", g, out)
}

func TestEmptyAndDegenerateInputs(t *testing.T) {
	empty := core.New(core.CDUP)
	for _, c := range allConverters() {
		out, _, err := c.fn(empty, Options{})
		if err != nil {
			t.Fatalf("%s on empty graph: %v", c.name, err)
		}
		if out.NumRealNodes() != 0 {
			t.Fatalf("%s: empty graph gained nodes", c.name)
		}
	}
	// A graph with isolated real nodes and one unshared virtual node.
	g := core.New(core.CDUP)
	g.Symmetric = true
	for i := int64(1); i <= 5; i++ {
		g.AddRealNode(i)
	}
	v := g.AddVirtualNode(1)
	g.AddMember(v, 0)
	g.AddMember(v, 1)
	for _, c := range allConverters() {
		out, _, err := c.fn(g, Options{})
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		assertEquivalent(t, c.name, g, out)
	}
}
