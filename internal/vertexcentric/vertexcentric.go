// Package vertexcentric implements GraphGen's multi-threaded vertex-centric
// framework (Section 3.4): a think-like-a-vertex execution model where a
// user-provided Compute function runs for every vertex per superstep. As in
// GraphLab's GAS model, vertices communicate by reading their neighbors'
// values from the previous superstep directly instead of through explicit
// message queues. A coordinator splits the vertices into chunks, distributes
// them across workers, tracks the superstep counter, and terminates when
// every vertex has voted to halt.
package vertexcentric

import (
	"runtime"
	"sync"

	"graphgen/internal/core"
)

// Executor is the user-implemented compute kernel, mirroring the paper's
// Executor interface with its single compute() method.
type Executor interface {
	Compute(ctx *Context)
}

// ExecutorFunc adapts a function to the Executor interface.
type ExecutorFunc func(ctx *Context)

// Compute implements Executor.
func (f ExecutorFunc) Compute(ctx *Context) { f(ctx) }

// Options configures a run.
type Options struct {
	// Workers is the number of goroutines; <= 0 means GOMAXPROCS.
	Workers int
	// MaxSupersteps bounds the run; <= 0 means 10000.
	MaxSupersteps int
}

// Result summarizes a run.
type Result struct {
	Supersteps int
	// Values holds the final per-vertex values (dense index).
	Values []float64
}

// Context is the per-vertex view handed to Compute. It exposes the vertex's
// value, its neighbors' previous-superstep values (GAS-style direct access),
// and vote-to-halt control.
type Context struct {
	eng       *engine
	v         int32
	superstep int
	halted    bool
	changed   bool
}

// Vertex returns the dense index of the current vertex.
func (c *Context) Vertex() int32 { return c.v }

// VertexID returns the external ID of the current vertex.
func (c *Context) VertexID() int64 { return c.eng.g.RealID(c.v) }

// Superstep returns the current superstep number (0-based).
func (c *Context) Superstep() int { return c.superstep }

// NumVertices returns the number of live vertices.
func (c *Context) NumVertices() int { return c.eng.n }

// Value returns this vertex's value from the previous superstep.
func (c *Context) Value() float64 { return c.eng.prev[c.v] }

// SetValue sets this vertex's value for the next superstep.
func (c *Context) SetValue(x float64) {
	if c.eng.cur[c.v] != x {
		c.changed = true
	}
	c.eng.cur[c.v] = x
}

// ChangedLastSuperstep reports whether any vertex value changed in the
// previous superstep. It is the global aggregator fixed-point programs use
// to decide termination: with direct neighbor access there are no messages
// to wake a halted vertex, so convergence must be detected globally.
func (c *Context) ChangedLastSuperstep() bool { return c.eng.prevChanged }

// NeighborValue returns neighbor u's value from the previous superstep
// (direct neighbor data access, as in the GAS model).
func (c *Context) NeighborValue(u int32) float64 { return c.eng.prev[u] }

// ForNeighbors iterates the logical out-neighbors of the vertex.
func (c *Context) ForNeighbors(fn func(u int32) bool) { c.eng.g.ForNeighbors(c.v, fn) }

// ForInNeighbors iterates the logical in-neighbors of the vertex.
func (c *Context) ForInNeighbors(fn func(u int32) bool) { c.eng.g.ForInNeighbors(c.v, fn) }

// Degree returns the logical out-degree of the vertex.
func (c *Context) Degree() int { return c.eng.g.OutDegree(c.v) }

// VoteToHalt deactivates the vertex; when every vertex has voted, the run
// terminates.
func (c *Context) VoteToHalt() { c.halted = true }

type engine struct {
	g           *core.Graph
	n           int
	prev        []float64
	cur         []float64
	prevChanged bool
}

// Run executes the vertex program until global quiescence. The value arrays
// are double-buffered: Compute reads previous-superstep values and writes
// next-superstep values, making each superstep deterministic regardless of
// worker scheduling.
func Run(g *core.Graph, exec Executor, opts Options) Result {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	maxSS := opts.MaxSupersteps
	if maxSS <= 0 {
		maxSS = 10000
	}
	slots := g.NumRealSlots()
	eng := &engine{g: g, n: g.NumRealNodes(), prev: make([]float64, slots), cur: make([]float64, slots)}
	var vertices []int32
	g.ForEachReal(func(r int32) bool { vertices = append(vertices, r); return true })
	halted := make([]bool, slots)

	supersteps := 0
	for ; supersteps < maxSS; supersteps++ {
		copy(eng.cur, eng.prev)
		activeAny := false
		chunk := (len(vertices) + workers - 1) / workers
		var wg sync.WaitGroup
		activeByWorker := make([]bool, workers)
		changedByWorker := make([]bool, workers)
		for w := 0; w < workers; w++ {
			lo, hi := w*chunk, (w+1)*chunk
			if lo >= len(vertices) {
				break
			}
			if hi > len(vertices) {
				hi = len(vertices)
			}
			wg.Add(1)
			go func(w, lo, hi, ss int) {
				defer wg.Done()
				ctx := Context{eng: eng, superstep: ss}
				for _, v := range vertices[lo:hi] {
					if halted[v] {
						continue
					}
					activeByWorker[w] = true
					ctx.v = v
					ctx.halted = false
					ctx.changed = false
					exec.Compute(&ctx)
					if ctx.halted {
						halted[v] = true
					}
					if ctx.changed {
						changedByWorker[w] = true
					}
				}
			}(w, lo, hi, supersteps)
		}
		wg.Wait()
		changedAny := false
		for w := range activeByWorker {
			activeAny = activeAny || activeByWorker[w]
			changedAny = changedAny || changedByWorker[w]
		}
		eng.prev, eng.cur = eng.cur, eng.prev
		eng.prevChanged = changedAny
		if !activeAny {
			break
		}
	}
	return Result{Supersteps: supersteps, Values: eng.prev}
}

// DegreeProgram computes each vertex's logical out-degree into its value.
func DegreeProgram() Executor {
	return ExecutorFunc(func(ctx *Context) {
		ctx.SetValue(float64(ctx.Degree()))
		ctx.VoteToHalt()
	})
}

// PageRankProgram runs iters iterations of damped PageRank. Out-degrees are
// precomputed and captured by the closure — the paper notes that on
// condensed representations the degree is not available "for free" during
// the superstep and must be precomputed as a vertex property.
func PageRankProgram(g *core.Graph, iters int, damping float64) Executor {
	deg := make([]float64, g.NumRealSlots())
	g.ForEachReal(func(r int32) bool {
		deg[r] = float64(g.OutDegree(r))
		return true
	})
	n := float64(g.NumRealNodes())
	return ExecutorFunc(func(ctx *Context) {
		if ctx.Superstep() == 0 {
			ctx.SetValue(1.0 / n)
			return
		}
		sum := 0.0
		ctx.ForInNeighbors(func(u int32) bool {
			if deg[u] > 0 {
				sum += ctx.NeighborValue(u) / deg[u]
			}
			return true
		})
		ctx.SetValue((1-damping)/n + damping*sum)
		if ctx.Superstep() >= iters {
			ctx.VoteToHalt()
		}
	})
}

// ComponentProgram computes weakly-connected-component labels by iterative
// min-label propagation; it is duplicate-insensitive and therefore valid
// even on raw C-DUP graphs. Termination is detected through the global
// changed aggregator: every vertex halts together once a full superstep
// passes with no label movement anywhere.
func ComponentProgram() Executor {
	return ExecutorFunc(func(ctx *Context) {
		if ctx.Superstep() == 0 {
			ctx.SetValue(float64(ctx.Vertex()))
			return
		}
		if ctx.Superstep() > 1 && !ctx.ChangedLastSuperstep() {
			ctx.VoteToHalt()
			return
		}
		min := ctx.Value()
		scan := func(u int32) bool {
			if v := ctx.NeighborValue(u); v < min {
				min = v
			}
			return true
		}
		ctx.ForNeighbors(scan)
		ctx.ForInNeighbors(scan)
		ctx.SetValue(min)
	})
}
