package vertexcentric

import (
	"math"
	"testing"

	"graphgen/internal/algo"
	"graphgen/internal/core"
	"graphgen/internal/datagen"
	"graphgen/internal/dedup"
)

func testGraph(t *testing.T, seed int64) *core.Graph {
	t.Helper()
	return datagen.Condensed(datagen.CondensedConfig{
		Seed: seed, RealNodes: 50, VirtualNodes: 25, MeanSize: 5, StdDev: 2,
	})
}

func TestDegreeProgramMatchesSequential(t *testing.T) {
	g := testGraph(t, 3)
	want := algo.Degrees(g)
	res := Run(g, DegreeProgram(), Options{Workers: 3})
	g.ForEachReal(func(r int32) bool {
		if int(res.Values[r]) != want[r] {
			t.Fatalf("degree(%d) = %v, want %d", g.RealID(r), res.Values[r], want[r])
		}
		return true
	})
	if res.Supersteps < 1 {
		t.Fatalf("supersteps = %d", res.Supersteps)
	}
}

func TestPageRankProgramMatchesSequential(t *testing.T) {
	g := testGraph(t, 5)
	const iters = 8
	want := algo.PageRank(g, iters, 0.85)
	res := Run(g, PageRankProgram(g, iters, 0.85), Options{Workers: 4})
	g.ForEachReal(func(r int32) bool {
		if math.Abs(res.Values[r]-want[r]) > 1e-9 {
			t.Fatalf("pagerank(%d) = %g, want %g", g.RealID(r), res.Values[r], want[r])
		}
		return true
	})
}

func TestPageRankDeterministicAcrossWorkerCounts(t *testing.T) {
	g := testGraph(t, 7)
	a := Run(g, PageRankProgram(g, 6, 0.85), Options{Workers: 1})
	b := Run(g, PageRankProgram(g, 6, 0.85), Options{Workers: 8})
	for i := range a.Values {
		if a.Values[i] != b.Values[i] {
			t.Fatalf("worker count changed results at %d: %g vs %g", i, a.Values[i], b.Values[i])
		}
	}
}

func TestComponentProgramMatchesSequential(t *testing.T) {
	g := testGraph(t, 9)
	_, want := algo.ConnectedComponents(g)
	res := Run(g, ComponentProgram(), Options{Workers: 2})
	distinct := make(map[float64]struct{})
	g.ForEachReal(func(r int32) bool {
		distinct[res.Values[r]] = struct{}{}
		return true
	})
	if len(distinct) != want {
		t.Fatalf("components = %d, want %d", len(distinct), want)
	}
}

func TestComponentProgramOnDedupedRepresentations(t *testing.T) {
	g := testGraph(t, 11)
	_, want := algo.ConnectedComponents(g)
	d1, _, err := dedup.Dedup1GreedyRealFirst(g, dedup.Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	res := Run(d1, ComponentProgram(), Options{Workers: 2})
	distinct := make(map[float64]struct{})
	d1.ForEachReal(func(r int32) bool {
		distinct[res.Values[r]] = struct{}{}
		return true
	})
	if len(distinct) != want {
		t.Fatalf("DEDUP-1 components = %d, want %d", len(distinct), want)
	}
}

func TestMaxSuperstepsBound(t *testing.T) {
	g := testGraph(t, 13)
	// A program that never halts must stop at the bound.
	res := Run(g, ExecutorFunc(func(ctx *Context) {
		ctx.SetValue(ctx.Value() + 1)
	}), Options{Workers: 2, MaxSupersteps: 5})
	if res.Supersteps != 5 {
		t.Fatalf("supersteps = %d, want 5", res.Supersteps)
	}
}

func TestEmptyGraph(t *testing.T) {
	g := core.New(core.CDUP)
	res := Run(g, DegreeProgram(), Options{})
	if res.Supersteps != 0 {
		t.Fatalf("supersteps on empty graph = %d, want 0", res.Supersteps)
	}
}
