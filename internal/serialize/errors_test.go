package serialize

import (
	"errors"
	"strings"
	"testing"

	"graphgen/internal/core"
)

// TestReadEdgeListTruncatedAndMalformed exercises the edge-list reader's
// failure paths: truncated rows, non-integer fields, oversized lines, and
// trailing junk — each must fail loudly with the offending line number,
// never silently drop data.
func TestReadEdgeListTruncatedAndMalformed(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string
	}{
		{"truncated row", "1 2\n3\n", "line 2"},
		{"trailing field", "1 2\n3 4 5\n", "line 2"},
		{"bad src", "x 2\n", "src"},
		{"bad dst", "1 x\n", "dst"},
		{"truncated after comment", "# header\n7\n", "line 2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadEdgeList(strings.NewReader(tc.in))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("ReadEdgeList(%q) err = %v, want mention of %q", tc.in, err, tc.want)
			}
		})
	}
}

// TestReadEdgeListOversizedLine pins the scanner error path: a line
// beyond the 1 MiB buffer is an error, not an OOM or silent truncation.
func TestReadEdgeListOversizedLine(t *testing.T) {
	long := strings.Repeat("9", 2*1024*1024)
	_, err := ReadEdgeList(strings.NewReader("1 " + long + "\n"))
	if err == nil {
		t.Fatal("ReadEdgeList accepted a 2 MiB line")
	}
}

// TestReadCondensedTruncatedRecords drives every malformed-record branch
// of the condensed reader, as would result from a truncated or corrupted
// file.
func TestReadCondensedTruncatedRecords(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string
	}{
		{"empty input", "", "empty input"},
		{"blank lines only", "\n\n", "empty input"},
		{"truncated header", "G 0 false\n", "malformed header"},
		{"bad mode", "G x false false\n", "bad mode"},
		{"node before header", "N 1\n", "before header"},
		{"node missing id", "G 0 false false\nN\n", "missing id"},
		{"bad node id", "G 0 false false\nN abc\n", "bad node id"},
		{"bad property", "G 0 false false\nN 1 nokv\n", "bad property"},
		{"truncated virtual", "G 0 false false\nV 0\n", "malformed virtual node"},
		{"bad virtual fields", "G 0 false false\nV zero one\n", "bad virtual node fields"},
		{"truncated edge", "G 0 false false\nS 0\n", "malformed edge"},
		{"bad edge endpoints", "G 0 false false\nS zero 1\n", "bad edge endpoints"},
		{"source unknown virtual", "G 0 false false\nN 1\nS 0 1\n", "unknown endpoint"},
		{"target unknown virtual", "G 0 false false\nN 1\nT 0 1\n", "unknown endpoint"},
		{"virt-virt unknown", "G 0 false false\nV 0 1\nW 0 1\n", "unknown virtual endpoint"},
		{"undirected unknown", "G 0 false false\nV 0 1\nU 0 1\n", "unknown virtual endpoint"},
		{"direct unknown real", "G 0 false false\nN 1\nD 1 2\n", "unknown direct endpoint"},
		{"unknown record", "G 0 false false\nZ 1 2\n", "unknown record"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadCondensed(strings.NewReader(tc.in))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("ReadCondensed(%q) err = %v, want mention of %q", tc.in, err, tc.want)
			}
		})
	}
}

// TestReadCondensedOversizedLine pins the scanner error propagation of
// the condensed reader.
func TestReadCondensedOversizedLine(t *testing.T) {
	in := "G 0 false false\nN 1 k=" + strings.Repeat("v", 2*1024*1024) + "\n"
	_, err := ReadCondensed(strings.NewReader(in))
	if err == nil {
		t.Fatal("ReadCondensed accepted a 2 MiB line")
	}
}

// failWriter fails every write, for the writer error paths.
type failWriter struct{}

var errSink = errors.New("sink failed")

func (failWriter) Write([]byte) (int, error) { return 0, errSink }

func TestWritersPropagateWriterErrors(t *testing.T) {
	g := core.New(core.EXP)
	u := g.AddRealNode(1)
	v := g.AddRealNode(2)
	g.AddDirectEdgeIdx(u, v)
	if err := WriteEdgeList(failWriter{}, g); err == nil {
		t.Fatal("WriteEdgeList swallowed the writer error")
	}
	if err := WriteJSON(failWriter{}, g); err == nil {
		t.Fatal("WriteJSON swallowed the writer error")
	}
	if err := WriteCondensed(failWriter{}, g); err == nil {
		t.Fatal("WriteCondensed swallowed the writer error")
	}
}
