package serialize

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"graphgen/internal/core"
)

// This file serializes the CONDENSED representation itself (not the
// expanded edge list): Section 6.5 suggests storing deduplicated graphs
// back into the database to amortize deduplication across sessions, and
// Section 4.3 notes DEDUP-1's structural simplicity makes it portable to
// any system that implements a traversing iterator. The format is a
// line-oriented text format:
//
//	G <mode> <selfLoops> <symmetric>
//	N <id> [key=value]...          real node
//	V <tag> <layer>                virtual node (tag is file-local)
//	S <tag> <realID>               source edge  real -> virtual
//	T <tag> <realID>               target edge  virtual -> real
//	W <tag> <tag>                  virtual -> virtual (directed)
//	U <tag> <tag>                  virtual <-> virtual (DEDUP-2, undirected)
//	D <realID> <realID>            direct edge
//
// BITMAP masks are intentionally not serialized — the paper calls BITMAP
// "less portable to systems outside GraphGen" for exactly this reason; a
// reloaded BITMAP graph must be re-deduplicated.

// WriteCondensed writes the condensed structure of g.
func WriteCondensed(w io.Writer, g *core.Graph) error {
	bw := bufio.NewWriter(w)
	mode := g.Mode()
	if mode == core.BITMAP {
		mode = core.CDUP // masks are dropped; the structure is C-DUP again
	}
	fmt.Fprintf(bw, "G %d %t %t\n", uint8(mode), g.SelfLoops, g.Symmetric)
	var err error
	g.ForEachReal(func(r int32) bool {
		fmt.Fprintf(bw, "N %d", g.RealID(r))
		for k, v := range g.Properties(r) {
			if strings.ContainsAny(k, " \n") || strings.ContainsAny(v, " \n") {
				err = fmt.Errorf("serialize: property %q=%q contains whitespace", k, v)
				return false
			}
			fmt.Fprintf(bw, " %s=%s", k, v)
		}
		fmt.Fprintln(bw)
		return true
	})
	if err != nil {
		return err
	}
	tag := make(map[int32]int)
	next := 0
	g.ForEachVirtual(func(v int32) bool {
		tag[v] = next
		fmt.Fprintf(bw, "V %d %d\n", next, g.VirtLayer(v))
		next++
		return true
	})
	g.ForEachVirtual(func(v int32) bool {
		for _, s := range g.VirtSources(v) {
			fmt.Fprintf(bw, "S %d %d\n", tag[v], g.RealID(s))
		}
		for _, t := range g.VirtTargets(v) {
			fmt.Fprintf(bw, "T %d %d\n", tag[v], g.RealID(t))
		}
		for _, w2 := range g.VirtOutVirt(v) {
			fmt.Fprintf(bw, "W %d %d\n", tag[v], tag[w2])
		}
		for _, w2 := range g.VirtUndirected(v) {
			if tag[v] < tag[w2] { // each undirected edge once
				fmt.Fprintf(bw, "U %d %d\n", tag[v], tag[w2])
			}
		}
		return true
	})
	g.ForEachReal(func(r int32) bool {
		for _, t := range g.OutDirect(r) {
			fmt.Fprintf(bw, "D %d %d\n", g.RealID(r), g.RealID(t))
		}
		return true
	})
	return bw.Flush()
}

// ReadCondensed parses a condensed graph written by WriteCondensed.
func ReadCondensed(r io.Reader) (*core.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var g *core.Graph
	virtByTag := make(map[int]int32)
	line := 0
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		fail := func(msg string) error {
			return fmt.Errorf("serialize: line %d: %s", line, msg)
		}
		switch fields[0] {
		case "G":
			if len(fields) != 4 {
				return nil, fail("malformed header")
			}
			m, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fail("bad mode")
			}
			g = core.New(core.Mode(m))
			g.SelfLoops = fields[2] == "true"
			g.Symmetric = fields[3] == "true"
		case "N":
			if g == nil || len(fields) < 2 {
				return nil, fail("node before header or missing id")
			}
			id, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				return nil, fail("bad node id")
			}
			idx := g.AddRealNode(id)
			for _, kv := range fields[2:] {
				k, v, ok := strings.Cut(kv, "=")
				if !ok {
					return nil, fail("bad property " + kv)
				}
				g.SetProperty(idx, k, v)
			}
		case "V":
			if g == nil || len(fields) != 3 {
				return nil, fail("malformed virtual node")
			}
			t, err1 := strconv.Atoi(fields[1])
			layer, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil {
				return nil, fail("bad virtual node fields")
			}
			virtByTag[t] = g.AddVirtualNode(int32(layer))
		case "S", "T", "D", "W", "U":
			if g == nil || len(fields) != 3 {
				return nil, fail("malformed edge")
			}
			a, err1 := strconv.ParseInt(fields[1], 10, 64)
			b, err2 := strconv.ParseInt(fields[2], 10, 64)
			if err1 != nil || err2 != nil {
				return nil, fail("bad edge endpoints")
			}
			switch fields[0] {
			case "S":
				v, ok := virtByTag[int(a)]
				r, ok2 := g.RealIndex(b)
				if !ok || !ok2 {
					return nil, fail("unknown endpoint")
				}
				g.ConnectRealToVirt(r, v)
			case "T":
				v, ok := virtByTag[int(a)]
				r, ok2 := g.RealIndex(b)
				if !ok || !ok2 {
					return nil, fail("unknown endpoint")
				}
				g.ConnectVirtToReal(v, r)
			case "W":
				v, ok := virtByTag[int(a)]
				w2, ok2 := virtByTag[int(b)]
				if !ok || !ok2 {
					return nil, fail("unknown virtual endpoint")
				}
				g.ConnectVirtToVirt(v, w2)
			case "U":
				v, ok := virtByTag[int(a)]
				w2, ok2 := virtByTag[int(b)]
				if !ok || !ok2 {
					return nil, fail("unknown virtual endpoint")
				}
				g.ConnectVirtUndirected(v, w2)
			case "D":
				u, ok := g.RealIndex(a)
				t, ok2 := g.RealIndex(b)
				if !ok || !ok2 {
					return nil, fail("unknown direct endpoint")
				}
				g.AddDirectEdgeIdx(u, t)
			}
		default:
			return nil, fail("unknown record " + fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("serialize: empty input")
	}
	g.SortAdjacency()
	return g, nil
}
