package serialize

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"graphgen/internal/core"
	"graphgen/internal/datagen"
)

func sample() *core.Graph {
	return datagen.Condensed(datagen.CondensedConfig{
		Seed: 5, RealNodes: 20, VirtualNodes: 8, MeanSize: 4, StdDev: 1,
	})
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := sample()
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := g.EdgeSetByID()
	got := back.EdgeSetByID()
	if len(want) != len(got) {
		t.Fatalf("edges: wrote %d, read %d", len(want), len(got))
	}
	for e := range want {
		if _, ok := got[e]; !ok {
			t.Fatalf("edge %v lost in round trip", e)
		}
	}
}

func TestEdgeListDeterministic(t *testing.T) {
	g := sample()
	var a, b bytes.Buffer
	WriteEdgeList(&a, g)
	WriteEdgeList(&b, g)
	if a.String() != b.String() {
		t.Fatal("edge list serialization is not deterministic")
	}
}

func TestEdgeListCommentsAndErrors(t *testing.T) {
	in := "# comment\n1 2\n\n2 3\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(g.EdgeSetByID()) != 2 {
		t.Fatalf("edges = %d, want 2", len(g.EdgeSetByID()))
	}
	if _, err := ReadEdgeList(strings.NewReader("not numbers\n")); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestWriteJSON(t *testing.T) {
	g := core.New(core.CDUP)
	g.Symmetric = true
	a := g.AddRealNode(1)
	g.AddRealNode(2)
	g.SetProperty(a, "Name", "ann")
	v := g.AddVirtualNode(1)
	g.AddMember(v, 0)
	g.AddMember(v, 1)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, g); err != nil {
		t.Fatal(err)
	}
	var doc JSONGraph
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Directed {
		t.Fatal("symmetric graph marked directed")
	}
	if len(doc.Nodes) != 2 || len(doc.Edges) != 2 {
		t.Fatalf("nodes=%d edges=%d", len(doc.Nodes), len(doc.Edges))
	}
	if doc.Nodes[0].Props["Name"] != "ann" {
		t.Fatalf("props lost: %+v", doc.Nodes[0])
	}
}

func TestEdgeListStrictParsing(t *testing.T) {
	// Trailing fields must error, not silently load as the first two.
	if _, err := ReadEdgeList(strings.NewReader("1 2 3\n")); err == nil {
		t.Fatal("expected error for a 3-field line")
	}
	if _, err := ReadEdgeList(strings.NewReader("1\n")); err == nil {
		t.Fatal("expected error for a 1-field line")
	}
	if _, err := ReadEdgeList(strings.NewReader("1 x\n")); err == nil {
		t.Fatal("expected error for a non-integer dst")
	}
	// Whitespace-only lines are skipped like empty ones; tabs and runs of
	// spaces separate fields; an indented comment is still a comment.
	in := "1 2\n   \t \n\t3\t 4 \n  # indented comment\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	edges := g.EdgeSetByID()
	if len(edges) != 2 {
		t.Fatalf("edges = %v, want {1->2, 3->4}", edges)
	}
}
