package serialize

import (
	"bytes"
	"strings"
	"testing"

	"graphgen/internal/core"
	"graphgen/internal/datagen"
	"graphgen/internal/dedup"
)

func roundTrip(t *testing.T, g *core.Graph) *core.Graph {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteCondensed(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCondensed(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return back
}

func assertSameLogicalGraph(t *testing.T, a, b *core.Graph) {
	t.Helper()
	ea, eb := a.EdgeSetByID(), b.EdgeSetByID()
	if len(ea) != len(eb) {
		t.Fatalf("edge sets differ: %d vs %d", len(ea), len(eb))
	}
	for e := range ea {
		if _, ok := eb[e]; !ok {
			t.Fatalf("edge %v lost", e)
		}
	}
}

func TestCondensedRoundTripCDUP(t *testing.T) {
	g := datagen.Condensed(datagen.CondensedConfig{
		Seed: 8, RealNodes: 30, VirtualNodes: 15, MeanSize: 5, StdDev: 2,
	})
	g.SetProperty(0, "Name", "n0")
	back := roundTrip(t, g)
	if back.Mode() != core.CDUP || !back.Symmetric {
		t.Fatalf("header lost: mode=%v sym=%v", back.Mode(), back.Symmetric)
	}
	if back.NumVirtualNodes() != g.NumVirtualNodes() {
		t.Fatalf("virtual nodes: %d vs %d", back.NumVirtualNodes(), g.NumVirtualNodes())
	}
	if v, ok := back.Property(0, "Name"); !ok || v != "n0" {
		t.Fatalf("property lost: %q %v", v, ok)
	}
	assertSameLogicalGraph(t, g, back)
}

func TestCondensedRoundTripDedup1(t *testing.T) {
	g := datagen.Condensed(datagen.CondensedConfig{
		Seed: 9, RealNodes: 25, VirtualNodes: 12, MeanSize: 5, StdDev: 2,
	})
	d1, _, err := dedup.Dedup1GreedyVirtualFirst(g, dedup.Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	back := roundTrip(t, d1)
	if back.Mode() != core.DEDUP1 {
		t.Fatalf("mode = %v", back.Mode())
	}
	// The reloaded DEDUP-1 graph must still be duplicate-free.
	if err := back.VerifyNoDuplicates(); err != nil {
		t.Fatal(err)
	}
	assertSameLogicalGraph(t, d1, back)
}

func TestCondensedRoundTripDedup2(t *testing.T) {
	g := datagen.Condensed(datagen.CondensedConfig{
		Seed: 10, RealNodes: 25, VirtualNodes: 12, MeanSize: 5, StdDev: 2,
	})
	d2, _, err := dedup.Dedup2Greedy(g, dedup.Options{Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	back := roundTrip(t, d2)
	if back.Mode() != core.DEDUP2 {
		t.Fatalf("mode = %v", back.Mode())
	}
	if err := back.VerifyDedup2Invariants(); err != nil {
		t.Fatal(err)
	}
	assertSameLogicalGraph(t, d2, back)
}

func TestCondensedBitmapDowngradesToCDUP(t *testing.T) {
	g := datagen.Condensed(datagen.CondensedConfig{
		Seed: 11, RealNodes: 20, VirtualNodes: 10, MeanSize: 5, StdDev: 2,
	})
	bm, _, err := dedup.Bitmap2(g, dedup.Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	back := roundTrip(t, bm)
	// Masks are not portable; the structure reloads as C-DUP.
	if back.Mode() != core.CDUP {
		t.Fatalf("mode = %v, want C-DUP", back.Mode())
	}
	assertSameLogicalGraph(t, bm, back)
}

func TestCondensedMultiLayerRoundTrip(t *testing.T) {
	g := core.New(core.CDUP)
	for i := int64(1); i <= 4; i++ {
		g.AddRealNode(i)
	}
	a := g.AddVirtualNode(1)
	b := g.AddVirtualNode(2)
	g.ConnectRealToVirt(0, a)
	g.ConnectVirtToVirt(a, b)
	g.ConnectVirtToReal(b, 2)
	g.AddDirectEdgeIdx(1, 3)
	back := roundTrip(t, g)
	if back.MaxLayer() != 2 {
		t.Fatalf("MaxLayer = %d", back.MaxLayer())
	}
	assertSameLogicalGraph(t, g, back)
}

func TestCondensedReadErrors(t *testing.T) {
	cases := []string{
		"N 1\n",                         // node before header
		"G 0 false\n",                   // short header
		"G 0 false false\nV x 1\n",      // bad tag
		"G 0 false false\nS 0 5\n",      // unknown endpoints
		"G 0 false false\nZ 1 2\n",      // unknown record
		"G 0 false false\nN abc\n",      // bad id
		"G 0 false false\nN 1 broken\n", // bad property
		"",                              // empty
	}
	for i, src := range cases {
		if _, err := ReadCondensed(strings.NewReader(src)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestCondensedRejectsWhitespaceProps(t *testing.T) {
	g := core.New(core.CDUP)
	r := g.AddRealNode(1)
	g.SetProperty(r, "name", "has space")
	var buf bytes.Buffer
	if err := WriteCondensed(&buf, g); err == nil {
		t.Fatal("expected whitespace-property error")
	}
}
