// Package serialize writes extracted graphs to standard formats so that
// external frameworks (NetworkX and friends, per Section 3.4's graphgenpy
// workflow) can consume them: an expanded edge list, and a JSON document
// with nodes, properties, and edges.
package serialize

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"graphgen/internal/core"
)

// WriteEdgeList writes the EXPANDED logical edge list as "src dst" lines,
// sorted for determinism. The graph itself stays condensed in memory.
func WriteEdgeList(w io.Writer, g *core.Graph) error {
	bw := bufio.NewWriter(w)
	type edge struct{ u, v int64 }
	var edges []edge
	g.ForEachReal(func(r int32) bool {
		g.ForNeighbors(r, func(t int32) bool {
			edges = append(edges, edge{g.RealID(r), g.RealID(t)})
			return true
		})
		return true
	})
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].u != edges[j].u {
			return edges[i].u < edges[j].u
		}
		return edges[i].v < edges[j].v
	})
	for _, e := range edges {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e.u, e.v); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// JSONGraph is the JSON serialization schema.
type JSONGraph struct {
	Directed bool       `json:"directed"`
	Nodes    []JSONNode `json:"nodes"`
	Edges    [][2]int64 `json:"edges"`
}

// JSONNode is one vertex with its properties.
type JSONNode struct {
	ID    int64             `json:"id"`
	Props map[string]string `json:"props,omitempty"`
}

// WriteJSON writes the expanded graph as a JSON document.
func WriteJSON(w io.Writer, g *core.Graph) error {
	doc := JSONGraph{Directed: !g.Symmetric}
	g.ForEachReal(func(r int32) bool {
		node := JSONNode{ID: g.RealID(r)}
		if props := g.Properties(r); len(props) > 0 {
			node.Props = props
		}
		doc.Nodes = append(doc.Nodes, node)
		return true
	})
	sort.Slice(doc.Nodes, func(i, j int) bool { return doc.Nodes[i].ID < doc.Nodes[j].ID })
	g.ForEachReal(func(r int32) bool {
		g.ForNeighbors(r, func(t int32) bool {
			doc.Edges = append(doc.Edges, [2]int64{g.RealID(r), g.RealID(t)})
			return true
		})
		return true
	})
	sort.Slice(doc.Edges, func(i, j int) bool {
		if doc.Edges[i][0] != doc.Edges[j][0] {
			return doc.Edges[i][0] < doc.Edges[j][0]
		}
		return doc.Edges[i][1] < doc.Edges[j][1]
	})
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// ReadEdgeList parses "src dst" lines into an EXP-mode graph. Blank and
// whitespace-only lines and '#' comment lines are skipped; any other line
// must hold exactly two integer fields (trailing junk is an error, not
// silently dropped).
func ReadEdgeList(r io.Reader) (*core.Graph, error) {
	g := core.New(core.EXP)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		if len(fields) != 2 {
			return nil, fmt.Errorf("serialize: line %d: want 2 fields \"src dst\", got %d", line, len(fields))
		}
		u, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("serialize: line %d: src: %w", line, err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("serialize: line %d: dst: %w", line, err)
		}
		ui := g.AddRealNode(u)
		vi := g.AddRealNode(v)
		g.AddDirectEdgeIdx(ui, vi)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return g, nil
}
