package bsp

import (
	"errors"
	"math"
	"testing"

	"graphgen/internal/algo"
	"graphgen/internal/core"
	"graphgen/internal/datagen"
	"graphgen/internal/dedup"
)

func reps(t *testing.T, seed int64) map[string]*core.Graph {
	t.Helper()
	g := datagen.Condensed(datagen.CondensedConfig{
		Seed: seed, RealNodes: 50, VirtualNodes: 20, MeanSize: 6, StdDev: 2,
	})
	out := map[string]*core.Graph{"C-DUP": g}
	exp, err := g.Expand(0)
	if err != nil {
		t.Fatal(err)
	}
	out["EXP"] = exp
	d1, _, err := dedup.Dedup1GreedyVirtualFirst(g, dedup.Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	out["DEDUP-1"] = d1
	bm, _, err := dedup.Bitmap2(g, dedup.Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	out["BITMAP"] = bm
	d2, _, err := dedup.Dedup2Greedy(g, dedup.Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	out["DEDUP-2"] = d2
	return out
}

func TestBSPDegreeMatchesSequential(t *testing.T) {
	rs := reps(t, 31)
	for name, g := range rs {
		if name == "C-DUP" {
			continue // duplicate-sensitive
		}
		res, err := Degree(g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want := algo.Degrees(g)
		g.ForEachReal(func(r int32) bool {
			if int(res.Values[r]) != want[r] {
				t.Fatalf("%s: degree(%d) = %v, want %d", name, g.RealID(r), res.Values[r], want[r])
			}
			return true
		})
		if name != "EXP" && res.Messages == 0 {
			t.Fatalf("%s: no messages counted", name)
		}
		if name == "EXP" && res.Messages != 0 {
			t.Fatalf("EXP degree should be message-free, got %d", res.Messages)
		}
	}
}

func TestBSPDegreeRejectsCDUP(t *testing.T) {
	rs := reps(t, 33)
	if _, err := Degree(rs["C-DUP"]); !errors.Is(err, ErrNeedsDedup) {
		t.Fatalf("err = %v, want ErrNeedsDedup", err)
	}
	if _, err := PageRank(rs["C-DUP"], 3, 0.85); !errors.Is(err, ErrNeedsDedup) {
		t.Fatalf("err = %v, want ErrNeedsDedup", err)
	}
}

func TestBSPPageRankMatchesSequential(t *testing.T) {
	rs := reps(t, 35)
	const iters = 6
	ref := algo.PageRank(rs["EXP"], iters, 0.85)
	refByID := make(map[int64]float64)
	rs["EXP"].ForEachReal(func(r int32) bool {
		refByID[rs["EXP"].RealID(r)] = ref[r]
		return true
	})
	for name, g := range rs {
		if name == "C-DUP" {
			continue
		}
		res, err := PageRank(g, iters, 0.85)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		g.ForEachReal(func(r int32) bool {
			want := refByID[g.RealID(r)]
			if math.Abs(res.Values[r]-want) > 1e-9 {
				t.Fatalf("%s: pagerank(%d) = %g, want %g", name, g.RealID(r), res.Values[r], want)
			}
			return true
		})
	}
}

func TestBSPPageRankSupersteps(t *testing.T) {
	rs := reps(t, 37)
	const iters = 4
	exp, err := PageRank(rs["EXP"], iters, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := PageRank(rs["DEDUP-1"], iters, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	// Condensed representations need twice the supersteps (Section 6.4).
	if d1.Supersteps < 2*exp.Supersteps-2 {
		t.Fatalf("DEDUP-1 supersteps = %d, EXP = %d; expected ~2x", d1.Supersteps, exp.Supersteps)
	}
}

func TestBSPComponentsAllRepresentations(t *testing.T) {
	rs := reps(t, 39)
	_, want := algo.ConnectedComponents(rs["EXP"])
	for name, g := range rs {
		res, err := Components(g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		distinct := make(map[float64]struct{})
		g.ForEachReal(func(r int32) bool {
			distinct[res.Values[r]] = struct{}{}
			return true
		})
		if len(distinct) != want {
			t.Fatalf("%s: components = %d, want %d", name, len(distinct), want)
		}
	}
}

func TestBSPMessageAggregationBound(t *testing.T) {
	// With aggregation, one PageRank round on DEDUP-1 sends at most
	// ~2x the representation's physical edges.
	rs := reps(t, 41)
	g := rs["DEDUP-1"]
	res, err := PageRank(g, 1, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	bound := 3 * g.RepEdges() // 2x for the round + degree precompute
	if res.Messages > bound {
		t.Fatalf("messages = %d exceeds aggregation bound %d", res.Messages, bound)
	}
}

func TestBSPMemoryAndPeakQueue(t *testing.T) {
	rs := reps(t, 43)
	res, err := PageRank(rs["DEDUP-1"], 2, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakQueueLen == 0 || res.MemBytes == 0 {
		t.Fatalf("accounting missing: peak=%d mem=%d", res.PeakQueueLen, res.MemBytes)
	}
}

func TestBSPMultiLayerPageRank(t *testing.T) {
	// Multi-layer condensed graph: BITMAP PageRank must match EXP.
	g := core.New(core.CDUP)
	for i := int64(1); i <= 8; i++ {
		g.AddRealNode(i)
	}
	v1 := g.AddVirtualNode(1)
	v2 := g.AddVirtualNode(1)
	w := g.AddVirtualNode(2)
	for r := int32(0); r < 4; r++ {
		g.ConnectRealToVirt(r, v1)
	}
	for r := int32(2); r < 6; r++ {
		g.ConnectRealToVirt(r, v2)
	}
	g.ConnectVirtToVirt(v1, w)
	g.ConnectVirtToVirt(v2, w)
	for r := int32(4); r < 8; r++ {
		g.ConnectVirtToReal(w, r)
	}
	g.ConnectVirtToReal(v1, 0)
	g.SortAdjacency()

	bm, _, err := dedup.Bitmap2(g, dedup.Options{})
	if err != nil {
		t.Fatal(err)
	}
	exp, err := g.Expand(0)
	if err != nil {
		t.Fatal(err)
	}
	const iters = 5
	want, err := PageRank(exp, iters, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	got, err := PageRank(bm, iters, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	wantByID := make(map[int64]float64)
	exp.ForEachReal(func(r int32) bool {
		wantByID[exp.RealID(r)] = want.Values[r]
		return true
	})
	bm.ForEachReal(func(r int32) bool {
		if math.Abs(got.Values[r]-wantByID[bm.RealID(r)]) > 1e-9 {
			t.Fatalf("pagerank(%d) = %g, want %g", bm.RealID(r), got.Values[r], wantByID[bm.RealID(r)])
		}
		return true
	})
}
