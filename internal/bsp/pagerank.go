package bsp

import (
	"time"

	"graphgen/internal/core"
	"graphgen/internal/parallel"
)

// PageRank runs iters rounds of damped PageRank on the BSP engine.
//
// On EXP each round is one superstep: every real node sends rank/degree
// along each out-edge. On DEDUP-1 and BITMAP each round takes two
// supersteps: reals push rank/degree to their virtual out-neighbors (and
// direct neighbors), then each virtual node aggregates and forwards one
// value per outgoing edge — the paper's virtual-node message aggregation,
// which bounds traffic at 2x the representation's edges per round. BITMAP
// virtual nodes compute per-target masked sums from their origin-tagged
// inputs. Out-degrees are precomputed (the paper notes the degree is not
// available during a superstep on condensed representations).
//
// Vertex partitions run concurrently (Options.Workers); per-vertex rank
// state is partition-private and messages only move at the barrier, so the
// results match the serial run up to float summation order.
func PageRank(g *core.Graph, iters int, damping float64, opts ...Options) (*Result, error) {
	start := time.Now() //lint:ignore determinism wall clock feeds only Result.Duration
	mode := g.Mode()
	if mode == core.CDUP {
		return nil, ErrNeedsDedup
	}
	workers := resolveOpts(opts)
	degRes, err := Degree(g, Options{Workers: workers})
	if err != nil {
		return nil, err
	}
	deg := degRes.Values
	e := newEngine(g, workers)
	n := float64(g.NumRealNodes())
	rank := make([]float64, g.NumRealSlots())
	g.ForEachReal(func(r int32) bool {
		rank[r] = 1.0 / n
		return true
	})

	sendFromReals := func() {
		e.forReals(func(st *stage, r int32) {
			if deg[r] <= 0 {
				return
			}
			share := rank[r] / deg[r]
			for _, t := range g.OutDirect(r) {
				st.send(e.realVertex(t), message{value: share, origin: r})
			}
			for _, v := range g.OutVirtuals(r) {
				st.send(e.virtualVertex(v), message{value: share, origin: r})
			}
			if mode == core.DEDUP2 {
				// Members also reach the 1-hop virtual
				// neighborhood; route one copy per hop edge.
				for _, v := range g.OutVirtuals(r) {
					for _, w := range g.VirtUndirected(v) {
						st.send(e.virtualVertex(w), message{value: share, origin: r})
					}
				}
			}
		})
	}
	forwardFromVirtuals := func() {
		e.forVirtuals(func(st *stage, v int32) {
			msgs := e.inbox[e.virtualVertex(v)]
			if len(msgs) == 0 {
				return
			}
			switch mode {
			case core.BITMAP:
				// Per-origin masked sums. Origins must stay
				// tagged through deeper layers: the bitmaps that
				// suppress duplicate paths are keyed by origin,
				// and a diamond (two paths from one origin to
				// this virtual node) must count once — incoming
				// duplicates per origin are collapsed.
				targets := g.VirtTargets(v)
				sums := make([]float64, len(targets))
				perOrigin := make(map[int32]float64, len(msgs))
				for _, m := range msgs {
					if _, dup := perOrigin[m.origin]; dup {
						continue
					}
					perOrigin[m.origin] = m.value
					bmp, ok := g.Bitmap(v, m.origin)
					for i := range targets {
						if ok && !bmp.Get(i) {
							continue
						}
						if !ok && targets[i] == m.origin && !g.SelfLoops {
							continue
						}
						sums[i] += m.value
					}
				}
				for i, t := range targets {
					if sums[i] != 0 {
						st.send(e.realVertex(t), message{value: sums[i], origin: -1})
					}
				}
				// Forward per-origin values to deeper layers.
				// Iterate incoming messages (not the map) so the
				// forwarding order is deterministic.
				seen := make(map[int32]struct{}, len(perOrigin))
				for _, w := range g.VirtOutVirt(v) {
					clear(seen)
					for _, m := range msgs {
						if _, dup := seen[m.origin]; dup {
							continue
						}
						seen[m.origin] = struct{}{}
						st.send(e.virtualVertex(w), message{value: perOrigin[m.origin], origin: m.origin})
					}
				}
			default: // DEDUP1, DEDUP2: exactly one path per pair
				var sum float64
				perOrigin := make(map[int32]float64, len(msgs))
				for _, m := range msgs {
					sum += m.value
					if m.origin >= 0 {
						perOrigin[m.origin] += m.value
					}
				}
				for _, t := range g.VirtTargets(v) {
					out := sum
					if !g.SelfLoops {
						out -= perOrigin[t] // exclude the self path
					}
					if out != 0 {
						st.send(e.realVertex(t), message{value: out, origin: -1})
					}
				}
				for _, w := range g.VirtOutVirt(v) {
					st.send(e.virtualVertex(w), message{value: sum, origin: -1})
				}
			}
		})
	}
	applyAtReals := func() {
		e.forReals(func(_ *stage, r int32) {
			var sum float64
			for _, m := range e.inbox[e.realVertex(r)] {
				sum += m.value
			}
			rank[r] = (1-damping)/n + damping*sum
		})
	}

	for it := 0; it < iters; it++ {
		sendFromReals()
		e.sync()
		if mode == core.EXP {
			applyAtReals()
			continue
		}
		// Messages to real nodes can arrive at every intermediate
		// superstep (direct edges immediately, virtual layers later);
		// drain them into an accumulator after each sync so a swap
		// does not discard them. carried is indexed by dense real slot;
		// each worker only touches its own partition's entries.
		carried := make([]float64, g.NumRealSlots())
		drainReals := func() {
			parallel.RunMin(g.NumRealSlots(), e.workers, bspGrain, func(_, lo, hi int) {
				for r := int32(lo); r < int32(hi); r++ {
					if !g.Alive(r) {
						continue
					}
					box := e.inbox[e.realVertex(r)]
					for _, m := range box {
						carried[r] += m.value
					}
					e.inbox[e.realVertex(r)] = box[:0]
				}
			})
		}
		drainReals()
		layers := int(g.MaxLayer())
		for l := 0; l < layers; l++ {
			forwardFromVirtuals()
			e.sync()
			drainReals()
		}
		e.forReals(func(_ *stage, r int32) {
			rank[r] = (1-damping)/n + damping*carried[r]
		})
	}
	e.res.Values = rank
	e.res.Messages += degRes.Messages
	e.finish(start)
	return e.res, nil
}
