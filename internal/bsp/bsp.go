// Package bsp simulates the paper's Apache Giraph port (Section 6.4): a
// Bulk Synchronous Parallel engine where real AND virtual nodes are
// first-class vertices, communication happens through explicit per-superstep
// message queues, and every message is counted. The representation-specific
// behaviours the paper describes are reproduced: message aggregation at
// virtual nodes caps traffic at ~2x the representation's edges per round;
// correct Degree/PageRank over DEDUP-1 and BITMAP need twice the supersteps
// of EXP; and Connected Components, being duplicate-insensitive, runs
// directly on C-DUP.
//
// Supersteps execute vertex partitions concurrently on the shared worker
// pool (internal/parallel): each worker stages its outgoing messages in a
// private buffer, and the barrier sync() merges the buffers in chunk order
// into the next superstep's inboxes. With Workers: 1 the execution — message
// order included — is bit-for-bit the serial engine's; higher worker counts
// preserve the BSP semantics exactly (per-vertex state is partition-private,
// messages only become visible at the barrier) and change only the
// interleaving of per-target message queues, which every shipped program
// reduces with order-insensitive operations.
package bsp

import (
	"errors"
	"sort"
	"time"

	"graphgen/internal/bitset"
	"graphgen/internal/core"
	"graphgen/internal/parallel"
)

// ErrNeedsDedup is returned when a duplicate-sensitive program (Degree,
// PageRank) is run on a raw C-DUP graph.
var ErrNeedsDedup = errors.New("bsp: algorithm is duplicate-sensitive; run on EXP, DEDUP-1 or BITMAP")

// Options tunes a BSP run.
type Options struct {
	// Workers bounds superstep parallelism; <= 0 selects GOMAXPROCS and 1
	// reproduces the serial engine bit-for-bit.
	Workers int
}

// bspGrain is the smallest vertex partition worth a goroutine; BSP vertices
// do more per-item work than the pool's default assumes.
const bspGrain = 32

// Result reports a BSP run.
type Result struct {
	// Values holds per-real-node outputs indexed by dense node index.
	Values []float64
	// Messages is the total number of messages sent.
	Messages int64
	// Supersteps is the number of synchronization rounds executed.
	Supersteps int
	// PeakQueueLen is the largest number of in-flight messages observed
	// at a superstep boundary (drives the memory column of Table 4).
	PeakQueueLen int64
	// MemBytes estimates graph + peak queue memory.
	MemBytes int64
	Duration time.Duration
}

// message is one BSP message. Origin tags the sending real node where the
// representation needs it (BITMAP's per-origin masks); it is -1 otherwise.
type message struct {
	value  float64
	origin int32
}

// targeted is a staged message together with its destination vertex; workers
// accumulate targeted messages privately and the barrier routes them.
type targeted struct {
	to int32
	m  message
}

// stage is one worker's private outgoing-message buffer for the current
// superstep section. Programs call send instead of touching the engine.
type stage struct {
	out []targeted
}

func (st *stage) send(to int32, m message) {
	st.out = append(st.out, targeted{to: to, m: m})
}

// engine is a BSP substrate over a condensed graph. Vertex IDs unify real
// and virtual nodes: real r is vertex r, virtual v is vertex
// numRealSlots + v.
type engine struct {
	g       *core.Graph
	nR      int32
	workers int
	inbox   [][]message
	// pending holds the staged buffers of the sections run since the last
	// barrier, in deterministic chunk order.
	pending [][]targeted
	res     *Result
}

func newEngine(g *core.Graph, workers int) *engine {
	nR := int32(g.NumRealSlots())
	total := int(nR) + g.NumVirtualSlots()
	return &engine{
		g:       g,
		nR:      nR,
		workers: parallel.Resolve(workers),
		inbox:   make([][]message, total),
		res:     &Result{},
	}
}

func resolveOpts(opts []Options) int {
	if len(opts) > 0 {
		return opts[0].Workers
	}
	return 0
}

func (e *engine) realVertex(r int32) int32    { return r }
func (e *engine) virtualVertex(v int32) int32 { return e.nR + v }

// forRange runs fn for every index in [0, n) across the worker pool,
// staging each chunk's sends privately and queueing the buffers in chunk
// order for the next sync.
func (e *engine) forRange(n int, fn func(st *stage, i int32)) {
	bufs := parallel.MapChunks(n, e.workers, bspGrain, func(lo, hi int) []targeted {
		var st stage
		for i := int32(lo); i < int32(hi); i++ {
			fn(&st, i)
		}
		return st.out
	})
	e.pending = append(e.pending, bufs...)
}

// forReals runs fn for every live real vertex.
func (e *engine) forReals(fn func(st *stage, r int32)) {
	g := e.g
	e.forRange(g.NumRealSlots(), func(st *stage, r int32) {
		if g.Alive(r) {
			fn(st, r)
		}
	})
}

// forVirtuals runs fn for every live virtual vertex.
func (e *engine) forVirtuals(fn func(st *stage, v int32)) {
	g := e.g
	e.forRange(g.NumVirtualSlots(), func(st *stage, v int32) {
		if g.VirtAlive(v) {
			fn(st, v)
		}
	})
}

// sync is the superstep barrier: every staged message becomes visible in its
// destination inbox. Buffers merge in chunk order, so for a fixed worker
// count the run is deterministic, and with one worker the inbox contents are
// exactly the serial engine's.
func (e *engine) sync() {
	var inFlight int64
	for _, buf := range e.pending {
		inFlight += int64(len(buf))
	}
	e.res.Messages += inFlight
	if inFlight > e.res.PeakQueueLen {
		e.res.PeakQueueLen = inFlight
	}
	for i := range e.inbox {
		e.inbox[i] = e.inbox[i][:0]
	}
	for _, buf := range e.pending {
		for _, t := range buf {
			e.inbox[t.to] = append(e.inbox[t.to], t.m)
		}
	}
	e.pending = e.pending[:0]
	e.res.Supersteps++
}

func (e *engine) finish(start time.Time) {
	//lint:ignore determinism Duration is measurement metadata; values never depend on it
	e.res.Duration = time.Since(start)
	e.res.MemBytes = e.g.MemBytes() + e.res.PeakQueueLen*16
}

// Degree computes every real node's logical out-degree.
//
// EXP needs no communication (one local superstep). On DEDUP-1 each virtual
// node V pushes |O(V)| to its sources (one message per incoming edge); on
// BITMAP it pushes the per-origin popcount of its mask instead. Reals then
// add their direct out-edges — two supersteps, as the paper reports.
func Degree(g *core.Graph, opts ...Options) (*Result, error) {
	start := time.Now() //lint:ignore determinism wall clock feeds only Result.Duration
	e := newEngine(g, resolveOpts(opts))
	e.res.Values = make([]float64, g.NumRealSlots())
	values := e.res.Values
	switch g.Mode() {
	case core.EXP:
		parallel.RunMin(g.NumRealSlots(), e.workers, bspGrain, func(_, lo, hi int) {
			for r := int32(lo); r < int32(hi); r++ {
				if g.Alive(r) {
					values[r] = float64(g.OutDegree(r))
				}
			}
		})
		e.res.Supersteps = 1
	case core.DEDUP1, core.DEDUP2, core.BITMAP:
		// Superstep 1: virtual nodes push target counts to sources.
		e.forVirtuals(func(st *stage, v int32) {
			switch g.Mode() {
			case core.BITMAP:
				// Bitmaps are keyed by traversal origin, so the
				// masked contribution goes straight to the origin
				// real node (multi-layer included). ForEachBitmap
				// ranges over a map; sort by origin so the send
				// order — and thus the run — is deterministic.
				type originMask struct {
					origin int32
					b      *bitset.Set
				}
				var masks []originMask
				g.ForEachBitmap(v, func(origin int32, b *bitset.Set) {
					masks = append(masks, originMask{origin, b})
				})
				sort.Slice(masks, func(i, j int) bool { return masks[i].origin < masks[j].origin })
				for _, om := range masks {
					n := om.b.Count()
					// Bits beyond the real-target range mask
					// virtual-virtual edges; exclude them.
					for i := len(g.VirtTargets(v)); i < om.b.Len(); i++ {
						if om.b.Get(i) {
							n--
						}
					}
					st.send(e.realVertex(om.origin), message{value: float64(n), origin: -1})
				}
			case core.DEDUP2:
				// A member reaches its own virtual node's other
				// members plus the 1-hop neighborhood.
				hop := 0
				for _, w := range g.VirtUndirected(v) {
					hop += len(g.VirtTargets(w))
				}
				for _, s := range g.VirtSources(v) {
					st.send(e.realVertex(s), message{value: float64(len(g.VirtTargets(v)) - 1 + hop), origin: -1})
				}
			default: // DEDUP1
				for _, s := range g.VirtSources(v) {
					st.send(e.realVertex(s), message{value: float64(len(g.VirtTargets(v))), origin: -1})
				}
			}
		})
		e.sync()
		// Superstep 2: reals sum and add direct edges; subtract the
		// self edge that symmetric membership contributes.
		e.forReals(func(_ *stage, r int32) {
			sum := float64(len(g.OutDirect(r)))
			for _, m := range e.inbox[e.realVertex(r)] {
				sum += m.value
			}
			if !g.SelfLoops && g.Mode() != core.DEDUP2 {
				sum -= float64(countSelfPaths(g, r))
			}
			values[r] = sum
		})
		e.res.Supersteps++
	default:
		return nil, ErrNeedsDedup
	}
	e.finish(start)
	return e.res, nil
}

// countSelfPaths counts virtual nodes of r that list r as a target (the
// self edges filtered out of logical iteration when SelfLoops is off). On
// BITMAP graphs self bits are already masked during preprocessing.
func countSelfPaths(g *core.Graph, r int32) int {
	if g.Mode() == core.BITMAP {
		return 0
	}
	n := 0
	for _, v := range g.OutVirtuals(r) {
		for _, t := range g.VirtTargets(v) {
			if t == r {
				n++
			}
		}
	}
	return n
}
