// Package bsp simulates the paper's Apache Giraph port (Section 6.4): a
// Bulk Synchronous Parallel engine where real AND virtual nodes are
// first-class vertices, communication happens through explicit per-superstep
// message queues, and every message is counted. The representation-specific
// behaviours the paper describes are reproduced: message aggregation at
// virtual nodes caps traffic at ~2x the representation's edges per round;
// correct Degree/PageRank over DEDUP-1 and BITMAP need twice the supersteps
// of EXP; and Connected Components, being duplicate-insensitive, runs
// directly on C-DUP.
package bsp

import (
	"errors"
	"time"

	"graphgen/internal/bitset"
	"graphgen/internal/core"
)

// ErrNeedsDedup is returned when a duplicate-sensitive program (Degree,
// PageRank) is run on a raw C-DUP graph.
var ErrNeedsDedup = errors.New("bsp: algorithm is duplicate-sensitive; run on EXP, DEDUP-1 or BITMAP")

// Result reports a BSP run.
type Result struct {
	// Values holds per-real-node outputs indexed by dense node index.
	Values []float64
	// Messages is the total number of messages sent.
	Messages int64
	// Supersteps is the number of synchronization rounds executed.
	Supersteps int
	// PeakQueueLen is the largest number of in-flight messages observed
	// at a superstep boundary (drives the memory column of Table 4).
	PeakQueueLen int64
	// MemBytes estimates graph + peak queue memory.
	MemBytes int64
	Duration time.Duration
}

// message is one BSP message. Origin tags the sending real node where the
// representation needs it (BITMAP's per-origin masks); it is -1 otherwise.
type message struct {
	value  float64
	origin int32
}

// engine is a single-process BSP substrate over a condensed graph. Vertex
// IDs unify real and virtual nodes: real r is vertex r, virtual v is vertex
// numRealSlots + v.
type engine struct {
	g     *core.Graph
	nR    int32
	inbox [][]message
	next  [][]message
	res   *Result
}

func newEngine(g *core.Graph) *engine {
	nR := int32(g.NumRealSlots())
	total := int(nR) + g.NumVirtualSlots()
	return &engine{
		g:     g,
		nR:    nR,
		inbox: make([][]message, total),
		next:  make([][]message, total),
		res:   &Result{},
	}
}

func (e *engine) realVertex(r int32) int32    { return r }
func (e *engine) virtualVertex(v int32) int32 { return e.nR + v }

func (e *engine) send(to int32, m message) {
	e.next[to] = append(e.next[to], m)
	e.res.Messages++
}

// sync advances to the next superstep: queued messages become the inbox.
func (e *engine) sync() {
	var inFlight int64
	for i := range e.next {
		inFlight += int64(len(e.next[i]))
	}
	if inFlight > e.res.PeakQueueLen {
		e.res.PeakQueueLen = inFlight
	}
	e.inbox, e.next = e.next, e.inbox
	for i := range e.next {
		e.next[i] = e.next[i][:0]
	}
	e.res.Supersteps++
}

func (e *engine) finish(start time.Time) {
	e.res.Duration = time.Since(start)
	e.res.MemBytes = e.g.MemBytes() + e.res.PeakQueueLen*16
}

// Degree computes every real node's logical out-degree.
//
// EXP needs no communication (one local superstep). On DEDUP-1 each virtual
// node V pushes |O(V)| to its sources (one message per incoming edge); on
// BITMAP it pushes the per-origin popcount of its mask instead. Reals then
// add their direct out-edges — two supersteps, as the paper reports.
func Degree(g *core.Graph) (*Result, error) {
	start := time.Now()
	e := newEngine(g)
	e.res.Values = make([]float64, g.NumRealSlots())
	switch g.Mode() {
	case core.EXP:
		g.ForEachReal(func(r int32) bool {
			e.res.Values[r] = float64(g.OutDegree(r))
			return true
		})
		e.res.Supersteps = 1
	case core.DEDUP1, core.DEDUP2, core.BITMAP:
		// Superstep 1: virtual nodes push target counts to sources.
		g.ForEachVirtual(func(v int32) bool {
			switch g.Mode() {
			case core.BITMAP:
				// Bitmaps are keyed by traversal origin, so the
				// masked contribution goes straight to the origin
				// real node (multi-layer included).
				g.ForEachBitmap(v, func(origin int32, b *bitset.Set) {
					n := b.Count()
					// Bits beyond the real-target range mask
					// virtual-virtual edges; exclude them.
					for i := len(g.VirtTargets(v)); i < b.Len(); i++ {
						if b.Get(i) {
							n--
						}
					}
					e.send(e.realVertex(origin), message{value: float64(n), origin: -1})
				})
			case core.DEDUP2:
				// A member reaches its own virtual node's other
				// members plus the 1-hop neighborhood.
				hop := 0
				for _, w := range g.VirtUndirected(v) {
					hop += len(g.VirtTargets(w))
				}
				for _, s := range g.VirtSources(v) {
					e.send(e.realVertex(s), message{value: float64(len(g.VirtTargets(v)) - 1 + hop), origin: -1})
				}
			default: // DEDUP1
				for _, s := range g.VirtSources(v) {
					e.send(e.realVertex(s), message{value: float64(len(g.VirtTargets(v))), origin: -1})
				}
			}
			return true
		})
		e.sync()
		// Superstep 2: reals sum and add direct edges; subtract the
		// self edge that symmetric membership contributes.
		g.ForEachReal(func(r int32) bool {
			sum := float64(len(g.OutDirect(r)))
			for _, m := range e.inbox[e.realVertex(r)] {
				sum += m.value
			}
			if !g.SelfLoops && g.Mode() != core.DEDUP2 {
				sum -= float64(countSelfPaths(g, r))
			}
			e.res.Values[r] = sum
			return true
		})
		e.res.Supersteps++
	default:
		return nil, ErrNeedsDedup
	}
	e.finish(start)
	return e.res, nil
}

// countSelfPaths counts virtual nodes of r that list r as a target (the
// self edges filtered out of logical iteration when SelfLoops is off). On
// BITMAP graphs self bits are already masked during preprocessing.
func countSelfPaths(g *core.Graph, r int32) int {
	if g.Mode() == core.BITMAP {
		return 0
	}
	n := 0
	for _, v := range g.OutVirtuals(r) {
		for _, t := range g.VirtTargets(v) {
			if t == r {
				n++
			}
		}
	}
	return n
}
