package bsp

import (
	"time"

	"graphgen/internal/core"
	"graphgen/internal/parallel"
)

// Components computes weakly-connected-component labels with min-label
// flooding over the BSP engine. Virtual nodes participate as first-class
// vertices holding labels of their own, so the algorithm runs unchanged on
// every representation — including raw C-DUP, because reachability (and
// therefore the fixpoint) is insensitive to duplicate paths; this is the
// speedup the paper reports for Connected Components on condensed graphs.
//
// Each superstep partitions the unified vertex range across the worker
// pool; min-label reduction is order-insensitive, so any worker count
// produces identical labels.
func Components(g *core.Graph, opts ...Options) (*Result, error) {
	start := time.Now() //lint:ignore determinism wall clock feeds only Result.Duration
	e := newEngine(g, resolveOpts(opts))
	nR := int32(g.NumRealSlots())
	total := int(nR) + g.NumVirtualSlots()
	label := make([]float64, total)
	for i := range label {
		label[i] = float64(i)
	}
	// neighborsOf lists the undirected structural neighbors of a vertex.
	neighborsOf := func(vx int32) []int32 {
		var out []int32
		if vx < nR {
			r := vx
			for _, v := range g.OutVirtuals(r) {
				out = append(out, e.virtualVertex(v))
			}
			for _, v := range g.InVirtuals(r) {
				out = append(out, e.virtualVertex(v))
			}
			for _, t := range g.OutDirect(r) {
				out = append(out, e.realVertex(t))
			}
			for _, s := range g.InDirect(r) {
				out = append(out, e.realVertex(s))
			}
			return out
		}
		v := vx - nR
		for _, s := range g.VirtSources(v) {
			out = append(out, e.realVertex(s))
		}
		for _, t := range g.VirtTargets(v) {
			out = append(out, e.realVertex(t))
		}
		for _, w := range g.VirtInVirt(v) {
			out = append(out, e.virtualVertex(w))
		}
		for _, w := range g.VirtOutVirt(v) {
			out = append(out, e.virtualVertex(w))
		}
		for _, w := range g.VirtUndirected(v) {
			out = append(out, e.virtualVertex(w))
		}
		return out
	}
	alive := func(vx int32) bool {
		if vx < nR {
			return g.Alive(vx)
		}
		return g.VirtAlive(vx - nR)
	}

	// Superstep 0: everyone announces its label.
	e.forRange(total, func(st *stage, vx int32) {
		if !alive(vx) {
			return
		}
		for _, n := range neighborsOf(vx) {
			st.send(n, message{value: label[vx], origin: -1})
		}
	})
	e.sync()
	for {
		// Per-chunk changed flags OR together; a vertex only reads its
		// own label and inbox and writes its own label, so partitions
		// are independent within a superstep.
		changed := parallel.MapChunks(total, e.workers, bspGrain, func(lo, hi int) sectionResult {
			var sec sectionResult
			for vx := int32(lo); vx < int32(hi); vx++ {
				if !alive(vx) {
					continue
				}
				min := label[vx]
				for _, m := range e.inbox[vx] {
					if m.value < min {
						min = m.value
					}
				}
				if min < label[vx] {
					label[vx] = min
					sec.changed = true
					for _, n := range neighborsOf(vx) {
						sec.st.send(n, message{value: min, origin: -1})
					}
				}
			}
			return sec
		})
		changedAny := false
		for _, sec := range changed {
			e.pending = append(e.pending, sec.st.out)
			changedAny = changedAny || sec.changed
		}
		e.sync()
		if !changedAny {
			break
		}
	}
	e.res.Values = label[:nR]
	e.finish(start)
	return e.res, nil
}

// sectionResult carries one chunk's staged messages plus its convergence
// flag out of a Components superstep.
type sectionResult struct {
	st      stage
	changed bool
}
