package relstore

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// ErrCSVSpec marks a malformed -csv flag value passed to LoadCSVFiles —
// a usage error for CLI front ends (exit 2), as opposed to file-system
// or parse failures (exit 1).
var ErrCSVSpec = errors.New("csv spec must be comma-separated name=path pairs")

// LoadCSVFiles loads a "name=path.csv,name=path.csv" spec — the -csv
// flag format shared by cmd/graphgen and cmd/graphgend — into db, one
// table per pair.
func (db *DB) LoadCSVFiles(spec string) error {
	for _, pair := range strings.Split(spec, ",") {
		name, path, ok := strings.Cut(pair, "=")
		if !ok {
			return fmt.Errorf("%w: got %q", ErrCSVSpec, pair)
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		_, err = db.LoadCSV(name, f)
		f.Close()
		if err != nil {
			return fmt.Errorf("loading %s: %w", path, err)
		}
	}
	return nil
}

// LoadCSV creates a table from CSV data. The first record is the header;
// column types are inferred over ALL data rows: a column is Int only when
// every row parses as an integer, otherwise it is String (a single
// non-numeric value anywhere demotes the column rather than failing the
// load). A header-only file defaults every column to String.
func (db *DB) LoadCSV(name string, r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relstore: %s: reading CSV header: %w", name, err)
	}
	if len(header) == 0 {
		return nil, fmt.Errorf("relstore: %s: empty CSV header", name)
	}
	// Materialize all records first so inference sees every row; the load
	// is in-memory anyway.
	var records [][]string
	for line := 2; ; line++ {
		record, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("relstore: %s: CSV row %d: %w", name, line, err)
		}
		records = append(records, record)
	}
	cols := make([]Column, len(header))
	for i, h := range header {
		typ := String
		if len(records) > 0 {
			typ = Int
			for _, record := range records {
				if i >= len(record) {
					continue // arity mismatch reported at insert below
				}
				if _, err := strconv.ParseInt(strings.TrimSpace(record[i]), 10, 64); err != nil {
					typ = String
					break
				}
			}
		}
		cols[i] = Column{Name: strings.TrimSpace(h), Type: typ}
	}
	t, err := db.Create(name, cols...)
	if err != nil {
		return nil, err
	}
	for n, record := range records {
		if len(record) != len(cols) {
			return nil, fmt.Errorf("relstore: %s: CSV row %d has %d fields, want %d", name, n+2, len(record), len(cols))
		}
		row := make([]Value, len(cols))
		for i, field := range record {
			field = strings.TrimSpace(field)
			if cols[i].Type == Int {
				v, err := strconv.ParseInt(field, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("relstore: %s: CSV row %d column %q: %w", name, n+2, cols[i].Name, err)
				}
				row[i] = IntVal(v)
			} else {
				row[i] = StrVal(field)
			}
		}
		if err := t.Insert(row...); err != nil {
			return nil, err
		}
	}
	return t, nil
}
