package relstore

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// LoadCSV creates a table from CSV data. The first record is the header;
// column types are inferred from the first data row (integer-parseable
// values become Int columns, everything else String). Subsequent rows must
// conform: an Int column with a non-integer value is an error.
func (db *DB) LoadCSV(name string, r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relstore: %s: reading CSV header: %w", name, err)
	}
	if len(header) == 0 {
		return nil, fmt.Errorf("relstore: %s: empty CSV header", name)
	}
	first, err := cr.Read()
	if err == io.EOF {
		// Header-only file: default every column to String.
		cols := make([]Column, len(header))
		for i, h := range header {
			cols[i] = Column{Name: strings.TrimSpace(h), Type: String}
		}
		return db.Create(name, cols...)
	}
	if err != nil {
		return nil, fmt.Errorf("relstore: %s: reading first CSV row: %w", name, err)
	}
	cols := make([]Column, len(header))
	for i, h := range header {
		typ := String
		if i < len(first) {
			if _, err := strconv.ParseInt(strings.TrimSpace(first[i]), 10, 64); err == nil {
				typ = Int
			}
		}
		cols[i] = Column{Name: strings.TrimSpace(h), Type: typ}
	}
	t, err := db.Create(name, cols...)
	if err != nil {
		return nil, err
	}
	insert := func(record []string, line int) error {
		if len(record) != len(cols) {
			return fmt.Errorf("relstore: %s: CSV row %d has %d fields, want %d", name, line, len(record), len(cols))
		}
		row := make([]Value, len(cols))
		for i, field := range record {
			field = strings.TrimSpace(field)
			if cols[i].Type == Int {
				n, err := strconv.ParseInt(field, 10, 64)
				if err != nil {
					return fmt.Errorf("relstore: %s: CSV row %d column %q: %w", name, line, cols[i].Name, err)
				}
				row[i] = IntVal(n)
			} else {
				row[i] = StrVal(field)
			}
		}
		return t.Insert(row...)
	}
	if err := insert(first, 2); err != nil {
		return nil, err
	}
	for line := 3; ; line++ {
		record, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("relstore: %s: CSV row %d: %w", name, line, err)
		}
		if err := insert(record, line); err != nil {
			return nil, err
		}
	}
	return t, nil
}
