package relstore

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

// --- helpers ---

// rowsEqual compares two relations row for row — order included, since
// every operator contract fixes its output order.
func rowsEqual(t *testing.T, got, want *Rel, label string) {
	t.Helper()
	if len(got.Cols) != len(want.Cols) {
		t.Fatalf("%s: cols %v vs %v", label, got.Cols, want.Cols)
	}
	for i, c := range got.Cols {
		if want.Cols[i] != c {
			t.Fatalf("%s: cols %v vs %v", label, got.Cols, want.Cols)
		}
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("%s: %d rows vs %d", label, len(got.Rows), len(want.Rows))
	}
	for i := range got.Rows {
		for j := range got.Rows[i] {
			if !got.Rows[i][j].Equal(want.Rows[i][j]) {
				t.Fatalf("%s: row %d differs: %v vs %v", label, i, got.Rows[i], want.Rows[i])
			}
		}
	}
}

// randTable fills a table with random small-domain rows so joins hit and
// predicates select nontrivially.
func randTable(t *testing.T, db *DB, rng *rand.Rand, name string, cols []Column, n int) *Table {
	t.Helper()
	tbl, err := db.Create(name, cols...)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		row := make([]Value, len(cols))
		for j, c := range cols {
			if c.Type == Int {
				row[j] = IntVal(int64(rng.Intn(8)))
			} else {
				row[j] = StrVal(fmt.Sprintf("s%d", rng.Intn(5)))
			}
		}
		if err := tbl.Insert(row...); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

// --- streaming == materializing equivalence ---

// TestStreamingMaterializingEquivalence builds randomized
// scan→join→project plans and runs each twice: as one fused streaming
// pipeline, and with Materialize interposed after every operator (the
// NoStream oracle, which reproduces the old operator-at-a-time
// execution). The collected outputs must match row for row, across
// worker counts and index modes.
func TestStreamingMaterializingEquivalence(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		db := NewDB()
		left := randTable(t, db, rng, "L",
			[]Column{{"a", Int}, {"b", Int}, {"s", String}}, 20+rng.Intn(60))
		right := randTable(t, db, rng, "R",
			[]Column{{"b", Int}, {"c", Int}}, 20+rng.Intn(60))
		if rng.Intn(2) == 0 {
			if _, err := right.CreateIndex("b"); err != nil {
				t.Fatal(err)
			}
		}
		var preds []Pred
		if rng.Intn(2) == 0 {
			preds = []Pred{{Col: 1, Value: IntVal(int64(rng.Intn(8)))}}
		}
		workers := []int{1, 1 + rng.Intn(4)}[rng.Intn(2)]
		useIndex := []IndexMode{IndexAuto, IndexOff}[rng.Intn(2)]
		distinct := rng.Intn(2) == 0

		build := func(stage func(RowIter) (RowIter, error)) (*Rel, error) {
			opts := ExecOpts{Workers: workers, UseIndex: useIndex}
			cur, err := NewScan(left, preds, []int{0, 1, 2}, []string{"a", "b", "s"}, opts)
			if err != nil {
				return nil, err
			}
			if cur, err = stage(cur); err != nil {
				return nil, err
			}
			if cur, err = NewTableJoin(cur, right, nil, []int{0, 1}, []string{"b", "c"}, []string{"b"}, opts); err != nil {
				return nil, err
			}
			if cur, err = stage(cur); err != nil {
				return nil, err
			}
			if cur, err = NewProject(cur, []string{"a", "c"}, distinct, opts); err != nil {
				return nil, err
			}
			if cur, err = stage(cur); err != nil {
				return nil, err
			}
			return Collect(cur)
		}
		streamed, err := build(func(it RowIter) (RowIter, error) { return it, nil })
		if err != nil {
			t.Fatalf("trial %d: streaming: %v", trial, err)
		}
		materialized, err := build(func(it RowIter) (RowIter, error) { return Materialize(it, nil) })
		if err != nil {
			t.Fatalf("trial %d: materializing: %v", trial, err)
		}
		rowsEqual(t, streamed, materialized,
			fmt.Sprintf("trial %d (workers=%d index=%d distinct=%t)", trial, workers, useIndex, distinct))
	}
}

// --- mid-stream error propagation ---

// failIter yields good rows, then fails. It records whether Close ran.
type failIter struct {
	cols   []string
	rows   [][]Value
	pos    int
	err    error
	closed int
}

func (f *failIter) Cols() []string { return f.cols }

func (f *failIter) Next() (Row, bool, error) {
	if f.pos >= len(f.rows) {
		return nil, false, f.err
	}
	f.pos++
	return f.rows[f.pos-1], true, nil
}

func (f *failIter) Close() error {
	f.closed++
	return nil
}

var errMidStream = errors.New("mid-stream failure")

// TestErrorPropagation drives a failing source through every operator
// shape and asserts Collect surfaces the error, the source is closed
// exactly once (the constructor owns its inputs), and — run under -race
// in CI — no worker goroutines leak past the failure.
func TestErrorPropagation(t *testing.T) {
	goodRows := func(n int) [][]Value {
		rows := make([][]Value, n)
		for i := range rows {
			rows[i] = []Value{IntVal(int64(i % 4)), IntVal(int64(i))}
		}
		return rows
	}
	probe := &Rel{Cols: []string{"k", "v"}, Rows: goodRows(8)}

	shapes := []struct {
		name  string
		build func(src *failIter) (RowIter, error)
	}{
		{"filter", func(src *failIter) (RowIter, error) {
			return NewFilter(src, ExecOpts{Workers: 3}, func(Row) bool { return true }), nil
		}},
		{"project", func(src *failIter) (RowIter, error) {
			return NewProject(src, []string{"k"}, false, ExecOpts{Workers: 3})
		}},
		{"distinct", func(src *failIter) (RowIter, error) {
			return NewProject(src, []string{"k"}, true, ExecOpts{Workers: 1})
		}},
		{"join build side", func(src *failIter) (RowIter, error) {
			return NewJoin(src, IterRel(probe), []string{"k"}, ExecOpts{Workers: 2})
		}},
		{"join probe side", func(src *failIter) (RowIter, error) {
			return NewJoin(IterRel(probe), src, []string{"k"}, ExecOpts{Workers: 2})
		}},
		{"cross", func(src *failIter) (RowIter, error) {
			return NewCross(IterRel(probe), src, ExecOpts{Workers: 2}), nil
		}},
		{"collect direct", func(src *failIter) (RowIter, error) { return src, nil }},
	}
	for _, nRows := range []int{0, 3, 2500} { // below and above one expand window
		for _, shape := range shapes {
			src := &failIter{cols: []string{"k", "v"}, rows: goodRows(nRows), err: errMidStream}
			it, err := shape.build(src)
			if err != nil {
				t.Fatalf("%s/%d: constructor: %v", shape.name, nRows, err)
			}
			if _, err := Collect(it); !errors.Is(err, errMidStream) {
				t.Fatalf("%s/%d: Collect error = %v, want errMidStream", shape.name, nRows, err)
			}
			if src.closed != 1 {
				t.Fatalf("%s/%d: source closed %d times, want exactly once", shape.name, nRows, src.closed)
			}
		}
	}
}

// TestConstructorErrorClosesInputs: a constructor that rejects its
// arguments must close the iterators it was handed — the caller has no
// handle left to do it.
func TestConstructorErrorClosesInputs(t *testing.T) {
	mk := func() *failIter { return &failIter{cols: []string{"k"}, rows: nil, err: nil} }

	a, b := mk(), mk()
	if _, err := NewJoin(a, b, []string{"missing"}, ExecOpts{}); err == nil {
		t.Fatal("join with missing column succeeded")
	}
	if a.closed != 1 || b.closed != 1 {
		t.Fatalf("join error left inputs open: a=%d b=%d", a.closed, b.closed)
	}

	c := mk()
	if _, err := NewProject(c, []string{"missing"}, false, ExecOpts{}); err == nil {
		t.Fatal("project with missing column succeeded")
	}
	if c.closed != 1 {
		t.Fatalf("project error left input open: %d", c.closed)
	}
}

// --- tracker accounting ---

// TestTrackerReleasesOnClose: Materialize charges the tracker for the
// staged rows and Close refunds them — afterwards a small acquisition
// must not push the peak past the staged high-water mark.
func TestTrackerReleasesOnClose(t *testing.T) {
	tr := NewTracker()
	rel := &Rel{Cols: []string{"x"}, Rows: make([][]Value, 10)}
	for i := range rel.Rows {
		rel.Rows[i] = []Value{IntVal(int64(i))}
	}
	it, err := Materialize(IterRel(rel), tr)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Peak() != 10 {
		t.Fatalf("peak after materialize = %d, want 10", tr.Peak())
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	tr.Acquire(5)
	if tr.Peak() != 10 {
		t.Fatalf("peak after close+reacquire = %d, want 10 (close did not release)", tr.Peak())
	}
	tr.Release(5)
}

// TestTrackerCountsJoinBuildSide: a streaming join's held state is its
// build side, and it is refunded when the join closes.
func TestTrackerCountsJoinBuildSide(t *testing.T) {
	tr := NewTracker()
	build := &Rel{Cols: []string{"k"}, Rows: [][]Value{{IntVal(1)}, {IntVal(2)}, {IntVal(3)}}}
	probe := &Rel{Cols: []string{"k"}, Rows: [][]Value{{IntVal(1)}, {IntVal(2)}}}
	it, err := NewJoin(IterRel(build), IterRel(probe), []string{"k"}, ExecOpts{Workers: 1, Tracker: tr})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Collect(it)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 2 {
		t.Fatalf("join rows = %d, want 2", len(out.Rows))
	}
	if tr.Peak() != 3 {
		t.Fatalf("peak = %d, want 3 (the build side)", tr.Peak())
	}
	tr.Acquire(1)
	if tr.Peak() != 3 {
		t.Fatalf("peak after close+reacquire = %d: build side not released", tr.Peak())
	}
}

// TestNilTrackerIsSafe: every operator takes a nil Tracker.
func TestNilTrackerIsSafe(t *testing.T) {
	var tr *Tracker
	tr.Acquire(5)
	tr.Release(5)
	if tr.Peak() != 0 {
		t.Fatal("nil tracker peak")
	}
}
