package relstore

import (
	"fmt"
	"sort"
	"strings"

	"graphgen/internal/parallel"
)

// Rel is a materialized intermediate relation produced by the operators
// below. Column names are caller-assigned (usually Datalog variable names).
type Rel struct {
	Cols []string
	Rows [][]Value
}

// ColIndex returns the index of the named column in the relation. The
// match is exact (unlike Table.ColIndex): Rel columns carry Datalog
// variable names, which are case-sensitive — `x` and `X` are different
// variables, and folding them would silently turn an intended cross
// product into an equi-join.
func (r *Rel) ColIndex(name string) (int, bool) {
	for i, c := range r.Cols {
		if c == name {
			return i, true
		}
	}
	return 0, false
}

// Pred is a selection predicate: column index = constant.
type Pred struct {
	Col   int
	Value Value
}

// Scan reads a table, applies equality predicates, and projects the listed
// column indexes under the given output names.
func Scan(t *Table, preds []Pred, cols []int, names []string) (*Rel, error) {
	return ScanWorkers(t, preds, cols, names, 1)
}

// validateScan checks a scan's projection and predicate columns against
// the table schema, so malformed input is an error on every scan path
// (serial, parallel, and index-backed) instead of a worker-pool panic.
func validateScan(t *Table, preds []Pred, cols []int, names []string) error {
	if len(cols) != len(names) {
		return fmt.Errorf("relstore: scan of %s: %d cols, %d names", t.Name, len(cols), len(names))
	}
	for _, c := range cols {
		if c < 0 || c >= len(t.Cols) {
			return fmt.Errorf("relstore: scan of %s: column %d out of range", t.Name, c)
		}
	}
	for _, p := range preds {
		if p.Col < 0 || p.Col >= len(t.Cols) {
			return fmt.Errorf("relstore: scan of %s: predicate column %d out of range", t.Name, p.Col)
		}
	}
	return nil
}

// ScanWorkers is Scan with the row loop partitioned across workers;
// per-chunk outputs concatenate in chunk order, so the result is identical
// to the serial scan for any worker count.
func ScanWorkers(t *Table, preds []Pred, cols []int, names []string, workers int) (*Rel, error) {
	if err := validateScan(t, preds, cols, names); err != nil {
		return nil, err
	}
	out := &Rel{Cols: append([]string(nil), names...)}
	chunks := parallel.MapChunks(len(t.Rows), workers, 0, func(lo, hi int) [][]Value {
		var sel [][]Value
	rows:
		for _, row := range t.Rows[lo:hi] {
			for _, p := range preds {
				if !row[p.Col].Equal(p.Value) {
					continue rows
				}
			}
			proj := make([]Value, len(cols))
			for i, c := range cols {
				proj[i] = row[c]
			}
			sel = append(sel, proj)
		}
		return sel
	})
	out.Rows = concatChunks(chunks)
	return out, nil
}

// HashJoin equi-joins a and b on the named columns and returns the
// concatenation of a's columns with b's columns minus the join column
// (which is kept once, from a). This is the classic build/probe hash join.
// The output schema and row order are independent of the input
// cardinalities: rows come out ordered by b's rows (all matches of b's
// first row, then its second, ...), with matches of one b row in a's row
// order — the build side is chosen internally and never leaks into the
// result.
func HashJoin(a, b *Rel, aCol, bCol string) (*Rel, error) {
	ai, ok := a.ColIndex(aCol)
	if !ok {
		return nil, fmt.Errorf("relstore: join column %q not in left relation %v", aCol, a.Cols)
	}
	bi, ok := b.ColIndex(bCol)
	if !ok {
		return nil, fmt.Errorf("relstore: join column %q not in right relation %v", bCol, b.Cols)
	}
	out := &Rel{Cols: append([]string(nil), a.Cols...)}
	for i, c := range b.Cols {
		if i == bi {
			continue
		}
		out.Cols = append(out.Cols, c)
	}
	joinRow := func(arow, brow []Value) []Value {
		joined := make([]Value, 0, len(out.Cols))
		joined = append(joined, arow...)
		for i, v := range brow {
			if i == bi {
				continue
			}
			joined = append(joined, v)
		}
		return joined
	}
	if len(b.Rows) < len(a.Rows) {
		// Build on b (the smaller side) but keep the canonical output
		// order: stage each probe match under its b-row index, then
		// concatenate in b order.
		build := make(map[string][]int, len(b.Rows))
		for j, brow := range b.Rows {
			k := hashKey(brow[bi])
			build[k] = append(build[k], j)
		}
		perB := make([][][]Value, len(b.Rows))
		for _, arow := range a.Rows {
			for _, j := range build[hashKey(arow[ai])] {
				brow := b.Rows[j]
				if !arow[ai].Equal(brow[bi]) {
					continue
				}
				perB[j] = append(perB[j], joinRow(arow, brow))
			}
		}
		for _, rows := range perB {
			out.Rows = append(out.Rows, rows...)
		}
		return out, nil
	}
	build := make(map[string][][]Value, len(a.Rows))
	for _, row := range a.Rows {
		k := hashKey(row[ai])
		build[k] = append(build[k], row)
	}
	for _, brow := range b.Rows {
		for _, arow := range build[hashKey(brow[bi])] {
			if !arow[ai].Equal(brow[bi]) {
				continue
			}
			out.Rows = append(out.Rows, joinRow(arow, brow))
		}
	}
	return out, nil
}

// hashKey encodes one value for composite join/distinct keys via the
// shared unambiguous encoding (Value.AppendKey).
func hashKey(v Value) string {
	var sb strings.Builder
	v.AppendKey(&sb)
	return sb.String()
}

// Project returns the relation restricted to the named columns, optionally
// removing duplicate rows (SELECT DISTINCT).
func Project(r *Rel, cols []string, distinct bool) (*Rel, error) {
	idx := make([]int, len(cols))
	for i, c := range cols {
		j, ok := r.ColIndex(c)
		if !ok {
			return nil, fmt.Errorf("relstore: project: column %q not in %v", c, r.Cols)
		}
		idx[i] = j
	}
	out := &Rel{Cols: append([]string(nil), cols...)}
	var seen map[string]struct{}
	if distinct {
		seen = make(map[string]struct{}, len(r.Rows))
	}
	for _, row := range r.Rows {
		proj := make([]Value, len(idx))
		var key strings.Builder
		for i, j := range idx {
			proj[i] = row[j]
			if distinct {
				key.WriteString(hashKey(row[j]))
				key.WriteByte('|')
			}
		}
		if distinct {
			k := key.String()
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
		}
		out.Rows = append(out.Rows, proj)
	}
	return out, nil
}

// MultiJoin equi-joins a and b on all listed shared column names (a
// composite key). The output has a's columns followed by b's columns minus
// the shared ones. An empty shared list is an error: it used to silently
// degenerate into a full cross product (every row keyed ""), which no
// planner path legitimately wants — callers that do mean a cross product
// say so with CrossWorkers.
func MultiJoin(a, b *Rel, shared []string) (*Rel, error) {
	return MultiJoinWorkers(a, b, shared, 1)
}

// MultiJoinWorkers is MultiJoin with a parallel probe phase: the hash table
// is built serially on a (the build side), b's rows — the outer/probe
// relation — are partitioned into contiguous chunks probed concurrently,
// and the per-chunk outputs are concatenated in chunk order. The result is
// row-for-row identical to the serial join regardless of the worker count.
func MultiJoinWorkers(a, b *Rel, shared []string, workers int) (*Rel, error) {
	if len(shared) == 0 {
		return nil, fmt.Errorf("relstore: join of %v with %v has no shared columns (use CrossWorkers for an explicit cross product)", a.Cols, b.Cols)
	}
	ai := make([]int, len(shared))
	bi := make([]int, len(shared))
	bShared := make(map[int]bool, len(shared))
	for k, c := range shared {
		i, ok := a.ColIndex(c)
		if !ok {
			return nil, fmt.Errorf("relstore: join column %q not in left relation %v", c, a.Cols)
		}
		j, ok := b.ColIndex(c)
		if !ok {
			return nil, fmt.Errorf("relstore: join column %q not in right relation %v", c, b.Cols)
		}
		ai[k], bi[k] = i, j
		bShared[j] = true
	}
	key := func(row []Value, idx []int) string {
		var sb strings.Builder
		for _, i := range idx {
			sb.WriteString(hashKey(row[i]))
			sb.WriteByte('|')
		}
		return sb.String()
	}
	build := make(map[string][][]Value, len(a.Rows))
	for _, row := range a.Rows {
		k := key(row, ai)
		build[k] = append(build[k], row)
	}
	out := &Rel{Cols: append([]string(nil), a.Cols...)}
	for j, c := range b.Cols {
		if !bShared[j] {
			out.Cols = append(out.Cols, c)
		}
	}
	probe := func(lo, hi int) [][]Value {
		var rows [][]Value
		for _, brow := range b.Rows[lo:hi] {
			for _, arow := range build[key(brow, bi)] {
				joined := make([]Value, 0, len(out.Cols))
				joined = append(joined, arow...)
				for j, v := range brow {
					if !bShared[j] {
						joined = append(joined, v)
					}
				}
				rows = append(rows, joined)
			}
		}
		return rows
	}
	out.Rows = concatChunks(parallel.MapChunks(len(b.Rows), workers, 0, probe))
	return out, nil
}

// CrossWorkers returns the cross product of a and b: a's columns followed
// by all of b's, one output row per (a row, b row) pair, ordered by b's
// rows with a's order inside each (the same order the pre-error empty-
// shared MultiJoin produced). The probe loop over b partitions across
// workers with a chunk-ordered merge.
func CrossWorkers(a, b *Rel, workers int) (*Rel, error) {
	out := &Rel{Cols: append(append([]string(nil), a.Cols...), b.Cols...)}
	chunks := parallel.MapChunks(len(b.Rows), workers, 0, func(lo, hi int) [][]Value {
		var rows [][]Value
		for _, brow := range b.Rows[lo:hi] {
			for _, arow := range a.Rows {
				joined := make([]Value, 0, len(out.Cols))
				joined = append(joined, arow...)
				joined = append(joined, brow...)
				rows = append(rows, joined)
			}
		}
		return rows
	})
	out.Rows = concatChunks(chunks)
	return out, nil
}

// concatChunks merges per-chunk row slices in chunk order.
func concatChunks(chunks [][][]Value) [][]Value {
	switch len(chunks) {
	case 0:
		return nil
	case 1:
		return chunks[0]
	}
	total := 0
	for _, c := range chunks {
		total += len(c)
	}
	out := make([][]Value, 0, total)
	for _, c := range chunks {
		out = append(out, c...)
	}
	return out
}

// bestIndexedPred returns the index covering one of the equality
// predicates, preferring the most selective (largest distinct-key count),
// plus the position of that predicate in preds; nil if no predicate
// column is indexed.
func bestIndexedPred(t *Table, preds []Pred) (*Index, int) {
	var best *Index
	bi := -1
	for i, p := range preds {
		if ix := t.indexes[p.Col]; ix != nil && (best == nil || ix.NKeys() > best.NKeys()) {
			best, bi = ix, i
		}
	}
	return best, bi
}

// IndexScan answers an equality-predicate scan from a hash index: it
// walks the bucket of the most selective indexed predicate instead of the
// table, applies the remaining predicates, and projects — returning
// row-for-row exactly what ScanWorkers returns (buckets preserve table
// order). At least one predicate column must be indexed.
func IndexScan(t *Table, preds []Pred, cols []int, names []string) (*Rel, error) {
	if err := validateScan(t, preds, cols, names); err != nil {
		return nil, err
	}
	ix, pi := bestIndexedPred(t, preds)
	if ix == nil {
		return nil, fmt.Errorf("relstore: IndexScan of %s: no index on any predicate column", t.Name)
	}
	out := &Rel{Cols: append([]string(nil), names...)}
rows:
	// The bucket key encoding is injective, so bucket membership already
	// implies equality on the driving predicate; only the others re-check.
	for _, row := range ix.Lookup(preds[pi].Value) {
		for i, p := range preds {
			if i == pi {
				continue
			}
			if !row[p.Col].Equal(p.Value) {
				continue rows
			}
		}
		proj := make([]Value, len(cols))
		for i, c := range cols {
			proj[i] = row[c]
		}
		out.Rows = append(out.Rows, proj)
	}
	return out, nil
}

// ScanAuto is the planner's scan entry point: it costs the index path
// against the parallel full scan using the catalog's distinct counts. An
// equality predicate over a column with d distinct values touches ~N/d
// rows through the index versus ~N/workers per worker for the scan, so
// the index wins once d exceeds the resolved worker count; a 2x factor
// keeps the choice conservative about per-lookup overhead. Both paths
// return identical relations, so the choice is purely a matter of cost.
func ScanAuto(t *Table, preds []Pred, cols []int, names []string, workers int) (*Rel, error) {
	if err := validateScan(t, preds, cols, names); err != nil {
		return nil, err
	}
	if ix, _ := bestIndexedPred(t, preds); ix != nil && ix.NKeys() >= 2*parallel.Resolve(workers) {
		return IndexScan(t, preds, cols, names)
	}
	return ScanWorkers(t, preds, cols, names, workers)
}

// IndexedJoin equi-joins cur against the selection+projection of table t
// on cur's joinName column, probing t's persistent hash index on the
// table column bound to joinName instead of scanning t and building a
// throwaway hash table. preds/cols/names describe the t side exactly as
// for Scan; names must contain joinName (bound to the indexed column).
// The result is row-for-row identical — schema and order — to
//
//	rel, _ := Scan(t, preds, cols, names)
//	MultiJoinWorkers(cur, rel, []string{joinName}, workers)
//
// which it achieves by gathering only the index buckets matching cur's
// join values, sorting them back into table order, and probing in that
// order.
func IndexedJoin(cur *Rel, joinName string, t *Table, preds []Pred, cols []int, names []string, workers int) (*Rel, error) {
	if err := validateScan(t, preds, cols, names); err != nil {
		return nil, err
	}
	ci, ok := cur.ColIndex(joinName)
	if !ok {
		return nil, fmt.Errorf("relstore: join column %q not in left relation %v", joinName, cur.Cols)
	}
	ni := -1
	for i, n := range names {
		if n == joinName {
			ni = i
			break
		}
	}
	if ni < 0 {
		return nil, fmt.Errorf("relstore: join column %q not in projection %v", joinName, names)
	}
	tcol := cols[ni]
	ix := t.indexes[tcol]
	if ix == nil {
		return nil, fmt.Errorf("relstore: IndexedJoin: no index on %s.%s", t.Name, t.Cols[tcol].Name)
	}
	build := make(map[string][][]Value, len(cur.Rows))
	for _, row := range cur.Rows {
		k := hashKey(row[ci])
		build[k] = append(build[k], row)
	}
	// Gather the matching table rows and restore table order: sequence
	// numbers are assigned in insertion order and deletions preserve
	// relative order, so sorting by seq reproduces the order a scan of t
	// would have produced (map iteration order does not leak through).
	var entries []indexEntry
	for k := range build {
		entries = append(entries, ix.buckets[k]...)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].seq < entries[j].seq })
	out := &Rel{Cols: append([]string(nil), cur.Cols...)}
	for i, n := range names {
		if i == ni {
			continue
		}
		out.Cols = append(out.Cols, n)
	}
	probe := func(lo, hi int) [][]Value {
		var rows [][]Value
	entries:
		for _, e := range entries[lo:hi] {
			row := e.row
			for _, p := range preds {
				if !row[p.Col].Equal(p.Value) {
					continue entries
				}
			}
			proj := make([]Value, 0, len(cols)-1)
			for i, c := range cols {
				if i == ni {
					continue
				}
				proj = append(proj, row[c])
			}
			for _, crow := range build[hashKey(row[tcol])] {
				joined := make([]Value, 0, len(out.Cols))
				joined = append(joined, crow...)
				joined = append(joined, proj...)
				rows = append(rows, joined)
			}
		}
		return rows
	}
	out.Rows = concatChunks(parallel.MapChunks(len(entries), workers, 0, probe))
	return out, nil
}

// EstimateJoinOutput estimates the output cardinality of an equi-join of the
// two tables on the given attribute under the planner's uniformity
// assumption: |R||S| / max(d_R, d_S), where d is the distinct count of the
// join attribute.
func EstimateJoinOutput(left *Table, leftCol string, right *Table, rightCol string) (int64, error) {
	dl, err := left.NDistinct(leftCol)
	if err != nil {
		return 0, err
	}
	dr, err := right.NDistinct(rightCol)
	if err != nil {
		return 0, err
	}
	d := dl
	if dr > d {
		d = dr
	}
	if d == 0 {
		return 0, nil
	}
	return int64(left.NumRows()) * int64(right.NumRows()) / int64(d), nil
}
