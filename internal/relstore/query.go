package relstore

import (
	"fmt"
	"strings"

	"graphgen/internal/parallel"
)

// Rel is a materialized intermediate relation produced by the operators
// below. Column names are caller-assigned (usually Datalog variable names).
type Rel struct {
	Cols []string
	Rows [][]Value
}

// ColIndex returns the index of the named column in the relation. The
// match is exact (unlike Table.ColIndex): Rel columns carry Datalog
// variable names, which are case-sensitive — `x` and `X` are different
// variables, and folding them would silently turn an intended cross
// product into an equi-join.
func (r *Rel) ColIndex(name string) (int, bool) {
	for i, c := range r.Cols {
		if c == name {
			return i, true
		}
	}
	return 0, false
}

// Pred is a selection predicate: column index = constant.
type Pred struct {
	Col   int
	Value Value
}

// Scan reads a table, applies equality predicates, and projects the listed
// column indexes under the given output names.
func Scan(t *Table, preds []Pred, cols []int, names []string) (*Rel, error) {
	return ScanWorkers(t, preds, cols, names, 1)
}

// ScanWorkers is Scan with the row loop partitioned across workers;
// per-chunk outputs concatenate in chunk order, so the result is identical
// to the serial scan for any worker count.
func ScanWorkers(t *Table, preds []Pred, cols []int, names []string, workers int) (*Rel, error) {
	if len(cols) != len(names) {
		return nil, fmt.Errorf("relstore: scan of %s: %d cols, %d names", t.Name, len(cols), len(names))
	}
	for _, c := range cols {
		if c < 0 || c >= len(t.Cols) {
			return nil, fmt.Errorf("relstore: scan of %s: column %d out of range", t.Name, c)
		}
	}
	out := &Rel{Cols: append([]string(nil), names...)}
	chunks := parallel.MapChunks(len(t.Rows), workers, 0, func(lo, hi int) [][]Value {
		var sel [][]Value
	rows:
		for _, row := range t.Rows[lo:hi] {
			for _, p := range preds {
				if !row[p.Col].Equal(p.Value) {
					continue rows
				}
			}
			proj := make([]Value, len(cols))
			for i, c := range cols {
				proj[i] = row[c]
			}
			sel = append(sel, proj)
		}
		return sel
	})
	switch len(chunks) {
	case 0:
	case 1:
		out.Rows = chunks[0]
	default:
		total := 0
		for _, c := range chunks {
			total += len(c)
		}
		out.Rows = make([][]Value, 0, total)
		for _, c := range chunks {
			out.Rows = append(out.Rows, c...)
		}
	}
	return out, nil
}

// HashJoin equi-joins a and b on the named columns and returns the
// concatenation of a's columns with b's columns minus the join column
// (which is kept once, from a). This is the classic build/probe hash join.
func HashJoin(a, b *Rel, aCol, bCol string) (*Rel, error) {
	ai, ok := a.ColIndex(aCol)
	if !ok {
		return nil, fmt.Errorf("relstore: join column %q not in left relation %v", aCol, a.Cols)
	}
	bi, ok := b.ColIndex(bCol)
	if !ok {
		return nil, fmt.Errorf("relstore: join column %q not in right relation %v", bCol, b.Cols)
	}
	// Build on the smaller side.
	if len(b.Rows) < len(a.Rows) {
		swapped, err := HashJoin(b, a, bCol, aCol)
		if err != nil {
			return nil, err
		}
		return swapped, nil
	}
	build := make(map[string][][]Value, len(a.Rows))
	for _, row := range a.Rows {
		k := hashKey(row[ai])
		build[k] = append(build[k], row)
	}
	out := &Rel{Cols: append([]string(nil), a.Cols...)}
	for i, c := range b.Cols {
		if i == bi {
			continue
		}
		out.Cols = append(out.Cols, c)
	}
	for _, brow := range b.Rows {
		for _, arow := range build[hashKey(brow[bi])] {
			if !arow[ai].Equal(brow[bi]) {
				continue
			}
			joined := make([]Value, 0, len(out.Cols))
			joined = append(joined, arow...)
			for i, v := range brow {
				if i == bi {
					continue
				}
				joined = append(joined, v)
			}
			out.Rows = append(out.Rows, joined)
		}
	}
	return out, nil
}

// hashKey encodes one value for composite join/distinct keys via the
// shared unambiguous encoding (Value.AppendKey).
func hashKey(v Value) string {
	var sb strings.Builder
	v.AppendKey(&sb)
	return sb.String()
}

// Project returns the relation restricted to the named columns, optionally
// removing duplicate rows (SELECT DISTINCT).
func Project(r *Rel, cols []string, distinct bool) (*Rel, error) {
	idx := make([]int, len(cols))
	for i, c := range cols {
		j, ok := r.ColIndex(c)
		if !ok {
			return nil, fmt.Errorf("relstore: project: column %q not in %v", c, r.Cols)
		}
		idx[i] = j
	}
	out := &Rel{Cols: append([]string(nil), cols...)}
	var seen map[string]struct{}
	if distinct {
		seen = make(map[string]struct{}, len(r.Rows))
	}
	for _, row := range r.Rows {
		proj := make([]Value, len(idx))
		var key strings.Builder
		for i, j := range idx {
			proj[i] = row[j]
			if distinct {
				key.WriteString(hashKey(row[j]))
				key.WriteByte('|')
			}
		}
		if distinct {
			k := key.String()
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
		}
		out.Rows = append(out.Rows, proj)
	}
	return out, nil
}

// MultiJoin equi-joins a and b on all listed shared column names (a
// composite key). The output has a's columns followed by b's columns minus
// the shared ones.
func MultiJoin(a, b *Rel, shared []string) (*Rel, error) {
	return MultiJoinWorkers(a, b, shared, 1)
}

// MultiJoinWorkers is MultiJoin with a parallel probe phase: the hash table
// is built serially on a (the build side), b's rows — the outer/probe
// relation — are partitioned into contiguous chunks probed concurrently,
// and the per-chunk outputs are concatenated in chunk order. The result is
// row-for-row identical to the serial join regardless of the worker count.
func MultiJoinWorkers(a, b *Rel, shared []string, workers int) (*Rel, error) {
	ai := make([]int, len(shared))
	bi := make([]int, len(shared))
	bShared := make(map[int]bool, len(shared))
	for k, c := range shared {
		i, ok := a.ColIndex(c)
		if !ok {
			return nil, fmt.Errorf("relstore: join column %q not in left relation %v", c, a.Cols)
		}
		j, ok := b.ColIndex(c)
		if !ok {
			return nil, fmt.Errorf("relstore: join column %q not in right relation %v", c, b.Cols)
		}
		ai[k], bi[k] = i, j
		bShared[j] = true
	}
	key := func(row []Value, idx []int) string {
		var sb strings.Builder
		for _, i := range idx {
			sb.WriteString(hashKey(row[i]))
			sb.WriteByte('|')
		}
		return sb.String()
	}
	build := make(map[string][][]Value, len(a.Rows))
	for _, row := range a.Rows {
		k := key(row, ai)
		build[k] = append(build[k], row)
	}
	out := &Rel{Cols: append([]string(nil), a.Cols...)}
	for j, c := range b.Cols {
		if !bShared[j] {
			out.Cols = append(out.Cols, c)
		}
	}
	probe := func(lo, hi int) [][]Value {
		var rows [][]Value
		for _, brow := range b.Rows[lo:hi] {
			for _, arow := range build[key(brow, bi)] {
				joined := make([]Value, 0, len(out.Cols))
				joined = append(joined, arow...)
				for j, v := range brow {
					if !bShared[j] {
						joined = append(joined, v)
					}
				}
				rows = append(rows, joined)
			}
		}
		return rows
	}
	chunks := parallel.MapChunks(len(b.Rows), workers, 0, probe)
	switch len(chunks) {
	case 0:
	case 1:
		out.Rows = chunks[0]
	default:
		total := 0
		for _, c := range chunks {
			total += len(c)
		}
		out.Rows = make([][]Value, 0, total)
		for _, c := range chunks {
			out.Rows = append(out.Rows, c...)
		}
	}
	return out, nil
}

// EstimateJoinOutput estimates the output cardinality of an equi-join of the
// two tables on the given attribute under the planner's uniformity
// assumption: |R||S| / max(d_R, d_S), where d is the distinct count of the
// join attribute.
func EstimateJoinOutput(left *Table, leftCol string, right *Table, rightCol string) (int64, error) {
	dl, err := left.NDistinct(leftCol)
	if err != nil {
		return 0, err
	}
	dr, err := right.NDistinct(rightCol)
	if err != nil {
		return 0, err
	}
	d := dl
	if dr > d {
		d = dr
	}
	if d == 0 {
		return 0, nil
	}
	return int64(left.NumRows()) * int64(right.NumRows()) / int64(d), nil
}
