package relstore

import (
	"fmt"
	"strings"
)

// This file holds the materialized relation type (Rel), the scan
// validation and planner-cost helpers shared with the streaming layer
// (iter.go), and the original operator free functions. The free functions
// are now thin Collect wrappers over the iterator constructors — kept as
// deprecated aliases so existing callers (and the equivalence suites that
// serve as the streaming path's correctness oracle) migrate mechanically.
// New code composes NewScan/NewSelect/NewJoin/NewTableJoin/NewCross/
// NewProject with one ExecOpts instead of picking a positional-workers or
// auto-vs-forced variant.

// Rel is a materialized intermediate relation produced by the operators
// below. Column names are caller-assigned (usually Datalog variable names).
type Rel struct {
	Cols []string
	Rows [][]Value
}

// ColIndex returns the index of the named column in the relation. The
// match is exact (unlike Table.ColIndex): Rel columns carry Datalog
// variable names, which are case-sensitive — `x` and `X` are different
// variables, and folding them would silently turn an intended cross
// product into an equi-join.
func (r *Rel) ColIndex(name string) (int, bool) {
	for i, c := range r.Cols {
		if c == name {
			return i, true
		}
	}
	return 0, false
}

// Pred is a selection predicate: column index = constant.
type Pred struct {
	Col   int
	Value Value
}

// Scan reads a table, applies equality predicates, and projects the listed
// column indexes under the given output names.
//
// Deprecated: compose NewScan with Collect (ExecOpts{UseIndex: IndexOff}).
func Scan(t *Table, preds []Pred, cols []int, names []string) (*Rel, error) {
	return ScanWorkers(t, preds, cols, names, 1)
}

// validateScan checks a scan's projection and predicate columns against
// the table schema, so malformed input is an error on every scan path
// (serial, parallel, and index-backed) instead of a worker-pool panic.
func validateScan(t *Table, preds []Pred, cols []int, names []string) error {
	if len(cols) != len(names) {
		return fmt.Errorf("relstore: scan of %s: %d cols, %d names", t.Name, len(cols), len(names))
	}
	for _, c := range cols {
		if c < 0 || c >= len(t.Cols) {
			return fmt.Errorf("relstore: scan of %s: column %d out of range", t.Name, c)
		}
	}
	for _, p := range preds {
		if p.Col < 0 || p.Col >= len(t.Cols) {
			return fmt.Errorf("relstore: scan of %s: predicate column %d out of range", t.Name, p.Col)
		}
	}
	return nil
}

// ScanWorkers is Scan with the row loop partitioned across workers;
// per-chunk outputs concatenate in chunk order, so the result is identical
// to the serial scan for any worker count.
//
// Deprecated: compose NewScan with Collect (ExecOpts{UseIndex: IndexOff}).
func ScanWorkers(t *Table, preds []Pred, cols []int, names []string, workers int) (*Rel, error) {
	it, err := NewScan(t, preds, cols, names, ExecOpts{Workers: workers, UseIndex: IndexOff})
	if err != nil {
		return nil, err
	}
	return Collect(it)
}

// HashJoin equi-joins a and b on the named columns and returns the
// concatenation of a's columns with b's columns minus the join column
// (which is kept once, from a). This is the classic build/probe hash join.
// The output schema and row order are independent of the input
// cardinalities: rows come out ordered by b's rows (all matches of b's
// first row, then its second, ...), with matches of one b row in a's row
// order.
//
// Deprecated: compose NewHashJoin with Collect.
func HashJoin(a, b *Rel, aCol, bCol string) (*Rel, error) {
	it, err := NewHashJoin(IterRel(a), IterRel(b), aCol, bCol, ExecOpts{Workers: 1})
	if err != nil {
		return nil, err
	}
	return Collect(it)
}

// hashKey encodes one value for composite join/distinct keys via the
// shared unambiguous encoding (Value.AppendKey).
func hashKey(v Value) string {
	var sb strings.Builder
	v.AppendKey(&sb)
	return sb.String()
}

// Project returns the relation restricted to the named columns, optionally
// removing duplicate rows (SELECT DISTINCT).
func Project(r *Rel, cols []string, distinct bool) (*Rel, error) {
	it, err := NewProject(IterRel(r), cols, distinct, ExecOpts{Workers: 1})
	if err != nil {
		return nil, err
	}
	return Collect(it)
}

// MultiJoin equi-joins a and b on all listed shared column names (a
// composite key). The output has a's columns followed by b's columns minus
// the shared ones. An empty shared list is an error: it used to silently
// degenerate into a full cross product (every row keyed ""), which no
// planner path legitimately wants — callers that do mean a cross product
// say so with CrossWorkers.
//
// Deprecated: compose NewJoin with Collect.
func MultiJoin(a, b *Rel, shared []string) (*Rel, error) {
	return MultiJoinWorkers(a, b, shared, 1)
}

// MultiJoinWorkers is MultiJoin with a parallel probe phase: the hash table
// is built serially on a (the build side), b's rows — the outer/probe
// relation — are partitioned into contiguous chunks probed concurrently,
// and the per-chunk outputs are concatenated in chunk order. The result is
// row-for-row identical to the serial join regardless of the worker count.
//
// Deprecated: compose NewJoin with Collect.
func MultiJoinWorkers(a, b *Rel, shared []string, workers int) (*Rel, error) {
	it, err := NewJoin(IterRel(a), IterRel(b), shared, ExecOpts{Workers: workers})
	if err != nil {
		return nil, err
	}
	return Collect(it)
}

// CrossWorkers returns the cross product of a and b: a's columns followed
// by all of b's, one output row per (a row, b row) pair, ordered by b's
// rows with a's order inside each (the same order the pre-error empty-
// shared MultiJoin produced). The probe loop over b partitions across
// workers with a chunk-ordered merge.
//
// Deprecated: compose NewCross with Collect.
func CrossWorkers(a, b *Rel, workers int) (*Rel, error) {
	return Collect(NewCross(IterRel(a), IterRel(b), ExecOpts{Workers: workers}))
}

// concatChunks merges per-chunk row slices in chunk order.
func concatChunks(chunks [][][]Value) [][]Value {
	switch len(chunks) {
	case 0:
		return nil
	case 1:
		return chunks[0]
	}
	total := 0
	for _, c := range chunks {
		total += len(c)
	}
	out := make([][]Value, 0, total)
	for _, c := range chunks {
		out = append(out, c...)
	}
	return out
}

// bestIndexedPred returns the index covering one of the equality
// predicates, preferring the most selective (largest distinct-key count),
// plus the position of that predicate in preds; nil if no predicate
// column is indexed.
func bestIndexedPred(t *Table, preds []Pred) (*Index, int) {
	var best *Index
	bi := -1
	for i, p := range preds {
		if ix := t.indexes[p.Col]; ix != nil && (best == nil || ix.NKeys() > best.NKeys()) {
			best, bi = ix, i
		}
	}
	return best, bi
}

// IndexScan answers an equality-predicate scan from a hash index: it
// walks the bucket of the most selective indexed predicate instead of the
// table, applies the remaining predicates, and projects — returning
// row-for-row exactly what ScanWorkers returns (buckets preserve table
// order). At least one predicate column must be indexed.
//
// Deprecated: compose NewScan with Collect (ExecOpts{UseIndex: IndexForce}).
func IndexScan(t *Table, preds []Pred, cols []int, names []string) (*Rel, error) {
	it, err := NewScan(t, preds, cols, names, ExecOpts{UseIndex: IndexForce})
	if err != nil {
		return nil, err
	}
	return Collect(it)
}

// ScanAuto is the planner's scan entry point: it costs the index path
// against the parallel full scan using the catalog's distinct counts. An
// equality predicate over a column with d distinct values touches ~N/d
// rows through the index versus ~N/workers per worker for the scan, so
// the index wins once d exceeds the resolved worker count; a 2x factor
// keeps the choice conservative about per-lookup overhead. Both paths
// return identical relations, so the choice is purely a matter of cost.
//
// Deprecated: compose NewScan with Collect (ExecOpts{UseIndex: IndexAuto}).
func ScanAuto(t *Table, preds []Pred, cols []int, names []string, workers int) (*Rel, error) {
	it, err := NewScan(t, preds, cols, names, ExecOpts{Workers: workers})
	if err != nil {
		return nil, err
	}
	return Collect(it)
}

// IndexedJoin equi-joins cur against the selection+projection of table t
// on cur's joinName column, probing t's persistent hash index on the
// table column bound to joinName instead of scanning t and building a
// throwaway hash table. preds/cols/names describe the t side exactly as
// for Scan; names must contain joinName (bound to the indexed column).
// The result is row-for-row identical — schema and order — to
//
//	rel, _ := Scan(t, preds, cols, names)
//	MultiJoinWorkers(cur, rel, []string{joinName}, workers)
//
// which it achieves by gathering only the index buckets matching cur's
// join values, sorting them back into table order, and probing in that
// order.
//
// Deprecated: compose NewTableJoin with Collect (ExecOpts{UseIndex:
// IndexForce}).
func IndexedJoin(cur *Rel, joinName string, t *Table, preds []Pred, cols []int, names []string, workers int) (*Rel, error) {
	it, err := NewTableJoin(IterRel(cur), t, preds, cols, names, []string{joinName},
		ExecOpts{Workers: workers, UseIndex: IndexForce})
	if err != nil {
		return nil, err
	}
	return Collect(it)
}

// EstimateJoinOutput estimates the output cardinality of an equi-join of the
// two tables on the given attribute under the planner's uniformity
// assumption: |R||S| / max(d_R, d_S), where d is the distinct count of the
// join attribute.
func EstimateJoinOutput(left *Table, leftCol string, right *Table, rightCol string) (int64, error) {
	dl, err := left.NDistinct(leftCol)
	if err != nil {
		return 0, err
	}
	dr, err := right.NDistinct(rightCol)
	if err != nil {
		return 0, err
	}
	d := dl
	if dr > d {
		d = dr
	}
	if d == 0 {
		return 0, nil
	}
	return int64(left.NumRows()) * int64(right.NumRows()) / int64(d), nil
}
