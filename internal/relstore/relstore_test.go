package relstore

import "testing"

func makeAuthors(t *testing.T) (*DB, *Table, *Table) {
	t.Helper()
	db := NewDB()
	author, err := db.Create("Author", Column{"id", Int}, Column{"name", String})
	if err != nil {
		t.Fatal(err)
	}
	ap, err := db.Create("AuthorPub", Column{"aid", Int}, Column{"pid", Int})
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range []string{"ann", "bob", "cat", "dan"} {
		if err := author.Insert(IntVal(int64(i+1)), StrVal(name)); err != nil {
			t.Fatal(err)
		}
	}
	pairs := [][2]int64{{1, 10}, {2, 10}, {3, 10}, {1, 20}, {4, 20}, {3, 30}}
	for _, p := range pairs {
		if err := ap.Insert(IntVal(p[0]), IntVal(p[1])); err != nil {
			t.Fatal(err)
		}
	}
	return db, author, ap
}

func TestCreateAndLookup(t *testing.T) {
	db, author, _ := makeAuthors(t)
	if _, err := db.Create("Author", Column{"id", Int}); err == nil {
		t.Fatal("expected duplicate-table error")
	}
	got, err := db.Table("author") // case-insensitive
	if err != nil || got != author {
		t.Fatalf("Table lookup failed: %v", err)
	}
	if _, err := db.Table("nope"); err == nil {
		t.Fatal("expected missing-table error")
	}
	if names := db.TableNames(); len(names) != 2 || names[0] != "Author" {
		t.Fatalf("TableNames = %v", names)
	}
	if db.TotalRows() != 10 {
		t.Fatalf("TotalRows = %d, want 10", db.TotalRows())
	}
}

func TestInsertArity(t *testing.T) {
	_, author, _ := makeAuthors(t)
	if err := author.Insert(IntVal(9)); err == nil {
		t.Fatal("expected arity error")
	}
}

func TestNDistinct(t *testing.T) {
	_, author, ap := makeAuthors(t)
	if d, err := author.NDistinct("id"); err != nil || d != 4 {
		t.Fatalf("NDistinct(id) = %d, %v", d, err)
	}
	if d, err := ap.NDistinct("pid"); err != nil || d != 3 {
		t.Fatalf("NDistinct(pid) = %d, %v", d, err)
	}
	if d, err := ap.NDistinct("aid"); err != nil || d != 4 {
		t.Fatalf("NDistinct(aid) = %d, %v", d, err)
	}
	if _, err := ap.NDistinct("nope"); err == nil {
		t.Fatal("expected missing-column error")
	}
	// Stats refresh after inserts.
	if err := ap.Insert(IntVal(2), IntVal(40)); err != nil {
		t.Fatal(err)
	}
	if d, _ := ap.NDistinct("pid"); d != 4 {
		t.Fatalf("stale stats: NDistinct(pid) = %d, want 4", d)
	}
}

func TestScanWithPredicates(t *testing.T) {
	_, _, ap := makeAuthors(t)
	rel, err := Scan(ap, []Pred{{Col: 1, Value: IntVal(10)}}, []int{0}, []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rel.Rows))
	}
	if _, err := Scan(ap, nil, []int{5}, []string{"x"}); err == nil {
		t.Fatal("expected out-of-range column error")
	}
	if _, err := Scan(ap, nil, []int{0, 1}, []string{"x"}); err == nil {
		t.Fatal("expected arity mismatch error")
	}
}

func TestHashJoinSelfJoin(t *testing.T) {
	_, _, ap := makeAuthors(t)
	left, _ := Scan(ap, nil, []int{0, 1}, []string{"a1", "p"})
	right, _ := Scan(ap, nil, []int{0, 1}, []string{"a2", "p"})
	joined, err := HashJoin(left, right, "p", "p")
	if err != nil {
		t.Fatal(err)
	}
	// pid 10 has 3 authors -> 9 pairs; pid 20 has 2 -> 4; pid 30 has 1 -> 1.
	if len(joined.Rows) != 14 {
		t.Fatalf("join rows = %d, want 14", len(joined.Rows))
	}
	if _, err := HashJoin(left, right, "nope", "p"); err == nil {
		t.Fatal("expected missing join column error")
	}
}

func TestMultiJoinCompositeKey(t *testing.T) {
	a := &Rel{Cols: []string{"x", "y", "v"}, Rows: [][]Value{
		{IntVal(1), IntVal(1), StrVal("a")},
		{IntVal(1), IntVal(2), StrVal("b")},
	}}
	b := &Rel{Cols: []string{"x", "y", "w"}, Rows: [][]Value{
		{IntVal(1), IntVal(1), StrVal("p")},
		{IntVal(1), IntVal(2), StrVal("q")},
		{IntVal(2), IntVal(1), StrVal("r")},
	}}
	j, err := MultiJoin(a, b, []string{"x", "y"})
	if err != nil {
		t.Fatal(err)
	}
	if len(j.Rows) != 2 {
		t.Fatalf("composite join rows = %d, want 2", len(j.Rows))
	}
	if len(j.Cols) != 4 { // x, y, v, w
		t.Fatalf("cols = %v", j.Cols)
	}
}

func TestProjectDistinct(t *testing.T) {
	_, _, ap := makeAuthors(t)
	rel, _ := Scan(ap, nil, []int{1}, []string{"p"})
	d, err := Project(rel, []string{"p"}, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Rows) != 3 {
		t.Fatalf("distinct rows = %d, want 3", len(d.Rows))
	}
	nd, _ := Project(rel, []string{"p"}, false)
	if len(nd.Rows) != 6 {
		t.Fatalf("non-distinct rows = %d, want 6", len(nd.Rows))
	}
	if _, err := Project(rel, []string{"zzz"}, true); err == nil {
		t.Fatal("expected missing-column error")
	}
}

func TestEstimateJoinOutput(t *testing.T) {
	_, _, ap := makeAuthors(t)
	est, err := EstimateJoinOutput(ap, "pid", ap, "pid")
	if err != nil {
		t.Fatal(err)
	}
	// 6*6/3 = 12 under uniformity.
	if est != 12 {
		t.Fatalf("estimate = %d, want 12", est)
	}
}

func TestValueStringAndEqual(t *testing.T) {
	if IntVal(3).Equal(StrVal("3")) {
		t.Fatal("cross-type values must not be equal")
	}
	if IntVal(3).String() != "3" || StrVal("x").String() != "x" {
		t.Fatal("String rendering wrong")
	}
	if !IntVal(-5).Equal(IntVal(-5)) || !StrVal("a").Equal(StrVal("a")) {
		t.Fatal("Equal broken")
	}
}

func TestDeleteAndDeleteWhere(t *testing.T) {
	_, _, ap := makeAuthors(t)
	before := ap.NumRows()
	// Duplicate row: delete removes exactly one copy.
	if err := ap.Insert(IntVal(1), IntVal(10)); err != nil {
		t.Fatal(err)
	}
	ok, err := ap.Delete(IntVal(1), IntVal(10))
	if err != nil || !ok {
		t.Fatalf("Delete = %v, %v, want found", ok, err)
	}
	if ap.NumRows() != before {
		t.Fatalf("rows = %d, want %d", ap.NumRows(), before)
	}
	if ok, _ := ap.Delete(IntVal(99), IntVal(99)); ok {
		t.Fatal("Delete of a missing row reported found")
	}
	if _, err := ap.Delete(IntVal(1)); err == nil {
		t.Fatal("expected arity error")
	}
	n := ap.DeleteWhere(func(row []Value) bool { return row[1].I == 10 })
	if n != 3 {
		t.Fatalf("DeleteWhere removed %d rows, want 3", n)
	}
	if got := ap.NumRows() + n; got != before {
		t.Fatalf("rows+removed = %d, want %d", got, before)
	}
	// Deletion invalidates the statistics catalog.
	d, err := ap.NDistinct("pid")
	if err != nil {
		t.Fatal(err)
	}
	if d != 2 {
		t.Fatalf("pid distinct after delete = %d, want 2", d)
	}
}

func TestSubscribe(t *testing.T) {
	_, _, ap := makeAuthors(t)
	var log []Change
	cancel := ap.Subscribe(func(ch Change) { log = append(log, ch) })
	var other int
	cancelOther := ap.Subscribe(func(Change) { other++ })
	if err := ap.Insert(IntVal(7), IntVal(107)); err != nil {
		t.Fatal(err)
	}
	if ok, _ := ap.Delete(IntVal(7), IntVal(107)); !ok {
		t.Fatal("delete failed")
	}
	if len(log) != 2 || log[0].Op != OpInsert || log[1].Op != OpDelete {
		t.Fatalf("change log = %+v, want insert then delete", log)
	}
	if !RowsEqual(log[0].Row, []Value{IntVal(7), IntVal(107)}) {
		t.Fatalf("insert row = %v", log[0].Row)
	}
	if other != 2 {
		t.Fatalf("second subscriber saw %d changes, want 2", other)
	}
	cancelOther()
	cancel()
	if err := ap.Insert(IntVal(8), IntVal(108)); err != nil {
		t.Fatal(err)
	}
	if len(log) != 2 || other != 2 {
		t.Fatal("cancelled subscribers still notified")
	}
}

func TestSubscribeSlotReuse(t *testing.T) {
	_, _, ap := makeAuthors(t)
	for i := 0; i < 50; i++ {
		cancel := ap.Subscribe(func(Change) {})
		cancel()
		cancel() // double-cancel must not clobber a reused slot
	}
	if len(ap.subs) != 1 {
		t.Fatalf("subscriber slots = %d after 50 subscribe/cancel cycles, want 1", len(ap.subs))
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{IntVal(1), IntVal(2), -1},
		{IntVal(2), IntVal(2), 0},
		{IntVal(3), IntVal(2), 1},
		{StrVal("a"), StrVal("b"), -1},
		{StrVal("b"), StrVal("b"), 0},
		{StrVal("c"), StrVal("b"), 1},
		// Cross-type: Ints order before Strings, deterministically.
		{IntVal(999), StrVal(""), -1},
		{StrVal(""), IntVal(999), 1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestDBAttach(t *testing.T) {
	base, _, ap := makeAuthors(t)
	overlay := NewDB()
	tables := base.TableNames()
	for _, name := range tables {
		tab, err := base.Table(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := overlay.Attach(tab); err != nil {
			t.Fatal(err)
		}
	}
	// Shared storage: a row inserted through the base table is visible in
	// the overlay, and vice versa nothing is copied.
	got, err := overlay.Table(ap.Name)
	if err != nil {
		t.Fatal(err)
	}
	if got != ap {
		t.Fatal("Attach copied the table instead of sharing it")
	}
	if err := overlay.Attach(ap); err == nil {
		t.Fatal("re-attaching an existing name must fail")
	}
	if _, err := overlay.Create("temp_p", Column{Name: "c0", Type: Int}); err != nil {
		t.Fatal(err)
	}
	if len(overlay.TableNames()) != len(tables)+1 {
		t.Fatalf("overlay tables = %v", overlay.TableNames())
	}
	if len(base.TableNames()) != len(tables) {
		t.Fatal("creating an overlay temp table leaked into the base DB")
	}
}

// TestJoinKeyDelimiterStrings: composite join keys must be unambiguous
// when string values contain the separator ("a|sb","c") vs ("a","b|sc").
func TestJoinKeyDelimiterStrings(t *testing.T) {
	a := &Rel{Cols: []string{"x", "y"}, Rows: [][]Value{
		{StrVal("a|sb"), StrVal("c")},
		{StrVal("a"), StrVal("b|sc")},
	}}
	b := &Rel{Cols: []string{"x", "y", "z"}, Rows: [][]Value{
		{StrVal("a|sb"), StrVal("c"), IntVal(1)},
	}}
	out, err := MultiJoin(a, b, []string{"x", "y"})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 1 {
		t.Fatalf("join produced %d rows, want 1 (ambiguous keys matched a phantom pair)", len(out.Rows))
	}
	if !out.Rows[0][0].Equal(StrVal("a|sb")) {
		t.Fatalf("joined the wrong row: %v", out.Rows[0])
	}
	// Distinct projection must keep both delimiter-twins.
	proj, err := Project(a, []string{"x", "y"}, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(proj.Rows) != 2 {
		t.Fatalf("distinct dropped a delimiter-twin: %d rows, want 2", len(proj.Rows))
	}
}
