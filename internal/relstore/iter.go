package relstore

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"graphgen/internal/obs"
	"graphgen/internal/parallel"
)

// This file is the streaming operator layer: composable pull-based
// iterators over rows, with the same output contracts — schema and
// row-for-row order — as the materializing operators in query.go (which
// are now thin Collect wrappers over these constructors). Peak memory of
// a pipeline is what its operators *hold*, not the sum of every
// intermediate relation: a scan holds a window, a join holds its build
// side, distinct holds its seen-set. The equivalence suites
// (indexed==unindexed, serial≡parallel, semi-naive==naive, live==fresh)
// therefore carry over unchanged as the correctness oracle for the
// streaming path.
//
// Contracts every iterator obeys:
//
//   - Pull model: Next returns (row, true, nil) per row; (nil, false, nil)
//     at exhaustion; (nil, false, err) on failure. After either false,
//     Next must not be called again.
//   - Close is idempotent, releases operator-held memory, and closes the
//     iterator's inputs. A constructor that returns an error has already
//     closed the inputs it was given; a constructor that succeeds owns
//     them. Consequently a pipeline has exactly one Close obligation: its
//     head. Collect discharges it.
//   - Rows handed out by Next may alias table storage or be shared with
//     other consumers; callers must not mutate them.
//   - Source iterators capture their row-slice headers at construction
//     (for the lazy build/gather stages: at first Next, which is before
//     the pipeline has yielded any row). Rows appended to a table while a
//     pipeline drains are invisible to it — the semi-naive loop relies on
//     exactly this to evaluate a recursive body against the pre-insert
//     state while inserting head tuples. Deletes do NOT enjoy this
//     guarantee (table and index storage shifts in place); drain or close
//     pipelines before deleting from their source tables.
//   - Order is deterministic and worker-count independent: parallel
//     stages fan contiguous windows across the worker pool and merge in
//     window order, so ExecOpts.Workers is purely a throughput knob.

// Row is one tuple flowing through a pipeline.
type Row = []Value

// RowIter is the pull-based operator interface.
type RowIter interface {
	// Cols returns the output schema (caller-assigned column names,
	// usually Datalog variables). Stable across the iterator's lifetime.
	Cols() []string
	// Next returns the next row. ok=false ends the stream: with a nil
	// error it is exhausted, otherwise it failed. Either way the caller
	// must not call Next again (Close is still required).
	Next() (Row, bool, error)
	// Close releases operator-held memory and closes the inputs.
	// Idempotent.
	Close() error
}

// IndexMode selects the access path for table scans and table joins.
type IndexMode uint8

const (
	// IndexAuto costs the index path against the parallel scan (the
	// ScanAuto / planner rules) and picks the cheaper one.
	IndexAuto IndexMode = iota
	// IndexOff always walks the table.
	IndexOff
	// IndexForce requires an index and always probes it; constructors
	// error if no predicate/join column is indexed.
	IndexForce
)

// ExecOpts carries the execution knobs every operator constructor takes,
// replacing the positional `workers int` and the auto-vs-forced function
// variants of the old free-function API. The zero value — serial enough
// (Workers 0 resolves to GOMAXPROCS), auto index choice, no tracking —
// is a sensible default.
type ExecOpts struct {
	// Workers partitions parallel stages; <=0 means GOMAXPROCS. Output
	// order never depends on it.
	Workers int
	// UseIndex selects the access path for scans and table joins.
	UseIndex IndexMode
	// Tracker, when non-nil, accounts the rows operators hold
	// materialized (build sides, distinct seen-sets, bucket gathers —
	// and, in the NoStream oracle mode, whole staged relations).
	Tracker *Tracker
	// Trace, when non-nil, collects one span per operator constructed
	// under these opts: kind, strategy, rows out, batches, wall time.
	// Nil (the default) is the zero-overhead fast path — constructors
	// test this one pointer and skip the span machinery entirely.
	Trace *obs.Trace
}

// Tracker accounts materialized intermediate rows across a pipeline (or
// several: extraction shares one tracker across all segment pipelines of
// a plan). Acquire/Release are cheap atomics so parallel stages can share
// one; Peak is the high-water mark that lands in extraction and Datalog
// EvalStats as PeakIntermediateRows. A nil *Tracker is valid and counts
// nothing.
type Tracker struct {
	cur, peak atomic.Int64
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker { return &Tracker{} }

// Acquire records n rows becoming operator-resident.
func (t *Tracker) Acquire(n int) {
	if t == nil || n == 0 {
		return
	}
	c := t.cur.Add(int64(n))
	for {
		p := t.peak.Load()
		if c <= p || t.peak.CompareAndSwap(p, c) {
			return
		}
	}
}

// Release records n rows being dropped.
func (t *Tracker) Release(n int) {
	if t == nil || n == 0 {
		return
	}
	t.cur.Add(-int64(n))
}

// Peak returns the high-water mark of resident rows.
func (t *Tracker) Peak() int64 {
	if t == nil {
		return 0
	}
	return t.peak.Load()
}

// Collect drains it into a materialized relation, closes it, and returns
// the relation — the single materialization boundary of a pipeline. On a
// mid-stream error the pipeline is still closed and the error returned.
func Collect(it RowIter) (*Rel, error) {
	out := &Rel{Cols: append([]string(nil), it.Cols()...)}
	for {
		row, ok, err := it.Next()
		if err != nil {
			it.Close()
			return nil, err
		}
		if !ok {
			break
		}
		out.Rows = append(out.Rows, row)
	}
	if err := it.Close(); err != nil {
		return nil, err
	}
	return out, nil
}

// Materialize eagerly drains it, tracks the materialized rows against tr
// until the returned iterator is closed, and replays the rows. This is
// the NoStream oracle mode's stage boundary: interposing Materialize
// after every operator reproduces the old operator-at-a-time execution —
// and its peak-memory profile — exactly.
func Materialize(it RowIter, tr *Tracker) (RowIter, error) {
	rel, err := Collect(it)
	if err != nil {
		return nil, err
	}
	n := len(rel.Rows)
	tr.Acquire(n)
	return &sliceIter{cols: rel.Cols, rows: rel.Rows, onClose: func() { tr.Release(n) }}, nil
}

// IterRel returns an iterator replaying a materialized relation.
func IterRel(r *Rel) RowIter { return &sliceIter{cols: r.Cols, rows: r.Rows} }

// IterRelTracked replays r while accounting its rows against tr from now
// until the iterator closes — the building block for callers that
// materialize a stage themselves (to inspect its cardinality) and still
// want the NoStream peak accounting Materialize provides.
func IterRelTracked(r *Rel, tr *Tracker) RowIter {
	n := len(r.Rows)
	tr.Acquire(n)
	return &sliceIter{cols: r.Cols, rows: r.Rows, onClose: func() { tr.Release(n) }}
}

// IterRows returns an iterator replaying rows under the given schema.
func IterRows(cols []string, rows [][]Value) RowIter {
	return &sliceIter{cols: cols, rows: rows}
}

// sliceIter replays a row slice captured at construction.
type sliceIter struct {
	cols    []string
	rows    [][]Value
	pos     int
	onClose func()
	closed  bool
}

func (it *sliceIter) Cols() []string { return it.cols }

func (it *sliceIter) Next() (Row, bool, error) {
	if it.pos >= len(it.rows) {
		return nil, false, nil
	}
	r := it.rows[it.pos]
	it.pos++
	return r, true, nil
}

func (it *sliceIter) Close() error {
	if !it.closed {
		it.closed = true
		if it.onClose != nil {
			it.onClose()
		}
	}
	return nil
}

// closeAll closes every non-nil input; used by constructors on their
// error paths so a failed constructor leaves no Close obligation behind.
func closeAll(its ...RowIter) {
	for _, it := range its {
		if it != nil {
			it.Close()
		}
	}
}

// expandWindow is the per-worker window size of parallel stages. Windows
// bound the rows a stage holds in flight; boundaries affect only
// batching, never output order, so results are worker-count independent.
const expandWindow = 1024

// expandIter streams src through a pure per-row expansion kernel (emit
// zero or more output rows per input row), fanning each window of input
// rows across the worker pool and concatenating per-chunk outputs in
// chunk order — the streaming form of the MapChunks+concatChunks loops
// the materializing operators use, with identical output order.
type expandIter struct {
	cols    []string
	src     RowIter
	workers int
	window  int
	fn      func(Row, func(Row))
	in      [][]Value
	buf     [][]Value
	bufPos  int
	nbatch  int64
	srcDone bool
	closed  bool
}

func newExpandIter(cols []string, src RowIter, workers int, fn func(Row, func(Row))) *expandIter {
	w := parallel.Resolve(workers)
	return &expandIter{cols: cols, src: src, workers: w, window: w * expandWindow, fn: fn}
}

func (it *expandIter) Cols() []string { return it.cols }

func (it *expandIter) Next() (Row, bool, error) {
	for {
		if it.bufPos < len(it.buf) {
			r := it.buf[it.bufPos]
			it.bufPos++
			return r, true, nil
		}
		if it.srcDone {
			return nil, false, nil
		}
		it.in = it.in[:0]
		for len(it.in) < it.window {
			row, ok, err := it.src.Next()
			if err != nil {
				return nil, false, err
			}
			if !ok {
				it.srcDone = true
				break
			}
			it.in = append(it.in, row)
		}
		if len(it.in) == 0 {
			continue
		}
		it.nbatch++
		chunks := parallel.MapChunks(len(it.in), it.workers, 0, func(lo, hi int) [][]Value {
			var out [][]Value
			emit := func(r Row) { out = append(out, r) }
			for _, row := range it.in[lo:hi] {
				it.fn(row, emit)
			}
			return out
		})
		it.buf, it.bufPos = concatChunks(chunks), 0
	}
}

func (it *expandIter) batches() int64 { return it.nbatch }

func (it *expandIter) Close() error {
	if it.closed {
		return nil
	}
	it.closed = true
	it.in, it.buf = nil, nil
	return it.src.Close()
}

// selectFn is the scan kernel: constant-predicate filter, repeated-
// variable equality filter, then projection of cols under the output
// schema. Shared by the table walk, the index-bucket walk, and NewSelect.
func selectFn(preds []Pred, equalities [][2]int, cols []int) func(Row, func(Row)) {
	return func(row Row, emit func(Row)) {
		for _, p := range preds {
			if !row[p.Col].Equal(p.Value) {
				return
			}
		}
		for _, eq := range equalities {
			if !row[eq[0]].Equal(row[eq[1]]) {
				return
			}
		}
		proj := make([]Value, len(cols))
		for i, c := range cols {
			proj[i] = row[c]
		}
		emit(proj)
	}
}

// NewScan streams a table scan: equality predicates pushed into the row
// walk, projecting the listed column indexes under the given names. The
// access path follows opts.UseIndex: IndexAuto applies the ScanAuto cost
// rule (index wins when its distinct-key count reaches twice the
// resolved worker count), IndexForce requires an indexed predicate
// column and walks the most selective bucket (the driving predicate
// needs no re-check — the bucket key encoding is injective), IndexOff
// always walks the table. All paths yield identical rows in table order.
func NewScan(t *Table, preds []Pred, cols []int, names []string, opts ExecOpts) (RowIter, error) {
	if err := validateScan(t, preds, cols, names); err != nil {
		return nil, err
	}
	useIndex := false
	ix, pi := (*Index)(nil), -1
	if opts.UseIndex != IndexOff {
		ix, pi = bestIndexedPred(t, preds)
		switch opts.UseIndex {
		case IndexForce:
			if ix == nil {
				return nil, fmt.Errorf("relstore: IndexScan of %s: no index on any predicate column", t.Name)
			}
			useIndex = true
		case IndexAuto:
			useIndex = ix != nil && ix.NKeys() >= 2*parallel.Resolve(opts.Workers)
		}
	}
	outCols := append([]string(nil), names...)
	var sp *obs.Span
	if opts.Trace != nil {
		sp = opts.Trace.StartSpan("scan", t.Name)
		if useIndex {
			sp.SetStrategy("index")
		} else {
			sp.SetStrategy("table")
		}
	}
	if useIndex {
		rest := make([]Pred, 0, len(preds)-1)
		for i, p := range preds {
			if i != pi {
				rest = append(rest, p)
			}
		}
		src := &bucketIter{bucket: ix.buckets[hashKey(preds[pi].Value)]}
		return traced(newExpandIter(outCols, src, 1, selectFn(rest, nil, cols)), sp), nil
	}
	return traced(newExpandIter(outCols, IterRows(nil, t.Rows), opts.Workers, selectFn(preds, nil, cols)), sp), nil
}

// bucketIter walks one index bucket's rows in seq (= table) order,
// without copying the bucket. The bucket slice header is captured at
// construction: concurrent inserts append (or replace the map value) and
// stay invisible.
type bucketIter struct {
	bucket []indexEntry
	pos    int
}

func (it *bucketIter) Cols() []string { return nil }

func (it *bucketIter) Next() (Row, bool, error) {
	if it.pos >= len(it.bucket) {
		return nil, false, nil
	}
	r := it.bucket[it.pos].row
	it.pos++
	return r, true, nil
}

func (it *bucketIter) Close() error { return nil }

// NewSelect streams selection+projection over an explicit row slice (a
// delta batch, a table's rows, a change-log window): constant predicates
// and repeated-variable equalities filter, cols project under names.
// This is the one-pass form of the wide-scan+filter+project sequence the
// pattern compilers used to materialize.
func NewSelect(rows [][]Value, preds []Pred, equalities [][2]int, cols []int, names []string, opts ExecOpts) RowIter {
	outCols := append([]string(nil), names...)
	it := newExpandIter(outCols, IterRows(nil, rows), opts.Workers, selectFn(preds, equalities, cols))
	if opts.Trace == nil {
		return it
	}
	return traced(it, opts.Trace.StartSpan("select", ""))
}

// NewFilter streams src through a row predicate, keeping the schema.
// keep must be pure (it runs concurrently across a window).
func NewFilter(src RowIter, opts ExecOpts, keep func(Row) bool) RowIter {
	it := newExpandIter(src.Cols(), src, opts.Workers, func(row Row, emit func(Row)) {
		if keep(row) {
			emit(row)
		}
	})
	if opts.Trace == nil {
		return it
	}
	return traced(it, opts.Trace.StartSpan("filter", ""))
}

// joinKey encodes the composite join key of row at the given column
// positions via the shared injective encoding, so key equality is value
// equality and probes need no re-check.
func joinKey(row []Value, idx []int) string {
	var sb strings.Builder
	for _, i := range idx {
		row[i].AppendKey(&sb)
		sb.WriteByte('|')
	}
	return sb.String()
}

// buildProbeIter is the shared shape of the streaming binary operators:
// the build input drains into operator state at the first Next (before
// any output row exists), then the probe input streams through a kernel
// constructed from the drained rows. The build rows are tracked as
// operator-resident until Close.
type buildProbeIter struct {
	cols         []string
	build, probe RowIter
	opts         ExecOpts
	mk           func(buildRows [][]Value) func(Row, func(Row))
	inner        RowIter
	held         int
	failed       error
	closed       bool
}

func (it *buildProbeIter) Cols() []string { return it.cols }

func (it *buildProbeIter) Next() (Row, bool, error) {
	if it.failed != nil {
		return nil, false, it.failed
	}
	if it.inner == nil {
		var rows [][]Value
		for {
			row, ok, err := it.build.Next()
			if err != nil {
				it.failed = err
				return nil, false, err
			}
			if !ok {
				break
			}
			rows = append(rows, row)
		}
		it.build.Close()
		it.held = len(rows)
		it.opts.Tracker.Acquire(it.held)
		it.inner = newExpandIter(it.cols, it.probe, it.opts.Workers, it.mk(rows))
	}
	return it.inner.Next()
}

func (it *buildProbeIter) batches() int64 {
	if bc, ok := it.inner.(batchCounter); ok {
		return bc.batches()
	}
	return 0
}

func (it *buildProbeIter) Close() error {
	if it.closed {
		return nil
	}
	it.closed = true
	it.opts.Tracker.Release(it.held)
	it.held = 0
	err := it.build.Close()
	if it.inner != nil {
		if e := it.inner.Close(); err == nil {
			err = e
		}
	} else if e := it.probe.Close(); err == nil {
		err = e
	}
	return err
}

// NewJoin streams the equi-join of a and b on all shared column names (a
// composite key): a (the build side) drains into a hash table, b (the
// probe side) streams through it. Output schema and order match
// MultiJoinWorkers: a's columns then b's minus the shared ones; rows in
// b-major order with a's row order inside each b row. An empty shared
// list is an error — explicit cross products use NewCross.
func NewJoin(a, b RowIter, shared []string, opts ExecOpts) (RowIter, error) {
	acols, bcols := a.Cols(), b.Cols()
	if len(shared) == 0 {
		closeAll(a, b)
		return nil, fmt.Errorf("relstore: join of %v with %v has no shared columns (use CrossWorkers for an explicit cross product)", acols, bcols)
	}
	ai := make([]int, len(shared))
	bi := make([]int, len(shared))
	bShared := make([]bool, len(bcols))
	for k, c := range shared {
		i, ok := colIndex(acols, c)
		if !ok {
			closeAll(a, b)
			return nil, fmt.Errorf("relstore: join column %q not in left relation %v", c, acols)
		}
		j, ok := colIndex(bcols, c)
		if !ok {
			closeAll(a, b)
			return nil, fmt.Errorf("relstore: join column %q not in right relation %v", c, bcols)
		}
		ai[k], bi[k] = i, j
		bShared[j] = true
	}
	cols := append([]string(nil), acols...)
	for j, c := range bcols {
		if !bShared[j] {
			cols = append(cols, c)
		}
	}
	nOut := len(cols)
	var sp *obs.Span
	if opts.Trace != nil {
		sp = opts.Trace.StartSpan("join", strings.Join(shared, ","))
		sp.SetStrategy("hash build=left")
	}
	return traced(&buildProbeIter{cols: cols, build: a, probe: b, opts: opts,
		mk: func(rows [][]Value) func(Row, func(Row)) {
			table := make(map[string][][]Value, len(rows))
			for _, row := range rows {
				k := joinKey(row, ai)
				table[k] = append(table[k], row)
			}
			return func(brow Row, emit func(Row)) {
				for _, arow := range table[joinKey(brow, bi)] {
					joined := make([]Value, 0, nOut)
					joined = append(joined, arow...)
					for j, v := range brow {
						if !bShared[j] {
							joined = append(joined, v)
						}
					}
					emit(joined)
				}
			}
		}}, sp), nil
}

// NewHashJoin streams the equi-join of a and b on one column each (the
// names may differ; a's is kept). Schema and order match HashJoin: a's
// columns then b's minus bCol, rows in b-major order.
func NewHashJoin(a, b RowIter, aCol, bCol string, opts ExecOpts) (RowIter, error) {
	acols, bcols := a.Cols(), b.Cols()
	ai, ok := colIndex(acols, aCol)
	if !ok {
		closeAll(a, b)
		return nil, fmt.Errorf("relstore: join column %q not in left relation %v", aCol, acols)
	}
	bi, ok := colIndex(bcols, bCol)
	if !ok {
		closeAll(a, b)
		return nil, fmt.Errorf("relstore: join column %q not in right relation %v", bCol, bcols)
	}
	cols := append([]string(nil), acols...)
	for j, c := range bcols {
		if j != bi {
			cols = append(cols, c)
		}
	}
	nOut := len(cols)
	aIdx, bIdx := []int{ai}, []int{bi}
	var sp *obs.Span
	if opts.Trace != nil {
		sp = opts.Trace.StartSpan("hash_join", aCol+"="+bCol)
		sp.SetStrategy("hash build=left")
	}
	return traced(&buildProbeIter{cols: cols, build: a, probe: b, opts: opts,
		mk: func(rows [][]Value) func(Row, func(Row)) {
			table := make(map[string][][]Value, len(rows))
			for _, row := range rows {
				k := joinKey(row, aIdx)
				table[k] = append(table[k], row)
			}
			return func(brow Row, emit func(Row)) {
				for _, arow := range table[joinKey(brow, bIdx)] {
					joined := make([]Value, 0, nOut)
					joined = append(joined, arow...)
					for j, v := range brow {
						if j != bi {
							joined = append(joined, v)
						}
					}
					emit(joined)
				}
			}
		}}, sp), nil
}

// NewCross streams the cross product: a drains, b streams, one output
// row per (a row, b row) pair in b-major order (CrossWorkers' order).
func NewCross(a, b RowIter, opts ExecOpts) RowIter {
	cols := append(append([]string(nil), a.Cols()...), b.Cols()...)
	nOut := len(cols)
	var sp *obs.Span
	if opts.Trace != nil {
		sp = opts.Trace.StartSpan("cross", "")
		sp.SetStrategy("build=left")
	}
	return traced(&buildProbeIter{cols: cols, build: a, probe: b, opts: opts,
		mk: func(rows [][]Value) func(Row, func(Row)) {
			return func(brow Row, emit func(Row)) {
				for _, arow := range rows {
					joined := make([]Value, 0, nOut)
					joined = append(joined, arow...)
					joined = append(joined, brow...)
					emit(joined)
				}
			}
		}}, sp)
}

// NewTableJoin streams the equi-join of cur against the
// selection+projection of table t on the shared columns, deferring the
// access-path choice until cur has drained and its exact cardinality is
// known — the streaming form of the planner's IndexedJoin-vs-scan rule.
// preds/cols/names describe the t side exactly as for NewScan; each
// shared name must appear in names (bound to a table column) and in
// cur's schema.
//
// With a single shared column whose table column carries a persistent
// hash index, and 2·|cur| ≤ distinct keys (or IndexForce), the probe
// gathers only the index buckets matching cur's join values, sorts them
// back into table order by sequence number, and streams those entries;
// otherwise t is scanned (NewScan with the same opts) and probed against
// the hash table on cur. Both paths produce identical output: cur's
// columns then names minus the shared ones, in table-major order with
// cur's row order inside.
func NewTableJoin(cur RowIter, t *Table, preds []Pred, cols []int, names []string, shared []string, opts ExecOpts) (RowIter, error) {
	if err := validateScan(t, preds, cols, names); err != nil {
		closeAll(cur)
		return nil, err
	}
	curCols := cur.Cols()
	ci := make([]int, len(shared))
	ni := make([]int, len(shared))
	nShared := make([]bool, len(names))
	for k, c := range shared {
		i, ok := colIndex(curCols, c)
		if !ok {
			closeAll(cur)
			return nil, fmt.Errorf("relstore: join column %q not in left relation %v", c, curCols)
		}
		j, ok := colIndex(names, c)
		if !ok {
			closeAll(cur)
			return nil, fmt.Errorf("relstore: join column %q not in projection %v", c, names)
		}
		ci[k], ni[k] = i, j
		nShared[j] = true
	}
	var ix *Index
	if len(shared) == 1 && opts.UseIndex != IndexOff {
		ix = t.indexes[cols[ni[0]]]
	}
	if opts.UseIndex == IndexForce {
		if len(shared) != 1 {
			closeAll(cur)
			return nil, fmt.Errorf("relstore: IndexedJoin: composite join key %v on %s", shared, t.Name)
		}
		if ix == nil {
			tcol := cols[ni[0]]
			closeAll(cur)
			return nil, fmt.Errorf("relstore: IndexedJoin: no index on %s.%s", t.Name, t.Cols[tcol].Name)
		}
	}
	outCols := append([]string(nil), curCols...)
	for j, n := range names {
		if !nShared[j] {
			outCols = append(outCols, n)
		}
	}
	var sp *obs.Span
	if opts.Trace != nil {
		// The access-path choice is deferred until the build side has
		// drained; start() records it on this span when it happens.
		sp = opts.Trace.StartSpan("table_join", t.Name+" on "+strings.Join(shared, ","))
	}
	return traced(&tableJoinIter{cols: outCols, cur: cur, t: t, ix: ix,
		preds: preds, tCols: cols, names: names,
		ci: ci, ni: ni, nShared: nShared, opts: opts, span: sp}, sp), nil
}

// tableJoinIter implements NewTableJoin. The build drain, access-path
// decision, and (on the index path) bucket gather all happen at the
// first Next — before any output row, so recursive bodies still observe
// the pre-insert table state through the captured storage.
type tableJoinIter struct {
	cols    []string
	cur     RowIter
	t       *Table
	ix      *Index // candidate index; nil when multi-column or IndexOff
	preds   []Pred
	tCols   []int
	names   []string
	ci, ni  []int
	nShared []bool
	opts    ExecOpts
	span    *obs.Span // records the deferred access-path choice; may be nil

	inner  RowIter
	held   int
	failed error
	closed bool
}

func (it *tableJoinIter) Cols() []string { return it.cols }

func (it *tableJoinIter) Next() (Row, bool, error) {
	if it.failed != nil {
		return nil, false, it.failed
	}
	if it.inner == nil {
		if err := it.start(); err != nil {
			it.failed = err
			return nil, false, err
		}
	}
	return it.inner.Next()
}

func (it *tableJoinIter) start() error {
	var rows [][]Value
	for {
		row, ok, err := it.cur.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		rows = append(rows, row)
	}
	it.cur.Close()
	// Single-column joins key the build map with the bare value encoding
	// so its keys are exactly the index's bucket keys, letting the index
	// path gather buckets straight from the build map.
	key := func(row []Value, idx []int) string {
		if len(idx) == 1 {
			return hashKey(row[idx[0]])
		}
		return joinKey(row, idx)
	}
	build := make(map[string][][]Value, len(rows))
	for _, row := range rows {
		build[key(row, it.ci)] = append(build[key(row, it.ci)], row)
	}
	it.held = len(rows)
	it.opts.Tracker.Acquire(it.held)
	useIndex := it.ix != nil &&
		(it.opts.UseIndex == IndexForce || 2*len(rows) <= it.ix.NKeys())
	if useIndex {
		it.span.SetStrategy("index")
	} else {
		it.span.SetStrategy("scan")
	}
	it.span.Set("build_rows", int64(len(rows)))
	nOut := len(it.cols)
	if useIndex {
		// Gather the matching table rows and restore table order:
		// sequence numbers are assigned in insertion order and deletions
		// preserve relative order, so sorting by seq reproduces the order
		// a scan of t would have produced (map iteration order does not
		// leak through). The bucket key is the single-column join key
		// (injective), so gathered rows need no key re-check.
		var entries []indexEntry
		for k := range build {
			entries = append(entries, it.ix.buckets[k]...)
		}
		sort.Slice(entries, func(i, j int) bool { return entries[i].seq < entries[j].seq })
		it.opts.Tracker.Acquire(len(entries))
		it.held += len(entries)
		tj := it.ni[0]
		tcol := it.tCols[tj]
		preds, tCols, nShared := it.preds, it.tCols, it.nShared
		kernel := func(row Row, emit func(Row)) {
			for _, p := range preds {
				if !row[p.Col].Equal(p.Value) {
					return
				}
			}
			proj := make([]Value, 0, len(tCols)-1)
			for i, c := range tCols {
				if !nShared[i] {
					proj = append(proj, row[c])
				}
			}
			for _, crow := range build[hashKey(row[tcol])] {
				joined := make([]Value, 0, nOut)
				joined = append(joined, crow...)
				joined = append(joined, proj...)
				emit(joined)
			}
		}
		it.inner = newExpandIter(it.cols, &entrySliceIter{entries: entries}, it.opts.Workers, kernel)
		return nil
	}
	scanOpts := it.opts
	if scanOpts.UseIndex == IndexForce {
		scanOpts.UseIndex = IndexAuto
	}
	// The inner scan is an implementation detail of this operator's scan
	// path; suppress its span so the table join is one node, not two.
	scanOpts.Trace = nil
	scan, err := NewScan(it.t, it.preds, it.tCols, it.names, scanOpts)
	if err != nil {
		return err
	}
	ni, nShared := it.ni, it.nShared
	kernel := func(brow Row, emit func(Row)) {
		for _, crow := range build[key(brow, ni)] {
			joined := make([]Value, 0, nOut)
			joined = append(joined, crow...)
			for j, v := range brow {
				if !nShared[j] {
					joined = append(joined, v)
				}
			}
			emit(joined)
		}
	}
	it.inner = newExpandIter(it.cols, scan, it.opts.Workers, kernel)
	return nil
}

func (it *tableJoinIter) batches() int64 {
	if bc, ok := it.inner.(batchCounter); ok {
		return bc.batches()
	}
	return 0
}

func (it *tableJoinIter) Close() error {
	if it.closed {
		return nil
	}
	it.closed = true
	it.opts.Tracker.Release(it.held)
	it.held = 0
	err := it.cur.Close()
	if it.inner != nil {
		if e := it.inner.Close(); err == nil {
			err = e
		}
	}
	return err
}

// entrySliceIter streams gathered index entries' rows.
type entrySliceIter struct {
	entries []indexEntry
	pos     int
}

func (it *entrySliceIter) Cols() []string { return nil }

func (it *entrySliceIter) Next() (Row, bool, error) {
	if it.pos >= len(it.entries) {
		return nil, false, nil
	}
	r := it.entries[it.pos].row
	it.pos++
	return r, true, nil
}

func (it *entrySliceIter) Close() error { return nil }

// NewProject streams src restricted to the named columns, optionally
// deduplicating (SELECT DISTINCT). The distinct form runs serially — the
// seen-set is inherently order-dependent state — and holds one seen-set
// entry per distinct row (tracked); the plain form is a parallel
// per-row projection.
func NewProject(src RowIter, cols []string, distinct bool, opts ExecOpts) (RowIter, error) {
	srcCols := src.Cols()
	idx := make([]int, len(cols))
	for i, c := range cols {
		j, ok := colIndex(srcCols, c)
		if !ok {
			closeAll(src)
			return nil, fmt.Errorf("relstore: project: column %q not in %v", c, srcCols)
		}
		idx[i] = j
	}
	outCols := append([]string(nil), cols...)
	var sp *obs.Span
	if opts.Trace != nil {
		sp = opts.Trace.StartSpan("project", strings.Join(cols, ","))
		if distinct {
			sp.SetStrategy("distinct")
		}
	}
	if distinct {
		return traced(&distinctIter{cols: outCols, src: src, idx: idx, opts: opts,
			seen: make(map[string]struct{})}, sp), nil
	}
	return traced(newExpandIter(outCols, src, opts.Workers, func(row Row, emit func(Row)) {
		proj := make([]Value, len(idx))
		for i, j := range idx {
			proj[i] = row[j]
		}
		emit(proj)
	}), sp), nil
}

// distinctIter is the streaming SELECT DISTINCT projection.
type distinctIter struct {
	cols   []string
	src    RowIter
	idx    []int
	seen   map[string]struct{}
	opts   ExecOpts
	held   int
	closed bool
}

func (it *distinctIter) Cols() []string { return it.cols }

func (it *distinctIter) Next() (Row, bool, error) {
	for {
		row, ok, err := it.src.Next()
		if !ok || err != nil {
			return nil, false, err
		}
		proj := make([]Value, len(it.idx))
		var key strings.Builder
		for i, j := range it.idx {
			proj[i] = row[j]
			row[j].AppendKey(&key)
			key.WriteByte('|')
		}
		k := key.String()
		if _, dup := it.seen[k]; dup {
			continue
		}
		it.seen[k] = struct{}{}
		it.opts.Tracker.Acquire(1)
		it.held++
		return proj, true, nil
	}
}

func (it *distinctIter) Close() error {
	if it.closed {
		return nil
	}
	it.closed = true
	it.opts.Tracker.Release(it.held)
	it.held = 0
	it.seen = nil
	return it.src.Close()
}

// colIndex is Rel.ColIndex over a bare schema: exact, case-sensitive
// match (Datalog variables are case-sensitive).
func colIndex(cols []string, name string) (int, bool) {
	for i, c := range cols {
		if c == name {
			return i, true
		}
	}
	return 0, false
}
