package relstore

import (
	"fmt"
	"sort"
)

// This file is the secondary-index subsystem: per-column hash indexes that
// map an encoded column value to the rows carrying it, kept exactly
// consistent with the table under Insert/Delete/DeleteWhere through the
// same choke point that feeds the change log (notify), and the access-path
// operators that exploit them (IndexScan, ScanAuto, IndexedJoin in
// query.go). The paper's extraction queries lean on PostgreSQL's indexes
// for their equality-predicate scans and equi-joins; these are the
// relstore substrate's equivalent, so that repeated extractions, the
// semi-naive delta rounds, and live-graph delta evaluation stop paying a
// full table scan per predicate.

// indexEntry is one indexed row tagged with its table-order sequence
// number. Sequence numbers increase monotonically per index; because
// Delete and DeleteWhere preserve the relative order of surviving rows,
// ascending sequence order inside (and across) buckets is exactly table
// row order, which is what lets the index-backed operators reproduce the
// scan operators' output row-for-row.
type indexEntry struct {
	seq uint64
	row []Value
}

// Index is a hash index over one column of a Table: encoded column value
// (Value.AppendKey) -> the rows holding it, in table order. Indexes are
// maintained inside the table's mutation path (before change-log
// subscribers run, so a subscriber that reads through an index always
// observes the post-change state) and live as long as the table, which is
// what makes them reusable across extractions, semi-naive delta rounds,
// and live-graph rebuilds. Like tables, indexes are not internally
// synchronized.
type Index struct {
	t   *Table
	col int
	// graphlint:guardedby external:dbMu
	next uint64
	// graphlint:guardedby external:dbMu
	buckets map[string][]indexEntry
}

// CreateIndex builds (or returns, if one already exists) a hash index on
// the named column. Building is O(rows); maintenance is O(1) per insert
// and O(bucket) per delete, piggybacked on the mutation path that also
// feeds the change log.
func (t *Table) CreateIndex(col string) (*Index, error) {
	i, ok := t.ColIndex(col)
	if !ok {
		return nil, fmt.Errorf("relstore: %s has no column %q", t.Name, col)
	}
	if ix := t.indexes[i]; ix != nil {
		return ix, nil
	}
	ix := &Index{t: t, col: i, buckets: make(map[string][]indexEntry)}
	for _, row := range t.Rows {
		k := hashKey(row[i])
		ix.buckets[k] = append(ix.buckets[k], indexEntry{seq: ix.next, row: row})
		ix.next++
	}
	if t.indexes == nil {
		t.indexes = make(map[int]*Index)
	}
	t.indexes[i] = ix
	return ix, nil
}

// Index returns the index on the named column, or nil if none exists.
func (t *Table) Index(col string) *Index {
	i, ok := t.ColIndex(col)
	if !ok {
		return nil
	}
	return t.indexes[i]
}

// IndexedColumns returns the names of the indexed columns, sorted.
func (t *Table) IndexedColumns() []string {
	out := make([]string, 0, len(t.indexes))
	for i := range t.indexes {
		out = append(out, t.Cols[i].Name)
	}
	sort.Strings(out)
	return out
}

// apply keeps the index consistent with one single-tuple change. It runs
// inside the table's mutation path, after the row storage has changed and
// before change-log subscribers are notified.
func (ix *Index) apply(ch Change) {
	k := hashKey(ch.Row[ix.col])
	if ch.Op == OpInsert {
		ix.buckets[k] = append(ix.buckets[k], indexEntry{seq: ix.next, row: ch.Row})
		ix.next++
		return
	}
	bucket := ix.buckets[k]
	for i, e := range bucket {
		// Remove the first full-tuple match: the table's Delete removed its
		// first matching row, and bucket order mirrors table order, so this
		// is the same (value-equal) row.
		if RowsEqual(e.row, ch.Row) {
			bucket = append(bucket[:i], bucket[i+1:]...)
			if len(bucket) == 0 {
				delete(ix.buckets, k)
			} else {
				ix.buckets[k] = bucket
			}
			return
		}
	}
}

// Lookup returns the rows whose indexed column equals v, in table order.
// The returned rows are the table's storage; callers must not mutate them.
func (ix *Index) Lookup(v Value) [][]Value {
	bucket := ix.buckets[hashKey(v)]
	if len(bucket) == 0 {
		return nil
	}
	out := make([][]Value, len(bucket))
	for i, e := range bucket {
		out[i] = e.row
	}
	return out
}

// NKeys returns the number of distinct values in the indexed column —
// maintained incrementally, so it is the O(1) form of the catalog's
// NDistinct for indexed columns.
func (ix *Index) NKeys() int { return len(ix.buckets) }

// Column returns the indexed column's name.
func (ix *Index) Column() string { return ix.t.Cols[ix.col].Name }

// Len returns the number of indexed rows (the table cardinality).
func (ix *Index) Len() int {
	n := 0
	for _, b := range ix.buckets {
		n += len(b)
	}
	return n
}
