package relstore

import (
	"encoding/csv"
	"strconv"
	"strings"
	"testing"
)

// csvFuzzSeeds are the inline half of the FuzzLoadCSV corpus (the other
// half is checked in under testdata/fuzz/FuzzLoadCSV): the shapes the unit
// tests exercise, plus inputs near every parse/inference edge.
var csvFuzzSeeds = []string{
	"id,name,age\n1,ann,30\n2,bob,41\n",   // the canonical load
	"a,b\n",                               // header only: all String
	"id,code\n1,42\n2,7a\n3,9\n",          // one bad cell demotes the column
	"a\n1\n",                              // single Int column
	"a,b\n1\n",                            // arity mismatch
	"a,b\n\"x,y\",2\n",                    // quoted separator
	"a\n\"multi\nline\"\n",                // quoted newline
	"a,a\n1,2\n",                          // duplicate column names
	" a , b \n 1 , x \n",                  // whitespace trimming
	"a\n-9223372036854775808\n",           // int64 min
	"a\n9999999999999999999999\n",         // overflow demotes to String
	"\"\"\n",                              // single empty column name
	"a,b\n1,\"b\"\"q\"\n",                 // escaped quote
	"",                                    // empty input
	"a,b\n1,2\n3\n",                       // ragged rows
	"\xff\xfe,b\n1,2\n",                   // non-UTF-8 header
	"a;b\n1;2\n",                          // wrong separator: one column
	"a,b\r\n1,2\r\n",                      // CRLF line endings
	"id,ts\n1,2020-01-01\n2,2021-02-03\n", // date-like strings
	"x\n0x10\n",                           // hex is not ParseInt base-10
	"a,b,c\n,,\n1,2,3\n",                  // empty fields
	"col\n\" leading\"\n\"trailing \"\n",  // quoted spaces survive csv, then trim
	"n\n007\n",                            // non-canonical int spelling
	"a\n\ninput\n",                        // blank line skipped by the reader
	"p,q\n1,x\n2,y\n1,x\n",                // duplicate rows
	"long\n" + strings.Repeat("9", 400) + "\n", // very long numeric token
}

// renderCSV writes the table back out as CSV: header row of column names,
// then every row with Ints in canonical base-10 form.
func renderCSV(t *testing.T, tbl *Table) string {
	t.Helper()
	var sb strings.Builder
	w := csv.NewWriter(&sb)
	header := make([]string, len(tbl.Cols))
	for i, c := range tbl.Cols {
		header[i] = c.Name
	}
	if err := w.Write(header); err != nil {
		t.Fatal(err)
	}
	record := make([]string, len(tbl.Cols))
	for _, row := range tbl.Rows {
		for i, v := range row {
			if v.T == Int {
				record[i] = strconv.FormatInt(v.I, 10)
			} else {
				record[i] = v.S
			}
		}
		if err := w.Write(record); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// checkSchema asserts the load upheld the inference contract: every value
// carries its column's inferred type, every row has schema arity.
func checkSchema(t *testing.T, tbl *Table) {
	t.Helper()
	for ri, row := range tbl.Rows {
		if len(row) != len(tbl.Cols) {
			t.Fatalf("row %d arity %d, schema arity %d", ri, len(row), len(tbl.Cols))
		}
		for ci, v := range row {
			if v.T != tbl.Cols[ci].Type {
				t.Fatalf("row %d column %d: value type %v, column type %v", ri, ci, v.T, tbl.Cols[ci].Type)
			}
			if v.T == String && strings.TrimSpace(v.S) != v.S {
				t.Fatalf("row %d column %d: untrimmed string %q", ri, ci, v.S)
			}
		}
	}
}

func sameTable(a, b *Table) bool {
	if len(a.Cols) != len(b.Cols) || len(a.Rows) != len(b.Rows) {
		return false
	}
	for i := range a.Cols {
		if a.Cols[i] != b.Cols[i] {
			return false
		}
	}
	for i := range a.Rows {
		for j := range a.Rows[i] {
			if !a.Rows[i][j].Equal(b.Rows[i][j]) {
				return false
			}
		}
	}
	return true
}

// FuzzLoadCSV asserts three invariants over arbitrary input: LoadCSV never
// panics (bad input fails with an error, never a crash); a successful load
// upholds the type-inference contract (value types match inferred column
// types, rows have schema arity, strings are trimmed); and reloading a
// rendered table is a fixpoint — the first round trip may normalize
// (encoding/csv folds CRLF in quoted fields and drops blank records), but
// load(render(x)) must be stable from then on, so inferred types can be
// trusted across save/load cycles.
func FuzzLoadCSV(f *testing.F) {
	for _, s := range csvFuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		tbl, err := NewDB().LoadCSV("Fuzz", strings.NewReader(src))
		if err != nil {
			return // malformed input: an error is the contract
		}
		checkSchema(t, tbl)

		// The only legitimately unreloadable table: a single column with
		// an empty name renders as a blank header line, which the CSV
		// reader skips.
		if len(tbl.Cols) == 1 && tbl.Cols[0].Name == "" {
			return
		}
		out1 := renderCSV(t, tbl)
		tbl2, err := NewDB().LoadCSV("Fuzz", strings.NewReader(out1))
		if err != nil {
			t.Fatalf("rendered CSV failed to reload: %v\ninput: %q\nrendered: %q", err, src, out1)
		}
		checkSchema(t, tbl2)
		out2 := renderCSV(t, tbl2)
		tbl3, err := NewDB().LoadCSV("Fuzz", strings.NewReader(out2))
		if err != nil {
			t.Fatalf("second reload failed: %v\nrendered: %q", err, out2)
		}
		if !sameTable(tbl2, tbl3) {
			t.Fatalf("round trip is not a fixpoint\ninput: %q\nfirst: %+v %v\nsecond: %+v %v",
				src, tbl2.Cols, tbl2.Rows, tbl3.Cols, tbl3.Rows)
		}
		if out3 := renderCSV(t, tbl3); out2 != out3 {
			t.Fatalf("rendering is not stable: %q vs %q", out2, out3)
		}
	})
}
