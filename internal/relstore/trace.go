package relstore

import (
	"graphgen/internal/obs"
)

// This file is the operator layer's tracing shim. Every exported
// iterator constructor opens one obs.Span when ExecOpts.Trace is set,
// recording the operator kind, the access-path/strategy choice, rows
// emitted, parallel windows dispatched, and wall time from construction
// to Close. The tracing-off fast path is a single nil-pointer test per
// constructor: no span, no wrapper, no allocation — the returned
// iterator is exactly the untraced one.

// batchCounter is implemented by operators that dispatch parallel
// expansion windows; the traced wrapper harvests the count at Close.
type batchCounter interface {
	batches() int64
}

// traced wraps it so sp records its rows out, batches, and wall time,
// ending at the first Close (Close stays idempotent). A nil span —
// tracing off — returns it unchanged.
func traced(it RowIter, sp *obs.Span) RowIter {
	if sp == nil {
		return it
	}
	return &tracedIter{inner: it, span: sp}
}

type tracedIter struct {
	inner  RowIter
	span   *obs.Span
	rows   int64
	closed bool
}

func (it *tracedIter) Cols() []string { return it.inner.Cols() }

func (it *tracedIter) Next() (Row, bool, error) {
	row, ok, err := it.inner.Next()
	if ok {
		it.rows++
	}
	return row, ok, err
}

func (it *tracedIter) Close() error {
	err := it.inner.Close()
	if !it.closed {
		it.closed = true
		it.span.AddRows(it.rows)
		if bc, ok := it.inner.(batchCounter); ok {
			it.span.SetBatches(bc.batches())
		}
		it.span.End()
	}
	return err
}

// batches forwards the inner operator's window count so a traced
// iterator can itself feed a downstream traced wrapper.
func (it *tracedIter) batches() int64 {
	bc, ok := it.inner.(batchCounter)
	if !ok {
		return 0
	}
	return bc.batches()
}
