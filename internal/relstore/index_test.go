package relstore

import (
	"fmt"
	"math/rand"
	"testing"
)

// relsEqual asserts two relations are identical: same columns in the same
// order and the same rows in the same order.
func relsEqual(t *testing.T, got, want *Rel, context string) {
	t.Helper()
	if len(got.Cols) != len(want.Cols) {
		t.Fatalf("%s: cols %v, want %v", context, got.Cols, want.Cols)
	}
	for i := range want.Cols {
		if got.Cols[i] != want.Cols[i] {
			t.Fatalf("%s: cols %v, want %v", context, got.Cols, want.Cols)
		}
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("%s: %d rows, want %d", context, len(got.Rows), len(want.Rows))
	}
	for i := range want.Rows {
		if !RowsEqual(got.Rows[i], want.Rows[i]) {
			t.Fatalf("%s: row %d is %v, want %v", context, i, got.Rows[i], want.Rows[i])
		}
	}
}

func TestCreateIndexAndLookup(t *testing.T) {
	_, _, ap := makeAuthors(t)
	ix, err := ap.CreateIndex("pid")
	if err != nil {
		t.Fatal(err)
	}
	again, err := ap.CreateIndex("pid")
	if err != nil || again != ix {
		t.Fatalf("CreateIndex is not idempotent: %v %v", again, err)
	}
	if ap.Index("pid") != ix {
		t.Fatal("Index(pid) did not return the created index")
	}
	if ap.Index("nope") != nil {
		t.Fatal("Index on unknown column should be nil")
	}
	if _, err := ap.CreateIndex("nope"); err == nil {
		t.Fatal("CreateIndex on unknown column should error")
	}
	rows := ix.Lookup(IntVal(10))
	if len(rows) != 3 {
		t.Fatalf("Lookup(10) returned %d rows, want 3", len(rows))
	}
	// Table order: aids 1, 2, 3 inserted in that order for pid 10.
	for i, want := range []int64{1, 2, 3} {
		if rows[i][0].I != want {
			t.Fatalf("Lookup(10)[%d] aid = %d, want %d", i, rows[i][0].I, want)
		}
	}
	if ix.NKeys() != 3 {
		t.Fatalf("NKeys = %d, want 3 (pids 10, 20, 30)", ix.NKeys())
	}
	if ix.Column() != "pid" || ix.Len() != ap.NumRows() {
		t.Fatalf("Column=%q Len=%d, want pid/%d", ix.Column(), ix.Len(), ap.NumRows())
	}
	if got := ix.Lookup(IntVal(99)); got != nil {
		t.Fatalf("Lookup(99) = %v, want nil", got)
	}
	cols := ap.IndexedColumns()
	if len(cols) != 1 || cols[0] != "pid" {
		t.Fatalf("IndexedColumns = %v, want [pid]", cols)
	}
}

// checkIndexAgainstScan verifies, for every live value of the indexed
// column plus a few absent ones, that the index lookup returns exactly the
// rows a fresh scan of the table finds, in table order — and that the
// maintained distinct-key count matches the catalog recomputed from
// scratch.
func checkIndexAgainstScan(t *testing.T, tbl *Table, ix *Index, col int, probes []Value, context string) {
	t.Helper()
	for _, v := range probes {
		var want [][]Value
		for _, row := range tbl.Rows {
			if row[col].Equal(v) {
				want = append(want, row)
			}
		}
		got := ix.Lookup(v)
		if len(got) != len(want) {
			t.Fatalf("%s: Lookup(%v) returned %d rows, scan finds %d", context, v, len(got), len(want))
		}
		for i := range want {
			if !RowsEqual(got[i], want[i]) {
				t.Fatalf("%s: Lookup(%v)[%d] = %v, scan order has %v", context, v, i, got[i], want[i])
			}
		}
	}
	distinct := make(map[string]struct{})
	for _, row := range tbl.Rows {
		distinct[hashKey(row[col])] = struct{}{}
	}
	if ix.NKeys() != len(distinct) {
		t.Fatalf("%s: NKeys = %d, scan counts %d", context, ix.NKeys(), len(distinct))
	}
}

// TestIndexMaintenanceRandomized drives random insert / Delete /
// DeleteWhere interleavings — with a tiny value domain so duplicate rows
// and multi-row buckets are common — and asserts after every operation
// that index lookups agree with a fresh scan.
func TestIndexMaintenanceRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tbl := NewTable("m", Column{"k", Int}, Column{"s", String})
	ixK, err := tbl.CreateIndex("k")
	if err != nil {
		t.Fatal(err)
	}
	ixS, err := tbl.CreateIndex("s")
	if err != nil {
		t.Fatal(err)
	}
	kDomain := []int64{1, 2, 3, 4, 5}
	sDomain := []string{"x", "y", "z"}
	probesK := make([]Value, 0, len(kDomain)+1)
	for _, k := range kDomain {
		probesK = append(probesK, IntVal(k))
	}
	probesK = append(probesK, IntVal(99))
	probesS := make([]Value, 0, len(sDomain)+1)
	for _, s := range sDomain {
		probesS = append(probesS, StrVal(s))
	}
	probesS = append(probesS, StrVal("absent"))
	for op := 0; op < 600; op++ {
		switch {
		case tbl.NumRows() == 0 || rng.Intn(3) != 0:
			if err := tbl.Insert(IntVal(kDomain[rng.Intn(len(kDomain))]), StrVal(sDomain[rng.Intn(len(sDomain))])); err != nil {
				t.Fatal(err)
			}
		case rng.Intn(10) == 0:
			k := kDomain[rng.Intn(len(kDomain))]
			tbl.DeleteWhere(func(row []Value) bool { return row[0].I == k })
		default:
			victim := append([]Value(nil), tbl.Rows[rng.Intn(tbl.NumRows())]...)
			if ok, err := tbl.Delete(victim...); err != nil || !ok {
				t.Fatalf("delete %v: ok=%v err=%v", victim, ok, err)
			}
		}
		ctx := fmt.Sprintf("after op %d (%d rows)", op, tbl.NumRows())
		checkIndexAgainstScan(t, tbl, ixK, 0, probesK, ctx)
		checkIndexAgainstScan(t, tbl, ixS, 1, probesS, ctx)
		// NDistinct must keep agreeing with the maintained bucket counts.
		for c, ix := range map[string]*Index{"k": ixK, "s": ixS} {
			d, err := tbl.NDistinct(c)
			if err != nil {
				t.Fatal(err)
			}
			if d != ix.NKeys() {
				t.Fatalf("%s: NDistinct(%s) = %d, index has %d keys", ctx, c, d, ix.NKeys())
			}
		}
	}
}

// TestIndexScanEquivalence asserts IndexScan and ScanAuto return
// row-for-row what ScanWorkers returns, on randomized tables, for single
// and multi-predicate scans.
func TestIndexScanEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	tbl := NewTable("e", Column{"a", Int}, Column{"b", Int}, Column{"c", String})
	for i := 0; i < 500; i++ {
		tbl.Insert(IntVal(int64(rng.Intn(20))), IntVal(int64(rng.Intn(8))), StrVal(fmt.Sprintf("s%d", rng.Intn(5))))
	}
	if _, err := tbl.CreateIndex("a"); err != nil {
		t.Fatal(err)
	}
	cols := []int{0, 2}
	names := []string{"A", "C"}
	for trial := 0; trial < 30; trial++ {
		preds := []Pred{{Col: 0, Value: IntVal(int64(rng.Intn(22)))}}
		if rng.Intn(2) == 0 {
			preds = append(preds, Pred{Col: 1, Value: IntVal(int64(rng.Intn(8)))})
		}
		want, err := ScanWorkers(tbl, preds, cols, names, 3)
		if err != nil {
			t.Fatal(err)
		}
		got, err := IndexScan(tbl, preds, cols, names)
		if err != nil {
			t.Fatal(err)
		}
		relsEqual(t, got, want, fmt.Sprintf("IndexScan trial %d", trial))
		auto, err := ScanAuto(tbl, preds, cols, names, 3)
		if err != nil {
			t.Fatal(err)
		}
		relsEqual(t, auto, want, fmt.Sprintf("ScanAuto trial %d", trial))
	}
}

func TestIndexScanErrors(t *testing.T) {
	_, _, ap := makeAuthors(t)
	if _, err := IndexScan(ap, []Pred{{Col: 1, Value: IntVal(10)}}, []int{0}, []string{"A"}); err == nil {
		t.Fatal("IndexScan without an index should error")
	}
	if _, err := ap.CreateIndex("pid"); err != nil {
		t.Fatal(err)
	}
	if _, err := IndexScan(ap, []Pred{{Col: 7, Value: IntVal(10)}}, []int{0}, []string{"A"}); err == nil {
		t.Fatal("IndexScan with out-of-range predicate column should error")
	}
	if _, err := IndexScan(ap, nil, []int{0}, []string{"A"}); err == nil {
		t.Fatal("IndexScan without predicates should error")
	}
}

// TestIndexedJoinEquivalence asserts IndexedJoin returns — schema and row
// order — exactly what the scan-then-MultiJoin pipeline returns, across
// randomized inputs including duplicate join values on both sides and
// selection predicates on the table side.
func TestIndexedJoinEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	tbl := NewTable("r", Column{"k", Int}, Column{"v", Int}, Column{"tag", String})
	for i := 0; i < 400; i++ {
		tbl.Insert(IntVal(int64(rng.Intn(30))), IntVal(int64(rng.Intn(6))), StrVal(fmt.Sprintf("t%d", rng.Intn(3))))
	}
	if _, err := tbl.CreateIndex("k"); err != nil {
		t.Fatal(err)
	}
	cols := []int{0, 1}
	names := []string{"K", "V"}
	for trial := 0; trial < 20; trial++ {
		cur := &Rel{Cols: []string{"X", "K"}}
		for i := 0; i < rng.Intn(40); i++ {
			cur.Rows = append(cur.Rows, []Value{IntVal(int64(i)), IntVal(int64(rng.Intn(35)))})
		}
		var preds []Pred
		if rng.Intn(2) == 0 {
			preds = []Pred{{Col: 1, Value: IntVal(int64(rng.Intn(6)))}}
		}
		scanned, err := ScanWorkers(tbl, preds, cols, names, 1)
		if err != nil {
			t.Fatal(err)
		}
		want, err := MultiJoinWorkers(cur, scanned, []string{"K"}, 3)
		if err != nil {
			t.Fatal(err)
		}
		got, err := IndexedJoin(cur, "K", tbl, preds, cols, names, 3)
		if err != nil {
			t.Fatal(err)
		}
		relsEqual(t, got, want, fmt.Sprintf("IndexedJoin trial %d", trial))
	}
	// Mutate the table (shifting row order) and re-check: the index must
	// still reproduce the scan order.
	for i := 0; i < 100; i++ {
		if rng.Intn(2) == 0 && tbl.NumRows() > 0 {
			victim := append([]Value(nil), tbl.Rows[rng.Intn(tbl.NumRows())]...)
			tbl.Delete(victim...)
		} else {
			tbl.Insert(IntVal(int64(rng.Intn(30))), IntVal(int64(rng.Intn(6))), StrVal("new"))
		}
	}
	cur := &Rel{Cols: []string{"X", "K"}}
	for i := 0; i < 25; i++ {
		cur.Rows = append(cur.Rows, []Value{IntVal(int64(i)), IntVal(int64(rng.Intn(35)))})
	}
	scanned, err := ScanWorkers(tbl, nil, cols, names, 1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := MultiJoinWorkers(cur, scanned, []string{"K"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := IndexedJoin(cur, "K", tbl, nil, cols, names, 2)
	if err != nil {
		t.Fatal(err)
	}
	relsEqual(t, got, want, "IndexedJoin after mutations")
}

func TestIndexedJoinErrors(t *testing.T) {
	_, _, ap := makeAuthors(t)
	cur := &Rel{Cols: []string{"P"}, Rows: [][]Value{{IntVal(10)}}}
	if _, err := IndexedJoin(cur, "P", ap, nil, []int{0, 1}, []string{"A", "P"}, 1); err == nil {
		t.Fatal("IndexedJoin without an index should error")
	}
	if _, err := ap.CreateIndex("pid"); err != nil {
		t.Fatal(err)
	}
	if _, err := IndexedJoin(cur, "Q", ap, nil, []int{0, 1}, []string{"A", "P"}, 1); err == nil {
		t.Fatal("IndexedJoin with join column missing from cur should error")
	}
	if _, err := IndexedJoin(cur, "P", ap, nil, []int{0, 1}, []string{"A", "B"}, 1); err == nil {
		t.Fatal("IndexedJoin with join column missing from projection should error")
	}
}

// TestScanWorkersPredOutOfRange is the regression test for the
// predicate-validation fix: an out-of-range predicate column must be an
// error like every other malformed-input path, not a panic inside the
// worker pool.
func TestScanWorkersPredOutOfRange(t *testing.T) {
	_, _, ap := makeAuthors(t)
	for _, col := range []int{-1, 2, 99} {
		if _, err := ScanWorkers(ap, []Pred{{Col: col, Value: IntVal(1)}}, []int{0}, []string{"A"}, 2); err == nil {
			t.Fatalf("predicate column %d: want error, got none", col)
		}
	}
	// In-range predicates still work.
	rel, err := ScanWorkers(ap, []Pred{{Col: 1, Value: IntVal(10)}}, []int{0}, []string{"A"}, 2)
	if err != nil || len(rel.Rows) != 3 {
		t.Fatalf("valid scan: rows=%v err=%v", rel, err)
	}
}

// TestHashJoinBuildSideSwap is the regression test for the build-side
// swap bug: the output schema (a's columns, then b's minus the join
// column) and the row order must be identical whichever side is smaller.
func TestHashJoinBuildSideSwap(t *testing.T) {
	small := &Rel{Cols: []string{"x", "p"}, Rows: [][]Value{
		{IntVal(1), IntVal(10)},
		{IntVal(2), IntVal(20)},
	}}
	big := &Rel{Cols: []string{"p", "y"}, Rows: [][]Value{
		{IntVal(10), IntVal(100)},
		{IntVal(20), IntVal(200)},
		{IntVal(10), IntVal(101)},
		{IntVal(30), IntVal(300)},
	}}
	wantCols := []string{"x", "p", "y"}
	wantRows := [][]Value{
		{IntVal(1), IntVal(10), IntVal(100)},
		{IntVal(2), IntVal(20), IntVal(200)},
		{IntVal(1), IntVal(10), IntVal(101)},
	}
	// len(b) > len(a): the pre-fix fast path (build on a).
	got, err := HashJoin(small, big, "p", "p")
	if err != nil {
		t.Fatal(err)
	}
	relsEqual(t, got, &Rel{Cols: wantCols, Rows: wantRows}, "a smaller")

	// len(b) < len(a): the buggy path used to return b's columns first.
	wantCols2 := []string{"p", "y", "x"}
	wantRows2 := [][]Value{
		{IntVal(10), IntVal(100), IntVal(1)},
		{IntVal(10), IntVal(101), IntVal(1)},
		{IntVal(20), IntVal(200), IntVal(2)},
	}
	got2, err := HashJoin(big, small, "p", "p")
	if err != nil {
		t.Fatal(err)
	}
	relsEqual(t, got2, &Rel{Cols: wantCols2, Rows: wantRows2}, "b smaller")
}

// TestHashJoinOrderIndependentOfCardinality grows one side past the other
// and asserts the already-present rows keep their schema and relative
// order — i.e. the internal build-side choice never leaks into the
// contract.
func TestHashJoinOrderIndependentOfCardinality(t *testing.T) {
	a := &Rel{Cols: []string{"x", "p"}}
	b := &Rel{Cols: []string{"p", "y"}}
	for i := 0; i < 3; i++ {
		a.Rows = append(a.Rows, []Value{IntVal(int64(i)), IntVal(int64(i % 2))})
		b.Rows = append(b.Rows, []Value{IntVal(int64(i % 2)), IntVal(int64(100 + i))})
	}
	before, err := HashJoin(a, b, "p", "p")
	if err != nil {
		t.Fatal(err)
	}
	// Make a much larger than b: flips the build side, must not flip the
	// result prefix (the extra rows join nothing).
	for i := 0; i < 50; i++ {
		a.Rows = append(a.Rows, []Value{IntVal(int64(1000 + i)), IntVal(9999)})
	}
	after, err := HashJoin(a, b, "p", "p")
	if err != nil {
		t.Fatal(err)
	}
	relsEqual(t, after, before, "larger a")
}

// TestMultiJoinEmptyShared is the regression test for the silent
// cross-product degeneration: an empty shared list must be an explicit
// error, and CrossWorkers is the spelled-out replacement.
func TestMultiJoinEmptyShared(t *testing.T) {
	a := &Rel{Cols: []string{"x"}, Rows: [][]Value{{IntVal(1)}, {IntVal(2)}}}
	b := &Rel{Cols: []string{"y"}, Rows: [][]Value{{IntVal(10)}, {IntVal(20)}, {IntVal(30)}}}
	if _, err := MultiJoin(a, b, nil); err == nil {
		t.Fatal("MultiJoin with empty shared list should error")
	}
	if _, err := MultiJoinWorkers(a, b, []string{}, 4); err == nil {
		t.Fatal("MultiJoinWorkers with empty shared list should error")
	}
	cross, err := CrossWorkers(a, b, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := &Rel{Cols: []string{"x", "y"}, Rows: [][]Value{
		{IntVal(1), IntVal(10)}, {IntVal(2), IntVal(10)},
		{IntVal(1), IntVal(20)}, {IntVal(2), IntVal(20)},
		{IntVal(1), IntVal(30)}, {IntVal(2), IntVal(30)},
	}}
	relsEqual(t, cross, want, "CrossWorkers")
	// The cross product is worker-count independent like every operator.
	serial, err := CrossWorkers(a, b, 1)
	if err != nil {
		t.Fatal(err)
	}
	relsEqual(t, cross, serial, "CrossWorkers parallel vs serial")
}
