// Package relstore is GraphGen's relational substrate: an in-memory
// relational engine with typed tables, a statistics catalog, secondary
// hash indexes (index.go), and the handful of operators graph extraction
// needs (scan, selection, projection, equi-join, distinct). It stands in
// for the PostgreSQL instance the paper runs against; the extraction
// planner only needs cardinalities and per-column distinct counts
// (pg_stats' n_distinct), which the catalog provides exactly, plus the
// index access paths PostgreSQL would answer equality predicates and
// equi-joins with, which IndexScan/ScanAuto/IndexedJoin provide.
//
// The row-parallel operators (ScanWorkers, MultiJoinWorkers) partition
// their input across the shared worker pool and concatenate per-chunk
// outputs in chunk order, so they return row-for-row the same relation as
// their serial counterparts for any worker count.
package relstore

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Type is the type of a column.
type Type uint8

// Column types. Graph extraction joins on integer keys; string columns
// carry node properties.
const (
	Int Type = iota
	String
)

// Value is a single relational value: an int64 or a string.
type Value struct {
	I int64
	S string
	T Type
}

// IntVal returns an Int Value.
func IntVal(i int64) Value { return Value{I: i, T: Int} }

// StrVal returns a String Value.
func StrVal(s string) Value { return Value{S: s, T: String} }

// Equal reports whether two values are equal (same type and content).
func (v Value) Equal(o Value) bool {
	if v.T != o.T {
		return false
	}
	if v.T == Int {
		return v.I == o.I
	}
	return v.S == o.S
}

// AppendKey writes an unambiguous encoding of v to sb, for composite
// hash/dedup keys: integers render as digits, strings are
// length-prefixed, so a value containing a caller's separator byte can
// never shift content between key components. Callers append their own
// separator between components. This is the single key encoding shared
// by the relational operators (joins, distinct) and the Datalog
// evaluator's tuple sets — extend it here, in one place, if Value ever
// grows a new type.
func (v Value) AppendKey(sb *strings.Builder) {
	if v.T == Int {
		sb.WriteByte('i')
		sb.WriteString(strconv.FormatInt(v.I, 10))
	} else {
		sb.WriteByte('s')
		sb.WriteString(strconv.Itoa(len(v.S)))
		sb.WriteByte(':')
		sb.WriteString(v.S)
	}
}

// Compare totally orders two values: -1, 0, or +1. Ints order before
// Strings (a deterministic cross-type convention for the Datalog
// comparison literals); same-type values compare numerically or
// lexicographically.
func (v Value) Compare(o Value) int {
	if v.T != o.T {
		if v.T == Int {
			return -1
		}
		return 1
	}
	if v.T == Int {
		switch {
		case v.I < o.I:
			return -1
		case v.I > o.I:
			return 1
		default:
			return 0
		}
	}
	return strings.Compare(v.S, o.S)
}

// String renders the value.
func (v Value) String() string {
	if v.T == Int {
		return fmt.Sprintf("%d", v.I)
	}
	return v.S
}

// Column describes a table column.
type Column struct {
	Name string
	Type Type
}

// ChangeOp discriminates the kinds of single-tuple changes a table emits.
type ChangeOp uint8

// Change operations.
const (
	// OpInsert is a tuple insertion.
	OpInsert ChangeOp = iota
	// OpDelete is a tuple deletion.
	OpDelete
)

// String renders the operation.
func (op ChangeOp) String() string {
	if op == OpInsert {
		return "insert"
	}
	return "delete"
}

// Change is one single-tuple mutation of a table, delivered to subscribers
// after the table has been updated (so subscribers observe the new state).
// Row is the stored tuple; subscribers must not mutate it.
type Change struct {
	Op  ChangeOp
	Row []Value
}

// Table is a named relation with a fixed schema and row storage. Tables
// have no internal locking: every mutation is serialized by the owning
// server's dbMu (see internal/server), which the external guard
// annotations below record — graphlint enforces the mutation choke
// point (methods of this package only), lockorder enforces the holding.
type Table struct {
	Name string
	Cols []Column
	// graphlint:guardedby external:dbMu
	Rows [][]Value

	// colIdx is immutable after NewTable (a free function — hence no
	// external guard: construction precedes sharing).
	colIdx map[string]int
	// stats
	// graphlint:guardedby external:dbMu
	statsDirty bool
	// graphlint:guardedby external:dbMu
	nDistinct []int
	// secondary hash indexes by column position (index.go), maintained
	// in notify before change-log subscribers run.
	// graphlint:guardedby external:dbMu
	indexes map[int]*Index
	// change log subscribers; nil entries are cancelled slots.
	// graphlint:guardedby external:dbMu
	subs []func(Change)
}

// NewTable creates an empty table.
func NewTable(name string, cols ...Column) *Table {
	t := &Table{Name: name, Cols: cols, colIdx: make(map[string]int, len(cols)), statsDirty: true}
	for i, c := range cols {
		t.colIdx[strings.ToLower(c.Name)] = i
	}
	return t
}

// ColIndex returns the index of the named column.
func (t *Table) ColIndex(name string) (int, bool) {
	i, ok := t.colIdx[strings.ToLower(name)]
	return i, ok
}

// Insert appends a row. The row must match the schema arity; types are
// trusted (the generators construct well-typed rows).
func (t *Table) Insert(row ...Value) error {
	if len(row) != len(t.Cols) {
		return fmt.Errorf("relstore: %s: row arity %d, schema arity %d", t.Name, len(row), len(t.Cols))
	}
	t.Rows = append(t.Rows, row)
	t.statsDirty = true
	t.notify(Change{Op: OpInsert, Row: row})
	return nil
}

// Delete removes the first row equal to the given tuple (all columns) and
// reports whether one was found. Duplicate rows are legal in a relation
// here, so a single Delete removes exactly one copy — the change-log
// counterpart of one Insert.
func (t *Table) Delete(row ...Value) (bool, error) {
	if len(row) != len(t.Cols) {
		return false, fmt.Errorf("relstore: %s: row arity %d, schema arity %d", t.Name, len(row), len(t.Cols))
	}
	for i, r := range t.Rows {
		if RowsEqual(r, row) {
			t.Rows = append(t.Rows[:i], t.Rows[i+1:]...)
			t.statsDirty = true
			t.notify(Change{Op: OpDelete, Row: r})
			return true, nil
		}
	}
	return false, nil
}

// DeleteWhere removes every row for which pred returns true and returns the
// number removed. Subscribers receive one Change per removed row, in table
// order, each delivered after that row is gone.
func (t *Table) DeleteWhere(pred func(row []Value) bool) int {
	removed := 0
	for i := 0; i < len(t.Rows); {
		if !pred(t.Rows[i]) {
			i++
			continue
		}
		r := t.Rows[i]
		t.Rows = append(t.Rows[:i], t.Rows[i+1:]...)
		t.statsDirty = true
		removed++
		t.notify(Change{Op: OpDelete, Row: r})
	}
	return removed
}

// Subscribe registers fn to be called synchronously after every single-tuple
// change to the table, and returns a cancel function. Callbacks run on the
// mutating goroutine; the table is not safe for concurrent mutation, so
// callbacks never race with each other. Cancelled slots are reused, so
// repeated subscribe/cancel cycles do not grow the subscriber list.
func (t *Table) Subscribe(fn func(Change)) (cancel func()) {
	slot := -1
	for i, s := range t.subs {
		if s == nil {
			slot = i
			break
		}
	}
	if slot < 0 {
		t.subs = append(t.subs, fn)
		slot = len(t.subs) - 1
	} else {
		t.subs[slot] = fn
	}
	cancelled := false
	return func() {
		if !cancelled {
			cancelled = true
			t.subs[slot] = nil
		}
	}
}

// notify is the single-tuple mutation choke point: every index is brought
// up to date first, then the change-log subscribers run — so a subscriber
// (e.g. live-graph delta evaluation) that reads the table through an index
// always observes the post-change state, the same convention subscribers
// already rely on for the row storage itself.
func (t *Table) notify(ch Change) {
	for _, ix := range t.indexes {
		ix.apply(ch)
	}
	for _, fn := range t.subs {
		if fn != nil {
			fn(ch)
		}
	}
}

// RowsEqual reports whether two rows are element-wise equal.
func RowsEqual(a, b []Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// NumRows returns the table cardinality.
func (t *Table) NumRows() int { return len(t.Rows) }

// analyze recomputes per-column distinct counts (the catalog statistics the
// planner consults, PostgreSQL's pg_stats.n_distinct).
func (t *Table) analyze() {
	t.nDistinct = make([]int, len(t.Cols))
	for c := range t.Cols {
		if t.Cols[c].Type == Int {
			seen := make(map[int64]struct{}, len(t.Rows))
			for _, r := range t.Rows {
				seen[r[c].I] = struct{}{}
			}
			t.nDistinct[c] = len(seen)
		} else {
			seen := make(map[string]struct{}, len(t.Rows))
			for _, r := range t.Rows {
				seen[r[c].S] = struct{}{}
			}
			t.nDistinct[c] = len(seen)
		}
	}
	t.statsDirty = false
}

// NDistinct returns the number of distinct values in the named column.
// Indexed columns answer in O(1) from the incrementally-maintained bucket
// count (identical to the analyze result, since both count distinct
// values of the current rows); other columns fall back to the lazily
// recomputed catalog scan.
func (t *Table) NDistinct(col string) (int, error) {
	i, ok := t.ColIndex(col)
	if !ok {
		return 0, fmt.Errorf("relstore: %s has no column %q", t.Name, col)
	}
	if ix := t.indexes[i]; ix != nil {
		return ix.NKeys(), nil
	}
	if t.statsDirty {
		t.analyze()
	}
	return t.nDistinct[i], nil
}

// DB is a named collection of tables.
type DB struct {
	tables map[string]*Table
}

// NewDB creates an empty database.
func NewDB() *DB { return &DB{tables: make(map[string]*Table)} }

// Create adds a new table to the database.
func (db *DB) Create(name string, cols ...Column) (*Table, error) {
	key := strings.ToLower(name)
	if _, ok := db.tables[key]; ok {
		return nil, fmt.Errorf("relstore: table %q already exists", name)
	}
	t := NewTable(name, cols...)
	db.tables[key] = t
	return t, nil
}

// Attach registers an existing table under its name, sharing storage with
// every other DB it is attached to. The Datalog program evaluator uses this
// to build an overlay database: the base tables attached by reference plus
// freshly created temporary tables for the derived predicates, so the
// extraction planner can resolve both without copying any base rows. The
// overlay must not outlive mutations it does not observe — the evaluator
// builds, uses, and discards it within one evaluation.
func (db *DB) Attach(t *Table) error {
	key := strings.ToLower(t.Name)
	if _, ok := db.tables[key]; ok {
		return fmt.Errorf("relstore: table %q already exists", t.Name)
	}
	db.tables[key] = t
	return nil
}

// Table returns the named table.
func (db *DB) Table(name string) (*Table, error) {
	t, ok := db.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("relstore: table %q not found", name)
	}
	return t, nil
}

// TableNames lists the tables in sorted order.
func (db *DB) TableNames() []string {
	names := make([]string, 0, len(db.tables))
	for _, t := range db.tables {
		names = append(names, t.Name)
	}
	sort.Strings(names)
	return names
}

// TotalRows returns the sum of all table cardinalities.
func (db *DB) TotalRows() int {
	n := 0
	for _, t := range db.tables {
		n += len(t.Rows)
	}
	return n
}
