// Package relstore is GraphGen's relational substrate: an in-memory
// relational engine with typed tables, a statistics catalog, and the
// handful of operators graph extraction needs (scan, selection, projection,
// equi-join, distinct). It stands in for the PostgreSQL instance the paper
// runs against; the extraction planner only needs cardinalities and
// per-column distinct counts (pg_stats' n_distinct), which the catalog
// provides exactly.
//
// The row-parallel operators (ScanWorkers, MultiJoinWorkers) partition
// their input across the shared worker pool and concatenate per-chunk
// outputs in chunk order, so they return row-for-row the same relation as
// their serial counterparts for any worker count.
package relstore

import (
	"fmt"
	"sort"
	"strings"
)

// Type is the type of a column.
type Type uint8

// Column types. Graph extraction joins on integer keys; string columns
// carry node properties.
const (
	Int Type = iota
	String
)

// Value is a single relational value: an int64 or a string.
type Value struct {
	I int64
	S string
	T Type
}

// IntVal returns an Int Value.
func IntVal(i int64) Value { return Value{I: i, T: Int} }

// StrVal returns a String Value.
func StrVal(s string) Value { return Value{S: s, T: String} }

// Equal reports whether two values are equal (same type and content).
func (v Value) Equal(o Value) bool {
	if v.T != o.T {
		return false
	}
	if v.T == Int {
		return v.I == o.I
	}
	return v.S == o.S
}

// String renders the value.
func (v Value) String() string {
	if v.T == Int {
		return fmt.Sprintf("%d", v.I)
	}
	return v.S
}

// Column describes a table column.
type Column struct {
	Name string
	Type Type
}

// Table is a named relation with a fixed schema and row storage.
type Table struct {
	Name string
	Cols []Column
	Rows [][]Value

	colIdx map[string]int
	// stats
	statsDirty bool
	nDistinct  []int
}

// NewTable creates an empty table.
func NewTable(name string, cols ...Column) *Table {
	t := &Table{Name: name, Cols: cols, colIdx: make(map[string]int, len(cols)), statsDirty: true}
	for i, c := range cols {
		t.colIdx[strings.ToLower(c.Name)] = i
	}
	return t
}

// ColIndex returns the index of the named column.
func (t *Table) ColIndex(name string) (int, bool) {
	i, ok := t.colIdx[strings.ToLower(name)]
	return i, ok
}

// Insert appends a row. The row must match the schema arity; types are
// trusted (the generators construct well-typed rows).
func (t *Table) Insert(row ...Value) error {
	if len(row) != len(t.Cols) {
		return fmt.Errorf("relstore: %s: row arity %d, schema arity %d", t.Name, len(row), len(t.Cols))
	}
	t.Rows = append(t.Rows, row)
	t.statsDirty = true
	return nil
}

// NumRows returns the table cardinality.
func (t *Table) NumRows() int { return len(t.Rows) }

// analyze recomputes per-column distinct counts (the catalog statistics the
// planner consults, PostgreSQL's pg_stats.n_distinct).
func (t *Table) analyze() {
	t.nDistinct = make([]int, len(t.Cols))
	for c := range t.Cols {
		if t.Cols[c].Type == Int {
			seen := make(map[int64]struct{}, len(t.Rows))
			for _, r := range t.Rows {
				seen[r[c].I] = struct{}{}
			}
			t.nDistinct[c] = len(seen)
		} else {
			seen := make(map[string]struct{}, len(t.Rows))
			for _, r := range t.Rows {
				seen[r[c].S] = struct{}{}
			}
			t.nDistinct[c] = len(seen)
		}
	}
	t.statsDirty = false
}

// NDistinct returns the number of distinct values in the named column.
func (t *Table) NDistinct(col string) (int, error) {
	i, ok := t.ColIndex(col)
	if !ok {
		return 0, fmt.Errorf("relstore: %s has no column %q", t.Name, col)
	}
	if t.statsDirty {
		t.analyze()
	}
	return t.nDistinct[i], nil
}

// DB is a named collection of tables.
type DB struct {
	tables map[string]*Table
}

// NewDB creates an empty database.
func NewDB() *DB { return &DB{tables: make(map[string]*Table)} }

// Create adds a new table to the database.
func (db *DB) Create(name string, cols ...Column) (*Table, error) {
	key := strings.ToLower(name)
	if _, ok := db.tables[key]; ok {
		return nil, fmt.Errorf("relstore: table %q already exists", name)
	}
	t := NewTable(name, cols...)
	db.tables[key] = t
	return t, nil
}

// Table returns the named table.
func (db *DB) Table(name string) (*Table, error) {
	t, ok := db.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("relstore: table %q not found", name)
	}
	return t, nil
}

// TableNames lists the tables in sorted order.
func (db *DB) TableNames() []string {
	names := make([]string, 0, len(db.tables))
	for _, t := range db.tables {
		names = append(names, t.Name)
	}
	sort.Strings(names)
	return names
}

// TotalRows returns the sum of all table cardinalities.
func (db *DB) TotalRows() int {
	n := 0
	for _, t := range db.tables {
		n += len(t.Rows)
	}
	return n
}
