package relstore

import (
	"strings"
	"testing"
)

func TestLoadCSV(t *testing.T) {
	db := NewDB()
	src := "id,name,age\n1,ann,30\n2,bob,41\n"
	tbl, err := db.LoadCSV("People", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 2 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	if tbl.Cols[0].Type != Int || tbl.Cols[1].Type != String || tbl.Cols[2].Type != Int {
		t.Fatalf("inferred types wrong: %+v", tbl.Cols)
	}
	if d, _ := tbl.NDistinct("id"); d != 2 {
		t.Fatalf("NDistinct(id) = %d", d)
	}
	// The table is registered in the database.
	if _, err := db.Table("people"); err != nil {
		t.Fatal(err)
	}
}

func TestLoadCSVHeaderOnly(t *testing.T) {
	db := NewDB()
	tbl, err := db.LoadCSV("Empty", strings.NewReader("a,b\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 0 || len(tbl.Cols) != 2 {
		t.Fatalf("tbl = %+v", tbl)
	}
}

func TestLoadCSVErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"empty", ""},
		{"short row", "a,b\n1\n"},
		{"bad int later", "a\n1\nxyz\n"},
	}
	for _, c := range cases {
		db := NewDB()
		if _, err := db.LoadCSV("T", strings.NewReader(c.src)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	// Duplicate table name.
	db := NewDB()
	if _, err := db.LoadCSV("T", strings.NewReader("a\n1\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.LoadCSV("T", strings.NewReader("a\n1\n")); err == nil {
		t.Error("expected duplicate-table error")
	}
}

func TestLoadCSVEndToEnd(t *testing.T) {
	// CSV in, graph out: the adoption path for real data.
	db := NewDB()
	if _, err := db.LoadCSV("Author", strings.NewReader("id,name\n1,ann\n2,bob\n3,cat\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.LoadCSV("AuthorPub", strings.NewReader("aid,pid\n1,10\n2,10\n3,11\n1,11\n")); err != nil {
		t.Fatal(err)
	}
	ap, _ := db.Table("AuthorPub")
	if d, _ := ap.NDistinct("pid"); d != 2 {
		t.Fatalf("NDistinct(pid) = %d", d)
	}
}
