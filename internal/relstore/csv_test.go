package relstore

import (
	"strings"
	"testing"
)

func TestLoadCSV(t *testing.T) {
	db := NewDB()
	src := "id,name,age\n1,ann,30\n2,bob,41\n"
	tbl, err := db.LoadCSV("People", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 2 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	if tbl.Cols[0].Type != Int || tbl.Cols[1].Type != String || tbl.Cols[2].Type != Int {
		t.Fatalf("inferred types wrong: %+v", tbl.Cols)
	}
	if d, _ := tbl.NDistinct("id"); d != 2 {
		t.Fatalf("NDistinct(id) = %d", d)
	}
	// The table is registered in the database.
	if _, err := db.Table("people"); err != nil {
		t.Fatal(err)
	}
}

func TestLoadCSVHeaderOnly(t *testing.T) {
	db := NewDB()
	tbl, err := db.LoadCSV("Empty", strings.NewReader("a,b\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 0 || len(tbl.Cols) != 2 {
		t.Fatalf("tbl = %+v", tbl)
	}
}

func TestLoadCSVErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"empty", ""},
		{"short row", "a,b\n1\n"},
	}
	for _, c := range cases {
		db := NewDB()
		if _, err := db.LoadCSV("T", strings.NewReader(c.src)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	// Duplicate table name.
	db := NewDB()
	if _, err := db.LoadCSV("T", strings.NewReader("a\n1\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.LoadCSV("T", strings.NewReader("a\n1\n")); err == nil {
		t.Error("expected duplicate-table error")
	}
}

func TestLoadCSVMixedColumn(t *testing.T) {
	// A column whose first rows are integer-like but whose later rows are
	// not must demote to String instead of failing the load.
	db := NewDB()
	tbl, err := db.LoadCSV("T", strings.NewReader("id,code\n1,42\n2,7a\n3,9\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Cols[0].Type != Int {
		t.Fatalf("id column = %v, want Int", tbl.Cols[0].Type)
	}
	if tbl.Cols[1].Type != String {
		t.Fatalf("code column = %v, want String", tbl.Cols[1].Type)
	}
	if tbl.NumRows() != 3 {
		t.Fatalf("rows = %d, want 3", tbl.NumRows())
	}
	// Integer-looking values in the demoted column load as strings.
	if got := tbl.Rows[0][1]; got.T != String || got.S != "42" {
		t.Fatalf("row 0 code = %+v, want string \"42\"", got)
	}
}

func TestLoadCSVEndToEnd(t *testing.T) {
	// CSV in, graph out: the adoption path for real data.
	db := NewDB()
	if _, err := db.LoadCSV("Author", strings.NewReader("id,name\n1,ann\n2,bob\n3,cat\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.LoadCSV("AuthorPub", strings.NewReader("aid,pid\n1,10\n2,10\n3,11\n1,11\n")); err != nil {
		t.Fatal(err)
	}
	ap, _ := db.Table("AuthorPub")
	if d, _ := ap.NDistinct("pid"); d != 2 {
		t.Fatalf("NDistinct(pid) = %d", d)
	}
}
