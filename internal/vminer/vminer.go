// Package vminer implements the Virtual Node Miner baseline of Buehrer &
// Chellapilla (WSDM'08) that the paper compares against in Section 6.1.1:
// a pattern-mining graph compressor that finds bicliques (node groups A, B
// with every a->b edge present), replaces each with a virtual node
// (a -> V -> b), and iterates over multiple passes.
//
// Faithful to the comparison's point, VMiner operates on the EXPANDED graph:
// it cannot exploit the implicit condensed structure in the database, so a
// C-DUP input must be expanded first (Mine does this), which is exactly why
// it is infeasible for the paper's larger datasets.
package vminer

import (
	"sort"

	"graphgen/internal/core"
)

// Options tunes the miner.
type Options struct {
	// Passes bounds the number of mining passes (paper-guided default 4).
	Passes int
	// MinShingles is the number of min-hash shingles used to cluster
	// nodes with similar neighborhoods (default 2).
	MinShingles int
	// MaxEdges guards the expansion step; 0 means unlimited.
	MaxEdges int64
}

// Stats reports a mining run.
type Stats struct {
	// ExpandedEdges is the size of the expanded graph VMiner had to
	// materialize before compressing.
	ExpandedEdges int64
	// VirtualNodesCreated counts mined bicliques.
	VirtualNodesCreated int
	// EdgesSaved is the reduction in physical edges.
	EdgesSaved int64
}

// Mine expands the input graph and compresses it by biclique mining. The
// result is duplicate-free (DEDUP-1 semantics: at most one path per pair).
func Mine(g *core.Graph, opts Options) (*core.Graph, Stats, error) {
	if opts.Passes <= 0 {
		opts.Passes = 4
	}
	if opts.MinShingles <= 0 {
		opts.MinShingles = 2
	}
	var st Stats
	exp, err := g.Expand(opts.MaxEdges)
	if err != nil {
		return nil, st, err
	}
	st.ExpandedEdges = exp.RepEdges()
	for pass := 0; pass < opts.Passes; pass++ {
		if minePass(exp, &st, int64(pass)) == 0 {
			break
		}
	}
	exp.SetMode(core.DEDUP1)
	exp.SortAdjacency()
	st.EdgesSaved = st.ExpandedEdges - exp.RepEdges()
	return exp, st, nil
}

// minePass clusters nodes by min-hash shingles of their direct out-neighbor
// lists and extracts one biclique per cluster when profitable. Returns the
// number of virtual nodes created.
func minePass(exp *core.Graph, st *Stats, salt int64) int {
	clusters := make(map[uint64][]int32)
	exp.ForEachReal(func(r int32) bool {
		outs := exp.OutDirect(r)
		if len(outs) < 2 {
			return true
		}
		sig := shingleSignature(outs, salt)
		clusters[sig] = append(clusters[sig], r)
		return true
	})
	// Deterministic cluster order.
	sigs := make([]uint64, 0, len(clusters))
	for s := range clusters {
		sigs = append(sigs, s)
	}
	sort.Slice(sigs, func(i, j int) bool { return sigs[i] < sigs[j] })

	created := 0
	for _, sig := range sigs {
		group := clusters[sig]
		if len(group) < 2 {
			continue
		}
		// Biclique candidate: sources = group, targets = intersection
		// of their direct out-neighbors.
		inter := append([]int32(nil), exp.OutDirect(group[0])...)
		for _, r := range group[1:] {
			inter = intersect(inter, exp.OutDirect(r))
			if len(inter) < 2 {
				break
			}
		}
		if len(inter) < 2 {
			continue
		}
		nA, nB := len(group), len(inter)
		// Profitable when |A|*|B| direct edges collapse into
		// |A| + |B| virtual edges.
		if nA*nB <= nA+nB+1 {
			continue
		}
		v := exp.AddVirtualNode(1)
		for _, a := range group {
			for _, b := range inter {
				exp.RemoveDirectEdgeIdx(a, b)
			}
			exp.ConnectRealToVirt(a, v)
		}
		for _, b := range inter {
			exp.ConnectVirtToReal(v, b)
		}
		created++
		st.VirtualNodesCreated++
	}
	return created
}

// shingleSignature computes a small min-hash over the neighbor list; nodes
// sharing many neighbors likely collide.
func shingleSignature(outs []int32, salt int64) uint64 {
	var m1, m2 uint64 = 1<<64 - 1, 1<<64 - 1
	for _, t := range outs {
		h := mix(uint64(t) + uint64(salt)*0x9e3779b97f4a7c15)
		if h < m1 {
			m1 = h
		}
		h2 := mix(h ^ 0xbf58476d1ce4e5b9)
		if h2 < m2 {
			m2 = h2
		}
	}
	return m1<<32 ^ m2
}

func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

func intersect(a, b []int32) []int32 {
	set := make(map[int32]struct{}, len(b))
	for _, x := range b {
		set[x] = struct{}{}
	}
	out := a[:0]
	for _, x := range a {
		if _, ok := set[x]; ok {
			out = append(out, x)
		}
	}
	return out
}
