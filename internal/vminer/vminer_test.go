package vminer

import (
	"errors"
	"testing"

	"graphgen/internal/core"
	"graphgen/internal/datagen"
)

func TestMinePreservesEdgesAndDeduplicates(t *testing.T) {
	g := datagen.Condensed(datagen.CondensedConfig{
		Seed: 3, RealNodes: 60, VirtualNodes: 25, MeanSize: 6, StdDev: 2,
	})
	mined, st, err := Mine(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := g.EdgeSetByID()
	got := mined.EdgeSetByID()
	if len(want) != len(got) {
		t.Fatalf("edges = %d, want %d", len(got), len(want))
	}
	for e := range want {
		if _, ok := got[e]; !ok {
			t.Fatalf("edge %v lost", e)
		}
	}
	if err := mined.VerifyNoDuplicates(); err != nil {
		t.Fatal(err)
	}
	if st.ExpandedEdges == 0 {
		t.Fatal("VMiner must report the expansion it was forced to do")
	}
}

func TestMineFindsBicliques(t *testing.T) {
	// A graph that is one big clique: mining must find structure.
	g := core.New(core.CDUP)
	g.Symmetric = true
	for i := int64(1); i <= 20; i++ {
		g.AddRealNode(i)
	}
	v := g.AddVirtualNode(1)
	for r := int32(0); r < 20; r++ {
		g.AddMember(v, r)
	}
	mined, st, err := Mine(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.VirtualNodesCreated == 0 {
		t.Fatal("no bicliques mined from a 20-clique")
	}
	if st.EdgesSaved <= 0 {
		t.Fatalf("edges saved = %d, want > 0", st.EdgesSaved)
	}
	if mined.RepEdges() >= st.ExpandedEdges {
		t.Fatalf("no compression: %d >= %d", mined.RepEdges(), st.ExpandedEdges)
	}
}

func TestMineRespectsExpansionBudget(t *testing.T) {
	g := datagen.Condensed(datagen.CondensedConfig{
		Seed: 4, RealNodes: 50, VirtualNodes: 20, MeanSize: 8, StdDev: 2,
	})
	_, _, err := Mine(g, Options{MaxEdges: 5})
	if !errors.Is(err, core.ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge (VMiner must expand first)", err)
	}
}

func TestMineWorseThanCondensedInput(t *testing.T) {
	// The paper's headline comparison: on graphs born condensed, VMiner's
	// mined representation is no better than the condensed one it never
	// saw (usually far worse).
	g := datagen.Condensed(datagen.CondensedConfig{
		Seed: 5, RealNodes: 80, VirtualNodes: 10, MeanSize: 15, StdDev: 3,
	})
	mined, _, err := Mine(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if mined.RepEdges() < g.RepEdges() {
		t.Fatalf("VMiner (%d edges) beat the native condensed form (%d); check the miner",
			mined.RepEdges(), g.RepEdges())
	}
}
