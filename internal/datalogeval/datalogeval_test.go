package datalogeval

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"graphgen/internal/datalog"
	"graphgen/internal/relstore"
)

// --- fixtures ---

// edgeDB builds E(src, dst) plus N(id) listing every node.
func edgeDB(t *testing.T, n int, edges [][2]int64) *relstore.DB {
	t.Helper()
	db := relstore.NewDB()
	nt, err := db.Create("N", relstore.Column{Name: "id", Type: relstore.Int})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < int64(n); i++ {
		if err := nt.Insert(relstore.IntVal(i)); err != nil {
			t.Fatal(err)
		}
	}
	et, err := db.Create("E",
		relstore.Column{Name: "src", Type: relstore.Int},
		relstore.Column{Name: "dst", Type: relstore.Int})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range edges {
		if err := et.Insert(relstore.IntVal(e[0]), relstore.IntVal(e[1])); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// randomEdges samples m distinct directed edges over n nodes.
func randomEdges(rng *rand.Rand, n, m int) [][2]int64 {
	seen := make(map[[2]int64]struct{}, m)
	var out [][2]int64
	for len(out) < m {
		e := [2]int64{int64(rng.Intn(n)), int64(rng.Intn(n))}
		if e[0] == e[1] {
			continue
		}
		if _, dup := seen[e]; dup {
			continue
		}
		seen[e] = struct{}{}
		out = append(out, e)
	}
	return out
}

// reachPairs computes the transitive closure of edges independently of the
// evaluator (per-source BFS over an adjacency list).
func reachPairs(n int, edges [][2]int64) map[[2]int64]struct{} {
	adj := make(map[int64][]int64)
	for _, e := range edges {
		adj[e[0]] = append(adj[e[0]], e[1])
	}
	out := make(map[[2]int64]struct{})
	for s := int64(0); s < int64(n); s++ {
		visited := map[int64]struct{}{}
		queue := []int64{s}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range adj[u] {
				if _, seen := visited[v]; seen {
					continue
				}
				visited[v] = struct{}{}
				out[[2]int64{s, v}] = struct{}{}
				queue = append(queue, v)
			}
		}
	}
	return out
}

const tcProgram = `
TC(A, B) :- E(A, B).
TC(A, C) :- TC(A, B), E(B, C).
Nodes(A) :- N(A).
Edges(A, B) :- TC(A, B).
`

func mustEval(t *testing.T, db *relstore.DB, src string, opts Options) *Result {
	t.Helper()
	ps, err := datalog.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Evaluate(db, ps, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// tableTuples returns a table's rows as sorted strings for comparison.
func tableTuples(t *testing.T, db *relstore.DB, name string) []string {
	t.Helper()
	tab, err := db.Table(name)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, 0, len(tab.Rows))
	for _, r := range tab.Rows {
		out = append(out, rowKey(r))
	}
	sort.Strings(out)
	return out
}

func equalTuples(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// --- correctness ---

// TestTransitiveClosureRandomized asserts the evaluator's fixpoint equals
// an independently computed transitive closure on randomized graphs, for
// both the semi-naive and naive modes and several worker counts.
func TestTransitiveClosureRandomized(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(30)
		edges := randomEdges(rng, n, n+rng.Intn(2*n))
		want := reachPairs(n, edges)

		var first []string
		for _, opt := range []Options{{}, {Naive: true}, {Workers: 1}, {Workers: 4}} {
			res := mustEval(t, edgeDB(t, n, edges), tcProgram, opt)
			got := tableTuples(t, res.DB, "tc")
			if len(got) != len(want) {
				t.Fatalf("seed %d opts %+v: %d tuples, want %d", seed, opt, len(got), len(want))
			}
			for pair := range want {
				key := rowKey([]relstore.Value{relstore.IntVal(pair[0]), relstore.IntVal(pair[1])})
				if i := sort.SearchStrings(got, key); i >= len(got) || got[i] != key {
					t.Fatalf("seed %d opts %+v: missing tuple %v", seed, opt, pair)
				}
			}
			if first == nil {
				first = got
			} else if !equalTuples(first, got) {
				t.Fatalf("seed %d: opts %+v computed a different relation", seed, opt)
			}
			if res.Stats.DerivedTuples != int64(len(want)) {
				t.Fatalf("seed %d: DerivedTuples = %d, want %d", seed, res.Stats.DerivedTuples, len(want))
			}
		}
	}
}

func TestStratifiedNegation(t *testing.T) {
	// NotDirect = pairs reachable but not adjacent.
	rng := rand.New(rand.NewSource(7))
	n := 25
	edges := randomEdges(rng, n, 40)
	db := edgeDB(t, n, edges)
	res := mustEval(t, db, `
TC(A, B) :- E(A, B).
TC(A, C) :- TC(A, B), E(B, C).
NotDirect(A, B) :- TC(A, B), !E(A, B).
Nodes(A) :- N(A).
Edges(A, B) :- NotDirect(A, B).
`, Options{})
	direct := make(map[[2]int64]struct{})
	for _, e := range edges {
		direct[e] = struct{}{}
	}
	want := make(map[[2]int64]struct{})
	for p := range reachPairs(n, edges) {
		if _, d := direct[p]; !d {
			want[p] = struct{}{}
		}
	}
	got := tableTuples(t, res.DB, "notdirect")
	if len(got) != len(want) {
		t.Fatalf("notdirect = %d tuples, want %d", len(got), len(want))
	}
	if res.Stats.Strata != 2 {
		t.Fatalf("strata = %d, want 2", res.Stats.Strata)
	}
}

func TestComparisonLiterals(t *testing.T) {
	db := relstore.NewDB()
	rt, _ := db.Create("R",
		relstore.Column{Name: "a", Type: relstore.Int},
		relstore.Column{Name: "b", Type: relstore.Int})
	for a := int64(0); a < 10; a++ {
		for b := int64(0); b < 10; b++ {
			if err := rt.Insert(relstore.IntVal(a), relstore.IntVal(b)); err != nil {
				t.Fatal(err)
			}
		}
	}
	res := mustEval(t, db, `
P(A, B) :- R(A, B), A < B, B <= 7, A != 2.
Nodes(A) :- R(A, _).
Edges(A, B) :- P(A, B).
`, Options{})
	count := 0
	for a := int64(0); a < 10; a++ {
		for b := int64(0); b < 10; b++ {
			if a < b && b <= 7 && a != 2 {
				count++
			}
		}
	}
	if got := tableTuples(t, res.DB, "p"); len(got) != count {
		t.Fatalf("p = %d tuples, want %d", len(got), count)
	}
}

func TestMutualRecursion(t *testing.T) {
	// Even/Odd over a successor chain 0..9.
	db := relstore.NewDB()
	zt, _ := db.Create("Zero", relstore.Column{Name: "id", Type: relstore.Int})
	_ = zt.Insert(relstore.IntVal(0))
	st, _ := db.Create("Succ",
		relstore.Column{Name: "a", Type: relstore.Int},
		relstore.Column{Name: "b", Type: relstore.Int})
	for i := int64(0); i < 9; i++ {
		_ = st.Insert(relstore.IntVal(i), relstore.IntVal(i+1))
	}
	res := mustEval(t, db, `
Even(A) :- Zero(A).
Even(B) :- Odd(A), Succ(A, B).
Odd(B) :- Even(A), Succ(A, B).
Nodes(A) :- Succ(A, _).
Edges(A, B) :- Succ(A, B).
`, Options{})
	if got := tableTuples(t, res.DB, "even"); len(got) != 5 {
		t.Fatalf("even = %d tuples, want 5", len(got))
	}
	if got := tableTuples(t, res.DB, "odd"); len(got) != 5 {
		t.Fatalf("odd = %d tuples, want 5", len(got))
	}
	if res.Stats.Strata != 1 {
		t.Fatalf("strata = %d, want 1 (mutual recursion)", res.Stats.Strata)
	}
}

func TestStringValuesAndConstants(t *testing.T) {
	db := relstore.NewDB()
	pt, _ := db.Create("Person",
		relstore.Column{Name: "id", Type: relstore.Int},
		relstore.Column{Name: "role", Type: relstore.String})
	_ = pt.Insert(relstore.IntVal(1), relstore.StrVal("prof"))
	_ = pt.Insert(relstore.IntVal(2), relstore.StrVal("student"))
	_ = pt.Insert(relstore.IntVal(3), relstore.StrVal("prof"))
	res := mustEval(t, db, `
Prof(A, 'faculty') :- Person(A, 'prof').
Nodes(A) :- Person(A, _).
Edges(A, B) :- Prof(A, _), Prof(B, _), A != B.
`, Options{})
	got := tableTuples(t, res.DB, "prof")
	if len(got) != 2 {
		t.Fatalf("prof = %v, want 2 tuples", got)
	}
	tab, _ := res.DB.Table("prof")
	if tab.Cols[1].Type != relstore.String {
		t.Fatal("inferred type of constant head column should be String")
	}
	// The desugared Edges rule (comparison in an extraction body) must
	// reference a synthetic predicate.
	if res.Program.Edges[0].Body[0].Pred != "__extract_body_1" {
		t.Fatalf("edges body = %v, want desugared synthetic atom", res.Program.Edges[0].Body)
	}
	if got := tableTuples(t, res.DB, "__extract_body_1"); len(got) != 2 {
		t.Fatalf("aux table = %v, want 2 tuples (1-3, 3-1)", got)
	}
}

func TestCrossProductBody(t *testing.T) {
	db := edgeDB(t, 4, [][2]int64{{0, 1}, {2, 3}})
	res := mustEval(t, db, `
Pair(A, B) :- E(A, _), E(B, _).
Nodes(A) :- N(A).
Edges(A, B) :- Pair(A, B).
`, Options{})
	if got := tableTuples(t, res.DB, "pair"); len(got) != 4 {
		t.Fatalf("pair = %d tuples, want 4 (cross product of {0,2})", len(got))
	}
}

// --- guards and diagnostics ---

func TestMaxDerivedTuples(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	edges := randomEdges(rng, 30, 60)
	ps, err := datalog.ParseProgram(tcProgram)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Evaluate(edgeDB(t, 30, edges), ps, Options{MaxDerivedTuples: 10})
	if !errors.Is(err, ErrTooManyDerived) {
		t.Fatalf("err = %v, want ErrTooManyDerived", err)
	}
}

func TestBaseTableCollision(t *testing.T) {
	db := edgeDB(t, 3, [][2]int64{{0, 1}})
	ps, err := datalog.ParseProgram(`
E(A, B) :- N(A), N(B).
Nodes(A) :- N(A).
Edges(A, B) :- E(A, B).
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Evaluate(db, ps, Options{}); err == nil {
		t.Fatal("derived predicate shadowing base table must fail")
	}
}

func TestUnknownPredicate(t *testing.T) {
	db := edgeDB(t, 3, [][2]int64{{0, 1}})
	ps, err := datalog.ParseProgram(`
P(A) :- Missing(A).
Nodes(A) :- N(A).
Edges(A, B) :- P(A), P(B).
`)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Evaluate(db, ps, Options{})
	if err == nil || !errors.As(err, new(*datalog.SyntaxError)) && err.Error() == "" {
		t.Fatalf("err = %v", err)
	}
}

func TestMixedTypeDerivationRejected(t *testing.T) {
	db := relstore.NewDB()
	it, _ := db.Create("I", relstore.Column{Name: "a", Type: relstore.Int})
	_ = it.Insert(relstore.IntVal(1))
	st, _ := db.Create("S", relstore.Column{Name: "a", Type: relstore.String})
	_ = st.Insert(relstore.StrVal("x"))
	ps, err := datalog.ParseProgram(`
P(A) :- I(A).
P(A) :- S(A).
Nodes(A) :- I(A).
Edges(A, B) :- P(A), P(B).
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Evaluate(db, ps, Options{}); err == nil {
		t.Fatal("mixed-type derivation must be rejected")
	}
}

func TestStratifyDiagnosticsSurface(t *testing.T) {
	db := edgeDB(t, 3, [][2]int64{{0, 1}})
	ps, err := datalog.ParseProgram(`
P(A) :- N(A), !P(A).
Nodes(A) :- N(A).
Edges(A, B) :- P(A), P(B).
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Evaluate(db, ps, Options{}); err == nil {
		t.Fatal("negation cycle must surface through Evaluate")
	}
}

// --- semi-naive vs naive performance ---

// coauthorChainDB builds the DBLP-like benchmark relation: Author(id,
// name) and AuthorPub(aid, pid) where publication i is co-authored by
// authors i and i+1, forming a collaboration chain whose reachability
// closure needs ~n iterations — the workload where semi-naive evaluation
// pays.
func coauthorChainDB(n int) *relstore.DB {
	db := relstore.NewDB()
	at, _ := db.Create("Author",
		relstore.Column{Name: "id", Type: relstore.Int},
		relstore.Column{Name: "name", Type: relstore.String})
	ap, _ := db.Create("AuthorPub",
		relstore.Column{Name: "aid", Type: relstore.Int},
		relstore.Column{Name: "pid", Type: relstore.Int})
	for i := 0; i < n; i++ {
		_ = at.Insert(relstore.IntVal(int64(i)), relstore.StrVal(fmt.Sprintf("author-%d", i)))
	}
	for p := 0; p < n-1; p++ {
		_ = ap.Insert(relstore.IntVal(int64(p)), relstore.IntVal(int64(p)))
		_ = ap.Insert(relstore.IntVal(int64(p+1)), relstore.IntVal(int64(p)))
	}
	return db
}

const reachProgram = `
Coauthor(A, B) :- AuthorPub(A, P), AuthorPub(B, P), A != B.
Reach(A, B) :- Coauthor(A, B).
Reach(A, C) :- Reach(A, B), Coauthor(B, C).
Nodes(ID, Name) :- Author(ID, Name).
Edges(A, B) :- Reach(A, B).
`

// TestSemiNaiveSpeedup asserts the acceptance criterion: on the DBLP-like
// reachability workload the semi-naive loop is at least 5x faster than the
// naive re-evaluation loop (measured ratios are far higher; 5x leaves
// headroom for noisy CI runners).
func TestSemiNaiveSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive; skipped in -short")
	}
	n := 90
	ps, err := datalog.ParseProgram(reachProgram)
	if err != nil {
		t.Fatal(err)
	}
	run := func(naive bool) (time.Duration, *Result) {
		db := coauthorChainDB(n)
		start := time.Now()
		res, err := Evaluate(db, ps, Options{Naive: naive, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		return time.Since(start), res
	}
	// Warm up once to stabilize allocator state, then measure.
	run(false)
	semiDur, semi := run(false)
	naiveDur, naive := run(true)
	if !equalTuples(tableTuples(t, semi.DB, "reach"), tableTuples(t, naive.DB, "reach")) {
		t.Fatal("semi-naive and naive disagree")
	}
	// Chain: every ordered pair reachable, including A->A via a round
	// trip through any coauthor.
	want := int64(n * n)
	if semi.Stats.DerivedTuples != naive.Stats.DerivedTuples {
		t.Fatalf("derived: semi %d vs naive %d", semi.Stats.DerivedTuples, naive.Stats.DerivedTuples)
	}
	if got := tableTuples(t, semi.DB, "reach"); int64(len(got)) != want {
		t.Fatalf("reach = %d tuples, want %d", len(got), want)
	}
	ratio := float64(naiveDur) / float64(semiDur)
	t.Logf("naive %v / semi-naive %v = %.1fx (semi %d iters, naive %d iters)",
		naiveDur, semiDur, ratio, semi.Stats.Iterations, naive.Stats.Iterations)
	if ratio < 5 {
		t.Fatalf("semi-naive only %.1fx faster than naive, want >= 5x", ratio)
	}
}

// BenchmarkDatalogEval is the CI benchmark family: recursive co-authorship
// reachability on the DBLP-like chain, semi-naive (the shipping
// configuration) vs the naive re-evaluation baseline.
func BenchmarkDatalogEval(b *testing.B) {
	ps, err := datalog.ParseProgram(reachProgram)
	if err != nil {
		b.Fatal(err)
	}
	for _, cfg := range []struct {
		name  string
		naive bool
	}{
		{"SemiNaive", false},
		{"Naive", true},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				db := coauthorChainDB(120)
				b.StartTimer()
				if _, err := Evaluate(db, ps, Options{Naive: cfg.naive}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestPipeDelimiterStrings is the regression test for the rowKey encoding:
// string values containing the key delimiter must not make distinct tuples
// collide (and silently drop) in derived tables or negation sets.
func TestPipeDelimiterStrings(t *testing.T) {
	db := relstore.NewDB()
	rt, _ := db.Create("R",
		relstore.Column{Name: "a", Type: relstore.String},
		relstore.Column{Name: "b", Type: relstore.String})
	// Both rows would encode to "sa|sb|sc|" under a naive delimiter scheme.
	_ = rt.Insert(relstore.StrVal("a|sb"), relstore.StrVal("c"))
	_ = rt.Insert(relstore.StrVal("a"), relstore.StrVal("b|sc"))
	st, _ := db.Create("S",
		relstore.Column{Name: "a", Type: relstore.String},
		relstore.Column{Name: "b", Type: relstore.String})
	_ = st.Insert(relstore.StrVal("a|sb"), relstore.StrVal("c"))
	nt, _ := db.Create("N", relstore.Column{Name: "id", Type: relstore.Int})
	_ = nt.Insert(relstore.IntVal(1))
	res := mustEval(t, db, `
P(A, B) :- R(A, B).
Q(A, B) :- R(A, B), !S(A, B).
Nodes(A) :- N(A).
Edges(A, B) :- N(A), N(B).
`, Options{})
	if got := tableTuples(t, res.DB, "p"); len(got) != 2 {
		t.Fatalf("p = %d tuples, want 2 (delimiter collision dropped one)", len(got))
	}
	// Negation must remove only the exact matching tuple, not its
	// delimiter-twin.
	q := tableTuples(t, res.DB, "q")
	if len(q) != 1 {
		t.Fatalf("q = %d tuples, want 1", len(q))
	}
	if q[0] != rowKey([]relstore.Value{relstore.StrVal("a"), relstore.StrVal("b|sc")}) {
		t.Fatalf("q kept the wrong tuple: %q", q[0])
	}
}

// TestMaxDerivedTuplesBoundsIntermediates: the budget must also stop a
// rule whose joins explode even though its distinct output is tiny (the
// disconnected cross-product below outputs <= n tuples but materializes
// n^3 intermediate rows).
func TestMaxDerivedTuplesBoundsIntermediates(t *testing.T) {
	db := relstore.NewDB()
	rt, _ := db.Create("R", relstore.Column{Name: "a", Type: relstore.Int})
	for i := int64(0); i < 200; i++ {
		_ = rt.Insert(relstore.IntVal(i))
	}
	ps, err := datalog.ParseProgram(`
P(A) :- R(A), R(B), R(C).
Nodes(A) :- R(A).
Edges(A, B) :- P(A), P(B).
`)
	if err != nil {
		t.Fatal(err)
	}
	// 200^2 = 40k intermediate rows after the first cross join already
	// exceeds 16 x 100; without the intermediate check the 8M-row cross
	// product would fully materialize (distinct P output is only 200).
	_, err = Evaluate(db, ps, Options{MaxDerivedTuples: 100})
	if !errors.Is(err, ErrTooManyDerived) {
		t.Fatalf("err = %v, want ErrTooManyDerived from the intermediate guard", err)
	}
}

// TestNegationCacheCaseSensitivity: negated atoms differing only in the
// case of a string constant (or a variable name) must not share a
// membership set.
func TestNegationCacheCaseSensitivity(t *testing.T) {
	db := relstore.NewDB()
	ft, _ := db.Create("Foo", relstore.Column{Name: "x", Type: relstore.Int})
	_ = ft.Insert(relstore.IntVal(1))
	_ = ft.Insert(relstore.IntVal(2))
	bt, _ := db.Create("Bar",
		relstore.Column{Name: "x", Type: relstore.Int},
		relstore.Column{Name: "s", Type: relstore.String})
	_ = bt.Insert(relstore.IntVal(1), relstore.StrVal("ABC"))
	_ = bt.Insert(relstore.IntVal(2), relstore.StrVal("abc"))
	res := mustEval(t, db, `
P(X) :- Foo(X), !Bar(X, 'ABC').
P(X) :- Foo(X), !Bar(X, 'abc').
Q(Y) :- Foo(Y), !Bar(Y, 'ABC').
Q(y) :- Foo(y), !Bar(y, 'abc').
Nodes(X) :- Foo(X).
Edges(A, B) :- P(A), P(B).
`, Options{})
	// 1 fails !Bar(1,'ABC') but passes !Bar(1,'abc'); 2 vice versa.
	if got := tableTuples(t, res.DB, "p"); len(got) != 2 {
		t.Fatalf("p = %v, want both tuples (cache conflated 'ABC'/'abc')", got)
	}
	// Same pattern with different variable case must also work.
	if got := tableTuples(t, res.DB, "q"); len(got) != 2 {
		t.Fatalf("q = %v, want both tuples (cache conflated variable case)", got)
	}
}

// TestCaseDistinctVariables: `A` and `a` are different variables — the
// body below is a cross product, not an equi-join on a case-folded name.
func TestCaseDistinctVariables(t *testing.T) {
	db := relstore.NewDB()
	rt, _ := db.Create("R", relstore.Column{Name: "x", Type: relstore.Int})
	_ = rt.Insert(relstore.IntVal(1))
	_ = rt.Insert(relstore.IntVal(2))
	st, _ := db.Create("S", relstore.Column{Name: "x", Type: relstore.Int})
	_ = st.Insert(relstore.IntVal(3))
	_ = st.Insert(relstore.IntVal(4))
	res := mustEval(t, db, `
P(A, a) :- R(A), S(a).
Q(A) :- R(A), S(a), A < a.
Nodes(X) :- R(X).
Edges(X, Y) :- R(X), R(Y).
`, Options{})
	if got := tableTuples(t, res.DB, "p"); len(got) != 4 {
		t.Fatalf("p = %v, want the full 2x2 cross product", got)
	}
	// The comparison binds each operand to its own column: every R value
	// is below every S value.
	if got := tableTuples(t, res.DB, "q"); len(got) != 2 {
		t.Fatalf("q = %v, want {1, 2}", got)
	}
}

// rowStrings returns a table's rows rendered in table order (order
// matters: the indexed and unindexed evaluations must materialize the
// same tuples in the same sequence, not just the same set).
func rowStrings(t *testing.T, db *relstore.DB, name string) []string {
	t.Helper()
	tab, err := db.Table(name)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, 0, len(tab.Rows))
	for _, r := range tab.Rows {
		out = append(out, rowKey(r))
	}
	return out
}

// TestIndexedEvalEquivalence asserts the index-backed access paths change
// nothing about evaluation: on randomized graphs, the derived tables of
// the indexed and NoIndex runs are row-for-row identical (order
// included), as are the evaluation statistics, for recursive,
// negation-bearing, and comparison-bearing programs.
func TestIndexedEvalEquivalence(t *testing.T) {
	programs := []string{
		tcProgram,
		`
TC(A, B) :- E(A, B).
TC(A, C) :- TC(A, B), E(B, C).
Unreached(A, B) :- N(A), N(B), !TC(A, B), A != B.
Nodes(A) :- N(A).
Edges(A, B) :- Unreached(A, B).
`,
		`
Fwd(A, B) :- E(A, B), A < B.
Hop2(A, C) :- Fwd(A, B), Fwd(B, C).
Nodes(A) :- N(A).
Edges(A, C) :- Hop2(A, C).
`,
	}
	for seed := int64(1); seed <= 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 12 + rng.Intn(10)
		db := edgeDB(t, n, randomEdges(rng, n, 3*n))
		for pi, src := range programs {
			indexed := mustEval(t, db, src, Options{Workers: 2})
			scan := mustEval(t, db, src, Options{Workers: 2, NoIndex: true})
			if indexed.Stats.DerivedTuples != scan.Stats.DerivedTuples ||
				indexed.Stats.Iterations != scan.Stats.Iterations ||
				indexed.Stats.Strata != scan.Stats.Strata {
				t.Fatalf("seed %d program %d: stats diverge: indexed %+v vs scan %+v",
					seed, pi, indexed.Stats, scan.Stats)
			}
			for _, name := range indexed.DB.TableNames() {
				base, errBase := db.Table(name)
				if errBase == nil {
					it, _ := indexed.DB.Table(name)
					if it == base {
						continue // shared base table, not a derived one
					}
				}
				got := rowStrings(t, indexed.DB, name)
				want := rowStrings(t, scan.DB, name)
				if len(got) != len(want) {
					t.Fatalf("seed %d program %d: derived %s has %d rows indexed, %d unindexed", seed, pi, name, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("seed %d program %d: derived %s row %d differs: %q vs %q", seed, pi, name, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestIndexedSemiNaiveAgainstNaive crosses both switches: the indexed
// semi-naive evaluation must match the unindexed naive evaluation tuple
// for tuple on randomized graphs.
func TestIndexedSemiNaiveAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 15
	db := edgeDB(t, n, randomEdges(rng, n, 40))
	fast := mustEval(t, db, tcProgram, Options{Workers: 3})
	slow := mustEval(t, db, tcProgram, Options{Naive: true, NoIndex: true})
	if !equalTuples(tableTuples(t, fast.DB, "TC"), tableTuples(t, slow.DB, "TC")) {
		t.Fatal("indexed semi-naive TC differs from unindexed naive TC")
	}
}

// TestNoStreamEquivalence runs a recursive program through the default
// streaming pipelines and through the NoStream materializing oracle on
// randomized graphs, crossed with the naive/index/worker switches. The
// derived relations must match tuple for tuple, and both modes must
// report a positive intermediate-row peak — the streaming one from
// operator-held state, the NoStream one from whole staged relations.
func TestNoStreamEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		n := 15 + rng.Intn(20)
		db := edgeDB(t, n, randomEdges(rng, n, n+rng.Intn(2*n)))
		for _, base := range []Options{{}, {Naive: true}, {NoIndex: true}, {Workers: 4}} {
			streaming := mustEval(t, db, tcProgram, base)
			legacy := base
			legacy.NoStream = true
			materializing := mustEval(t, db, tcProgram, legacy)
			if !equalTuples(tableTuples(t, streaming.DB, "TC"), tableTuples(t, materializing.DB, "TC")) {
				t.Fatalf("seed %d opts %+v: NoStream computed a different TC relation", seed, base)
			}
			sp := streaming.Stats.PeakIntermediateRows
			mp := materializing.Stats.PeakIntermediateRows
			if sp <= 0 || mp <= 0 {
				t.Fatalf("seed %d opts %+v: peak tracking dead (streaming=%d, NoStream=%d)", seed, base, sp, mp)
			}
			if sp > mp {
				t.Errorf("seed %d opts %+v: streaming peak %d exceeds materializing peak %d", seed, base, sp, mp)
			}
		}
	}
}
