// Package datalogeval is GraphGen's bottom-up evaluator for multi-rule
// Datalog programs: derived (IDB) predicates, recursion, stratified
// negation, and comparison literals, computed over the relstore substrate
// and handed to the extraction planner.
//
// Evaluation proceeds stratum by stratum (datalog.Stratify orders the
// mutually recursive predicate groups dependency-first). Each stratum runs
// a semi-naive fixpoint loop: derived predicates materialize as temporary
// relstore tables inside an overlay database (base tables attached by
// reference, nothing copied), each table paired with a deduplicating tuple
// set, and every iteration joins only the previous iteration's delta
// against the full relations — so work is proportional to what is new, not
// to what is known. Joins are hash joins on the bound positions, fanned out
// through the shared worker pool (internal/parallel); negated atoms become
// anti-joins against the already-complete tables of lower strata;
// comparison literals are applied as filters as soon as their variables are
// bound.
//
// The Nodes/Edges extraction statements are not evaluated here: Evaluate
// returns the overlay database plus a legacy datalog.Program referencing
// the materialized predicates, which the caller hands to internal/extract
// unchanged — so condensed representations, deduplication, analytics, and
// serving all work on recursive graphs for free. Extraction statements
// whose bodies use negation or comparisons are desugared first: the body
// moves into a synthetic derived predicate (one more stratum) and the
// statement keeps a single positive atom the planner can handle.
//
// The overlay database and its temporary tables live exactly as long as
// the caller needs the extraction: nothing registers with the base DB, so
// dropping the Result frees every derived tuple.
package datalogeval

import (
	"fmt"
	"strings"
	"time"

	"graphgen/internal/datalog"
	"graphgen/internal/extract"
	"graphgen/internal/obs"
	"graphgen/internal/relstore"
)

// Options tunes program evaluation.
type Options struct {
	// Workers bounds the join/filter parallelism of every iteration
	// (<= 0 means GOMAXPROCS, 1 is the serial path). The evaluated
	// relations are identical for every setting.
	Workers int
	// MaxDerivedTuples aborts evaluation once the total number of
	// materialized derived tuples exceeds the budget; 0 disables.
	MaxDerivedTuples int64
	// Naive disables the semi-naive delta optimization and re-evaluates
	// every rule against the full relations each iteration until
	// fixpoint. It exists as the benchmark baseline; results are
	// identical.
	Naive bool
	// NoIndex disables the secondary-index machinery: no hash indexes are
	// auto-created on the rules' join and predicate columns (base tables
	// and derived temp tables alike) and the index-backed access paths are
	// never chosen. Results are identical either way; the switch exists
	// for controlled comparisons and mirrors extract.Options.NoIndex.
	NoIndex bool
	// NoStream routes every rule-body evaluation through the legacy
	// operator-at-a-time materializing execution (a full relation after
	// every operator) instead of the fused streaming pipeline. Results
	// are identical row for row; the switch exists as the equivalence
	// oracle and the peak-memory benchmark baseline, mirroring
	// extract.Options.NoStream.
	NoStream bool
	// Trace, when non-nil, collects the evaluation's execution tree:
	// one container span per stratum, per fixpoint round, and per rule
	// derivation, with the relational operator spans underneath. Round
	// spans carry the fresh-tuple count, so their row totals sum to
	// Stats.DerivedTuples. Nil (the default) disables tracing at zero
	// cost.
	Trace *obs.Trace
}

// Stats describes one program evaluation.
type Stats struct {
	// Strata is the number of evaluation strata (mutually recursive
	// predicate groups, including any synthetic extraction-body
	// predicates).
	Strata int
	// Iterations is the total number of fixpoint iterations across all
	// strata (each stratum contributes at least its seeding round).
	Iterations int
	// DerivedTuples is the total number of distinct tuples materialized
	// into temporary tables.
	DerivedTuples int64
	// TempTables is the number of temporary tables created.
	TempTables int
	// PeakIntermediateRows is the high-water mark of operator-held
	// intermediate rows across all rule-body pipelines: join build
	// sides and negation/index gathers on the streaming path, whole
	// staged relations under Options.NoStream.
	PeakIntermediateRows int64
	Duration             time.Duration
}

// Result is an evaluated program: the overlay database holding base tables
// (shared) plus materialized derived predicates (owned), and the
// extraction statements rewritten to reference them.
type Result struct {
	DB      *relstore.DB
	Program *datalog.Program
	Stats   Stats
}

// ErrTooManyDerived marks an evaluation aborted by MaxDerivedTuples.
var ErrTooManyDerived = fmt.Errorf("datalogeval: derived tuples exceed the configured budget")

// Evaluate runs the program's derived-predicate rules to fixpoint and
// returns the overlay database and the extraction statements to hand to
// the extraction planner.
func Evaluate(base *relstore.DB, ps *datalog.ProgramSet, opts Options) (*Result, error) {
	start := time.Now()
	// Validate the user-written rules first so diagnostics carry the
	// user's predicate names, then desugar and re-stratify for evaluation
	// order (desugaring cannot introduce new violations).
	if _, err := datalog.Stratify(ps); err != nil {
		return nil, err
	}
	ps = desugarExtraction(ps)
	strata, err := datalog.Stratify(ps)
	if err != nil {
		return nil, err
	}
	for _, p := range ps.IDBPreds() {
		if _, err := base.Table(p); err == nil {
			return nil, fmt.Errorf("datalogeval: derived predicate %q collides with a base table of the same name", p)
		}
	}

	ov := relstore.NewDB()
	for _, name := range base.TableNames() {
		t, err := base.Table(name)
		if err != nil {
			return nil, err
		}
		if err := ov.Attach(t); err != nil {
			return nil, err
		}
	}
	ev := &evaluator{db: ov, opts: opts, sets: make(map[string]map[string]struct{}), tracker: relstore.NewTracker()}
	if err := ev.checkPredicates(ps); err != nil {
		return nil, err
	}
	if err := ev.createTempTables(ps); err != nil {
		return nil, err
	}
	// Index the IDB rules' join and predicate columns up front: temp
	// tables are created empty, so their indexes cost nothing to build and
	// are then maintained incrementally by every insert — which is what
	// lets the semi-naive loop probe a persistent index each delta round
	// instead of rebuilding a hash table per iteration. (The Nodes/Edges
	// statements are indexed later by extract.Extract over the same
	// overlay database.)
	if !opts.NoIndex {
		extract.EnsureIndexes(ov, ps.IDB)
	}
	ev.stats.Strata = len(strata.Levels)
	psp := opts.Trace.Push("program_eval", "")
	for _, level := range strata.Levels {
		if err := ev.evalStratum(ps, level); err != nil {
			psp.End()
			return nil, err
		}
	}
	psp.End()
	ev.stats.PeakIntermediateRows = ev.tracker.Peak()
	ev.stats.Duration = time.Since(start)
	return &Result{
		DB:      ov,
		Program: &datalog.Program{Nodes: ps.Nodes, Edges: ps.Edges},
		Stats:   ev.stats,
	}, nil
}

type evaluator struct {
	db   *relstore.DB
	opts Options
	// sets deduplicates each derived table's tuples (keyed by lowercased
	// predicate name).
	sets map[string]map[string]struct{}
	// tracker accounts peak operator-held intermediate rows across every
	// rule-body pipeline of the evaluation.
	tracker *relstore.Tracker
	stats   Stats
}

// desugarExtraction rewrites Nodes/Edges statements whose bodies use
// negation or comparisons: the body becomes a synthetic derived predicate
// over the statement's head variables and the statement keeps one positive
// atom, which is all the extraction planner understands. Statements with
// plain positive bodies pass through untouched (so chain planning and
// condensation still apply to them).
func desugarExtraction(ps *datalog.ProgramSet) *datalog.ProgramSet {
	out := &datalog.ProgramSet{IDB: append([]datalog.Rule(nil), ps.IDB...)}
	aux := 0
	rewrite := func(r datalog.Rule) datalog.Rule {
		if len(r.Negated) == 0 && len(r.Comps) == 0 {
			return r
		}
		aux++
		name := fmt.Sprintf("__extract_body_%d", aux)
		var terms []datalog.Term
		seen := make(map[string]struct{})
		for _, t := range r.Head.Terms {
			if t.Kind != datalog.TermVar {
				continue
			}
			if _, dup := seen[t.Var]; dup {
				continue
			}
			seen[t.Var] = struct{}{}
			terms = append(terms, t)
		}
		auxHead := datalog.Atom{Pred: name, Terms: terms, Line: r.Line, Col: r.Col}
		out.IDB = append(out.IDB, datalog.Rule{
			Head: auxHead, Body: r.Body, Negated: r.Negated, Comps: r.Comps,
			Line: r.Line, Col: r.Col,
		})
		return datalog.Rule{
			Head: r.Head,
			Body: []datalog.Atom{{Pred: name, Terms: terms, Line: r.Line, Col: r.Col}},
			Line: r.Line, Col: r.Col,
		}
	}
	for _, r := range ps.Nodes {
		out.Nodes = append(out.Nodes, rewrite(r))
	}
	for _, r := range ps.Edges {
		out.Edges = append(out.Edges, rewrite(r))
	}
	out.Rules = append(append(append([]datalog.Rule(nil), out.IDB...), out.Nodes...), out.Edges...)
	return out
}

// checkPredicates verifies every body atom references either a base table
// or a derived predicate, up front, so the error names the offending rule
// rather than surfacing mid-iteration.
func (ev *evaluator) checkPredicates(ps *datalog.ProgramSet) error {
	idb := make(map[string]struct{})
	for _, p := range ps.IDBPreds() {
		idb[p] = struct{}{}
	}
	for _, r := range ps.Rules {
		for _, a := range append(append([]datalog.Atom(nil), r.Body...), r.Negated...) {
			name := strings.ToLower(a.Pred)
			if _, ok := idb[name]; ok {
				continue
			}
			if _, err := ev.db.Table(name); err != nil {
				return fmt.Errorf("datalogeval: line %d col %d: predicate %q is neither a base table nor defined by a rule",
					a.Line, a.Col, a.Pred)
			}
		}
	}
	return nil
}

// createTempTables infers a column type for every position of every
// derived predicate by propagating types from the base tables through the
// rules to fixpoint, then creates one empty temporary table per predicate.
// Positions that remain unconstrained (the predicate can never derive a
// tuple) default to Int.
func (ev *evaluator) createTempTables(ps *datalog.ProgramSet) error {
	preds := ps.IDBPreds()
	arity := make(map[string]int, len(preds))
	displayName := make(map[string]string, len(preds))
	for _, r := range ps.IDB {
		name := strings.ToLower(r.Head.Pred)
		if _, ok := arity[name]; !ok {
			arity[name] = len(r.Head.Terms)
			displayName[name] = r.Head.Pred
		}
	}
	types := make(map[string][]relstore.Type, len(preds))
	known := make(map[string][]bool, len(preds))
	for _, p := range preds {
		types[p] = make([]relstore.Type, arity[p])
		known[p] = make([]bool, arity[p])
	}
	// varType resolves the type a variable gets from the positive body of
	// a rule, if any binding position has a known type yet.
	varType := func(r datalog.Rule, v string) (relstore.Type, bool, error) {
		for _, a := range r.Body {
			for j, t := range a.Terms {
				if t.Kind != datalog.TermVar || t.Var != v {
					continue
				}
				name := strings.ToLower(a.Pred)
				if _, ok := types[name]; ok {
					if known[name][j] {
						return types[name][j], true, nil
					}
					continue
				}
				tab, err := ev.db.Table(name)
				if err != nil {
					return 0, false, err
				}
				if j >= len(tab.Cols) {
					return 0, false, fmt.Errorf("datalogeval: line %d col %d: atom %s has %d terms but table %s has %d columns",
						a.Line, a.Col, a, len(a.Terms), tab.Name, len(tab.Cols))
				}
				return tab.Cols[j].Type, true, nil
			}
		}
		return 0, false, nil
	}
	for changed := true; changed; {
		changed = false
		for _, r := range ps.IDB {
			name := strings.ToLower(r.Head.Pred)
			for i, t := range r.Head.Terms {
				var ty relstore.Type
				var ok bool
				var err error
				switch t.Kind {
				case datalog.TermInt:
					ty, ok = relstore.Int, true
				case datalog.TermString:
					ty, ok = relstore.String, true
				default:
					ty, ok, err = varType(r, t.Var)
					if err != nil {
						return err
					}
				}
				if !ok {
					continue
				}
				if known[name][i] && types[name][i] != ty {
					return fmt.Errorf("datalogeval: line %d col %d: predicate %q derives both integer and string values at position %d",
						r.Head.Line, r.Head.Col, r.Head.Pred, i+1)
				}
				if !known[name][i] {
					known[name][i] = true
					types[name][i] = ty
					changed = true
				}
			}
		}
	}
	for _, p := range preds {
		cols := make([]relstore.Column, arity[p])
		for i := range cols {
			cols[i] = relstore.Column{Name: fmt.Sprintf("c%d", i), Type: types[p][i]}
		}
		if _, err := ev.db.Create(displayName[p], cols...); err != nil {
			return err
		}
		ev.sets[p] = make(map[string]struct{})
		ev.stats.TempTables++
	}
	return nil
}

// compiledRule is one rule of the stratum under evaluation with the body
// positions of its recursive (same-stratum) atoms and its negated-atom
// membership sets precomputed. Negation sets are built once per stratum —
// stratified negation guarantees the negated tables are complete and
// unchanging while this stratum iterates — and reused by every semi-naive
// round.
type compiledRule struct {
	rule   datalog.Rule
	recOcc []int
	negs   []*negPattern
}

// evalStratum runs the fixpoint loop for one stratum (a set of mutually
// recursive predicates, lowercased).
func (ev *evaluator) evalStratum(ps *datalog.ProgramSet, level []string) error {
	ssp := ev.opts.Trace.Push("stratum", strings.Join(level, ","))
	defer ssp.End()
	inLevel := make(map[string]struct{}, len(level))
	for _, p := range level {
		inLevel[p] = struct{}{}
	}
	var rules []*compiledRule
	negCache := make(map[string]*negPattern)
	for _, r := range ps.IDB {
		if _, ok := inLevel[strings.ToLower(r.Head.Pred)]; !ok {
			continue
		}
		cr := &compiledRule{rule: r}
		for i, a := range r.Body {
			if _, rec := inLevel[strings.ToLower(a.Pred)]; rec {
				cr.recOcc = append(cr.recOcc, i)
			}
		}
		for _, neg := range r.Negated {
			// Memoize per pattern: rules sharing a negated atom (same
			// predicate and term shape) reuse one membership set — the
			// sets are immutable for the stratum's lifetime. Only the
			// predicate name is case-folded; terms keep their case
			// (variable names and string constants are case-sensitive,
			// so 'ABC' and 'abc' are different patterns).
			var kb strings.Builder
			kb.WriteString(strings.ToLower(neg.Pred))
			for _, t := range neg.Terms {
				kb.WriteByte('\x00')
				kb.WriteString(t.String())
			}
			key := kb.String()
			np, ok := negCache[key]
			if !ok {
				var err error
				if np, err = ev.compileNegation(neg); err != nil {
					return err
				}
				negCache[key] = np
			}
			cr.negs = append(cr.negs, np)
		}
		rules = append(rules, cr)
	}
	if ev.opts.Naive {
		return ev.evalStratumNaive(rules)
	}

	// Seeding round: every rule once against the current state (stratum
	// tables empty, lower strata complete).
	rsp := ev.opts.Trace.Push("round", "seed")
	delta := make(map[string][][]relstore.Value)
	for _, cr := range rules {
		fresh, err := ev.deriveRule(cr, -1, nil)
		if err != nil {
			rsp.End()
			return err
		}
		rsp.AddRows(int64(len(fresh)))
		pred := strings.ToLower(cr.rule.Head.Pred)
		delta[pred] = append(delta[pred], fresh...)
	}
	rsp.End()
	ev.stats.Iterations++

	// Delta rounds: re-derive only through rules with a recursive atom,
	// substituting the delta for one occurrence at a time.
	for round := 1; ; round++ {
		any := false
		for _, rows := range delta {
			if len(rows) > 0 {
				any = true
				break
			}
		}
		if !any {
			return nil
		}
		rsp := ev.opts.Trace.Push("round", fmt.Sprintf("delta %d", round))
		next := make(map[string][][]relstore.Value)
		for _, cr := range rules {
			for _, occ := range cr.recOcc {
				dpred := strings.ToLower(cr.rule.Body[occ].Pred)
				if len(delta[dpred]) == 0 {
					continue
				}
				fresh, err := ev.deriveRule(cr, occ, delta[dpred])
				if err != nil {
					rsp.End()
					return err
				}
				rsp.AddRows(int64(len(fresh)))
				pred := strings.ToLower(cr.rule.Head.Pred)
				next[pred] = append(next[pred], fresh...)
			}
		}
		rsp.End()
		ev.stats.Iterations++
		delta = next
	}
}

// deriveRule evaluates one rule body (against the delta occurrence, if
// any) and inserts the result, under a per-derivation trace span whose
// row count is the fresh tuples the derivation contributed.
func (ev *evaluator) deriveRule(cr *compiledRule, deltaOcc int, deltaRows [][]relstore.Value) ([][]relstore.Value, error) {
	dsp := ev.opts.Trace.Push("rule", cr.rule.Head.String())
	if deltaOcc >= 0 {
		dsp.Set("delta_occurrence", int64(deltaOcc))
		dsp.Set("delta_rows", int64(len(deltaRows)))
	}
	defer dsp.End()
	body, err := ev.evalRuleBody(cr, deltaOcc, deltaRows)
	if err != nil {
		return nil, err
	}
	fresh, err := ev.insert(cr.rule.Head, body)
	if err != nil {
		return nil, err
	}
	dsp.AddRows(int64(len(fresh)))
	return fresh, nil
}

// evalStratumNaive is the benchmark baseline: re-evaluate every rule
// against the full relations until a full round derives nothing new.
func (ev *evaluator) evalStratumNaive(rules []*compiledRule) error {
	for round := 1; ; round++ {
		rsp := ev.opts.Trace.Push("round", fmt.Sprintf("naive %d", round))
		changed := false
		for _, cr := range rules {
			fresh, err := ev.deriveRule(cr, -1, nil)
			if err != nil {
				rsp.End()
				return err
			}
			rsp.AddRows(int64(len(fresh)))
			if len(fresh) > 0 {
				changed = true
			}
		}
		rsp.End()
		ev.stats.Iterations++
		if !changed {
			return nil
		}
	}
}

// insert drains the evaluated body pipeline, projecting each row onto
// the head terms and appending the tuples not already present, and
// returns the fresh ones (the next delta). It closes the pipeline on
// every path — this is the single materialization boundary of a rule
// evaluation, and only distinct head tuples ever materialize.
func (ev *evaluator) insert(head datalog.Atom, body relstore.RowIter) ([][]relstore.Value, error) {
	defer body.Close()
	pred := strings.ToLower(head.Pred)
	t, err := ev.db.Table(pred)
	if err != nil {
		return nil, err
	}
	idx := make([]int, len(head.Terms))
	consts := make([]relstore.Value, len(head.Terms))
	for i, term := range head.Terms {
		switch term.Kind {
		case datalog.TermVar:
			j, ok := bodyColIndex(body.Cols(), term.Var)
			if !ok {
				return nil, fmt.Errorf("datalogeval: head variable %q not bound by rule body (rule for %q)", term.Var, head.Pred)
			}
			idx[i] = j
		case datalog.TermInt:
			idx[i] = -1
			consts[i] = relstore.IntVal(term.Int)
		case datalog.TermString:
			idx[i] = -1
			consts[i] = relstore.StrVal(term.Str)
		default:
			return nil, fmt.Errorf("datalogeval: wildcard in head of %q", head.Pred)
		}
	}
	set := ev.sets[pred]
	var fresh [][]relstore.Value
	for {
		row, ok, err := body.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		out := make([]relstore.Value, len(head.Terms))
		for i := range out {
			if idx[i] < 0 {
				out[i] = consts[i]
			} else {
				out[i] = row[idx[i]]
			}
		}
		key := rowKey(out)
		if _, dup := set[key]; dup {
			continue
		}
		set[key] = struct{}{}
		if err := t.Insert(out...); err != nil {
			return nil, err
		}
		ev.stats.DerivedTuples++
		if ev.opts.MaxDerivedTuples > 0 && ev.stats.DerivedTuples > ev.opts.MaxDerivedTuples {
			return nil, fmt.Errorf("%w (%d)", ErrTooManyDerived, ev.opts.MaxDerivedTuples)
		}
		fresh = append(fresh, out)
	}
	return fresh, nil
}

// bodyColIndex resolves a variable in a pipeline schema (exact match —
// Datalog variables are case-sensitive).
func bodyColIndex(cols []string, name string) (int, bool) {
	for i, c := range cols {
		if c == name {
			return i, true
		}
	}
	return 0, false
}

// rowKey encodes a tuple unambiguously via the shared
// relstore.Value.AppendKey encoding: values containing the "|" separator
// cannot shift content between columns (e.g. ("a|sb","c") vs
// ("a","b|sc") get distinct keys).
func rowKey(row []relstore.Value) string {
	var sb strings.Builder
	for _, v := range row {
		v.AppendKey(&sb)
		sb.WriteByte('|')
	}
	return sb.String()
}
