package datalogeval

import (
	"fmt"

	"graphgen/internal/datalog"
	"graphgen/internal/relstore"
)

// This file evaluates one rule body as a fused pull-based pipeline: scan
// each positive atom (optionally substituting the semi-naive delta for one
// occurrence), stream hash joins on the shared variables through the
// worker pool, filter with comparison literals as soon as their variables
// are bound, and finish with anti-join filters for the negated atoms. The
// stream keeps one column per distinct body variable; insert drains it,
// projecting onto the head — the single materialization boundary of a
// delta round, so intermediates no longer accumulate as whole relations.
//
// Sources capture their row-slice headers before the first output row, so
// a recursive body evaluates against the pre-insert state of its own head
// table even while insert is appending to it — the same snapshot the old
// materialize-then-insert sequencing provided.
//
// Options.NoStream interposes a tracked materialization after every
// operator (the old operator-at-a-time execution, exactly); it is the
// equivalence oracle and the peak-memory baseline.

// atomPattern is the compiled term pattern of one atom against a table
// schema: constant selections, repeated-variable equality filters, and the
// projection positions of the distinct variables (first occurrence each).
// It is shared by positive-atom scans and negated-atom set builds so the
// two matching semantics cannot diverge.
type atomPattern struct {
	preds      []patPred
	equalities [][2]int
	cols       []int    // table position of each distinct variable
	names      []string // the variables, same order as cols
}

type patPred struct {
	col int
	val relstore.Value
}

func compilePattern(atom datalog.Atom, t *relstore.Table) (*atomPattern, error) {
	if len(atom.Terms) > len(t.Cols) {
		return nil, fmt.Errorf("datalogeval: line %d col %d: atom %s has %d terms but table %s has %d columns",
			atom.Line, atom.Col, atom, len(atom.Terms), t.Name, len(t.Cols))
	}
	p := &atomPattern{}
	firstPos := make(map[string]int)
	for i, term := range atom.Terms {
		switch term.Kind {
		case datalog.TermInt:
			p.preds = append(p.preds, patPred{i, relstore.IntVal(term.Int)})
		case datalog.TermString:
			p.preds = append(p.preds, patPred{i, relstore.StrVal(term.Str)})
		case datalog.TermWildcard:
			// ignored position
		case datalog.TermVar:
			if j, dup := firstPos[term.Var]; dup {
				p.equalities = append(p.equalities, [2]int{j, i})
				continue
			}
			firstPos[term.Var] = i
			p.cols = append(p.cols, i)
			p.names = append(p.names, term.Var)
		}
	}
	return p, nil
}

// scanPreds converts the pattern's constant selections into the
// relational operators' predicate form.
func (p *atomPattern) scanPreds() []relstore.Pred {
	if len(p.preds) == 0 {
		return nil
	}
	out := make([]relstore.Pred, len(p.preds))
	for i, pr := range p.preds {
		out[i] = relstore.Pred{Col: pr.col, Value: pr.val}
	}
	return out
}

// matches reports whether a table row satisfies the pattern's constant
// selections and repeated-variable equalities.
func (p *atomPattern) matches(row []relstore.Value) bool {
	for _, pr := range p.preds {
		if !row[pr.col].Equal(pr.val) {
			return false
		}
	}
	for _, eq := range p.equalities {
		if !row[eq[0]].Equal(row[eq[1]]) {
			return false
		}
	}
	return true
}

// key extracts the pattern's variable positions from a matching row.
func (p *atomPattern) key(row []relstore.Value) string {
	vals := make([]relstore.Value, len(p.cols))
	for k, c := range p.cols {
		vals[k] = row[c]
	}
	return rowKey(vals)
}

// negPattern is one negated atom compiled against its (complete) table:
// the membership set of matching rows keyed on the atom's variable
// positions. Stratification guarantees the table no longer changes while
// the stratum referencing it evaluates, so the set is built once per
// stratum and reused across every semi-naive iteration.
type negPattern struct {
	atom   datalog.Atom
	names  []string // distinct variables, key order
	exists map[string]struct{}
}

func (ev *evaluator) compileNegation(neg datalog.Atom) (*negPattern, error) {
	t, err := ev.db.Table(neg.Pred)
	if err != nil {
		return nil, err
	}
	p, err := compilePattern(neg, t)
	if err != nil {
		return nil, err
	}
	np := &negPattern{atom: neg, names: p.names, exists: make(map[string]struct{}, len(t.Rows))}
	for _, row := range t.Rows {
		if p.matches(row) {
			np.exists[p.key(row)] = struct{}{}
		}
	}
	return np, nil
}

// evalRuleBody builds the streaming pipeline for the
// positive/comparison/negation body of a compiled rule and returns its
// head iterator (the caller — insert — drains and closes it). deltaOcc
// >= 0 substitutes deltaRows for that positive-atom occurrence (the
// semi-naive rewriting); -1 evaluates against the full relations.
func (ev *evaluator) evalRuleBody(cr *compiledRule, deltaOcc int, deltaRows [][]relstore.Value) (relstore.RowIter, error) {
	rule := cr.rule
	if len(rule.Body) == 0 {
		return nil, fmt.Errorf("datalogeval: line %d col %d: rule for %q has no positive atoms", rule.Line, rule.Col, rule.Head.Pred)
	}
	exec := ev.exec()
	scan := func(i int) (relstore.RowIter, error) {
		atom := rule.Body[i]
		t, err := ev.db.Table(atom.Pred)
		if err != nil {
			return nil, err
		}
		p, err := compilePattern(atom, t)
		if err != nil {
			return nil, err
		}
		if i == deltaOcc {
			return relstore.NewSelect(deltaRows, p.scanPreds(), p.equalities, p.cols, p.names, exec), nil
		}
		// Full-relation occurrence: NewScan costs an index bucket lookup
		// against the parallel table walk (identical output either way).
		if len(p.equalities) == 0 {
			return relstore.NewScan(t, p.scanPreds(), p.cols, p.names, exec)
		}
		return relstore.NewSelect(t.Rows, p.scanPreds(), p.equalities, p.cols, p.names, exec), nil
	}
	// joinNext extends the pipeline with body atom i joined on the shared
	// variables. Full-relation occurrences without repeated variables go
	// through NewTableJoin, which defers the persistent-index-vs-scan
	// choice (the same cost rule the extraction planner uses: the index
	// wins when the accumulated side is small next to the column's
	// distinct count) until the accumulated side has drained. Delta
	// occurrences never take the index path: their row source is the
	// delta slice, not the table.
	joinNext := func(cur relstore.RowIter, i int, shared []string) (relstore.RowIter, error) {
		if i != deltaOcc && len(shared) > 0 {
			atom := rule.Body[i]
			t, err := ev.db.Table(atom.Pred)
			if err != nil {
				cur.Close()
				return nil, err
			}
			p, err := compilePattern(atom, t)
			if err != nil {
				cur.Close()
				return nil, err
			}
			if len(p.equalities) == 0 {
				return relstore.NewTableJoin(cur, t, p.scanPreds(), p.cols, p.names, shared, exec)
			}
		}
		rel, err := scan(i)
		if err != nil {
			cur.Close()
			return nil, err
		}
		if len(shared) == 0 {
			// Disconnected body: an explicit cross product (the planner
			// invariant that every equi-join names its shared columns).
			return relstore.NewCross(cur, rel, exec), nil
		}
		return relstore.NewJoin(cur, rel, shared, exec)
	}

	// Join order: start from the delta occurrence (it is the small side
	// and every derivation must use it), otherwise the first atom; then
	// repeatedly take an atom sharing a variable, falling back to a cross
	// product only when no pending atom connects.
	first := 0
	if deltaOcc >= 0 {
		first = deltaOcc
	}
	cur, err := scan(first)
	if err != nil {
		return nil, err
	}
	if cur, err = ev.stage(cur, rule, false); err != nil {
		return nil, err
	}
	pending := make([]int, 0, len(rule.Body)-1)
	for i := range rule.Body {
		if i != first {
			pending = append(pending, i)
		}
	}
	compsLeft := append([]datalog.Comparison(nil), rule.Comps...)
	var applied bool
	if cur, compsLeft, applied, err = applyReadyComps(cur, compsLeft, exec); err != nil {
		return nil, err
	}
	if applied {
		if cur, err = ev.stage(cur, rule, false); err != nil {
			return nil, err
		}
	}
	for len(pending) > 0 {
		picked := -1
		var shared []string
		for k, i := range pending {
			if s := sharedVars(cur.Cols(), rule.Body[i]); len(s) > 0 {
				picked, shared = k, s
				break
			}
		}
		if picked < 0 {
			picked = 0 // disconnected: cross product (shared stays empty)
		}
		if cur, err = joinNext(cur, pending[picked], shared); err != nil {
			return nil, err
		}
		pending = append(pending[:picked], pending[picked+1:]...)
		if cur, compsLeft, applied, err = applyReadyComps(cur, compsLeft, exec); err != nil {
			return nil, err
		}
		_ = applied
		// The intermediate budget guards every post-join stage: the
		// NoStream oracle checks the staged cardinality, the streaming
		// path counts rows as they flow.
		if cur, err = ev.stage(cur, rule, true); err != nil {
			return nil, err
		}
	}
	if len(compsLeft) > 0 {
		c := compsLeft[0]
		cur.Close()
		return nil, fmt.Errorf("datalogeval: line %d col %d: comparison %s over variables the body never binds", c.Line, c.Col, c)
	}
	for _, np := range cr.negs {
		if cur, err = applyNegation(cur, np, exec); err != nil {
			return nil, err
		}
		if ev.opts.NoStream {
			if cur, err = ev.stage(cur, rule, false); err != nil {
				return nil, err
			}
		}
	}
	return cur, nil
}

// exec maps the evaluator options onto the operator execution knobs.
func (ev *evaluator) exec() relstore.ExecOpts {
	mode := relstore.IndexAuto
	if ev.opts.NoIndex {
		mode = relstore.IndexOff
	}
	return relstore.ExecOpts{Workers: ev.opts.Workers, UseIndex: mode, Tracker: ev.tracker, Trace: ev.opts.Trace}
}

// stage is the per-operator boundary. In NoStream mode it materializes
// the pipeline head (tracking the staged rows until the next stage drains
// them) and, when check is set, enforces the intermediate budget on the
// staged cardinality — the old operator-at-a-time behavior, exactly. In
// the streaming default it only arms the budget guard, which counts rows
// as they flow instead.
func (ev *evaluator) stage(cur relstore.RowIter, rule datalog.Rule, check bool) (relstore.RowIter, error) {
	max := ev.opts.MaxDerivedTuples
	if !ev.opts.NoStream {
		if check && max > 0 {
			return &budgetIter{RowIter: cur, rule: rule, limit: intermediateBudgetFactor * max}, nil
		}
		return cur, nil
	}
	rel, err := relstore.Collect(cur)
	if err != nil {
		return nil, err
	}
	if check && max > 0 && int64(len(rel.Rows)) > intermediateBudgetFactor*max {
		return nil, budgetErr(rule, int64(len(rel.Rows)), max)
	}
	return relstore.IterRelTracked(rel, ev.tracker), nil
}

// budgetIter enforces the intermediate-rows budget on a streaming stage:
// it fails the stream as soon as more rows flow through than the budget
// allows, so an exploding join dies at the guard instead of exhausting
// memory downstream.
type budgetIter struct {
	relstore.RowIter
	rule  datalog.Rule
	limit int64
	n     int64
}

func (it *budgetIter) Next() (relstore.Row, bool, error) {
	row, ok, err := it.RowIter.Next()
	if ok {
		it.n++
		if it.n > it.limit {
			return nil, false, budgetErr(it.rule, it.n, it.limit/intermediateBudgetFactor)
		}
	}
	return row, ok, err
}

func budgetErr(rule datalog.Rule, n, max int64) error {
	return fmt.Errorf("%w: rule for %q materialized %d intermediate rows (budget %d x %d)",
		ErrTooManyDerived, rule.Head.Pred, n, intermediateBudgetFactor, max)
}

// intermediateBudgetFactor scales MaxDerivedTuples into a bound on the
// rows a single rule body may materialize mid-join. Intermediates
// legitimately exceed the distinct output (duplicates before
// projection/dedup), so the guard leaves headroom — but an exploding join
// (cross products, skewed keys) must fail fast rather than exhaust memory,
// which matters most for the serving daemon evaluating untrusted programs
// while holding its database lock.
const intermediateBudgetFactor = 16

func sharedVars(cols []string, a datalog.Atom) []string {
	var out []string
	for _, v := range a.Vars() {
		for _, c := range cols {
			if c == v {
				out = append(out, v)
				break
			}
		}
	}
	return out
}

// applyReadyComps filters the stream with every comparison whose
// variables are all bound, returning the comparisons still waiting for a
// join to bind their variables and whether a filter was applied.
func applyReadyComps(cur relstore.RowIter, comps []datalog.Comparison, exec relstore.ExecOpts) (relstore.RowIter, []datalog.Comparison, bool, error) {
	cols := cur.Cols()
	colIndex := func(name string) (int, bool) {
		for j, c := range cols {
			if c == name {
				return j, true
			}
		}
		return 0, false
	}
	var ready []datalog.Comparison
	var waiting []datalog.Comparison
	for _, c := range comps {
		ok := true
		for _, v := range c.Vars() {
			if _, bound := colIndex(v); !bound {
				ok = false
				break
			}
		}
		if ok {
			ready = append(ready, c)
		} else {
			waiting = append(waiting, c)
		}
	}
	if len(ready) == 0 {
		return cur, waiting, false, nil
	}
	type operand struct {
		col int // -1: constant
		val relstore.Value
	}
	type compiled struct {
		op   datalog.CompOp
		l, r operand
	}
	compile := func(t datalog.Term) (operand, error) {
		switch t.Kind {
		case datalog.TermVar:
			j, _ := colIndex(t.Var)
			return operand{col: j}, nil
		case datalog.TermInt:
			return operand{col: -1, val: relstore.IntVal(t.Int)}, nil
		case datalog.TermString:
			return operand{col: -1, val: relstore.StrVal(t.Str)}, nil
		default:
			return operand{}, fmt.Errorf("datalogeval: wildcard comparison operand")
		}
	}
	cs := make([]compiled, len(ready))
	for i, c := range ready {
		l, err := compile(c.L)
		if err != nil {
			cur.Close()
			return nil, nil, false, err
		}
		r, err := compile(c.R)
		if err != nil {
			cur.Close()
			return nil, nil, false, err
		}
		cs[i] = compiled{op: c.Op, l: l, r: r}
	}
	keep := func(row []relstore.Value) bool {
		for _, c := range cs {
			l, r := c.l.val, c.r.val
			if c.l.col >= 0 {
				l = row[c.l.col]
			}
			if c.r.col >= 0 {
				r = row[c.r.col]
			}
			if !holds(c.op, l.Compare(r)) {
				return false
			}
		}
		return true
	}
	return relstore.NewFilter(cur, exec, keep), waiting, true, nil
}

// holds interprets a comparison operator over a Compare result.
func holds(op datalog.CompOp, cmp int) bool {
	switch op {
	case datalog.OpEQ:
		return cmp == 0
	case datalog.OpNE:
		return cmp != 0
	case datalog.OpLT:
		return cmp < 0
	case datalog.OpLE:
		return cmp <= 0
	case datalog.OpGT:
		return cmp > 0
	default:
		return cmp >= 0
	}
}

// applyNegation anti-joins the stream against a precompiled negated
// atom: a row survives when no tuple of the negated predicate matches the
// atom's pattern under the row's bindings.
func applyNegation(cur relstore.RowIter, np *negPattern, exec relstore.ExecOpts) (relstore.RowIter, error) {
	cols := cur.Cols()
	curCols := make([]int, len(np.names))
	for k, v := range np.names {
		j := -1
		for c, name := range cols {
			if name == v {
				j = c
				break
			}
		}
		if j < 0 {
			cur.Close()
			return nil, fmt.Errorf("datalogeval: line %d col %d: unsafe negation: variable %q in %s is unbound", np.atom.Line, np.atom.Col, v, np.atom)
		}
		curCols[k] = j
	}
	if len(curCols) == 0 {
		// Fully ground negated atom: it either kills every row or none.
		if len(np.exists) > 0 {
			cur.Close()
			return relstore.IterRows(cols, nil), nil
		}
		return cur, nil
	}
	return relstore.NewFilter(cur, exec, func(row []relstore.Value) bool {
		key := make([]relstore.Value, len(curCols))
		for k, c := range curCols {
			key[k] = row[c]
		}
		_, hit := np.exists[rowKey(key)]
		return !hit
	}), nil
}
