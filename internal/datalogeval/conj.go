package datalogeval

import (
	"fmt"

	"graphgen/internal/datalog"
	"graphgen/internal/parallel"
	"graphgen/internal/relstore"
)

// This file evaluates one rule body: scan each positive atom (optionally
// substituting the semi-naive delta for one occurrence), hash-join the
// scans on their shared variables through the worker pool, filter with
// comparison literals as soon as their variables are bound, and finish
// with anti-joins for the negated atoms. The result keeps one column per
// distinct body variable; insert projects it onto the head.

// atomPattern is the compiled term pattern of one atom against a table
// schema: constant selections, repeated-variable equality filters, and the
// projection positions of the distinct variables (first occurrence each).
// It is shared by positive-atom scans and negated-atom set builds so the
// two matching semantics cannot diverge.
type atomPattern struct {
	preds      []patPred
	equalities [][2]int
	cols       []int    // table position of each distinct variable
	names      []string // the variables, same order as cols
}

type patPred struct {
	col int
	val relstore.Value
}

func compilePattern(atom datalog.Atom, t *relstore.Table) (*atomPattern, error) {
	if len(atom.Terms) > len(t.Cols) {
		return nil, fmt.Errorf("datalogeval: line %d col %d: atom %s has %d terms but table %s has %d columns",
			atom.Line, atom.Col, atom, len(atom.Terms), t.Name, len(t.Cols))
	}
	p := &atomPattern{}
	firstPos := make(map[string]int)
	for i, term := range atom.Terms {
		switch term.Kind {
		case datalog.TermInt:
			p.preds = append(p.preds, patPred{i, relstore.IntVal(term.Int)})
		case datalog.TermString:
			p.preds = append(p.preds, patPred{i, relstore.StrVal(term.Str)})
		case datalog.TermWildcard:
			// ignored position
		case datalog.TermVar:
			if j, dup := firstPos[term.Var]; dup {
				p.equalities = append(p.equalities, [2]int{j, i})
				continue
			}
			firstPos[term.Var] = i
			p.cols = append(p.cols, i)
			p.names = append(p.names, term.Var)
		}
	}
	return p, nil
}

// scanPreds converts the pattern's constant selections into the
// relational operators' predicate form.
func (p *atomPattern) scanPreds() []relstore.Pred {
	if len(p.preds) == 0 {
		return nil
	}
	out := make([]relstore.Pred, len(p.preds))
	for i, pr := range p.preds {
		out[i] = relstore.Pred{Col: pr.col, Value: pr.val}
	}
	return out
}

// matches reports whether a table row satisfies the pattern's constant
// selections and repeated-variable equalities.
func (p *atomPattern) matches(row []relstore.Value) bool {
	for _, pr := range p.preds {
		if !row[pr.col].Equal(pr.val) {
			return false
		}
	}
	for _, eq := range p.equalities {
		if !row[eq[0]].Equal(row[eq[1]]) {
			return false
		}
	}
	return true
}

// key extracts the pattern's variable positions from a matching row.
func (p *atomPattern) key(row []relstore.Value) string {
	vals := make([]relstore.Value, len(p.cols))
	for k, c := range p.cols {
		vals[k] = row[c]
	}
	return rowKey(vals)
}

// negPattern is one negated atom compiled against its (complete) table:
// the membership set of matching rows keyed on the atom's variable
// positions. Stratification guarantees the table no longer changes while
// the stratum referencing it evaluates, so the set is built once per
// stratum and reused across every semi-naive iteration.
type negPattern struct {
	atom   datalog.Atom
	names  []string // distinct variables, key order
	exists map[string]struct{}
}

func (ev *evaluator) compileNegation(neg datalog.Atom) (*negPattern, error) {
	t, err := ev.db.Table(neg.Pred)
	if err != nil {
		return nil, err
	}
	p, err := compilePattern(neg, t)
	if err != nil {
		return nil, err
	}
	np := &negPattern{atom: neg, names: p.names, exists: make(map[string]struct{}, len(t.Rows))}
	for _, row := range t.Rows {
		if p.matches(row) {
			np.exists[p.key(row)] = struct{}{}
		}
	}
	return np, nil
}

// evalRuleBody evaluates the positive/comparison/negation body of a
// compiled rule. deltaOcc >= 0 substitutes deltaRows for that
// positive-atom occurrence (the semi-naive rewriting); -1 evaluates
// against the full relations.
func (ev *evaluator) evalRuleBody(cr *compiledRule, deltaOcc int, deltaRows [][]relstore.Value) (*relstore.Rel, error) {
	rule := cr.rule
	if len(rule.Body) == 0 {
		return nil, fmt.Errorf("datalogeval: line %d col %d: rule for %q has no positive atoms", rule.Line, rule.Col, rule.Head.Pred)
	}
	workers := ev.opts.Workers
	scan := func(i int) (*relstore.Rel, error) {
		atom := rule.Body[i]
		t, err := ev.db.Table(atom.Pred)
		if err != nil {
			return nil, err
		}
		p, err := compilePattern(atom, t)
		if err != nil {
			return nil, err
		}
		if i == deltaOcc {
			return patternRel(p, deltaRows, workers)
		}
		// Full-relation occurrence: let the planner cost an index bucket
		// lookup against the parallel scan (identical output either way).
		if !ev.opts.NoIndex && len(p.equalities) == 0 {
			return relstore.ScanAuto(t, p.scanPreds(), p.cols, p.names, workers)
		}
		return patternRel(p, t.Rows, workers)
	}
	// joinNext joins cur with body atom i on the shared variables,
	// probing the table's persistent hash index instead of scanning and
	// building a throwaway hash table when the join is on a single
	// variable whose column is indexed and the accumulated relation is
	// small next to the column's distinct count (the same cost rule the
	// extraction planner uses). Delta occurrences never take the index
	// path: their row source is the delta slice, not the table. The
	// pattern is compiled once and shared by the index probe and the scan
	// fallback.
	joinNext := func(cur *relstore.Rel, i int, shared []string) (*relstore.Rel, error) {
		var rel *relstore.Rel
		if i == deltaOcc {
			var err error
			if rel, err = scan(i); err != nil {
				return nil, err
			}
		} else {
			atom := rule.Body[i]
			t, err := ev.db.Table(atom.Pred)
			if err != nil {
				return nil, err
			}
			p, err := compilePattern(atom, t)
			if err != nil {
				return nil, err
			}
			if !ev.opts.NoIndex && len(p.equalities) == 0 {
				if len(shared) == 1 {
					for k, name := range p.names {
						if name != shared[0] {
							continue
						}
						if ix := t.Index(t.Cols[p.cols[k]].Name); ix != nil && 2*len(cur.Rows) <= ix.NKeys() {
							return relstore.IndexedJoin(cur, shared[0], t, p.scanPreds(), p.cols, p.names, workers)
						}
						break
					}
				}
				if rel, err = relstore.ScanAuto(t, p.scanPreds(), p.cols, p.names, workers); err != nil {
					return nil, err
				}
			} else if rel, err = patternRel(p, t.Rows, workers); err != nil {
				return nil, err
			}
		}
		if len(shared) == 0 {
			// Disconnected body: an explicit cross product (the planner
			// invariant that every equi-join names its shared columns).
			return relstore.CrossWorkers(cur, rel, workers)
		}
		return relstore.MultiJoinWorkers(cur, rel, shared, workers)
	}

	// Join order: start from the delta occurrence (it is the small side
	// and every derivation must use it), otherwise the first atom; then
	// repeatedly take an atom sharing a variable, falling back to a cross
	// product only when no pending atom connects.
	first := 0
	if deltaOcc >= 0 {
		first = deltaOcc
	}
	cur, err := scan(first)
	if err != nil {
		return nil, err
	}
	pending := make([]int, 0, len(rule.Body)-1)
	for i := range rule.Body {
		if i != first {
			pending = append(pending, i)
		}
	}
	compsLeft := append([]datalog.Comparison(nil), rule.Comps...)
	if cur, compsLeft, err = applyReadyComps(cur, compsLeft, workers); err != nil {
		return nil, err
	}
	for len(pending) > 0 {
		picked := -1
		var shared []string
		for k, i := range pending {
			if s := sharedVars(cur, rule.Body[i]); len(s) > 0 {
				picked, shared = k, s
				break
			}
		}
		if picked < 0 {
			picked = 0 // disconnected: cross product (shared stays empty)
		}
		if cur, err = joinNext(cur, pending[picked], shared); err != nil {
			return nil, err
		}
		pending = append(pending[:picked], pending[picked+1:]...)
		if cur, compsLeft, err = applyReadyComps(cur, compsLeft, workers); err != nil {
			return nil, err
		}
		if err := ev.checkIntermediate(rule, cur); err != nil {
			return nil, err
		}
	}
	if len(compsLeft) > 0 {
		c := compsLeft[0]
		return nil, fmt.Errorf("datalogeval: line %d col %d: comparison %s over variables the body never binds", c.Line, c.Col, c)
	}
	for _, np := range cr.negs {
		if cur, err = applyNegation(cur, np, workers); err != nil {
			return nil, err
		}
	}
	return cur, nil
}

// intermediateBudgetFactor scales MaxDerivedTuples into a bound on the
// rows a single rule body may materialize mid-join. Intermediates
// legitimately exceed the distinct output (duplicates before
// projection/dedup), so the guard leaves headroom — but an exploding join
// (cross products, skewed keys) must fail fast rather than exhaust memory,
// which matters most for the serving daemon evaluating untrusted programs
// while holding its database lock.
const intermediateBudgetFactor = 16

// checkIntermediate enforces the materialization budget on the rows a
// rule body holds between joins (the derived-tuple budget itself is
// enforced at insert time).
func (ev *evaluator) checkIntermediate(rule datalog.Rule, cur *relstore.Rel) error {
	max := ev.opts.MaxDerivedTuples
	if max <= 0 {
		return nil
	}
	if int64(len(cur.Rows)) > intermediateBudgetFactor*max {
		return fmt.Errorf("%w: rule for %q materialized %d intermediate rows (budget %d x %d)",
			ErrTooManyDerived, rule.Head.Pred, len(cur.Rows), intermediateBudgetFactor, max)
	}
	return nil
}

func sharedVars(r *relstore.Rel, a datalog.Atom) []string {
	var out []string
	for _, v := range a.Vars() {
		if _, ok := r.ColIndex(v); ok {
			out = append(out, v)
		}
	}
	return out
}

// patternRel turns a compiled atom pattern over a row source into a
// relation: constant terms select, repeated variables filter, variable
// positions project under their variable names. The row loop fans out
// through the worker pool with a chunk-ordered merge.
func patternRel(p *atomPattern, rows [][]relstore.Value, workers int) (*relstore.Rel, error) {
	out := &relstore.Rel{Cols: p.names}
	chunks := parallel.MapChunks(len(rows), workers, 0, func(lo, hi int) [][]relstore.Value {
		var sel [][]relstore.Value
		for _, row := range rows[lo:hi] {
			if !p.matches(row) {
				continue
			}
			proj := make([]relstore.Value, len(p.cols))
			for k, c := range p.cols {
				proj[k] = row[c]
			}
			sel = append(sel, proj)
		}
		return sel
	})
	out.Rows = mergeChunks(chunks)
	return out, nil
}

// applyReadyComps filters the relation with every comparison whose
// variables are all bound, returning the comparisons still waiting for a
// join to bind their variables.
func applyReadyComps(cur *relstore.Rel, comps []datalog.Comparison, workers int) (*relstore.Rel, []datalog.Comparison, error) {
	var ready []datalog.Comparison
	var waiting []datalog.Comparison
	for _, c := range comps {
		ok := true
		for _, v := range c.Vars() {
			if _, bound := cur.ColIndex(v); !bound {
				ok = false
				break
			}
		}
		if ok {
			ready = append(ready, c)
		} else {
			waiting = append(waiting, c)
		}
	}
	if len(ready) == 0 {
		return cur, waiting, nil
	}
	type operand struct {
		col int // -1: constant
		val relstore.Value
	}
	type compiled struct {
		op   datalog.CompOp
		l, r operand
	}
	compile := func(t datalog.Term) (operand, error) {
		switch t.Kind {
		case datalog.TermVar:
			j, _ := cur.ColIndex(t.Var)
			return operand{col: j}, nil
		case datalog.TermInt:
			return operand{col: -1, val: relstore.IntVal(t.Int)}, nil
		case datalog.TermString:
			return operand{col: -1, val: relstore.StrVal(t.Str)}, nil
		default:
			return operand{}, fmt.Errorf("datalogeval: wildcard comparison operand")
		}
	}
	cs := make([]compiled, len(ready))
	for i, c := range ready {
		l, err := compile(c.L)
		if err != nil {
			return nil, nil, err
		}
		r, err := compile(c.R)
		if err != nil {
			return nil, nil, err
		}
		cs[i] = compiled{op: c.Op, l: l, r: r}
	}
	eval := func(row []relstore.Value) bool {
		for _, c := range cs {
			l, r := c.l.val, c.r.val
			if c.l.col >= 0 {
				l = row[c.l.col]
			}
			if c.r.col >= 0 {
				r = row[c.r.col]
			}
			if !holds(c.op, l.Compare(r)) {
				return false
			}
		}
		return true
	}
	chunks := parallel.MapChunks(len(cur.Rows), workers, 0, func(lo, hi int) [][]relstore.Value {
		var sel [][]relstore.Value
		for _, row := range cur.Rows[lo:hi] {
			if eval(row) {
				sel = append(sel, row)
			}
		}
		return sel
	})
	return &relstore.Rel{Cols: cur.Cols, Rows: mergeChunks(chunks)}, waiting, nil
}

// holds interprets a comparison operator over a Compare result.
func holds(op datalog.CompOp, cmp int) bool {
	switch op {
	case datalog.OpEQ:
		return cmp == 0
	case datalog.OpNE:
		return cmp != 0
	case datalog.OpLT:
		return cmp < 0
	case datalog.OpLE:
		return cmp <= 0
	case datalog.OpGT:
		return cmp > 0
	default:
		return cmp >= 0
	}
}

// applyNegation anti-joins the relation against a precompiled negated
// atom: a row survives when no tuple of the negated predicate matches the
// atom's pattern under the row's bindings.
func applyNegation(cur *relstore.Rel, np *negPattern, workers int) (*relstore.Rel, error) {
	curCols := make([]int, len(np.names))
	for k, v := range np.names {
		j, ok := cur.ColIndex(v)
		if !ok {
			return nil, fmt.Errorf("datalogeval: line %d col %d: unsafe negation: variable %q in %s is unbound", np.atom.Line, np.atom.Col, v, np.atom)
		}
		curCols[k] = j
	}
	if len(curCols) == 0 {
		// Fully ground negated atom: it either kills every row or none.
		if len(np.exists) > 0 {
			return &relstore.Rel{Cols: cur.Cols}, nil
		}
		return cur, nil
	}
	chunks := parallel.MapChunks(len(cur.Rows), workers, 0, func(lo, hi int) [][]relstore.Value {
		var sel [][]relstore.Value
		key := make([]relstore.Value, len(curCols))
		for _, row := range cur.Rows[lo:hi] {
			for k, c := range curCols {
				key[k] = row[c]
			}
			if _, hit := np.exists[rowKey(key)]; !hit {
				sel = append(sel, row)
			}
		}
		return sel
	})
	return &relstore.Rel{Cols: cur.Cols, Rows: mergeChunks(chunks)}, nil
}

func mergeChunks(chunks [][][]relstore.Value) [][]relstore.Value {
	switch len(chunks) {
	case 0:
		return nil
	case 1:
		return chunks[0]
	}
	total := 0
	for _, c := range chunks {
		total += len(c)
	}
	out := make([][]relstore.Value, 0, total)
	for _, c := range chunks {
		out = append(out, c...)
	}
	return out
}
