package extract

import (
	"fmt"
	"strings"

	"graphgen/internal/core"
	"graphgen/internal/datalog"
	"graphgen/internal/relstore"
)

// This file implements the condensed extraction algorithm of Section 4.2:
// classify each join of a Case-1 chain as large-output or not, split the
// chain into segments at the large joins, evaluate the segments as database
// queries, and materialize virtual nodes per distinct large-join attribute
// value with the three kinds of condensed edges.
//
// Planning (PlanEdges) is exposed separately from materialization
// (wirePlan) so that the incremental-maintenance subsystem
// (internal/incremental) can reuse the planner's segment structure to keep
// per-segment delta counts aligned with the wiring Extract produces.

// SegmentPlan is a maximal run of chain atoms without an interior
// large-output join. InVar/OutVar are its boundary variables: the left edge
// endpoint (or previous large-join attribute) and the right edge endpoint
// (or next large-join attribute).
type SegmentPlan struct {
	Atoms  []datalog.Atom
	InVar  string
	OutVar string
}

// EdgePlan is the extraction plan for one Edges rule. A single segment
// means the whole rule is handed to the database and loads direct edges;
// n > 1 segments are wired through n-1 virtual-node families (one per
// large-output join attribute, layered in chain order).
type EdgePlan struct {
	Rule     datalog.Rule
	Segments []SegmentPlan
	// Case2 records that the rule body is not an acyclic chain and fell
	// back to full expansion (its single segment is the whole body).
	Case2 bool
	// Symmetric records that the chain is its own mirror image, making
	// the extracted edges undirected.
	Symmetric bool
	// LargeJoins and DatabaseJoins count the planner's classification of
	// the rule's joins.
	LargeJoins    int
	DatabaseJoins int
}

// PlanEdges classifies rule and returns its extraction plan. Rules whose
// body is not an acyclic chain (Case 2) plan as one full-expansion segment;
// chain rules split into segments at the large-output joins.
func PlanEdges(db *relstore.DB, rule datalog.Rule, opts Options) (*EdgePlan, error) {
	chain, err := datalog.AnalyzeChain(rule)
	if err != nil {
		// Case 2: the whole body is one database query over the head
		// endpoints.
		id1 := rule.Head.Terms[0].Var
		id2 := rule.Head.Terms[1].Var
		return &EdgePlan{
			Rule:          rule,
			Case2:         true,
			Segments:      []SegmentPlan{{Atoms: rule.Body, InVar: id1, OutVar: id2}},
			DatabaseJoins: len(rule.Body) - 1,
		}, nil
	}
	plan := &EdgePlan{Rule: rule, Symmetric: chainSymmetric(chain)}
	n := len(chain.Steps)
	// Classify each of the n-1 joins.
	large := make([]bool, len(chain.JoinVars))
	for i, v := range chain.JoinVars {
		isLarge, err := joinIsLarge(db, chain.Steps[i], chain.Steps[i+1], v, opts)
		if err != nil {
			return nil, err
		}
		large[i] = isLarge
		if isLarge {
			plan.LargeJoins++
		} else {
			plan.DatabaseJoins++
		}
	}
	// Split into segments at the large joins.
	addSeg := func(lo, hi int) {
		atoms := make([]datalog.Atom, 0, hi-lo+1)
		for k := lo; k <= hi; k++ {
			atoms = append(atoms, chain.Steps[k].Atom)
		}
		plan.Segments = append(plan.Segments, SegmentPlan{
			Atoms: atoms, InVar: chain.Steps[lo].InVar, OutVar: chain.Steps[hi].OutVar,
		})
	}
	lo := 0
	for i := 0; i < len(large); i++ {
		if large[i] {
			addSeg(lo, i)
			lo = i + 1
		}
	}
	addSeg(lo, n-1)
	return plan, nil
}

// wirePlan evaluates the plan's segments against the database and
// materializes the edges: direct edges for a single-segment plan, condensed
// virtual-node wiring otherwise (Steps 4-5 of Section 4.2).
func wirePlan(db *relstore.DB, g *core.Graph, plan *EdgePlan, opts Options, st *Stats) error {
	rels := make([]*relstore.Rel, len(plan.Segments))
	for i, s := range plan.Segments {
		sp := opts.Trace.Push("segment", s.InVar+"->"+s.OutVar)
		rel, err := EvalConjunctive(db, s.Atoms, []string{s.InVar, s.OutVar}, true, opts)
		if err != nil {
			sp.End()
			return err
		}
		sp.AddRows(int64(len(rel.Rows)))
		sp.End()
		rels[i] = rel
	}

	if len(plan.Segments) == 1 {
		// No large-output join: the whole rule was handed to the
		// database; load direct (expanded) edges.
		var count int64
		for _, row := range rels[0].Rows {
			u, okU := g.RealIndex(AsID(row[0]))
			v, okV := g.RealIndex(AsID(row[1]))
			if !okU || !okV {
				st.SkippedRows++
				continue
			}
			g.AddDirectEdgeIdx(u, v)
			count++
			if opts.MaxEdges > 0 && count > opts.MaxEdges {
				return core.ErrTooLarge
			}
		}
		return nil
	}

	// Step 4: one virtual-node family per large join attribute; a virtual
	// node per distinct value. Layer k is the k-th large join (1-based).
	nAttrs := len(plan.Segments) - 1
	virtOf := make([]map[relstore.Value]int32, nAttrs)
	for k := range virtOf {
		virtOf[k] = make(map[relstore.Value]int32)
	}
	getVirt := func(attr int, v relstore.Value) int32 {
		if idx, ok := virtOf[attr][v]; ok {
			return idx
		}
		idx := g.AddVirtualNode(int32(attr + 1))
		virtOf[attr][v] = idx
		return idx
	}

	// Step 5: wire the condensed edges.
	for i, rel := range rels {
		switch {
		case i == 0:
			for _, row := range rel.Rows {
				r, ok := g.RealIndex(AsID(row[0]))
				if !ok {
					st.SkippedRows++
					continue
				}
				g.ConnectRealToVirt(r, getVirt(0, row[1]))
			}
		case i == len(rels)-1:
			for _, row := range rel.Rows {
				r, ok := g.RealIndex(AsID(row[1]))
				if !ok {
					st.SkippedRows++
					continue
				}
				g.ConnectVirtToReal(getVirt(i-1, row[0]), r)
			}
		default:
			for _, row := range rel.Rows {
				g.ConnectVirtToVirt(getVirt(i-1, row[0]), getVirt(i, row[1]))
			}
		}
	}
	return nil
}

// joinIsLarge applies the planner rule of Section 4.2 Step 2: the join on
// attribute v between the tables of two adjacent steps is large-output when
// |R||S|/d > factor*(|R|+|S|), with d the catalog distinct count of the join
// attribute (the larger side under the uniformity assumption).
func joinIsLarge(db *relstore.DB, left, right datalog.ChainStep, v string, opts Options) (bool, error) {
	if opts.ForceExpand {
		return false, nil
	}
	if opts.ForceCondensed {
		return true, nil
	}
	lt, lcol, err := tableColumnFor(db, left.Atom, v)
	if err != nil {
		return false, err
	}
	rt, rcol, err := tableColumnFor(db, right.Atom, v)
	if err != nil {
		return false, err
	}
	dl, err := lt.NDistinct(lcol)
	if err != nil {
		return false, err
	}
	dr, err := rt.NDistinct(rcol)
	if err != nil {
		return false, err
	}
	d := dl
	if dr > d {
		d = dr
	}
	if d == 0 {
		return false, nil
	}
	nl, nr := int64(lt.NumRows()), int64(rt.NumRows())
	return float64(nl*nr)/float64(d) > opts.LargeOutputFactor*float64(nl+nr), nil
}

// tableColumnFor resolves the table and column name bound to variable v in
// the atom (positional binding).
func tableColumnFor(db *relstore.DB, atom datalog.Atom, v string) (*relstore.Table, string, error) {
	t, err := db.Table(atom.Pred)
	if err != nil {
		return nil, "", err
	}
	idx, ok := atom.TermIndex(v)
	if !ok {
		return nil, "", fmt.Errorf("extract: variable %q not in atom %s", v, atom)
	}
	if idx >= len(t.Cols) {
		return nil, "", fmt.Errorf("extract: atom %s has more terms than table %s has columns", atom, t.Name)
	}
	return t, t.Cols[idx].Name, nil
}

// chainSymmetric reports whether a chain is its own mirror image, which
// makes the extracted graph undirected (e.g. the co-authors query, whose
// two halves scan the same table with swapped roles).
func chainSymmetric(c *datalog.Chain) bool {
	n := len(c.Steps)
	for i := 0; i < n; i++ {
		a := c.Steps[i]
		b := c.Steps[n-1-i]
		if !strings.EqualFold(a.Atom.Pred, b.Atom.Pred) {
			return false
		}
		ai, _ := a.Atom.TermIndex(a.InVar)
		ao, _ := a.Atom.TermIndex(a.OutVar)
		bi, _ := b.Atom.TermIndex(b.InVar)
		bo, _ := b.Atom.TermIndex(b.OutVar)
		if ai != bo || ao != bi {
			return false
		}
	}
	return true
}

// AsID maps a relational value into the real-node ID space. String IDs hash
// into the int64 space; the generators use integer keys, so that path only
// serves ad-hoc schemas.
func AsID(v relstore.Value) int64 {
	if v.T == relstore.Int {
		return v.I
	}
	var h int64 = 1469598103934665603
	for i := 0; i < len(v.S); i++ {
		h ^= int64(v.S[i])
		h *= 1099511628211
	}
	return h
}
