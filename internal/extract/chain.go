package extract

import (
	"fmt"

	"graphgen/internal/core"
	"graphgen/internal/datalog"
	"graphgen/internal/relstore"
)

// This file implements the condensed extraction algorithm of Section 4.2
// for one Case-1 chain: mark large-output joins, evaluate the in-between
// subchains as database queries, materialize virtual nodes per distinct
// large-join attribute value, and wire the three kinds of condensed edges.

// segment is a maximal run of chain steps without an interior large-output
// join. inVar/outVar are its boundary variables.
type segment struct {
	lo, hi int // step index range, inclusive
	inVar  string
	outVar string
}

func loadEdgesChain(db *relstore.DB, g *core.Graph, chain *Chain, opts Options, st *Stats) error {
	n := len(chain.Steps)
	// Classify each of the n-1 joins.
	large := make([]bool, len(chain.JoinVars))
	for i, v := range chain.JoinVars {
		isLarge, err := joinIsLarge(db, chain.Steps[i], chain.Steps[i+1], v, opts)
		if err != nil {
			return err
		}
		large[i] = isLarge
		if isLarge {
			st.LargeOutputJoins++
		} else {
			st.DatabaseJoins++
		}
	}
	// Split into segments at the large joins.
	var segs []segment
	lo := 0
	for i := 0; i < len(large); i++ {
		if large[i] {
			segs = append(segs, segment{lo: lo, hi: i, inVar: chain.Steps[lo].InVar, outVar: chain.Steps[i].OutVar})
			lo = i + 1
		}
	}
	segs = append(segs, segment{lo: lo, hi: n - 1, inVar: chain.Steps[lo].InVar, outVar: chain.Steps[n-1].OutVar})

	// Evaluate each segment against the database (SELECT DISTINCT of its
	// boundary variables over the subchain join).
	rels := make([]*relstore.Rel, len(segs))
	for i, s := range segs {
		atoms := make([]datalog.Atom, 0, s.hi-s.lo+1)
		for k := s.lo; k <= s.hi; k++ {
			atoms = append(atoms, chain.Steps[k].Atom)
		}
		rel, err := evalConjunctive(db, atoms, []string{s.inVar, s.outVar}, true, opts.Workers)
		if err != nil {
			return err
		}
		rels[i] = rel
	}

	if len(segs) == 1 {
		// No large-output join: the whole rule was handed to the
		// database; load direct (expanded) edges.
		var count int64
		for _, row := range rels[0].Rows {
			u, okU := g.RealIndex(asID(row[0]))
			v, okV := g.RealIndex(asID(row[1]))
			if !okU || !okV {
				st.SkippedRows++
				continue
			}
			g.AddDirectEdgeIdx(u, v)
			count++
			if opts.MaxEdges > 0 && count > opts.MaxEdges {
				return core.ErrTooLarge
			}
		}
		return nil
	}

	// Step 4: one virtual-node family per large join attribute; a virtual
	// node per distinct value. Layer k is the k-th large join (1-based).
	nAttrs := len(segs) - 1
	virtOf := make([]map[string]int32, nAttrs)
	for k := range virtOf {
		virtOf[k] = make(map[string]int32)
	}
	getVirt := func(attr int, v relstore.Value) int32 {
		key := v.String()
		if v.T == relstore.Int {
			key = "i" + key
		}
		if idx, ok := virtOf[attr][key]; ok {
			return idx
		}
		idx := g.AddVirtualNode(int32(attr + 1))
		virtOf[attr][key] = idx
		return idx
	}

	// Step 5: wire the condensed edges.
	for i, rel := range rels {
		switch {
		case i == 0:
			for _, row := range rel.Rows {
				r, ok := g.RealIndex(asID(row[0]))
				if !ok {
					st.SkippedRows++
					continue
				}
				g.ConnectRealToVirt(r, getVirt(0, row[1]))
			}
		case i == len(rels)-1:
			for _, row := range rel.Rows {
				r, ok := g.RealIndex(asID(row[1]))
				if !ok {
					st.SkippedRows++
					continue
				}
				g.ConnectVirtToReal(getVirt(i-1, row[0]), r)
			}
		default:
			for _, row := range rel.Rows {
				g.ConnectVirtToVirt(getVirt(i-1, row[0]), getVirt(i, row[1]))
			}
		}
	}
	return nil
}

// joinIsLarge applies the planner rule of Section 4.2 Step 2: the join on
// attribute v between the tables of two adjacent steps is large-output when
// |R||S|/d > factor*(|R|+|S|), with d the catalog distinct count of the join
// attribute (the larger side under the uniformity assumption).
func joinIsLarge(db *relstore.DB, left, right datalog.ChainStep, v string, opts Options) (bool, error) {
	if opts.ForceExpand {
		return false, nil
	}
	if opts.ForceCondensed {
		return true, nil
	}
	lt, lcol, err := tableColumnFor(db, left.Atom, v)
	if err != nil {
		return false, err
	}
	rt, rcol, err := tableColumnFor(db, right.Atom, v)
	if err != nil {
		return false, err
	}
	dl, err := lt.NDistinct(lcol)
	if err != nil {
		return false, err
	}
	dr, err := rt.NDistinct(rcol)
	if err != nil {
		return false, err
	}
	d := dl
	if dr > d {
		d = dr
	}
	if d == 0 {
		return false, nil
	}
	nl, nr := int64(lt.NumRows()), int64(rt.NumRows())
	return float64(nl*nr)/float64(d) > opts.LargeOutputFactor*float64(nl+nr), nil
}

// tableColumnFor resolves the table and column name bound to variable v in
// the atom (positional binding).
func tableColumnFor(db *relstore.DB, atom datalog.Atom, v string) (*relstore.Table, string, error) {
	t, err := db.Table(atom.Pred)
	if err != nil {
		return nil, "", err
	}
	idx, ok := atom.TermIndex(v)
	if !ok {
		return nil, "", fmt.Errorf("extract: variable %q not in atom %s", v, atom)
	}
	if idx >= len(t.Cols) {
		return nil, "", fmt.Errorf("extract: atom %s has more terms than table %s has columns", atom, t.Name)
	}
	return t, t.Cols[idx].Name, nil
}

func asID(v relstore.Value) int64 {
	if v.T == relstore.Int {
		return v.I
	}
	// String IDs hash into the int64 space; the generators use integer
	// keys, so this path only serves ad-hoc schemas.
	var h int64 = 1469598103934665603
	for i := 0; i < len(v.S); i++ {
		h ^= int64(v.S[i])
		h *= 1099511628211
	}
	return h
}
