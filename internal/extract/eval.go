package extract

import (
	"fmt"

	"graphgen/internal/datalog"
	"graphgen/internal/relstore"
)

// This file evaluates conjunctive queries (atom lists) against the relstore
// substrate as one fused pull-based pipeline: per-atom scans with constant
// selections pushed into the table (or index-bucket) walk, streaming hash
// joins on all shared variables, and a final distinct projection — the
// single materialization boundary, where Collect produces the result Rel.
// The extraction planner uses it both for the in-segment joins it "hands
// to the database" and for Case 2 full expansion. Parallel stages run on
// the shared worker pool (internal/parallel) with chunk-ordered merges,
// and the table joins defer the index-vs-scan access-path choice until
// the accumulated side has drained — every choice produces an identical
// row stream, so results do not depend on the worker count or on which
// indexes happen to exist.
//
// Options.NoStream interposes a materialization (relstore.Materialize)
// after every operator, reproducing the old operator-at-a-time execution
// exactly; it is the equivalence oracle and the peak-memory baseline for
// the streaming default.

// EvalConjunctive joins the atoms on their shared variables and projects
// outVars. The atom list must be connected (every atom shares a variable
// with the part already joined). opts supplies the scan/probe parallelism
// (Workers <= 0 means GOMAXPROCS), the NoIndex and NoStream switches, and
// the peak-intermediate-rows Tracker.
func EvalConjunctive(db *relstore.DB, atoms []datalog.Atom, outVars []string, distinct bool, opts Options) (*relstore.Rel, error) {
	if len(atoms) == 0 {
		return nil, fmt.Errorf("extract: empty rule body")
	}
	cur, err := scanAtom(db, atoms[0], opts)
	if err != nil {
		return nil, err
	}
	if cur, err = stage(cur, opts); err != nil {
		return nil, err
	}
	pending := make([]datalog.Atom, len(atoms)-1)
	copy(pending, atoms[1:])
	for len(pending) > 0 {
		// Pick the next atom sharing a variable with the current
		// relation, so disconnected bodies are detected rather than
		// silently cross-producted.
		picked := -1
		var shared []string
		for i, a := range pending {
			s := sharedVars(cur.Cols(), a)
			if len(s) > 0 {
				picked, shared = i, s
				break
			}
		}
		if picked < 0 {
			cur.Close()
			return nil, fmt.Errorf("extract: rule body is disconnected (atom %s shares no variable)", pending[0])
		}
		cur, err = joinAtom(db, cur, pending[picked], shared, opts)
		if err != nil {
			return nil, err
		}
		if cur, err = stage(cur, opts); err != nil {
			return nil, err
		}
		pending = append(pending[:picked], pending[picked+1:]...)
	}
	proj, err := relstore.NewProject(cur, outVars, distinct, execOpts(opts))
	if err != nil {
		return nil, err
	}
	return relstore.Collect(proj)
}

// execOpts maps extraction options onto the operator execution knobs.
func execOpts(opts Options) relstore.ExecOpts {
	mode := relstore.IndexAuto
	if opts.NoIndex {
		mode = relstore.IndexOff
	}
	return relstore.ExecOpts{Workers: opts.Workers, UseIndex: mode, Tracker: opts.Tracker, Trace: opts.Trace}
}

// stage is the NoStream oracle's boundary: it materializes the pipeline
// head after each operator (tracking the staged rows), so peak memory is
// the sum of intermediates exactly as in the pre-streaming engine. In the
// streaming default it is a no-op.
func stage(cur relstore.RowIter, opts Options) (relstore.RowIter, error) {
	if !opts.NoStream {
		return cur, nil
	}
	return relstore.Materialize(cur, opts.Tracker)
}

// joinAtom extends the pipeline with a streaming join against one more
// atom. The common no-repeated-variable case goes through NewTableJoin,
// which defers the planner's IndexedJoin-vs-scan choice (probing the
// persistent index touches ~|cur| * N/d table rows versus all N for a
// scan plus a throwaway hash table; the index wins when the accumulated
// relation is small next to the column's distinct count) until cur has
// drained and its exact cardinality is known. Both paths produce
// identical output.
func joinAtom(db *relstore.DB, cur relstore.RowIter, atom datalog.Atom, shared []string, opts Options) (relstore.RowIter, error) {
	sc, err := compileAtomScan(db, atom)
	if err != nil {
		cur.Close()
		return nil, err
	}
	if len(sc.equalities) == 0 {
		return relstore.NewTableJoin(cur, sc.t, sc.preds, sc.cols, sc.names, shared, execOpts(opts))
	}
	return relstore.NewJoin(cur, scanCompiled(sc, opts), shared, execOpts(opts))
}

func sharedVars(cols []string, a datalog.Atom) []string {
	var out []string
	for _, v := range a.Vars() {
		for _, c := range cols {
			if c == v {
				out = append(out, v)
				break
			}
		}
	}
	return out
}

// atomScan is one atom compiled against its table: constant terms as
// selection predicates, intra-atom repeated variables as equality filters,
// and the projection of the distinct variable positions under their
// variable names.
type atomScan struct {
	t          *relstore.Table
	preds      []relstore.Pred
	cols       []int
	names      []string
	equalities [][2]int
}

func compileAtomScan(db *relstore.DB, atom datalog.Atom) (*atomScan, error) {
	t, err := db.Table(atom.Pred)
	if err != nil {
		return nil, err
	}
	if len(atom.Terms) > len(t.Cols) {
		return nil, fmt.Errorf("extract: atom %s has %d terms but table %s has %d columns",
			atom, len(atom.Terms), t.Name, len(t.Cols))
	}
	sc := &atomScan{t: t}
	firstPos := make(map[string]int)
	for i, term := range atom.Terms {
		switch term.Kind {
		case datalog.TermInt:
			sc.preds = append(sc.preds, relstore.Pred{Col: i, Value: relstore.IntVal(term.Int)})
		case datalog.TermString:
			sc.preds = append(sc.preds, relstore.Pred{Col: i, Value: relstore.StrVal(term.Str)})
		case datalog.TermWildcard:
			// ignored position
		case datalog.TermVar:
			if j, dup := firstPos[term.Var]; dup {
				sc.equalities = append(sc.equalities, [2]int{j, i})
				continue
			}
			firstPos[term.Var] = i
			sc.cols = append(sc.cols, i)
			sc.names = append(sc.names, term.Var)
		}
	}
	return sc, nil
}

// scanCompiled streams a compiled atom scan. Without repeated variables
// it is a table scan under the planner's access-path choice (NewScan with
// IndexAuto/IndexOff); with them it is a one-pass select over the table
// rows applying predicates, equality filters, and the projection together.
func scanCompiled(sc *atomScan, opts Options) relstore.RowIter {
	if len(sc.equalities) == 0 {
		it, err := relstore.NewScan(sc.t, sc.preds, sc.cols, sc.names, execOpts(opts))
		if err == nil {
			return it
		}
		// Compilation bounds every column index, so NewScan cannot
		// reject the plan; fall through to the equivalent select walk.
	}
	return relstore.NewSelect(sc.t.Rows, sc.preds, sc.equalities, sc.cols, sc.names, execOpts(opts))
}

// scanAtom opens the pipeline source for one atom: constant terms as
// selection predicates, intra-atom repeated variables as equality
// filters, and the projection of the distinct variable positions under
// their variable names.
func scanAtom(db *relstore.DB, atom datalog.Atom, opts Options) (relstore.RowIter, error) {
	sc, err := compileAtomScan(db, atom)
	if err != nil {
		return nil, err
	}
	return scanCompiled(sc, opts), nil
}

// EnsureIndexes walks the rules' positive bodies and creates (idempotently)
// hash indexes on every column an access path can use: columns bound to a
// constant term (equality predicates) and columns bound to a variable that
// occurs more than once in the rule body (join columns, including the
// chain planner's large-join attributes). Missing tables and excess terms
// are skipped silently — evaluation surfaces those errors later with full
// diagnostics. Indexes persist on the tables, maintained through the
// mutation path, so one EnsureIndexes call serves every later extraction,
// semi-naive delta round, and live rebuild over the same database.
func EnsureIndexes(db *relstore.DB, rules []datalog.Rule) {
	for _, r := range rules {
		occurrences := make(map[string]int)
		for _, a := range r.Body {
			for _, term := range a.Terms {
				if term.Kind == datalog.TermVar {
					occurrences[term.Var]++
				}
			}
		}
		for _, a := range r.Body {
			t, err := db.Table(a.Pred)
			if err != nil {
				continue
			}
			for i, term := range a.Terms {
				if i >= len(t.Cols) {
					break
				}
				switch term.Kind {
				case datalog.TermInt, datalog.TermString:
					_, _ = t.CreateIndex(t.Cols[i].Name)
				case datalog.TermVar:
					if occurrences[term.Var] >= 2 {
						_, _ = t.CreateIndex(t.Cols[i].Name)
					}
				}
			}
		}
	}
}
