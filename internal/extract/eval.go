package extract

import (
	"fmt"

	"graphgen/internal/datalog"
	"graphgen/internal/relstore"
)

// This file evaluates conjunctive queries (atom lists) against the relstore
// substrate: per-atom scans with constant selections, hash joins on all
// shared variables, and a final distinct projection. The extraction planner
// uses it both for the in-segment joins it "hands to the database" and for
// Case 2 full expansion. Scans and the join probe phase run on the shared
// worker pool (internal/parallel) with chunk-ordered merges, and the
// planner swaps in the index-backed access paths (relstore.IndexScan /
// relstore.IndexedJoin) when a persistent hash index is present and the
// catalog statistics say it beats the parallel scan — every choice
// produces an identical relation, so results do not depend on the worker
// count or on which indexes happen to exist.

// EvalConjunctive joins the atoms on their shared variables and projects
// outVars. The atom list must be connected (every atom shares a variable
// with the part already joined). opts supplies the scan/probe parallelism
// (Workers <= 0 means GOMAXPROCS) and the NoIndex switch.
func EvalConjunctive(db *relstore.DB, atoms []datalog.Atom, outVars []string, distinct bool, opts Options) (*relstore.Rel, error) {
	if len(atoms) == 0 {
		return nil, fmt.Errorf("extract: empty rule body")
	}
	cur, err := scanAtom(db, atoms[0], opts)
	if err != nil {
		return nil, err
	}
	pending := make([]datalog.Atom, len(atoms)-1)
	copy(pending, atoms[1:])
	for len(pending) > 0 {
		// Pick the next atom sharing a variable with the current
		// relation, so disconnected bodies are detected rather than
		// silently cross-producted.
		picked := -1
		var shared []string
		for i, a := range pending {
			s := sharedVars(cur, a)
			if len(s) > 0 {
				picked, shared = i, s
				break
			}
		}
		if picked < 0 {
			return nil, fmt.Errorf("extract: rule body is disconnected (atom %s shares no variable)", pending[0])
		}
		cur, err = joinAtom(db, cur, pending[picked], shared, opts)
		if err != nil {
			return nil, err
		}
		pending = append(pending[:picked], pending[picked+1:]...)
	}
	return relstore.Project(cur, outVars, distinct)
}

// joinAtom joins cur with one more atom on the shared variables. When the
// join is on a single variable whose table column carries a hash index,
// the planner costs probing that persistent index (touching ~|cur| * N/d
// table rows) against scanning the table and building a throwaway hash
// table (touching all N rows): under the uniformity assumption the index
// wins when the accumulated relation is small next to the column's
// distinct count. Both paths produce identical output.
func joinAtom(db *relstore.DB, cur *relstore.Rel, atom datalog.Atom, shared []string, opts Options) (*relstore.Rel, error) {
	sc, err := compileAtomScan(db, atom)
	if err != nil {
		return nil, err
	}
	if !opts.NoIndex && len(shared) == 1 && len(sc.equalities) == 0 {
		if ni := indexOfName(sc.names, shared[0]); ni >= 0 {
			if ix := sc.t.Index(sc.t.Cols[sc.cols[ni]].Name); ix != nil && 2*len(cur.Rows) <= ix.NKeys() {
				return relstore.IndexedJoin(cur, shared[0], sc.t, sc.preds, sc.cols, sc.names, opts.Workers)
			}
		}
	}
	rel, err := scanCompiled(sc, opts)
	if err != nil {
		return nil, err
	}
	return relstore.MultiJoinWorkers(cur, rel, shared, opts.Workers)
}

func indexOfName(names []string, name string) int {
	for i, n := range names {
		if n == name {
			return i
		}
	}
	return -1
}

func sharedVars(r *relstore.Rel, a datalog.Atom) []string {
	var out []string
	for _, v := range a.Vars() {
		if _, ok := r.ColIndex(v); ok {
			out = append(out, v)
		}
	}
	return out
}

// atomScan is one atom compiled against its table: constant terms as
// selection predicates, intra-atom repeated variables as equality filters,
// and the projection of the distinct variable positions under their
// variable names.
type atomScan struct {
	t          *relstore.Table
	preds      []relstore.Pred
	cols       []int
	names      []string
	equalities [][2]int
}

func compileAtomScan(db *relstore.DB, atom datalog.Atom) (*atomScan, error) {
	t, err := db.Table(atom.Pred)
	if err != nil {
		return nil, err
	}
	if len(atom.Terms) > len(t.Cols) {
		return nil, fmt.Errorf("extract: atom %s has %d terms but table %s has %d columns",
			atom, len(atom.Terms), t.Name, len(t.Cols))
	}
	sc := &atomScan{t: t}
	firstPos := make(map[string]int)
	for i, term := range atom.Terms {
		switch term.Kind {
		case datalog.TermInt:
			sc.preds = append(sc.preds, relstore.Pred{Col: i, Value: relstore.IntVal(term.Int)})
		case datalog.TermString:
			sc.preds = append(sc.preds, relstore.Pred{Col: i, Value: relstore.StrVal(term.Str)})
		case datalog.TermWildcard:
			// ignored position
		case datalog.TermVar:
			if j, dup := firstPos[term.Var]; dup {
				sc.equalities = append(sc.equalities, [2]int{j, i})
				continue
			}
			firstPos[term.Var] = i
			sc.cols = append(sc.cols, i)
			sc.names = append(sc.names, term.Var)
		}
	}
	return sc, nil
}

// scanRel runs a compiled scan through the planner's access-path choice:
// the catalog-costed ScanAuto (index vs parallel scan) unless indexing is
// disabled.
func scanRel(t *relstore.Table, preds []relstore.Pred, cols []int, names []string, opts Options) (*relstore.Rel, error) {
	if opts.NoIndex {
		return relstore.ScanWorkers(t, preds, cols, names, opts.Workers)
	}
	return relstore.ScanAuto(t, preds, cols, names, opts.Workers)
}

// scanCompiled materializes a compiled atom scan, handling the
// repeated-variable case with a wide scan plus filter.
func scanCompiled(sc *atomScan, opts Options) (*relstore.Rel, error) {
	if len(sc.equalities) == 0 {
		return scanRel(sc.t, sc.preds, sc.cols, sc.names, opts)
	}
	// Repeated variable within the atom: scan wide, filter, then project.
	all := make([]int, len(sc.t.Cols))
	wide := make([]string, len(sc.t.Cols))
	for i := range sc.t.Cols {
		all[i] = i
		wide[i] = fmt.Sprintf("#%d", i)
	}
	raw, err := scanRel(sc.t, sc.preds, all, wide, opts)
	if err != nil {
		return nil, err
	}
	out := &relstore.Rel{Cols: sc.names}
rows:
	for _, row := range raw.Rows {
		for _, eq := range sc.equalities {
			if !row[eq[0]].Equal(row[eq[1]]) {
				continue rows
			}
		}
		proj := make([]relstore.Value, len(sc.cols))
		for k, c := range sc.cols {
			proj[k] = row[c]
		}
		out.Rows = append(out.Rows, proj)
	}
	return out, nil
}

// scanAtom scans the atom's table, applying constant terms as selection
// predicates and intra-atom repeated variables as equality filters, and
// projects the variable positions under their variable names.
func scanAtom(db *relstore.DB, atom datalog.Atom, opts Options) (*relstore.Rel, error) {
	sc, err := compileAtomScan(db, atom)
	if err != nil {
		return nil, err
	}
	return scanCompiled(sc, opts)
}

// EnsureIndexes walks the rules' positive bodies and creates (idempotently)
// hash indexes on every column an access path can use: columns bound to a
// constant term (equality predicates) and columns bound to a variable that
// occurs more than once in the rule body (join columns, including the
// chain planner's large-join attributes). Missing tables and excess terms
// are skipped silently — evaluation surfaces those errors later with full
// diagnostics. Indexes persist on the tables, maintained through the
// mutation path, so one EnsureIndexes call serves every later extraction,
// semi-naive delta round, and live rebuild over the same database.
func EnsureIndexes(db *relstore.DB, rules []datalog.Rule) {
	for _, r := range rules {
		occurrences := make(map[string]int)
		for _, a := range r.Body {
			for _, term := range a.Terms {
				if term.Kind == datalog.TermVar {
					occurrences[term.Var]++
				}
			}
		}
		for _, a := range r.Body {
			t, err := db.Table(a.Pred)
			if err != nil {
				continue
			}
			for i, term := range a.Terms {
				if i >= len(t.Cols) {
					break
				}
				switch term.Kind {
				case datalog.TermInt, datalog.TermString:
					_, _ = t.CreateIndex(t.Cols[i].Name)
				case datalog.TermVar:
					if occurrences[term.Var] >= 2 {
						_, _ = t.CreateIndex(t.Cols[i].Name)
					}
				}
			}
		}
	}
}
