package extract

import (
	"fmt"

	"graphgen/internal/datalog"
	"graphgen/internal/relstore"
)

// This file evaluates conjunctive queries (atom lists) against the relstore
// substrate: per-atom scans with constant selections, hash joins on all
// shared variables, and a final distinct projection. The extraction planner
// uses it both for the in-segment joins it "hands to the database" and for
// Case 2 full expansion. Scans and the join probe phase run on the shared
// worker pool (internal/parallel) with chunk-ordered merges, so results are
// identical for every worker count.

// EvalConjunctive joins the atoms on their shared variables and projects
// outVars. The atom list must be connected (every atom shares a variable
// with the part already joined). workers bounds the scan/probe parallelism
// (<= 0 means GOMAXPROCS).
func EvalConjunctive(db *relstore.DB, atoms []datalog.Atom, outVars []string, distinct bool, workers int) (*relstore.Rel, error) {
	if len(atoms) == 0 {
		return nil, fmt.Errorf("extract: empty rule body")
	}
	cur, err := scanAtom(db, atoms[0], workers)
	if err != nil {
		return nil, err
	}
	pending := make([]datalog.Atom, len(atoms)-1)
	copy(pending, atoms[1:])
	for len(pending) > 0 {
		// Pick the next atom sharing a variable with the current
		// relation, so disconnected bodies are detected rather than
		// silently cross-producted.
		picked := -1
		var shared []string
		for i, a := range pending {
			s := sharedVars(cur, a)
			if len(s) > 0 {
				picked, shared = i, s
				break
			}
		}
		if picked < 0 {
			return nil, fmt.Errorf("extract: rule body is disconnected (atom %s shares no variable)", pending[0])
		}
		rel, err := scanAtom(db, pending[picked], workers)
		if err != nil {
			return nil, err
		}
		cur, err = relstore.MultiJoinWorkers(cur, rel, shared, workers)
		if err != nil {
			return nil, err
		}
		pending = append(pending[:picked], pending[picked+1:]...)
	}
	return relstore.Project(cur, outVars, distinct)
}

func sharedVars(r *relstore.Rel, a datalog.Atom) []string {
	var out []string
	for _, v := range a.Vars() {
		if _, ok := r.ColIndex(v); ok {
			out = append(out, v)
		}
	}
	return out
}

// scanAtom scans the atom's table, applying constant terms as selection
// predicates and intra-atom repeated variables as equality filters, and
// projects the variable positions under their variable names.
func scanAtom(db *relstore.DB, atom datalog.Atom, workers int) (*relstore.Rel, error) {
	t, err := db.Table(atom.Pred)
	if err != nil {
		return nil, err
	}
	if len(atom.Terms) > len(t.Cols) {
		return nil, fmt.Errorf("extract: atom %s has %d terms but table %s has %d columns",
			atom, len(atom.Terms), t.Name, len(t.Cols))
	}
	var preds []relstore.Pred
	var cols []int
	var names []string
	firstPos := make(map[string]int)
	var equalities [][2]int
	for i, term := range atom.Terms {
		switch term.Kind {
		case datalog.TermInt:
			preds = append(preds, relstore.Pred{Col: i, Value: relstore.IntVal(term.Int)})
		case datalog.TermString:
			preds = append(preds, relstore.Pred{Col: i, Value: relstore.StrVal(term.Str)})
		case datalog.TermWildcard:
			// ignored position
		case datalog.TermVar:
			if j, dup := firstPos[term.Var]; dup {
				equalities = append(equalities, [2]int{j, i})
				continue
			}
			firstPos[term.Var] = i
			cols = append(cols, i)
			names = append(names, term.Var)
		}
	}
	if len(equalities) == 0 {
		return relstore.ScanWorkers(t, preds, cols, names, workers)
	}
	// Repeated variable within the atom: scan wide, filter, then project.
	all := make([]int, len(t.Cols))
	wide := make([]string, len(t.Cols))
	for i := range t.Cols {
		all[i] = i
		wide[i] = fmt.Sprintf("#%d", i)
	}
	raw, err := relstore.ScanWorkers(t, preds, all, wide, workers)
	if err != nil {
		return nil, err
	}
	out := &relstore.Rel{Cols: names}
rows:
	for _, row := range raw.Rows {
		for _, eq := range equalities {
			if !row[eq[0]].Equal(row[eq[1]]) {
				continue rows
			}
		}
		proj := make([]relstore.Value, len(cols))
		for k, c := range cols {
			proj[k] = row[c]
		}
		out.Rows = append(out.Rows, proj)
	}
	return out, nil
}
