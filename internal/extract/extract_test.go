package extract

import (
	"errors"
	"testing"

	"graphgen/internal/core"
	"graphgen/internal/datalog"
	"graphgen/internal/relstore"
)

// dblpDB builds a toy DBLP-like database: 6 authors, 4 pubs.
func dblpDB(t *testing.T) *relstore.DB {
	t.Helper()
	db := relstore.NewDB()
	author, _ := db.Create("Author",
		relstore.Column{Name: "id", Type: relstore.Int},
		relstore.Column{Name: "name", Type: relstore.String})
	ap, _ := db.Create("AuthorPub",
		relstore.Column{Name: "aid", Type: relstore.Int},
		relstore.Column{Name: "pid", Type: relstore.Int})
	names := []string{"ann", "bob", "cat", "dan", "eve", "fay"}
	for i, n := range names {
		author.Insert(relstore.IntVal(int64(i+1)), relstore.StrVal(n))
	}
	pubs := map[int64][]int64{
		100: {1, 2, 3},
		200: {1, 4},
		300: {3, 4, 5},
		400: {6},
	}
	for pid, authors := range pubs {
		for _, aid := range authors {
			ap.Insert(relstore.IntVal(aid), relstore.IntVal(pid))
		}
	}
	return db
}

const coauthors = `
Nodes(ID, Name) :- Author(ID, Name).
Edges(ID1, ID2) :- AuthorPub(ID1, PubID), AuthorPub(ID2, PubID).
`

func mustParse(t *testing.T, src string) *datalog.Program {
	t.Helper()
	p, err := datalog.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// expectedCoauthorEdges is the hand-computed co-author edge set (no self
// loops, both directions).
func expectedCoauthorEdges() map[[2]int64]struct{} {
	pairs := [][2]int64{{1, 2}, {1, 3}, {2, 3}, {1, 4}, {3, 4}, {3, 5}, {4, 5}}
	set := make(map[[2]int64]struct{})
	for _, p := range pairs {
		set[[2]int64{p[0], p[1]}] = struct{}{}
		set[[2]int64{p[1], p[0]}] = struct{}{}
	}
	return set
}

func TestExtractCondensedCoauthors(t *testing.T) {
	db := dblpDB(t)
	opts := DefaultOptions()
	opts.ForceCondensed = true
	opts.SkipPreprocess = true
	res, err := Extract(db, mustParse(t, coauthors), opts)
	if err != nil {
		t.Fatal(err)
	}
	g := res.Graph
	if g.NumRealNodes() != 6 {
		t.Fatalf("real nodes = %d, want 6", g.NumRealNodes())
	}
	if g.NumVirtualNodes() != 4 {
		t.Fatalf("virtual nodes = %d, want 4 (one per pub)", g.NumVirtualNodes())
	}
	if !g.Symmetric {
		t.Fatal("co-author chain should be detected as symmetric")
	}
	want := expectedCoauthorEdges()
	got := g.EdgeSetByID()
	if len(got) != len(want) {
		t.Fatalf("edges = %d, want %d: %v", len(got), len(want), got)
	}
	for e := range want {
		if _, ok := got[e]; !ok {
			t.Fatalf("missing edge %v", e)
		}
	}
	// Properties from the Nodes statement.
	if name, ok := g.PropertyOf(1, "Name"); !ok || name != "ann" {
		t.Fatalf("property Name of node 1 = %q, %v", name, ok)
	}
	if res.Stats.LargeOutputJoins != 1 {
		t.Fatalf("large joins = %d, want 1", res.Stats.LargeOutputJoins)
	}
}

func TestExtractExpandedMatchesCondensed(t *testing.T) {
	db := dblpDB(t)
	condOpts := DefaultOptions()
	condOpts.ForceCondensed = true
	condOpts.SkipPreprocess = true
	cond, err := Extract(db, mustParse(t, coauthors), condOpts)
	if err != nil {
		t.Fatal(err)
	}
	expOpts := DefaultOptions()
	expOpts.ForceExpand = true
	exp, err := Extract(db, mustParse(t, coauthors), expOpts)
	if err != nil {
		t.Fatal(err)
	}
	if exp.Graph.NumVirtualNodes() != 0 {
		t.Fatalf("forced expansion still has %d virtual nodes", exp.Graph.NumVirtualNodes())
	}
	cset, eset := cond.Graph.EdgeSetByID(), exp.Graph.EdgeSetByID()
	if len(cset) != len(eset) {
		t.Fatalf("condensed %d edges, expanded %d", len(cset), len(eset))
	}
	for e := range cset {
		if _, ok := eset[e]; !ok {
			t.Fatalf("edge %v missing from expansion", e)
		}
	}
}

func TestPlannerSelectivityDecision(t *testing.T) {
	// A key-foreign-key join (high distinct count) must be executed by
	// the database; the pub self-join (low distinct count, large output)
	// must be postponed. We build a DB where AuthorPub has very few
	// distinct pids so the self-join blows up.
	db := relstore.NewDB()
	author, _ := db.Create("Author",
		relstore.Column{Name: "id", Type: relstore.Int},
		relstore.Column{Name: "name", Type: relstore.String})
	ap, _ := db.Create("AuthorPub",
		relstore.Column{Name: "aid", Type: relstore.Int},
		relstore.Column{Name: "pid", Type: relstore.Int})
	for i := int64(1); i <= 40; i++ {
		author.Insert(relstore.IntVal(i), relstore.StrVal("x"))
		ap.Insert(relstore.IntVal(i), relstore.IntVal(i%2)) // 2 giant pubs
	}
	res, err := Extract(db, mustParse(t, coauthors), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.LargeOutputJoins != 1 || res.Stats.DatabaseJoins != 0 {
		t.Fatalf("stats = %+v, want the self-join postponed", res.Stats)
	}
	// 40*40/2 paths condensed into 2 virtual nodes with 80 edges.
	if res.Graph.NumVirtualNodes() != 2 {
		t.Fatalf("virtual nodes = %d, want 2", res.Graph.NumVirtualNodes())
	}
}

func TestPlannerHandsSmallJoinsToDatabase(t *testing.T) {
	// Unique pids: each pub has exactly one author, so the self-join is
	// small-output and the planner should expand it directly.
	db := relstore.NewDB()
	author, _ := db.Create("Author",
		relstore.Column{Name: "id", Type: relstore.Int},
		relstore.Column{Name: "name", Type: relstore.String})
	ap, _ := db.Create("AuthorPub",
		relstore.Column{Name: "aid", Type: relstore.Int},
		relstore.Column{Name: "pid", Type: relstore.Int})
	for i := int64(1); i <= 30; i++ {
		author.Insert(relstore.IntVal(i), relstore.StrVal("x"))
		ap.Insert(relstore.IntVal(i), relstore.IntVal(1000+i))
	}
	res, err := Extract(db, mustParse(t, coauthors), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.LargeOutputJoins != 0 {
		t.Fatalf("large joins = %d, want 0", res.Stats.LargeOutputJoins)
	}
	if res.Graph.NumVirtualNodes() != 0 {
		t.Fatalf("virtual nodes = %d, want 0", res.Graph.NumVirtualNodes())
	}
}

const tpchQuery = `
Nodes(ID, Name) :- Customer(ID, Name).
Edges(ID1, ID2) :- Orders(ok1, ID1), LineItem(ok1, pk), Orders(ok2, ID2), LineItem(ok2, pk).
`

func tpchDB(t *testing.T) *relstore.DB {
	t.Helper()
	db := relstore.NewDB()
	cust, _ := db.Create("Customer",
		relstore.Column{Name: "custkey", Type: relstore.Int},
		relstore.Column{Name: "name", Type: relstore.String})
	orders, _ := db.Create("Orders",
		relstore.Column{Name: "orderkey", Type: relstore.Int},
		relstore.Column{Name: "custkey", Type: relstore.Int})
	li, _ := db.Create("LineItem",
		relstore.Column{Name: "orderkey", Type: relstore.Int},
		relstore.Column{Name: "partkey", Type: relstore.Int})
	for c := int64(1); c <= 5; c++ {
		cust.Insert(relstore.IntVal(c), relstore.StrVal("c"))
	}
	// order o belongs to customer o%5+1; order o has items o%3 and o%4.
	for o := int64(1); o <= 12; o++ {
		orders.Insert(relstore.IntVal(o), relstore.IntVal(o%5+1))
		li.Insert(relstore.IntVal(o), relstore.IntVal(o%3))
		li.Insert(relstore.IntVal(o), relstore.IntVal(100+o%4))
	}
	return db
}

func TestExtractMultiLayerTPCH(t *testing.T) {
	db := tpchDB(t)
	opts := DefaultOptions()
	opts.ForceCondensed = true // postpone all three joins: 3-layer condensed graph
	opts.SkipPreprocess = true
	cond, err := Extract(db, mustParse(t, tpchQuery), opts)
	if err != nil {
		t.Fatal(err)
	}
	if cond.Stats.LargeOutputJoins != 3 {
		t.Fatalf("large joins = %d, want 3", cond.Stats.LargeOutputJoins)
	}
	if got := cond.Graph.MaxLayer(); got != 3 {
		t.Fatalf("MaxLayer = %d, want 3", got)
	}
	if err := cond.Graph.VerifyDAG(); err != nil {
		t.Fatal(err)
	}
	expOpts := DefaultOptions()
	expOpts.ForceExpand = true
	exp, err := Extract(db, mustParse(t, tpchQuery), expOpts)
	if err != nil {
		t.Fatal(err)
	}
	cset, eset := cond.Graph.EdgeSetByID(), exp.Graph.EdgeSetByID()
	if len(cset) != len(eset) {
		t.Fatalf("condensed %d edges, expanded %d", len(cset), len(eset))
	}
	for e := range cset {
		if _, ok := eset[e]; !ok {
			t.Fatalf("edge %v missing", e)
		}
	}
}

const bipartite = `
Nodes(ID, Name) :- Instructor(ID, Name).
Nodes(ID, Name) :- Student(ID, Name).
Edges(ID1, ID2) :- TaughtCourse(ID1, c), TookCourse(ID2, c).
`

func TestExtractHeterogeneousBipartite(t *testing.T) {
	db := relstore.NewDB()
	inst, _ := db.Create("Instructor",
		relstore.Column{Name: "id", Type: relstore.Int},
		relstore.Column{Name: "name", Type: relstore.String})
	stud, _ := db.Create("Student",
		relstore.Column{Name: "id", Type: relstore.Int},
		relstore.Column{Name: "name", Type: relstore.String})
	taught, _ := db.Create("TaughtCourse",
		relstore.Column{Name: "iid", Type: relstore.Int},
		relstore.Column{Name: "cid", Type: relstore.Int})
	took, _ := db.Create("TookCourse",
		relstore.Column{Name: "sid", Type: relstore.Int},
		relstore.Column{Name: "cid", Type: relstore.Int})
	inst.Insert(relstore.IntVal(1), relstore.StrVal("prof1"))
	inst.Insert(relstore.IntVal(2), relstore.StrVal("prof2"))
	for s := int64(100); s < 104; s++ {
		stud.Insert(relstore.IntVal(s), relstore.StrVal("s"))
	}
	taught.Insert(relstore.IntVal(1), relstore.IntVal(7))
	taught.Insert(relstore.IntVal(2), relstore.IntVal(8))
	took.Insert(relstore.IntVal(100), relstore.IntVal(7))
	took.Insert(relstore.IntVal(101), relstore.IntVal(7))
	took.Insert(relstore.IntVal(102), relstore.IntVal(8))
	took.Insert(relstore.IntVal(103), relstore.IntVal(8))

	opts := DefaultOptions()
	opts.ForceCondensed = true
	opts.SkipPreprocess = true
	res, err := Extract(db, mustParse(t, bipartite), opts)
	if err != nil {
		t.Fatal(err)
	}
	g := res.Graph
	if g.Symmetric {
		t.Fatal("bipartite graph must not be marked symmetric")
	}
	if g.NumRealNodes() != 6 {
		t.Fatalf("real nodes = %d, want 6", g.NumRealNodes())
	}
	// Directed edges instructor -> student only.
	got := g.EdgeSetByID()
	want := map[[2]int64]struct{}{
		{1, 100}: {}, {1, 101}: {}, {2, 102}: {}, {2, 103}: {},
	}
	if len(got) != len(want) {
		t.Fatalf("edges = %v", got)
	}
	for e := range want {
		if _, ok := got[e]; !ok {
			t.Fatalf("missing %v", e)
		}
	}
}

func TestExtractUnionOfEdgesStatements(t *testing.T) {
	// Two Edges statements: co-authors UNION explicit follows — the union
	// semantics of Section 4.2 ("the final constructed graph would be the
	// union of the graphs constructed for each of them").
	db := dblpDB(t)
	follows, _ := db.Create("Follows",
		relstore.Column{Name: "src", Type: relstore.Int},
		relstore.Column{Name: "dst", Type: relstore.Int})
	follows.Insert(relstore.IntVal(6), relstore.IntVal(1)) // 6 otherwise isolated
	follows.Insert(relstore.IntVal(1), relstore.IntVal(2)) // already a co-author pair
	src := `
Nodes(ID, Name) :- Author(ID, Name).
Edges(ID1, ID2) :- AuthorPub(ID1, PubID), AuthorPub(ID2, PubID).
Edges(A, B) :- Follows(A, B).
`
	opts := DefaultOptions()
	opts.ForceCondensed = true
	opts.SkipPreprocess = true
	res, err := Extract(db, mustParse(t, src), opts)
	if err != nil {
		t.Fatal(err)
	}
	g := res.Graph
	// Union adds 6 -> 1 on top of the co-author edges.
	want := expectedCoauthorEdges()
	want[[2]int64{6, 1}] = struct{}{}
	got := g.EdgeSetByID()
	if len(got) != len(want) {
		t.Fatalf("edges = %d, want %d", len(got), len(want))
	}
	for e := range want {
		if _, ok := got[e]; !ok {
			t.Fatalf("missing edge %v", e)
		}
	}
	if g.Symmetric {
		t.Fatal("union with a directed rule must not be marked symmetric")
	}
	// The duplicated pair (1,2) — covered by both statements — must be
	// deduplicated by the C-DUP iterator and removable by BITMAP-2.
	if err := g.VerifyDAG(); err != nil {
		t.Fatal(err)
	}
}

func TestExtractCase2Fallback(t *testing.T) {
	// Triangle query: cyclic, so Case 2 (full expansion).
	src := `
Nodes(ID) :- Node(ID).
Edges(A, B) :- Rel(A, X), Rel(B, X), Rel2(A, B).
`
	db := relstore.NewDB()
	node, _ := db.Create("Node", relstore.Column{Name: "id", Type: relstore.Int})
	rel, _ := db.Create("Rel",
		relstore.Column{Name: "a", Type: relstore.Int},
		relstore.Column{Name: "x", Type: relstore.Int})
	rel2, _ := db.Create("Rel2",
		relstore.Column{Name: "a", Type: relstore.Int},
		relstore.Column{Name: "b", Type: relstore.Int})
	for i := int64(1); i <= 4; i++ {
		node.Insert(relstore.IntVal(i))
		rel.Insert(relstore.IntVal(i), relstore.IntVal(1)) // everyone shares x=1
	}
	rel2.Insert(relstore.IntVal(1), relstore.IntVal(2))
	rel2.Insert(relstore.IntVal(3), relstore.IntVal(4))
	res, err := Extract(db, mustParse(t, src), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Case2Rules != 1 {
		t.Fatalf("Case2Rules = %d, want 1", res.Stats.Case2Rules)
	}
	got := res.Graph.EdgeSetByID()
	want := map[[2]int64]struct{}{{1, 2}: {}, {3, 4}: {}}
	if len(got) != len(want) {
		t.Fatalf("edges = %v, want %v", got, want)
	}
}

func TestExtractMaxEdgesGuard(t *testing.T) {
	db := dblpDB(t)
	opts := DefaultOptions()
	opts.ForceExpand = true
	opts.MaxEdges = 3
	_, err := Extract(db, mustParse(t, coauthors), opts)
	if !errors.Is(err, core.ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestExtractPreprocessing(t *testing.T) {
	db := dblpDB(t)
	opts := DefaultOptions()
	opts.ForceCondensed = true // then preprocessing may inline tiny pubs
	res, err := Extract(db, mustParse(t, coauthors), opts)
	if err != nil {
		t.Fatal(err)
	}
	// Pubs 200 (2 authors) and 400 (1 author) qualify for inlining.
	if res.Stats.PreprocessExpanded != 2 {
		t.Fatalf("preprocess expanded = %d, want 2", res.Stats.PreprocessExpanded)
	}
	want := expectedCoauthorEdges()
	got := res.Graph.EdgeSetByID()
	if len(got) != len(want) {
		t.Fatalf("edges = %d, want %d", len(got), len(want))
	}
}

func TestExtractAutoExpand(t *testing.T) {
	db := dblpDB(t)
	opts := DefaultOptions()
	opts.ForceCondensed = true
	opts.SkipPreprocess = true
	opts.AutoExpandFactor = 100 // trivially satisfied: expand
	res, err := Extract(db, mustParse(t, coauthors), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph.Mode() != core.EXP || res.Graph.NumVirtualNodes() != 0 {
		t.Fatalf("auto-expand did not produce EXP: mode=%v virt=%d",
			res.Graph.Mode(), res.Graph.NumVirtualNodes())
	}
}

func TestExtractErrors(t *testing.T) {
	db := dblpDB(t)
	// Unknown table.
	src := `Nodes(ID) :- Missing(ID). Edges(A,B) :- AuthorPub(A,P), AuthorPub(B,P).`
	if _, err := Extract(db, mustParse(t, src), DefaultOptions()); err == nil {
		t.Fatal("expected unknown-table error")
	}
	// Atom wider than the table.
	src2 := `Nodes(ID) :- Author(ID, N, X, Y). Edges(A,B) :- AuthorPub(A,P), AuthorPub(B,P).`
	if _, err := Extract(db, mustParse(t, src2), DefaultOptions()); err == nil {
		t.Fatal("expected arity error")
	}
}

func TestExtractSelfLoopsOption(t *testing.T) {
	db := dblpDB(t)
	opts := DefaultOptions()
	opts.ForceCondensed = true
	opts.SkipPreprocess = true
	opts.SelfLoops = true
	res, err := Extract(db, mustParse(t, coauthors), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Graph.ExistsEdge(1, 1) {
		t.Fatal("self loop 1->1 missing with SelfLoops enabled")
	}
}
