// Package extract implements GraphGen's extraction planner and executor
// (Sections 3.3 and 4.2): it translates a parsed Datalog program into
// relational queries against the relstore substrate, decides per join
// whether to hand it to the database or to postpone it behind virtual nodes
// (the large-output test), and materializes the condensed in-memory graph.
package extract

import (
	"fmt"
	"strings"
	"time"

	"graphgen/internal/core"
	"graphgen/internal/datalog"
	"graphgen/internal/relstore"
)

// Options tunes extraction.
type Options struct {
	// LargeOutputFactor is the planner threshold: a join on attribute a
	// with distinct count d is large-output when |R||S|/d >
	// factor*(|R|+|S|). The paper uses 2 (Section 4.2, Step 2).
	LargeOutputFactor float64
	// ForceCondensed treats every join as large-output; ForceExpand hands
	// every join to the database (full expansion). Both are primarily for
	// experiments comparing the representations.
	ForceCondensed bool
	ForceExpand    bool
	// MaxEdges aborts extraction with core.ErrTooLarge when the graph
	// (expanded edges for Case 2 / EXP paths) exceeds the budget;
	// 0 disables the guard.
	MaxEdges int64
	// SkipPreprocess disables the Step-6 virtual-node expansion pass;
	// the paper's representation experiments do the same (Section 6.5).
	SkipPreprocess bool
	// AutoExpandFactor > 0 expands the final graph when the expanded
	// edge count is at most this multiple of the condensed edge count
	// (the paper suggests 1.2); 0 disables.
	AutoExpandFactor float64
	// SelfLoops keeps logical self edges in the extracted graph.
	SelfLoops bool
	// Workers bounds extraction parallelism: the relational scan and join
	// probe phases and the Step-6 preprocessing pass all run on the shared
	// worker pool with deterministic chunk-ordered merges, so the extracted
	// graph is identical for every setting. <= 0 means GOMAXPROCS; 1 is the
	// serial path.
	Workers int
}

// DefaultOptions mirror the paper's settings.
func DefaultOptions() Options {
	return Options{LargeOutputFactor: 2}
}

// Stats describes what extraction did.
type Stats struct {
	RealNodes    int
	VirtualNodes int
	RepEdges     int64
	// LargeOutputJoins is the number of joins postponed behind virtual
	// nodes; DatabaseJoins were executed by the relational substrate.
	LargeOutputJoins int
	DatabaseJoins    int
	// Case2Rules counts Edges rules that fell back to full expansion.
	Case2Rules int
	// SkippedRows counts edge rows referencing IDs absent from Nodes.
	SkippedRows int64
	// PreprocessExpanded is the number of virtual nodes inlined by the
	// Step-6 pass.
	PreprocessExpanded int
	Duration           time.Duration
}

// Result bundles the extracted graph with its statistics.
type Result struct {
	Graph *core.Graph
	Stats Stats
}

// Extract runs the extraction program against the database and returns the
// in-memory graph, condensed wherever the planner postponed a large-output
// join (the graph is C-DUP mode; convert with internal/dedup as needed).
func Extract(db *relstore.DB, prog *datalog.Program, opts Options) (*Result, error) {
	start := time.Now()
	if opts.LargeOutputFactor <= 0 {
		opts.LargeOutputFactor = 2
	}
	g := core.New(core.CDUP)
	g.SelfLoops = opts.SelfLoops
	res := &Result{Graph: g}

	// Step 1: Nodes statements.
	for _, rule := range prog.Nodes {
		if err := loadNodes(db, g, rule, opts); err != nil {
			return nil, err
		}
	}
	// Step 2-5: Edges statements.
	symmetric := true
	for _, rule := range prog.Edges {
		chain, err := datalog.AnalyzeChain(rule)
		if err != nil {
			// Case 2: evaluate the full join and load direct edges.
			res.Stats.Case2Rules++
			symmetric = false
			if err := loadEdgesExpanded(db, g, rule, opts, &res.Stats); err != nil {
				return nil, err
			}
			continue
		}
		if !chainSymmetric(chain) {
			symmetric = false
		}
		if err := loadEdgesChain(db, g, chain, opts, &res.Stats); err != nil {
			return nil, err
		}
	}
	g.Symmetric = symmetric
	g.SortAdjacency()

	// Step 6: preprocessing.
	if !opts.SkipPreprocess {
		res.Stats.PreprocessExpanded = g.PreprocessExpandSmall(opts.Workers)
	}
	if opts.AutoExpandFactor > 0 && g.NumVirtualNodes() > 0 {
		rep := g.RepEdges()
		exp := g.ExpandedEdgeCount()
		if rep == 0 || float64(exp) <= opts.AutoExpandFactor*float64(rep) {
			ng, err := g.Expand(opts.MaxEdges)
			if err == nil {
				ng.Symmetric = g.Symmetric
				g = ng
				res.Graph = g
			}
		}
	}
	res.Stats.RealNodes = g.NumRealNodes()
	res.Stats.VirtualNodes = g.NumVirtualNodes()
	res.Stats.RepEdges = g.RepEdges()
	res.Stats.Duration = time.Since(start)
	return res, nil
}

// loadNodes evaluates one Nodes rule and adds the result as real nodes with
// properties named after the head variables.
func loadNodes(db *relstore.DB, g *core.Graph, rule datalog.Rule, opts Options) error {
	var outVars []string
	for _, t := range rule.Head.Terms {
		if t.Kind != datalog.TermVar {
			return fmt.Errorf("extract: Nodes head terms must be variables: %s", rule.Head)
		}
		outVars = append(outVars, t.Var)
	}
	rel, err := evalConjunctive(db, rule.Body, outVars, true, opts.Workers)
	if err != nil {
		return err
	}
	for _, row := range rel.Rows {
		if row[0].T != relstore.Int {
			return fmt.Errorf("extract: node ID attribute must be an integer column (rule %s)", rule.Head)
		}
		r := g.AddRealNode(row[0].I)
		for i := 1; i < len(row); i++ {
			g.SetProperty(r, outVars[i], row[i].String())
		}
	}
	return nil
}

// loadEdgesExpanded evaluates a Case 2 rule fully and adds direct edges.
func loadEdgesExpanded(db *relstore.DB, g *core.Graph, rule datalog.Rule, opts Options, st *Stats) error {
	id1 := rule.Head.Terms[0].Var
	id2 := rule.Head.Terms[1].Var
	rel, err := evalConjunctive(db, rule.Body, []string{id1, id2}, true, opts.Workers)
	if err != nil {
		return err
	}
	st.DatabaseJoins += len(rule.Body) - 1
	var count int64
	for _, row := range rel.Rows {
		u, okU := g.RealIndex(row[0].I)
		v, okV := g.RealIndex(row[1].I)
		if !okU || !okV {
			st.SkippedRows++
			continue
		}
		g.AddDirectEdgeIdx(u, v)
		count++
		if opts.MaxEdges > 0 && count > opts.MaxEdges {
			return core.ErrTooLarge
		}
	}
	return nil
}

// chainSymmetric reports whether a chain is its own mirror image, which
// makes the extracted graph undirected (e.g. the co-authors query, whose
// two halves scan the same table with swapped roles).
func chainSymmetric(c *Chain) bool {
	n := len(c.Steps)
	for i := 0; i < n; i++ {
		a := c.Steps[i]
		b := c.Steps[n-1-i]
		if !strings.EqualFold(a.Atom.Pred, b.Atom.Pred) {
			return false
		}
		ai, _ := a.Atom.TermIndex(a.InVar)
		ao, _ := a.Atom.TermIndex(a.OutVar)
		bi, _ := b.Atom.TermIndex(b.InVar)
		bo, _ := b.Atom.TermIndex(b.OutVar)
		if ai != bo || ao != bi {
			return false
		}
	}
	return true
}

// Chain re-exports the analyzed chain type for local signatures.
type Chain = datalog.Chain
