// Package extract implements GraphGen's extraction planner and executor
// (Sections 3.3 and 4.2): it translates a parsed Datalog program into
// relational queries against the relstore substrate, decides per join
// whether to hand it to the database or to postpone it behind virtual nodes
// (the large-output test), and materializes the condensed in-memory graph.
package extract

import (
	"fmt"
	"time"

	"graphgen/internal/core"
	"graphgen/internal/datalog"
	"graphgen/internal/obs"
	"graphgen/internal/relstore"
)

// Options tunes extraction.
type Options struct {
	// LargeOutputFactor is the planner threshold: a join on attribute a
	// with distinct count d is large-output when |R||S|/d >
	// factor*(|R|+|S|). The paper uses 2 (Section 4.2, Step 2).
	LargeOutputFactor float64
	// ForceCondensed treats every join as large-output; ForceExpand hands
	// every join to the database (full expansion). Both are primarily for
	// experiments comparing the representations.
	ForceCondensed bool
	ForceExpand    bool
	// MaxEdges aborts extraction with core.ErrTooLarge when the graph
	// (expanded edges for Case 2 / EXP paths) exceeds the budget;
	// 0 disables the guard.
	MaxEdges int64
	// SkipPreprocess disables the Step-6 virtual-node expansion pass;
	// the paper's representation experiments do the same (Section 6.5).
	SkipPreprocess bool
	// AutoExpandFactor > 0 expands the final graph when the expanded
	// edge count is at most this multiple of the condensed edge count
	// (the paper suggests 1.2); 0 disables.
	AutoExpandFactor float64
	// SelfLoops keeps logical self edges in the extracted graph.
	SelfLoops bool
	// Workers bounds extraction parallelism: the relational scan and join
	// probe phases and the Step-6 preprocessing pass all run on the shared
	// worker pool with deterministic chunk-ordered merges, so the extracted
	// graph is identical for every setting. <= 0 means GOMAXPROCS; 1 is the
	// serial path.
	Workers int
	// MaxDerivedTuples is carried for the Datalog program evaluator
	// (internal/datalogeval), which shares this options struct through
	// the public Engine: it bounds the tuples materialized for derived
	// predicates before the plain extraction below runs. Extraction
	// itself ignores it; 0 disables the guard.
	MaxDerivedTuples int64
	// NoIndex disables the secondary-index machinery: no hash indexes are
	// auto-created on the query's join and predicate columns, and the
	// planner never picks the index-backed access paths (IndexScan,
	// IndexedJoin) even for pre-existing indexes. The default (false,
	// indexing on) mirrors the paper's reliance on the RDBMS's access
	// paths; the indexed and unindexed pipelines extract identical graphs,
	// so this is purely a performance switch (and the benchmark baseline).
	NoIndex bool
	// NoStream routes every conjunctive evaluation through the legacy
	// operator-at-a-time materializing execution (a full Rel after every
	// operator) instead of the fused streaming pipeline. Both produce
	// row-for-row identical relations; the switch exists as the
	// equivalence oracle and the peak-memory benchmark baseline.
	NoStream bool
	// Tracker, when non-nil, accounts peak materialized intermediate
	// rows across the extraction's operator pipelines (reported in
	// Stats.PeakIntermediateRows). Extract installs one automatically
	// when unset.
	Tracker *relstore.Tracker
	// Trace, when non-nil, collects the extraction's execution tree: a
	// container span per Nodes rule, Edges rule, and chain segment, with
	// one child span per relational operator underneath. Nil (the
	// default) disables tracing at zero cost. A Trace belongs to one
	// extraction — callers must not share it across concurrent runs.
	Trace *obs.Trace
}

// DefaultOptions mirror the paper's settings.
func DefaultOptions() Options {
	return Options{LargeOutputFactor: 2}
}

// Stats describes what extraction did.
type Stats struct {
	RealNodes    int
	VirtualNodes int
	RepEdges     int64
	// LargeOutputJoins is the number of joins postponed behind virtual
	// nodes; DatabaseJoins were executed by the relational substrate.
	LargeOutputJoins int
	DatabaseJoins    int
	// Case2Rules counts Edges rules that fell back to full expansion.
	Case2Rules int
	// SkippedRows counts edge rows referencing IDs absent from Nodes.
	SkippedRows int64
	// PreprocessExpanded is the number of virtual nodes inlined by the
	// Step-6 pass.
	PreprocessExpanded int
	// PeakIntermediateRows is the high-water mark of operator-held
	// intermediate rows across the extraction's relational pipelines:
	// join build sides, distinct seen-sets, and index-bucket gathers on
	// the streaming path, or whole staged relations under
	// Options.NoStream. Final query outputs are excluded on both paths,
	// so the two modes compare like for like.
	PeakIntermediateRows int64
	Duration             time.Duration
}

// Result bundles the extracted graph with its statistics.
type Result struct {
	Graph *core.Graph
	Stats Stats
}

// Extract runs the extraction program against the database and returns the
// in-memory graph, condensed wherever the planner postponed a large-output
// join (the graph is C-DUP mode; convert with internal/dedup as needed).
func Extract(db *relstore.DB, prog *datalog.Program, opts Options) (*Result, error) {
	start := time.Now()
	if opts.LargeOutputFactor <= 0 {
		opts.LargeOutputFactor = 2
	}
	if opts.Tracker == nil {
		opts.Tracker = relstore.NewTracker()
	}
	xsp := opts.Trace.Push("extract", "")
	defer xsp.End()
	g := core.New(core.CDUP)
	g.SelfLoops = opts.SelfLoops
	res := &Result{Graph: g}

	// Step 0: make sure the access paths the program needs exist. Indexes
	// live on the tables, so repeated extractions (and live rebuilds) pay
	// the build cost once.
	if !opts.NoIndex {
		EnsureIndexes(db, append(append([]datalog.Rule(nil), prog.Nodes...), prog.Edges...))
	}

	// Step 1: Nodes statements.
	for _, rule := range prog.Nodes {
		if err := LoadNodes(db, g, rule, opts); err != nil {
			return nil, err
		}
	}
	// Step 2-5: Edges statements — plan (classify joins, split into
	// segments), then materialize.
	symmetric := true
	for _, rule := range prog.Edges {
		rsp := opts.Trace.Push("edges_rule", rule.Head.String())
		plan, err := PlanEdges(db, rule, opts)
		if err != nil {
			rsp.End()
			return nil, err
		}
		if plan.Case2 {
			res.Stats.Case2Rules++
			rsp.Set("case2", 1)
		}
		if !plan.Symmetric {
			symmetric = false
		}
		res.Stats.LargeOutputJoins += plan.LargeJoins
		res.Stats.DatabaseJoins += plan.DatabaseJoins
		rsp.Set("large_joins", int64(plan.LargeJoins))
		rsp.Set("database_joins", int64(plan.DatabaseJoins))
		if err := wirePlan(db, g, plan, opts, &res.Stats); err != nil {
			rsp.End()
			return nil, err
		}
		rsp.End()
	}
	g.Symmetric = symmetric
	g.SortAdjacency()

	// Step 6: preprocessing.
	if !opts.SkipPreprocess {
		res.Stats.PreprocessExpanded = g.PreprocessExpandSmall(opts.Workers)
	}
	if opts.AutoExpandFactor > 0 && g.NumVirtualNodes() > 0 {
		rep := g.RepEdges()
		exp := g.ExpandedEdgeCount()
		if rep == 0 || float64(exp) <= opts.AutoExpandFactor*float64(rep) {
			ng, err := g.Expand(opts.MaxEdges)
			if err == nil {
				ng.Symmetric = g.Symmetric
				g = ng
				res.Graph = g
			}
		}
	}
	res.Stats.RealNodes = g.NumRealNodes()
	res.Stats.VirtualNodes = g.NumVirtualNodes()
	res.Stats.RepEdges = g.RepEdges()
	res.Stats.PeakIntermediateRows = opts.Tracker.Peak()
	res.Stats.Duration = time.Since(start)
	return res, nil
}

// LoadNodes evaluates one Nodes rule and adds the result as real nodes with
// properties named after the head variables. It is exported for the
// incremental-maintenance subsystem, which builds its own graph from the
// same rules.
func LoadNodes(db *relstore.DB, g *core.Graph, rule datalog.Rule, opts Options) error {
	var outVars []string
	for _, t := range rule.Head.Terms {
		if t.Kind != datalog.TermVar {
			return fmt.Errorf("extract: Nodes head terms must be variables: %s", rule.Head)
		}
		outVars = append(outVars, t.Var)
	}
	sp := opts.Trace.Push("nodes_rule", rule.Head.String())
	defer sp.End()
	rel, err := EvalConjunctive(db, rule.Body, outVars, true, opts)
	if err != nil {
		return err
	}
	sp.AddRows(int64(len(rel.Rows)))
	for _, row := range rel.Rows {
		if row[0].T != relstore.Int {
			return fmt.Errorf("extract: node ID attribute must be an integer column (rule %s)", rule.Head)
		}
		r := g.AddRealNode(row[0].I)
		for i := 1; i < len(row); i++ {
			g.SetProperty(r, outVars[i], row[i].String())
		}
	}
	return nil
}
