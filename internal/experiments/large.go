package experiments

import (
	"fmt"
	"strings"
	"time"

	"graphgen/internal/algo"
	"graphgen/internal/core"
	"graphgen/internal/datalog"
	"graphgen/internal/dedup"
	"graphgen/internal/extract"
)

// Table3 reproduces Table 3: Degree / PageRank / BFS runtimes and memory
// for C-DUP, BITMAP(-2), and EXP on the large datasets, plus the BITMAP
// deduplication time. EXP materialization beyond the budget prints DNF —
// the paper's "> 64GB" rows.
func Table3(s Scale) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 3: large datasets — C-DUP vs BITMAP vs EXP\n")
	fmt.Fprintf(&sb, "%-10s %-8s %10s %10s %10s %12s %12s\n",
		"Dataset", "Repr", "Degree", "PR", "BFS", "Mem", "DedupTime")
	for _, d := range LargeDatasets(s) {
		prog, err := datalog.Parse(d.Query)
		if err != nil {
			fmt.Fprintf(&sb, "%-10s parse error: %v\n", d.Name, err)
			continue
		}
		opts := extract.DefaultOptions()
		opts.ForceCondensed = true
		opts.SkipPreprocess = true
		res, err := extract.Extract(d.DB, prog, opts)
		if err != nil {
			fmt.Fprintf(&sb, "%-10s extract error: %v\n", d.Name, err)
			continue
		}
		cdup := res.Graph

		// C-DUP row (on-the-fly dedup during every algorithm).
		m := measureTable3(cdup)
		fmt.Fprintf(&sb, "%-10s %-8s %10s %10s %10s %12s %12s\n",
			d.Name, "C-DUP", fmtDur(m.degree), fmtDur(m.pagerank), fmtDur(m.bfs), fmtMB(cdup.MemBytes()), "-")

		// BITMAP row (BITMAP-2 dedup; works on multi-layer graphs too).
		start := time.Now()
		bmp, _, err := dedup.Bitmap2(cdup, dedup.Options{Seed: 3})
		dedupTime := time.Since(start)
		if err != nil {
			fmt.Fprintf(&sb, "%-10s %-8s dedup error: %v\n", d.Name, "BITMAP", err)
		} else {
			m = measureTable3(bmp)
			fmt.Fprintf(&sb, "%-10s %-8s %10s %10s %10s %12s %12s\n",
				d.Name, "BITMAP", fmtDur(m.degree), fmtDur(m.pagerank), fmtDur(m.bfs), fmtMB(bmp.MemBytes()), fmtDur(dedupTime))
		}

		// EXP row, with the memory budget standing in for 64GB.
		exp, err := cdup.Expand(d.ExpBudget)
		if err != nil {
			fmt.Fprintf(&sb, "%-10s %-8s %10s %10s %10s %12s %12s\n",
				d.Name, "EXP", "DNF", "DNF", "DNF", fmt.Sprintf(">%s", fmtMB(d.ExpBudget*8)), "-")
			continue
		}
		m = measureTable3(exp)
		fmt.Fprintf(&sb, "%-10s %-8s %10s %10s %10s %12s %12s\n",
			d.Name, "EXP", fmtDur(m.degree), fmtDur(m.pagerank), fmtDur(m.bfs), fmtMB(exp.MemBytes()), "-")
	}
	return sb.String()
}

type table3Times struct {
	degree, pagerank, bfs time.Duration
}

func measureTable3(g *core.Graph) table3Times {
	var m table3Times
	start := time.Now()
	algo.Degrees(g)
	m.degree = time.Since(start)

	start = time.Now()
	algo.PageRank(g, 5, 0.85)
	m.pagerank = time.Since(start)

	sources := sampleIDs(g, 5)
	start = time.Now()
	for _, id := range sources {
		algo.BFS(g, id)
	}
	if len(sources) > 0 {
		m.bfs = time.Since(start) / time.Duration(len(sources))
	}
	return m
}

// Table6 reproduces Table 6: the join selectivities and condensed sizes of
// the generated datasets.
func Table6(s Scale) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 6: generated dataset selectivities (C-DUP sizes)\n")
	fmt.Fprintf(&sb, "%-10s %10s %12s %-20s\n", "Dataset", "Nodes", "Edges", "JoinSelectivities")
	for _, d := range LargeDatasets(s) {
		prog, _ := datalog.Parse(d.Query)
		opts := extract.DefaultOptions()
		opts.ForceCondensed = true
		opts.SkipPreprocess = true
		res, err := extract.Extract(d.DB, prog, opts)
		if err != nil {
			fmt.Fprintf(&sb, "%-10s error: %v\n", d.Name, err)
			continue
		}
		sel := joinSelectivities(d)
		fmt.Fprintf(&sb, "%-10s %10d %12d %-20s\n",
			d.Name, res.Graph.TotalNodes(), res.Graph.RepEdges(), sel)
	}
	return sb.String()
}

// joinSelectivities reports distinct/rows for each join attribute of the
// dataset's chain, Table 6's definition.
func joinSelectivities(d LargeDataset) string {
	prog, err := datalog.Parse(d.Query)
	if err != nil || len(prog.Edges) == 0 {
		return "?"
	}
	chain, err := datalog.AnalyzeChain(prog.Edges[0])
	if err != nil {
		return "?"
	}
	var parts []string
	for i, v := range chain.JoinVars {
		atom := chain.Steps[i].Atom
		t, err := d.DB.Table(atom.Pred)
		if err != nil {
			return "?"
		}
		idx, ok := atom.TermIndex(v)
		if !ok || idx >= len(t.Cols) {
			return "?"
		}
		dist, err := t.NDistinct(t.Cols[idx].Name)
		if err != nil {
			return "?"
		}
		parts = append(parts, fmt.Sprintf("%.3f", float64(dist)/float64(t.NumRows())))
	}
	return strings.Join(parts, " -> ")
}
