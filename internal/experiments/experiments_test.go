package experiments

import (
	"strings"
	"testing"
)

// The experiment regenerators are exercised end-to-end in quick mode: every
// table/figure must produce non-empty, well-formed rows without errors.

func TestAllExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke run skipped in -short mode")
	}
	s := Scale{Quick: true}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			out := e.Run(s)
			if len(out) == 0 {
				t.Fatal("empty output")
			}
			if strings.Contains(out, "error") || strings.Contains(out, "FAILED") {
				t.Fatalf("experiment reported an error:\n%s", out)
			}
			if lines := strings.Count(out, "\n"); lines < 3 {
				t.Fatalf("suspiciously short output (%d lines):\n%s", lines, out)
			}
		})
	}
}

func TestLookup(t *testing.T) {
	if _, err := Lookup("table1"); err != nil {
		t.Fatal(err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("expected unknown-id error")
	}
}

func TestTable1ShapeTargets(t *testing.T) {
	if testing.Short() {
		t.Skip("shape check skipped in -short mode")
	}
	// Reproduction target (i): on the dense extractions the condensed
	// representation must be (much) smaller than the full graph.
	s := Scale{Quick: true}
	for _, d := range Table1Datasets(s) {
		if d.Name == "DBLP" {
			continue // the paper's best case for EXP; sizes are close
		}
		cg, _, err := ExtractCondensed(d)
		if err != nil {
			t.Fatal(err)
		}
		eg, _, err := ExtractExpanded(d, 0)
		if err != nil {
			t.Fatal(err)
		}
		if cg.RepEdges() >= eg.RepEdges() {
			t.Errorf("%s: condensed %d edges >= expanded %d", d.Name, cg.RepEdges(), eg.RepEdges())
		}
	}
}
