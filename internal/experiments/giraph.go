package experiments

import (
	"fmt"
	"strings"

	"graphgen/internal/bsp"
	"graphgen/internal/core"
	"graphgen/internal/datagen"
	"graphgen/internal/dedup"
)

// This file regenerates Tables 4 and 5: the Giraph-port experiments on the
// S1/S2/N1/N2 synthetic series and the IMDB co-actor graph, run on the BSP
// engine of internal/bsp.

// bspGraphs builds the five Table 5 datasets as C-DUP graphs.
func bspGraphs(s Scale) ([]string, map[string]*core.Graph) {
	names := []string{"S1", "S2", "N1", "N2", "IMDB"}
	graphs := make(map[string]*core.Graph, 5)
	div := 1
	if s.Quick {
		div = 4
	}
	for _, spec := range datagen.BSPDatasets() {
		graphs[spec.Name] = datagen.Condensed(datagen.CondensedConfig{
			Seed:         spec.Seed,
			RealNodes:    spec.RealNodes / div,
			VirtualNodes: max(1, spec.VirtualNodes/div),
			MeanSize:     spec.MeanSize / float64(div),
			StdDev:       spec.StdDev / float64(div),
		})
	}
	imdb := Dataset{Name: "IMDB", DB: datagen.IMDBLike(42, 1600/div, 260/div), Query: datagen.QueryCoactors}
	g, _, err := ExtractCondensed(imdb)
	if err != nil {
		panic(fmt.Sprintf("experiments: extracting IMDB: %v", err))
	}
	graphs["IMDB"] = g
	return names, graphs
}

// Table4 reproduces Table 4: Degree, Connected Components, and PageRank
// time, memory, and message counts for EXP, DEDUP-1, and BITMAP on the BSP
// engine.
func Table4(s Scale) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 4: BSP (Giraph-style) experiments\n")
	fmt.Fprintf(&sb, "%-6s %-8s %9s/%-9s %9s/%-9s %9s/%-9s %12s\n",
		"Data", "Repr", "Degree", "mem", "ConComp", "mem", "PageRank", "mem", "Messages")
	names, graphs := bspGraphs(s)
	for _, name := range names {
		g := graphs[name]
		for _, rep := range bspReps(g) {
			var msgs int64
			degRes, err := bsp.Degree(rep.g)
			if err != nil {
				fmt.Fprintf(&sb, "%-6s %-8s error: %v\n", name, rep.name, err)
				continue
			}
			ccRes, err := bsp.Components(rep.g)
			if err != nil {
				continue
			}
			prRes, err := bsp.PageRank(rep.g, 5, 0.85)
			if err != nil {
				continue
			}
			msgs = degRes.Messages + ccRes.Messages + prRes.Messages
			fmt.Fprintf(&sb, "%-6s %-8s %9s/%-9s %9s/%-9s %9s/%-9s %12d\n",
				name, rep.name,
				fmtDur(degRes.Duration), fmtMB(degRes.MemBytes),
				fmtDur(ccRes.Duration), fmtMB(ccRes.MemBytes),
				fmtDur(prRes.Duration), fmtMB(prRes.MemBytes),
				msgs)
		}
	}
	return sb.String()
}

type bspRep struct {
	name string
	g    *core.Graph
}

func bspReps(g *core.Graph) []bspRep {
	var out []bspRep
	if exp, err := g.Expand(0); err == nil {
		out = append(out, bspRep{"EXP", exp})
	}
	// Naive Virtual Nodes First: the greedy variants' benefit/cost scans
	// are quartic in the virtual-node size and DNF on the S/N series'
	// huge virtual nodes — the same infeasibility Table 3 reports.
	if d1, _, err := dedup.Dedup1NaiveVirtualFirst(g, dedup.Options{Seed: 3}); err == nil {
		out = append(out, bspRep{"DEDUP1", d1})
	}
	if bm, _, err := dedup.Bitmap2(g, dedup.Options{Seed: 3}); err == nil {
		out = append(out, bspRep{"BMP", bm})
	}
	return out
}

// Table5 reproduces Table 5: node and edge counts per representation for
// the BSP datasets.
func Table5(s Scale) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 5: BSP dataset shapes per representation\n")
	fmt.Fprintf(&sb, "%-6s %-8s %10s %10s %12s\n", "Data", "Repr", "AllNodes", "VirtNodes", "Edges")
	names, graphs := bspGraphs(s)
	for _, name := range names {
		g := graphs[name]
		for _, rep := range bspReps(g) {
			fmt.Fprintf(&sb, "%-6s %-8s %10d %10d %12d\n",
				name, rep.name, rep.g.TotalNodes(), rep.g.NumVirtualNodes(), rep.g.RepEdges())
		}
	}
	return sb.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
