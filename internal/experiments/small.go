package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"graphgen/internal/algo"
	"graphgen/internal/core"
	"graphgen/internal/dedup"
	"graphgen/internal/vertexcentric"
	"graphgen/internal/vminer"
)

// This file regenerates Table 1, Table 2, Figure 10, Figure 11, Figure 12,
// and Figure 13.

// Table1 reproduces Table 1: condensed vs full extraction (edge counts and
// extraction times) for the four workloads. EXP extraction beyond the edge
// budget reports DNF, the paper's "> 1200s" outcome.
func Table1(s Scale) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 1: condensed (C-DUP) vs full (EXP) extraction\n")
	fmt.Fprintf(&sb, "%-6s %-10s %12s %14s %12s\n", "", "Repr", "Edges", "Time", "InputRows")
	const expBudget = 3_000_000
	for _, d := range Table1Datasets(s) {
		start := time.Now()
		cg, _, err := ExtractCondensed(d)
		if err != nil {
			fmt.Fprintf(&sb, "%-6s condensed FAILED: %v\n", d.Name, err)
			continue
		}
		condTime := time.Since(start)
		fmt.Fprintf(&sb, "%-6s %-10s %12d %14s %12d\n",
			d.Name, "Condensed", cg.RepEdges(), fmtDur(condTime), d.DB.TotalRows())
		start = time.Now()
		eg, _, err := ExtractExpanded(d, expBudget)
		if err != nil {
			fmt.Fprintf(&sb, "%-6s %-10s %12s %14s %12d\n",
				d.Name, "FullGraph", fmt.Sprintf(">%d", expBudget), "DNF", d.DB.TotalRows())
			continue
		}
		fmt.Fprintf(&sb, "%-6s %-10s %12d %14s %12d\n",
			d.Name, "FullGraph", eg.RepEdges(), fmtDur(time.Since(start)), d.DB.TotalRows())
	}
	return sb.String()
}

// smallGraphs assembles the Section 6.1 condensed graphs (extracted for
// DBLP/IMDB, generated for the synthetics) keyed by dataset name.
func smallGraphs(s Scale) ([]string, map[string]*core.Graph) {
	dbs, condensed := SmallDatasets(s)
	graphs := make(map[string]*core.Graph, 4)
	for _, d := range dbs {
		g, _, err := ExtractCondensed(d)
		if err != nil {
			panic(fmt.Sprintf("experiments: extracting %s: %v", d.Name, err))
		}
		graphs[d.Name] = g
	}
	for name, g := range condensed {
		graphs[name] = g
	}
	return []string{"DBLP", "IMDB", "Synthetic_1", "Synthetic_2"}, graphs
}

// Table2 reproduces Table 2: the shapes of the four small datasets.
func Table2(s Scale) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 2: small datasets\n")
	fmt.Fprintf(&sb, "%-12s %10s %10s %9s %12s\n", "Dataset", "RealNodes", "VirtNodes", "AvgSize", "EXPEdges")
	names, graphs := smallGraphs(s)
	for _, name := range names {
		g := graphs[name]
		fmt.Fprintf(&sb, "%-12s %10d %10d %9.1f %12d\n",
			name, g.NumRealNodes(), g.NumVirtualNodes(), g.AvgVirtualSize(), g.LogicalEdges())
	}
	return sb.String()
}

// repBuilders returns the representation constructors compared in Figure 10
// in display order.
func repBuilders(seed int64) []struct {
	Name  string
	Build func(*core.Graph) (*core.Graph, error)
} {
	o := dedup.Options{Seed: seed}
	return []struct {
		Name  string
		Build func(*core.Graph) (*core.Graph, error)
	}{
		{"C-DUP", func(g *core.Graph) (*core.Graph, error) { return g.Clone(), nil }},
		{"DEDUP-1", func(g *core.Graph) (*core.Graph, error) {
			out, _, err := dedup.Dedup1GreedyVirtualFirst(g, o)
			return out, err
		}},
		{"DEDUP-2", func(g *core.Graph) (*core.Graph, error) {
			out, _, err := dedup.Dedup2Greedy(g, o)
			return out, err
		}},
		{"BITMAP-1", func(g *core.Graph) (*core.Graph, error) {
			out, _, err := dedup.Bitmap1(g)
			return out, err
		}},
		{"BITMAP-2", func(g *core.Graph) (*core.Graph, error) {
			out, _, err := dedup.Bitmap2(g, o)
			return out, err
		}},
		{"EXP", func(g *core.Graph) (*core.Graph, error) { return g.Expand(0) }},
		{"VMiner", func(g *core.Graph) (*core.Graph, error) {
			out, _, err := vminer.Mine(g, vminer.Options{})
			return out, err
		}},
	}
}

// Figure10 reproduces Figure 10: in-memory sizes (nodes and edges, plus
// estimated bytes) per representation per small dataset, including the
// VMiner baseline, which must first expand the graph.
func Figure10(s Scale) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 10: in-memory graph sizes per representation\n")
	fmt.Fprintf(&sb, "%-12s %-10s %10s %12s %12s\n", "Dataset", "Repr", "Nodes", "Edges", "Mem")
	names, graphs := smallGraphs(s)
	for _, name := range names {
		g := graphs[name]
		for _, rb := range repBuilders(7) {
			out, err := rb.Build(g)
			if err != nil {
				fmt.Fprintf(&sb, "%-12s %-10s %10s %12s %12s\n", name, rb.Name, "-", "ERR", err)
				continue
			}
			fmt.Fprintf(&sb, "%-12s %-10s %10d %12d %12s\n",
				name, rb.Name, out.TotalNodes(), out.RepEdges(), fmtMB(out.MemBytes()))
		}
	}
	return sb.String()
}

// Figure11 reproduces Figure 11: Degree, BFS, and PageRank runtimes per
// representation on DBLP and Synthetic_1, normalized to EXP.
func Figure11(s Scale) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 11: graph algorithm runtimes (normalized to EXP = 1.00)\n")
	fmt.Fprintf(&sb, "%-12s %-10s %10s %10s %10s\n", "Dataset", "Repr", "Degree", "BFS", "PageRank")
	_, graphs := smallGraphs(s)
	for _, name := range []string{"DBLP", "Synthetic_1"} {
		g := graphs[name]
		reps := buildAnalysisReps(g, 7)
		order := []string{"EXP", "C-DUP", "DEDUP-1", "DEDUP-2", "BITMAP-1", "BITMAP-2"}
		measured := make(map[string]algoTimes, len(order))
		for _, rep := range order {
			if rg, ok := reps[rep]; ok {
				measured[rep] = measureAlgos(rg, g)
			}
		}
		base := measured["EXP"]
		for _, rep := range order {
			m, ok := measured[rep]
			if !ok {
				continue
			}
			fmt.Fprintf(&sb, "%-12s %-10s %10.2f %10.2f %10.2f\n", name, rep,
				ratio(m.degree, base.degree), ratio(m.bfs, base.bfs), ratio(m.pagerank, base.pagerank))
		}
	}
	return sb.String()
}

func ratio(a, b time.Duration) float64 {
	if b <= 0 {
		return 0
	}
	return float64(a) / float64(b)
}

type algoTimes struct {
	degree, bfs, pagerank time.Duration
}

// measureAlgos times Degree and PageRank on the vertex-centric framework
// and single-threaded BFS from a fixed sample of sources, mirroring the
// paper's Figure 11 methodology.
func measureAlgos(g *core.Graph, src *core.Graph) algoTimes {
	var t algoTimes
	start := time.Now()
	vertexcentric.Run(g, vertexcentric.DegreeProgram(), vertexcentric.Options{Workers: 2})
	t.degree = time.Since(start)

	// BFS: mean over a fixed set of sources present in every
	// representation (the paper uses 50 random real nodes).
	sources := sampleIDs(src, 25)
	start = time.Now()
	for _, id := range sources {
		algo.BFS(g, id)
	}
	t.bfs = time.Since(start) / time.Duration(len(sources))

	start = time.Now()
	vertexcentric.Run(g, vertexcentric.PageRankProgram(g, 5, 0.85), vertexcentric.Options{Workers: 2})
	t.pagerank = time.Since(start)
	return t
}

func sampleIDs(g *core.Graph, n int) []int64 {
	var ids []int64
	g.ForEachReal(func(r int32) bool {
		ids = append(ids, g.RealID(r))
		return true
	})
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	if len(ids) > n {
		step := len(ids) / n
		var out []int64
		for i := 0; i < len(ids) && len(out) < n; i += step {
			out = append(out, ids[i])
		}
		return out
	}
	return ids
}

// buildAnalysisReps builds every representation of g (skipping ones the
// graph class does not support).
func buildAnalysisReps(g *core.Graph, seed int64) map[string]*core.Graph {
	out := map[string]*core.Graph{"C-DUP": g}
	for _, rb := range repBuilders(seed) {
		if rb.Name == "C-DUP" || rb.Name == "VMiner" {
			continue
		}
		if r, err := rb.Build(g); err == nil {
			out[rb.Name] = r
		}
	}
	return out
}

// Figure12a reproduces Figure 12a: runtimes of the deduplication
// algorithms (log-scale in the paper) across the small datasets.
func Figure12a(s Scale) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 12a: deduplication algorithm runtimes (RAND ordering)\n")
	fmt.Fprintf(&sb, "%-12s %-24s %12s %12s\n", "Dataset", "Algorithm", "Time", "OutEdges")
	names, graphs := smallGraphs(s)
	algos := dedupAlgorithms()
	for _, name := range names {
		g := graphs[name]
		for _, da := range algos {
			start := time.Now()
			out, err := da.Run(g, dedup.Options{Ordering: dedup.OrderRandom, Seed: 7})
			if err != nil {
				fmt.Fprintf(&sb, "%-12s %-24s %12s %12s\n", name, da.Name, "n/a", "-")
				continue
			}
			fmt.Fprintf(&sb, "%-12s %-24s %12s %12d\n",
				name, da.Name, fmtDur(time.Since(start)), out.RepEdges())
		}
	}
	return sb.String()
}

type dedupAlgo struct {
	Name string
	Run  func(*core.Graph, dedup.Options) (*core.Graph, error)
}

func dedupAlgorithms() []dedupAlgo {
	wrap := func(fn func(*core.Graph, dedup.Options) (*core.Graph, dedup.Stats, error)) func(*core.Graph, dedup.Options) (*core.Graph, error) {
		return func(g *core.Graph, o dedup.Options) (*core.Graph, error) {
			out, _, err := fn(g, o)
			return out, err
		}
	}
	return []dedupAlgo{
		{"BITMAP-1", func(g *core.Graph, _ dedup.Options) (*core.Graph, error) {
			out, _, err := dedup.Bitmap1(g)
			return out, err
		}},
		{"BITMAP-2", wrap(dedup.Bitmap2)},
		{"DEDUP1-NaiveVirtualFirst", wrap(dedup.Dedup1NaiveVirtualFirst)},
		{"DEDUP1-NaiveRealFirst", wrap(dedup.Dedup1NaiveRealFirst)},
		{"DEDUP1-GreedyRealFirst", wrap(dedup.Dedup1GreedyRealFirst)},
		{"DEDUP1-GreedyVirtFirst", wrap(dedup.Dedup1GreedyVirtualFirst)},
		{"DEDUP2-Greedy", wrap(dedup.Dedup2Greedy)},
	}
}

// Figure12b reproduces Figure 12b: the effect of the processing order on
// deduplication time and output size.
func Figure12b(s Scale) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 12b: vertex ordering effect on deduplication\n")
	fmt.Fprintf(&sb, "%-24s %-6s %12s %12s\n", "Algorithm", "Order", "Time", "OutEdges")
	_, graphs := smallGraphs(s)
	g := graphs["Synthetic_1"]
	for _, da := range dedupAlgorithms()[2:] { // ordering matters for DEDUP-1/2
		for _, ord := range []dedup.Ordering{dedup.OrderRandom, dedup.OrderSizeAsc, dedup.OrderSizeDesc} {
			start := time.Now()
			out, err := da.Run(g, dedup.Options{Ordering: ord, Seed: 7})
			if err != nil {
				continue
			}
			fmt.Fprintf(&sb, "%-24s %-6s %12s %12d\n",
				da.Name, ord.String(), fmtDur(time.Since(start)), out.RepEdges())
		}
	}
	return sb.String()
}

// Figure13 reproduces Figure 13: microbenchmarks of the core Graph API
// operations per representation (normalized to EXP).
func Figure13(s Scale) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 13: Graph API microbenchmarks (normalized to EXP = 1.00)\n")
	fmt.Fprintf(&sb, "%-12s %-10s %14s %14s %14s\n", "Dataset", "Repr", "GetNeighbors", "ExistsEdge", "RemoveVertex")
	names, graphs := smallGraphs(s)
	for _, name := range names {
		g := graphs[name]
		reps := buildAnalysisReps(g, 7)
		order := []string{"EXP", "C-DUP", "DEDUP-1", "DEDUP-2", "BITMAP-1", "BITMAP-2"}
		measured := make(map[string]microTimes, len(order))
		for _, rep := range order {
			if rg, ok := reps[rep]; ok {
				measured[rep] = microbench(rg, g)
			}
		}
		base := measured["EXP"]
		for _, rep := range order {
			m, ok := measured[rep]
			if !ok {
				continue
			}
			fmt.Fprintf(&sb, "%-12s %-10s %14.2f %14.2f %14.2f\n", name, rep,
				ratio(m.neighbors, base.neighbors), ratio(m.exists, base.exists), ratio(m.remove, base.remove))
		}
	}
	return sb.String()
}

type microTimes struct {
	neighbors, exists, remove time.Duration
}

// microbench measures the three Figure 13 operations on a fixed sample of
// nodes (the paper averages 3000 repetitions over the same sampled nodes).
func microbench(g *core.Graph, src *core.Graph) microTimes {
	ids := sampleIDs(src, 300)
	var m microTimes
	start := time.Now()
	for _, id := range ids {
		r, ok := g.RealIndex(id)
		if !ok {
			continue
		}
		g.ForNeighbors(r, func(int32) bool { return true })
	}
	m.neighbors = time.Since(start)

	start = time.Now()
	for i, id := range ids {
		g.ExistsEdge(id, ids[(i+1)%len(ids)])
	}
	m.exists = time.Since(start)

	// RemoveVertex on a clone so the shared representation survives.
	work := g.Clone()
	start = time.Now()
	for _, id := range ids[:min(50, len(ids))] {
		work.DeleteVertexID(id)
	}
	work.Compact()
	m.remove = time.Since(start)
	return m
}
