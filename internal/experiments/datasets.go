// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 6) on scaled-down datasets: the workload generators,
// parameter sweeps, baselines, and harnesses that print the same rows and
// series the paper reports. Absolute numbers differ (the substrate is an
// in-process simulator on CI-class hardware, not the authors' 24-core
// testbed); the comparisons — who wins, by what factor, where EXP becomes
// infeasible — are the reproduction targets tracked in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"time"

	"graphgen/internal/core"
	"graphgen/internal/datagen"
	"graphgen/internal/datalog"
	"graphgen/internal/extract"
	"graphgen/internal/relstore"
)

// Scale divides the paper's dataset sizes; 1 is the default CI-friendly
// scale (roughly 1/100 of the paper's), larger values shrink further.
type Scale struct {
	// Quick selects even smaller datasets for smoke runs.
	Quick bool
}

// Dataset couples a generated database with its extraction query, matching
// Table 1's four workloads.
type Dataset struct {
	Name  string
	DB    *relstore.DB
	Query string
}

// SmallDatasets returns the four Section 6.1 datasets: DBLP and IMDB
// samples plus Synthetic_1 and Synthetic_2 (Table 2). The synthetic ones
// are condensed graphs directly (the paper generates them condensed too);
// they are returned through the graphs map.
func SmallDatasets(s Scale) (dbs []Dataset, condensed map[string]*core.Graph) {
	div := 1
	if s.Quick {
		div = 4
	}
	dbs = []Dataset{
		{Name: "DBLP", DB: datagen.DBLPLike(41, 3000/div, 2400/div), Query: datagen.QueryCoauthors},
		{Name: "IMDB", DB: datagen.IMDBLike(42, 1600/div, 260/div), Query: datagen.QueryCoactors},
	}
	condensed = map[string]*core.Graph{
		// Paper shapes: Synthetic_1 has many small virtual nodes
		// (20k reals / 200k virts / avg 7); Synthetic_2 few huge ones
		// (200k reals / 1k virts / avg 94). Scaled ~1/100.
		"Synthetic_1": datagen.Condensed(datagen.CondensedConfig{
			Seed: 43, RealNodes: 220 / min(div, 2), VirtualNodes: 2000 / div, MeanSize: 7, StdDev: 2}),
		"Synthetic_2": datagen.Condensed(datagen.CondensedConfig{
			Seed: 44, RealNodes: 2000 / div, VirtualNodes: 12, MeanSize: 94, StdDev: 20}),
	}
	return dbs, condensed
}

// Table1Datasets returns the four extraction workloads of Table 1.
func Table1Datasets(s Scale) []Dataset {
	div := 1
	if s.Quick {
		div = 4
	}
	return []Dataset{
		{Name: "DBLP", DB: datagen.DBLPLike(41, 3000/div, 2400/div), Query: datagen.QueryCoauthors},
		{Name: "IMDB", DB: datagen.IMDBLike(42, 1600/div, 260/div), Query: datagen.QueryCoactors},
		{Name: "TPCH", DB: datagen.TPCHLike(45, 300/div, 2000/div, 25, 3), Query: datagen.QuerySamePart},
		{Name: "UNIV", DB: datagen.UnivLike(46, 800/div, 20, 40, 4), Query: datagen.QuerySameCourse},
	}
}

// LargeDataset is a Table 3 workload.
type LargeDataset struct {
	Name  string
	DB    *relstore.DB
	Query string
	// ExpBudget caps EXP materialization; exceeding it reports DNF, the
	// paper's ">64GB / did not finish" outcome scaled down.
	ExpBudget int64
}

// LargeDatasets returns the Table 3 workloads: two multi-layer and two
// single-layer selectivity-controlled synthetics plus the TPCH same-part
// graph. Selectivities follow Table 6.
func LargeDatasets(s Scale) []LargeDataset {
	rows := 12000
	if s.Quick {
		rows = 3000
	}
	return []LargeDataset{
		{Name: "Layered_1", DB: datagen.Layered(datagen.LayeredSpec{Seed: 51, Rows: rows, Entities: rows / 6, Sel1: 0.05, Sel2: 0.1}), Query: datagen.LayeredQuery, ExpBudget: 4_000_000},
		{Name: "Layered_2", DB: datagen.Layered(datagen.LayeredSpec{Seed: 52, Rows: rows, Entities: rows / 6, Sel1: 0.2, Sel2: 0.1}), Query: datagen.LayeredQuery, ExpBudget: 4_000_000},
		{Name: "Single_1", DB: datagen.Single(datagen.SingleSpec{Seed: 53, Rows: rows, Entities: rows / 2, Selectivity: 0.25}), Query: datagen.SingleQuery, ExpBudget: 4_000_000},
		{Name: "Single_2", DB: datagen.Single(datagen.SingleSpec{Seed: 54, Rows: rows, Entities: rows / 2, Selectivity: 0.01}), Query: datagen.SingleQuery, ExpBudget: 4_000_000},
		{Name: "TPCH", DB: datagen.TPCHLike(55, 400, rows/4, 30, 3), Query: datagen.QuerySamePart, ExpBudget: 4_000_000},
	}
}

// ExtractCondensed extracts the C-DUP representation of a dataset.
func ExtractCondensed(d Dataset) (*core.Graph, extract.Stats, error) {
	prog, err := datalog.Parse(d.Query)
	if err != nil {
		return nil, extract.Stats{}, err
	}
	opts := extract.DefaultOptions()
	opts.ForceCondensed = true
	opts.SkipPreprocess = true
	res, err := extract.Extract(d.DB, prog, opts)
	if err != nil {
		return nil, extract.Stats{}, err
	}
	return res.Graph, res.Stats, nil
}

// ExtractExpanded extracts the fully expanded graph, bounded by maxEdges.
func ExtractExpanded(d Dataset, maxEdges int64) (*core.Graph, extract.Stats, error) {
	prog, err := datalog.Parse(d.Query)
	if err != nil {
		return nil, extract.Stats{}, err
	}
	opts := extract.DefaultOptions()
	opts.ForceExpand = true
	opts.SkipPreprocess = true
	opts.MaxEdges = maxEdges
	res, err := extract.Extract(d.DB, prog, opts)
	if err != nil {
		return nil, extract.Stats{}, err
	}
	return res.Graph, res.Stats, nil
}

// fmtDur renders a duration in seconds with millisecond resolution.
func fmtDur(d time.Duration) string { return fmt.Sprintf("%.3fs", d.Seconds()) }

// fmtMB renders bytes as MB.
func fmtMB(b int64) string { return fmt.Sprintf("%.2fMB", float64(b)/(1<<20)) }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
