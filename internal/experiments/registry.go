package experiments

import (
	"fmt"
	"sort"
)

// Experiment is one regenerable table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(Scale) string
}

// All returns the experiment registry, one entry per table/figure of the
// paper's evaluation.
func All() []Experiment {
	return []Experiment{
		{"table1", "Condensed vs full extraction", Table1},
		{"table2", "Small dataset shapes", Table2},
		{"fig10", "Compression across representations (incl. VMiner)", Figure10},
		{"fig11", "Graph algorithm runtimes per representation", Figure11},
		{"fig12a", "Deduplication algorithm runtimes", Figure12a},
		{"fig12b", "Vertex-ordering effect on deduplication", Figure12b},
		{"table3", "Large datasets: C-DUP vs BITMAP vs EXP", Table3},
		{"fig13", "Graph API microbenchmarks", Figure13},
		{"table4", "BSP (Giraph-style) algorithm runs", Table4},
		{"table5", "BSP dataset shapes per representation", Table5},
		{"table6", "Generated dataset selectivities", Table6},
	}
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	var ids []string
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("experiments: unknown id %q (have %v)", id, ids)
}
