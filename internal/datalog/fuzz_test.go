package datalog

import (
	"errors"
	"testing"
)

// fuzzSeeds are the inline half of the FuzzParse corpus (the other half is
// checked in under testdata/fuzz/FuzzParse): valid programs spanning the
// whole grammar, plus malformed inputs near every lexer/parser error path.
var fuzzSeeds = []string{
	// Valid: the legacy fragment.
	"Nodes(ID, Name) :- Author(ID, Name).\nEdges(A, B) :- AuthorPub(A, P), AuthorPub(B, P).",
	"Nodes(A) :- R(A, _, 5, 'x').\nEdges(A, B) :- R(A, B, _, _).",
	// Valid: recursion, negation (both spellings), comparisons.
	"Coauthor(A, B) :- AuthorPub(A, P), AuthorPub(B, P), A != B.\nReach(A, B) :- Coauthor(A, B).\nReach(A, C) :- Reach(A, B), Coauthor(B, C).\nNodes(ID, N) :- Author(ID, N).\nEdges(A, B) :- Reach(A, B).",
	"P(A) :- R(A), not S(A).\nQ(A) :- R(A), !S(A).\nNodes(A) :- R(A).\nEdges(A, B) :- P(A), Q(B).",
	"P(A, B) :- R(A, B), A < B, A <= 10, B > 0, B >= A, A = A, A == B.\nNodes(A) :- R(A, _).\nEdges(A, B) :- P(A, B).",
	"Q(not) :- R(not), not < 5.\nP(A) :- not(A).\nNodes(A) :- R(A).\nEdges(A, B) :- P(A), Q(B).",
	// Valid: escapes, comments, negative ints.
	"% comment\nNodes(A) :- R(A, 'O\\'Brien', \"say \\\"hi\\\"\", 'a\\\\b\\n\\t'). // tail\nEdges(A, B) :- R(A, B), S(B, -42).",
	// Garbage and truncations.
	"",
	"Nodes(",
	"Nodes(A) :- R(A)",
	"Nodes(A) R(A).",
	"Nodes(A) :- R(A, 'x).",
	"Nodes(A) :- R(A$).",
	"Edges(A, B) :- R(A, B).",
	"P(A) :- R(A), _ < 3.\nNodes(A) :- R(A).\nEdges(A, B) :- R(A), R(B).",
	"Nodes(A) :- R(A), !.",
	"Nodes(A) :- R(A), A <.",
	"Nodes(A) :- R(A), A ! B.",
	"Nodes(9999999999999999999999) :- R(A).",
	":- R(A).",
}

// FuzzParse asserts two invariants over arbitrary input: parsing never
// panics and always fails with a positioned *SyntaxError, and any program
// that parses renders (String) to source that re-parses to a stable
// rendering — so error reporting and the printer can be trusted on any
// input.
func FuzzParse(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		ps, err := ParseProgram(src)
		if err != nil {
			var se *SyntaxError
			if !errors.As(err, &se) {
				t.Fatalf("non-SyntaxError from ParseProgram: %v (%T)", err, err)
			}
			if se.Line < 1 || se.Col < 1 {
				t.Fatalf("error without position: %+v", se)
			}
			return
		}
		out := ps.String()
		ps2, err := ParseProgram(out)
		if err != nil {
			t.Fatalf("round-trip re-parse failed: %v\nsource: %q\nrendered: %q", err, src, out)
		}
		if again := ps2.String(); again != out {
			t.Fatalf("rendering unstable:\nfirst:  %q\nsecond: %q", out, again)
		}
		// The legacy entry point must agree with ParseProgram on the
		// legacy fragment: it may reject (program constructs) but must
		// never panic or succeed with different rule counts.
		if p, err := Parse(src); err == nil {
			if len(p.Nodes) != len(ps.Nodes) || len(p.Edges) != len(ps.Edges) {
				t.Fatalf("Parse/ParseProgram disagree: %d/%d vs %d/%d nodes/edges",
					len(p.Nodes), len(p.Edges), len(ps.Nodes), len(ps.Edges))
			}
		}
	})
}
