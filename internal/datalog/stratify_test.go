package datalog

import (
	"strings"
	"testing"
)

// wrap appends minimal Nodes/Edges statements so IDB-only fixtures satisfy
// ParseProgram's structural requirements.
func wrap(idb string) string {
	return idb + "\nNodes(A) :- R(A).\nEdges(A, B) :- R(A), R(B)."
}

func mustParseProgram(t *testing.T, src string) *ProgramSet {
	t.Helper()
	ps, err := ParseProgram(src)
	if err != nil {
		t.Fatalf("ParseProgram: %v", err)
	}
	return ps
}

func TestParseProgramRecursiveWithNegationAndComparisons(t *testing.T) {
	src := `
Coauthor(A, B) :- AuthorPub(A, P), AuthorPub(B, P), A != B.
Reach(A, B) :- Coauthor(A, B).
Reach(A, C) :- Reach(A, B), Coauthor(B, C).
Distant(A, B) :- Reach(A, B), !Coauthor(A, B).
Nodes(ID, Name) :- Author(ID, Name).
Edges(A, B) :- Distant(A, B).
`
	ps := mustParseProgram(t, src)
	if len(ps.IDB) != 4 || len(ps.Nodes) != 1 || len(ps.Edges) != 1 {
		t.Fatalf("idb=%d nodes=%d edges=%d", len(ps.IDB), len(ps.Nodes), len(ps.Edges))
	}
	if got := ps.IDBPreds(); len(got) != 3 || got[0] != "coauthor" || got[1] != "reach" || got[2] != "distant" {
		t.Fatalf("IDBPreds = %v", got)
	}
	co := ps.IDB[0]
	if len(co.Comps) != 1 || co.Comps[0].Op != OpNE {
		t.Fatalf("comparison not parsed: %+v", co.Comps)
	}
	di := ps.IDB[3]
	if len(di.Negated) != 1 || di.Negated[0].Pred != "Coauthor" {
		t.Fatalf("negation not parsed: %+v", di.Negated)
	}
}

func TestParseProgramNegationKeywordAndBang(t *testing.T) {
	src := `
P(A) :- R(A), not S(A).
Q(A) :- R(A), !S(A).
Nodes(A) :- R(A).
Edges(A, B) :- P(A), Q(B).
`
	ps := mustParseProgram(t, src)
	for i := 0; i < 2; i++ {
		if len(ps.IDB[i].Negated) != 1 || ps.IDB[i].Negated[0].Pred != "S" {
			t.Fatalf("rule %d: negation = %+v", i, ps.IDB[i].Negated)
		}
	}
}

func TestParseProgramNotAsPredicateAndVariable(t *testing.T) {
	// `not` followed by '(' is an atom named not; followed by an operator
	// it is a plain variable.
	src := `
P(A) :- not(A).
Q(not) :- R(not), not < 5.
Nodes(A) :- R(A).
Edges(A, B) :- P(A), Q(B).
`
	ps := mustParseProgram(t, src)
	if ps.IDB[0].Body[0].Pred != "not" {
		t.Fatalf("atom named not: %+v", ps.IDB[0].Body)
	}
	if len(ps.IDB[1].Comps) != 1 || ps.IDB[1].Comps[0].L.Var != "not" {
		t.Fatalf("variable named not: %+v", ps.IDB[1].Comps)
	}
}

func TestParseProgramComparisonOperators(t *testing.T) {
	src := `
P(A, B) :- R(A, B), A < B, A <= 10, B > 0, B >= A, A = A, A != B, A == A.
Nodes(A) :- R(A, _).
Edges(A, B) :- P(A, B).
`
	ps := mustParseProgram(t, src)
	ops := []CompOp{OpLT, OpLE, OpGT, OpGE, OpEQ, OpNE, OpEQ}
	comps := ps.IDB[0].Comps
	if len(comps) != len(ops) {
		t.Fatalf("comps = %d, want %d", len(comps), len(ops))
	}
	for i, op := range ops {
		if comps[i].Op != op {
			t.Fatalf("comp %d: op = %v, want %v", i, comps[i].Op, op)
		}
	}
}

func TestParseLegacyRejectsProgramConstructs(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"idb rule", wrap(`P(A) :- R(A).`), "ExtractProgram"},
		{"negation", "Nodes(A) :- R(A).\nEdges(A, B) :- R(A), R(B), !S(A, B).", "negated atoms"},
		{"comparison", "Nodes(A) :- R(A).\nEdges(A, B) :- R(A), R(B), A != B.", "comparison literals"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want mention of %q", c.name, err, c.want)
		}
	}
}

func TestStratifyLevels(t *testing.T) {
	ps := mustParseProgram(t, `
Coauthor(A, B) :- AuthorPub(A, P), AuthorPub(B, P), A != B.
Reach(A, B) :- Coauthor(A, B).
Reach(A, C) :- Reach(A, B), Coauthor(B, C).
Nodes(ID, N) :- Author(ID, N).
Edges(A, B) :- Reach(A, B).
`)
	st, err := Stratify(ps)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Levels) != 2 {
		t.Fatalf("levels = %v, want 2", st.Levels)
	}
	if st.LevelOf["coauthor"] != 0 || st.LevelOf["reach"] != 1 {
		t.Fatalf("LevelOf = %v", st.LevelOf)
	}
}

func TestStratifyMutualRecursionOneStratum(t *testing.T) {
	ps := mustParseProgram(t, `
Even(A) :- Zero(A).
Even(B) :- Odd(A), Succ(A, B).
Odd(B) :- Even(A), Succ(A, B).
Nodes(A) :- Succ(A, _).
Edges(A, B) :- Even(A), Odd(B).
`)
	st, err := Stratify(ps)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Levels) != 1 || len(st.Levels[0]) != 2 {
		t.Fatalf("levels = %v, want one stratum {even, odd}", st.Levels)
	}
}

// TestStratifyDiagnostics asserts that each validation failure produces its
// own distinct, recognizable error message.
func TestStratifyDiagnostics(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{
			name: "unsafe negation",
			src:  wrap(`P(A) :- R(A), !S(A, B).`),
			want: "unsafe negation",
		},
		{
			name: "negation cycle",
			src:  wrap("P(A) :- R(A), !Q(A).\nQ(A) :- R(A), !P(A)."),
			want: "negation cycle",
		},
		{
			name: "self negation cycle",
			src:  wrap(`P(A) :- R(A), !P(A).`),
			want: "negation cycle",
		},
		{
			name: "unbound head variable",
			src:  wrap(`P(A, B) :- R(A).`),
			want: "unbound head variable",
		},
		{
			name: "head variable bound only negatively",
			src:  wrap(`P(A, B) :- R(A), !S(B).`),
			want: "unbound head variable",
		},
		{
			name: "arity mismatch between definitions",
			src:  wrap("P(A) :- R(A).\nP(A, B) :- R(A), R(B)."),
			want: "predicate arity mismatch",
		},
		{
			name: "arity mismatch at use",
			src:  wrap("P(A) :- R(A).\nQ(A) :- P(A, A)."),
			want: "predicate arity mismatch",
		},
		{
			name: "unbound comparison variable",
			src:  wrap(`P(A) :- R(A), A < B.`),
			want: "unbound variable",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			ps := mustParseProgram(t, c.src)
			_, err := Stratify(ps)
			if err == nil {
				t.Fatalf("Stratify succeeded, want error mentioning %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want mention of %q", err, c.want)
			}
		})
	}
}

func TestStratifyNegationOfLowerStratumOK(t *testing.T) {
	ps := mustParseProgram(t, `
Base(A, B) :- R(A, B).
TC(A, B) :- Base(A, B).
TC(A, C) :- TC(A, B), Base(B, C).
NotDirect(A, B) :- TC(A, B), !Base(A, B).
Nodes(A) :- R(A, _).
Edges(A, B) :- NotDirect(A, B).
`)
	st, err := Stratify(ps)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Levels) != 3 {
		t.Fatalf("levels = %v, want 3", st.Levels)
	}
	if st.LevelOf["notdirect"] != 2 {
		t.Fatalf("notdirect level = %d", st.LevelOf["notdirect"])
	}
}

// TestSyntaxErrorsCarryLineAndColumn exercises a representative error from
// each parser path and asserts a real position (column > 1 where the
// offending token is mid-line).
func TestSyntaxErrorsCarryLineAndColumn(t *testing.T) {
	cases := []struct {
		name, src        string
		wantLine, minCol int
	}{
		{"missing dot", "Nodes(A) :- R(A)", 1, 2},
		{"bad term", "Nodes(A) :- R(,).", 1, 15},
		{"missing implies", "Nodes(A) R(A).", 1, 10},
		{"bad escape", `Nodes(A) :- R('x\q').`, 1, 2},
		{"stray char", "Nodes(A) :- R(A$).", 1, 16},
		{"comparison wildcard", "P(A) :- R(A), _ < 3.\nNodes(A) :- R(A).\nEdges(A,B) :- R(A), R(B).", 1, 15},
		{"second line", "Nodes(A) :- R(A).\nEdges(A,B) :- R(A,B), S(B", 2, 23},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseProgram(c.src)
			se, ok := err.(*SyntaxError)
			if !ok {
				t.Fatalf("err = %v (%T), want *SyntaxError", err, err)
			}
			if se.Line != c.wantLine {
				t.Fatalf("line = %d, want %d (%v)", se.Line, c.wantLine, se)
			}
			if se.Col < c.minCol {
				t.Fatalf("col = %d, want >= %d (%v)", se.Col, c.minCol, se)
			}
		})
	}
}

func TestProgramSetStringRoundTrip(t *testing.T) {
	src := `
Coauthor(A, B) :- AuthorPub(A, P), AuthorPub(B, P), A != B.
Far(A, B) :- Coauthor(A, B), !Strong(A, B), A < B.
Nodes(ID, N) :- Author(ID, N, 'O\'Brien', 7).
Edges(A, B) :- Far(A, B).
`
	ps := mustParseProgram(t, src)
	out := ps.String()
	ps2, err := ParseProgram(out)
	if err != nil {
		t.Fatalf("re-parse of %q: %v", out, err)
	}
	if ps2.String() != out {
		t.Fatalf("render not stable:\nfirst:  %q\nsecond: %q", out, ps2.String())
	}
}

func TestReservedAuxPrefixRejected(t *testing.T) {
	_, err := ParseProgram(wrap(`__extract_body_1(A) :- R(A).`))
	if err == nil || !strings.Contains(err.Error(), "reserved") {
		t.Fatalf("err = %v, want reserved-prefix rejection", err)
	}
}

// TestParseMisspelledHeadDiagnostic: the legacy entry point must point at
// the typo'd head predicate, not at a missing-Nodes program error.
func TestParseMisspelledHeadDiagnostic(t *testing.T) {
	_, err := Parse("Node(A) :- R(A).\nEdges(A, B) :- R(A, X), R(B, X).")
	if err == nil || !strings.Contains(err.Error(), `got "Node"`) {
		t.Fatalf("err = %v, want the bad-head diagnostic naming \"Node\"", err)
	}
	se, ok := err.(*SyntaxError)
	if !ok || se.Line != 1 || se.Col != 1 {
		t.Fatalf("position = %+v, want the offending rule's position", err)
	}
}

func TestReservedAuxPrefixRejectedInBodies(t *testing.T) {
	for _, src := range []string{
		wrap(`P(A) :- __extract_body_1(A).`),
		wrap(`P(A) :- R(A), !__Extract_Body_2(A).`),
	} {
		if _, err := ParseProgram(src); err == nil || !strings.Contains(err.Error(), "reserved") {
			t.Fatalf("%s: err = %v, want reserved-prefix rejection", src, err)
		}
	}
}
