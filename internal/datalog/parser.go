package datalog

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses an extraction program in the legacy non-recursive fragment.
// It enforces the structural rules of Section 3.2: at least one Nodes
// statement, at least one Edges statement, head predicates restricted to
// Nodes/Edges, Nodes heads with >= 1 term and Edges heads with >= 2 terms
// (the ID positions), and non-recursive positive bodies. Programs that need
// derived predicates, recursion, negation, or comparisons must go through
// ParseProgram and the program evaluator instead.
func Parse(src string) (*Program, error) {
	// The IDB and negation/comparison checks run before the structural
	// Nodes/Edges-presence checks so a misspelled head (`Node(A) :- ...`)
	// is reported as the bad head it is, at its own position, rather than
	// as a missing-Nodes-statement program error.
	ps, err := parseProgramSet(src)
	if err != nil {
		return nil, err
	}
	if len(ps.IDB) > 0 {
		r := ps.IDB[0]
		return nil, &SyntaxError{Line: r.Head.Line, Col: r.Head.Col,
			Msg: fmt.Sprintf("head predicate must be Nodes or Edges, got %q (derived predicates need program evaluation — ExtractProgram)", r.Head.Pred)}
	}
	for _, r := range ps.Rules {
		if len(r.Negated) > 0 {
			a := r.Negated[0]
			return nil, &SyntaxError{Line: a.Line, Col: a.Col,
				Msg: "negated atoms need program evaluation (ExtractProgram)"}
		}
		if len(r.Comps) > 0 {
			c := r.Comps[0]
			return nil, &SyntaxError{Line: c.Line, Col: c.Col,
				Msg: "comparison literals need program evaluation (ExtractProgram)"}
		}
	}
	if err := checkPresence(ps); err != nil {
		return nil, err
	}
	return &Program{Nodes: ps.Nodes, Edges: ps.Edges}, nil
}

// ParseProgram parses a multi-rule Datalog program: any number of derived
// (IDB) predicate rules plus the Nodes/Edges extraction statements. Bodies
// may contain negated atoms and comparison literals; semantic validation
// (safety, arity consistency, stratifiability) is Stratify's job.
func ParseProgram(src string) (*ProgramSet, error) {
	ps, err := parseProgramSet(src)
	if err != nil {
		return nil, err
	}
	if err := checkPresence(ps); err != nil {
		return nil, err
	}
	return ps, nil
}

// checkPresence enforces the structural minimum of an extraction program:
// at least one Nodes and one Edges statement.
func checkPresence(ps *ProgramSet) error {
	if len(ps.Nodes) == 0 {
		return &SyntaxError{Line: 1, Col: 1, Msg: "program needs at least one Nodes statement"}
	}
	if len(ps.Edges) == 0 {
		return &SyntaxError{Line: 1, Col: 1, Msg: "program needs at least one Edges statement"}
	}
	return nil
}

// parseProgramSet parses rules without the Nodes/Edges-presence checks, so
// the two entry points can order their diagnostics differently.
func parseProgramSet(src string) (*ProgramSet, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	ps := &ProgramSet{}
	for p.tok.kind != tokEOF {
		rule, err := p.parseRule()
		if err != nil {
			return nil, err
		}
		switch strings.ToLower(rule.Head.Pred) {
		case "nodes":
			if len(rule.Head.Terms) < 1 {
				return nil, p.errAt(rule.Head, "Nodes head needs at least an ID term")
			}
			if rule.Head.Terms[0].Kind != TermVar {
				return nil, p.errAt(rule.Head, "the first Nodes term must be the ID variable")
			}
			ps.Nodes = append(ps.Nodes, rule)
		case "edges":
			if len(rule.Head.Terms) < 2 {
				return nil, p.errAt(rule.Head, "Edges head needs two ID terms")
			}
			if rule.Head.Terms[0].Kind != TermVar || rule.Head.Terms[1].Kind != TermVar {
				return nil, p.errAt(rule.Head, "the first two Edges terms must be ID variables")
			}
			ps.Edges = append(ps.Edges, rule)
		default:
			if strings.HasPrefix(strings.ToLower(rule.Head.Pred), reservedAuxPrefix) {
				return nil, p.errAt(rule.Head, fmt.Sprintf("predicate names starting with %q are reserved for desugared extraction bodies", reservedAuxPrefix))
			}
			for _, t := range rule.Head.Terms {
				if t.Kind == TermWildcard {
					return nil, p.errAt(rule.Head, fmt.Sprintf("wildcard _ cannot appear in the head of %q", rule.Head.Pred))
				}
			}
			ps.IDB = append(ps.IDB, rule)
		}
		for _, a := range append(append([]Atom{}, rule.Body...), rule.Negated...) {
			lower := strings.ToLower(a.Pred)
			if lower == "nodes" || lower == "edges" {
				return nil, p.errAt(a, "Nodes/Edges cannot appear in rule bodies; define a derived predicate instead")
			}
			if strings.HasPrefix(lower, reservedAuxPrefix) {
				return nil, p.errAt(a, fmt.Sprintf("predicate names starting with %q are reserved for desugared extraction bodies", reservedAuxPrefix))
			}
		}
		ps.Rules = append(ps.Rules, rule)
	}
	return ps, nil
}

// reservedAuxPrefix prefixes the synthetic predicates the program
// evaluator introduces when it desugars Nodes/Edges bodies; user programs
// may not define predicates under it (their derivations would silently
// merge with the synthetic ones).
const reservedAuxPrefix = "__extract_body_"

type parser struct {
	lex   *lexer
	tok   token
	ahead *token // one-token lookahead buffer, filled by peek
}

func (p *parser) advance() error {
	if p.ahead != nil {
		p.tok = *p.ahead
		p.ahead = nil
		return nil
	}
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

// peek returns the token after the current one without consuming it.
func (p *parser) peek() (token, error) {
	if p.ahead == nil {
		t, err := p.lex.next()
		if err != nil {
			return token{}, err
		}
		p.ahead = &t
	}
	return *p.ahead, nil
}

func (p *parser) expect(kind tokenKind, what string) (token, error) {
	if p.tok.kind != kind {
		return token{}, &SyntaxError{Line: p.tok.line, Col: p.tok.col,
			Msg: fmt.Sprintf("expected %s, got %s", what, p.tok)}
	}
	t := p.tok
	if err := p.advance(); err != nil {
		return token{}, err
	}
	return t, nil
}

func (p *parser) errAt(a Atom, msg string) error {
	return &SyntaxError{Line: a.Line, Col: a.Col, Msg: msg}
}

func (p *parser) parseRule() (Rule, error) {
	head, err := p.parseAtom()
	if err != nil {
		return Rule{}, err
	}
	if _, err := p.expect(tokImplies, "':-'"); err != nil {
		return Rule{}, err
	}
	rule := Rule{Head: head, Line: head.Line, Col: head.Col}
	for {
		if err := p.parseBodyLiteral(&rule); err != nil {
			return Rule{}, err
		}
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return Rule{}, err
			}
			continue
		}
		break
	}
	if _, err := p.expect(tokDot, "'.'"); err != nil {
		return Rule{}, err
	}
	return rule, nil
}

// parseBodyLiteral parses one body literal — a positive atom, a negated
// atom (`!P(...)` or `not P(...)`), or a comparison (`X < Y`) — and appends
// it to the rule.
func (p *parser) parseBodyLiteral(rule *Rule) error {
	switch {
	case p.tok.kind == tokNot:
		if err := p.advance(); err != nil {
			return err
		}
		a, err := p.parseAtom()
		if err != nil {
			return err
		}
		rule.Negated = append(rule.Negated, a)
		return nil
	case p.tok.kind == tokIdent && strings.EqualFold(p.tok.text, "not"):
		// `not` is a negation keyword only when followed by a predicate
		// name; `not(...)` stays an atom named "not", and `not < 3` a
		// comparison on a variable named "not".
		nxt, err := p.peek()
		if err != nil {
			return err
		}
		if nxt.kind == tokIdent {
			if err := p.advance(); err != nil {
				return err
			}
			a, err := p.parseAtom()
			if err != nil {
				return err
			}
			rule.Negated = append(rule.Negated, a)
			return nil
		}
	}
	if p.tok.kind == tokIdent {
		nxt, err := p.peek()
		if err != nil {
			return err
		}
		if nxt.kind == tokLParen {
			a, err := p.parseAtom()
			if err != nil {
				return err
			}
			rule.Body = append(rule.Body, a)
			return nil
		}
	}
	// Comparison literal: term op term.
	line, col := p.tok.line, p.tok.col
	l, err := p.parseTerm()
	if err != nil {
		return err
	}
	if p.tok.kind != tokCmp {
		return &SyntaxError{Line: p.tok.line, Col: p.tok.col,
			Msg: fmt.Sprintf("expected '(' (atom) or a comparison operator, got %s", p.tok)}
	}
	op, err := compOpOf(p.tok.text)
	if err != nil {
		return &SyntaxError{Line: p.tok.line, Col: p.tok.col, Msg: err.Error()}
	}
	if err := p.advance(); err != nil {
		return err
	}
	r, err := p.parseTerm()
	if err != nil {
		return err
	}
	for _, t := range []Term{l, r} {
		if t.Kind == TermWildcard {
			return &SyntaxError{Line: line, Col: col,
				Msg: "comparison operands must be variables or constants, not the wildcard _"}
		}
	}
	rule.Comps = append(rule.Comps, Comparison{Op: op, L: l, R: r, Line: line, Col: col})
	return nil
}

func compOpOf(text string) (CompOp, error) {
	switch text {
	case "=":
		return OpEQ, nil
	case "!=":
		return OpNE, nil
	case "<":
		return OpLT, nil
	case "<=":
		return OpLE, nil
	case ">":
		return OpGT, nil
	case ">=":
		return OpGE, nil
	default:
		return OpEQ, fmt.Errorf("unknown comparison operator %q", text)
	}
}

func (p *parser) parseAtom() (Atom, error) {
	name, err := p.expect(tokIdent, "predicate name")
	if err != nil {
		return Atom{}, err
	}
	if _, err := p.expect(tokLParen, "'('"); err != nil {
		return Atom{}, err
	}
	atom := Atom{Pred: name.text, Line: name.line, Col: name.col}
	for {
		term, err := p.parseTerm()
		if err != nil {
			return Atom{}, err
		}
		atom.Terms = append(atom.Terms, term)
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return Atom{}, err
			}
			continue
		}
		break
	}
	if _, err := p.expect(tokRParen, "')'"); err != nil {
		return Atom{}, err
	}
	return atom, nil
}

func (p *parser) parseTerm() (Term, error) {
	switch p.tok.kind {
	case tokIdent:
		v := p.tok.text
		if err := p.advance(); err != nil {
			return Term{}, err
		}
		return Term{Kind: TermVar, Var: v}, nil
	case tokUnderscore:
		if err := p.advance(); err != nil {
			return Term{}, err
		}
		return Term{Kind: TermWildcard}, nil
	case tokInt:
		n, err := strconv.ParseInt(p.tok.text, 10, 64)
		if err != nil {
			return Term{}, &SyntaxError{Line: p.tok.line, Col: p.tok.col, Msg: "invalid integer literal"}
		}
		if err := p.advance(); err != nil {
			return Term{}, err
		}
		return Term{Kind: TermInt, Int: n}, nil
	case tokString:
		s := p.tok.text
		if err := p.advance(); err != nil {
			return Term{}, err
		}
		return Term{Kind: TermString, Str: s}, nil
	default:
		return Term{}, &SyntaxError{Line: p.tok.line, Col: p.tok.col,
			Msg: fmt.Sprintf("expected a term, got %s", p.tok)}
	}
}
