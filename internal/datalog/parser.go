package datalog

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses an extraction program. It enforces the structural rules of
// Section 3.2: at least one Nodes statement, at least one Edges statement,
// head predicates restricted to Nodes/Edges, Nodes heads with >= 1 term and
// Edges heads with >= 2 terms (the ID positions), and non-recursive bodies
// (no Nodes/Edges predicates in bodies).
func Parse(src string) (*Program, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	prog := &Program{}
	for p.tok.kind != tokEOF {
		rule, err := p.parseRule()
		if err != nil {
			return nil, err
		}
		switch strings.ToLower(rule.Head.Pred) {
		case "nodes":
			if len(rule.Head.Terms) < 1 {
				return nil, p.errAt(rule.Line, "Nodes head needs at least an ID term")
			}
			if rule.Head.Terms[0].Kind != TermVar {
				return nil, p.errAt(rule.Line, "the first Nodes term must be the ID variable")
			}
			prog.Nodes = append(prog.Nodes, rule)
		case "edges":
			if len(rule.Head.Terms) < 2 {
				return nil, p.errAt(rule.Line, "Edges head needs two ID terms")
			}
			if rule.Head.Terms[0].Kind != TermVar || rule.Head.Terms[1].Kind != TermVar {
				return nil, p.errAt(rule.Line, "the first two Edges terms must be ID variables")
			}
			prog.Edges = append(prog.Edges, rule)
		default:
			return nil, p.errAt(rule.Line, fmt.Sprintf("head predicate must be Nodes or Edges, got %q", rule.Head.Pred))
		}
		for _, a := range rule.Body {
			lower := strings.ToLower(a.Pred)
			if lower == "nodes" || lower == "edges" {
				return nil, p.errAt(a.Line, "recursive rules are not supported (Nodes/Edges cannot appear in bodies)")
			}
		}
	}
	if len(prog.Nodes) == 0 {
		return nil, &SyntaxError{Line: 1, Col: 1, Msg: "program needs at least one Nodes statement"}
	}
	if len(prog.Edges) == 0 {
		return nil, &SyntaxError{Line: 1, Col: 1, Msg: "program needs at least one Edges statement"}
	}
	return prog, nil
}

type parser struct {
	lex *lexer
	tok token
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) expect(kind tokenKind, what string) (token, error) {
	if p.tok.kind != kind {
		return token{}, &SyntaxError{Line: p.tok.line, Col: p.tok.col,
			Msg: fmt.Sprintf("expected %s, got %s", what, p.tok)}
	}
	t := p.tok
	if err := p.advance(); err != nil {
		return token{}, err
	}
	return t, nil
}

func (p *parser) errAt(line int, msg string) error {
	return &SyntaxError{Line: line, Col: 1, Msg: msg}
}

func (p *parser) parseRule() (Rule, error) {
	head, err := p.parseAtom()
	if err != nil {
		return Rule{}, err
	}
	if _, err := p.expect(tokImplies, "':-'"); err != nil {
		return Rule{}, err
	}
	var body []Atom
	for {
		a, err := p.parseAtom()
		if err != nil {
			return Rule{}, err
		}
		body = append(body, a)
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return Rule{}, err
			}
			continue
		}
		break
	}
	if _, err := p.expect(tokDot, "'.'"); err != nil {
		return Rule{}, err
	}
	return Rule{Head: head, Body: body, Line: head.Line}, nil
}

func (p *parser) parseAtom() (Atom, error) {
	name, err := p.expect(tokIdent, "predicate name")
	if err != nil {
		return Atom{}, err
	}
	if _, err := p.expect(tokLParen, "'('"); err != nil {
		return Atom{}, err
	}
	atom := Atom{Pred: name.text, Line: name.line}
	for {
		term, err := p.parseTerm()
		if err != nil {
			return Atom{}, err
		}
		atom.Terms = append(atom.Terms, term)
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return Atom{}, err
			}
			continue
		}
		break
	}
	if _, err := p.expect(tokRParen, "')'"); err != nil {
		return Atom{}, err
	}
	return atom, nil
}

func (p *parser) parseTerm() (Term, error) {
	switch p.tok.kind {
	case tokIdent:
		v := p.tok.text
		if err := p.advance(); err != nil {
			return Term{}, err
		}
		return Term{Kind: TermVar, Var: v}, nil
	case tokUnderscore:
		if err := p.advance(); err != nil {
			return Term{}, err
		}
		return Term{Kind: TermWildcard}, nil
	case tokInt:
		n, err := strconv.ParseInt(p.tok.text, 10, 64)
		if err != nil {
			return Term{}, &SyntaxError{Line: p.tok.line, Col: p.tok.col, Msg: "invalid integer literal"}
		}
		if err := p.advance(); err != nil {
			return Term{}, err
		}
		return Term{Kind: TermInt, Int: n}, nil
	case tokString:
		s := p.tok.text
		if err := p.advance(); err != nil {
			return Term{}, err
		}
		return Term{Kind: TermString, Str: s}, nil
	default:
		return Term{}, &SyntaxError{Line: p.tok.line, Col: p.tok.col,
			Msg: fmt.Sprintf("expected a term, got %s", p.tok)}
	}
}
