package datalog

import (
	"fmt"
	"sort"
	"strings"
)

// This file validates multi-rule programs and computes their stratification:
// the partition of the derived (IDB) predicates into an ordered list of
// strata such that every positive dependency points to the same or an
// earlier stratum and every negative dependency points to a strictly
// earlier one. A stratum is one strongly connected component of the
// dependency graph, so the predicates inside it are mutually recursive and
// are evaluated together by one semi-naive fixpoint loop.
//
// Validation diagnostics (each a distinct message, tested individually):
//   - unbound head variable: a head variable not bound by a positive atom
//   - unsafe negation: a negated atom's variable not bound positively
//   - unbound comparison variable: a comparison over an unbound variable
//   - predicate arity mismatch: a derived predicate used at two arities
//   - negation cycle: recursion through a negated dependency

// Strata is a validated stratification of a program's derived predicates.
type Strata struct {
	// Levels lists the derived predicates in evaluation order; the
	// predicates of one level are mutually recursive (or a singleton).
	// Names are lowercased.
	Levels [][]string
	// LevelOf maps each lowercased derived predicate to its level index.
	LevelOf map[string]int
}

// Stratify validates the program's rules (safety, arity consistency) and
// returns the stratification of its derived predicates. Predicates not
// defined by any rule are treated as base (EDB) tables.
func Stratify(ps *ProgramSet) (*Strata, error) {
	idb := make(map[string]int) // lowercased name -> head arity
	for _, r := range ps.IDB {
		name := strings.ToLower(r.Head.Pred)
		if prev, ok := idb[name]; ok && prev != len(r.Head.Terms) {
			return nil, fmt.Errorf("datalog: line %d col %d: predicate arity mismatch: %q has arity %d here but arity %d elsewhere",
				r.Head.Line, r.Head.Col, r.Head.Pred, len(r.Head.Terms), prev)
		}
		idb[name] = len(r.Head.Terms)
	}
	for _, r := range ps.Rules {
		if err := checkRule(r, idb); err != nil {
			return nil, err
		}
	}

	// Dependency edges among derived predicates: head -> body predicate,
	// flagged negative when the body atom is negated.
	preds := ps.IDBPreds()
	adj := make(map[string]map[string]bool, len(preds)) // head -> dep -> negative?
	for _, name := range preds {
		adj[name] = make(map[string]bool)
	}
	for _, r := range ps.IDB {
		head := strings.ToLower(r.Head.Pred)
		for _, a := range r.Body {
			if dep := strings.ToLower(a.Pred); isIDB(dep, idb) {
				if _, ok := adj[head][dep]; !ok {
					adj[head][dep] = false
				}
			}
		}
		for _, a := range r.Negated {
			if dep := strings.ToLower(a.Pred); isIDB(dep, idb) {
				adj[head][dep] = true
			}
		}
	}

	comps := sccs(preds, adj)
	levels := make([][]string, 0, len(comps))
	levelOf := make(map[string]int, len(preds))
	for _, comp := range comps {
		inComp := make(map[string]struct{}, len(comp))
		for _, p := range comp {
			inComp[p] = struct{}{}
		}
		// A negative edge inside one SCC is recursion through negation.
		for _, p := range comp {
			for dep, neg := range adj[p] {
				if _, same := inComp[dep]; same && neg {
					return nil, fmt.Errorf("datalog: negation cycle: predicate %q depends negatively on %q inside a recursive cycle; stratified negation forbids this", p, dep)
				}
			}
		}
		sort.Strings(comp)
		for _, p := range comp {
			levelOf[p] = len(levels)
		}
		levels = append(levels, comp)
	}
	return &Strata{Levels: levels, LevelOf: levelOf}, nil
}

func isIDB(name string, idb map[string]int) bool {
	_, ok := idb[name]
	return ok
}

// checkRule enforces rule safety and body-atom arity consistency against
// the derived-predicate arities.
func checkRule(r Rule, idb map[string]int) error {
	bound := make(map[string]struct{})
	for _, a := range r.Body {
		for _, v := range a.Vars() {
			bound[v] = struct{}{}
		}
	}
	for _, t := range r.Head.Terms {
		if t.Kind != TermVar {
			continue
		}
		if _, ok := bound[t.Var]; !ok {
			return fmt.Errorf("datalog: line %d col %d: unbound head variable %q in rule for %q: every head variable must appear in a positive body atom",
				r.Head.Line, r.Head.Col, t.Var, r.Head.Pred)
		}
	}
	for _, a := range r.Negated {
		for _, v := range a.Vars() {
			if _, ok := bound[v]; !ok {
				return fmt.Errorf("datalog: line %d col %d: unsafe negation: variable %q in negated atom %s is not bound by a positive body atom",
					a.Line, a.Col, v, a)
			}
		}
	}
	for _, c := range r.Comps {
		for _, v := range c.Vars() {
			if _, ok := bound[v]; !ok {
				return fmt.Errorf("datalog: line %d col %d: comparison %s uses unbound variable %q: comparison variables must appear in a positive body atom",
					c.Line, c.Col, c, v)
			}
		}
	}
	for _, group := range [][]Atom{r.Body, r.Negated} {
		for _, a := range group {
			name := strings.ToLower(a.Pred)
			if want, ok := idb[name]; ok && len(a.Terms) != want {
				return fmt.Errorf("datalog: line %d col %d: predicate arity mismatch: %q used with arity %d but defined with arity %d",
					a.Line, a.Col, a.Pred, len(a.Terms), want)
			}
		}
	}
	return nil
}

// sccs returns the strongly connected components of the dependency graph in
// dependency-first order (every component's dependencies appear in earlier
// components). Tarjan's algorithm emits components in reverse topological
// order of the condensation, which is exactly evaluation order here because
// edges point head -> dependency. Nodes are visited in sorted order so the
// result is deterministic.
func sccs(preds []string, adj map[string]map[string]bool) [][]string {
	sorted := append([]string(nil), preds...)
	sort.Strings(sorted)
	index := make(map[string]int, len(sorted))
	low := make(map[string]int, len(sorted))
	onStack := make(map[string]bool, len(sorted))
	var stack []string
	var out [][]string
	next := 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		deps := make([]string, 0, len(adj[v]))
		for d := range adj[v] {
			deps = append(deps, d)
		}
		sort.Strings(deps)
		for _, w := range deps {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			out = append(out, comp)
		}
	}
	for _, v := range sorted {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	return out
}
