package datalog

import (
	"fmt"
	"strings"
)

// TermKind discriminates the kinds of atom arguments.
type TermKind uint8

// Term kinds.
const (
	// TermVar is a Datalog variable.
	TermVar TermKind = iota
	// TermWildcard is the anonymous variable _.
	TermWildcard
	// TermInt is an integer constant (a selection predicate).
	TermInt
	// TermString is a string constant (a selection predicate).
	TermString
)

// Term is one argument of an atom.
type Term struct {
	Kind TermKind
	Var  string
	Int  int64
	Str  string
}

// String renders the term in source form.
func (t Term) String() string {
	switch t.Kind {
	case TermVar:
		return t.Var
	case TermWildcard:
		return "_"
	case TermInt:
		return fmt.Sprintf("%d", t.Int)
	default:
		return Quote(t.Str)
	}
}

// Quote renders s as a single-quoted Datalog string literal using only the
// escape sequences the lexer understands (\\ \' \n \t), so String output
// always re-parses.
func Quote(s string) string {
	var sb strings.Builder
	sb.WriteByte('\'')
	for _, r := range s {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '\'':
			sb.WriteString(`\'`)
		case '\n':
			sb.WriteString(`\n`)
		case '\t':
			sb.WriteString(`\t`)
		default:
			sb.WriteRune(r)
		}
	}
	sb.WriteByte('\'')
	return sb.String()
}

// Atom is a predicate applied to terms: Pred(t1, ..., tn). In rule bodies
// Pred names a database table or a derived (IDB) predicate; in heads it is
// Nodes, Edges, or a derived predicate being defined.
type Atom struct {
	Pred  string
	Terms []Term
	Line  int
	Col   int
}

// String renders the atom in source form.
func (a Atom) String() string {
	parts := make([]string, len(a.Terms))
	for i, t := range a.Terms {
		parts[i] = t.String()
	}
	return fmt.Sprintf("%s(%s)", a.Pred, strings.Join(parts, ", "))
}

// Vars returns the distinct variable names of the atom, in order.
func (a Atom) Vars() []string {
	var out []string
	seen := make(map[string]struct{})
	for _, t := range a.Terms {
		if t.Kind != TermVar {
			continue
		}
		if _, dup := seen[t.Var]; dup {
			continue
		}
		seen[t.Var] = struct{}{}
		out = append(out, t.Var)
	}
	return out
}

// HasVar reports whether the atom mentions the variable.
func (a Atom) HasVar(name string) bool {
	for _, t := range a.Terms {
		if t.Kind == TermVar && t.Var == name {
			return true
		}
	}
	return false
}

// CompOp is a comparison operator usable as a rule-body literal.
type CompOp uint8

// Comparison operators.
const (
	OpEQ CompOp = iota // =
	OpNE               // !=
	OpLT               // <
	OpLE               // <=
	OpGT               // >
	OpGE               // >=
)

// String renders the operator in source form.
func (op CompOp) String() string {
	switch op {
	case OpEQ:
		return "="
	case OpNE:
		return "!="
	case OpLT:
		return "<"
	case OpLE:
		return "<="
	case OpGT:
		return ">"
	default:
		return ">="
	}
}

// Comparison is a body literal of the form `t1 op t2` (e.g. A != B, X < 5).
// Operands are variables or constants; wildcards are rejected at parse.
type Comparison struct {
	Op   CompOp
	L, R Term
	Line int
	Col  int
}

// String renders the comparison in source form.
func (c Comparison) String() string {
	return fmt.Sprintf("%s %s %s", c.L, c.Op, c.R)
}

// Vars returns the distinct variable names of the comparison, in order.
func (c Comparison) Vars() []string {
	var out []string
	if c.L.Kind == TermVar {
		out = append(out, c.L.Var)
	}
	if c.R.Kind == TermVar && (c.L.Kind != TermVar || c.R.Var != c.L.Var) {
		out = append(out, c.R.Var)
	}
	return out
}

// Rule is head :- body. Body holds the positive atoms; Negated the atoms
// prefixed with `!` (or `not`); Comps the comparison literals. The legacy
// non-recursive fragment (Parse) only populates Body.
type Rule struct {
	Head    Atom
	Body    []Atom
	Negated []Atom
	Comps   []Comparison
	Line    int
	Col     int
}

// String renders the rule in source form (positive atoms, then negated
// atoms, then comparisons — a reordering of the source that is logically
// identical, since body literals are a conjunction).
func (r Rule) String() string {
	parts := make([]string, 0, len(r.Body)+len(r.Negated)+len(r.Comps))
	for _, a := range r.Body {
		parts = append(parts, a.String())
	}
	for _, a := range r.Negated {
		parts = append(parts, "!"+a.String())
	}
	for _, c := range r.Comps {
		parts = append(parts, c.String())
	}
	return fmt.Sprintf("%s :- %s.", r.Head.String(), strings.Join(parts, ", "))
}

// Program is a parsed extraction query: one or more Nodes rules followed by
// one or more Edges rules (multiple statements extract heterogeneous
// graphs, Section 3.2).
type Program struct {
	Nodes []Rule
	Edges []Rule
}

// String renders the program in source form.
func (p *Program) String() string {
	var sb strings.Builder
	for _, r := range p.Nodes {
		sb.WriteString(r.String())
		sb.WriteByte('\n')
	}
	for _, r := range p.Edges {
		sb.WriteString(r.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// ProgramSet is a parsed multi-rule Datalog program (ParseProgram): derived
// (IDB) predicate rules — possibly recursive, with stratified negation and
// comparison literals — plus the Nodes/Edges extraction rules that feed the
// graph extractor. Rules preserves source order across all three groups.
type ProgramSet struct {
	Rules []Rule
	IDB   []Rule
	Nodes []Rule
	Edges []Rule
}

// IDBPreds returns the lowercased names of the derived predicates (rule
// heads other than Nodes/Edges), each once, in first-definition order.
func (p *ProgramSet) IDBPreds() []string {
	var out []string
	seen := make(map[string]struct{})
	for _, r := range p.IDB {
		name := strings.ToLower(r.Head.Pred)
		if _, dup := seen[name]; dup {
			continue
		}
		seen[name] = struct{}{}
		out = append(out, name)
	}
	return out
}

// String renders the program set in source order.
func (p *ProgramSet) String() string {
	var sb strings.Builder
	for _, r := range p.Rules {
		sb.WriteString(r.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}
