package datalog

import (
	"fmt"
	"strings"
)

// TermKind discriminates the kinds of atom arguments.
type TermKind uint8

// Term kinds.
const (
	// TermVar is a Datalog variable.
	TermVar TermKind = iota
	// TermWildcard is the anonymous variable _.
	TermWildcard
	// TermInt is an integer constant (a selection predicate).
	TermInt
	// TermString is a string constant (a selection predicate).
	TermString
)

// Term is one argument of an atom.
type Term struct {
	Kind TermKind
	Var  string
	Int  int64
	Str  string
}

// String renders the term in source form.
func (t Term) String() string {
	switch t.Kind {
	case TermVar:
		return t.Var
	case TermWildcard:
		return "_"
	case TermInt:
		return fmt.Sprintf("%d", t.Int)
	default:
		return fmt.Sprintf("%q", t.Str)
	}
}

// Atom is a predicate applied to terms: Pred(t1, ..., tn). In rule bodies
// Pred names a database table; in heads it is Nodes or Edges.
type Atom struct {
	Pred  string
	Terms []Term
	Line  int
}

// String renders the atom in source form.
func (a Atom) String() string {
	parts := make([]string, len(a.Terms))
	for i, t := range a.Terms {
		parts[i] = t.String()
	}
	return fmt.Sprintf("%s(%s)", a.Pred, strings.Join(parts, ", "))
}

// Vars returns the distinct variable names of the atom, in order.
func (a Atom) Vars() []string {
	var out []string
	seen := make(map[string]struct{})
	for _, t := range a.Terms {
		if t.Kind != TermVar {
			continue
		}
		if _, dup := seen[t.Var]; dup {
			continue
		}
		seen[t.Var] = struct{}{}
		out = append(out, t.Var)
	}
	return out
}

// HasVar reports whether the atom mentions the variable.
func (a Atom) HasVar(name string) bool {
	for _, t := range a.Terms {
		if t.Kind == TermVar && t.Var == name {
			return true
		}
	}
	return false
}

// Rule is head :- body.
type Rule struct {
	Head Atom
	Body []Atom
	Line int
}

// String renders the rule in source form.
func (r Rule) String() string {
	parts := make([]string, len(r.Body))
	for i, a := range r.Body {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s :- %s.", r.Head.String(), strings.Join(parts, ", "))
}

// Program is a parsed extraction query: one or more Nodes rules followed by
// one or more Edges rules (multiple statements extract heterogeneous
// graphs, Section 3.2).
type Program struct {
	Nodes []Rule
	Edges []Rule
}

// String renders the program in source form.
func (p *Program) String() string {
	var sb strings.Builder
	for _, r := range p.Nodes {
		sb.WriteString(r.String())
		sb.WriteByte('\n')
	}
	for _, r := range p.Edges {
		sb.WriteString(r.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}
