package datalog

import (
	"errors"
	"fmt"
)

// This file implements the Case 1 / Case 2 classification of Section 3.3.
// An Edges rule qualifies for condensed extraction (Case 1) when its body is
// an acyclic chain
//
//	R1(ID1, a1), R2(a1, a2), ..., Rn(a_{n-1}, ID2)
//
// where consecutive atoms share exactly one join variable and no variable
// joins more than two atoms. Everything else (cyclic bodies, multi-attribute
// joins, disconnected bodies) is Case 2 and falls back to full expansion.

// ErrNotChain marks an Edges rule that does not qualify for condensed
// extraction; the extractor then evaluates it as a full join (Case 2).
var ErrNotChain = errors.New("datalog: rule body is not an acyclic join chain")

// ChainStep is one atom of an analyzed chain with its role annotations.
type ChainStep struct {
	Atom Atom
	// InVar is the variable connecting this atom to the previous one (or
	// ID1 for the first step); OutVar connects to the next (or ID2 for
	// the last step).
	InVar, OutVar string
}

// Chain is an Edges rule body ordered into a join path. JoinVars[i] is the
// variable joining Steps[i] to Steps[i+1].
type Chain struct {
	ID1, ID2 string
	Steps    []ChainStep
	JoinVars []string
}

// AnalyzeChain classifies rule and, for Case 1, returns its join chain.
func AnalyzeChain(rule Rule) (*Chain, error) {
	id1 := rule.Head.Terms[0].Var
	id2 := rule.Head.Terms[1].Var
	if id1 == id2 {
		return nil, fmt.Errorf("%w: the two edge endpoints use the same variable %q", ErrNotChain, id1)
	}
	atoms := rule.Body
	// Which atoms mention each variable?
	occ := make(map[string][]int)
	for i, a := range atoms {
		for _, v := range a.Vars() {
			occ[v] = append(occ[v], i)
		}
	}
	if len(occ[id1]) != 1 || len(occ[id2]) != 1 {
		return nil, fmt.Errorf("%w: each edge endpoint must occur in exactly one body atom", ErrNotChain)
	}
	start, end := occ[id1][0], occ[id2][0]
	// Single-atom special case: Edges(ID1, ID2) :- Follows(ID1, ID2).
	if len(atoms) == 1 {
		if start != 0 || end != 0 {
			return nil, ErrNotChain
		}
		return &Chain{ID1: id1, ID2: id2, Steps: []ChainStep{{Atom: atoms[0], InVar: id1, OutVar: id2}}}, nil
	}
	if start == end {
		return nil, fmt.Errorf("%w: both endpoints in one atom of a multi-atom body", ErrNotChain)
	}
	// Shared variables define the atom adjacency. A variable in 3+ atoms
	// or two atoms sharing 2+ variables breaks the simple-chain shape.
	adj := make(map[int]map[int]string) // atom -> atom -> join var
	for v, idxs := range occ {
		if v == id1 || v == id2 {
			continue
		}
		if len(idxs) == 1 {
			continue // projected-away free variable
		}
		if len(idxs) > 2 {
			return nil, fmt.Errorf("%w: variable %q joins %d atoms", ErrNotChain, v, len(idxs))
		}
		a, b := idxs[0], idxs[1]
		if adj[a] == nil {
			adj[a] = make(map[int]string)
		}
		if adj[b] == nil {
			adj[b] = make(map[int]string)
		}
		if _, dup := adj[a][b]; dup {
			return nil, fmt.Errorf("%w: atoms %d and %d share multiple join variables", ErrNotChain, a, b)
		}
		adj[a][b] = v
		adj[b][a] = v
	}
	// Walk the path from the ID1 atom; it must visit every atom exactly
	// once and terminate at the ID2 atom.
	chain := &Chain{ID1: id1, ID2: id2}
	visited := make([]bool, len(atoms))
	cur, prevVar := start, id1
	for {
		visited[cur] = true
		step := ChainStep{Atom: atoms[cur], InVar: prevVar}
		next, nextVar := -1, ""
		for n, v := range adj[cur] {
			if visited[n] {
				continue
			}
			if next != -1 {
				return nil, fmt.Errorf("%w: atom %s branches", ErrNotChain, atoms[cur])
			}
			next, nextVar = n, v
		}
		if next == -1 {
			if cur != end {
				return nil, fmt.Errorf("%w: chain from %q does not end at the %q atom", ErrNotChain, id1, id2)
			}
			step.OutVar = id2
			chain.Steps = append(chain.Steps, step)
			break
		}
		if cur == end {
			return nil, fmt.Errorf("%w: the %q atom is interior to the chain", ErrNotChain, id2)
		}
		step.OutVar = nextVar
		chain.Steps = append(chain.Steps, step)
		chain.JoinVars = append(chain.JoinVars, nextVar)
		cur, prevVar = next, nextVar
	}
	for i, ok := range visited {
		if !ok {
			return nil, fmt.Errorf("%w: atom %s is disconnected from the chain", ErrNotChain, atoms[i])
		}
	}
	// Cycle check: a visited-once walk covering all atoms with unique
	// pairwise join vars is acyclic by construction, but an extra edge
	// between non-consecutive chain atoms would be a cycle.
	edges := 0
	for _, m := range adj {
		edges += len(m)
	}
	if edges/2 != len(atoms)-1 {
		return nil, fmt.Errorf("%w: body joins form a cycle", ErrNotChain)
	}
	return chain, nil
}

// TermIndex returns the index of the first term binding the named variable.
func (a Atom) TermIndex(name string) (int, bool) {
	for i, t := range a.Terms {
		if t.Kind == TermVar && t.Var == name {
			return i, true
		}
	}
	return 0, false
}
