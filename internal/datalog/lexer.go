// Package datalog implements GraphGen's graph-extraction DSL (Section 3.2).
// Two entry points parse two fragments of the language:
//
// Parse accepts the original non-recursive fragment — only the special head
// predicates Nodes and Edges, positive conjunctive bodies:
//
//	Nodes(ID, Name) :- Author(ID, Name).
//	Edges(ID1, ID2) :- AuthorPub(ID1, PubID), AuthorPub(ID2, PubID).
//
// ParseProgram accepts full multi-rule programs: derived (IDB) predicates,
// recursion, negated atoms (`!P(X)` or `not P(X)`), and comparison literals
// (`<`, `<=`, `>`, `>=`, `=`, `!=`), stratified by Stratify and evaluated
// bottom-up by internal/datalogeval:
//
//	Coauthor(A, B) :- AuthorPub(A, P), AuthorPub(B, P), A != B.
//	Reach(A, B)    :- Coauthor(A, B).
//	Reach(A, C)    :- Reach(A, B), Coauthor(B, C).
//	Nodes(ID, N)   :- Author(ID, N).
//	Edges(A, B)    :- Reach(A, B).
//
// Body atoms reference database tables or derived predicates positionally;
// terms are variables, the wildcard _, or constants (integers and quoted
// strings) which act as selection predicates. String literals accept either
// quote style and the escape sequences \', \", \\, \n, and \t.
package datalog

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokIdent tokenKind = iota
	tokVar             // same surface form as ident; classified by parser
	tokInt
	tokString
	tokLParen
	tokRParen
	tokComma
	tokDot
	tokImplies // :-
	tokUnderscore
	tokNot // '!' (negation prefix; '!=' lexes as tokCmp)
	tokCmp // comparison operator: < <= > >= = !=  ('==' normalizes to '=')
	tokEOF
)

type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokImplies:
		return "':-'"
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// SyntaxError reports a lexical or parse error with position information.
type SyntaxError struct {
	Line, Col int
	Msg       string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("datalog: line %d col %d: %s", e.Line, e.Col, e.Msg)
}

type lexer struct {
	src  []rune
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: []rune(src), line: 1, col: 1}
}

func (l *lexer) errorf(format string, args ...any) *SyntaxError {
	return &SyntaxError{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peek() rune {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) advance() rune {
	r := l.src[l.pos]
	l.pos++
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func (l *lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		r := l.peek()
		switch {
		case unicode.IsSpace(r):
			l.advance()
		case r == '%': // Datalog line comment
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case r == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

func (l *lexer) next() (token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return token{}, err
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: l.line, col: l.col}, nil
	}
	line, col := l.line, l.col
	r := l.peek()
	switch {
	case r == '(':
		l.advance()
		return token{tokLParen, "(", line, col}, nil
	case r == ')':
		l.advance()
		return token{tokRParen, ")", line, col}, nil
	case r == ',':
		l.advance()
		return token{tokComma, ",", line, col}, nil
	case r == '.':
		l.advance()
		return token{tokDot, ".", line, col}, nil
	case r == '_' && !isIdentRune(peekAt(l, 1)):
		l.advance()
		return token{tokUnderscore, "_", line, col}, nil
	case r == ':':
		l.advance()
		if l.peek() != '-' {
			return token{}, l.errorf("expected '-' after ':'")
		}
		l.advance()
		return token{tokImplies, ":-", line, col}, nil
	case r == '!':
		l.advance()
		if l.peek() == '=' {
			l.advance()
			return token{tokCmp, "!=", line, col}, nil
		}
		return token{tokNot, "!", line, col}, nil
	case r == '=':
		l.advance()
		if l.peek() == '=' {
			l.advance()
		}
		return token{tokCmp, "=", line, col}, nil
	case r == '<':
		l.advance()
		if l.peek() == '=' {
			l.advance()
			return token{tokCmp, "<=", line, col}, nil
		}
		return token{tokCmp, "<", line, col}, nil
	case r == '>':
		l.advance()
		if l.peek() == '=' {
			l.advance()
			return token{tokCmp, ">=", line, col}, nil
		}
		return token{tokCmp, ">", line, col}, nil
	case r == '\'' || r == '"':
		quote := r
		l.advance()
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, l.errorf("unterminated string literal")
			}
			c := l.advance()
			if c == quote {
				break
			}
			if c == '\\' {
				if l.pos >= len(l.src) {
					return token{}, l.errorf("unterminated string literal")
				}
				switch e := l.advance(); e {
				case '\\', '\'', '"':
					sb.WriteRune(e)
				case 'n':
					sb.WriteRune('\n')
				case 't':
					sb.WriteRune('\t')
				default:
					return token{}, l.errorf("unknown escape sequence \\%c in string literal", e)
				}
				continue
			}
			sb.WriteRune(c)
		}
		return token{tokString, sb.String(), line, col}, nil
	case unicode.IsDigit(r) || (r == '-' && unicode.IsDigit(peekAt(l, 1))):
		var sb strings.Builder
		sb.WriteRune(l.advance())
		for l.pos < len(l.src) && unicode.IsDigit(l.peek()) {
			sb.WriteRune(l.advance())
		}
		return token{tokInt, sb.String(), line, col}, nil
	case isIdentStart(r):
		var sb strings.Builder
		for l.pos < len(l.src) && isIdentRune(l.peek()) {
			sb.WriteRune(l.advance())
		}
		return token{tokIdent, sb.String(), line, col}, nil
	default:
		return token{}, l.errorf("unexpected character %q", r)
	}
}

func peekAt(l *lexer, off int) rune {
	if l.pos+off >= len(l.src) {
		return 0
	}
	return l.src[l.pos+off]
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}
