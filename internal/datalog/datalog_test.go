package datalog

import (
	"errors"
	"strings"
	"testing"
)

const q1 = `
Nodes(ID, Name) :- Author(ID, Name).
Edges(ID1, ID2) :- AuthorPub(ID1, PubID), AuthorPub(ID2, PubID).
`

const q2 = `
Nodes(ID, Name) :- Customer(ID, Name).
Edges(ID1, ID2) :- Orders(ok1, ID1), LineItem(ok1, pk), Orders(ok2, ID2), LineItem(ok2, pk).
`

const q3 = `
Nodes(ID, Name) :- Instructor(ID, Name).
Nodes(ID, Name) :- Student(ID, Name).
Edges(ID1, ID2) :- TaughtCourse(ID1, c), TookCourse(ID2, c).
`

func TestParseQ1(t *testing.T) {
	p, err := Parse(q1)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Nodes) != 1 || len(p.Edges) != 1 {
		t.Fatalf("nodes=%d edges=%d", len(p.Nodes), len(p.Edges))
	}
	e := p.Edges[0]
	if e.Head.Terms[0].Var != "ID1" || e.Head.Terms[1].Var != "ID2" {
		t.Fatalf("head = %s", e.Head)
	}
	if len(e.Body) != 2 || e.Body[0].Pred != "AuthorPub" {
		t.Fatalf("body = %v", e.Body)
	}
}

func TestParseQ3MultipleNodes(t *testing.T) {
	p, err := Parse(q3)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Nodes) != 2 {
		t.Fatalf("nodes = %d, want 2", len(p.Nodes))
	}
}

func TestParseWildcardAndConstants(t *testing.T) {
	src := `
Nodes(ID) :- Name(ID, _).
Edges(ID1, ID2) :- CastInfo(_, ID1, m, 5), CastInfo(_, ID2, m, 'actor').
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	body := p.Edges[0].Body
	if body[0].Terms[0].Kind != TermWildcard {
		t.Fatal("wildcard not parsed")
	}
	if body[0].Terms[3].Kind != TermInt || body[0].Terms[3].Int != 5 {
		t.Fatal("int constant not parsed")
	}
	if body[1].Terms[3].Kind != TermString || body[1].Terms[3].Str != "actor" {
		t.Fatal("string constant not parsed")
	}
}

func TestParseComments(t *testing.T) {
	src := `
% a co-author graph
Nodes(ID, Name) :- Author(ID, Name). // inline style
Edges(A, B) :- AP(A, P), AP(B, P).
`
	if _, err := Parse(src); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"no nodes", `Edges(A,B) :- R(A,B).`},
		{"no edges", `Nodes(A) :- R(A).`},
		{"bad head", `Foo(A) :- R(A). Edges(A,B) :- R(A,B).`},
		{"recursive", `Nodes(A) :- R(A). Edges(A,B) :- Edges(A,C), R(C,B).`},
		{"edges one id", `Nodes(A) :- R(A). Edges(A) :- R(A,B).`},
		{"nodes const id", `Nodes(5) :- R(A). Edges(A,B) :- R(A,B).`},
		{"missing dot", `Nodes(A) :- R(A)`},
		{"missing implies", `Nodes(A) R(A).`},
		{"unterminated string", `Nodes(A) :- R(A, 'x).`},
		{"stray char", `Nodes(A) :- R(A$).`},
		{"empty", ``},
	}
	for _, c := range cases {
		if _, err := Parse(c.src); err == nil {
			t.Errorf("%s: expected parse error", c.name)
		}
	}
}

func TestSyntaxErrorPosition(t *testing.T) {
	_, err := Parse("Nodes(A) :- R(A).\nEdges(A,B) :- R(A,B)")
	var se *SyntaxError
	if !errors.As(err, &se) {
		t.Fatalf("expected *SyntaxError, got %T", err)
	}
	if se.Line < 2 {
		t.Fatalf("error line = %d, want >= 2", se.Line)
	}
	if !strings.Contains(se.Error(), "line") {
		t.Fatalf("error message lacks position: %v", se)
	}
}

func TestAnalyzeChainQ1(t *testing.T) {
	p, _ := Parse(q1)
	c, err := AnalyzeChain(p.Edges[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Steps) != 2 || len(c.JoinVars) != 1 || c.JoinVars[0] != "PubID" {
		t.Fatalf("chain = %+v", c)
	}
	if c.Steps[0].InVar != "ID1" || c.Steps[1].OutVar != "ID2" {
		t.Fatalf("boundary vars wrong: %+v", c.Steps)
	}
}

func TestAnalyzeChainQ2FourAtoms(t *testing.T) {
	p, _ := Parse(q2)
	c, err := AnalyzeChain(p.Edges[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Steps) != 4 {
		t.Fatalf("steps = %d, want 4", len(c.Steps))
	}
	wantJoins := []string{"ok1", "pk", "ok2"}
	for i, v := range wantJoins {
		if c.JoinVars[i] != v {
			t.Fatalf("join %d = %q, want %q", i, c.JoinVars[i], v)
		}
	}
	// The chain must be ordered from the ID1 atom to the ID2 atom even
	// though the source lists Orders(ok2, ID2) third.
	if !c.Steps[0].Atom.HasVar("ID1") || !c.Steps[3].Atom.HasVar("ID2") {
		t.Fatalf("chain misordered: %v", c.Steps)
	}
}

func TestAnalyzeChainSingleAtom(t *testing.T) {
	p, err := Parse(`Nodes(A) :- R(A). Edges(A,B) :- Follows(A, B).`)
	if err != nil {
		t.Fatal(err)
	}
	c, err := AnalyzeChain(p.Edges[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Steps) != 1 || len(c.JoinVars) != 0 {
		t.Fatalf("chain = %+v", c)
	}
}

func TestAnalyzeChainRejectsCase2(t *testing.T) {
	cases := []struct{ name, src string }{
		{"cycle", `Nodes(A) :- R(A). Edges(A,B) :- R(A,X), S(X,Y), T(Y,A2), U(A2, X), V(A2, B).`},
		{"var in 3 atoms", `Nodes(A) :- R(A). Edges(A,B) :- R(A,X), S(X,C), T(X,B).`},
		{"multi-var join", `Nodes(A) :- R(A). Edges(A,B) :- R(A,X,Y), S(X,Y,B).`},
		{"disconnected", `Nodes(A) :- R(A). Edges(A,B) :- R(A,X), S(Y,B).`},
		{"same endpoint var", `Nodes(A) :- R(A). Edges(A,A) :- R(A,X).`},
		{"both ids one atom multi", `Nodes(A) :- R(A). Edges(A,B) :- R(A,B), S(C,D).`},
		{"id twice", `Nodes(A) :- R(A). Edges(A,B) :- R(A,X), S(A,X2), T(X,B).`},
	}
	for _, c := range cases {
		p, err := Parse(c.src)
		if err != nil {
			t.Fatalf("%s: parse: %v", c.name, err)
		}
		if _, err := AnalyzeChain(p.Edges[0]); !errors.Is(err, ErrNotChain) {
			t.Errorf("%s: err = %v, want ErrNotChain", c.name, err)
		}
	}
}

func TestProgramString(t *testing.T) {
	p, _ := Parse(q1)
	s := p.String()
	if !strings.Contains(s, "Nodes(ID, Name) :- Author(ID, Name).") {
		t.Fatalf("round trip lost content: %s", s)
	}
	// Re-parse the rendered program.
	if _, err := Parse(s); err != nil {
		t.Fatalf("re-parse failed: %v", err)
	}
}

func TestAtomHelpers(t *testing.T) {
	p, _ := Parse(q2)
	a := p.Edges[0].Body[0] // Orders(ok1, ID1)
	if got := a.Vars(); len(got) != 2 || got[0] != "ok1" {
		t.Fatalf("Vars = %v", got)
	}
	if i, ok := a.TermIndex("ID1"); !ok || i != 1 {
		t.Fatalf("TermIndex = %d, %v", i, ok)
	}
	if _, ok := a.TermIndex("nope"); ok {
		t.Fatal("TermIndex found a missing var")
	}
}

func TestStringEscapes(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{`Nodes(ID) :- Person(ID, 'O\'Brien').`, "O'Brien"},
		{`Nodes(ID) :- Person(ID, "say \"hi\"").`, `say "hi"`},
		{`Nodes(ID) :- Person(ID, 'a\\b').`, `a\b`},
		{`Nodes(ID) :- Person(ID, 'tab\there').`, "tab\there"},
		{`Nodes(ID) :- Person(ID, 'line\nbreak').`, "line\nbreak"},
		// A single quote is fine inside a double-quoted literal and
		// vice versa, no escape needed.
		{`Nodes(ID) :- Person(ID, "O'Brien").`, "O'Brien"},
	}
	for _, c := range cases {
		p, err := Parse(c.src + "\nEdges(A, B) :- R(A, B).")
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		term := p.Nodes[0].Body[0].Terms[1]
		if term.Kind != TermString || term.Str != c.want {
			t.Fatalf("%s: got %q, want %q", c.src, term.Str, c.want)
		}
	}
}

func TestStringEscapeErrors(t *testing.T) {
	for _, src := range []string{
		`Nodes(ID) :- Person(ID, 'bad \q escape').`,
		`Nodes(ID) :- Person(ID, 'trailing \`,
		`Nodes(ID) :- Person(ID, 'unterminated).`,
	} {
		if _, err := Parse(src + "\nEdges(A, B) :- R(A, B)."); err == nil {
			t.Fatalf("%s: expected a lexer error", src)
		}
	}
}
