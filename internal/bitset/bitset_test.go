package bitset

import (
	"testing"
	"testing/quick"
)

func TestSetClearGet(t *testing.T) {
	s := New(130)
	if s.Len() != 130 {
		t.Fatalf("Len = %d", s.Len())
	}
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Get(i) {
			t.Fatalf("bit %d set in fresh set", i)
		}
		s.Set(i)
		if !s.Get(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if s.Count() != 8 {
		t.Fatalf("Count = %d, want 8", s.Count())
	}
	s.Clear(64)
	if s.Get(64) || s.Count() != 7 {
		t.Fatalf("Clear(64) failed: count=%d", s.Count())
	}
}

func TestSetAllAndAny(t *testing.T) {
	s := New(70)
	if s.Any() {
		t.Fatal("fresh set reports Any")
	}
	s.SetAll()
	if s.Count() != 70 {
		t.Fatalf("Count after SetAll = %d, want 70", s.Count())
	}
	if !s.Any() {
		t.Fatal("Any false after SetAll")
	}
	// SetAll must not set bits past Len.
	if s.Get(69) != true {
		t.Fatal("bit 69 unset")
	}
}

func TestCloneIndependence(t *testing.T) {
	s := New(10)
	s.Set(3)
	c := s.Clone()
	c.Set(5)
	if s.Get(5) {
		t.Fatal("clone mutation leaked")
	}
	if !c.Get(3) {
		t.Fatal("clone lost bit")
	}
}

func TestResize(t *testing.T) {
	s := New(10)
	s.Set(9)
	s.Resize(200)
	if !s.Get(9) || s.Len() != 200 {
		t.Fatalf("resize lost state: get(9)=%v len=%d", s.Get(9), s.Len())
	}
	s.Set(199)
	s.Resize(100)
	if s.Len() != 100 || s.Count() != 1 {
		t.Fatalf("shrink wrong: len=%d count=%d", s.Len(), s.Count())
	}
}

func TestMemBytes(t *testing.T) {
	if New(0).MemBytes() <= 0 {
		t.Fatal("MemBytes must be positive")
	}
	if New(1024).MemBytes() < 128 {
		t.Fatal("MemBytes too small for 1024 bits")
	}
}

// Property: Count equals the number of distinct indices set.
func TestQuickCountMatchesSets(t *testing.T) {
	f := func(idxs []uint16) bool {
		s := New(1 << 16)
		seen := make(map[int]struct{})
		for _, i := range idxs {
			s.Set(int(i))
			seen[int(i)] = struct{}{}
		}
		return s.Count() == len(seen)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
