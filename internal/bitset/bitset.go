// Package bitset provides a compact fixed-capacity bit set used by the
// BITMAP graph representations to mask duplicate traversal paths.
package bitset

import "math/bits"

// Set is a fixed-capacity bit set. The zero value is an empty set of
// capacity 0; use New to allocate capacity.
type Set struct {
	words []uint64
	n     int
}

// New returns a Set able to hold n bits, all initially zero.
func New(n int) *Set {
	return &Set{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the capacity of the set in bits.
func (s *Set) Len() int { return s.n }

// Set sets bit i to 1.
func (s *Set) Set(i int) { s.words[i>>6] |= 1 << uint(i&63) }

// Clear sets bit i to 0.
func (s *Set) Clear(i int) { s.words[i>>6] &^= 1 << uint(i&63) }

// Get reports whether bit i is 1.
func (s *Set) Get(i int) bool { return s.words[i>>6]&(1<<uint(i&63)) != 0 }

// SetAll sets every bit to 1.
func (s *Set) SetAll() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	// Clear the bits beyond n in the final word so Count stays exact.
	if extra := len(s.words)*64 - s.n; extra > 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= ^uint64(0) >> uint(extra)
	}
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether at least one bit is set.
func (s *Set) Any() bool {
	for _, w := range s.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of the set.
func (s *Set) Clone() *Set {
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return &Set{words: w, n: s.n}
}

// Resize grows (or shrinks) the set to n bits, preserving existing bits that
// remain in range. Used when a virtual node's out-edge list changes after
// bitmaps were assigned; callers must rebuild semantics themselves.
func (s *Set) Resize(n int) {
	words := make([]uint64, (n+63)/64)
	copy(words, s.words)
	s.words = words
	s.n = n
	if extra := len(words)*64 - n; extra > 0 && len(words) > 0 {
		words[len(words)-1] &= ^uint64(0) >> uint(extra)
	}
}

// MemBytes returns the approximate heap footprint of the set in bytes.
func (s *Set) MemBytes() int { return len(s.words)*8 + 24 }
