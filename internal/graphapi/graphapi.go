// Package graphapi defines the graph interface exposed by every GraphGen
// in-memory representation: the seven operations of the paper's Java Graph
// API (Section 3.4) plus the iterator contract used by getNeighbors.
package graphapi

// NodeID is the external identifier of a real node. It is the value that the
// Nodes(ID, ...) statement of an extraction query bound to the ID attribute.
type NodeID = int64

// Iterator yields node IDs one at a time. It mirrors the paper's neighbor
// iterator with hasNext()/next(); in Go the pair collapses into Next.
type Iterator interface {
	// Next returns the next node ID. ok is false when the iterator is
	// exhausted, in which case the id value is meaningless.
	Next() (id NodeID, ok bool)
}

// Graph is the representation-independent API. All five in-memory
// representations (C-DUP, EXP, DEDUP-1, DEDUP-2, BITMAP) implement it.
//
// Neighbors must yield each logical out-neighbor exactly once regardless of
// how many paths the underlying representation contains (this is the
// deduplication contract of Section 4.1).
type Graph interface {
	// Vertices returns an iterator over all live real vertices.
	Vertices() Iterator
	// Neighbors returns an iterator over the logical out-neighbors of v.
	// Iterating a deleted or unknown vertex yields an empty iterator.
	Neighbors(v NodeID) Iterator
	// ExistsEdge reports whether the logical edge u -> v exists.
	ExistsEdge(u, v NodeID) bool
	// AddVertex adds a new isolated real vertex. It is an error if the ID
	// is already present.
	AddVertex(v NodeID) error
	// DeleteVertex logically removes a vertex and all its edges. Physical
	// compaction is deferred (lazy deletion, Section 3.4).
	DeleteVertex(v NodeID) error
	// AddEdge adds the logical edge u -> v (as a direct edge).
	AddEdge(u, v NodeID) error
	// DeleteEdge removes the logical edge u -> v, preserving all other
	// logical edges even when the edge is represented through shared
	// virtual nodes.
	DeleteEdge(u, v NodeID) error
	// NumVertices returns the number of live real vertices.
	NumVertices() int
}

// PropertyGraph is implemented by representations that carry vertex
// properties extracted from non-ID attributes of Nodes statements.
type PropertyGraph interface {
	Graph
	// PropertyOf returns the named property of vertex v.
	PropertyOf(v NodeID, key string) (string, bool)
	// SetPropertyOf sets the named property of vertex v.
	SetPropertyOf(v NodeID, key, value string) error
}

// SliceIterator adapts a slice of IDs to the Iterator interface.
type SliceIterator struct {
	ids []NodeID
	pos int
}

// NewSliceIterator returns an Iterator over ids.
func NewSliceIterator(ids []NodeID) *SliceIterator { return &SliceIterator{ids: ids} }

// Next implements Iterator.
func (it *SliceIterator) Next() (NodeID, bool) {
	if it.pos >= len(it.ids) {
		return 0, false
	}
	id := it.ids[it.pos]
	it.pos++
	return id, true
}

// ToList drains an iterator into a slice, mirroring the paper's
// getNeighbors(v).toList convenience.
func ToList(it Iterator) []NodeID {
	var out []NodeID
	for {
		id, ok := it.Next()
		if !ok {
			return out
		}
		out = append(out, id)
	}
}

// Count drains an iterator and returns the number of elements.
func Count(it Iterator) int {
	n := 0
	for {
		if _, ok := it.Next(); !ok {
			return n
		}
		n++
	}
}
