package graphapi

import "testing"

func TestSliceIterator(t *testing.T) {
	it := NewSliceIterator([]NodeID{3, 1, 2})
	var got []NodeID
	for {
		id, ok := it.Next()
		if !ok {
			break
		}
		got = append(got, id)
	}
	if len(got) != 3 || got[0] != 3 || got[2] != 2 {
		t.Fatalf("got %v", got)
	}
	if _, ok := it.Next(); ok {
		t.Fatal("exhausted iterator yielded a value")
	}
}

func TestSliceIteratorEmpty(t *testing.T) {
	it := NewSliceIterator(nil)
	if _, ok := it.Next(); ok {
		t.Fatal("empty iterator yielded a value")
	}
}

func TestToListAndCount(t *testing.T) {
	if got := ToList(NewSliceIterator([]NodeID{5, 6})); len(got) != 2 {
		t.Fatalf("ToList = %v", got)
	}
	if got := Count(NewSliceIterator([]NodeID{5, 6, 7})); got != 3 {
		t.Fatalf("Count = %d", got)
	}
	if got := Count(NewSliceIterator(nil)); got != 0 {
		t.Fatalf("Count(empty) = %d", got)
	}
}
