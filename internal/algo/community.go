package algo

import (
	"math/rand"
	"sort"

	"graphgen/internal/core"
)

// This file implements the heavier analyses the paper's introduction
// motivates GraphGen with — community detection and dense-subgraph style
// measures — which "require random and arbitrary access to the graph, and
// cannot be efficiently, if at all, executed using basic SQL". All run on
// any representation through the deduplicated neighbor iteration.

// LabelPropagation runs synchronous label propagation community detection
// for at most maxIters rounds: every node adopts the most frequent label in
// its (undirected) neighborhood, ties broken by the smallest label, with a
// seeded shuffle of the visit order per round. Returns labels per dense
// index and the number of communities.
func LabelPropagation(g *core.Graph, maxIters int, seed int64) ([]int32, int) {
	rng := rand.New(rand.NewSource(seed))
	slots := g.NumRealSlots()
	labels := make([]int32, slots)
	var nodes []int32
	g.ForEachReal(func(r int32) bool {
		labels[r] = r
		nodes = append(nodes, r)
		return true
	})
	counts := make(map[int32]int)
	for it := 0; it < maxIters; it++ {
		rng.Shuffle(len(nodes), func(i, j int) { nodes[i], nodes[j] = nodes[j], nodes[i] })
		changed := false
		for _, r := range nodes {
			clear(counts)
			scan := func(t int32) bool {
				counts[labels[t]]++
				return true
			}
			g.ForNeighbors(r, scan)
			g.ForInNeighbors(r, scan)
			if len(counts) == 0 {
				continue
			}
			best, bestN := labels[r], -1
			for lbl, n := range counts {
				if n > bestN || (n == bestN && lbl < best) {
					best, bestN = lbl, n
				}
			}
			if best != labels[r] {
				labels[r] = best
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	distinct := make(map[int32]struct{})
	for _, r := range nodes {
		distinct[labels[r]] = struct{}{}
	}
	return labels, len(distinct)
}

// KCore computes the core number of every node (undirected degeneracy
// ordering via the standard peeling algorithm). Dead slots report 0.
func KCore(g *core.Graph) []int {
	slots := g.NumRealSlots()
	deg := make([]int, slots)
	adj := make([][]int32, slots)
	g.ForEachReal(func(r int32) bool {
		seen := make(map[int32]struct{})
		collect := func(t int32) bool {
			if t != r {
				seen[t] = struct{}{}
			}
			return true
		}
		g.ForNeighbors(r, collect)
		g.ForInNeighbors(r, collect)
		adj[r] = make([]int32, 0, len(seen))
		for t := range seen {
			adj[r] = append(adj[r], t)
		}
		sort.Slice(adj[r], func(i, j int) bool { return adj[r][i] < adj[r][j] })
		deg[r] = len(adj[r])
		return true
	})
	// Bucket peeling.
	maxDeg := 0
	for _, d := range deg {
		if d > maxDeg {
			maxDeg = d
		}
	}
	buckets := make([][]int32, maxDeg+1)
	g.ForEachReal(func(r int32) bool {
		buckets[deg[r]] = append(buckets[deg[r]], r)
		return true
	})
	core := make([]int, slots)
	removed := make([]bool, slots)
	cur := make([]int, slots)
	copy(cur, deg)
	for d := 0; d <= maxDeg; d++ {
		for len(buckets[d]) > 0 {
			r := buckets[d][len(buckets[d])-1]
			buckets[d] = buckets[d][:len(buckets[d])-1]
			if removed[r] || cur[r] != d {
				continue // stale bucket entry
			}
			removed[r] = true
			core[r] = d
			for _, t := range adj[r] {
				if removed[t] || cur[t] <= d {
					continue
				}
				cur[t]--
				buckets[cur[t]] = append(buckets[cur[t]], t)
			}
		}
	}
	return core
}

// ClusteringCoefficient returns the global clustering coefficient
// (3 x triangles / open+closed wedges) of the undirected graph.
func ClusteringCoefficient(g *core.Graph) float64 {
	var wedges int64
	g.ForEachReal(func(r int32) bool {
		seen := make(map[int32]struct{})
		collect := func(t int32) bool {
			if t != r {
				seen[t] = struct{}{}
			}
			return true
		}
		g.ForNeighbors(r, collect)
		g.ForInNeighbors(r, collect)
		d := int64(len(seen))
		wedges += d * (d - 1) / 2
		return true
	})
	if wedges == 0 {
		return 0
	}
	return 3 * float64(CountTriangles(g)) / float64(wedges)
}

// DegreeHistogram returns the out-degree distribution: hist[d] is the
// number of live nodes with logical out-degree d.
func DegreeHistogram(g *core.Graph) map[int]int {
	hist := make(map[int]int)
	for _, d := range Degrees(g) {
		hist[d]++
	}
	// Degrees reports 0 for dead slots too; drop the overcount.
	dead := g.NumRealSlots() - g.NumRealNodes()
	if dead > 0 {
		hist[0] -= dead
		if hist[0] <= 0 {
			delete(hist, 0)
		}
	}
	return hist
}
