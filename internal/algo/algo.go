// Package algo implements the graph algorithms used throughout the paper's
// evaluation — Degree, BFS, PageRank, Connected Components, and triangle
// counting — against the representation-independent neighbor iteration of
// the condensed graph core, so every algorithm runs unchanged on C-DUP,
// EXP, DEDUP-1, DEDUP-2, and BITMAP graphs.
package algo

import (
	"graphgen/internal/core"
)

// Degrees returns the logical out-degree of every real node, indexed by
// dense node index (dead slots report 0). Self loops follow the graph's
// SelfLoops setting.
func Degrees(g *core.Graph) []int {
	deg := make([]int, g.NumRealSlots())
	g.ForEachReal(func(r int32) bool {
		n := 0
		g.ForNeighbors(r, func(int32) bool { n++; return true })
		deg[r] = n
		return true
	})
	return deg
}

// BFSResult reports a breadth-first traversal.
type BFSResult struct {
	// Visited is the number of nodes reached (including the source).
	Visited int
	// MaxDepth is the eccentricity of the source within its component.
	MaxDepth int
	// Dist maps dense node index to BFS depth; -1 means unreached.
	Dist []int32
}

// BFS runs a single-threaded breadth-first search from the node with
// external ID src, following logical out-edges (the paper's Figure 11 BFS).
func BFS(g *core.Graph, src int64) BFSResult {
	res := BFSResult{Dist: make([]int32, g.NumRealSlots())}
	for i := range res.Dist {
		res.Dist[i] = -1
	}
	s, ok := g.RealIndex(src)
	if !ok || !g.Alive(s) {
		return res
	}
	res.Dist[s] = 0
	res.Visited = 1
	frontier := []int32{s}
	for depth := int32(1); len(frontier) > 0; depth++ {
		var next []int32
		for _, u := range frontier {
			g.ForNeighbors(u, func(t int32) bool {
				if res.Dist[t] < 0 {
					res.Dist[t] = depth
					res.Visited++
					next = append(next, t)
				}
				return true
			})
		}
		if len(next) > 0 {
			res.MaxDepth = int(depth)
		}
		frontier = next
	}
	return res
}

// PageRank runs iters iterations of textbook damped PageRank and returns
// the rank per dense node index. It is a pull-based formulation over
// logical in-neighbors; dangling mass is dropped (not redistributed), the
// same convention the vertex-centric and BSP implementations follow so that
// all three engines agree bit-for-bit.
func PageRank(g *core.Graph, iters int, damping float64) []float64 {
	n := g.NumRealNodes()
	slots := g.NumRealSlots()
	rank := make([]float64, slots)
	next := make([]float64, slots)
	if n == 0 {
		return rank
	}
	outDeg := Degrees(g)
	g.ForEachReal(func(r int32) bool {
		rank[r] = 1.0 / float64(n)
		return true
	})
	base := (1 - damping) / float64(n)
	for it := 0; it < iters; it++ {
		g.ForEachReal(func(r int32) bool {
			sum := 0.0
			g.ForInNeighbors(r, func(s int32) bool {
				if outDeg[s] > 0 {
					sum += rank[s] / float64(outDeg[s])
				}
				return true
			})
			next[r] = base + damping*sum
			return true
		})
		rank, next = next, rank
	}
	return rank
}

// ConnectedComponents labels weakly connected components (edges treated as
// undirected) and returns the label array plus the component count. It is a
// duplicate-insensitive algorithm, so it is safe to run directly on C-DUP
// (Section 4.1).
func ConnectedComponents(g *core.Graph) ([]int32, int) {
	labels := make([]int32, g.NumRealSlots())
	for i := range labels {
		labels[i] = -1
	}
	count := 0
	var stack []int32
	g.ForEachReal(func(s int32) bool {
		if labels[s] >= 0 {
			return true
		}
		lbl := int32(count)
		count++
		labels[s] = lbl
		stack = append(stack[:0], s)
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			visit := func(t int32) bool {
				if labels[t] < 0 {
					labels[t] = lbl
					stack = append(stack, t)
				}
				return true
			}
			g.ForNeighbors(u, visit)
			g.ForInNeighbors(u, visit)
		}
		return true
	})
	return labels, count
}

// CountTriangles counts undirected triangles {a, b, c} (each counted once).
// It materializes undirected neighbor sets, so it is intended for the
// small/medium graphs of the microbenchmarks.
func CountTriangles(g *core.Graph) int64 {
	slots := g.NumRealSlots()
	adj := make([]map[int32]struct{}, slots)
	g.ForEachReal(func(r int32) bool {
		set := make(map[int32]struct{})
		g.ForNeighbors(r, func(t int32) bool {
			set[t] = struct{}{}
			return true
		})
		g.ForInNeighbors(r, func(t int32) bool {
			set[t] = struct{}{}
			return true
		})
		delete(set, r)
		adj[r] = set
		return true
	})
	var count int64
	g.ForEachReal(func(a int32) bool {
		for b := range adj[a] {
			if b <= a {
				continue
			}
			for c := range adj[b] {
				if c <= b {
					continue
				}
				if _, ok := adj[a][c]; ok {
					count++
				}
			}
		}
		return true
	})
	return count
}
