package algo

import (
	"math"
	"testing"

	"graphgen/internal/core"
	"graphgen/internal/datagen"
	"graphgen/internal/dedup"
)

// allReps builds every representation of the same random condensed graph.
// External IDs are shared, so per-ID results must agree exactly.
func allReps(t *testing.T, seed int64) map[string]*core.Graph {
	t.Helper()
	g := datagen.Condensed(datagen.CondensedConfig{
		Seed: seed, RealNodes: 60, VirtualNodes: 30, MeanSize: 5, StdDev: 2,
	})
	reps := map[string]*core.Graph{"C-DUP": g}
	exp, err := g.Expand(0)
	if err != nil {
		t.Fatal(err)
	}
	reps["EXP"] = exp
	if b1, _, err := dedup.Bitmap1(g); err == nil {
		reps["BITMAP-1"] = b1
	} else {
		t.Fatal(err)
	}
	if b2, _, err := dedup.Bitmap2(g, dedup.Options{Seed: seed}); err == nil {
		reps["BITMAP-2"] = b2
	} else {
		t.Fatal(err)
	}
	if d1, _, err := dedup.Dedup1GreedyVirtualFirst(g, dedup.Options{Seed: seed}); err == nil {
		reps["DEDUP-1"] = d1
	} else {
		t.Fatal(err)
	}
	if d2, _, err := dedup.Dedup2Greedy(g, dedup.Options{Seed: seed}); err == nil {
		reps["DEDUP-2"] = d2
	} else {
		t.Fatal(err)
	}
	return reps
}

// byID converts a dense-indexed float result to an ID-keyed map.
func byID(g *core.Graph, vals []float64) map[int64]float64 {
	out := make(map[int64]float64)
	g.ForEachReal(func(r int32) bool {
		out[g.RealID(r)] = vals[r]
		return true
	})
	return out
}

func TestDegreesAgreeAcrossRepresentations(t *testing.T) {
	reps := allReps(t, 7)
	ref := reps["EXP"]
	want := make(map[int64]int)
	refDeg := Degrees(ref)
	ref.ForEachReal(func(r int32) bool {
		want[ref.RealID(r)] = refDeg[r]
		return true
	})
	for name, g := range reps {
		deg := Degrees(g)
		g.ForEachReal(func(r int32) bool {
			if deg[r] != want[g.RealID(r)] {
				t.Fatalf("%s: degree(%d) = %d, want %d", name, g.RealID(r), deg[r], want[g.RealID(r)])
			}
			return true
		})
	}
}

func TestBFSAgreesAcrossRepresentations(t *testing.T) {
	reps := allReps(t, 11)
	ref := BFS(reps["EXP"], 1)
	for name, g := range reps {
		res := BFS(g, 1)
		if res.Visited != ref.Visited || res.MaxDepth != ref.MaxDepth {
			t.Fatalf("%s: BFS visited=%d depth=%d, want %d/%d",
				name, res.Visited, res.MaxDepth, ref.Visited, ref.MaxDepth)
		}
	}
	// Per-node distances must agree too.
	expDist := byDist(reps["EXP"], BFS(reps["EXP"], 1))
	for name, g := range reps {
		d := byDist(g, BFS(g, 1))
		for id, want := range expDist {
			if d[id] != want {
				t.Fatalf("%s: dist(%d) = %d, want %d", name, id, d[id], want)
			}
		}
	}
}

func byDist(g *core.Graph, r BFSResult) map[int64]int32 {
	out := make(map[int64]int32)
	g.ForEachReal(func(i int32) bool {
		out[g.RealID(i)] = r.Dist[i]
		return true
	})
	return out
}

func TestBFSMissingSource(t *testing.T) {
	g := core.New(core.CDUP)
	g.AddRealNode(1)
	res := BFS(g, 99)
	if res.Visited != 0 {
		t.Fatalf("visited = %d, want 0", res.Visited)
	}
}

func TestPageRankAgreesAcrossRepresentations(t *testing.T) {
	reps := allReps(t, 13)
	ref := byID(reps["EXP"], PageRank(reps["EXP"], 10, 0.85))
	for name, g := range reps {
		pr := byID(g, PageRank(g, 10, 0.85))
		for id, want := range ref {
			if math.Abs(pr[id]-want) > 1e-9 {
				t.Fatalf("%s: pagerank(%d) = %g, want %g", name, id, pr[id], want)
			}
		}
	}
}

func TestPageRankMassBounded(t *testing.T) {
	reps := allReps(t, 17)
	pr := PageRank(reps["C-DUP"], 20, 0.85)
	sum := 0.0
	for i, x := range pr {
		if x < 0 {
			t.Fatalf("negative rank at %d: %g", i, x)
		}
		sum += x
	}
	// Dangling mass is dropped, so total rank lies in ((1-d), 1].
	if sum <= 0.15-1e-9 || sum > 1+1e-9 {
		t.Fatalf("rank mass = %g, want in (0.15, 1]", sum)
	}
}

func TestConnectedComponentsAgree(t *testing.T) {
	reps := allReps(t, 19)
	_, want := ConnectedComponents(reps["EXP"])
	for name, g := range reps {
		_, got := ConnectedComponents(g)
		if got != want {
			t.Fatalf("%s: components = %d, want %d", name, got, want)
		}
	}
}

func TestConnectedComponentsIsolated(t *testing.T) {
	g := core.New(core.CDUP)
	for i := int64(1); i <= 5; i++ {
		g.AddRealNode(i)
	}
	v := g.AddVirtualNode(1)
	g.AddMember(v, 0)
	g.AddMember(v, 1)
	labels, count := ConnectedComponents(g)
	if count != 4 { // {1,2} plus three singletons
		t.Fatalf("components = %d, want 4", count)
	}
	if labels[0] != labels[1] {
		t.Fatal("members of the same virtual node must share a component")
	}
}

func TestTrianglesAgree(t *testing.T) {
	reps := allReps(t, 23)
	want := CountTriangles(reps["EXP"])
	if want == 0 {
		t.Skip("generator produced no triangles at this seed")
	}
	for name, g := range reps {
		if got := CountTriangles(g); got != want {
			t.Fatalf("%s: triangles = %d, want %d", name, got, want)
		}
	}
}

func TestTrianglesKnownClique(t *testing.T) {
	// A 4-clique via one virtual node has C(4,3) = 4 triangles.
	g := core.New(core.CDUP)
	g.Symmetric = true
	for i := int64(1); i <= 4; i++ {
		g.AddRealNode(i)
	}
	v := g.AddVirtualNode(1)
	for r := int32(0); r < 4; r++ {
		g.AddMember(v, r)
	}
	if got := CountTriangles(g); got != 4 {
		t.Fatalf("triangles = %d, want 4", got)
	}
}
