package algo

import (
	"math"
	"testing"

	"graphgen/internal/core"
)

// twoCliquesGraph builds two 5-cliques joined by a single bridge edge.
func twoCliquesGraph() *core.Graph {
	g := core.New(core.CDUP)
	g.Symmetric = true
	for i := int64(1); i <= 10; i++ {
		g.AddRealNode(i)
	}
	a := g.AddVirtualNode(1)
	b := g.AddVirtualNode(1)
	for r := int32(0); r < 5; r++ {
		g.AddMember(a, r)
	}
	for r := int32(5); r < 10; r++ {
		g.AddMember(b, r)
	}
	g.AddDirectEdgeIdx(4, 5)
	g.AddDirectEdgeIdx(5, 4)
	g.SortAdjacency()
	return g
}

func TestLabelPropagationFindsCliques(t *testing.T) {
	g := twoCliquesGraph()
	labels, n := LabelPropagation(g, 20, 1)
	if n < 1 || n > 3 {
		t.Fatalf("communities = %d, want a small number", n)
	}
	// Members of the same clique (excluding the bridge endpoints) must
	// share a label.
	for r := int32(1); r < 4; r++ {
		if labels[r] != labels[0] {
			t.Fatalf("clique A split: labels %v", labels[:5])
		}
	}
	for r := int32(6); r < 9; r++ {
		if labels[r] != labels[9] {
			t.Fatalf("clique B split: labels %v", labels[5:])
		}
	}
}

func TestLabelPropagationAcrossRepresentations(t *testing.T) {
	reps := allReps(t, 29)
	for name, g := range reps {
		_, n := LabelPropagation(g, 15, 7)
		if n <= 0 || n > g.NumRealNodes() {
			t.Fatalf("%s: communities = %d", name, n)
		}
	}
}

func TestKCoreKnownGraph(t *testing.T) {
	g := twoCliquesGraph()
	core5 := KCore(g)
	// Every member of a 5-clique has core number 4.
	for r := int32(0); r < 10; r++ {
		if core5[r] != 4 {
			t.Fatalf("core[%d] = %d, want 4", r, core5[r])
		}
	}
	// Add a pendant vertex: its core number is 1.
	g2 := twoCliquesGraph()
	p := g2.AddRealNode(11)
	g2.AddDirectEdgeIdx(p, 0)
	g2.AddDirectEdgeIdx(0, p)
	cores := KCore(g2)
	if cores[p] != 1 {
		t.Fatalf("pendant core = %d, want 1", cores[p])
	}
	if cores[0] != 4 {
		t.Fatalf("core[0] = %d, want 4", cores[0])
	}
}

func TestKCoreAgreesAcrossRepresentations(t *testing.T) {
	reps := allReps(t, 31)
	ref := KCore(reps["EXP"])
	want := make(map[int64]int)
	reps["EXP"].ForEachReal(func(r int32) bool {
		want[reps["EXP"].RealID(r)] = ref[r]
		return true
	})
	for name, g := range reps {
		got := KCore(g)
		g.ForEachReal(func(r int32) bool {
			if got[r] != want[g.RealID(r)] {
				t.Fatalf("%s: core(%d) = %d, want %d", name, g.RealID(r), got[r], want[g.RealID(r)])
			}
			return true
		})
	}
}

func TestClusteringCoefficient(t *testing.T) {
	// A single clique has coefficient 1.
	g := core.New(core.CDUP)
	g.Symmetric = true
	for i := int64(1); i <= 5; i++ {
		g.AddRealNode(i)
	}
	v := g.AddVirtualNode(1)
	for r := int32(0); r < 5; r++ {
		g.AddMember(v, r)
	}
	if c := ClusteringCoefficient(g); math.Abs(c-1) > 1e-9 {
		t.Fatalf("clique coefficient = %g, want 1", c)
	}
	// A star has coefficient 0.
	star := core.New(core.EXP)
	for i := int64(1); i <= 5; i++ {
		star.AddRealNode(i)
	}
	for r := int32(1); r < 5; r++ {
		star.AddDirectEdgeIdx(0, r)
		star.AddDirectEdgeIdx(r, 0)
	}
	if c := ClusteringCoefficient(star); c != 0 {
		t.Fatalf("star coefficient = %g, want 0", c)
	}
	// Empty graph.
	if c := ClusteringCoefficient(core.New(core.CDUP)); c != 0 {
		t.Fatalf("empty coefficient = %g", c)
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := twoCliquesGraph()
	hist := DegreeHistogram(g)
	// 8 nodes with degree 4, the two bridge endpoints with degree 5.
	if hist[4] != 8 || hist[5] != 2 {
		t.Fatalf("hist = %v", hist)
	}
	// Deleted vertices leave the histogram.
	g.DeleteVertexID(1)
	hist = DegreeHistogram(g)
	total := 0
	for _, n := range hist {
		total += n
	}
	if total != 9 {
		t.Fatalf("histogram covers %d nodes, want 9", total)
	}
}
