package obs

import (
	"crypto/rand"
	"encoding/hex"
	"sync/atomic"
)

var reqidFallback atomic.Uint64

// NewRequestID returns a 16-hex-character opaque correlation ID for one
// HTTP request. IDs are random, not sequential: they leak nothing about
// request volume and are safe to hand to clients.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Entropy exhaustion is effectively unreachable on the platforms
		// we serve from, but a request must still get a unique handle.
		v := reqidFallback.Add(1)
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
	}
	return hex.EncodeToString(b[:])
}

// ValidRequestID reports whether a client-supplied X-Request-Id is safe
// to propagate into logs and response envelopes: short and drawn from a
// charset that cannot smuggle label separators or log line breaks.
func ValidRequestID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
		default:
			return false
		}
	}
	return true
}
