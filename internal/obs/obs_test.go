package obs

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestNilTraceIsNoOp(t *testing.T) {
	var tr *Trace
	sp := tr.StartSpan("scan", "nodes")
	if sp != nil {
		t.Fatalf("nil trace returned non-nil span")
	}
	c := tr.Push("rule", "e(x,y)")
	if c != nil {
		t.Fatalf("nil trace returned non-nil container")
	}
	// Every span method must be nil-safe: call sites carry no guards.
	sp.End()
	sp.SetStrategy("index")
	sp.SetDetail("d")
	sp.AddRows(3)
	sp.SetBatches(1)
	sp.Set("k", 1)
	sp.Walk(func(*Span) { t.Fatalf("walk visited nil span") })
	if sp.Plan() != nil {
		t.Fatalf("nil span produced a plan")
	}
	if tr.Finish() != nil {
		t.Fatalf("nil trace finished to non-nil root")
	}
}

func TestSpanTreeStructure(t *testing.T) {
	tr := NewTrace()
	rule := tr.Push("rule", "edges")
	a := tr.StartSpan("scan", "person")
	a.SetStrategy("index")
	a.AddRows(10)
	a.End()
	b := tr.StartSpan("join", "x")
	b.AddRows(4)
	b.End()
	rule.AddRows(4)
	rule.End()
	after := tr.StartSpan("sort", "")
	after.End()
	root := tr.Finish()

	if root.Op != "query" {
		t.Fatalf("root op = %q", root.Op)
	}
	if len(root.Children) != 2 {
		t.Fatalf("root children = %d, want 2 (rule container + post-rule span)", len(root.Children))
	}
	got := root.Children[0]
	if got.Op != "rule" || len(got.Children) != 2 {
		t.Fatalf("rule container = %+v", got)
	}
	if got.Children[0].Strategy != "index" || got.Children[0].Rows != 10 {
		t.Fatalf("scan span = %+v", got.Children[0])
	}
	if root.Children[1].Op != "sort" {
		t.Fatalf("span after container End attached to %q, want root", root.Children[1].Op)
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	tr := NewTrace()
	sp := tr.StartSpan("scan", "")
	sp.End()
	d := sp.DurationUS
	sp.End() // second End must not reset duration or touch the stack
	if sp.DurationUS != d {
		t.Fatalf("second End changed duration")
	}
	c := tr.Push("rule", "")
	c.End()
	c.End()
	root := tr.Finish()
	if len(root.Children) != 2 {
		t.Fatalf("children = %d, want 2", len(root.Children))
	}
}

func TestFinishEndsOpenSpans(t *testing.T) {
	tr := NewTrace()
	tr.Push("stratum", "0")
	tr.Push("round", "1")
	root := tr.Finish()
	root.Walk(func(s *Span) {
		if !s.ended {
			t.Fatalf("span %q not ended by Finish", s.Op)
		}
	})
}

func TestPlanRedactsMeasurements(t *testing.T) {
	tr := NewTrace()
	sp := tr.StartSpan("scan", "person")
	sp.SetStrategy("table")
	sp.AddRows(99)
	sp.Set("windows", 3)
	sp.End()
	root := tr.Finish()

	raw, err := json.Marshal(root.Plan())
	if err != nil {
		t.Fatal(err)
	}
	s := string(raw)
	for _, forbidden := range []string{"rows", "duration", "attrs", "batches"} {
		if strings.Contains(s, forbidden) {
			t.Fatalf("plan JSON leaks %q: %s", forbidden, s)
		}
	}
	for _, want := range []string{`"op":"scan"`, `"strategy":"table"`, `"detail":"person"`} {
		if !strings.Contains(s, want) {
			t.Fatalf("plan JSON missing %s: %s", want, s)
		}
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(0.001, 2, 4)
	want := []float64{0.001, 0.002, 0.004, 0.008}
	if len(b) != len(want) {
		t.Fatalf("len = %d", len(b))
	}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-12 {
			t.Fatalf("bucket[%d] = %g, want %g", i, b[i], want[i])
		}
	}
}

func TestHistogramCumulative(t *testing.T) {
	h := NewHistogram(ExpBuckets(1, 2, 3)) // bounds 1, 2, 4
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d", s.Count)
	}
	if math.Abs(s.Sum-106) > 1e-9 {
		t.Fatalf("sum = %g", s.Sum)
	}
	wantCum := []int64{2, 3, 4, 5} // <=1, <=2, <=4, <=+Inf
	if len(s.Buckets) != 4 {
		t.Fatalf("buckets = %d", len(s.Buckets))
	}
	for i, b := range s.Buckets {
		if b.Count != wantCum[i] {
			t.Fatalf("bucket[%d] = %d, want %d", i, b.Count, wantCum[i])
		}
	}
	if !math.IsInf(s.Buckets[3].LE, 1) {
		t.Fatalf("last bucket LE = %g, want +Inf", s.Buckets[3].LE)
	}
}

func TestWritePromFormat(t *testing.T) {
	h := NewHistogram(ExpBuckets(1, 2, 2))
	h.Observe(1)
	h.Observe(3)
	var sb strings.Builder
	h.Snapshot().WriteProm(&sb, "graphgen_test_seconds", PromLabel("route", `GET /v1/x "q"`))
	out := sb.String()
	for _, want := range []string{
		`graphgen_test_seconds_bucket{route="GET /v1/x \"q\"",le="1"} 1`,
		`le="+Inf"} 2`,
		`graphgen_test_seconds_sum{route="GET /v1/x \"q\""} 4`,
		`graphgen_test_seconds_count{route="GET /v1/x \"q\""} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus text missing %q:\n%s", want, out)
		}
	}
	// Unlabeled series omit the braces entirely.
	sb.Reset()
	h.Snapshot().WriteProm(&sb, "m", "")
	if !strings.Contains(sb.String(), "m_count 2\n") {
		t.Fatalf("unlabeled count malformed:\n%s", sb.String())
	}
}

func TestRequestIDs(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewRequestID()
		if len(id) != 16 || !ValidRequestID(id) {
			t.Fatalf("bad generated id %q", id)
		}
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
	}
	for id, want := range map[string]bool{
		"abc-DEF_123":           true,
		"":                      false,
		strings.Repeat("a", 65): false,
		"inject\"quote":         false,
		"new\nline":             false,
		"semi;colon":            false,
	} {
		if got := ValidRequestID(id); got != want {
			t.Fatalf("ValidRequestID(%q) = %v, want %v", id, got, want)
		}
	}
}
