// Package obs is GraphGen's observability substrate: operator-span
// traces for EXPLAIN/ANALYZE, fixed-bucket histograms for the serving
// tier, and request correlation IDs.
//
// The span collector is designed around one contract: when tracing is
// off it must cost nothing. Every execution layer carries a *Trace
// pointer that is nil by default; operator constructors test that one
// pointer and skip span creation entirely, and every Trace/Span method
// is safe to call on a nil receiver so call sites never need their own
// guards. A Trace is owned by a single query execution — it is not safe
// for concurrent use by multiple goroutines building spans at once, and
// the engine never shares one across queries.
package obs

import (
	"time"
)

// A Span is one node of an execution trace: an operator, a rule body, a
// stratum, or a delta round. Rows counts the tuples the node emitted
// (for containers, the tuples derived under it), Batches the parallel
// expansion windows an operator dispatched, and Strategy the plan
// choice the operator made (index vs table scan, probe side). The
// exported fields form the stable ANALYZE JSON rendering.
type Span struct {
	Op         string           `json:"op"`
	Detail     string           `json:"detail,omitempty"`
	Strategy   string           `json:"strategy,omitempty"`
	Rows       int64            `json:"rows"`
	Batches    int64            `json:"batches,omitempty"`
	Attrs      map[string]int64 `json:"attrs,omitempty"`
	DurationUS int64            `json:"duration_us"`
	Children   []*Span          `json:"children,omitempty"`

	tr    *Trace
	start time.Time
	ended bool
}

// A Trace collects one query execution's span tree. The zero value is
// not useful; a nil *Trace is the tracing-off fast path — every method
// no-ops and returns nil spans.
//
// Structure is built with two primitives: StartSpan attaches a leaf to
// the current container, Push attaches a container and makes it current
// until its End. Operator spans therefore nest under whichever rule
// body, stratum, or delta round was pushed when their pipeline was
// constructed, without any thread-local state.
type Trace struct {
	root  *Span
	stack []*Span // open containers; spans attach under the top
}

// NewTrace returns a collector whose root span covers the whole query.
func NewTrace() *Trace {
	t := &Trace{}
	t.root = &Span{Op: "query", start: time.Now(), tr: t}
	t.stack = []*Span{t.root}
	return t
}

// newChild attaches a fresh span under the current container.
func (t *Trace) newChild(op, detail string) *Span {
	s := &Span{Op: op, Detail: detail, start: time.Now(), tr: t}
	top := t.stack[len(t.stack)-1]
	top.Children = append(top.Children, s)
	return s
}

// StartSpan opens a leaf span under the current container. The caller
// must End it (graphlint's spanend check enforces this); ending is
// idempotent, so iterator wrappers may End from an idempotent Close.
func (t *Trace) StartSpan(op, detail string) *Span {
	if t == nil {
		return nil
	}
	return t.newChild(op, detail)
}

// Push opens a container span: until its End, subsequent StartSpan and
// Push calls attach beneath it.
func (t *Trace) Push(op, detail string) *Span {
	if t == nil {
		return nil
	}
	s := t.newChild(op, detail)
	t.stack = append(t.stack, s)
	return s
}

// Finish ends every open span (container stack first, root last) and
// returns the completed tree. The trace must not be used afterwards.
func (t *Trace) Finish() *Span {
	if t == nil {
		return nil
	}
	for len(t.stack) > 0 {
		t.stack[len(t.stack)-1].End()
	}
	if !t.root.ended {
		t.root.end()
	}
	return t.root
}

// End records the span's duration and, if it is the current container,
// restores its parent as current. Idempotent; safe on nil.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.end()
	if t := s.tr; t != nil {
		if n := len(t.stack); n > 0 && t.stack[n-1] == s {
			t.stack = t.stack[:n-1]
		}
	}
}

func (s *Span) end() {
	s.ended = true
	s.DurationUS = time.Since(s.start).Microseconds()
}

// SetStrategy records the plan choice an operator made. Operators whose
// decision is deferred (table-join index-vs-scan) call this at first
// Next, when the decision actually happens.
func (s *Span) SetStrategy(strategy string) {
	if s != nil {
		s.Strategy = strategy
	}
}

// SetDetail replaces the span's detail string.
func (s *Span) SetDetail(detail string) {
	if s != nil {
		s.Detail = detail
	}
}

// AddRows adds n to the span's emitted-row count.
func (s *Span) AddRows(n int64) {
	if s != nil {
		s.Rows += n
	}
}

// SetBatches records how many expansion windows the operator dispatched.
func (s *Span) SetBatches(n int64) {
	if s != nil {
		s.Batches = n
	}
}

// Set records an auxiliary integer attribute (planner counters, budget
// figures) under key.
func (s *Span) Set(key string, v int64) {
	if s == nil {
		return
	}
	if s.Attrs == nil {
		s.Attrs = make(map[string]int64)
	}
	s.Attrs[key] = v
}

// Walk visits s and every descendant, depth-first, parents before
// children. Safe on nil.
func (s *Span) Walk(fn func(*Span)) {
	if s == nil {
		return
	}
	fn(s)
	for _, c := range s.Children {
		c.Walk(fn)
	}
}

// Plan returns the EXPLAIN view of the tree: operators, details, and
// strategies only, with execution measurements (rows, batches, timing,
// attrs) removed. The result marshals to the stable plan JSON.
func (s *Span) Plan() map[string]any {
	if s == nil {
		return nil
	}
	m := map[string]any{"op": s.Op}
	if s.Detail != "" {
		m["detail"] = s.Detail
	}
	if s.Strategy != "" {
		m["strategy"] = s.Strategy
	}
	if len(s.Children) > 0 {
		kids := make([]map[string]any, 0, len(s.Children))
		for _, c := range s.Children {
			kids = append(kids, c.Plan())
		}
		m["children"] = kids
	}
	return m
}
