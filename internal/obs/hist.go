package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"sync"
)

// A Histogram counts observations into fixed buckets. Bounds are upper
// bounds in ascending order; an implicit +Inf bucket catches the tail,
// so a histogram always accounts for every observation. Buckets are
// fixed at construction — the serving tier wants stable, comparable
// series, not adaptive ones.
type Histogram struct {
	mu sync.Mutex
	// bounds is immutable after construction and deliberately
	// unannotated: Observe bucket-searches it before taking mu.
	bounds []float64
	// graphlint:guardedby mu
	counts []int64 // len(bounds)+1; last is the +Inf bucket
	// graphlint:guardedby mu
	count int64
	// graphlint:guardedby mu
	sum float64
}

// ExpBuckets returns n exponential upper bounds: start, start*factor,
// start*factor², ... — the scheme every GraphGen histogram uses, so a
// bucket layout is describable as (start, factor, n).
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n <= 0 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n > 0")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// NewHistogram returns a histogram over the given ascending upper
// bounds (typically from ExpBuckets).
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]int64, len(b)+1)}
}

// Observe records one value. Safe for concurrent use.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.mu.Lock()
	h.counts[i]++
	h.count++
	h.sum += v
	h.mu.Unlock()
}

// A Bucket is one cumulative histogram bucket: Count observations were
// <= LE (Prometheus convention; the final bucket has LE = +Inf).
type Bucket struct {
	LE    float64 `json:"le"`
	Count int64   `json:"count"`
}

// MarshalJSON renders LE as a string ("0.001", ..., "+Inf"):
// encoding/json rejects non-finite floats, and every snapshot ends with
// the +Inf terminator bucket.
func (b Bucket) MarshalJSON() ([]byte, error) {
	le := "+Inf"
	if !math.IsInf(b.LE, 1) {
		le = strconv.FormatFloat(b.LE, 'g', -1, 64)
	}
	return json.Marshal(struct {
		LE    string `json:"le"`
		Count int64  `json:"count"`
	}{le, b.Count})
}

// HistSnapshot is a point-in-time copy of a histogram with cumulative
// bucket counts, ready for JSON or Prometheus rendering.
type HistSnapshot struct {
	Buckets []Bucket `json:"buckets"`
	Count   int64    `json:"count"`
	Sum     float64  `json:"sum"`
}

// Snapshot returns the histogram's current cumulative view.
func (h *Histogram) Snapshot() HistSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistSnapshot{Count: h.count, Sum: h.sum,
		Buckets: make([]Bucket, len(h.counts))}
	var cum int64
	for i, c := range h.counts {
		cum += c
		le := math.Inf(1)
		if i < len(h.bounds) {
			le = h.bounds[i]
		}
		s.Buckets[i] = Bucket{LE: le, Count: cum}
	}
	return s
}

// WriteProm renders the snapshot in Prometheus text exposition format
// under the metric name, with labels (already formatted as
// `k="v",k2="v2"`, or empty) applied to every series.
func (s HistSnapshot) WriteProm(w io.Writer, name, labels string) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	for _, b := range s.Buckets {
		le := "+Inf"
		if !math.IsInf(b.LE, 1) {
			le = strconv.FormatFloat(b.LE, 'g', -1, 64)
		}
		fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", name, labels, sep, le, b.Count)
	}
	brace := ""
	if labels != "" {
		brace = "{" + labels + "}"
	}
	fmt.Fprintf(w, "%s_sum%s %s\n", name, brace, strconv.FormatFloat(s.Sum, 'g', -1, 64))
	fmt.Fprintf(w, "%s_count%s %d\n", name, brace, s.Count)
}

// PromLabel formats one key="value" label pair, escaping the value per
// the Prometheus text format (backslash, quote, newline).
func PromLabel(key, value string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return key + `="` + r.Replace(value) + `"`
}
