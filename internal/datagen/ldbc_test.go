package datagen

import (
	"sort"
	"strings"
	"testing"

	"graphgen/internal/relstore"
)

// fingerprintDB renders every table (sorted by name) row by row, value by
// value — a byte-level identity for the determinism contract.
func fingerprintDB(t *testing.T, db *relstore.DB) string {
	t.Helper()
	names := db.TableNames()
	sort.Strings(names)
	var sb strings.Builder
	for _, name := range names {
		tab, err := db.Table(name)
		if err != nil {
			t.Fatalf("table %s: %v", name, err)
		}
		sb.WriteString(name)
		sb.WriteByte('\n')
		for _, row := range tab.Rows {
			for _, v := range row {
				v.AppendKey(&sb)
				sb.WriteByte(',')
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

func TestSNBDeterministicAcrossWorkers(t *testing.T) {
	base := fingerprintDB(t, SNB(SNBConfig{Seed: 7, ScaleFactor: 0.05, Workers: 1}))
	for _, workers := range []int{2, 3, 8} {
		got := fingerprintDB(t, SNB(SNBConfig{Seed: 7, ScaleFactor: 0.05, Workers: workers}))
		if got != base {
			t.Fatalf("Workers=%d produced different tables than Workers=1", workers)
		}
	}
	if again := fingerprintDB(t, SNB(SNBConfig{Seed: 7, ScaleFactor: 0.05, Workers: 4})); again != base {
		t.Fatal("same seed and scale produced different tables across runs")
	}
	if other := fingerprintDB(t, SNB(SNBConfig{Seed: 8, ScaleFactor: 0.05, Workers: 4})); other == base {
		t.Fatal("different seeds produced identical tables")
	}
}

// knowsDegrees returns the undirected degree per person (both directions
// of every edge are stored, so out-degree is the undirected degree).
func knowsDegrees(t *testing.T, db *relstore.DB, persons int) []int {
	t.Helper()
	knows, err := db.Table("Knows")
	if err != nil {
		t.Fatal(err)
	}
	deg := make([]int, persons+1)
	for _, row := range knows.Rows {
		src := row[0].I
		if src < 1 || src > int64(persons) {
			t.Fatalf("knows src %d outside person range [1,%d]", src, persons)
		}
		deg[src]++
	}
	return deg
}

func TestSNBDegreeInvariants(t *testing.T) {
	for _, seed := range []int64{1, 42} {
		cfg := SNBConfig{Seed: seed, ScaleFactor: 0.1}
		db := SNB(cfg)
		persons := cfg.Counts().Persons
		deg := knowsDegrees(t, db, persons)

		maxDeg, sum := 0, 0
		for p := 1; p <= persons; p++ {
			if deg[p] == 0 {
				t.Fatalf("seed %d: person %d is isolated (the family ring must give everyone a neighbor)", seed, p)
			}
			if deg[p] > maxDeg {
				maxDeg = deg[p]
			}
			sum += deg[p]
		}
		if maxDeg > MaxKnowsDegree {
			t.Fatalf("seed %d: max degree %d exceeds the cap %d", seed, maxDeg, MaxKnowsDegree)
		}
		avg := float64(sum) / float64(persons)
		if avg < 2 || avg > 40 {
			t.Fatalf("seed %d: average knows degree %.1f outside the expected band [2,40]", seed, avg)
		}
		// Long tail: the Pareto fan-out should push the max degree far
		// past the mean.
		if float64(maxDeg) < 4*avg {
			t.Fatalf("seed %d: max degree %d is not long-tailed relative to the mean %.1f", seed, maxDeg, avg)
		}
	}
}

func TestSNBConnected(t *testing.T) {
	cfg := SNBConfig{Seed: 3, ScaleFactor: 0.05}
	db := SNB(cfg)
	persons := cfg.Counts().Persons
	knows, err := db.Table("Knows")
	if err != nil {
		t.Fatal(err)
	}
	parent := make([]int, persons+1)
	for p := range parent {
		parent[p] = p
	}
	var find func(x int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, row := range knows.Rows {
		a, b := find(int(row[0].I)), find(int(row[1].I))
		if a != b {
			parent[a] = b
		}
	}
	root := find(1)
	for p := 2; p <= persons; p++ {
		if find(p) != root {
			t.Fatalf("knows graph is disconnected: person %d not reachable from person 1", p)
		}
	}
}

func TestSNBKnowsSymmetric(t *testing.T) {
	db := SNB(SNBConfig{Seed: 5, ScaleFactor: 0.02})
	knows, err := db.Table("Knows")
	if err != nil {
		t.Fatal(err)
	}
	edges := make(map[[2]int64]bool, len(knows.Rows))
	for _, row := range knows.Rows {
		key := [2]int64{row[0].I, row[1].I}
		if edges[key] {
			t.Fatalf("duplicate knows row (%d, %d)", key[0], key[1])
		}
		edges[key] = true
	}
	for key := range edges {
		if !edges[[2]int64{key[1], key[0]}] {
			t.Fatalf("knows edge (%d, %d) has no reverse row", key[0], key[1])
		}
	}
}

// TestSNBHomophily checks the correlation model: knows edges connect
// same-country persons far more often than uniform pairing would.
func TestSNBHomophily(t *testing.T) {
	cfg := SNBConfig{Seed: 11, ScaleFactor: 0.1}
	db := SNB(cfg)
	persons := cfg.Counts().Persons
	personTab, err := db.Table("Person")
	if err != nil {
		t.Fatal(err)
	}
	country := make(map[int64]string, persons)
	countryCount := make(map[string]int)
	for _, row := range personTab.Rows {
		country[row[0].I] = row[2].S
		countryCount[row[2].S]++
	}
	// Baseline: probability two uniform-random persons share a country.
	baseline := 0.0
	for _, c := range countryCount {
		p := float64(c) / float64(persons)
		baseline += p * p
	}
	knows, err := db.Table("Knows")
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for _, row := range knows.Rows {
		if country[row[0].I] == country[row[1].I] {
			same++
		}
	}
	frac := float64(same) / float64(len(knows.Rows))
	if frac < 1.5*baseline {
		t.Fatalf("same-country edge fraction %.3f shows no homophily (uniform baseline %.3f)", frac, baseline)
	}
}

// TestSNBReferentialIntegrity checks the membership tables only reference
// generated entities, and post tags come from the creator's interests.
func TestSNBReferentialIntegrity(t *testing.T) {
	cfg := SNBConfig{Seed: 2, ScaleFactor: 0.02}
	db := SNB(cfg)
	c := cfg.Counts()
	interests := make(map[int64]map[string]bool)
	hi, err := db.Table("HasInterest")
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range hi.Rows {
		p := row[0].I
		if interests[p] == nil {
			interests[p] = make(map[string]bool)
		}
		interests[p][row[1].S] = true
	}
	member, err := db.Table("ForumMember")
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range member.Rows {
		f, p := row[0].I, row[1].I
		if f <= forumIDBase || f > int64(forumIDBase+c.Forums) {
			t.Fatalf("forum member references unknown forum %d", f)
		}
		if p < 1 || p > int64(c.Persons) {
			t.Fatalf("forum member references unknown person %d", p)
		}
	}
	post, err := db.Table("Post")
	if err != nil {
		t.Fatal(err)
	}
	if len(post.Rows) != c.Posts {
		t.Fatalf("got %d posts, want %d", len(post.Rows), c.Posts)
	}
	for _, row := range post.Rows {
		creator, tag := row[2].I, row[3].S
		if !interests[creator][tag] {
			t.Fatalf("post tag %q is not an interest of its creator %d", tag, creator)
		}
	}
}
