package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"graphgen/internal/parallel"
	"graphgen/internal/relstore"
)

// This file generates an LDBC-SNB-style social network: a relational
// database whose hidden graphs have the statistical shape the SIGMOD 2014
// programming-contest analysis (Elekes/Antal/Szárnyas) identifies as the
// regime where naive graph implementations fall over — power-law knows
// degrees, attribute/topology correlation (homophily), and membership
// tables (forums, interests) whose group sizes are long-tailed.
//
// Schema (Person IDs are 1..N, dense; all other IDs live in disjoint
// ranges so extracted node spaces never collide):
//
//	Person(id, name, country)
//	Knows(src, dst)              -- symmetric: both directions stored
//	HasInterest(person, tag)
//	Forum(id, title)
//	ForumMember(forum, person)
//	Post(id, forum, creator, tag)
//
// Correlation model:
//
//   - Countries follow a Zipf-like population distribution; a knows edge
//     prefers a same-country endpoint (homophily), so the knows graph has
//     country-dense neighborhoods.
//   - Interests are drawn from a country-biased window of the tag
//     vocabulary, so friends (country-correlated) share tags far more
//     often than uniform assignment would produce.
//   - Extra knows edges close triangles: a fraction of each person's
//     fan-out is drawn from its friends-of-friends, producing the high
//     clustering of real social networks.
//   - Forum membership spreads from a moderator through their knows
//     neighborhood; post tags are drawn from the creator's interests.
//
// Determinism contract: every row is derived either from a per-entity RNG
// seeded by mix(seed, salt, entityID) — so per-person work can run on any
// number of workers and merge in entity order — or from the single
// sequential edge-wiring pass, which never uses the worker pool. Same
// SNBConfig (ignoring Workers) ⇒ byte-identical tables.
//
// Degree invariants (tested in ldbc_test.go):
//
//   - The knows graph is connected: a deterministic "family ring"
//     (i — i+1, wrapping) underlies the power-law fan-out, mirroring the
//     single giant component of real LDBC data. Component count == 1.
//   - Undirected knows degree never exceeds MaxKnowsDegree (the wiring
//     pass refuses edges at the cap; ring edges are wired first).
//   - Degrees are long-tailed: targets are Pareto(alpha)-distributed, so
//     the max degree is a large multiple of the mean.

// SNB scale anchors: PersonsPerSF persons at scale factor 1.0, with the
// other tables sized relative to the person count.
const (
	// PersonsPerSF is the person count at ScaleFactor 1.
	PersonsPerSF = 10_000
	// MaxKnowsDegree caps the undirected knows degree of any person.
	MaxKnowsDegree = 200
	// NumCountries is the size of the country vocabulary.
	NumCountries = 25
	// NumTags is the size of the interest/post tag vocabulary.
	NumTags = 50
	// forumIDBase and postIDBase keep non-person IDs out of the person
	// ID range (persons are 1..N).
	forumIDBase = 10_000_000
	postIDBase  = 20_000_000
)

// SNBConfig parameterizes the social-network generator.
type SNBConfig struct {
	// Seed fixes every random choice; equal seeds (and scale) produce
	// byte-identical databases.
	Seed int64
	// ScaleFactor sizes the network: SF 1 is 10k persons, SF 0.1 is 1k.
	// Values are clamped so at least 64 persons exist.
	ScaleFactor float64
	// Workers bounds the parallelism of per-entity row generation; any
	// value (including 0 = GOMAXPROCS) produces identical tables.
	Workers int
}

// SNBCounts reports the entity counts a config resolves to.
type SNBCounts struct {
	Persons, Forums, Posts int
}

// Counts resolves the entity counts for a scale factor.
func (cfg SNBConfig) Counts() SNBCounts {
	n := int(math.Round(cfg.ScaleFactor * PersonsPerSF))
	if n < 64 {
		n = 64
	}
	return SNBCounts{Persons: n, Forums: n / 20, Posts: n * 2}
}

// SNB generates the social network resolved by cfg.
func SNB(cfg SNBConfig) *relstore.DB {
	c := cfg.Counts()
	n := c.Persons
	db := relstore.NewDB()
	person, _ := db.Create("Person",
		relstore.Column{Name: "id", Type: relstore.Int},
		relstore.Column{Name: "name", Type: relstore.String},
		relstore.Column{Name: "country", Type: relstore.String})
	knows, _ := db.Create("Knows",
		relstore.Column{Name: "src", Type: relstore.Int},
		relstore.Column{Name: "dst", Type: relstore.Int})
	interest, _ := db.Create("HasInterest",
		relstore.Column{Name: "person", Type: relstore.Int},
		relstore.Column{Name: "tag", Type: relstore.String})
	forum, _ := db.Create("Forum",
		relstore.Column{Name: "id", Type: relstore.Int},
		relstore.Column{Name: "title", Type: relstore.String})
	member, _ := db.Create("ForumMember",
		relstore.Column{Name: "forum", Type: relstore.Int},
		relstore.Column{Name: "person", Type: relstore.Int})
	post, _ := db.Create("Post",
		relstore.Column{Name: "id", Type: relstore.Int},
		relstore.Column{Name: "forum", Type: relstore.Int},
		relstore.Column{Name: "creator", Type: relstore.Int},
		relstore.Column{Name: "tag", Type: relstore.String})

	// Phase 1 (parallel, entity-order merge): person attributes and
	// interests, derived from per-person RNGs.
	countries := make([]int, n+1)   // person -> country index
	interests := make([][]int, n+1) // person -> sorted tag indexes
	personRows := make([][]relstore.Value, n+1)
	interestRows := make([][][]relstore.Value, n+1)
	parallel.Run(n, cfg.Workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			p := i + 1
			rng := entityRNG(cfg.Seed, saltPerson, p)
			country := zipfIndex(rng, NumCountries)
			countries[p] = country
			personRows[p] = []relstore.Value{
				relstore.IntVal(int64(p)),
				relstore.StrVal(fmt.Sprintf("person-%d", p)),
				relstore.StrVal(CountryName(country)),
			}
			tags := personInterests(rng, country)
			interests[p] = tags
			rows := make([][]relstore.Value, len(tags))
			for j, t := range tags {
				rows[j] = []relstore.Value{relstore.IntVal(int64(p)), relstore.StrVal(TagName(t))}
			}
			interestRows[p] = rows
		}
	})
	for p := 1; p <= n; p++ {
		person.Insert(personRows[p]...)
		for _, row := range interestRows[p] {
			interest.Insert(row...)
		}
	}

	// Phase 2 (sequential: the friend-of-friend and degree-cap choices
	// read the adjacency built so far): wire the knows graph. The family
	// ring goes first so connectivity never depends on the random
	// fan-out; then each person draws a Pareto-distributed number of
	// extra neighbors — same-country biased, friend-of-friend biased —
	// rejected when either endpoint sits at the degree cap.
	adj := wireKnows(cfg.Seed, n, countries)
	for p := 1; p <= n; p++ {
		for _, q := range adj[p] {
			knows.Insert(relstore.IntVal(int64(p)), relstore.IntVal(int64(q)))
		}
	}

	// Phase 3 (sequential: membership spreads over the adjacency):
	// forums seeded by a moderator, filled from the moderator's 2-hop
	// neighborhood with a uniform fallback.
	memberSets := buildForums(cfg.Seed, c.Forums, n, adj)
	for f := 0; f < c.Forums; f++ {
		fid := int64(forumIDBase + f + 1)
		forum.Insert(relstore.IntVal(fid), relstore.StrVal(fmt.Sprintf("forum-%d", f+1)))
		for _, p := range memberSets[f] {
			member.Insert(relstore.IntVal(fid), relstore.IntVal(int64(p)))
		}
	}

	// Phase 4 (parallel, entity-order merge): posts. The creator is
	// drawn per post from a member of a Zipf-chosen forum, the tag from
	// the creator's interests.
	postRows := make([][]relstore.Value, c.Posts)
	parallel.Run(c.Posts, cfg.Workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			rng := entityRNG(cfg.Seed, saltPost, i+1)
			f := zipfIndex(rng, c.Forums)
			members := memberSets[f]
			creator := members[rng.Intn(len(members))]
			tag := interests[creator][rng.Intn(len(interests[creator]))]
			postRows[i] = []relstore.Value{
				relstore.IntVal(int64(postIDBase + i + 1)),
				relstore.IntVal(int64(forumIDBase + f + 1)),
				relstore.IntVal(int64(creator)),
				relstore.StrVal(TagName(tag)),
			}
		}
	})
	for _, row := range postRows {
		post.Insert(row...)
	}
	return db
}

// wireKnows builds the undirected adjacency (1-based; adj[p] holds p's
// neighbors in insertion order): ring first, then capped Pareto fan-out.
func wireKnows(seed int64, n int, countries []int) [][]int {
	adj := make([][]int, n+1)
	have := make([]map[int]struct{}, n+1)
	for p := 1; p <= n; p++ {
		have[p] = make(map[int]struct{}, 8)
	}
	addEdge := func(a, b int) bool {
		if a == b {
			return false
		}
		if _, dup := have[a][b]; dup {
			return false
		}
		if len(adj[a]) >= MaxKnowsDegree || len(adj[b]) >= MaxKnowsDegree {
			return false
		}
		have[a][b] = struct{}{}
		have[b][a] = struct{}{}
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
		return true
	}
	for p := 1; p <= n; p++ {
		q := p%n + 1
		addEdge(p, q)
	}
	// byCountry supports the homophily draw: a same-country candidate in
	// O(1) instead of rejection sampling over all persons.
	byCountry := make([][]int, NumCountries)
	for p := 1; p <= n; p++ {
		byCountry[countries[p]] = append(byCountry[countries[p]], p)
	}
	rng := rand.New(rand.NewSource(mix(seed, saltKnows, 0)))
	for p := 1; p <= n; p++ {
		extra := paretoDegree(rng)
		for attempts := 0; extra > 0 && attempts < extra*8; attempts++ {
			var q int
			switch draw := rng.Float64(); {
			case draw < 0.35 && len(adj[p]) > 0:
				// Friend-of-friend: close a triangle.
				f := adj[p][rng.Intn(len(adj[p]))]
				q = adj[f][rng.Intn(len(adj[f]))]
			case draw < 0.80:
				// Homophily: same-country candidate.
				pool := byCountry[countries[p]]
				q = pool[rng.Intn(len(pool))]
			default:
				q = rng.Intn(n) + 1
			}
			if addEdge(p, q) {
				extra--
			}
		}
	}
	return adj
}

// buildForums spreads each forum from a moderator through their 2-hop
// neighborhood (0-based forum index -> sorted-by-arrival member list).
func buildForums(seed int64, forums, n int, adj [][]int) [][]int {
	sets := make([][]int, forums)
	rng := rand.New(rand.NewSource(mix(seed, saltForum, 0)))
	for f := 0; f < forums; f++ {
		size := 3 + paretoDegree(rng)
		if size > n {
			size = n
		}
		mod := rng.Intn(n) + 1
		members := []int{mod}
		seen := map[int]struct{}{mod: {}}
		for attempts := 0; len(members) < size && attempts < size*8; attempts++ {
			// Walk two hops from a random current member.
			cur := members[rng.Intn(len(members))]
			for hop := 0; hop < 2 && len(adj[cur]) > 0; hop++ {
				cur = adj[cur][rng.Intn(len(adj[cur]))]
			}
			if rng.Float64() < 0.1 {
				cur = rng.Intn(n) + 1 // drift: cross-community membership
			}
			if _, dup := seen[cur]; !dup {
				seen[cur] = struct{}{}
				members = append(members, cur)
			}
		}
		sets[f] = members
	}
	return sets
}

// personInterests draws 1..5 tags from a country-biased window of the tag
// vocabulary (sorted, deduplicated).
func personInterests(rng *rand.Rand, country int) []int {
	k := 1 + rng.Intn(5)
	seen := make(map[int]struct{}, k)
	var out []int
	for len(out) < k {
		var t int
		if rng.Float64() < 0.6 {
			// Country window: country c prefers tags [2c, 2c+7) mod NumTags.
			t = (2*country + rng.Intn(7)) % NumTags
		} else {
			t = rng.Intn(NumTags)
		}
		if _, dup := seen[t]; dup {
			continue
		}
		seen[t] = struct{}{}
		out = append(out, t)
	}
	// Insertion order is already deterministic; sort for readability of
	// the generated table.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// paretoDegree draws the extra-edge count: Pareto(alpha=2) with minimum 1,
// truncated at MaxKnowsDegree/2 — a long-tailed distribution whose mean
// stays small (~2) while the tail reaches the cap.
func paretoDegree(rng *rand.Rand) int {
	u := rng.Float64()
	if u < 1e-9 {
		u = 1e-9
	}
	d := int(1 / math.Sqrt(u))
	if d < 1 {
		d = 1
	}
	if d > MaxKnowsDegree/2 {
		d = MaxKnowsDegree / 2
	}
	return d
}

// zipfIndex draws an index in [0, n) with a Zipf-like skew (index 0 most
// popular).
func zipfIndex(rng *rand.Rand, n int) int {
	u := rng.Float64()
	i := int(float64(n) * u * u)
	if i >= n {
		i = n - 1
	}
	return i
}

// CountryName renders country index c as its table value.
func CountryName(c int) string { return fmt.Sprintf("country-%d", c) }

// TagName renders tag index t as its table value.
func TagName(t int) string { return fmt.Sprintf("tag-%d", t) }

// Per-entity RNG salts: one per entity family, so person 7's stream never
// overlaps post 7's.
const (
	saltPerson uint64 = 0x9e3779b97f4a7c15
	saltKnows  uint64 = 0xbf58476d1ce4e5b9
	saltForum  uint64 = 0x94d049bb133111eb
	saltPost   uint64 = 0x2545f4914f6cdd1d
)

// entityRNG returns the deterministic RNG of one entity.
func entityRNG(seed int64, salt uint64, id int) *rand.Rand {
	return rand.New(rand.NewSource(mix(seed, salt, uint64(id))))
}

// mix hashes (seed, salt, id) into an RNG seed with a splitmix64 finalizer,
// so nearby entity IDs get uncorrelated streams.
func mix(seed int64, salt uint64, id uint64) int64 {
	z := uint64(seed) ^ salt ^ (id * 0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z &^ (1 << 63)) // rand.NewSource wants a non-negative-friendly seed
}

// QueryKnows is the canonical extraction query of the SNB dataset: the
// person-knows-person graph.
const QueryKnows = `
Nodes(ID, Name) :- Person(ID, Name, Country).
Edges(A, B) :- Knows(A, B).
`
