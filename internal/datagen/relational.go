package datagen

import (
	"fmt"
	"math/rand"

	"graphgen/internal/relstore"
)

// This file generates relational databases with the schemas of Figure 15,
// statistically shaped like the paper's real datasets but scaled to
// CI-class hardware. The phenomena the evaluation measures — space
// explosion of large-output joins, condensed vs expanded sizes — depend on
// the membership-size distribution of the join attributes, which these
// generators control directly.

// DBLPLike generates Author(id, name) and AuthorPub(aid, pid): nPubs
// publications whose author counts follow the paper's DBLP shape (average
// ~2.9 authors per publication, long-tailed), with author participation
// skewed by preferential attachment.
func DBLPLike(seed int64, nAuthors, nPubs int) *relstore.DB {
	rng := rand.New(rand.NewSource(seed))
	db := relstore.NewDB()
	author, _ := db.Create("Author",
		relstore.Column{Name: "id", Type: relstore.Int},
		relstore.Column{Name: "name", Type: relstore.String})
	ap, _ := db.Create("AuthorPub",
		relstore.Column{Name: "aid", Type: relstore.Int},
		relstore.Column{Name: "pid", Type: relstore.Int})
	for a := 1; a <= nAuthors; a++ {
		author.Insert(relstore.IntVal(int64(a)), relstore.StrVal(fmt.Sprintf("author-%d", a)))
	}
	addMembership(rng, ap, nAuthors, nPubs, 2.9, 1.6, 1_000_000)
	return db
}

// DBLPTemporal generates Author(id, name) and AuthorPubYear(aid, pid,
// year): like DBLPLike but with a publication year in [fromYear, toYear],
// enabling the per-period co-author graphs the paper's introduction
// motivates (temporal graph analytics via constant selections in the DSL).
func DBLPTemporal(seed int64, nAuthors, nPubs, fromYear, toYear int) *relstore.DB {
	rng := rand.New(rand.NewSource(seed))
	db := relstore.NewDB()
	author, _ := db.Create("Author",
		relstore.Column{Name: "id", Type: relstore.Int},
		relstore.Column{Name: "name", Type: relstore.String})
	apy, _ := db.Create("AuthorPubYear",
		relstore.Column{Name: "aid", Type: relstore.Int},
		relstore.Column{Name: "pid", Type: relstore.Int},
		relstore.Column{Name: "year", Type: relstore.Int})
	for a := 1; a <= nAuthors; a++ {
		author.Insert(relstore.IntVal(int64(a)), relstore.StrVal(fmt.Sprintf("author-%d", a)))
	}
	degree := make([]int, nAuthors)
	years := toYear - fromYear + 1
	for pid := 1; pid <= nPubs; pid++ {
		year := int64(fromYear + rng.Intn(years))
		size := int(rng.NormFloat64()*1.6 + 2.9)
		if size < 1 {
			size = 1
		}
		if size > nAuthors {
			size = nAuthors
		}
		seen := make(map[int]struct{}, size)
		for len(seen) < size {
			var m int
			if rng.Float64() < 0.3 {
				m = pickWeighted(rng, degree)
			} else {
				m = rng.Intn(nAuthors)
			}
			if _, dup := seen[m]; dup {
				continue
			}
			seen[m] = struct{}{}
			degree[m]++
			apy.Insert(relstore.IntVal(int64(m+1)), relstore.IntVal(int64(1_000_000+pid)), relstore.IntVal(year))
		}
	}
	return db
}

// IMDBLike generates name(person_id, name) and cast_info(person_id,
// movie_id): movies carry large casts (average ~10, as in the paper's
// co-actor dataset where virtual nodes average 10 members).
func IMDBLike(seed int64, nActors, nMovies int) *relstore.DB {
	rng := rand.New(rand.NewSource(seed))
	db := relstore.NewDB()
	name, _ := db.Create("name",
		relstore.Column{Name: "person_id", Type: relstore.Int},
		relstore.Column{Name: "name", Type: relstore.String})
	ci, _ := db.Create("cast_info",
		relstore.Column{Name: "person_id", Type: relstore.Int},
		relstore.Column{Name: "movie_id", Type: relstore.Int})
	for a := 1; a <= nActors; a++ {
		name.Insert(relstore.IntVal(int64(a)), relstore.StrVal(fmt.Sprintf("actor-%d", a)))
	}
	addMembership(rng, ci, nActors, nMovies, 10, 4, 2_000_000)
	return db
}

// TPCHLike generates Customer(custkey, name), Orders(orderkey, custkey),
// and LineItem(orderkey, partkey). nParts is deliberately small relative to
// the line-item count so that the same-part self-join explodes, as in the
// paper's TPCH experiment (765K rows hiding a 100M-edge graph).
func TPCHLike(seed int64, nCustomers, nOrders, nParts, itemsPerOrder int) *relstore.DB {
	rng := rand.New(rand.NewSource(seed))
	db := relstore.NewDB()
	cust, _ := db.Create("Customer",
		relstore.Column{Name: "custkey", Type: relstore.Int},
		relstore.Column{Name: "name", Type: relstore.String})
	orders, _ := db.Create("Orders",
		relstore.Column{Name: "orderkey", Type: relstore.Int},
		relstore.Column{Name: "custkey", Type: relstore.Int})
	li, _ := db.Create("LineItem",
		relstore.Column{Name: "orderkey", Type: relstore.Int},
		relstore.Column{Name: "partkey", Type: relstore.Int})
	for c := 1; c <= nCustomers; c++ {
		cust.Insert(relstore.IntVal(int64(c)), relstore.StrVal(fmt.Sprintf("customer-%d", c)))
	}
	for o := 1; o <= nOrders; o++ {
		orders.Insert(relstore.IntVal(int64(o)), relstore.IntVal(int64(rng.Intn(nCustomers)+1)))
		k := 1 + rng.Intn(itemsPerOrder*2)
		for i := 0; i < k; i++ {
			li.Insert(relstore.IntVal(int64(o)), relstore.IntVal(int64(rng.Intn(nParts)+1)))
		}
	}
	return db
}

// UnivLike generates the db-book.com university shape: Student(id, name),
// Instructor(id, name), TookCourse(sid, cid), TaughtCourse(iid, cid).
// Instructor IDs are offset past student IDs to keep the node space unique.
func UnivLike(seed int64, nStudents, nInstructors, nCourses, coursesPerStudent int) *relstore.DB {
	rng := rand.New(rand.NewSource(seed))
	db := relstore.NewDB()
	student, _ := db.Create("Student",
		relstore.Column{Name: "id", Type: relstore.Int},
		relstore.Column{Name: "name", Type: relstore.String})
	instructor, _ := db.Create("Instructor",
		relstore.Column{Name: "id", Type: relstore.Int},
		relstore.Column{Name: "name", Type: relstore.String})
	took, _ := db.Create("TookCourse",
		relstore.Column{Name: "sid", Type: relstore.Int},
		relstore.Column{Name: "cid", Type: relstore.Int})
	taught, _ := db.Create("TaughtCourse",
		relstore.Column{Name: "iid", Type: relstore.Int},
		relstore.Column{Name: "cid", Type: relstore.Int})
	for s := 1; s <= nStudents; s++ {
		student.Insert(relstore.IntVal(int64(s)), relstore.StrVal(fmt.Sprintf("student-%d", s)))
	}
	instOffset := int64(nStudents)
	for i := 1; i <= nInstructors; i++ {
		instructor.Insert(relstore.IntVal(instOffset+int64(i)), relstore.StrVal(fmt.Sprintf("instructor-%d", i)))
	}
	for s := 1; s <= nStudents; s++ {
		seen := make(map[int]struct{})
		for len(seen) < coursesPerStudent {
			c := rng.Intn(nCourses) + 1
			if _, dup := seen[c]; dup {
				continue
			}
			seen[c] = struct{}{}
			took.Insert(relstore.IntVal(int64(s)), relstore.IntVal(int64(c)))
		}
	}
	for c := 1; c <= nCourses; c++ {
		i := rng.Intn(nInstructors) + 1
		taught.Insert(relstore.IntVal(instOffset+int64(i)), relstore.IntVal(int64(c)))
	}
	return db
}

// addMembership fills a (member, group) table: group sizes are drawn from a
// normal(mean, sd) distribution clipped at 1, and members are selected with
// mild preferential skew. Group IDs start at idBase to keep them disjoint
// from member IDs.
func addMembership(rng *rand.Rand, t *relstore.Table, nMembers, nGroups int, mean, sd float64, idBase int64) {
	degree := make([]int, nMembers)
	for gID := 1; gID <= nGroups; gID++ {
		size := int(rng.NormFloat64()*sd + mean)
		if size < 1 {
			size = 1
		}
		if size > nMembers {
			size = nMembers
		}
		seen := make(map[int]struct{}, size)
		for len(seen) < size {
			var m int
			if rng.Float64() < 0.3 {
				m = pickWeighted(rng, degree)
			} else {
				m = rng.Intn(nMembers)
			}
			if _, dup := seen[m]; dup {
				m = rng.Intn(nMembers)
				if _, dup := seen[m]; dup {
					continue
				}
			}
			seen[m] = struct{}{}
			degree[m]++
			t.Insert(relstore.IntVal(int64(m+1)), relstore.IntVal(idBase+int64(gID)))
		}
	}
}

// Queries for the generated schemas (Figure 16).
const (
	// QueryCoauthors is [Q1]: the DBLP co-authors graph.
	QueryCoauthors = `
Nodes(ID, Name) :- Author(ID, Name).
Edges(ID1, ID2) :- AuthorPub(ID1, PubID), AuthorPub(ID2, PubID).
`
	// QueryCoactors is the IMDB co-actors graph.
	QueryCoactors = `
Nodes(ID, Name) :- name(ID, Name).
Edges(ID1, ID2) :- cast_info(ID1, movie_id), cast_info(ID2, movie_id).
`
	// QuerySamePart is [Q2]: TPCH customers who bought the same part.
	QuerySamePart = `
Nodes(ID, Name) :- Customer(ID, Name).
Edges(ID1, ID2) :- Orders(ok1, ID1), LineItem(ok1, pk), Orders(ok2, ID2), LineItem(ok2, pk).
`
	// QuerySameCourse connects students who took the same course (UNIV).
	QuerySameCourse = `
Nodes(ID, Name) :- Student(ID, Name).
Edges(ID1, ID2) :- TookCourse(ID1, c), TookCourse(ID2, c).
`
	// QueryInstructorStudent is [Q3]: the heterogeneous bipartite graph.
	QueryInstructorStudent = `
Nodes(ID, Name) :- Instructor(ID, Name).
Nodes(ID, Name) :- Student(ID, Name).
Edges(ID1, ID2) :- TaughtCourse(ID1, c), TookCourse(ID2, c).
`
)
