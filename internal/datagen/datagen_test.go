package datagen

import (
	"testing"

	"graphgen/internal/core"
	"graphgen/internal/datalog"
	"graphgen/internal/extract"
)

func TestCondensedShape(t *testing.T) {
	g := Condensed(CondensedConfig{Seed: 1, RealNodes: 100, VirtualNodes: 40, MeanSize: 6, StdDev: 2})
	if g.NumRealNodes() != 100 {
		t.Fatalf("real nodes = %d", g.NumRealNodes())
	}
	if g.NumVirtualNodes() == 0 || g.NumVirtualNodes() > 40 {
		t.Fatalf("virtual nodes = %d, want in (0, 40]", g.NumVirtualNodes())
	}
	if !g.Symmetric || g.Mode() != core.CDUP {
		t.Fatal("generator must emit symmetric C-DUP graphs")
	}
	avg := g.AvgVirtualSize()
	if avg < 3 || avg > 12 {
		t.Fatalf("avg virtual size = %.1f, want near 6", avg)
	}
	if err := g.VerifyDAG(); err != nil {
		t.Fatal(err)
	}
}

func TestCondensedDeterministic(t *testing.T) {
	a := Condensed(CondensedConfig{Seed: 9, RealNodes: 50, VirtualNodes: 20, MeanSize: 5, StdDev: 2})
	b := Condensed(CondensedConfig{Seed: 9, RealNodes: 50, VirtualNodes: 20, MeanSize: 5, StdDev: 2})
	if a.RepEdges() != b.RepEdges() || a.NumVirtualNodes() != b.NumVirtualNodes() {
		t.Fatal("same seed produced different graphs")
	}
	c := Condensed(CondensedConfig{Seed: 10, RealNodes: 50, VirtualNodes: 20, MeanSize: 5, StdDev: 2})
	if a.RepEdges() == c.RepEdges() && a.LogicalEdges() == c.LogicalEdges() {
		t.Fatal("different seeds produced identical graphs (suspicious)")
	}
}

func TestCondensedHasDuplication(t *testing.T) {
	// Preferential attachment should produce overlapping virtual nodes,
	// i.e. actual duplication for the dedup algorithms to remove.
	g := Condensed(CondensedConfig{Seed: 2, RealNodes: 80, VirtualNodes: 60, MeanSize: 6, StdDev: 2})
	_, dups := g.DuplicationStats()
	if dups == 0 {
		t.Fatal("generated graph has no duplication; dedup benchmarks would be vacuous")
	}
}

func TestDBLPLikeExtraction(t *testing.T) {
	db := DBLPLike(3, 200, 150)
	prog, err := datalog.Parse(QueryCoauthors)
	if err != nil {
		t.Fatal(err)
	}
	opts := extract.DefaultOptions()
	opts.SkipPreprocess = true
	res, err := extract.Extract(db, prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph.NumRealNodes() != 200 {
		t.Fatalf("real nodes = %d", res.Graph.NumRealNodes())
	}
	if res.Graph.LogicalEdges() == 0 {
		t.Fatal("no co-author edges extracted")
	}
}

func TestIMDBLikeExtraction(t *testing.T) {
	db := IMDBLike(4, 150, 30)
	prog, _ := datalog.Parse(QueryCoactors)
	opts := extract.DefaultOptions()
	opts.SkipPreprocess = true
	res, err := extract.Extract(db, prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Casts average ~10 members: the self-join must be flagged as
	// large-output and condensed.
	if res.Stats.LargeOutputJoins != 1 {
		t.Fatalf("large joins = %d, want 1", res.Stats.LargeOutputJoins)
	}
	if res.Graph.NumVirtualNodes() == 0 {
		t.Fatal("expected virtual nodes for movie casts")
	}
}

func TestTPCHLikeExtraction(t *testing.T) {
	db := TPCHLike(5, 50, 200, 10, 3)
	prog, _ := datalog.Parse(QuerySamePart)
	opts := extract.DefaultOptions()
	opts.SkipPreprocess = true
	res, err := extract.Extract(db, prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	// The part self-join must be condensed; the key-FK joins handed to
	// the database.
	if res.Stats.LargeOutputJoins < 1 {
		t.Fatalf("stats = %+v: same-part join should be large-output", res.Stats)
	}
	if res.Stats.DatabaseJoins < 2 {
		t.Fatalf("stats = %+v: key-FK joins should go to the database", res.Stats)
	}
}

func TestUnivLikeBipartite(t *testing.T) {
	db := UnivLike(6, 100, 10, 20, 3)
	prog, _ := datalog.Parse(QueryInstructorStudent)
	opts := extract.DefaultOptions()
	opts.SkipPreprocess = true
	res, err := extract.Extract(db, prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph.NumRealNodes() != 110 {
		t.Fatalf("real nodes = %d, want 110", res.Graph.NumRealNodes())
	}
	if res.Graph.Symmetric {
		t.Fatal("bipartite extraction must be directed")
	}
}

func TestLayeredSelectivities(t *testing.T) {
	db := Layered(LayeredSpec{Seed: 7, Rows: 2000, Entities: 300, Sel1: 0.05, Sel2: 0.1})
	a, err := db.Table("A")
	if err != nil {
		t.Fatal(err)
	}
	d, _ := a.NDistinct("j1")
	sel := float64(d) / float64(a.NumRows())
	if sel < 0.03 || sel > 0.07 {
		t.Fatalf("A.j1 selectivity = %.3f, want ~0.05", sel)
	}
	prog, _ := datalog.Parse(LayeredQuery)
	opts := extract.DefaultOptions()
	opts.ForceCondensed = true
	opts.SkipPreprocess = true
	res, err := extract.Extract(db, prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph.MaxLayer() != 3 {
		t.Fatalf("MaxLayer = %d, want 3", res.Graph.MaxLayer())
	}
	if !res.Graph.Symmetric {
		t.Fatal("layered chain is palindromic; graph should be symmetric")
	}
}

func TestSingleDataset(t *testing.T) {
	db := Single(SingleSpec{Seed: 8, Rows: 1000, Entities: 400, Selectivity: 0.05})
	r, _ := db.Table("R")
	if r.NumRows() == 0 {
		t.Fatal("empty table")
	}
	prog, _ := datalog.Parse(SingleQuery)
	opts := extract.DefaultOptions()
	opts.SkipPreprocess = true
	res, err := extract.Extract(db, prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph.MaxLayer() > 1 {
		t.Fatalf("single dataset produced %d layers", res.Graph.MaxLayer())
	}
	if res.Graph.NumVirtualNodes() == 0 {
		t.Fatal("expected a condensed single-layer graph")
	}
}

func TestBSPDatasets(t *testing.T) {
	specs := BSPDatasets()
	if len(specs) != 4 {
		t.Fatalf("specs = %d", len(specs))
	}
	for _, s := range specs {
		g := Condensed(CondensedConfig{
			Seed: s.Seed, RealNodes: s.RealNodes, VirtualNodes: s.VirtualNodes,
			MeanSize: s.MeanSize, StdDev: s.StdDev,
		})
		if g.NumRealNodes() != s.RealNodes {
			t.Fatalf("%s: real nodes = %d", s.Name, g.NumRealNodes())
		}
		if g.LogicalEdges() == 0 {
			t.Fatalf("%s: no edges", s.Name)
		}
	}
}
