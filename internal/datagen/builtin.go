package datagen

import (
	"fmt"
	"strings"

	"graphgen/internal/relstore"
)

// BuiltinDatasets names the built-in generated databases, in the order
// they are documented, for use in flag-validation messages.
var BuiltinDatasets = []string{"dblp", "imdb", "tpch", "univ", "snb"}

// ByName returns a seeded built-in dataset at its canonical CI-scale
// cardinalities together with the dataset's canonical extraction query.
// It is the single source of truth for cmd/graphgen and cmd/graphgend.
func ByName(name string, seed int64) (*relstore.DB, string, error) {
	switch strings.ToLower(name) {
	case "dblp":
		return DBLPLike(seed, 2000, 1600), QueryCoauthors, nil
	case "imdb":
		return IMDBLike(seed, 1200, 200), QueryCoactors, nil
	case "tpch":
		return TPCHLike(seed, 250, 1500, 30, 3), QuerySamePart, nil
	case "univ":
		return UnivLike(seed, 600, 20, 40, 4), QuerySameCourse, nil
	case "snb":
		// CI-scale social network (SF 0.1 ≈ 1k persons); cmd/graphload
		// regenerates at any scale factor for load runs.
		return SNB(SNBConfig{Seed: seed, ScaleFactor: 0.1}), QueryKnows, nil
	default:
		return nil, "", fmt.Errorf("unknown dataset %q (valid: %s)", name, strings.Join(BuiltinDatasets, ", "))
	}
}
