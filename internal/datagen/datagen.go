// Package datagen generates the evaluation datasets of Section 6 and
// Appendix C: a synthetic condensed-graph generator in the spirit of the
// paper's Barabási–Albert-flavoured Appendix C.1 algorithm, and relational
// database generators that stand in for the real DBLP, IMDB, TPC-H, and
// UNIV datasets (same schemas, scaled cardinalities, skewed membership
// distributions), plus the selectivity-controlled Layered_*/Single_*
// datasets of Appendix C.2. All generators are seeded and deterministic.
package datagen

import (
	"math/rand"
	"sort"

	"graphgen/internal/core"
)

// CondensedConfig parameterizes the synthetic condensed-graph generator.
type CondensedConfig struct {
	Seed int64
	// RealNodes and VirtualNodes set the node counts (n1 and n2 in
	// Appendix C.1).
	RealNodes, VirtualNodes int
	// MeanSize and StdDev define the normal distribution virtual-node
	// sizes are drawn from.
	MeanSize, StdDev float64
}

// Condensed generates a single-layer symmetric condensed graph following
// Appendix C.1: virtual-node sizes are drawn from a normal distribution,
// 15% of the virtual nodes are filled uniformly at random, and the rest use
// preferential attachment — members are drawn from the neighborhood of an
// anchor real node with probability proportional to the square of their
// degree, which preserves the local densities of real-world networks that
// plain preferential attachment loses. Larger virtual nodes are split
// before assignment and re-merged afterwards, letting the two halves pick
// correlated but distinct neighborhoods.
func Condensed(cfg CondensedConfig) *core.Graph {
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := core.New(core.CDUP)
	g.Symmetric = true
	n := cfg.RealNodes
	for i := 0; i < n; i++ {
		g.AddRealNode(int64(i + 1))
	}
	// degree tracks virtual memberships per real node for the
	// preferential choices.
	degree := make([]int, n)

	sampleSize := func() int {
		s := int(rng.NormFloat64()*cfg.StdDev + cfg.MeanSize)
		if s < 2 {
			s = 2
		}
		if s > n {
			s = n
		}
		return s
	}

	// Step 1-2: sizes, with large nodes split into two halves.
	type vspec struct {
		size      int
		fromSplit bool
		mergeWith int // index of the sibling half, or -1
	}
	var specs []vspec
	for v := 0; v < cfg.VirtualNodes; v++ {
		size := sampleSize()
		splitProb := float64(size) / (cfg.MeanSize * 4)
		if size >= 4 && rng.Float64() < splitProb {
			half := size / 2
			specs = append(specs, vspec{size: half, fromSplit: true, mergeWith: len(specs) + 1})
			specs = append(specs, vspec{size: size - half, fromSplit: true, mergeWith: -1})
		} else {
			specs = append(specs, vspec{size: size, mergeWith: -1})
		}
	}

	assignRandom := func(members map[int32]struct{}, size int) {
		for len(members) < size {
			members[int32(rng.Intn(n))] = struct{}{}
		}
	}

	// Step 3: initial batch of ~15% random virtual nodes to bootstrap
	// degrees; Step 4: preferential attachment for the rest.
	bootstrap := len(specs) * 15 / 100
	if bootstrap == 0 {
		bootstrap = 1
	}
	memberSets := make([]map[int32]struct{}, len(specs))
	for i, spec := range specs {
		members := make(map[int32]struct{}, spec.size)
		switch {
		case i < bootstrap:
			assignRandom(members, spec.size)
		case spec.fromSplit && rng.Float64() < 0.35:
			assignRandom(members, spec.size)
		default:
			// Anchor on a real node weighted by degree, then fill
			// from its 2-hop membership neighborhood weighted by
			// degree squared.
			anchor := pickWeighted(rng, degree)
			members[int32(anchor)] = struct{}{}
			cands := neighborhood(memberSets[:i], degree, int32(anchor))
			for len(members) < spec.size && len(cands) > 0 {
				k := pickWeightedSquared(rng, cands, degree)
				members[cands[k]] = struct{}{}
				cands = append(cands[:k], cands[k+1:]...)
			}
			assignRandom(members, spec.size)
		}
		memberSets[i] = members
		for m := range members {
			degree[m]++
		}
	}
	// Step 5: merge split halves back into one virtual node.
	for i, spec := range specs {
		if spec.mergeWith >= 0 {
			for m := range memberSets[spec.mergeWith] {
				memberSets[i][m] = struct{}{}
			}
			memberSets[spec.mergeWith] = nil
		}
	}
	for _, members := range memberSets {
		if members == nil || len(members) < 2 {
			continue
		}
		sorted := make([]int32, 0, len(members))
		for m := range members {
			sorted = append(sorted, m)
		}
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		v := g.AddVirtualNode(1)
		for _, m := range sorted {
			g.AddMember(v, m)
		}
	}
	g.SortAdjacency()
	return g
}

// pickWeighted picks an index with probability proportional to weight+1.
func pickWeighted(rng *rand.Rand, weights []int) int {
	total := 0
	for _, w := range weights {
		total += w + 1
	}
	x := rng.Intn(total)
	for i, w := range weights {
		x -= w + 1
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// pickWeightedSquared picks a position in cands with probability
// proportional to (degree+1)^2.
func pickWeightedSquared(rng *rand.Rand, cands []int32, degree []int) int {
	total := 0
	for _, c := range cands {
		d := degree[c] + 1
		total += d * d
	}
	x := rng.Intn(total)
	for i, c := range cands {
		d := degree[c] + 1
		x -= d * d
		if x < 0 {
			return i
		}
	}
	return len(cands) - 1
}

// neighborhood returns the co-members of anchor across the virtual nodes
// assigned so far (bounded scan for generation speed). The result is sorted
// so that weighted selection is deterministic for a fixed seed despite map
// storage of the member sets.
func neighborhood(memberSets []map[int32]struct{}, degree []int, anchor int32) []int32 {
	seen := make(map[int32]struct{})
	var out []int32
	scanned := 0
	for i := len(memberSets) - 1; i >= 0 && scanned < 64; i-- {
		ms := memberSets[i]
		if ms == nil {
			continue
		}
		if _, ok := ms[anchor]; !ok {
			continue
		}
		scanned++
		for m := range ms {
			if m == anchor {
				continue
			}
			if _, dup := seen[m]; dup {
				continue
			}
			seen[m] = struct{}{}
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
