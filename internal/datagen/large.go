package datagen

import (
	"fmt"
	"math/rand"

	"graphgen/internal/relstore"
)

// This file generates the Appendix C.2 datasets: multi-layer (Layered_1,
// Layered_2) and single-layer (Single_1, Single_2) condensed graphs defined
// through relational tables whose join-attribute cardinalities are tuned to
// the paper's selectivities (selectivity of a join on attribute a of table
// A = distinct_a / |A|), plus the S1/S2/N1/N2 condensed datasets used in
// the Giraph experiments (Table 5).

// LayeredSpec describes a Layered_* dataset: two generated tables A(id, j1)
// and B(j1, j2) queried with the TPCH-shaped three-join chain
//
//	Edges(ID1, ID2) :- A(ID1, a1), B(a1, a2), B(b1, a2), A(ID2, b1)
//
// whose three join selectivities are Sel1 -> Sel2 -> Sel1 (the paper's
// Layered_1 is 0.05 -> 0.1 -> 0.05, Layered_2 is 0.2 -> 0.1 -> 0.2).
type LayeredSpec struct {
	Seed int64
	// Rows is the cardinality of each generated table.
	Rows int
	// Entities is the number of distinct real-node IDs in A.
	Entities int
	// Sel1 is the selectivity of the A-B join attribute within B;
	// Sel2 of the B-B join attribute.
	Sel1, Sel2 float64
}

// LayeredQuery is the extraction query for Layered datasets.
const LayeredQuery = `
Nodes(ID) :- Entity(ID).
Edges(ID1, ID2) :- A(ID1, a1), B(a1, a2), B(b1, a2), A(ID2, b1).
`

// Layered generates a Layered_* database. Values are uniformly distributed
// over ranges sized to hit the requested selectivities, as in the paper.
func Layered(spec LayeredSpec) *relstore.DB {
	rng := rand.New(rand.NewSource(spec.Seed))
	db := relstore.NewDB()
	entity, _ := db.Create("Entity", relstore.Column{Name: "id", Type: relstore.Int})
	a, _ := db.Create("A",
		relstore.Column{Name: "id", Type: relstore.Int},
		relstore.Column{Name: "j1", Type: relstore.Int})
	b, _ := db.Create("B",
		relstore.Column{Name: "j1", Type: relstore.Int},
		relstore.Column{Name: "j2", Type: relstore.Int})
	for e := 1; e <= spec.Entities; e++ {
		entity.Insert(relstore.IntVal(int64(e)))
	}
	d1 := int(float64(spec.Rows) * spec.Sel1)
	if d1 < 1 {
		d1 = 1
	}
	d2 := int(float64(spec.Rows) * spec.Sel2)
	if d2 < 1 {
		d2 = 1
	}
	for i := 0; i < spec.Rows; i++ {
		a.Insert(relstore.IntVal(int64(rng.Intn(spec.Entities)+1)), relstore.IntVal(int64(rng.Intn(d1)+1)))
		b.Insert(relstore.IntVal(int64(rng.Intn(d1)+1)), relstore.IntVal(int64(rng.Intn(d2)+1)))
	}
	return db
}

// SingleSpec describes a Single_* dataset: one membership table R(id, attr)
// with a tuned selectivity, queried with the standard co-membership chain.
type SingleSpec struct {
	Seed int64
	// Rows is |R|; Entities the number of distinct IDs.
	Rows, Entities int
	// Selectivity = distinct_attr / |R| (the paper's Single_1 is 0.25,
	// Single_2 is 0.01 — lower selectivity means denser hidden graphs).
	Selectivity float64
}

// SingleQuery is the extraction query for Single datasets.
const SingleQuery = `
Nodes(ID) :- Entity(ID).
Edges(ID1, ID2) :- R(ID1, attr), R(ID2, attr).
`

// Single generates a Single_* database.
func Single(spec SingleSpec) *relstore.DB {
	rng := rand.New(rand.NewSource(spec.Seed))
	db := relstore.NewDB()
	entity, _ := db.Create("Entity", relstore.Column{Name: "id", Type: relstore.Int})
	r, _ := db.Create("R",
		relstore.Column{Name: "id", Type: relstore.Int},
		relstore.Column{Name: "attr", Type: relstore.Int})
	for e := 1; e <= spec.Entities; e++ {
		entity.Insert(relstore.IntVal(int64(e)))
	}
	d := int(float64(spec.Rows) * spec.Selectivity)
	if d < 1 {
		d = 1
	}
	rows := spec.Rows
	if max := spec.Entities * d; rows > max {
		rows = max // cannot draw more distinct (id, attr) pairs than exist
	}
	seen := make(map[[2]int64]struct{}, rows)
	for len(seen) < rows {
		id := int64(rng.Intn(spec.Entities) + 1)
		attr := int64(rng.Intn(d) + 1)
		key := [2]int64{id, attr}
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		r.Insert(relstore.IntVal(id), relstore.IntVal(attr))
	}
	return db
}

// BSPSpec reproduces the Table 5 dataset series: S1/S2 fix the node counts
// and scale the average virtual-node size; N1/N2 fix the size and scale the
// node counts.
type BSPSpec struct {
	Name         string
	Seed         int64
	RealNodes    int
	VirtualNodes int
	MeanSize     float64
	StdDev       float64
}

// BSPDatasets returns scaled-down versions of the paper's S1, S2, N1, N2
// (Table 5 shapes: S-series fixed node counts with growing virtual-node
// sizes, N-series growing node counts at fixed size; divided to fit 1-core
// CI hardware while preserving the density ratios — on the S-series DEDUP-1
// degenerates toward EXP exactly as the paper's Table 5 shows, so its
// construction cost bounds the feasible scale).
func BSPDatasets() []BSPSpec {
	return []BSPSpec{
		{Name: "S1", Seed: 101, RealNodes: 1200, VirtualNodes: 5, MeanSize: 220, StdDev: 30},
		{Name: "S2", Seed: 102, RealNodes: 1200, VirtualNodes: 5, MeanSize: 500, StdDev: 60},
		{Name: "N1", Seed: 103, RealNodes: 3000, VirtualNodes: 150, MeanSize: 100, StdDev: 25},
		{Name: "N2", Seed: 104, RealNodes: 5000, VirtualNodes: 350, MeanSize: 100, StdDev: 25},
	}
}

// String describes the spec.
func (s BSPSpec) String() string {
	return fmt.Sprintf("%s(real=%d virt=%d size~N(%.0f,%.0f))",
		s.Name, s.RealNodes, s.VirtualNodes, s.MeanSize, s.StdDev)
}
