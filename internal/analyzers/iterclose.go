package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
)

// iterPkgs are the packages that build and drain relstore row-iterator
// pipelines; only there does the Close obligation below apply.
var iterPkgs = map[string]bool{
	"graphgen/internal/relstore":    true,
	"graphgen/internal/extract":     true,
	"graphgen/internal/datalogeval": true,
}

// IterCloseAnalyzer flags row iterators that are acquired and then
// abandoned — the streaming-pipeline counterpart of lockedreturn's leaked
// mutex. A leaked RowIter pins its operator state (join build sides,
// distinct sets, index gathers) and its Tracker accounting for the life
// of the process.
//
// The iterator contract (internal/relstore/iter.go) discharges the Close
// obligation in exactly one of three ways: the holder calls Close itself,
// hands the iterator to a consumer (any call taking it as an argument —
// Collect, Materialize, closeAll, or a downstream constructor, which owns
// its inputs on success), or passes it along (returns it, stores it in a
// variable, field, or composite literal). Detection is positional, like
// lockedreturn: within one function body (closures are independent units,
// but a capture by a nested closure counts as a handoff), a local
// variable assigned from a call whose static type has the RowIter shape —
// a method set with Next() (row, bool, error) and Close() error — must be
// followed by at least one discharging use. Merely draining the iterator
// (x.Next(), x.Cols() receiver uses) does not discharge it: that is
// precisely the "looped over it, forgot the Close" leak. Intentional
// leaks take a //lint:ignore iterclose <why>.
var IterCloseAnalyzer = &Analyzer{
	Name: "iterclose",
	Doc:  "row iterators must be closed or handed off on every path in relstore/extract/datalogeval",
	Run:  runIterClose,
}

func runIterClose(pass *Pass) error {
	if !iterPkgs[pass.Pkg.Path()] {
		return nil
	}
	for _, file := range pass.Files {
		funcUnits(file, func(_ string, body *ast.BlockStmt) {
			iterCloseUnit(pass, body)
		})
	}
	return nil
}

// isRowIterType reports whether t's method set has the RowIter shape:
// Next() (T, bool, error) and Close() error. Structural matching keeps
// the check honest across the concrete operator types and the interface
// itself without importing relstore into the analyzer.
func isRowIterType(t types.Type) bool {
	if t == nil {
		return false
	}
	next := methodSig(t, "Next")
	if next == nil || next.Params().Len() != 0 || next.Results().Len() != 3 ||
		!isBasic(next.Results().At(1).Type(), types.Bool) || !isErrorType(next.Results().At(2).Type()) {
		return false
	}
	closeSig := methodSig(t, "Close")
	return closeSig != nil && closeSig.Params().Len() == 0 &&
		closeSig.Results().Len() == 1 && isErrorType(closeSig.Results().At(0).Type())
}

func methodSig(t types.Type, name string) *types.Signature {
	ms := types.NewMethodSet(t)
	for i := 0; i < ms.Len(); i++ {
		if f, ok := ms.At(i).Obj().(*types.Func); ok && f.Name() == name {
			if sig, ok := f.Type().(*types.Signature); ok {
				return sig
			}
		}
	}
	return nil
}

func isBasic(t types.Type, kind types.BasicKind) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == kind
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

func iterCloseUnit(pass *Pass, body *ast.BlockStmt) {
	info := pass.Info

	// Acquisitions: iterator-typed locals assigned from a call result in
	// this unit (not inside nested closures — those are their own units).
	type acquire struct {
		obj  types.Object
		pos  token.Pos
		name string
	}
	var acquires []acquire
	inspectUnit(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) == 0 {
			return true
		}
		// Only call RHSs acquire: `a := b` is an alias of an existing
		// obligation, and `var it RowIter` holds nothing yet.
		fromCall := false
		for _, r := range as.Rhs {
			if _, ok := ast.Unparen(r).(*ast.CallExpr); ok {
				fromCall = true
			}
		}
		if !fromCall {
			return true
		}
		for _, l := range as.Lhs {
			id, ok := ast.Unparen(l).(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			if obj == nil || !isRowIterType(obj.Type()) {
				continue
			}
			acquires = append(acquires, acquire{obj: obj, pos: id.Pos(), name: id.Name})
		}
		return true
	})
	if len(acquires) == 0 {
		return
	}

	// Discharging uses, by object and position. The walk descends into
	// nested function literals: capturing an iterator in a closure (e.g.
	// a deferred cleanup) hands it off.
	discharges := map[types.Object][]token.Pos{}
	record := func(e ast.Expr) {
		ast.Inspect(e, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if obj := info.Uses[id]; obj != nil {
				discharges[obj] = append(discharges[obj], id.Pos())
			}
			return true
		})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Close" {
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
					if obj := info.Uses[id]; obj != nil {
						discharges[obj] = append(discharges[obj], id.Pos())
					}
				}
			}
			for _, arg := range x.Args {
				record(arg)
			}
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				record(r)
			}
		case *ast.AssignStmt:
			// RHS uses alias or store the iterator; the LHS of its own
			// acquisition is a definition, not a use, so it never
			// self-discharges.
			for _, r := range x.Rhs {
				if _, ok := ast.Unparen(r).(*ast.CallExpr); ok {
					continue // call arguments are recorded above
				}
				record(r)
			}
		case *ast.CompositeLit:
			for _, el := range x.Elts {
				record(el)
			}
		}
		return true
	})

	for _, a := range acquires {
		ok := false
		for _, p := range discharges[a.obj] {
			if p > a.pos {
				ok = true
				break
			}
		}
		if !ok {
			pass.Reportf(a.pos, "iterator %s is acquired but never closed or handed off; call %s.Close(), pass it to a consumer, or return it", a.name, a.name)
		}
	}
}
