package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockedReturnAnalyzer flags early returns that leak a held mutex in code
// using manual Lock/Unlock pairs — the classic "error path forgot the
// Unlock" bug, which in this codebase stalls every request behind dbMu or
// wedges live-graph maintenance behind an incremental-subsystem lock.
//
// Within one function body (closures are independent units), a mutex
// expression is considered held from a Lock/RLock call until the next
// textual Unlock/RUnlock of the same expression or a deferred unlock.
// A return with a lock held and no intervening release is reported.
// TryLock is ignored: its acquisition is conditional and needs control
// flow the position scan does not model. Intentional lock handoffs take a
// //lint:ignore lockedreturn <why>.
var LockedReturnAnalyzer = &Analyzer{
	Name: "lockedreturn",
	Doc:  "returns must not leak a held sync.Mutex/RWMutex",
	Run:  runLockedReturn,
}

func runLockedReturn(pass *Pass) error {
	for _, file := range pass.Files {
		funcUnits(file, func(_ string, body *ast.BlockStmt) {
			lockedReturnUnit(pass, body)
		})
	}
	return nil
}

// mutexKey identifies one mutex within a function: its receiver
// expression rendering plus the read/write half of an RWMutex.
type mutexKey struct {
	expr string
	read bool
}

func lockedReturnUnit(pass *Pass, body *ast.BlockStmt) {
	type acquire struct {
		pos  token.Pos
		line int
	}
	locks := map[mutexKey][]acquire{}      // Lock/RLock positions
	releases := map[mutexKey][]token.Pos{} // Unlock/RUnlock and deferred unlock positions
	var returns []token.Pos

	deferred := map[*ast.CallExpr]bool{}
	inspectUnit(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.DeferStmt:
			deferred[x.Call] = true
		case *ast.ReturnStmt:
			returns = append(returns, x.Pos())
		case *ast.CallExpr:
			sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr)
			if !ok || !isSyncLockMethod(pass.Info, sel) {
				return true
			}
			key := mutexKey{expr: types.ExprString(sel.X)}
			switch sel.Sel.Name {
			case "RLock", "RUnlock":
				key.read = true
			}
			switch sel.Sel.Name {
			case "Lock", "RLock":
				if !deferred[x] {
					locks[key] = append(locks[key], acquire{pos: x.Pos(), line: pass.Fset.Position(x.Pos()).Line})
				}
			case "Unlock", "RUnlock":
				// A deferred unlock releases at every return after it;
				// recording its own position covers exactly the returns
				// that follow it, which is when it is armed.
				releases[key] = append(releases[key], x.Pos())
			}
		}
		return true
	})

	for _, ret := range returns {
		for key, acqs := range locks {
			// Last acquisition before the return...
			var last *acquire
			for i := range acqs {
				if acqs[i].pos < ret {
					last = &acqs[i]
				}
			}
			if last == nil {
				continue
			}
			// ...with no release between it and the return.
			released := false
			for _, rel := range releases[key] {
				if rel > last.pos && rel < ret {
					released = true
					break
				}
			}
			if !released {
				verb := "Lock"
				if key.read {
					verb = "RLock"
				}
				pass.Reportf(ret, "return leaks %s.%s held since line %d; unlock before returning or defer the unlock", key.expr, verb, last.line)
			}
		}
	}
}
