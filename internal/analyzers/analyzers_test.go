package analyzers_test

import (
	"strings"
	"testing"

	"graphgen/internal/analyzers"
	"graphgen/internal/analyzers/lintest"
)

// The fixture suites: each analyzer gets a flagged fixture (every seeded
// violation must be reported, asserted by // want comments) and a clean
// fixture (zero findings). Scoped analyzers are checked under the import
// path their rules are bound to.

func TestKeyencode(t *testing.T) {
	lintest.Run(t, analyzers.KeyencodeAnalyzer, "graphgen/internal/fixture", "testdata/src/keyencode/flagged")
	lintest.Run(t, analyzers.KeyencodeAnalyzer, "graphgen/internal/fixture", "testdata/src/keyencode/clean")
}

func TestGuardedBy(t *testing.T) {
	lintest.Run(t, analyzers.GuardedByAnalyzer, "graphgen/internal/fixture", "testdata/src/guardedby/flagged")
	lintest.Run(t, analyzers.GuardedByAnalyzer, "graphgen/internal/fixture", "testdata/src/guardedby/clean")
}

// TestGuardedByBadAnnotations: malformed annotations are findings in
// their own right. Asserted directly — a want comment sharing the
// directive's line would pollute its argument.
func TestGuardedByBadAnnotations(t *testing.T) {
	diags := lintest.Diagnostics(t, analyzers.GuardedByAnalyzer, "graphgen/internal/fixture", "testdata/src/guardedby/badannot")
	wantSubstrings := []string{
		`graphlint:guardedby gone: "missing" is not a sibling sync.Mutex/RWMutex field`,
		`graphlint:guardedby needs a sibling mutex field name`,
		`graphlint:guardedby external: needs a lock name`,
		`graphlint:guardedby cannot annotate an embedded field`,
		`graphlint:requires f: the receiver has no sync.Mutex/RWMutex field "nope"`,
	}
	if len(diags) != len(wantSubstrings) {
		t.Fatalf("got %d diagnostics, want %d:\n%v", len(diags), len(wantSubstrings), diags)
	}
	for _, sub := range wantSubstrings {
		found := false
		for _, d := range diags {
			if strings.Contains(d.String(), sub) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no diagnostic contains %q; got %v", sub, diags)
		}
	}
}

// TestGuardedByUnannotated: a package with mutexes but no annotations
// opts out entirely — the lockedreturn fixtures are exactly that shape.
func TestGuardedByUnannotated(t *testing.T) {
	for _, dir := range []string{"testdata/src/lockedreturn/flagged", "testdata/src/lockedreturn/clean"} {
		if diags := lintest.Diagnostics(t, analyzers.GuardedByAnalyzer, "graphgen/internal/fixture", dir); len(diags) != 0 {
			t.Fatalf("guardedby fired on the unannotated package %s: %v", dir, diags)
		}
	}
}

func TestNilSafe(t *testing.T) {
	lintest.Run(t, analyzers.NilSafeAnalyzer, "graphgen/internal/obs", "testdata/src/nilsafe/flagged")
	lintest.Run(t, analyzers.NilSafeAnalyzer, "graphgen/internal/obs", "testdata/src/nilsafe/clean")
}

// TestNilSafeScoped: outside internal/obs the analyzer stays silent,
// even on unguarded Trace/Span lookalikes.
func TestNilSafeScoped(t *testing.T) {
	if diags := lintest.Diagnostics(t, analyzers.NilSafeAnalyzer, "graphgen/internal/fixture", "testdata/src/nilsafe/flagged"); len(diags) != 0 {
		t.Fatalf("nilsafe fired outside internal/obs: %v", diags)
	}
}

func TestLockOrder(t *testing.T) {
	lintest.Run(t, analyzers.LockOrderAnalyzer, "graphgen/internal/server", "testdata/src/lockorder/flagged")
	lintest.Run(t, analyzers.LockOrderAnalyzer, "graphgen/internal/server", "testdata/src/lockorder/clean")
}

// TestLockOrderScoped: outside internal/server the analyzer stays silent,
// even on code full of inversions.
func TestLockOrderScoped(t *testing.T) {
	if diags := lintest.Diagnostics(t, analyzers.LockOrderAnalyzer, "graphgen/internal/fixture", "testdata/src/lockorder/flagged"); len(diags) != 0 {
		t.Fatalf("lockorder fired outside internal/server: %v", diags)
	}
}

func TestNotifyOrder(t *testing.T) {
	lintest.Run(t, analyzers.NotifyOrderAnalyzer, "graphgen/internal/relstore", "testdata/src/notifyorder/flagged")
	lintest.Run(t, analyzers.NotifyOrderAnalyzer, "graphgen/internal/relstore", "testdata/src/notifyorder/clean")
	lintest.Run(t, analyzers.NotifyOrderAnalyzer, "graphgen/internal/fixture", "testdata/src/notifyorder/crosspkg")
}

func TestDeterminism(t *testing.T) {
	lintest.Run(t, analyzers.DeterminismAnalyzer, "graphgen/internal/datagen", "testdata/src/determinism/flagged")
	lintest.Run(t, analyzers.DeterminismAnalyzer, "graphgen/internal/datagen", "testdata/src/determinism/clean")
}

// TestDeterminismScoped: the same violations are fine in a package outside
// the deterministic set.
func TestDeterminismScoped(t *testing.T) {
	if diags := lintest.Diagnostics(t, analyzers.DeterminismAnalyzer, "graphgen/internal/fixture", "testdata/src/determinism/flagged"); len(diags) != 0 {
		t.Fatalf("determinism fired outside the deterministic packages: %v", diags)
	}
}

func TestIterClose(t *testing.T) {
	lintest.Run(t, analyzers.IterCloseAnalyzer, "graphgen/internal/relstore", "testdata/src/iterclose/flagged")
	lintest.Run(t, analyzers.IterCloseAnalyzer, "graphgen/internal/relstore", "testdata/src/iterclose/clean")
}

// TestIterCloseScoped: outside the streaming packages the analyzer stays
// silent, even on leaky code.
func TestIterCloseScoped(t *testing.T) {
	if diags := lintest.Diagnostics(t, analyzers.IterCloseAnalyzer, "graphgen/internal/fixture", "testdata/src/iterclose/flagged"); len(diags) != 0 {
		t.Fatalf("iterclose fired outside relstore/extract/datalogeval: %v", diags)
	}
}

func TestSpanEnd(t *testing.T) {
	lintest.Run(t, analyzers.SpanEndAnalyzer, "graphgen/internal/extract", "testdata/src/spanend/flagged")
	lintest.Run(t, analyzers.SpanEndAnalyzer, "graphgen/internal/extract", "testdata/src/spanend/clean")
}

// TestSpanEndScoped: outside the traced execution packages the analyzer
// stays silent, even on leaky code.
func TestSpanEndScoped(t *testing.T) {
	if diags := lintest.Diagnostics(t, analyzers.SpanEndAnalyzer, "graphgen/internal/fixture", "testdata/src/spanend/flagged"); len(diags) != 0 {
		t.Fatalf("spanend fired outside relstore/extract/datalogeval: %v", diags)
	}
}

func TestLockedReturn(t *testing.T) {
	lintest.Run(t, analyzers.LockedReturnAnalyzer, "graphgen/internal/fixture", "testdata/src/lockedreturn/flagged")
	lintest.Run(t, analyzers.LockedReturnAnalyzer, "graphgen/internal/fixture", "testdata/src/lockedreturn/clean")
}

// TestSuppression drives the lint:ignore policy end to end: a justified
// directive silences its finding; stale, unknown-name, and bare directives
// are diagnostics themselves; a rejected directive suppresses nothing.
func TestSuppression(t *testing.T) {
	diags := lintest.Diagnostics(t, analyzers.LockedReturnAnalyzer, "graphgen/internal/fixture", "testdata/src/suppress")
	wantSubstrings := []string{
		`lint:ignore for lockedreturn suppresses nothing`,
		`lint:ignore names unknown analyzer "lockedretrun"`,
		`lint:ignore needs an analyzer list and a justification`,
		`return leaks h.mu.Lock`,
	}
	if len(diags) != len(wantSubstrings) {
		t.Fatalf("got %d diagnostics, want %d:\n%v", len(diags), len(wantSubstrings), diags)
	}
	for _, sub := range wantSubstrings {
		found := false
		for _, d := range diags {
			if strings.Contains(d.String(), sub) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no diagnostic contains %q; got %v", sub, diags)
		}
	}
	for _, d := range diags {
		if strings.Contains(d.Message, "handed to the caller") || strings.Contains(d.Message, "return leaks") && d.Pos.Line < 20 {
			t.Errorf("justified suppression did not hold: %v", d)
		}
	}
}

// TestAllStable pins the suite composition: nine analyzers, stable
// order, unique names — the names are part of the lint:ignore contract.
func TestAllStable(t *testing.T) {
	want := []string{"determinism", "guardedby", "iterclose", "keyencode", "lockedreturn", "lockorder", "nilsafe", "notifyorder", "spanend"}
	all := analyzers.All()
	if len(all) != len(want) {
		t.Fatalf("All() returned %d analyzers, want %d", len(all), len(want))
	}
	for i, a := range all {
		if a.Name != want[i] {
			t.Errorf("All()[%d] = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q missing doc or run function", a.Name)
		}
	}
}
