// Package analyzers is graphlint's home: a small, dependency-free
// static-analysis framework (the shape of golang.org/x/tools/go/analysis,
// which this repo cannot vendor) plus the repo-specific analyzers that
// machine-check GraphGen's hand-enforced invariants:
//
//   - keyencode:    composite map/dedup keys built from relstore.Value data
//     must go through Value.AppendKey (the PR 4 "|"-collision bug class)
//   - lockorder:    internal/server must take dbMu before sessMu and touch
//     relational tables only inside a dbMu critical section
//   - notifyorder:  relstore mutators must route through Table.notify, and
//     notify must bring indexes up to date before subscribers run
//   - determinism:  the deterministic packages (datagen, parallel, workload,
//     and the worker-pool merge paths) must not read wall clocks, use the
//     global math/rand source, or feed ordered appends from map iteration
//   - lockedreturn: a return must not leak a held sync.Mutex/RWMutex
//   - iterclose:   a row iterator acquired in relstore/extract/datalogeval
//     must be closed or handed off (consumer call, return, store)
//   - spanend:     a trace span started in relstore/extract/datalogeval
//     must be ended or handed off (End call, owner handoff, return, store)
//   - guardedby:   struct fields annotated "graphlint:guardedby mu" are
//     accessed only while the named sibling mutex is held, checked
//     interprocedurally over per-function lock summaries (summary.go)
//   - nilsafe:     internal/obs: exported *Trace/*Span methods begin with
//     a nil-receiver guard (the tracing-off fast path)
//
// Each analyzer inspects one type-checked package at a time (a Pass) and
// reports diagnostics. RunAnalyzers applies the suppression policy: a
// finding is silenced only by an inline "//lint:ignore <analyzer> <why>"
// comment on the same or the preceding line — for a multi-line statement,
// a trailing directive on its last line covers the whole statement — and
// the comment itself is checked: a missing justification, an unknown
// analyzer name, or a directive that no longer suppresses anything is a
// diagnostic in its own right (reported under the pseudo-analyzer "lint").
package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and lint:ignore
	// directives.
	Name string
	// Doc is a one-paragraph description of the invariant.
	Doc string
	// Run inspects one package and reports findings via pass.Reportf.
	Run func(pass *Pass) error
}

// A Pass is one analyzer applied to one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one reported finding, with its position resolved.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// LintName is the pseudo-analyzer under which suppression-policy
// violations (malformed or stale lint:ignore directives) are reported.
const LintName = "lint"

// ignoreMarker is the directive prefix, staticcheck-compatible:
// //lint:ignore NAME[,NAME...] justification
const ignoreMarker = "lint:ignore"

// ignoreDirective is one parsed lint:ignore comment.
type ignoreDirective struct {
	pos      token.Pos
	line     int
	fromLine int      // start line of the statement the directive trails, else line
	names    []string // analyzer names the directive silences
	reason   string
	used     bool
}

// parseDirectives extracts the lint:ignore directives of one file and
// reports malformed ones (missing analyzer list or justification, unknown
// analyzer names) as diagnostics. The analyzer list and the justification
// may be separated by any whitespace, not only a single space.
func parseDirectives(fset *token.FileSet, file *ast.File, known map[string]bool, report func(Diagnostic)) []*ignoreDirective {
	spans := stmtSpans(fset, file)
	var out []*ignoreDirective
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			rest, ok := strings.CutPrefix(text, ignoreMarker)
			if !ok || (rest != "" && !startsWithSpace(rest)) {
				// "lint:ignoreXYZ" is not a directive at all.
				continue
			}
			pos := fset.Position(c.Pos())
			rest = strings.TrimSpace(rest)
			nameList, reason := cutAnySpace(rest)
			if nameList == "" || reason == "" {
				report(Diagnostic{Pos: pos, Analyzer: LintName,
					Message: "lint:ignore needs an analyzer list and a justification: //lint:ignore <analyzer>[,<analyzer>] <why>"})
				continue
			}
			names := strings.Split(nameList, ",")
			ok = true
			for _, n := range names {
				if !known[n] {
					report(Diagnostic{Pos: pos, Analyzer: LintName,
						Message: fmt.Sprintf("lint:ignore names unknown analyzer %q", n)})
					ok = false
				}
			}
			if !ok {
				continue
			}
			from := pos.Line
			if s, hit := spans[pos.Line]; hit && s < from {
				from = s
			}
			out = append(out, &ignoreDirective{pos: c.Pos(), line: pos.Line, fromLine: from, names: names, reason: reason})
		}
	}
	return out
}

func startsWithSpace(s string) bool {
	return s[0] == ' ' || s[0] == '\t'
}

// cutAnySpace splits at the first whitespace run, so a tab between the
// analyzer list and the justification parses the same as a space.
func cutAnySpace(s string) (head, tail string) {
	i := strings.IndexAny(s, " \t")
	if i < 0 {
		return s, ""
	}
	return s[:i], strings.TrimSpace(s[i:])
}

// stmtSpans maps each line on which a (non-block) statement ends to the
// start line of the innermost such statement: a directive trailing the
// last line of a multi-line statement suppresses diagnostics anchored
// anywhere on it, matching where gofmt leaves room for the comment.
func stmtSpans(fset *token.FileSet, file *ast.File) map[int]int {
	spans := map[int]int{}
	ast.Inspect(file, func(n ast.Node) bool {
		s, ok := n.(ast.Stmt)
		if !ok {
			return true
		}
		if _, isBlock := s.(*ast.BlockStmt); isBlock {
			return true // a block's closing brace would cover far too much
		}
		start, end := fset.Position(s.Pos()).Line, fset.Position(s.End()).Line
		if cur, hit := spans[end]; !hit || start > cur {
			spans[end] = start // innermost statement ending here wins
		}
		return true
	})
	return spans
}

// RunAnalyzers applies every analyzer to every package, applies the
// suppression policy for ignore directives, and returns the surviving
// diagnostics sorted by position. A suppressed diagnostic marks its
// directive used; unused directives are reported — the ratchet must not
// accumulate stale escape hatches.
func RunAnalyzers(pkgs []*Package, as []*Analyzer) ([]Diagnostic, error) {
	known := map[string]bool{}
	for _, a := range as {
		known[a.Name] = true
	}
	var out []Diagnostic
	for _, pkg := range pkgs {
		var directives []*ignoreDirective
		for _, f := range pkg.Files {
			directives = append(directives, parseDirectives(pkg.Fset, f, known, func(d Diagnostic) {
				out = append(out, d)
			})...)
		}
		suppress := func(d Diagnostic) bool {
			for _, dir := range directives {
				sameOrNext := dir.line == d.Pos.Line || dir.line == d.Pos.Line-1
				inSpan := dir.fromLine <= d.Pos.Line && d.Pos.Line <= dir.line
				if !sameOrNext && !inSpan {
					continue
				}
				for _, n := range dir.names {
					if n == d.Analyzer {
						dir.used = true
						return true
					}
				}
			}
			return false
		}
		for _, a := range as {
			pass := &Pass{Analyzer: a, Fset: pkg.Fset, Files: pkg.Files, Pkg: pkg.Types, Info: pkg.Info}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
			for _, d := range pass.diags {
				if !suppress(d) {
					out = append(out, d)
				}
			}
		}
		for _, dir := range directives {
			if !dir.used {
				out = append(out, Diagnostic{Pos: pkg.Fset.Position(dir.pos), Analyzer: LintName,
					Message: fmt.Sprintf("lint:ignore for %s suppresses nothing; remove it", strings.Join(dir.names, ","))})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// All returns the graphlint analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer,
		GuardedByAnalyzer,
		IterCloseAnalyzer,
		KeyencodeAnalyzer,
		LockedReturnAnalyzer,
		LockOrderAnalyzer,
		NilSafeAnalyzer,
		NotifyOrderAnalyzer,
		SpanEndAnalyzer,
	}
}

// typeIs reports whether t (unaliased, through one pointer) is the named
// type pkgPath.name. Aliases (e.g. graphgen.Value = relstore.Value)
// resolve to the same named type.
func typeIs(t types.Type, pkgPath, name string) bool {
	if t == nil {
		return false
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == pkgPath && n.Obj().Name() == name
}

// calleeFunc resolves a call expression to the *types.Func it invokes
// (method or package function), or nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	case *ast.Ident:
		obj = info.Uses[fun]
	}
	f, _ := obj.(*types.Func)
	return f
}

// isPkgFunc reports whether f is the package-level function pkgPath.name
// (not a method).
func isPkgFunc(f *types.Func, pkgPath, name string) bool {
	if f == nil || f.Pkg() == nil {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return false
	}
	return f.Pkg().Path() == pkgPath && f.Name() == name
}

// isMethod reports whether f is the method typePkg.typeName.name.
func isMethod(f *types.Func, typePkg, typeName, name string) bool {
	if f == nil || f.Name() != name {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return typeIs(sig.Recv().Type(), typePkg, typeName)
}

// rootIdent returns the leftmost identifier of a selector/index/slice
// chain (x in x.y[i].z), or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// funcUnits yields every function body in the file — declarations and
// function literals — each as an independent unit: stmts of a nested
// literal are excluded from the enclosing unit, so lock/taint state never
// leaks across goroutine or closure boundaries.
func funcUnits(file *ast.File, fn func(name string, body *ast.BlockStmt)) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.FuncDecl:
			if d.Body != nil {
				fn(d.Name.Name, d.Body)
			}
		case *ast.FuncLit:
			fn("func literal", d.Body)
		}
		return true
	})
}

// inspectUnit walks body but does not descend into nested function
// literals (they are separate units).
func inspectUnit(body *ast.BlockStmt, fn func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return fn(n)
	})
}
