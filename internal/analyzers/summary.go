package analyzers

// The shared interprocedural layer behind guardedby and lockorder: guard
// annotations parsed from struct-field comments, a per-package index of
// function declarations, and per-function lock summaries — which locks a
// function acquires (transitively), which it holds on exit or releases
// for its caller, and which it requires held on entry — computed to
// fixpoint over the package call graph so mutually recursive helpers
// converge.
//
// Lock identity is textual and receiver-relative. At a call site or
// access site a lock is the rendered path of its owner expression plus
// the field name ("lv.mu", "s.sessMu"); in a summary it is the bare
// field name, valid only for paths rooted at the receiver. Translating
// between the two at call boundaries ("x.flush()" + summary {mu} ->
// "x.mu") is what makes the summaries composable without alias
// analysis. The approximation is deliberate: two variables denoting the
// same struct are different paths, and a lock reached through a
// non-receiver base can never be summarized — those sites are checked
// (and reported) directly instead.
//
// Control flow is simulated per statement, branch-aware: if/else arms
// merge by intersection (an arm that returns drops out), loop bodies run
// once and merge with the pre-state, and a deferred unlock holds its
// lock to function exit without counting as held-at-exit. Function
// literals passed directly as call arguments (iterator callbacks,
// sort.Slice comparators, worker-pool bodies) are simulated inline with
// the held set at the call site — they run before the call returns, so
// the enclosing critical section still covers them. Every other literal
// (go, defer, assigned, returned, stored) escapes the critical section
// and is simulated with nothing held.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Annotation grammar (struct-field and func-doc comments):
//
//	// graphlint:guardedby <field>       field is read/written only while
//	//                                   the sibling mutex <field> is held
//	// graphlint:guardedby external:<n>  field is serialized by a lock that
//	//                                   lives outside this package (named
//	//                                   <n> for documentation); enforced as
//	//                                   "mutated only from methods of the
//	//                                   declaring package"
//	// graphlint:requires <field>[,...]  on a func: callers must hold the
//	//                                   receiver's mutex field(s); the body
//	//                                   is checked assuming they are held
const (
	guardedByMarker = "graphlint:guardedby"
	requiresMarker  = "graphlint:requires"
	externalPrefix  = "external:"
)

// lockMode orders how strongly a lock is held: a write hold (Lock)
// satisfies a read need, a read hold (RLock) does not satisfy a write
// need.
type lockMode int

const (
	modeNone lockMode = iota
	modeRead
	modeWrite
)

func (m lockMode) String() string {
	switch m {
	case modeRead:
		return "read"
	case modeWrite:
		return "write"
	}
	return "none"
}

// guardInfo is one parsed graphlint:guardedby annotation.
type guardInfo struct {
	field    string // annotated field name, for diagnostics
	lock     string // sibling mutex field name ("" for external guards)
	external string // external serialization domain ("" for sibling guards)
}

// funcInfo is one function or method declaration of the package under
// analysis.
type funcInfo struct {
	obj       *types.Func
	decl      *ast.FuncDecl
	recv      string              // receiver identifier ("" for functions and unnamed receivers)
	annotated map[string]lockMode // explicit graphlint:requires entries
	sum       *lockSummary
}

// lockSummary is the interprocedural abstract of one function, keyed by
// receiver-relative lock field names.
type lockSummary struct {
	// acquires: locks this function, or anything it transitively calls,
	// may take at some point (not necessarily still held on return).
	acquires map[string]lockMode
	// exitHeld: net acquisitions — locks held on every return that were
	// not held on entry (the acquire()-style helper shape).
	exitHeld map[string]lockMode
	// exitReleased: net releases — locks the function unlocks on behalf
	// of its caller.
	exitReleased map[string]bool
	// requires: locks that must be held on entry: explicit annotations
	// plus requirements inferred from guarded accesses and callee
	// requirements reached through the receiver.
	requires map[string]lockMode
}

func newSummary() *lockSummary {
	return &lockSummary{
		acquires:     map[string]lockMode{},
		exitHeld:     map[string]lockMode{},
		exitReleased: map[string]bool{},
		requires:     map[string]lockMode{},
	}
}

func modesEqual(a, b map[string]lockMode) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func summaryEqual(a, b *lockSummary) bool {
	if len(a.exitReleased) != len(b.exitReleased) {
		return false
	}
	for k := range a.exitReleased {
		if !b.exitReleased[k] {
			return false
		}
	}
	return modesEqual(a.acquires, b.acquires) &&
		modesEqual(a.exitHeld, b.exitHeld) &&
		modesEqual(a.requires, b.requires)
}

func copyModes(m map[string]lockMode) map[string]lockMode {
	out := make(map[string]lockMode, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func sortedNames[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// pkgIndex is the shared interprocedural view of one package.
type pkgIndex struct {
	fset   *token.FileSet
	info   *types.Info
	pkg    *types.Package
	guards map[*types.Var]guardInfo
	funcs  map[*types.Func]*funcInfo
	order  []*funcInfo // declaration order, for deterministic fixpoint sweeps
}

// buildIndex collects guard and requires annotations and the function
// declarations of the package. Malformed annotations are reported through
// report when it is non-nil (guardedby owns those diagnostics; lockorder
// passes nil to avoid duplicates).
func buildIndex(pass *Pass, report func(pos token.Pos, format string, args ...any)) *pkgIndex {
	idx := &pkgIndex{
		fset:   pass.Fset,
		info:   pass.Info,
		pkg:    pass.Pkg,
		guards: map[*types.Var]guardInfo{},
		funcs:  map[*types.Func]*funcInfo{},
	}
	if report == nil {
		report = func(token.Pos, string, ...any) {}
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if ok {
				idx.collectGuards(st, report)
			}
			return true
		})
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.Info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			fi := &funcInfo{obj: obj, decl: fd, annotated: map[string]lockMode{}}
			if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
				if name := fd.Recv.List[0].Names[0].Name; name != "_" {
					fi.recv = name
				}
			}
			idx.collectRequires(fi, report)
			idx.funcs[obj] = fi
			idx.order = append(idx.order, fi)
		}
	}
	return idx
}

// directiveArg extracts "// graphlint:<marker> <arg>" from a comment
// group.
func directiveArg(cg *ast.CommentGroup, marker string) (string, token.Pos, bool) {
	if cg == nil {
		return "", token.NoPos, false
	}
	for _, c := range cg.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if rest, ok := strings.CutPrefix(text, marker); ok {
			return strings.TrimSpace(rest), c.Pos(), true
		}
	}
	return "", token.NoPos, false
}

// collectGuards parses the guardedby annotations of one struct type and
// validates sibling locks.
func (idx *pkgIndex) collectGuards(st *ast.StructType, report func(pos token.Pos, format string, args ...any)) {
	for _, field := range st.Fields.List {
		arg, pos, ok := directiveArg(field.Doc, guardedByMarker)
		if !ok {
			arg, pos, ok = directiveArg(field.Comment, guardedByMarker)
		}
		if !ok {
			continue
		}
		if len(field.Names) == 0 {
			report(pos, "graphlint:guardedby cannot annotate an embedded field")
			continue
		}
		g := guardInfo{field: field.Names[0].Name}
		if ext, isExt := strings.CutPrefix(arg, externalPrefix); isExt {
			if ext == "" {
				report(pos, "graphlint:guardedby external: needs a lock name")
				continue
			}
			g.external = ext
		} else {
			if arg == "" {
				report(pos, "graphlint:guardedby needs a sibling mutex field name")
				continue
			}
			if !siblingMutex(idx.info, st, arg) {
				report(pos, "graphlint:guardedby %s: %q is not a sibling sync.Mutex/RWMutex field", g.field, arg)
				continue
			}
			g.lock = arg
		}
		for _, name := range field.Names {
			if v, _ := idx.info.Defs[name].(*types.Var); v != nil {
				gi := g
				gi.field = name.Name
				idx.guards[v] = gi
			}
		}
	}
}

// siblingMutex reports whether st declares a field named name of type
// sync.Mutex or sync.RWMutex (value or pointer).
func siblingMutex(info *types.Info, st *ast.StructType, name string) bool {
	for _, f := range st.Fields.List {
		for _, n := range f.Names {
			if n.Name != name {
				continue
			}
			obj := info.Defs[n]
			if obj == nil {
				return false
			}
			return typeIs(obj.Type(), "sync", "Mutex") || typeIs(obj.Type(), "sync", "RWMutex")
		}
	}
	return false
}

// collectRequires parses a graphlint:requires annotation on a function
// declaration. Required locks must be mutex fields of the receiver's
// struct; a requirement is always a write hold.
func (idx *pkgIndex) collectRequires(fi *funcInfo, report func(pos token.Pos, format string, args ...any)) {
	arg, pos, ok := directiveArg(fi.decl.Doc, requiresMarker)
	if !ok {
		return
	}
	if arg == "" {
		report(pos, "graphlint:requires needs a comma-separated list of receiver mutex fields")
		return
	}
	for _, name := range strings.Split(arg, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if !receiverMutexField(fi.obj, name) {
			report(pos, "graphlint:requires %s: the receiver has no sync.Mutex/RWMutex field %q", fi.obj.Name(), name)
			continue
		}
		fi.annotated[name] = modeWrite
	}
}

// receiverMutexField reports whether fn's receiver struct has a mutex
// field of the given name.
func receiverMutexField(fn *types.Func, name string) bool {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	t := types.Unalias(sig.Recv().Type())
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	st, _ := t.Underlying().(*types.Struct)
	if st == nil {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() == name {
			return typeIs(f.Type(), "sync", "Mutex") || typeIs(f.Type(), "sync", "RWMutex")
		}
	}
	return false
}

// computeSummaries runs the summary inference to fixpoint, in
// declaration order per sweep. requires and acquires only grow, so the
// iteration converges; the bound is a backstop.
func (idx *pkgIndex) computeSummaries() {
	for _, fi := range idx.order {
		fi.sum = newSummary()
		fi.sum.requires = copyModes(fi.annotated)
	}
	for range 20 {
		changed := false
		for _, fi := range idx.order {
			sc := idx.newSim(fi, true, nil)
			sc.inferred = copyModes(fi.sum.requires)
			ns := sc.run()
			if !summaryEqual(ns, fi.sum) {
				fi.sum = ns
				changed = true
			}
		}
		if !changed {
			break
		}
	}
}

// simCtx simulates one function body. In summary mode (infer=true) unmet
// receiver-rooted needs become inferred entry requirements; in check
// mode (reportf set) they are diagnostics.
type simCtx struct {
	idx      *pkgIndex
	fi       *funcInfo
	infer    bool
	reportf  func(pos token.Pos, format string, args ...any)
	escaped  bool // inside an escaping function literal: nothing may be assumed held
	inferred map[string]lockMode
	acquires map[string]lockMode
	released map[string]bool
	deferRel map[string]bool
	exits    []map[string]lockMode
	reported map[string]bool
}

type simState struct {
	held map[string]lockMode
	dead bool // all paths through this state returned or branched away
}

func (st *simState) clone() *simState {
	held := make(map[string]lockMode, len(st.held))
	for k, v := range st.held {
		held[k] = v
	}
	return &simState{held: held, dead: st.dead}
}

// mergeInto folds other into st by intersection: a lock is held after a
// join only if every live inbound path holds it, at the weakest mode.
func (st *simState) mergeInto(other *simState) {
	if other.dead {
		return
	}
	if st.dead {
		st.held, st.dead = other.held, false
		return
	}
	for k, v := range st.held {
		ov, ok := other.held[k]
		if !ok {
			delete(st.held, k)
		} else if ov < v {
			st.held[k] = ov
		}
	}
}

func (idx *pkgIndex) newSim(fi *funcInfo, infer bool, reportf func(pos token.Pos, format string, args ...any)) *simCtx {
	return &simCtx{
		idx:      idx,
		fi:       fi,
		infer:    infer,
		reportf:  reportf,
		inferred: map[string]lockMode{},
		acquires: map[string]lockMode{},
		released: map[string]bool{},
		deferRel: map[string]bool{},
		reported: map[string]bool{},
	}
}

// run simulates the function from the given summary's entry assumptions
// and returns the resulting summary.
func (sc *simCtx) run() *lockSummary {
	st := &simState{held: map[string]lockMode{}}
	if !sc.infer && sc.fi.recv != "" {
		// Check mode assumes the (converged) entry requirements hold.
		for name, mode := range sc.fi.sum.requires {
			st.held[sc.fi.recv+"."+name] = mode
		}
	}
	sc.simBlock(st, sc.fi.decl.Body.List)
	if !st.dead {
		sc.exits = append(sc.exits, st.held)
	}
	return sc.finalize()
}

func (sc *simCtx) finalize() *lockSummary {
	sum := newSummary()
	sum.acquires = sc.acquires
	sum.requires = sc.inferred
	// Merge the exit states by intersection, then apply deferred
	// releases: a deferred unlock cancels a net acquisition, and if the
	// lock was never taken here it releases the caller's hold.
	var merged map[string]lockMode
	for i, e := range sc.exits {
		if i == 0 {
			merged = e
			continue
		}
		for k, v := range merged {
			ev, ok := e[k]
			if !ok {
				delete(merged, k)
			} else if ev < v {
				merged[k] = ev
			}
		}
	}
	for p := range sc.deferRel {
		if _, ok := merged[p]; ok {
			delete(merged, p)
		} else if name, ok := recvRel(sc.fi.recv, p); ok {
			sc.released[name] = true
		}
	}
	for p, m := range merged {
		if name, ok := recvRel(sc.fi.recv, p); ok {
			sum.exitHeld[name] = m
		}
	}
	sum.exitReleased = sc.released
	return sum
}

// recvRel maps a lock path rooted at the receiver ("lv.mu") to its
// receiver-relative name ("mu").
func recvRel(recv, path string) (string, bool) {
	if recv == "" {
		return "", false
	}
	rest, ok := strings.CutPrefix(path, recv+".")
	if !ok || rest == "" || strings.Contains(rest, ".") {
		return "", false
	}
	return rest, true
}

func (sc *simCtx) simBlock(st *simState, stmts []ast.Stmt) {
	for _, s := range stmts {
		sc.simStmt(st, s)
	}
}

func (sc *simCtx) simStmt(st *simState, stmt ast.Stmt) {
	if stmt == nil || st.dead {
		return
	}
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		sc.simBlock(st, s.List)
	case *ast.IfStmt:
		sc.simStmt(st, s.Init)
		sc.simExpr(st, s.Cond)
		then := st.clone()
		sc.simBlock(then, s.Body.List)
		els := st.clone()
		sc.simStmt(els, s.Else)
		*st = *then
		st.mergeInto(els)
	case *ast.ForStmt:
		sc.simStmt(st, s.Init)
		sc.simExpr(st, s.Cond)
		body := st.clone()
		sc.simBlock(body, s.Body.List)
		sc.simStmt(body, s.Post)
		// Zero iterations is always possible; one body pass merged with
		// the pre-state is the (single-pass) loop approximation.
		if s.Cond != nil {
			st.mergeInto(body)
		} else if !body.dead {
			// `for {` only exits via break/return inside the body; keep
			// the pre-state (break paths were pruned conservatively).
			_ = body
		}
	case *ast.RangeStmt:
		sc.simExpr(st, s.X)
		body := st.clone()
		sc.simBlock(body, s.Body.List)
		st.mergeInto(body)
	case *ast.SwitchStmt:
		sc.simStmt(st, s.Init)
		sc.simExpr(st, s.Tag)
		sc.simClauses(st, s.Body.List, hasDefaultClause(s.Body.List))
	case *ast.TypeSwitchStmt:
		sc.simStmt(st, s.Init)
		sc.simStmt(st, s.Assign)
		sc.simClauses(st, s.Body.List, hasDefaultClause(s.Body.List))
	case *ast.SelectStmt:
		// Exactly one clause runs (a default clause is itself a clause).
		sc.simClauses(st, s.Body.List, true)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			sc.simExpr(st, r)
		}
		if !sc.escaped {
			sc.exits = append(sc.exits, st.clone().held)
		}
		st.dead = true
	case *ast.BranchStmt:
		// break/continue/goto: prune the path; joins fall back to the
		// conservative pre-state kept by the enclosing construct.
		st.dead = true
	case *ast.DeferStmt:
		sc.simDefer(st, s.Call)
	case *ast.GoStmt:
		sc.simAsyncCall(st, s.Call)
	case *ast.LabeledStmt:
		sc.simStmt(st, s.Stmt)
	case *ast.EmptyStmt:
	default:
		// Simple statements: assignments, expressions, sends, inc/dec,
		// declarations — position-ordered event extraction.
		sc.simExpr(st, stmt)
	}
}

func hasDefaultClause(clauses []ast.Stmt) bool {
	for _, c := range clauses {
		switch cl := c.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				return true
			}
		case *ast.CommClause:
			if cl.Comm == nil {
				return true
			}
		}
	}
	return false
}

// simClauses simulates switch/select clause bodies independently from
// the pre-state and joins the outcomes; without a default clause the
// pre-state itself stays a possible outcome.
func (sc *simCtx) simClauses(st *simState, clauses []ast.Stmt, exhaustive bool) {
	pre := st.clone()
	var outcome *simState
	for _, c := range clauses {
		branch := pre.clone()
		switch cl := c.(type) {
		case *ast.CaseClause:
			for _, e := range cl.List {
				sc.simExpr(branch, e)
			}
			sc.simBlock(branch, cl.Body)
		case *ast.CommClause:
			sc.simStmt(branch, cl.Comm)
			sc.simBlock(branch, cl.Body)
		}
		if outcome == nil {
			outcome = branch
		} else {
			outcome.mergeInto(branch)
		}
	}
	if outcome == nil {
		return
	}
	if !exhaustive {
		outcome.mergeInto(pre)
	}
	*st = *outcome
}

// simDefer handles a defer: a deferred direct unlock holds its lock to
// function exit (and is excluded from exitHeld); a deferred function
// literal escapes the critical section; anything else only evaluates
// its arguments now.
func (sc *simCtx) simDefer(st *simState, call *ast.CallExpr) {
	if path, _, method, ok := mutexOp(sc.idx.info, call); ok {
		if method == "Unlock" || method == "RUnlock" {
			sc.deferRel[path] = true
		}
		return
	}
	sc.simAsyncCall(st, call)
}

// simAsyncCall evaluates a go/defer call's operands now but applies no
// callee effects: the call body runs outside the current position.
func (sc *simCtx) simAsyncCall(st *simState, call *ast.CallExpr) {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		sc.simEscapedClosure(lit)
	}
	for _, a := range call.Args {
		sc.simExpr(st, a)
	}
}

// simInlineClosure simulates a function literal passed directly as a
// call argument: it runs before the call returns, under whatever the
// caller holds at the call site.
func (sc *simCtx) simInlineClosure(st *simState, lit *ast.FuncLit) {
	saveExits, saveDefer := sc.exits, sc.deferRel
	sc.exits, sc.deferRel = nil, map[string]bool{}
	inner := st.clone()
	inner.dead = false
	sc.simBlock(inner, lit.Body.List)
	sc.exits, sc.deferRel = saveExits, saveDefer
}

// simEscapedClosure simulates a literal that outlives the statement
// (go, defer, assigned, returned, stored): nothing is held on entry and
// no requirement can be inferred for it.
func (sc *simCtx) simEscapedClosure(lit *ast.FuncLit) {
	if sc.infer {
		return // escaping bodies contribute nothing to the summary
	}
	saveExits, saveDefer, saveEsc := sc.exits, sc.deferRel, sc.escaped
	sc.exits, sc.deferRel, sc.escaped = nil, map[string]bool{}, true
	sc.simBlock(&simState{held: map[string]lockMode{}}, lit.Body.List)
	sc.exits, sc.deferRel, sc.escaped = saveExits, saveDefer, saveEsc
}

// simExpr extracts and applies the events of one simple statement or
// expression in source order: mutex operations, guarded-field accesses,
// calls to summarized functions, and nested function literals.
func (sc *simCtx) simExpr(st *simState, node ast.Node) {
	if node == nil || st.dead {
		return
	}
	writes := map[ast.Expr]bool{}
	inline := map[*ast.FuncLit]bool{}
	ast.Inspect(node, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			if inline[x] {
				sc.simInlineClosure(st, x)
			} else {
				sc.simEscapedClosure(x)
			}
			return false
		case *ast.AssignStmt:
			for _, l := range x.Lhs {
				markWriteSpine(writes, l)
			}
		case *ast.IncDecStmt:
			markWriteSpine(writes, x.X)
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				// Taking the address lets the value escape its guard;
				// require the strongest hold at the site.
				markWriteSpine(writes, x.X)
			}
		case *ast.CallExpr:
			if path, name, method, ok := mutexOp(sc.idx.info, x); ok {
				sc.applyMutexOp(st, path, name, method)
				return true
			}
			if isBuiltinDelete(sc.idx.info, x) && len(x.Args) > 0 {
				markWriteSpine(writes, x.Args[0])
			}
			if lit, ok := ast.Unparen(x.Fun).(*ast.FuncLit); ok {
				inline[lit] = true
			}
			for _, a := range x.Args {
				if lit, ok := ast.Unparen(a).(*ast.FuncLit); ok {
					inline[lit] = true
				}
			}
			sc.applyCall(st, x)
		case *ast.SelectorExpr:
			sc.checkAccess(st, x, writes[x])
		}
		return true
	})
}

// markWriteSpine marks every selector on the access path of a write
// target: `s.sessions[k] = v`, `lv.stats.Rebuilds++`, and `delete(m.routes, r)`
// all mutate the state behind the annotated field on their spine.
func markWriteSpine(writes map[ast.Expr]bool, e ast.Expr) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			writes[x] = true
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return
		}
	}
}

func isBuiltinDelete(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "delete"
}

// mutexOp classifies a call as a sync.Mutex/RWMutex method on a lock
// path, returning the rendered owner path ("lv.mu"), the lock's field
// name, and the method.
func mutexOp(info *types.Info, call *ast.CallExpr) (path, name, method string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel || !isSyncLockMethod(info, sel) {
		return "", "", "", false
	}
	base := ast.Unparen(sel.X)
	path = types.ExprString(base)
	switch b := base.(type) {
	case *ast.SelectorExpr:
		name = b.Sel.Name
	case *ast.Ident:
		name = b.Name
	default:
		name = path
	}
	return path, name, sel.Sel.Name, true
}

func (sc *simCtx) applyMutexOp(st *simState, path, name, method string) {
	switch method {
	case "Lock", "TryLock":
		st.held[path] = modeWrite
		if sc.acquires[name] < modeWrite {
			sc.acquires[name] = modeWrite
		}
	case "RLock", "TryRLock":
		if st.held[path] < modeRead {
			st.held[path] = modeRead
		}
		if sc.acquires[name] < modeRead {
			sc.acquires[name] = modeRead
		}
	case "Unlock", "RUnlock":
		if _, held := st.held[path]; held {
			delete(st.held, path)
		} else if rel, ok := recvRel(sc.fi.recv, path); ok && !sc.escaped {
			// Releasing a lock this function never took: it unlocks on
			// behalf of the caller.
			sc.released[rel] = true
		}
	}
}

// applyCall checks a callee's entry requirements against the held set
// and applies its net effects, translating receiver-relative summary
// names through the call's receiver expression.
func (sc *simCtx) applyCall(st *simState, call *ast.CallExpr) {
	f := calleeFunc(sc.idx.info, call)
	if f == nil {
		return
	}
	fi := sc.idx.funcs[f]
	if fi == nil || fi.sum == nil {
		return
	}
	basePath := ""
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		basePath = types.ExprString(ast.Unparen(sel.X))
	}
	for name, mode := range fi.sum.acquires {
		if sc.acquires[name] < mode {
			sc.acquires[name] = mode
		}
	}
	if basePath == "" {
		return // requirements and net effects are receiver-relative
	}
	for _, name := range sortedNames(fi.sum.requires) {
		mode := fi.sum.requires[name]
		if st.held[basePath+"."+name] < mode {
			sc.unmet(call.Pos(), basePath, name, mode,
				fmt.Sprintf("call to %s, which needs %s.%s %s-held on entry", f.Name(), basePath, name, mode))
		}
	}
	for name := range fi.sum.exitReleased {
		delete(st.held, basePath+"."+name)
	}
	for name, mode := range fi.sum.exitHeld {
		if st.held[basePath+"."+name] < mode {
			st.held[basePath+"."+name] = mode
		}
	}
}

// checkAccess handles one selector that may resolve to a guarded field.
func (sc *simCtx) checkAccess(st *simState, sel *ast.SelectorExpr, write bool) {
	v, _ := sc.idx.info.Uses[sel.Sel].(*types.Var)
	if v == nil {
		return
	}
	g, ok := sc.idx.guards[v]
	if !ok || g.external != "" {
		return // external guards are enforced by the write-site rule
	}
	basePath := types.ExprString(ast.Unparen(sel.X))
	need := modeRead
	verb := "read"
	if write {
		need = modeWrite
		verb = "written"
	}
	have := st.held[basePath+"."+g.lock]
	if have >= need {
		return
	}
	if have == modeRead && need == modeWrite {
		sc.report(sel.Pos(), "%s.%s is %s while %s.%s is only read-held (RLock); writes need Lock",
			basePath, g.field, verb, basePath, g.lock)
		return
	}
	sc.unmet(sel.Pos(), basePath, g.lock, need,
		fmt.Sprintf("%s.%s is %s without %s.%s held (graphlint:guardedby %s)",
			basePath, g.field, verb, basePath, g.lock, g.lock))
}

// unmet resolves an unsatisfied lock need: inferred as an entry
// requirement when the lock is rooted at the receiver (summary mode),
// reported otherwise.
func (sc *simCtx) unmet(pos token.Pos, basePath, name string, mode lockMode, what string) {
	if !sc.escaped && basePath == sc.fi.recv && sc.fi.recv != "" {
		if sc.infer {
			if sc.inferred[name] < mode {
				sc.inferred[name] = mode
			}
			return
		}
		// Check mode runs with the converged requirements held, so a
		// receiver-rooted need only lands here if inference was cut off
		// (escaping literal handled above); fall through and report.
	}
	if sc.escaped {
		what += " — this function literal escapes the enclosing critical section (go/defer/stored); acquire the lock inside it"
	}
	sc.report(pos, "%s", what)
}

func (sc *simCtx) report(pos token.Pos, format string, args ...any) {
	if sc.reportf == nil {
		return
	}
	key := fmt.Sprintf("%d:%s", pos, fmt.Sprintf(format, args...))
	if sc.reported[key] {
		return
	}
	sc.reported[key] = true
	sc.reportf(pos, format, args...)
}
