package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
)

// obsPath is the package under the nil-receiver contract.
const obsPath = "graphgen/internal/obs"

// NilSafeAnalyzer enforces internal/obs's tracing-off contract (PR 9):
// a nil *Trace or *Span is the disabled-tracing fast path, so every
// exported pointer-receiver method on those types must begin with a
// nil-receiver guard. Two guard shapes are accepted, matching the
// package's idiom:
//
//	if s == nil { return ... }     // early return; extra conditions may
//	                               // be OR'ed after the nil test
//	if s != nil { ... }            // sole statement of the body; extra
//	                               // conditions may be AND'ed after
//
// In both shapes the nil comparison must be the leftmost operand —
// "s.ended || s == nil" dereferences before it guards. Methods with an
// unnamed (or blank) receiver cannot dereference it and are trivially
// safe; unexported methods are the guarded methods' internals and are
// exempt.
var NilSafeAnalyzer = &Analyzer{
	Name: "nilsafe",
	Doc:  "internal/obs: exported *Trace/*Span methods begin with a nil-receiver guard",
	Run:  runNilSafe,
}

func runNilSafe(pass *Pass) error {
	if pass.Pkg.Path() != obsPath {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() || fd.Recv == nil {
				continue
			}
			recvType, ok := tracedReceiver(pass, fd)
			if !ok {
				continue
			}
			recvName := ""
			if len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
				recvName = fd.Recv.List[0].Names[0].Name
			}
			if recvName == "" || recvName == "_" {
				continue // an unnamed receiver can never be dereferenced
			}
			if len(fd.Body.List) == 0 || nilGuarded(fd.Body, recvName) {
				continue
			}
			pass.Reportf(fd.Name.Pos(),
				"exported method (*%s).%s must begin with a nil-receiver guard: a nil *Trace/*Span is the tracing-off fast path",
				recvType, fd.Name.Name)
		}
	}
	return nil
}

// tracedReceiver reports whether fd's receiver is a pointer to this
// package's Trace or Span type, returning the type name.
func tracedReceiver(pass *Pass, fd *ast.FuncDecl) (string, bool) {
	obj, _ := pass.Info.Defs[fd.Name].(*types.Func)
	if obj == nil {
		return "", false
	}
	sig, _ := obj.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return "", false
	}
	t := types.Unalias(sig.Recv().Type())
	p, ok := t.(*types.Pointer)
	if !ok {
		return "", false
	}
	n, ok := types.Unalias(p.Elem()).(*types.Named)
	if !ok || n.Obj().Pkg() != pass.Pkg {
		return "", false
	}
	name := n.Obj().Name()
	if name != "Trace" && name != "Span" {
		return "", false
	}
	return name, true
}

// nilGuarded reports whether the body starts with an accepted guard.
func nilGuarded(body *ast.BlockStmt, recv string) bool {
	ifs, ok := body.List[0].(*ast.IfStmt)
	if !ok || ifs.Init != nil {
		return false
	}
	// Early-return shape: leftmost `recv == nil`, then-branch returns.
	if leftmostNilCmp(ifs.Cond, recv, token.EQL) && branchReturns(ifs.Body) {
		return true
	}
	// Positive shape: leftmost `recv != nil`, and the if is the entire
	// body (nothing after it can dereference an unguarded receiver).
	if leftmostNilCmp(ifs.Cond, recv, token.NEQ) && len(body.List) == 1 {
		return true
	}
	return false
}

// leftmostNilCmp reports whether the leftmost operand of cond's
// top-level &&/|| chain is `recv <op> nil`.
func leftmostNilCmp(cond ast.Expr, recv string, op token.Token) bool {
	for {
		b, ok := ast.Unparen(cond).(*ast.BinaryExpr)
		if !ok {
			return false
		}
		if b.Op == token.LOR || b.Op == token.LAND {
			cond = b.X
			continue
		}
		if b.Op != op {
			return false
		}
		x, ok := ast.Unparen(b.X).(*ast.Ident)
		if !ok || x.Name != recv {
			return false
		}
		y, ok := ast.Unparen(b.Y).(*ast.Ident)
		return ok && y.Name == "nil"
	}
}

// branchReturns reports whether a guard's then-branch ends the method:
// its last statement is a return (a bare `return` body included).
func branchReturns(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	_, ok := b.List[len(b.List)-1].(*ast.ReturnStmt)
	return ok
}
