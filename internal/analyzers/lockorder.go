package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
)

// serverPath is the package the lockorder invariants belong to.
const serverPath = "graphgen/internal/server"

// LockOrderAnalyzer enforces internal/server's two locking contracts
// (established in PR 3 and documented on Server):
//
//  1. Lock order is dbMu before sessMu. Acquiring dbMu — directly or by
//     calling a method that does, at any call depth — while sessMu is
//     held inverts the order and can deadlock against Close.
//  2. Everything that touches relational tables runs inside a dbMu
//     critical section: relstore.Table mutators and stats
//     (Insert/Delete/DeleteWhere/CreateIndex/NDistinct/IndexedColumns),
//     DB loads, Engine extractions, and LiveGraph.Close (which cancels
//     change-log subscriptions that mutations walk concurrently — the
//     exact race PR 3 fixed).
//
// Within one function body the analysis is position-based: a mutex is
// held from its Lock to the next non-deferred Unlock (a deferred Unlock
// holds to function end). Across functions it consumes the shared
// interprocedural layer (summary.go): the per-function lock summaries,
// computed to fixpoint over the package call graph, make "acquires
// dbMu" transitive, and a "// graphlint:requires dbMu" annotation lets
// a helper assume dbMu on entry — its body is checked as if locked, and
// every call to it outside a dbMu critical section is the finding.
var LockOrderAnalyzer = &Analyzer{
	Name: "lockorder",
	Doc:  "internal/server: dbMu before sessMu; table/extraction/live-close calls only under dbMu",
	Run:  runLockOrder,
}

// lockEvent is one position-ordered occurrence inside a function body.
type lockEvent struct {
	pos  token.Pos
	kind int
	call *ast.CallExpr
	name string // rendering for diagnostics
}

const (
	evSessLock = iota
	evSessUnlock
	evDbLock
	evDbUnlock
	evDbLockerCall // call to a function that (transitively) acquires dbMu
	evRequiresDb   // call to a function annotated graphlint:requires dbMu
	evTableOp      // relational access that requires dbMu
)

func runLockOrder(pass *Pass) error {
	if pass.Pkg.Path() != serverPath {
		return nil
	}
	// The shared interprocedural layer: transitive acquire sets make
	// "calls a method that takes dbMu" work at any depth, not just one
	// (the index reports no annotation diagnostics here — guardedby
	// owns those).
	idx := buildIndex(pass, nil)
	idx.computeSummaries()

	for _, fi := range idx.order {
		lockOrderUnit(pass, idx, fi.decl.Body, fi.annotated["dbMu"] != modeNone)
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				lockOrderUnit(pass, idx, lit.Body, false)
			}
			return true
		})
	}
	return nil
}

func lockOrderUnit(pass *Pass, idx *pkgIndex, body *ast.BlockStmt, entryDbHeld bool) {
	var events []lockEvent
	add := func(pos token.Pos, kind int, call *ast.CallExpr, name string) {
		events = append(events, lockEvent{pos: pos, kind: kind, call: call, name: name})
	}
	deferred := map[*ast.CallExpr]bool{}
	inspectUnit(body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			deferred[d.Call] = true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if kind, _ := classifyMutexCall(pass.Info, call); kind >= 0 {
			// A deferred Unlock runs at function end: recording no event
			// leaves the mutex held for the rest of the position scan,
			// which is exactly the deferred semantics.
			if !deferred[call] {
				add(call.Pos(), kind, call, "")
			}
			return true
		}
		f := calleeFunc(pass.Info, call)
		if f == nil {
			return true
		}
		if fi := idx.funcs[f]; fi != nil {
			if fi.annotated["dbMu"] != modeNone {
				add(call.Pos(), evRequiresDb, call, f.Name())
			}
			if fi.sum != nil && fi.sum.acquires["dbMu"] != modeNone {
				add(call.Pos(), evDbLockerCall, call, f.Name())
				return true
			}
		}
		if name, ok := tableOpName(f); ok {
			add(call.Pos(), evTableOp, call, name)
		}
		return true
	})

	// Position-ordered simulation. AST inspection already visits in
	// source order within one unit.
	sessHeld, dbHeld := false, entryDbHeld
	for _, ev := range events {
		switch ev.kind {
		case evSessLock:
			sessHeld = true
		case evSessUnlock:
			sessHeld = false
		case evDbLock:
			if sessHeld {
				pass.Reportf(ev.pos, "dbMu acquired while sessMu is held; the lock order is dbMu before sessMu (see Server.Close)")
			}
			dbHeld = true
		case evDbUnlock:
			dbHeld = false
		case evDbLockerCall:
			if sessHeld {
				pass.Reportf(ev.pos, "%s acquires dbMu and must not be called while sessMu is held; the lock order is dbMu before sessMu", ev.name)
			}
		case evRequiresDb:
			if !dbHeld {
				pass.Reportf(ev.pos, "%s requires dbMu held on entry (graphlint:requires) and is called outside a dbMu critical section", ev.name)
			}
		case evTableOp:
			if !dbHeld {
				pass.Reportf(ev.pos, "%s outside a dbMu critical section; relational tables and live-session teardown are serialized on dbMu", ev.name)
			}
		}
	}
}

// classifyMutexCall classifies a call as a dbMu/sessMu lock event. The
// mutex identity is the field name (dbMu/sessMu on any receiver), the
// method must be a real sync.Mutex/RWMutex method. isDefer distinguishes
// Unlock calls so the caller can apply deferred semantics.
func classifyMutexCall(info *types.Info, call *ast.CallExpr) (kind int, isUnlock bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !isSyncLockMethod(info, sel) {
		return -1, false
	}
	field, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	var fieldName string
	if ok {
		fieldName = field.Sel.Name
	} else if id, isId := ast.Unparen(sel.X).(*ast.Ident); isId {
		fieldName = id.Name
	} else {
		return -1, false
	}
	var sess bool
	switch fieldName {
	case "dbMu":
	case "sessMu":
		sess = true
	default:
		return -1, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "TryLock", "TryRLock":
		if sess {
			return evSessLock, false
		}
		return evDbLock, false
	case "Unlock", "RUnlock":
		if sess {
			return evSessUnlock, true
		}
		return evDbUnlock, true
	}
	return -1, false
}

// isSyncLockMethod reports whether sel resolves to a method of
// sync.Mutex or sync.RWMutex.
func isSyncLockMethod(info *types.Info, sel *ast.SelectorExpr) bool {
	f, _ := info.Uses[sel.Sel].(*types.Func)
	if f == nil {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return typeIs(sig.Recv().Type(), "sync", "Mutex") || typeIs(sig.Recv().Type(), "sync", "RWMutex")
}

// tableOpName reports whether f is a call that must run under dbMu, and
// returns a human-readable name for it.
func tableOpName(f *types.Func) (string, bool) {
	type op struct{ pkg, typ, name string }
	ops := []op{
		{relstorePath, "Table", "Insert"},
		{relstorePath, "Table", "Delete"},
		{relstorePath, "Table", "DeleteWhere"},
		{relstorePath, "Table", "CreateIndex"},
		{relstorePath, "Table", "NDistinct"},
		{relstorePath, "Table", "IndexedColumns"},
		{relstorePath, "DB", "Create"},
		{relstorePath, "DB", "Attach"},
		{relstorePath, "DB", "LoadCSV"},
		{relstorePath, "DB", "LoadCSVFiles"},
		{"graphgen", "Engine", "Extract"},
		{"graphgen", "Engine", "ExtractLive"},
		{"graphgen", "Engine", "ExtractProgram"},
		{"graphgen", "LiveGraph", "Close"},
	}
	for _, o := range ops {
		if isMethod(f, o.pkg, o.typ, o.name) {
			return "(" + o.typ + ")." + o.name, true
		}
	}
	return "", false
}
