package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
)

// serverPath is the package the lockorder invariants belong to.
const serverPath = "graphgen/internal/server"

// LockOrderAnalyzer enforces internal/server's two locking contracts
// (established in PR 3 and documented on Server):
//
//  1. Lock order is dbMu before sessMu. Acquiring dbMu — directly or by
//     calling a method that does — while sessMu is held inverts the order
//     and can deadlock against Close.
//  2. Everything that touches relational tables runs inside a dbMu
//     critical section: relstore.Table mutators and stats
//     (Insert/Delete/DeleteWhere/CreateIndex/NDistinct/IndexedColumns),
//     DB loads, Engine extractions, and LiveGraph.Close (which cancels
//     change-log subscriptions that mutations walk concurrently — the
//     exact race PR 3 fixed).
//
// The analysis is intra-procedural and position-based: within one
// function body, a mutex is held from its Lock to the next non-deferred
// Unlock (a deferred Unlock holds to function end). That approximates
// control flow, but matches how the server code is written — straight-line
// critical sections — and catches every historical bug shape.
var LockOrderAnalyzer = &Analyzer{
	Name: "lockorder",
	Doc:  "internal/server: dbMu before sessMu; table/extraction/live-close calls only under dbMu",
	Run:  runLockOrder,
}

// lockEvent is one position-ordered occurrence inside a function body.
type lockEvent struct {
	pos  token.Pos
	kind int
	call *ast.CallExpr
	name string // rendering for diagnostics
}

const (
	evSessLock = iota
	evSessUnlock
	evDbLock
	evDbUnlock
	evDbLockerCall // call to a method known to acquire dbMu
	evTableOp      // relational access that requires dbMu
)

func runLockOrder(pass *Pass) error {
	if pass.Pkg.Path() != serverPath {
		return nil
	}
	// Pre-pass: methods of this package whose bodies acquire dbMu
	// directly; calling one of them while sessMu is held is an order
	// inversion one level removed (the closeLive shape).
	dbLockers := map[types.Object]bool{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			locks := false
			inspectUnit(fd.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if kind, _ := classifyMutexCall(pass.Info, call); kind == evDbLock {
						locks = true
					}
				}
				return true
			})
			if locks {
				if obj := pass.Info.Defs[fd.Name]; obj != nil {
					dbLockers[obj] = true
				}
			}
		}
	}

	for _, file := range pass.Files {
		funcUnits(file, func(_ string, body *ast.BlockStmt) {
			lockOrderUnit(pass, body, dbLockers)
		})
	}
	return nil
}

func lockOrderUnit(pass *Pass, body *ast.BlockStmt, dbLockers map[types.Object]bool) {
	var events []lockEvent
	add := func(pos token.Pos, kind int, call *ast.CallExpr, name string) {
		events = append(events, lockEvent{pos: pos, kind: kind, call: call, name: name})
	}
	deferred := map[*ast.CallExpr]bool{}
	inspectUnit(body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			deferred[d.Call] = true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if kind, _ := classifyMutexCall(pass.Info, call); kind >= 0 {
			// A deferred Unlock runs at function end: recording no event
			// leaves the mutex held for the rest of the position scan,
			// which is exactly the deferred semantics.
			if !deferred[call] {
				add(call.Pos(), kind, call, "")
			}
			return true
		}
		f := calleeFunc(pass.Info, call)
		if f == nil {
			return true
		}
		if dbLockers[f] {
			add(call.Pos(), evDbLockerCall, call, f.Name())
			return true
		}
		if name, ok := tableOpName(f); ok {
			add(call.Pos(), evTableOp, call, name)
		}
		return true
	})

	// Position-ordered simulation. AST inspection already visits in
	// source order within one unit.
	sessHeld, dbHeld := false, false
	for _, ev := range events {
		switch ev.kind {
		case evSessLock:
			sessHeld = true
		case evSessUnlock:
			sessHeld = false
		case evDbLock:
			if sessHeld {
				pass.Reportf(ev.pos, "dbMu acquired while sessMu is held; the lock order is dbMu before sessMu (see Server.Close)")
			}
			dbHeld = true
		case evDbUnlock:
			dbHeld = false
		case evDbLockerCall:
			if sessHeld {
				pass.Reportf(ev.pos, "%s acquires dbMu and must not be called while sessMu is held; the lock order is dbMu before sessMu", ev.name)
			}
		case evTableOp:
			if !dbHeld {
				pass.Reportf(ev.pos, "%s outside a dbMu critical section; relational tables and live-session teardown are serialized on dbMu", ev.name)
			}
		}
	}
}

// classifyMutexCall classifies a call as a dbMu/sessMu lock event. The
// mutex identity is the field name (dbMu/sessMu on any receiver), the
// method must be a real sync.Mutex/RWMutex method. isDefer distinguishes
// Unlock calls so the caller can apply deferred semantics.
func classifyMutexCall(info *types.Info, call *ast.CallExpr) (kind int, isUnlock bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !isSyncLockMethod(info, sel) {
		return -1, false
	}
	field, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	var fieldName string
	if ok {
		fieldName = field.Sel.Name
	} else if id, isId := ast.Unparen(sel.X).(*ast.Ident); isId {
		fieldName = id.Name
	} else {
		return -1, false
	}
	var sess bool
	switch fieldName {
	case "dbMu":
	case "sessMu":
		sess = true
	default:
		return -1, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "TryLock", "TryRLock":
		if sess {
			return evSessLock, false
		}
		return evDbLock, false
	case "Unlock", "RUnlock":
		if sess {
			return evSessUnlock, true
		}
		return evDbUnlock, true
	}
	return -1, false
}

// isSyncLockMethod reports whether sel resolves to a method of
// sync.Mutex or sync.RWMutex.
func isSyncLockMethod(info *types.Info, sel *ast.SelectorExpr) bool {
	f, _ := info.Uses[sel.Sel].(*types.Func)
	if f == nil {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return typeIs(sig.Recv().Type(), "sync", "Mutex") || typeIs(sig.Recv().Type(), "sync", "RWMutex")
}

// tableOpName reports whether f is a call that must run under dbMu, and
// returns a human-readable name for it.
func tableOpName(f *types.Func) (string, bool) {
	type op struct{ pkg, typ, name string }
	ops := []op{
		{relstorePath, "Table", "Insert"},
		{relstorePath, "Table", "Delete"},
		{relstorePath, "Table", "DeleteWhere"},
		{relstorePath, "Table", "CreateIndex"},
		{relstorePath, "Table", "NDistinct"},
		{relstorePath, "Table", "IndexedColumns"},
		{relstorePath, "DB", "Create"},
		{relstorePath, "DB", "Attach"},
		{relstorePath, "DB", "LoadCSV"},
		{relstorePath, "DB", "LoadCSVFiles"},
		{"graphgen", "Engine", "Extract"},
		{"graphgen", "Engine", "ExtractLive"},
		{"graphgen", "Engine", "ExtractProgram"},
		{"graphgen", "LiveGraph", "Close"},
	}
	for _, o := range ops {
		if isMethod(f, o.pkg, o.typ, o.name) {
			return "(" + o.typ + ")." + o.name, true
		}
	}
	return "", false
}
