package analyzers

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The loader's failure modes must be hard errors: a pattern that loads
// nothing, a target that does not compile, or a dependency with no
// export data silently passing would turn graphlint into a lint that
// lints nothing.

func writeTestModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, content := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const loadTestGoMod = "module loadtest\n\ngo 1.22\n"

func TestLoadPackagesEmptyModule(t *testing.T) {
	dir := writeTestModule(t, map[string]string{"go.mod": loadTestGoMod})
	_, err := LoadPackages(dir, "./...")
	if err == nil {
		t.Fatal("LoadPackages on a module with no Go files returned nil error")
	}
	if !strings.Contains(err.Error(), "no analyzable Go packages") {
		t.Fatalf("error does not explain that nothing matched: %v", err)
	}
}

// TestLoadPackagesTestOnlyPackage: a package whose only sources are test
// files has nothing for the non-test analysis set either.
func TestLoadPackagesTestOnlyPackage(t *testing.T) {
	dir := writeTestModule(t, map[string]string{
		"go.mod":      loadTestGoMod,
		"p/p_test.go": "package p\n\nimport \"testing\"\n\nfunc TestNothing(t *testing.T) {}\n",
	})
	_, err := LoadPackages(dir, "./...")
	if err == nil {
		t.Fatal("LoadPackages on a test-only module returned nil error")
	}
	if !strings.Contains(err.Error(), "no analyzable Go packages") {
		t.Fatalf("error does not explain that nothing matched: %v", err)
	}
}

func TestLoadPackagesSyntaxError(t *testing.T) {
	dir := writeTestModule(t, map[string]string{
		"go.mod": loadTestGoMod,
		"p/p.go": "package p\n\nfunc broken( {\n",
	})
	if _, err := LoadPackages(dir, "./..."); err == nil {
		t.Fatal("LoadPackages on a syntactically invalid target returned nil error")
	}
}

func TestLoadPackagesMissingDep(t *testing.T) {
	dir := writeTestModule(t, map[string]string{
		"go.mod": loadTestGoMod,
		"p/p.go": "package p\n\nimport \"loadtest/nonexistent\"\n\nvar _ = nonexistent.Thing\n",
	})
	if _, err := LoadPackages(dir, "./..."); err == nil {
		t.Fatal("LoadPackages with an unresolvable import returned nil error")
	}
}

// TestTypeCheckNoExportData: an import that resolves to no export data
// is an importer error, not a silently incomplete type-check.
func TestTypeCheckNoExportData(t *testing.T) {
	fset := token.NewFileSet()
	imp := exportImporter(fset, map[string]string{})
	dir := writeTestModule(t, map[string]string{
		"p.go": "package p\n\nimport \"fmt\"\n\nvar _ = fmt.Sprint\n",
	})
	_, err := typeCheck(fset, imp, "loadtest/p", []string{filepath.Join(dir, "p.go")})
	if err == nil {
		t.Fatal("type-checking with empty export data returned nil error")
	}
	if !strings.Contains(err.Error(), "no export data") {
		t.Fatalf("error does not mention missing export data: %v", err)
	}
}
