package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
)

// spanPkgs are the traced execution layers: the packages that start
// obs spans around operators, rules, strata, and delta rounds. Only
// there does the End obligation below apply.
var spanPkgs = map[string]bool{
	"graphgen/internal/relstore":    true,
	"graphgen/internal/extract":     true,
	"graphgen/internal/datalogeval": true,
}

// SpanEndAnalyzer flags execution-trace spans that are started and then
// abandoned. A span that is never ended keeps its wall-clock open (its
// duration is taken at End) and, for container spans, leaves the trace's
// container stack pointing at it — every span started afterwards
// attaches under the leaked container, silently corrupting the tree
// EXPLAIN/ANALYZE reports.
//
// The span contract (internal/obs) discharges the obligation in one of
// three ways: the holder calls End itself (directly or deferred), hands
// the span to an owner that ends it (any call taking it as an argument —
// relstore's traced() wrapper ends the span at iterator Close), or
// passes it along (returns it, stores it in a variable, field, or
// composite literal, or captures it in a closure). Detection is
// positional and structural, like iterclose: within one function unit, a
// local assigned from a call whose static type has the span shape — a
// method set with End() and SetStrategy(string), both niladic-result —
// must be followed by at least one discharging use. Annotating the span
// (AddRows, SetStrategy, Set) does not discharge it: that is precisely
// the "measured the work, forgot the End" leak. Intentional leaks take a
// //lint:ignore spanend <why>.
var SpanEndAnalyzer = &Analyzer{
	Name: "spanend",
	Doc:  "trace spans must be ended or handed off on every path in relstore/extract/datalogeval",
	Run:  runSpanEnd,
}

func runSpanEnd(pass *Pass) error {
	if !spanPkgs[pass.Pkg.Path()] {
		return nil
	}
	for _, file := range pass.Files {
		funcUnits(file, func(_ string, body *ast.BlockStmt) {
			spanEndUnit(pass, body)
		})
	}
	return nil
}

// isSpanType reports whether t's method set has the span shape: End()
// with no parameters or results and SetStrategy(string) with no results.
// Structural matching keeps the check honest without importing obs into
// the analyzer (and lets fixtures define their own span type).
func isSpanType(t types.Type) bool {
	if t == nil {
		return false
	}
	end := methodSig(t, "End")
	if end == nil || end.Params().Len() != 0 || end.Results().Len() != 0 {
		return false
	}
	ss := methodSig(t, "SetStrategy")
	return ss != nil && ss.Params().Len() == 1 && ss.Results().Len() == 0 &&
		isBasic(ss.Params().At(0).Type(), types.String)
}

func spanEndUnit(pass *Pass, body *ast.BlockStmt) {
	info := pass.Info

	// Acquisitions: span-typed locals assigned from a call result in this
	// unit (not inside nested closures — those are their own units).
	type acquire struct {
		obj  types.Object
		pos  token.Pos
		name string
	}
	var acquires []acquire
	inspectUnit(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) == 0 {
			return true
		}
		// Only call RHSs acquire: `a := b` aliases an existing
		// obligation, and `var sp *Span` holds nothing yet.
		fromCall := false
		for _, r := range as.Rhs {
			if _, ok := ast.Unparen(r).(*ast.CallExpr); ok {
				fromCall = true
			}
		}
		if !fromCall {
			return true
		}
		for _, l := range as.Lhs {
			id, ok := ast.Unparen(l).(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			if obj == nil || !isSpanType(obj.Type()) {
				continue
			}
			acquires = append(acquires, acquire{obj: obj, pos: id.Pos(), name: id.Name})
		}
		return true
	})
	if len(acquires) == 0 {
		return
	}

	// Discharging uses, by object and position. The walk descends into
	// nested function literals: capturing a span in a closure (e.g. a
	// deferred cleanup) hands it off.
	discharges := map[types.Object][]token.Pos{}
	record := func(e ast.Expr) {
		ast.Inspect(e, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if obj := info.Uses[id]; obj != nil {
				discharges[obj] = append(discharges[obj], id.Pos())
			}
			return true
		})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "End" {
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
					if obj := info.Uses[id]; obj != nil {
						discharges[obj] = append(discharges[obj], id.Pos())
					}
				}
			}
			for _, arg := range x.Args {
				record(arg)
			}
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				record(r)
			}
		case *ast.AssignStmt:
			// RHS uses alias or store the span; the LHS of its own
			// acquisition is a definition, not a use, so it never
			// self-discharges.
			for _, r := range x.Rhs {
				if _, ok := ast.Unparen(r).(*ast.CallExpr); ok {
					continue // call arguments are recorded above
				}
				record(r)
			}
		case *ast.CompositeLit:
			for _, el := range x.Elts {
				record(el)
			}
		}
		return true
	})

	for _, a := range acquires {
		ok := false
		for _, p := range discharges[a.obj] {
			if p > a.pos {
				ok = true
				break
			}
		}
		if !ok {
			pass.Reportf(a.pos, "span %s is started but never ended or handed off; call %s.End() (or defer it), pass it to an owner, or return it", a.name, a.name)
		}
	}
}
