package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
)

const relstorePath = "graphgen/internal/relstore"

// KeyencodeAnalyzer flags composite map/dedup keys built from
// relstore.Value (or row) data with fmt.Sprintf/Sprint, strings.Join, or
// manual string concatenation. Such keys are ambiguous the moment a
// string value contains the chosen separator — the PR 4 tuple-drop bug,
// where "a|b"+"c" and "a"+"b|c" collided in a dedup set. The single safe
// encoding is relstore.Value.AppendKey (length-prefixed), shared by the
// relational operators and the Datalog evaluator's tuple sets.
//
// Detection is taint-based within one function: strings derived from
// Value data (field reads, String() calls, carried through assignments)
// that pass through a composite builder and end up indexing a map (or as
// a map-literal key, or a delete() key) are reported at the build site.
var KeyencodeAnalyzer = &Analyzer{
	Name: "keyencode",
	Doc:  "composite keys over relstore.Value data must use Value.AppendKey, not Sprintf/Join/concatenation",
	Run:  runKeyencode,
}

func runKeyencode(pass *Pass) error {
	for _, file := range pass.Files {
		funcUnits(file, func(_ string, body *ast.BlockStmt) {
			keyencodeUnit(pass, body)
		})
	}
	return nil
}

// keyencodeUnit analyzes one function body.
func keyencodeUnit(pass *Pass, body *ast.BlockStmt) {
	info := pass.Info

	// carriers: objects holding string data derived from Value contents.
	carriers := map[types.Object]bool{}
	// composites: carrier objects whose value was built by a composite
	// builder (Sprintf/Sprint/Join/+), mapped to the build expression.
	composites := map[types.Object]ast.Expr{}

	// containsValueData reports whether any subexpression of e is typed
	// relstore.Value (directly, or as a slice/array/pointer element, so
	// whole rows count) or is a known carrier identifier.
	containsValueData := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if found {
				return false
			}
			ex, ok := n.(ast.Expr)
			if !ok {
				return true
			}
			if id, ok := ex.(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil && carriers[obj] {
					found = true
					return false
				}
			}
			if tv, ok := info.Types[ex]; ok && containsValueType(tv.Type) {
				found = true
				return false
			}
			return true
		})
		return found
	}

	// compositeBuilder classifies e as a composite string builder over
	// Value-derived data and names the builder, or returns "".
	compositeBuilder := func(e ast.Expr) string {
		switch x := ast.Unparen(e).(type) {
		case *ast.CallExpr:
			f := calleeFunc(info, x)
			switch {
			case isPkgFunc(f, "fmt", "Sprintf"), isPkgFunc(f, "fmt", "Sprint"), isPkgFunc(f, "fmt", "Sprintln"):
				if containsValueData(x) {
					return "fmt." + f.Name()
				}
			case isPkgFunc(f, "strings", "Join"):
				if containsValueData(x) {
					return "strings.Join"
				}
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD {
				if tv, ok := info.Types[x]; ok && isStringType(tv.Type) && containsValueData(x) {
					return "string concatenation"
				}
			}
		}
		return ""
	}

	report := func(e ast.Expr, builder string) {
		pass.Reportf(e.Pos(), "map key built from relstore.Value data with %s is ambiguous when a value contains the separator; encode each component with Value.AppendKey", builder)
	}

	// checkKeyUse flags e when it is a composite Value-derived builder or
	// an identifier whose value was built by one.
	reported := map[token.Pos]bool{}
	checkKeyUse := func(e ast.Expr) {
		e = ast.Unparen(e)
		if b := compositeBuilder(e); b != "" {
			if !reported[e.Pos()] {
				reported[e.Pos()] = true
				report(e, b)
			}
			return
		}
		if id, ok := e.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil {
				if build, ok := composites[obj]; ok {
					if !reported[build.Pos()] {
						reported[build.Pos()] = true
						report(build, "a "+obj.Name()+" key assembled above")
					}
				}
			}
		}
	}

	// Taint pass: propagate carrier/composite facts through assignments.
	// A couple of fixpoint rounds cover the loop-carried cases that occur
	// in practice (key accumulated across iterations).
	for range 3 {
		inspectUnit(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				root := rootIdent(lhs)
				if root == nil {
					continue
				}
				obj := info.Defs[root]
				if obj == nil {
					obj = info.Uses[root]
				}
				if obj == nil {
					continue
				}
				var rhs ast.Expr
				if len(as.Rhs) == len(as.Lhs) {
					rhs = as.Rhs[i]
				} else if len(as.Rhs) == 1 {
					rhs = as.Rhs[0]
				}
				if rhs == nil {
					continue
				}
				// s += expr is a concatenation build in disguise.
				if as.Tok == token.ADD_ASSIGN && containsValueData(rhs) {
					carriers[obj] = true
					if _, ok := composites[obj]; !ok {
						composites[obj] = rhs
					}
					continue
				}
				if b := compositeBuilder(rhs); b != "" {
					carriers[obj] = true
					if _, ok := composites[obj]; !ok {
						composites[obj] = rhs
					}
					continue
				}
				if isStringish(info, lhs) && containsValueData(rhs) {
					carriers[obj] = true
				}
			}
			return true
		})
	}

	// Use pass: find key positions.
	inspectUnit(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.IndexExpr:
			if tv, ok := info.Types[x.X]; ok {
				if _, isMap := types.Unalias(tv.Type).Underlying().(*types.Map); isMap {
					checkKeyUse(x.Index)
				}
			}
		case *ast.CallExpr:
			// delete(m, k)
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && len(x.Args) == 2 {
				if b, ok := pass.Info.Uses[id].(*types.Builtin); ok && b.Name() == "delete" {
					checkKeyUse(x.Args[1])
				}
			}
		case *ast.CompositeLit:
			if tv, ok := info.Types[x]; ok {
				if _, isMap := types.Unalias(tv.Type).Underlying().(*types.Map); isMap {
					for _, el := range x.Elts {
						if kv, ok := el.(*ast.KeyValueExpr); ok {
							checkKeyUse(kv.Key)
						}
					}
				}
			}
		}
		return true
	})
}

// containsValueType reports whether t is relstore.Value or a
// slice/array/pointer (transitively) of it.
func containsValueType(t types.Type) bool {
	for range 4 {
		if t == nil {
			return false
		}
		if typeIs(t, relstorePath, "Value") {
			return true
		}
		switch u := types.Unalias(t).Underlying().(type) {
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		case *types.Pointer:
			t = u.Elem()
		default:
			return false
		}
	}
	return false
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := types.Unalias(t).Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isStringish(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && isStringType(tv.Type)
}
