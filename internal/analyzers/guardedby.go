package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GuardedByAnalyzer verifies the annotated mutex-guard discipline, in
// the style of Clang's GUARDED_BY thread-safety analysis: every read or
// write of a struct field annotated "// graphlint:guardedby mu" must
// happen while the named sibling mutex is held — a write hold (Lock)
// for writes, at least a read hold (RLock) for reads.
//
// The check is interprocedural within the package: unlocked accesses
// through the receiver become inferred entry requirements that
// propagate to callers over the call-graph fixpoint (summary.go), so a
// helper called under the lock needs no annotation, while the unlocked
// call one or two levels up is the site that gets flagged. Exported
// functions must not rely on an inferred requirement — cross-package
// callers are never analyzed — so they either lock internally or carry
// an explicit "// graphlint:requires mu" annotation, which doubles as
// the documented contract.
//
// Fields annotated "guardedby external:<name>" are serialized by a lock
// that lives outside the declaring package (relstore's tables under the
// server's dbMu). Export data carries no comments, so holding cannot be
// checked across packages; what is enforced is the choke point: such
// fields may be mutated only from methods of the declaring package
// (closures nested in them included), keeping every mutation path on
// the externally-serialized surface.
//
// Known approximations, documented in docs/ARCHITECTURE.md: guard
// tracking is field-granular (state reached through an alias — e.g.
// re := m.routes[k]; re.count++ — is beyond it), TryLock is treated as
// acquired, loops are simulated single-pass, and composite literals
// (construction, before the value is shared) are exempt.
var GuardedByAnalyzer = &Analyzer{
	Name: "guardedby",
	Doc:  "annotated struct fields are accessed only with their guarding mutex held; external-guard fields mutate only via methods of their package",
	Run:  runGuardedBy,
}

func runGuardedBy(pass *Pass) error {
	idx := buildIndex(pass, pass.Reportf)
	annotated := len(idx.guards) > 0
	for _, fi := range idx.order {
		if len(fi.annotated) > 0 {
			annotated = true
		}
	}
	if !annotated {
		return nil // unannotated packages opt out entirely
	}
	idx.computeSummaries()
	for _, fi := range idx.order {
		sc := idx.newSim(fi, false, pass.Reportf)
		sc.run()
		if fi.obj.Exported() && fi.recv != "" {
			// An exported function's inferred requirement is invisible to
			// the cross-package callers that can actually violate it.
			for _, name := range sortedNames(fi.sum.requires) {
				if fi.annotated[name] == modeNone {
					pass.Reportf(fi.decl.Name.Pos(),
						"exported %s relies on callers holding %s; acquire it internally or annotate // graphlint:requires %s",
						fi.obj.Name(), name, name)
				}
			}
		}
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			checkExternalWrites(pass, idx, decl)
		}
	}
	return nil
}

// checkExternalWrites enforces the external-guard choke point: fields
// serialized outside the package may be mutated only from (closures
// nested in) methods of the declaring package.
func checkExternalWrites(pass *Pass, idx *pkgIndex, decl ast.Decl) {
	fd, isFn := decl.(*ast.FuncDecl)
	inMethod := isFn && fd.Recv != nil
	if inMethod {
		return
	}
	writes := map[ast.Expr]bool{}
	ast.Inspect(decl, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, l := range x.Lhs {
				markWriteSpine(writes, l)
			}
		case *ast.IncDecStmt:
			markWriteSpine(writes, x.X)
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				markWriteSpine(writes, x.X)
			}
		case *ast.CallExpr:
			if isBuiltinDelete(pass.Info, x) && len(x.Args) > 0 {
				markWriteSpine(writes, x.Args[0])
			}
		case *ast.SelectorExpr:
			if !writes[x] {
				return true
			}
			v, _ := pass.Info.Uses[x.Sel].(*types.Var)
			if v == nil {
				return true
			}
			if g, ok := idx.guards[v]; ok && g.external != "" {
				pass.Reportf(x.Pos(),
					"%s is serialized externally (graphlint:guardedby external:%s); mutate it only from methods of this package",
					g.field, g.external)
			}
		}
		return true
	})
}
