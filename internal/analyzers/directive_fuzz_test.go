package analyzers

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// FuzzDirectiveParse drives parseDirectives with arbitrary comment text.
// The invariants: parsing never panics, an accepted directive always has
// at least one known analyzer name and a non-empty justification, a
// comment is never both accepted and reported malformed, and rendering
// an accepted directive canonically re-parses to the same directive —
// the stability the stale-detection ratchet depends on.
func FuzzDirectiveParse(f *testing.F) {
	for _, seed := range []string{
		"lint:ignore lockedreturn lock handed to the caller",
		"lint:ignore lockedreturn\tjustification after a tab",
		"lint:ignore lockedreturn,lockorder two analyzers, one reason",
		"lint:ignore",
		"lint:ignore lockedreturn",
		"lint:ignore lockedretrun misspelled",
		"lint:ignoreXYZ not a directive at all",
		"lint:ignore  lockedreturn   extra   spacing",
		"not a directive",
		"lint:ignore lint the pseudo-analyzer is suppressible too",
	} {
		f.Add(seed)
	}
	known := map[string]bool{"lockedreturn": true, "lockorder": true, "guardedby": true, "lint": true}
	parseOne := func(t *testing.T, comment string) ([]*ignoreDirective, []Diagnostic) {
		t.Helper()
		src := "package p\n\nfunc f() {\n\t_ = 1 //" + comment + "\n}\n"
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "fuzz.go", src, parser.ParseComments)
		if err != nil {
			return nil, nil
		}
		var reports []Diagnostic
		dirs := parseDirectives(fset, file, known, func(d Diagnostic) { reports = append(reports, d) })
		return dirs, reports
	}
	f.Fuzz(func(t *testing.T, comment string) {
		if strings.ContainsAny(comment, "\n\r") {
			return // cannot survive inside a line comment
		}
		dirs, reports := parseOne(t, comment)
		if len(dirs) > 0 && len(reports) > 0 {
			t.Fatalf("comment %q both accepted (%d directives) and reported malformed (%v)", comment, len(dirs), reports)
		}
		for _, d := range dirs {
			if len(d.names) == 0 {
				t.Fatalf("accepted directive %q has no analyzer names", comment)
			}
			for _, n := range d.names {
				if !known[n] {
					t.Fatalf("accepted directive %q names unknown analyzer %q", comment, n)
				}
			}
			if d.reason == "" {
				t.Fatalf("accepted directive %q has no justification", comment)
			}
			canonical := "lint:ignore " + strings.Join(d.names, ",") + " " + d.reason
			redirs, rereports := parseOne(t, canonical)
			if len(redirs) != 1 || len(rereports) != 0 {
				t.Fatalf("canonical re-rendering %q did not re-parse cleanly: %d directives, %v", canonical, len(redirs), rereports)
			}
			if strings.Join(redirs[0].names, ",") != strings.Join(d.names, ",") || redirs[0].reason != d.reason {
				t.Fatalf("canonical re-rendering %q drifted: got %v %q, want %v %q",
					canonical, redirs[0].names, redirs[0].reason, d.names, d.reason)
			}
		}
	})
}
