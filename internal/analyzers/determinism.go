package analyzers

import (
	"go/ast"
	"go/types"
	"strings"
)

// deterministicPkgs are the packages under the byte-identical-output
// contract: the data generators (same seed, same tables, at any worker
// count), the worker-pool substrate every chunk-ordered merge builds on,
// and the chunk-merging consumers (workload snapshots, BSP supersteps,
// dedup conversions, vertex-centric runs, incremental delta application).
var deterministicPkgs = map[string]bool{
	"graphgen/internal/datagen":       true,
	"graphgen/internal/parallel":      true,
	"graphgen/internal/workload":      true,
	"graphgen/internal/bsp":           true,
	"graphgen/internal/dedup":         true,
	"graphgen/internal/vertexcentric": true,
	"graphgen/internal/incremental":   true,
}

// DeterminismAnalyzer forbids the three nondeterminism sources that have
// no place in the deterministic packages:
//
//   - wall-clock reads (time.Now/Since/Until): output must be a pure
//     function of the seed and inputs;
//   - the global math/rand source (rand.Intn, rand.Shuffle, ...): all
//     randomness flows through explicitly seeded *rand.Rand values
//     (rand.New(rand.NewSource(seed))), or it differs between runs;
//   - appending to a slice that outlives the loop while ranging over a
//     map: Go randomizes map iteration order, so the append order — and
//     anything derived from it (weighted picks, virtual-node numbering,
//     emitted rows) — changes run to run. The accepted idiom is
//     collect-then-sort, which the analyzer recognizes: a sort call
//     (package sort, slices.Sort*, or a repo-local *Sort* helper) after
//     the loop in the same function exempts it.
var DeterminismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc:  "deterministic packages: no wall clocks, no global rand, no ordered appends from map iteration",
	Run:  runDeterminism,
}

func runDeterminism(pass *Pass) error {
	if !deterministicPkgs[pass.Pkg.Path()] {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			f := calleeFunc(pass.Info, call)
			if f == nil || f.Pkg() == nil {
				return true
			}
			sig, _ := f.Type().(*types.Signature)
			if sig == nil || sig.Recv() != nil {
				return true // methods on *rand.Rand etc. are seeded and fine
			}
			switch f.Pkg().Path() {
			case "time":
				switch f.Name() {
				case "Now", "Since", "Until":
					pass.Reportf(call.Pos(), "time.%s in a deterministic package; output must be a pure function of seed and inputs", f.Name())
				}
			case "math/rand", "math/rand/v2":
				// Constructors are how the seeded path starts; every other
				// package-level function draws from the global source.
				if !strings.HasPrefix(f.Name(), "New") {
					pass.Reportf(call.Pos(), "global math/rand source (rand.%s) in a deterministic package; draw from a seeded *rand.Rand (rand.New(rand.NewSource(seed)))", f.Name())
				}
			}
			return true
		})
		funcUnits(file, func(_ string, body *ast.BlockStmt) {
			mapOrderUnit(pass, body)
		})
	}
	return nil
}

// mapOrderUnit flags ordered appends fed by map iteration within one
// function body.
func mapOrderUnit(pass *Pass, body *ast.BlockStmt) {
	// Sort calls, by position: a sort after the loop blesses the
	// collect-then-sort idiom.
	var sortPositions []int
	inspectUnit(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := calleeFunc(pass.Info, call)
		if f == nil || f.Pkg() == nil {
			return true
		}
		// Package sort, slices.Sort*, and repo-local sort helpers
		// (mergeSortBy and friends) all count as blessing sorts.
		if f.Pkg().Path() == "sort" || (f.Pkg().Path() == "slices" && strings.HasPrefix(f.Name(), "Sort")) || strings.Contains(f.Name(), "Sort") {
			sortPositions = append(sortPositions, int(call.Pos()))
		}
		return true
	})
	sortedAfter := func(pos int) bool {
		for _, sp := range sortPositions {
			if sp > pos {
				return true
			}
		}
		return false
	}

	inspectUnit(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.Info.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := types.Unalias(tv.Type).Underlying().(*types.Map); !isMap {
			return true
		}
		inspectUnit(rng.Body, func(m ast.Node) bool {
			as, ok := m.(*ast.AssignStmt)
			if !ok || len(as.Rhs) != 1 {
				return true
			}
			call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok {
				return true
			}
			if b, ok := pass.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
				return true
			}
			if len(call.Args) == 0 {
				return true
			}
			root := rootIdent(call.Args[0])
			if root == nil {
				return true
			}
			obj := pass.Info.Uses[root]
			if obj == nil {
				obj = pass.Info.Defs[root]
			}
			// Only slices that outlive the loop order-capture the map
			// iteration; a slice scoped inside the loop body restarts
			// every iteration.
			if obj == nil || (obj.Pos() >= rng.Pos() && obj.Pos() < rng.End()) {
				return true
			}
			if sortedAfter(int(rng.End())) {
				return true
			}
			pass.Reportf(call.Pos(), "append to %s while ranging over a map captures random iteration order; iterate sorted keys or sort the result before it is consumed", root.Name)
			return true
		})
		return true
	})
}
