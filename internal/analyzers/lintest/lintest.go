// Package lintest is graphlint's analysistest-style harness: it
// type-checks fixture files under a chosen import path, runs one analyzer
// through the full suppression pipeline, and compares the diagnostics
// against the fixtures' expectation comments.
//
// Expectations are written on the line the diagnostic lands on:
//
//	seen[strings.Join(parts, "|")] = true // want `keyencode: .*AppendKey`
//
// Each backquoted segment after "// want" is a regular expression matched
// against "<analyzer>: <message>". Every diagnostic must match a want on
// its line and every want must be matched by a diagnostic, so fixtures
// double as both false-negative and false-positive tests.
//
// The import path matters: several analyzers are scoped (lockorder to
// internal/server, notifyorder's intra rules to internal/relstore,
// determinism to the deterministic packages), and Run type-checks the
// fixtures *as* the given path so those rules fire on testdata that never
// lives in the real package.
package lintest

import (
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"graphgen/internal/analyzers"
)

// Run checks every .go file in dir as package asPath, applies the
// analyzer, and asserts the diagnostics match the // want comments.
func Run(t *testing.T, a *analyzers.Analyzer, asPath, dir string) {
	t.Helper()
	diags := Diagnostics(t, a, asPath, dir)
	wants := parseWants(t, dir)

	for _, d := range diags {
		text := d.Analyzer + ": " + d.Message
		if !claimWant(wants, filepath.Base(d.Pos.Filename), d.Pos.Line, text) {
			t.Errorf("unexpected diagnostic at %s:%d: %s", filepath.Base(d.Pos.Filename), d.Pos.Line, text)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("no diagnostic at %s:%d matching %q", w.file, w.line, w.re.String())
		}
	}
}

// Diagnostics type-checks the fixture directory as asPath and returns the
// surviving diagnostics (after suppression), for tests that assert on
// them directly instead of via want comments.
func Diagnostics(t *testing.T, a *analyzers.Analyzer, asPath, dir string) []analyzers.Diagnostic {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no fixture files in %s (%v)", dir, err)
	}
	sort.Strings(files)
	pkg, err := analyzers.CheckFiles(moduleRoot(t, dir), asPath, files)
	if err != nil {
		t.Fatalf("loading fixtures %s as %s: %v", dir, asPath, err)
	}
	diags, err := analyzers.RunAnalyzers([]*analyzers.Package{pkg}, []*analyzers.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}
	return diags
}

// moduleRoot walks up from dir to the enclosing go.mod.
func moduleRoot(t *testing.T, dir string) string {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d
		}
		parent := filepath.Dir(d)
		if parent == d {
			t.Fatalf("no go.mod above %s", abs)
		}
		d = parent
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

var wantRe = regexp.MustCompile("// want ((?:`[^`]*`\\s*)+)$")
var wantSegRe = regexp.MustCompile("`([^`]*)`")

func parseWants(t *testing.T, dir string) []*want {
	t.Helper()
	files, _ := filepath.Glob(filepath.Join(dir, "*.go"))
	sort.Strings(files)
	var out []*want
	for _, name := range files {
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			for _, seg := range wantSegRe.FindAllStringSubmatch(m[1], -1) {
				re, err := regexp.Compile(seg[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", name, i+1, seg[1], err)
				}
				out = append(out, &want{file: filepath.Base(name), line: i + 1, re: re})
			}
		}
	}
	return out
}

// claimWant marks and returns the first unused want on (file, line) whose
// pattern matches text.
func claimWant(wants []*want, file string, line int, text string) bool {
	for _, w := range wants {
		if !w.used && w.file == file && w.line == line && w.re.MatchString(text) {
			w.used = true
			return true
		}
	}
	return false
}
