package analyzers

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list -deps -export -json` in dir over the given
// patterns and returns the decoded package stream. -export compiles each
// package (build-cached) and records the path of its export data, which
// is how the loader resolves imports without golang.org/x/tools: target
// packages are re-parsed from source for their ASTs, everything they
// import is loaded from compiler export data.
func goList(dir string, patterns []string) ([]*listedPkg, error) {
	args := append([]string{"list", "-deps", "-export",
		"-json=ImportPath,Dir,GoFiles,Export,Standard,DepOnly,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listedPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter builds a types.Importer that resolves import paths
// through the export files recorded by goList.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		e, ok := exports[path]
		if !ok || e == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(e)
	})
}

// LoadPackages loads, parses, and type-checks the module packages matched
// by patterns (go list syntax, e.g. "./..."), rooted at dir. Test files
// are not analyzed, mirroring go vet's default package set — tests
// construct adversarial inputs (separator-laden keys, deliberate
// collisions) that the invariants are about surviving, not avoiding.
func LoadPackages(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	var targets []*listedPkg
	for _, p := range listed {
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		exports[p.ImportPath] = p.Export
		if !p.Standard && !p.DepOnly {
			targets = append(targets, p)
		}
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var out []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(t.GoFiles))
		for i, f := range t.GoFiles {
			files[i] = filepath.Join(t.Dir, f)
		}
		pkg, err := typeCheck(fset, imp, t.ImportPath, files)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	// A pattern that matches nothing analyzable must be a hard error, not
	// a silent exit-0: a mistyped pattern in CI would otherwise report the
	// tree clean without checking a single file.
	if len(out) == 0 {
		return nil, fmt.Errorf("no analyzable Go packages match %s (%d matched, none with non-test Go files)",
			strings.Join(patterns, " "), len(targets))
	}
	return out, nil
}

// CheckFiles parses and type-checks the given source files as one package
// under the import path asPath, resolving imports through the module
// rooted at moduleDir. The test harness (lintest) uses this to load
// testdata fixtures as if they were the package an analyzer is scoped to
// — e.g. a fixture checked as "graphgen/internal/server" exercises the
// lockorder rules without living in the real server package.
func CheckFiles(moduleDir, asPath string, files []string) (*Package, error) {
	fset := token.NewFileSet()
	parsed, err := parseAll(fset, files)
	if err != nil {
		return nil, err
	}
	// Resolve exactly the fixture's imports (plus their deps) to export
	// data. "unsafe" is synthesized by the importer itself.
	seen := map[string]bool{}
	var imports []string
	for _, f := range parsed {
		for _, spec := range f.Imports {
			path := strings.Trim(spec.Path.Value, `"`)
			if path != "unsafe" && !seen[path] {
				seen[path] = true
				imports = append(imports, path)
			}
		}
	}
	exports := map[string]string{}
	if len(imports) > 0 {
		listed, err := goList(moduleDir, imports)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Error != nil {
				return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
			}
			exports[p.ImportPath] = p.Export
		}
	}
	return typeCheckParsed(fset, exportImporter(fset, exports), asPath, parsed)
}

func parseAll(fset *token.FileSet, files []string) ([]*ast.File, error) {
	parsed := make([]*ast.File, len(files))
	for i, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		parsed[i] = f
	}
	return parsed, nil
}

func typeCheck(fset *token.FileSet, imp types.Importer, path string, files []string) (*Package, error) {
	parsed, err := parseAll(fset, files)
	if err != nil {
		return nil, err
	}
	return typeCheckParsed(fset, imp, path, parsed)
}

func typeCheckParsed(fset *token.FileSet, imp types.Importer, path string, parsed []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, fset, parsed, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("type-checking %s: %v", path, typeErrs[0])
	}
	return &Package{Path: path, Fset: fset, Files: parsed, Types: tpkg, Info: info}, nil
}
