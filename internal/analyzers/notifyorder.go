package analyzers

import (
	"go/ast"
	"go/token"
)

// NotifyOrderAnalyzer enforces the relstore mutation contract established
// in PR 2 and sharpened in PR 5:
//
//   - Every Table method that writes the row storage must call notify, so
//     indexes, the statistics catalog, and change-log subscribers observe
//     the mutation. A mutator that skips notify silently desynchronizes
//     every live graph and secondary index.
//   - Inside Table.notify, index maintenance (Index.apply, the loop over
//     t.indexes) must complete before any change-log subscriber runs:
//     subscribers (live-graph delta evaluation) probe indexes and must
//     always see post-change state.
//   - Subscribers are invoked only from notify — never directly from a
//     mutation path, which would bypass the ordering guarantee.
//   - Outside internal/relstore, writing Table.Rows directly bypasses the
//     entire contract; callers must use Insert/Delete/DeleteWhere.
var NotifyOrderAnalyzer = &Analyzer{
	Name: "notifyorder",
	Doc:  "relstore mutators route through Table.notify; notify updates indexes before subscribers run",
	Run:  runNotifyOrder,
}

func runNotifyOrder(pass *Pass) error {
	if pass.Pkg.Path() == relstorePath {
		runNotifyOrderIntra(pass)
		return nil
	}
	// Cross-package half: direct writes to relstore.Table.Rows.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for _, lhs := range as.Lhs {
				if sel := rowsFieldSel(pass, lhs); sel != nil {
					pass.Reportf(as.Pos(), "direct write to (relstore.Table).Rows bypasses notify — indexes, change-log subscribers, and stats go stale; use Insert/Delete/DeleteWhere")
				}
			}
			return true
		})
	}
	return nil
}

// rowsFieldSel returns the selector if lhs is (or indexes/slices into)
// the Rows field of a relstore.Table.
func rowsFieldSel(pass *Pass, lhs ast.Expr) *ast.SelectorExpr {
	for {
		switch x := ast.Unparen(lhs).(type) {
		case *ast.IndexExpr:
			lhs = x.X
		case *ast.SliceExpr:
			lhs = x.X
		case *ast.SelectorExpr:
			if x.Sel.Name == "Rows" {
				if tv, ok := pass.Info.Types[x.X]; ok && typeIs(tv.Type, relstorePath, "Table") {
					return x
				}
			}
			return nil
		default:
			return nil
		}
	}
}

func runNotifyOrderIntra(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil {
				continue
			}
			if len(fd.Recv.List) == 0 || !typeIs(pass.Info.TypeOf(fd.Recv.List[0].Type), relstorePath, "Table") {
				continue
			}
			checkTableMethod(pass, fd)
		}
	}
}

func checkTableMethod(pass *Pass, fd *ast.FuncDecl) {
	var (
		rowsWrites  []token.Pos
		notifyCalls []token.Pos
		subsInvokes []token.Pos
		indexApplys []token.Pos
	)
	// Range variables bound to t.subs / t.indexes elements; calling one
	// is a subscriber invocation / index-maintenance step.
	subsVars := map[string]bool{}
	indexVars := map[string]bool{}
	inspectUnit(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.RangeStmt:
			field := tableFieldName(pass, x.X)
			if v, ok := x.Value.(*ast.Ident); ok && v.Name != "_" {
				if field == "subs" {
					subsVars[v.Name] = true
				}
				if field == "indexes" {
					indexVars[v.Name] = true
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if sel := rowsFieldSel(pass, lhs); sel != nil {
					rowsWrites = append(rowsWrites, x.Pos())
				}
			}
		case *ast.CallExpr:
			switch fun := ast.Unparen(x.Fun).(type) {
			case *ast.SelectorExpr:
				if fun.Sel.Name == "notify" {
					if tv, ok := pass.Info.Types[fun.X]; ok && typeIs(tv.Type, relstorePath, "Table") {
						notifyCalls = append(notifyCalls, x.Pos())
					}
				}
				if fun.Sel.Name == "apply" {
					if tv, ok := pass.Info.Types[fun.X]; ok && typeIs(tv.Type, relstorePath, "Index") {
						indexApplys = append(indexApplys, x.Pos())
					}
				}
				// t.subs[i](ch): Fun is an IndexExpr handled below.
			case *ast.Ident:
				if subsVars[fun.Name] {
					subsInvokes = append(subsInvokes, x.Pos())
				}
				if indexVars[fun.Name] {
					indexApplys = append(indexApplys, x.Pos())
				}
			case *ast.IndexExpr:
				if tableFieldName(pass, fun.X) == "subs" {
					subsInvokes = append(subsInvokes, x.Pos())
				}
			}
		}
		return true
	})

	if fd.Name.Name == "notify" {
		if len(subsInvokes) > 0 {
			if len(indexApplys) == 0 {
				pass.Reportf(subsInvokes[0], "notify runs change-log subscribers without maintaining indexes; indexes must be brought up to date first")
			} else if minPos(subsInvokes) < minPos(indexApplys) {
				pass.Reportf(minPos(subsInvokes), "change-log subscribers run before index maintenance; subscribers probe indexes and must observe post-change state")
			}
		}
		return
	}
	if len(subsInvokes) > 0 {
		pass.Reportf(subsInvokes[0], "change-log subscribers invoked outside Table.notify; mutation paths must go through notify so index maintenance runs first")
	}
	if len(rowsWrites) > 0 && len(notifyCalls) == 0 {
		pass.Reportf(rowsWrites[0], "%s mutates Table.Rows without calling notify; indexes and change-log subscribers go stale", fd.Name.Name)
	}
}

// tableFieldName returns the field name when e is a selector t.<field> on
// a relstore.Table receiver, else "".
func tableFieldName(pass *Pass, e ast.Expr) string {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if tv, ok := pass.Info.Types[sel.X]; ok && typeIs(tv.Type, relstorePath, "Table") {
		return sel.Sel.Name
	}
	return ""
}

func minPos(ps []token.Pos) token.Pos {
	m := ps[0]
	for _, p := range ps[1:] {
		if p < m {
			m = p
		}
	}
	return m
}
