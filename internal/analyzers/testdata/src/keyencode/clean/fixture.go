// Clean key handling: Value.AppendKey length-prefixed encoding, or keys
// not derived from Value data at all.
package fixture

import (
	"fmt"
	"strings"

	"graphgen/internal/relstore"
)

// appendKey is the sanctioned encoding.
func appendKey(rows [][]relstore.Value) int {
	seen := map[string]bool{}
	n := 0
	for _, row := range rows {
		var sb strings.Builder
		for _, v := range row {
			v.AppendKey(&sb)
		}
		if !seen[sb.String()] {
			seen[sb.String()] = true
			n++
		}
	}
	return n
}

// singleField uses one scalar component directly — nothing composite, so
// nothing to collide.
func singleField(v relstore.Value, set map[string]bool) bool {
	return set[v.S]
}

// plainStrings composes keys from data unrelated to Values.
func plainStrings(names []string) map[string]int {
	out := map[string]int{}
	for _, n := range names {
		out[fmt.Sprintf("col:%s", n)]++
	}
	return out
}
