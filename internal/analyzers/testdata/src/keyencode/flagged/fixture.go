// The PR 4 bug class: composite dedup keys built from relstore.Value data
// with separator-based encodings. Every shape here collided or could
// collide ("a|b"+"c" vs "a"+"b|c") and must be flagged.
package fixture

import (
	"fmt"
	"strings"

	"graphgen/internal/relstore"
)

// joinKey is the exact PR 4 shape: format each Value, join with "|", use
// the result as a dedup-set key.
func joinKey(rows [][]relstore.Value) map[string]bool {
	seen := map[string]bool{}
	for _, row := range rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = fmt.Sprintf("%v", v)
		}
		seen[strings.Join(parts, "|")] = true // want `keyencode: map key built from relstore.Value data with strings.Join`
	}
	return seen
}

// concatKey builds the key by hand with + over Value.String().
func concatKey(a, b relstore.Value, set map[string]struct{}) bool {
	_, ok := set[a.String()+"|"+b.String()] // want `keyencode: map key built from relstore.Value data with string concatenation`
	return ok
}

// sprintfKey collapses a whole row into one Sprintf and deletes by it.
func sprintfKey(row []relstore.Value, set map[string]int) {
	delete(set, fmt.Sprintf("%v", row)) // want `keyencode: map key built from relstore.Value data with fmt.Sprintf`
}

// accumKey grows the key across loop iterations with +=; the report lands
// on the build site, not the map use below.
func accumKey(row []relstore.Value) map[string]int {
	rowKey := ""
	for _, v := range row {
		rowKey += v.String() + ";" // want `keyencode: map key built from relstore.Value data with a rowKey key assembled above`
	}
	return map[string]int{rowKey: 1}
}
