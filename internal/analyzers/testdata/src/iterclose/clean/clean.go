// Every discharge shape the iterator contract allows: a direct Close,
// a deferred Close, a consumer call, a return, a store into a struct,
// and a capture by a cleanup closure.
package fixture

type row []int

type fakeIter struct {
	rows []row
	pos  int
}

func (f *fakeIter) Cols() []string { return nil }

func (f *fakeIter) Next() (row, bool, error) {
	if f.pos >= len(f.rows) {
		return nil, false, nil
	}
	f.pos++
	return f.rows[f.pos-1], true, nil
}

func (f *fakeIter) Close() error { return nil }

func newIter() *fakeIter { return &fakeIter{} }

func newIterErr() (*fakeIter, error) { return &fakeIter{}, nil }

func collect(it *fakeIter) []row {
	defer it.Close()
	var out []row
	for {
		r, ok, _ := it.Next()
		if !ok {
			return out
		}
		out = append(out, r)
	}
}

// deferredClose is the standard drain shape.
func deferredClose() int {
	it := newIter()
	defer it.Close()
	n := 0
	for {
		_, ok, _ := it.Next()
		if !ok {
			break
		}
		n++
	}
	return n
}

// errCheckThenClose: the error-check return before the Close is fine —
// a failed constructor hands back no iterator to leak.
func errCheckThenClose() (int, error) {
	it, err := newIterErr()
	if err != nil {
		return 0, err
	}
	defer it.Close()
	return len(it.rows), nil
}

// handedToConsumer discharges by passing the iterator to a call that
// owns it.
func handedToConsumer() []row {
	it := newIter()
	return collect(it)
}

// returned hands the obligation to the caller.
func returned() *fakeIter {
	it := newIter()
	it.pos = 0
	return it
}

// stored parks the iterator in a struct whose owner closes it later.
type holder struct{ src *fakeIter }

func stored() *holder {
	it := newIter()
	return &holder{src: it}
}

// closureCleanup captures the iterator in a deferred closure.
func closureCleanup() int {
	it := newIter()
	defer func() { _ = it.Close() }()
	_, ok, _ := it.Next()
	if !ok {
		return 0
	}
	return 1
}

// explicitCloseOnBranch closes on both paths by hand.
func explicitCloseOnBranch(fail bool) error {
	it := newIter()
	if fail {
		return it.Close()
	}
	_, _, err := it.Next()
	it.Close()
	return err
}
