// Row iterators acquired and then abandoned: drained without Close,
// or dropped on an early exit with no handoff.
package fixture

type row []int

// fakeIter has the RowIter shape; detection is structural, so the
// fixture needs no relstore import.
type fakeIter struct {
	rows []row
	pos  int
}

func (f *fakeIter) Cols() []string { return nil }

func (f *fakeIter) Next() (row, bool, error) {
	if f.pos >= len(f.rows) {
		return nil, false, nil
	}
	f.pos++
	return f.rows[f.pos-1], true, nil
}

func (f *fakeIter) Close() error { return nil }

func newIter() *fakeIter { return &fakeIter{} }

// drainLeak loops the iterator dry and forgets the Close — the classic
// leak this analyzer exists for.
func drainLeak() int {
	it := newIter() // want `iterclose: iterator it is acquired but never closed or handed off`
	n := 0
	for {
		_, ok, _ := it.Next()
		if !ok {
			break
		}
		n++
	}
	return n
}

// peekLeak reads one row and walks away.
func peekLeak() (row, bool) {
	it := newIter() // want `iterclose: iterator it is acquired but never closed or handed off`
	r, ok, _ := it.Next()
	return r, ok
}

// reassignedLeak closes one arm but only drains the other: the second
// acquisition has no discharging use after it.
func reassignedLeak(pick bool) int {
	a := newIter()
	defer a.Close()
	if pick {
		b := newIter() // want `iterclose: iterator b is acquired but never closed or handed off`
		n := 0
		for {
			_, ok, _ := b.Next()
			if !ok {
				return n
			}
			n++
		}
	}
	return 0
}
