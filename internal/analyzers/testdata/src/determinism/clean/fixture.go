// Deterministic idioms the analyzer must accept: seeded rand, the
// collect-then-sort pattern (stdlib or repo-local sorts), and loop-scoped
// accumulators.
package fixture

import (
	"math/rand"
	"sort"
)

// seeded randomness flows through an explicit source.
func seeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// collectThenSort is the sanctioned map-drain idiom.
func collectThenSort(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// localSorter uses a repo-local sort helper (the dedup mergeSortBy shape).
func localSorter(m map[int32]int) []int32 {
	var out []int32
	for k := range m {
		out = append(out, k)
	}
	mergeSortInt32s(out)
	return out
}

func mergeSortInt32s(s []int32) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

// loopScoped restarts the slice each iteration; nothing outlives the loop.
func loopScoped(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var tmp []int
		tmp = append(tmp, vs...)
		n += len(tmp)
	}
	return n
}
