// Nondeterminism sources forbidden in the deterministic packages, checked
// as if this fixture were graphgen/internal/datagen.
package fixture

import (
	"math/rand"
	"time"
)

// clocked reads wall clocks; output stops being a function of the seed.
func clocked() time.Duration {
	start := time.Now()      // want `determinism: time.Now in a deterministic package`
	return time.Since(start) // want `determinism: time.Since in a deterministic package`
}

// globalRand draws from the process-global source.
func globalRand() int {
	return rand.Intn(10) // want `determinism: global math/rand source \(rand.Intn\)`
}

// mapOrdered captures random map iteration order in a slice that outlives
// the loop, with no sort before it escapes.
func mapOrdered(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `determinism: append to out while ranging over a map`
	}
	return out
}
