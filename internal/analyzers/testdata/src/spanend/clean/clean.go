// Every discharge shape the span contract allows: a direct End, a
// deferred End, a handoff to an owner (call argument, like relstore's
// traced wrapper), a store into a struct, a return, and a capture by a
// cleanup closure.
package fixture

type fakeSpan struct {
	strategy string
	rows     int64
	ended    bool
}

func (s *fakeSpan) End()                  { s.ended = true }
func (s *fakeSpan) SetStrategy(st string) { s.strategy = st }
func (s *fakeSpan) AddRows(n int64)       { s.rows += n }

type fakeTrace struct{}

func (t *fakeTrace) Push(op, detail string) *fakeSpan      { return &fakeSpan{} }
func (t *fakeTrace) StartSpan(op, detail string) *fakeSpan { return &fakeSpan{} }

type iter struct{ span *fakeSpan }

func traced(it *iter, sp *fakeSpan) *iter { return it }

// directEnd ends on both the error and the success path.
func directEnd(tr *fakeTrace, fail bool) error {
	sp := tr.Push("rule", "Edges")
	if fail {
		sp.End()
		return nil
	}
	sp.AddRows(3)
	sp.End()
	return nil
}

// deferredEnd is the standard container shape.
func deferredEnd(tr *fakeTrace) {
	sp := tr.Push("stratum", "Reach")
	defer sp.End()
	sp.AddRows(1)
}

// handoff gives the span to an owner that ends it later, the traced()
// wrapper shape.
func handoff(tr *fakeTrace) *iter {
	sp := tr.StartSpan("scan", "T")
	sp.SetStrategy("table")
	return traced(&iter{}, sp)
}

// storeAndReturn parks the span in a struct whose Close will end it.
func storeAndReturn(tr *fakeTrace) *iter {
	sp := tr.StartSpan("table_join", "T on A")
	return &iter{span: sp}
}

// closureCapture defers the End through a cleanup closure.
func closureCapture(tr *fakeTrace) {
	sp := tr.Push("round", "delta 1")
	defer func() { sp.End() }()
	sp.AddRows(2)
}

// reassigned discharges each acquisition in turn.
func reassigned(tr *fakeTrace) {
	sp := tr.Push("round", "seed")
	sp.End()
	sp = tr.Push("round", "delta 1")
	sp.End()
}
