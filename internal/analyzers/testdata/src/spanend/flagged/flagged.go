// Trace spans started and then abandoned: annotated but never ended,
// or ended on one arm of a branch only before the acquisition.
package fixture

// fakeSpan has the span shape (End + SetStrategy); detection is
// structural, so the fixture needs no obs import.
type fakeSpan struct {
	strategy string
	rows     int64
	ended    bool
}

func (s *fakeSpan) End()                  { s.ended = true }
func (s *fakeSpan) SetStrategy(st string) { s.strategy = st }
func (s *fakeSpan) AddRows(n int64)       { s.rows += n }

type fakeTrace struct{}

func (t *fakeTrace) Push(op, detail string) *fakeSpan      { return &fakeSpan{} }
func (t *fakeTrace) StartSpan(op, detail string) *fakeSpan { return &fakeSpan{} }

// annotateLeak measures the work and forgets the End — the classic leak
// this analyzer exists for.
func annotateLeak(tr *fakeTrace, n int64) {
	sp := tr.StartSpan("scan", "T") // want `spanend: span sp is started but never ended or handed off`
	sp.SetStrategy("index")
	sp.AddRows(n)
}

// earlyReturnLeak ends the span on the happy path but acquires a second
// one inside the branch with no discharging use after it.
func earlyReturnLeak(tr *fakeTrace, fail bool) error {
	sp := tr.Push("rule", "Edges")
	defer sp.End()
	if fail {
		inner := tr.StartSpan("join", "a,b") // want `spanend: span inner is started but never ended or handed off`
		inner.AddRows(1)
		return nil
	}
	return nil
}

// endBeforeAcquire: an End on a same-named earlier span does not satisfy
// a later acquisition (discharges are positional).
func endBeforeAcquire(tr *fakeTrace) {
	sp := tr.Push("round", "seed")
	sp.End()
	sp = tr.Push("round", "delta 1") // want `spanend: span sp is started but never ended or handed off`
	sp.AddRows(2)
}
