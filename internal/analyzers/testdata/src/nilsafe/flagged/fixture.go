// Exported *Trace/*Span methods missing (or mis-shaping) the
// nil-receiver guard, checked as if this fixture were
// graphgen/internal/obs.
package fixture

type Trace struct {
	spans []*Span
}

type Span struct {
	name  string
	ended bool
}

// Push has no guard at all.
func (t *Trace) Push(name string) *Span { // want `nilsafe: exported method \(\*Trace\)\.Push must begin with a nil-receiver guard`
	s := &Span{name: name}
	t.spans = append(t.spans, s)
	return s
}

// End guards too late: the first statement already dereferences.
func (s *Span) End() { // want `nilsafe: exported method \(\*Span\)\.End must begin with a nil-receiver guard`
	s.ended = true
	if s == nil {
		return
	}
}

// SetName tests the wrong operand first: s.ended dereferences before
// the nil test runs.
func (s *Span) SetName(n string) { // want `nilsafe: exported method \(\*Span\)\.SetName must begin with a nil-receiver guard`
	if s.ended || s == nil {
		return
	}
	s.name = n
}

// AddNote has the positive shape but keeps going after the if, where
// the receiver is unguarded again.
func (s *Span) AddNote(n string) { // want `nilsafe: exported method \(\*Span\)\.AddNote must begin with a nil-receiver guard`
	if s != nil {
		s.name = n
	}
	s.ended = false
}

// Flag tests for nil but the branch falls through instead of returning.
func (s *Span) Flag() { // want `nilsafe: exported method \(\*Span\)\.Flag must begin with a nil-receiver guard`
	if s == nil {
		s = &Span{}
	}
	s.ended = true
}
