// Properly guarded (or exempt) *Trace/*Span methods: both accepted
// guard shapes, value receivers, unnamed receivers, unexported
// internals, and out-of-scope types.
package fixture

type Trace struct {
	spans []*Span
}

type Span struct {
	name  string
	ended bool
}

// StartSpan uses the early-return shape.
func (t *Trace) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	s := &Span{name: name}
	t.spans = append(t.spans, s)
	return s
}

// Finish uses the early-return shape with a bare return.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	for _, s := range t.spans {
		s.finish()
	}
}

// End ORs extra conditions after the leftmost nil test.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
}

// SetName uses the positive shape as the entire body.
func (s *Span) SetName(n string) {
	if s != nil && !s.ended {
		s.name = n
	}
}

// Name has a value receiver; a value is never nil.
func (s Span) Name() string {
	return s.name
}

// Kind cannot dereference an unnamed receiver.
func (*Span) Kind() string {
	return "span"
}

// Noop has nothing to guard.
func (s *Span) Noop() {}

// finish is unexported: it runs behind the exported guards.
func (s *Span) finish() {
	s.ended = true
}

// meter is not a traced type; the contract does not apply.
type meter struct{ n int }

func (m *meter) Inc() {
	m.n++
}
