// The PR 3 bug class: sessMu-before-dbMu inversions and relational table
// access outside a dbMu critical section, checked as if this fixture were
// graphgen/internal/server.
package fixture

import (
	"sync"

	"graphgen"
	"graphgen/internal/relstore"
)

type srv struct {
	dbMu   sync.Mutex
	sessMu sync.RWMutex
	tab    *relstore.Table
	lg     *graphgen.LiveGraph
}

// inverted takes the locks in the wrong order.
func (s *srv) inverted() {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	s.dbMu.Lock() // want `lockorder: dbMu acquired while sessMu is held`
	s.dbMu.Unlock()
}

// lockDB is fine on its own but marks the method as a dbMu acquirer.
func (s *srv) lockDB() {
	s.dbMu.Lock()
	defer s.dbMu.Unlock()
}

// indirect is the closeLive shape one level removed: a method that
// acquires dbMu called under sessMu.
func (s *srv) indirect() {
	s.sessMu.RLock()
	s.lockDB() // want `lockorder: lockDB acquires dbMu and must not be called while sessMu is held`
	s.sessMu.RUnlock()
}

// insertUnlocked touches a table with no dbMu held.
func (s *srv) insertUnlocked(row []relstore.Value) error {
	return s.tab.Insert(row...) // want `lockorder: \(Table\)\.Insert outside a dbMu critical section`
}

// closeUnlocked cancels live maintenance while mutations may be walking
// the change-log subscriber list — the exact PR 3 race.
func (s *srv) closeUnlocked() {
	s.lg.Close() // want `lockorder: \(LiveGraph\)\.Close outside a dbMu critical section`
}

// released shows the position model catching use-after-unlock too.
func (s *srv) released(row []relstore.Value) error {
	s.dbMu.Lock()
	s.dbMu.Unlock()
	return s.tab.Insert(row...) // want `lockorder: \(Table\)\.Insert outside a dbMu critical section`
}

// lockDBDeep acquires dbMu two calls down; the interprocedural
// summaries make the inversion visible at any depth.
func (s *srv) lockDBDeep() {
	s.lockDB()
}

func (s *srv) indirectDeep() {
	s.sessMu.RLock()
	s.lockDBDeep() // want `lockorder: lockDBDeep acquires dbMu and must not be called while sessMu is held`
	s.sessMu.RUnlock()
}

// withDB's contract is explicit: callers bring dbMu. The unlocked call
// below is the finding; the table op inside withDB is not.
//
// graphlint:requires dbMu
func (s *srv) withDB(row []relstore.Value) error {
	return s.tab.Insert(row...)
}

func (s *srv) callsWithDBUnlocked(row []relstore.Value) error {
	return s.withDB(row) // want `lockorder: withDB requires dbMu held on entry \(graphlint:requires\) and is called outside a dbMu critical section`
}
