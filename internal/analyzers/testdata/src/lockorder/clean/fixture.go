// Correct locking: dbMu before sessMu, table access and live teardown
// inside dbMu critical sections.
package fixture

import (
	"sync"

	"graphgen"
	"graphgen/internal/relstore"
)

type srv struct {
	dbMu   sync.Mutex
	sessMu sync.RWMutex
	tab    *relstore.Table
	lg     *graphgen.LiveGraph
}

// ordered is the Server.Close shape: dbMu first, sessMu nested inside.
func (s *srv) ordered() {
	s.dbMu.Lock()
	defer s.dbMu.Unlock()
	s.lg.Close()
	s.sessMu.Lock()
	s.sessMu.Unlock()
}

// insertLocked mutates the table under dbMu.
func (s *srv) insertLocked(row []relstore.Value) error {
	s.dbMu.Lock()
	defer s.dbMu.Unlock()
	return s.tab.Insert(row...)
}

// sessionsOnly never touches dbMu or tables; sessMu alone is fine.
func (s *srv) sessionsOnly() {
	s.sessMu.RLock()
	defer s.sessMu.RUnlock()
}
