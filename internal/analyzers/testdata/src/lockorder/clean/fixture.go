// Correct locking: dbMu before sessMu, table access and live teardown
// inside dbMu critical sections.
package fixture

import (
	"sync"

	"graphgen"
	"graphgen/internal/relstore"
)

type srv struct {
	dbMu   sync.Mutex
	sessMu sync.RWMutex
	tab    *relstore.Table
	lg     *graphgen.LiveGraph
}

// ordered is the Server.Close shape: dbMu first, sessMu nested inside.
func (s *srv) ordered() {
	s.dbMu.Lock()
	defer s.dbMu.Unlock()
	s.lg.Close()
	s.sessMu.Lock()
	s.sessMu.Unlock()
}

// insertLocked mutates the table under dbMu.
func (s *srv) insertLocked(row []relstore.Value) error {
	s.dbMu.Lock()
	defer s.dbMu.Unlock()
	return s.tab.Insert(row...)
}

// sessionsOnly never touches dbMu or tables; sessMu alone is fine.
func (s *srv) sessionsOnly() {
	s.sessMu.RLock()
	defer s.sessMu.RUnlock()
}

// lockDB marks a dbMu acquirer; calling it outside any sessMu critical
// section is the documented order.
func (s *srv) lockDB() {
	s.dbMu.Lock()
	defer s.dbMu.Unlock()
}

func (s *srv) orderedDeep() {
	s.lockDB()
	s.sessMu.Lock()
	s.sessMu.Unlock()
}

// withDB assumes dbMu per its annotation, so its own table op is fine;
// insertViaHelper supplies the lock at the call site.
//
// graphlint:requires dbMu
func (s *srv) withDB(row []relstore.Value) error {
	return s.tab.Insert(row...)
}

func (s *srv) insertViaHelper(row []relstore.Value) error {
	s.dbMu.Lock()
	defer s.dbMu.Unlock()
	return s.withDB(row)
}
