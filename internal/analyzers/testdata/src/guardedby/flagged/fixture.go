// Guarded-field violations across the analyzer's shapes: direct
// unlocked access, writes under a read hold, unguarded access one and
// two method calls deep (the interprocedural summaries), escaping
// closures, helper-released locks, and the external-guard choke point.
package fixture

import "sync"

type counter struct {
	mu sync.RWMutex
	// graphlint:guardedby mu
	n int
	m map[string]int // graphlint:guardedby mu
}

// readUnlocked accesses the field through a parameter with nothing held;
// a non-receiver path cannot become an inferred requirement and is
// reported at the site.
func readUnlocked(c *counter) int {
	return c.n // want `guardedby: c\.n is read without c\.mu held \(graphlint:guardedby mu\)`
}

func writeUnlocked(c *counter) {
	c.n = 1 // want `guardedby: c\.n is written without c\.mu held \(graphlint:guardedby mu\)`
}

func dropKey(c *counter, k string) {
	delete(c.m, k) // want `guardedby: c\.m is written without c\.mu held \(graphlint:guardedby mu\)`
}

// IncrReadLocked holds the lock — but in the wrong mode for a write.
func (c *counter) IncrReadLocked() {
	c.mu.RLock()
	defer c.mu.RUnlock()
	c.n++ // want `guardedby: c\.n is written while c\.mu is only read-held \(RLock\); writes need Lock`
}

// bump relies on its caller's lock; the requirement is inferred, not a
// diagnostic here.
func (c *counter) bump() {
	c.n++
}

// Bump inherits bump's requirement one call deep and exports it, but
// cross-package callers can never see an inferred contract.
func (c *counter) Bump() { // want `guardedby: exported Bump relies on callers holding mu; acquire it internally or annotate // graphlint:requires mu`
	c.bump()
}

// stepA/stepB are mutually recursive: the requirement converges over the
// summary fixpoint and surfaces two calls deep at the exported entry.
func (c *counter) stepA(k int) {
	if k <= 0 {
		return
	}
	c.n++
	c.stepB(k - 1)
}

func (c *counter) stepB(k int) {
	c.stepA(k)
}

func (c *counter) Walk(k int) { // want `guardedby: exported Walk relies on callers holding mu; acquire it internally or annotate // graphlint:requires mu`
	c.stepB(k)
}

// Reset is locked, but the goroutine body runs after the critical
// section is gone.
func (c *counter) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		c.n = 0 // want `guardedby: c\.n is written without c\.mu held \(graphlint:guardedby mu\) — this function literal escapes the enclosing critical section \(go/defer/stored\); acquire the lock inside it`
	}()
}

// release unlocks on the caller's behalf; refresh keeps using the field
// after handing its hold away.
func (c *counter) release() {
	c.mu.Unlock()
}

func (c *counter) refresh() {
	c.mu.Lock()
	c.n++
	c.release()
	c.n = 2 // want `guardedby: c\.n is written without c\.mu held \(graphlint:guardedby mu\)`
}

// flushLocked's contract is explicit; the unlocked call is the finding.
//
// graphlint:requires mu
func (c *counter) flushLocked() {
	c.n = 0
}

func flushNow(c *counter) {
	c.flushLocked() // want `guardedby: call to flushLocked, which needs c\.mu write-held on entry`
}

// table's rows are serialized by a lock outside this package; mutating
// them from a free function bypasses the choke point.
type table struct {
	rows []int // graphlint:guardedby external:dbMu
}

func corrupt(t *table) {
	t.rows = append(t.rows, 1) // want `guardedby: rows is serialized externally \(graphlint:guardedby external:dbMu\); mutate it only from methods of this package`
}
