// Malformed annotations: each is itself a finding (asserted directly by
// TestGuardedByBadAnnotations — want comments cannot share a line with
// the directive they describe without polluting its argument).
package fixture

import "sync"

type bad struct {
	mu sync.Mutex

	// graphlint:guardedby missing
	gone int

	// graphlint:guardedby
	noarg int

	// graphlint:guardedby external:
	noname int

	// graphlint:guardedby Mutex
	sync.Mutex
}

// graphlint:requires nope
func (b *bad) f() int {
	return b.gone
}
