// Correct guarded-field discipline: the same shapes as the flagged
// fixture — deferred unlocks, read holds for reads, inferred
// requirements satisfied at every call site, acquire-style helpers,
// inline callbacks, branchy early returns — with zero findings.
package fixture

import "sync"

type counter struct {
	mu sync.RWMutex
	// graphlint:guardedby mu
	n int
	m map[string]int // graphlint:guardedby mu
	// bounds is unannotated and immutable after construction; reads need
	// no lock.
	bounds []int
}

func (c *counter) Get() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.n
}

func (c *counter) Incr() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	c.m["total"] = c.n
}

// bump relies on its callers' lock; the requirement is inferred and
// every call below satisfies it.
func (c *counter) bump() {
	c.n++
}

func (c *counter) Add(d int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := 0; i < d; i++ {
		c.bump()
	}
}

// acquire takes the lock for its caller (the acquire-style helper); the
// net acquisition travels through the summary to Sum's held set.
func (c *counter) acquire() {
	c.mu.RLock()
}

func (c *counter) Sum() int {
	c.acquire()
	defer c.mu.RUnlock()
	total := 0
	c.each(func(v int) {
		total += v + c.n
	})
	return total
}

// each iterates under the caller's lock; the callback runs inline,
// inside the same critical section.
func (c *counter) each(f func(int)) {
	for _, v := range c.m {
		f(v)
	}
}

// FlushLocked is exported with an explicit contract instead of an
// inferred one.
//
// graphlint:requires mu
func (c *counter) FlushLocked() {
	c.n = 0
}

// First releases early on one branch; the merge keeps only what every
// live path still holds.
func (c *counter) First() int {
	c.mu.RLock()
	if len(c.m) == 0 {
		c.mu.RUnlock()
		return -1
	}
	v := c.n
	c.mu.RUnlock()
	return v
}

func (c *counter) Pick(k string) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	switch k {
	case "n":
		return c.n
	default:
		return c.m[k]
	}
}

// evenSteps/oddSteps converge over the fixpoint; Steps satisfies the
// requirement explicitly.
func (c *counter) evenSteps(k int) {
	if k > 0 {
		c.n++
		c.oddSteps(k - 1)
	}
}

func (c *counter) oddSteps(k int) {
	if k > 0 {
		c.evenSteps(k - 1)
	}
}

func (c *counter) Steps(k int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.evenSteps(k)
}

func (c *counter) Bound(i int) int {
	return c.bounds[i]
}

// table's rows are serialized externally: methods are the mutation
// choke point, and reads are not restricted.
type table struct {
	rows []int // graphlint:guardedby external:dbMu
}

func (t *table) insert(v int) {
	t.rows = append(t.rows, v)
}

func rowCount(t *table) int {
	return len(t.rows)
}
