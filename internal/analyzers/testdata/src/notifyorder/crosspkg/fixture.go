// The cross-package half of notifyorder: outside internal/relstore, code
// must not write Table.Rows directly — that bypasses index maintenance,
// the stats catalog, and every live graph's change log.
package fixture

import "graphgen/internal/relstore"

// trimRows chops the row slice behind the store's back.
func trimRows(t *relstore.Table, n int) {
	t.Rows = t.Rows[:n] // want `notifyorder: direct write to \(relstore.Table\)\.Rows bypasses notify`
}

// insertProper goes through the mutator API.
func insertProper(t *relstore.Table, row []relstore.Value) error {
	return t.Insert(row...)
}

// readRows only reads; reading is fine anywhere.
func readRows(t *relstore.Table) int {
	return len(t.Rows)
}
