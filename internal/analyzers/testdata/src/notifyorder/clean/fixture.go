// The correct relstore mutation shape: mutators append and notify; notify
// maintains indexes before subscribers run.
package fixture

type Change struct{ Added bool }

type Index struct{ n int }

func (ix *Index) apply(ch Change) { ix.n++ }

type Table struct {
	Rows    [][]int64
	indexes map[int]*Index
	subs    []func(Change)
}

func (t *Table) notify(ch Change) {
	for _, ix := range t.indexes {
		ix.apply(ch)
	}
	for _, fn := range t.subs {
		fn(ch)
	}
}

// Insert is the sanctioned mutator shape.
func (t *Table) Insert(row []int64) {
	t.Rows = append(t.Rows, row)
	t.notify(Change{Added: true})
}

// Scan only reads; no notify needed.
func (t *Table) Scan() int {
	n := 0
	for _, r := range t.Rows {
		n += len(r)
	}
	return n
}
