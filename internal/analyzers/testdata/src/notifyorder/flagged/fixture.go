// Violations of the relstore mutation contract, checked as if this
// fixture were graphgen/internal/relstore itself: the analyzer matches the
// Table/Index type names under that import path.
package fixture

// Change mirrors the real change-log record.
type Change struct{ Added bool }

// Index mirrors the real secondary index.
type Index struct{ n int }

func (ix *Index) apply(ch Change) { ix.n++ }

// Table mirrors the real row store: rows, indexes, subscribers.
type Table struct {
	Rows    [][]int64
	indexes map[int]*Index
	subs    []func(Change)
}

// notify runs subscribers before index maintenance — a subscriber probing
// an index would observe pre-change state.
func (t *Table) notify(ch Change) {
	for _, fn := range t.subs {
		fn(ch) // want `notifyorder: change-log subscribers run before index maintenance`
	}
	for _, ix := range t.indexes {
		ix.apply(ch)
	}
}

// InsertQuiet mutates rows without telling anyone.
func (t *Table) InsertQuiet(row []int64) {
	t.Rows = append(t.Rows, row) // want `notifyorder: InsertQuiet mutates Table.Rows without calling notify`
}

// InsertDirect bypasses notify and calls subscribers itself.
func (t *Table) InsertDirect(row []int64, ch Change) {
	t.Rows = append(t.Rows, row) // want `notifyorder: InsertDirect mutates Table.Rows without calling notify`
	for _, fn := range t.subs {
		fn(ch) // want `notifyorder: change-log subscribers invoked outside Table.notify`
	}
}
