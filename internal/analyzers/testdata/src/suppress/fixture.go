// Exercises the suppression policy itself: a justified directive silences
// a finding, a stale directive is reported, an unknown analyzer name is
// reported, and a directive without a justification is reported while the
// finding it failed to silence survives. The test asserts on these
// diagnostics directly (want comments cannot live inside directives).
package fixture

import "sync"

type handoff struct {
	mu sync.Mutex
	n  int
}

// locked intentionally returns with the mutex held; the caller unlocks.
func (h *handoff) locked() int {
	h.mu.Lock()
	//lint:ignore lockedreturn lock handed to the caller, which must Unlock after reading
	return h.n
}

// unlocked has nothing to suppress: the directive is stale.
func (h *handoff) unlocked() int {
	h.mu.Lock()
	h.mu.Unlock()
	//lint:ignore lockedreturn this suppresses nothing
	return h.n
}

// typo names an analyzer that does not exist.
func (h *handoff) typo() {
	//lint:ignore lockedretrun misspelled analyzer name
	h.n++
}

// bare has no justification, so the directive is rejected and the finding
// it sits on survives.
func (h *handoff) bare() int {
	h.mu.Lock()
	//lint:ignore lockedreturn
	return h.n
}

// lockedMulti returns across two lines: the diagnostic anchors on the
// first, the trailing directive sits where gofmt leaves room — the last
// — and still suppresses it.
func (h *handoff) lockedMulti() (int, int) {
	h.mu.Lock()
	return h.n,
		h.n //lint:ignore lockedreturn lock handed to the caller across a wrapped return
}
