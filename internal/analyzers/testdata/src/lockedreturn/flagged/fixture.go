// Early returns that leak a held mutex — the "error path forgot the
// Unlock" class.
package fixture

import (
	"errors"
	"sync"
)

type guarded struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

// leak forgets the unlock on the error path.
func (g *guarded) leak(fail bool) (int, error) {
	g.mu.Lock()
	if fail {
		return 0, errors.New("boom") // want `lockedreturn: return leaks g.mu.Lock held since line \d+`
	}
	n := g.n
	g.mu.Unlock()
	return n, nil
}

// rleak does the same with the read half of an RWMutex.
func (g *guarded) rleak(fail bool) int {
	g.rw.RLock()
	if fail {
		return -1 // want `lockedreturn: return leaks g.rw.RLock held since line \d+`
	}
	g.rw.RUnlock()
	return g.n
}

// relock leaks the second acquisition: the unlock between the two
// releases only the first.
func (g *guarded) relock() int {
	g.mu.Lock()
	g.mu.Unlock()
	g.mu.Lock()
	return g.n // want `lockedreturn: return leaks g.mu.Lock held since line \d+`
}
