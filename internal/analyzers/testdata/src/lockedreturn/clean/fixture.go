// Lock discipline the analyzer must accept: deferred unlocks, explicit
// unlock-before-return, and per-closure lock scopes.
package fixture

import (
	"errors"
	"sync"
)

type guarded struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

// deferred covers every return path.
func (g *guarded) deferred(fail bool) (int, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if fail {
		return 0, errors.New("boom")
	}
	return g.n, nil
}

// explicit unlocks on each path before returning.
func (g *guarded) explicit(fail bool) int {
	g.rw.RLock()
	if fail {
		g.rw.RUnlock()
		return -1
	}
	n := g.n
	g.rw.RUnlock()
	return n
}

// closures are independent units: the literal's return does not leak the
// enclosing function's lock state.
func (g *guarded) closure() func() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return func() int {
		return 1
	}
}
