// Package workload implements the SIGMOD 2014 contest query family over
// extracted graphs: multi-source shortest paths, closeness centrality, and
// interest-community extraction (community.go, expressed as a Datalog
// program through Engine.ExtractProgram). These are the scenario-scale
// queries the Elekes/Antal/Szárnyas contest analysis identifies as the
// workload where naive graph implementations fall over; cmd/graphload
// replays them (mixed with reads and mutations) against a graphgend
// daemon, and internal/server exposes them as /analyze/sssp and
// /analyze/closeness.
//
// The fast implementations freeze the representation-independent
// graphapi.Graph into a CSR snapshot once (Snap) and then run
// array-indexed BFS per query; naive.go keeps deliberately slow reference
// implementations that iterate the graphapi interface directly, used only
// by the randomized equivalence tests.
package workload

import (
	"sort"

	"graphgen/internal/graphapi"
	"graphgen/internal/parallel"
)

// Snapshot is a frozen CSR view of a graph: dense indexes 0..n-1 in
// ascending external-ID order, with out-neighbor adjacency. Building it
// costs one pass over the graph; every query on it is array-indexed.
// The snapshot is immutable and safe for concurrent use.
type Snapshot struct {
	ids  []int64         // dense -> external, ascending
	idx  map[int64]int32 // external -> dense
	offs []int64         // CSR row offsets, len n+1
	adj  []int32         // CSR column indexes
}

// Snap freezes g into a CSR snapshot. Neighbors pointing outside the
// vertex set (impossible for extracted graphs) are dropped.
func Snap(g graphapi.Graph) *Snapshot {
	ids := graphapi.ToList(g.Vertices())
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	s := &Snapshot{ids: ids, idx: make(map[int64]int32, len(ids))}
	for i, id := range ids {
		s.idx[id] = int32(i)
	}
	s.offs = make([]int64, len(ids)+1)
	for i, id := range ids {
		s.offs[i+1] = s.offs[i]
		it := g.Neighbors(id)
		for {
			t, ok := it.Next()
			if !ok {
				break
			}
			if d, ok := s.idx[t]; ok {
				s.adj = append(s.adj, d)
				s.offs[i+1]++
			}
		}
	}
	return s
}

// NumVertices returns the snapshot's vertex count.
func (s *Snapshot) NumVertices() int { return len(s.ids) }

// NumEdges returns the snapshot's directed edge count.
func (s *Snapshot) NumEdges() int64 { return int64(len(s.adj)) }

// IDs returns the vertex IDs in ascending order. Callers must not mutate
// the returned slice.
func (s *Snapshot) IDs() []int64 { return s.ids }

// SampleSources picks k deterministic, evenly spaced vertex IDs (in
// ascending-ID order) — the pivot set for sampled closeness and
// auto-sourced SSSP. k <= 0 or k >= n returns all vertices.
func (s *Snapshot) SampleSources(k int) []int64 {
	n := len(s.ids)
	if n == 0 {
		return nil
	}
	if k <= 0 || k >= n {
		out := make([]int64, n)
		copy(out, s.ids)
		return out
	}
	out := make([]int64, k)
	for i := 0; i < k; i++ {
		out[i] = s.ids[i*n/k]
	}
	return out
}

// bfsFrom runs one array-indexed BFS over the CSR from the given dense
// seeds (dist must be len n, filled with -1). It reports the number of
// reached vertices, the max depth, and the sum of distances.
func (s *Snapshot) bfsFrom(seeds []int32, dist []int32) (reached int, maxDepth int32, sumDist int64) {
	frontier := make([]int32, 0, len(seeds))
	for _, v := range seeds {
		if dist[v] < 0 {
			dist[v] = 0
			frontier = append(frontier, v)
			reached++
		}
	}
	var next []int32
	for depth := int32(1); len(frontier) > 0; depth++ {
		next = next[:0]
		for _, u := range frontier {
			for _, t := range s.adj[s.offs[u]:s.offs[u+1]] {
				if dist[t] < 0 {
					dist[t] = depth
					sumDist += int64(depth)
					next = append(next, t)
				}
			}
		}
		if len(next) > 0 {
			maxDepth = depth
		}
		reached += len(next)
		frontier, next = next, frontier
	}
	return reached, maxDepth, sumDist
}

// SSSPResult reports a multi-source shortest-path query: per-vertex
// distance to the nearest source (hop count; unreached vertices are
// absent from Dist) plus summary statistics.
type SSSPResult struct {
	// Sources echoes the source IDs actually used (unknown IDs dropped).
	Sources []int64
	// Dist maps vertex ID to hop distance from the nearest source.
	Dist map[int64]int32
	// Reached counts vertices with a finite distance (sources included).
	Reached int
	// Unreached counts vertices no source can reach.
	Unreached int
	// MaxDepth is the largest finite distance.
	MaxDepth int
	// SumDist is the sum of all finite distances.
	SumDist int64
}

// MultiSourceBFS computes hop distances from the nearest of the given
// sources — the contest's multi-source shortest-path query (unweighted
// edges). Source IDs not present in the graph are ignored.
func (s *Snapshot) MultiSourceBFS(sources []int64) SSSPResult {
	res := SSSPResult{Dist: make(map[int64]int32)}
	seeds := make([]int32, 0, len(sources))
	for _, id := range sources {
		if d, ok := s.idx[id]; ok {
			seeds = append(seeds, d)
			res.Sources = append(res.Sources, id)
		}
	}
	dist := make([]int32, len(s.ids))
	for i := range dist {
		dist[i] = -1
	}
	reached, maxDepth, sumDist := s.bfsFrom(seeds, dist)
	res.Reached, res.MaxDepth, res.SumDist = reached, int(maxDepth), sumDist
	res.Unreached = len(s.ids) - reached
	for i, d := range dist {
		if d >= 0 {
			res.Dist[s.ids[i]] = d
		}
	}
	return res
}

// CentralityScore is one vertex's closeness centrality, with the raw BFS
// aggregates the score derives from.
type CentralityScore struct {
	ID int64
	// Closeness is the contest definition c(v) = (r-1)^2 / ((n-1) * s)
	// with r the number of vertices reachable from v (v included), s the
	// sum of their distances, and n the graph's vertex count; 0 when v
	// reaches nothing. This composes classic closeness (r-1)/s with the
	// reachability correction (r-1)/(n-1), so small isolated cliques do
	// not outrank hubs of the giant component.
	Closeness float64
	// Reached is r: vertices reachable from this vertex, itself included.
	Reached int
	// SumDist is s: the sum of finite distances.
	SumDist int64
}

// Closeness computes the exact closeness centrality of each given vertex
// (one BFS per vertex, fanned across the worker pool; results are in
// input order and independent of the worker count). Vertex IDs not in the
// graph are dropped. Use SampleSources to pick a deterministic pivot set
// when computing all n vertices is too expensive.
func (s *Snapshot) Closeness(sources []int64, workers int) []CentralityScore {
	seeds := make([]int32, 0, len(sources))
	for _, id := range sources {
		if d, ok := s.idx[id]; ok {
			seeds = append(seeds, d)
		}
	}
	n := len(s.ids)
	out := make([]CentralityScore, len(seeds))
	parallel.RunMin(len(seeds), workers, 1, func(_, lo, hi int) {
		dist := make([]int32, n)
		for i := lo; i < hi; i++ {
			for j := range dist {
				dist[j] = -1
			}
			reached, _, sumDist := s.bfsFrom(seeds[i:i+1], dist)
			out[i] = CentralityScore{
				ID:        s.ids[seeds[i]],
				Closeness: closeness(reached, sumDist, n),
				Reached:   reached,
				SumDist:   sumDist,
			}
		}
	})
	return out
}

// closeness applies the contest formula to one vertex's BFS aggregates.
func closeness(reached int, sumDist int64, n int) float64 {
	if sumDist <= 0 || n < 2 {
		return 0
	}
	r := float64(reached - 1)
	return r * r / (float64(n-1) * float64(sumDist))
}

// TopCloseness sorts scores by descending closeness (ties broken by
// ascending ID) and returns the top k. The input is not modified.
func TopCloseness(scores []CentralityScore, k int) []CentralityScore {
	sorted := append([]CentralityScore(nil), scores...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Closeness != sorted[j].Closeness {
			return sorted[i].Closeness > sorted[j].Closeness
		}
		return sorted[i].ID < sorted[j].ID
	})
	if k > 0 && len(sorted) > k {
		sorted = sorted[:k]
	}
	return sorted
}
