package workload

import (
	"fmt"

	"graphgen/internal/graphapi"
	"graphgen/internal/relstore"
)

// Slow reference implementations of the contest queries, used only by the
// randomized equivalence tests. They deliberately share no code with the
// CSR fast path: distances come from Bellman-Ford-style relaxation over a
// materialized edge list (not BFS), communities from union-find over raw
// table scans (not graph extraction), so an agreement between the two
// pipelines is meaningful evidence of correctness.

// naiveDistances computes hop distances from the seed set by repeated
// relaxation over the full edge list until a fixpoint — O(V*E), fine for
// the small randomized test graphs.
func naiveDistances(g graphapi.Graph, sources []int64) map[int64]int64 {
	present := make(map[int64]bool)
	var verts []int64 // iterator order, so the edge list is reproducible
	it := g.Vertices()
	for {
		v, ok := it.Next()
		if !ok {
			break
		}
		present[v] = true
		verts = append(verts, v)
	}
	type edge struct{ u, v int64 }
	var edges []edge
	for _, u := range verts {
		nit := g.Neighbors(u)
		for {
			v, ok := nit.Next()
			if !ok {
				break
			}
			if present[v] {
				edges = append(edges, edge{u, v})
			}
		}
	}
	const inf = int64(1) << 40
	dist := make(map[int64]int64, len(present))
	for v := range present {
		dist[v] = inf
	}
	for _, s := range sources {
		if present[s] {
			dist[s] = 0
		}
	}
	for changed := true; changed; {
		changed = false
		for _, e := range edges {
			if d := dist[e.u] + 1; d < dist[e.v] {
				dist[e.v] = d
				changed = true
			}
		}
	}
	for v, d := range dist {
		if d >= inf {
			delete(dist, v)
		}
	}
	return dist
}

// NaiveMultiSourceBFS is the reference multi-source shortest-path query.
func NaiveMultiSourceBFS(g graphapi.Graph, sources []int64) SSSPResult {
	res := SSSPResult{Dist: make(map[int64]int32)}
	present := make(map[int64]bool)
	it := g.Vertices()
	n := 0
	for {
		v, ok := it.Next()
		if !ok {
			break
		}
		present[v] = true
		n++
	}
	for _, s := range sources {
		if present[s] {
			res.Sources = append(res.Sources, s)
		}
	}
	for v, d := range naiveDistances(g, sources) {
		res.Dist[v] = int32(d)
		res.Reached++
		res.SumDist += d
		if int(d) > res.MaxDepth {
			res.MaxDepth = int(d)
		}
	}
	res.Unreached = n - res.Reached
	return res
}

// NaiveCloseness is the reference closeness computation: one relaxation
// fixpoint per source vertex.
func NaiveCloseness(g graphapi.Graph, sources []int64) []CentralityScore {
	n := graphapi.Count(g.Vertices())
	var out []CentralityScore
	for _, s := range sources {
		dist := naiveDistances(g, []int64{s})
		if _, ok := dist[s]; !ok {
			continue // source not in the graph
		}
		var sum int64
		for _, d := range dist {
			sum += d
		}
		out = append(out, CentralityScore{
			ID:        s,
			Closeness: closeness(len(dist), sum, n),
			Reached:   len(dist),
			SumDist:   sum,
		})
	}
	return out
}

// NaiveInterestCommunities is the reference community query: raw table
// scans over the SNB schema and union-find, no graph extraction involved.
func NaiveInterestCommunities(db *relstore.DB, tag string) (*CommunityResult, error) {
	hasInterest, err := db.Table("HasInterest")
	if err != nil {
		return nil, err
	}
	knows, err := db.Table("Knows")
	if err != nil {
		return nil, err
	}
	pCol, tCol, err := twoCols(hasInterest, "person", "tag")
	if err != nil {
		return nil, err
	}
	sCol, dCol, err := twoCols(knows, "src", "dst")
	if err != nil {
		return nil, err
	}
	fans := make(map[int64]bool)
	for _, row := range hasInterest.Rows {
		if row[tCol].S == tag {
			fans[row[pCol].I] = true
		}
	}
	parent := make(map[int64]int64, len(fans))
	for f := range fans {
		parent[f] = f
	}
	var find func(x int64) int64
	find = func(x int64) int64 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, row := range knows.Rows {
		a, b := row[sCol].I, row[dCol].I
		if fans[a] && fans[b] {
			ra, rb := find(a), find(b)
			if ra != rb {
				parent[ra] = rb
			}
		}
	}
	labels := make(map[int64]int64, len(fans))
	for f := range fans {
		labels[f] = find(f)
	}
	res := &CommunityResult{Tag: tag, Members: len(fans)}
	res.Partition = partitionFromLabels(labels)
	res.Communities = len(res.Partition)
	for _, members := range res.Partition {
		if len(members) > res.LargestSize {
			res.LargestSize = len(members)
		}
	}
	return res, nil
}

// twoCols resolves two named columns of a table.
func twoCols(t *relstore.Table, a, b string) (int, int, error) {
	ai, ok := t.ColIndex(a)
	if !ok {
		return 0, 0, fmt.Errorf("table %s has no column %s", t.Name, a)
	}
	bi, ok := t.ColIndex(b)
	if !ok {
		return 0, 0, fmt.Errorf("table %s has no column %s", t.Name, b)
	}
	return ai, bi, nil
}
