package workload

import (
	"fmt"
	"sort"
	"strings"

	"graphgen"
)

// Interest-community extraction — the contest query that exercises the
// whole stack: a Datalog program (evaluated semi-naively through
// Engine.ExtractProgram) restricts the knows graph to the fans of one
// interest tag, and the communities are the connected components of the
// extracted graph.

// InterestCommunityProgram renders the Datalog program that extracts the
// tag-restricted knows graph over the SNB schema (Person, Knows,
// HasInterest). The tag is embedded as a quoted string constant.
func InterestCommunityProgram(tag string) string {
	q := quoteTag(tag)
	return fmt.Sprintf(`
Fan(P) :- HasInterest(P, %s).
FanProfile(P, N) :- Person(P, N, C), Fan(P).
FanKnows(A, B) :- Knows(A, B), Fan(A), Fan(B).
Nodes(P, N) :- FanProfile(P, N).
Edges(A, B) :- FanKnows(A, B).
`, q)
}

// quoteTag renders tag as a Datalog string literal, escaping the
// sequences the lexer understands.
func quoteTag(tag string) string {
	var sb strings.Builder
	sb.WriteByte('\'')
	for _, c := range tag {
		switch c {
		case '\\':
			sb.WriteString(`\\`)
		case '\'':
			sb.WriteString(`\'`)
		case '\n':
			sb.WriteString(`\n`)
		case '\t':
			sb.WriteString(`\t`)
		default:
			sb.WriteRune(c)
		}
	}
	sb.WriteByte('\'')
	return sb.String()
}

// CommunityResult describes the communities of one interest tag.
type CommunityResult struct {
	Tag string
	// Members counts persons with the interest (the extracted vertices).
	Members int
	// Communities counts connected components among them.
	Communities int
	// LargestSize is the member count of the largest community.
	LargestSize int
	// Partition groups member IDs into communities: each inner slice is
	// sorted ascending, and the slices are sorted by their first member.
	Partition [][]int64
}

// InterestCommunities extracts the tag-restricted knows graph through the
// Datalog program engine and labels its connected components.
func InterestCommunities(e *graphgen.Engine, tag string, opts ...graphgen.Option) (*CommunityResult, error) {
	g, err := e.ExtractProgram(InterestCommunityProgram(tag), opts...)
	if err != nil {
		return nil, err
	}
	labels, n := g.ConnectedComponents()
	res := &CommunityResult{Tag: tag, Members: g.NumVertices(), Communities: n}
	res.Partition = partitionFromLabels(labels)
	for _, members := range res.Partition {
		if len(members) > res.LargestSize {
			res.LargestSize = len(members)
		}
	}
	return res, nil
}

// partitionFromLabels converts a vertex->label map into the canonical
// partition form (sorted members, groups ordered by first member), so two
// labelings of the same partition compare equal regardless of label
// values.
func partitionFromLabels[L comparable](labels map[int64]L) [][]int64 {
	groups := make(map[L][]int64)
	for id, l := range labels {
		groups[l] = append(groups[l], id)
	}
	out := make([][]int64, 0, len(groups))
	for _, members := range groups {
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		out = append(out, members)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}
