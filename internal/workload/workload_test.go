package workload

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"graphgen"
	"graphgen/internal/core"
	"graphgen/internal/datagen"
)

// randomGraph builds a random directed graph over n vertices with sparse
// random IDs (so dense indexes and external IDs never coincide), optional
// isolated vertices included.
func randomGraph(t *testing.T, rng *rand.Rand, n int, p float64) *graphgen.Graph {
	t.Helper()
	g := graphgen.WrapCore(core.New(core.EXP))
	ids := make([]int64, n)
	for i := range ids {
		ids[i] = int64(i*7 + 100 + rng.Intn(3))
		for j := 0; j < i; j++ {
			if ids[j] == ids[i] {
				ids[i]++
				j = -1
			}
		}
		if err := g.AddVertex(ids[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && rng.Float64() < p {
				if err := g.AddEdge(ids[i], ids[j]); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return g
}

// pickSources draws a random source set: some present IDs, sometimes an
// unknown ID, sometimes empty.
func pickSources(rng *rand.Rand, ids []int64) []int64 {
	k := rng.Intn(4)
	var out []int64
	for i := 0; i < k; i++ {
		out = append(out, ids[rng.Intn(len(ids))])
	}
	if rng.Intn(3) == 0 {
		out = append(out, -12345) // not in the graph
	}
	return out
}

func TestMultiSourceBFSEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 40; trial++ {
		n := 5 + rng.Intn(60)
		p := []float64{0.02, 0.08, 0.3}[rng.Intn(3)]
		g := randomGraph(t, rng, n, p)
		snap := Snap(g)
		sources := pickSources(rng, snap.IDs())

		fast := snap.MultiSourceBFS(sources)
		naive := NaiveMultiSourceBFS(g, sources)

		if !reflect.DeepEqual(fast.Dist, naive.Dist) {
			t.Fatalf("trial %d: distance maps differ\nfast:  %v\nnaive: %v", trial, fast.Dist, naive.Dist)
		}
		if fast.Reached != naive.Reached || fast.Unreached != naive.Unreached ||
			fast.MaxDepth != naive.MaxDepth || fast.SumDist != naive.SumDist {
			t.Fatalf("trial %d: summaries differ: fast %+v naive %+v", trial, fast, naive)
		}
		if !reflect.DeepEqual(fast.Sources, naive.Sources) {
			t.Fatalf("trial %d: echoed sources differ: %v vs %v", trial, fast.Sources, naive.Sources)
		}
	}
}

func TestClosenessEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 25; trial++ {
		n := 4 + rng.Intn(40)
		p := []float64{0.03, 0.1, 0.4}[rng.Intn(3)]
		g := randomGraph(t, rng, n, p)
		snap := Snap(g)
		// All vertices, plus an unknown ID that both must drop.
		sources := append(append([]int64{}, snap.IDs()...), -1)

		for _, workers := range []int{1, 4} {
			fast := snap.Closeness(sources, workers)
			naive := NaiveCloseness(g, sources)
			if len(fast) != len(naive) {
				t.Fatalf("trial %d: score counts differ: %d vs %d", trial, len(fast), len(naive))
			}
			for i := range fast {
				f, nv := fast[i], naive[i]
				if f.ID != nv.ID || f.Reached != nv.Reached || f.SumDist != nv.SumDist {
					t.Fatalf("trial %d: score %d differs: fast %+v naive %+v", trial, i, f, nv)
				}
				if math.Abs(f.Closeness-nv.Closeness) > 1e-12 {
					t.Fatalf("trial %d: closeness of %d differs: %v vs %v", trial, f.ID, f.Closeness, nv.Closeness)
				}
			}
		}
	}
}

func TestInterestCommunitiesEquivalence(t *testing.T) {
	db := datagen.SNB(datagen.SNBConfig{Seed: 9, ScaleFactor: 0.05})
	engine := graphgen.NewEngine(db)
	for _, tag := range []string{datagen.TagName(0), datagen.TagName(7), datagen.TagName(49)} {
		fast, err := InterestCommunities(engine, tag)
		if err != nil {
			t.Fatalf("tag %s: %v", tag, err)
		}
		naive, err := NaiveInterestCommunities(db, tag)
		if err != nil {
			t.Fatalf("tag %s: %v", tag, err)
		}
		if fast.Members != naive.Members || fast.Communities != naive.Communities || fast.LargestSize != naive.LargestSize {
			t.Fatalf("tag %s: summaries differ: fast %+v naive %+v", tag, fast, naive)
		}
		if !reflect.DeepEqual(fast.Partition, naive.Partition) {
			t.Fatalf("tag %s: partitions differ\nfast:  %v\nnaive: %v", tag, fast.Partition, naive.Partition)
		}
		if fast.Members == 0 {
			t.Fatalf("tag %s: no members — the test exercised nothing", tag)
		}
	}
}

// TestInterestCommunityProgramQuoting: tags with metacharacters survive
// the round trip into the Datalog source.
func TestInterestCommunityProgramQuoting(t *testing.T) {
	db := graphgen.NewDB()
	mustCreate := func(name string, cols ...graphgen.Column) *graphgen.Table {
		tb, err := db.Create(name, cols...)
		if err != nil {
			t.Fatal(err)
		}
		return tb
	}
	person := mustCreate("Person",
		graphgen.Column{Name: "id", Type: graphgen.Int},
		graphgen.Column{Name: "name", Type: graphgen.String},
		graphgen.Column{Name: "country", Type: graphgen.String})
	knows := mustCreate("Knows",
		graphgen.Column{Name: "src", Type: graphgen.Int},
		graphgen.Column{Name: "dst", Type: graphgen.Int})
	hi := mustCreate("HasInterest",
		graphgen.Column{Name: "person", Type: graphgen.Int},
		graphgen.Column{Name: "tag", Type: graphgen.String})
	tag := `rock'n\roll`
	for p := int64(1); p <= 3; p++ {
		person.Insert(graphgen.IntVal(p), graphgen.StrVal("p"), graphgen.StrVal("c"))
		hi.Insert(graphgen.IntVal(p), graphgen.StrVal(tag))
	}
	knows.Insert(graphgen.IntVal(1), graphgen.IntVal(2))
	knows.Insert(graphgen.IntVal(2), graphgen.IntVal(1))
	res, err := InterestCommunities(graphgen.NewEngine(db), tag)
	if err != nil {
		t.Fatal(err)
	}
	if res.Members != 3 || res.Communities != 2 {
		t.Fatalf("got %d members in %d communities, want 3 in 2", res.Members, res.Communities)
	}
}

func TestSampleSourcesDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(t, rng, 50, 0.05)
	snap := Snap(g)
	a := snap.SampleSources(8)
	b := snap.SampleSources(8)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("SampleSources is not deterministic")
	}
	if len(a) != 8 {
		t.Fatalf("got %d sources, want 8", len(a))
	}
	seen := make(map[int64]bool)
	for _, id := range a {
		if seen[id] {
			t.Fatalf("duplicate sampled source %d", id)
		}
		seen[id] = true
	}
	if got := snap.SampleSources(0); len(got) != 50 {
		t.Fatalf("SampleSources(0) returned %d ids, want all 50", len(got))
	}
	if got := snap.SampleSources(100); len(got) != 50 {
		t.Fatalf("SampleSources(100) returned %d ids, want all 50", len(got))
	}
}

func TestTopCloseness(t *testing.T) {
	scores := []CentralityScore{
		{ID: 3, Closeness: 0.5}, {ID: 1, Closeness: 0.9}, {ID: 2, Closeness: 0.5},
	}
	top := TopCloseness(scores, 2)
	if len(top) != 2 || top[0].ID != 1 || top[1].ID != 2 {
		t.Fatalf("unexpected top-2 order: %+v", top)
	}
	if scores[0].ID != 3 {
		t.Fatal("TopCloseness mutated its input")
	}
}
