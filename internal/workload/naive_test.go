package workload

import (
	"reflect"
	"testing"

	"graphgen"
	"graphgen/internal/core"
)

// TestNaiveDistancesHandBuilt pins naiveDistances after graphlint's
// determinism analyzer flagged its edge list being collected while ranging
// over the vertex-presence map: the reference now walks vertices in
// iterator order, and its output on a known graph is exact.
func TestNaiveDistancesHandBuilt(t *testing.T) {
	g := graphgen.WrapCore(core.New(core.EXP))
	for _, id := range []int64{10, 20, 30, 40, 50, 60} {
		if err := g.AddVertex(id); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range [][2]int64{{10, 20}, {20, 30}, {10, 40}, {40, 30}, {30, 50}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	want := map[int64]int64{10: 0, 20: 1, 40: 1, 30: 2, 50: 3} // 60 unreachable
	for rep := 0; rep < 5; rep++ {
		got := naiveDistances(g, []int64{10})
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("rep %d: distances %v, want %v", rep, got, want)
		}
	}
}
