package core

import "fmt"

// This file contains invariant checkers used by tests and by the dedup
// constructors to validate that a representation's contract holds.

// VerifyNoDuplicates checks the deduplicated-representation contract: plain
// physical traversal (ignoring the C-DUP hash set) reaches every logical
// neighbor of every real node exactly once. It must hold for EXP, DEDUP-1,
// DEDUP-2, and BITMAP graphs, and typically fails for raw C-DUP.
func (g *Graph) VerifyNoDuplicates() error {
	var err error
	g.ForEachReal(func(r int32) bool {
		seen := make(map[int32]struct{})
		dup := g.rawTraversalHasDup(r, seen)
		if dup != none {
			err = fmt.Errorf("duplicate neighbor %d of node %d in %s graph",
				g.realID[dup], g.realID[r], g.mode)
			return false
		}
		return true
	})
	return err
}

// rawTraversalHasDup walks r's representation the way its mode's Neighbors
// does but WITHOUT any on-the-fly dedup, recording seen targets; it returns
// the first duplicated target index or none.
func (g *Graph) rawTraversalHasDup(r int32, seen map[int32]struct{}) int32 {
	check := func(t int32) int32 {
		if g.dead[t] || (t == r && !g.SelfLoops) {
			return none
		}
		if _, dup := seen[t]; dup {
			return t
		}
		seen[t] = struct{}{}
		return none
	}
	for _, t := range g.outReal[r] {
		if d := check(t); d != none {
			return d
		}
	}
	switch g.mode {
	case EXP:
		return none
	case DEDUP2:
		for _, v := range g.outVirt[r] {
			for _, t := range g.vOut[v] {
				if t == r {
					continue
				}
				if d := check(t); d != none {
					return d
				}
			}
			for _, w := range g.vUndir[v] {
				for _, t := range g.vOut[w] {
					if t == r {
						continue
					}
					if d := check(t); d != none {
						return d
					}
				}
			}
		}
		return none
	case BITMAP:
		// Traversal honoring bitmaps but with no real-node hash set.
		var seenVirt map[int32]struct{}
		if g.multiLayer() {
			seenVirt = make(map[int32]struct{}, 8)
		}
		var stack []int32
		stack = append(stack, g.outVirt[r]...)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seenVirt != nil {
				if _, dup := seenVirt[v]; dup {
					continue
				}
				seenVirt[v] = struct{}{}
			}
			bmp, hasBmp := g.Bitmap(v, r)
			nOut := len(g.vOut[v])
			for i, t := range g.vOut[v] {
				if hasBmp && !bmp.Get(i) {
					continue
				}
				if d := check(t); d != none {
					return d
				}
			}
			for i, w := range g.vOutVirt[v] {
				if hasBmp && bmp.Len() > nOut && !bmp.Get(nOut+i) {
					continue
				}
				stack = append(stack, w)
			}
		}
		return none
	default: // CDUP, DEDUP1: raw DFS
		var stack []int32
		stack = append(stack, g.outVirt[r]...)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, t := range g.vOut[v] {
				if d := check(t); d != none {
					return d
				}
			}
			stack = append(stack, g.vOutVirt[v]...)
		}
		return none
	}
}

// EdgeSet returns the logical edge set as a map of packed (src,dst) dense
// index pairs. Tests use it to assert cross-representation equivalence.
func (g *Graph) EdgeSet() map[int64]struct{} {
	set := make(map[int64]struct{})
	g.ForEachReal(func(r int32) bool {
		g.ForNeighbors(r, func(t int32) bool {
			set[pairKey(r, t)] = struct{}{}
			return true
		})
		return true
	})
	return set
}

// EdgeSetByID returns the logical edge set keyed by external (srcID, dstID)
// pairs, comparable across graphs with different dense layouts.
func (g *Graph) EdgeSetByID() map[[2]int64]struct{} {
	set := make(map[[2]int64]struct{})
	g.ForEachReal(func(r int32) bool {
		g.ForNeighbors(r, func(t int32) bool {
			set[[2]int64{g.realID[r], g.realID[t]}] = struct{}{}
			return true
		})
		return true
	})
	return set
}

// VerifyDAG checks condition (2) of the condensed-representation definition:
// the virtual-node subgraph is acyclic (real nodes cannot participate in
// cycles because sources have no in-edges and targets no out-edges).
func (g *Graph) VerifyDAG() error {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]uint8, len(g.vLayer))
	var visit func(v int32) error
	visit = func(v int32) error {
		color[v] = gray
		for _, w := range g.vOutVirt[v] {
			switch color[w] {
			case gray:
				return fmt.Errorf("cycle through virtual node %d", w)
			case white:
				if err := visit(w); err != nil {
					return err
				}
			}
		}
		color[v] = black
		return nil
	}
	for v := int32(0); int(v) < len(g.vLayer); v++ {
		if g.vDead[v] || color[v] != white {
			continue
		}
		if err := visit(v); err != nil {
			return err
		}
	}
	return nil
}

// VerifyDedup2Invariants checks the DEDUP-2 structural invariants from
// Appendix B: (1) any two virtual nodes share at most one member, with
// adjacent (undirected-edge-connected) virtual nodes sharing none, and
// (2) the virtual neighbors of any virtual node are pairwise disjoint.
func (g *Graph) VerifyDedup2Invariants() error {
	memberSet := func(v int32) map[int32]struct{} {
		m := make(map[int32]struct{}, len(g.vOut[v]))
		for _, t := range g.vOut[v] {
			m[t] = struct{}{}
		}
		return m
	}
	overlap := func(a map[int32]struct{}, b []int32) int {
		n := 0
		for _, t := range b {
			if _, ok := a[t]; ok {
				n++
			}
		}
		return n
	}
	var err error
	g.ForEachVirtual(func(v int32) bool {
		mv := memberSet(v)
		// Adjacent virtual nodes must be member-disjoint.
		for _, w := range g.vUndir[v] {
			if n := overlap(mv, g.vOut[w]); n > 0 {
				err = fmt.Errorf("adjacent virtual nodes %d and %d share %d members", v, w, n)
				return false
			}
		}
		// Virtual neighbors of v must be pairwise disjoint.
		for i, w1 := range g.vUndir[v] {
			m1 := memberSet(w1)
			for _, w2 := range g.vUndir[v][i+1:] {
				if n := overlap(m1, g.vOut[w2]); n > 0 {
					err = fmt.Errorf("virtual neighbors %d,%d of %d share %d members", w1, w2, v, n)
					return false
				}
			}
		}
		return true
	})
	if err != nil {
		return err
	}
	return g.VerifyNoDuplicates()
}
