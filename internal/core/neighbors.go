package core

// This file implements getNeighbors for every representation (Section 4.3).
// The fundamental contract: ForNeighbors(r, fn) invokes fn exactly once for
// every logical out-neighbor of real node r, however many physical paths the
// representation stores between them.
//
//   - EXP:     scan the direct out list.
//   - C-DUP:   depth-first traversal through virtual nodes with an on-the-fly
//     hash set over the real nodes already seen (the paper's "naive
//     solution to deduplication").
//   - DEDUP-1: plain traversal; the deduplication algorithms guarantee at
//     most one path between any two real nodes, so no hash set is
//     needed (this is precisely its performance advantage).
//   - BITMAP:  traversal consults the per-(origin, virtual node) bitmaps to
//     decide which outgoing edges of a virtual node to follow.
//   - DEDUP-2: a real node reaches the targets of each directly adjacent
//     virtual node V plus the targets of V's undirected 1-hop
//     virtual neighborhood.

// ForNeighbors calls fn for each logical out-neighbor of real index r,
// exactly once per neighbor. If fn returns false the iteration stops early.
func (g *Graph) ForNeighbors(r int32, fn func(t int32) bool) {
	if !g.Alive(r) {
		return
	}
	switch g.mode {
	case EXP:
		for _, t := range g.outReal[r] {
			if g.dead[t] || (t == r && !g.SelfLoops) {
				continue
			}
			if !fn(t) {
				return
			}
		}
	case CDUP:
		g.forNeighborsCDUP(r, fn)
	case DEDUP1:
		g.forNeighborsDedup1(r, fn)
	case BITMAP:
		g.forNeighborsBitmap(r, fn)
	case DEDUP2:
		g.forNeighborsDedup2(r, fn)
	}
}

// emit filters tombstones and self loops; returns false to stop iteration.
func (g *Graph) emit(r, t int32, fn func(int32) bool) bool {
	if g.dead[t] || (t == r && !g.SelfLoops) {
		return true
	}
	return fn(t)
}

func (g *Graph) forNeighborsCDUP(r int32, fn func(int32) bool) {
	seen := make(map[int32]struct{}, 8)
	// Direct edges participate in the duplicate check too: a direct edge
	// added by AddEdge may coexist with a virtual path in C-DUP.
	for _, t := range g.outReal[r] {
		if _, dup := seen[t]; dup {
			continue
		}
		seen[t] = struct{}{}
		if !g.emit(r, t, fn) {
			return
		}
	}
	// Depth-first traversal through virtual nodes. Virtual nodes can be
	// reached through multiple paths in multi-layer graphs, so they are
	// tracked in their own visited set to bound the traversal.
	var seenVirt map[int32]struct{}
	multi := g.multiLayer()
	if multi {
		seenVirt = make(map[int32]struct{}, 8)
	}
	var stack []int32
	stack = append(stack, g.outVirt[r]...)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if multi {
			if _, dup := seenVirt[v]; dup {
				continue
			}
			seenVirt[v] = struct{}{}
		}
		for _, t := range g.vOut[v] {
			if _, dup := seen[t]; dup {
				continue
			}
			seen[t] = struct{}{}
			if !g.emit(r, t, fn) {
				return
			}
		}
		stack = append(stack, g.vOutVirt[v]...)
	}
}

func (g *Graph) forNeighborsDedup1(r int32, fn func(int32) bool) {
	for _, t := range g.outReal[r] {
		if !g.emit(r, t, fn) {
			return
		}
	}
	var stack []int32
	stack = append(stack, g.outVirt[r]...)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range g.vOut[v] {
			if !g.emit(r, t, fn) {
				return
			}
		}
		stack = append(stack, g.vOutVirt[v]...)
	}
}

func (g *Graph) forNeighborsBitmap(r int32, fn func(int32) bool) {
	for _, t := range g.outReal[r] {
		if !g.emit(r, t, fn) {
			return
		}
	}
	// In multi-layer graphs the same virtual node may be physically
	// reachable via several upper-layer paths; the bitmap for (r, V) must
	// be applied once, so visited virtual nodes are tracked.
	var seenVirt map[int32]struct{}
	if g.multiLayer() {
		seenVirt = make(map[int32]struct{}, 8)
	}
	var stack []int32
	stack = append(stack, g.outVirt[r]...)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seenVirt != nil {
			if _, dup := seenVirt[v]; dup {
				continue
			}
			seenVirt[v] = struct{}{}
		}
		bmp, hasBmp := g.Bitmap(v, r)
		nOut := len(g.vOut[v])
		for i, t := range g.vOut[v] {
			if hasBmp && !bmp.Get(i) {
				continue
			}
			if !g.emit(r, t, fn) {
				return
			}
		}
		for i, w := range g.vOutVirt[v] {
			if hasBmp && bmp.Len() > nOut && !bmp.Get(nOut+i) {
				continue
			}
			stack = append(stack, w)
		}
	}
}

func (g *Graph) forNeighborsDedup2(r int32, fn func(int32) bool) {
	for _, t := range g.outReal[r] {
		if !g.emit(r, t, fn) {
			return
		}
	}
	for _, v := range g.outVirt[r] {
		for _, t := range g.vOut[v] {
			if t == r {
				continue // u itself is a member of V
			}
			if !g.emit(r, t, fn) {
				return
			}
		}
		for _, w := range g.vUndir[v] {
			for _, t := range g.vOut[w] {
				if t == r {
					continue
				}
				if !g.emit(r, t, fn) {
					return
				}
			}
		}
	}
}

// ForInNeighbors calls fn exactly once for every logical in-neighbor of r.
// EXP and DEDUP-1 walk backward without a hash set (unique-path guarantee
// holds in both directions); C-DUP and BITMAP use a hash set — bitmaps mask
// forward duplicate paths only, and since BITMAP never removes a logical
// edge, backward physical reachability equals the logical in-neighbor set.
// DEDUP-2 graphs are symmetric, so in-neighbors equal out-neighbors.
func (g *Graph) ForInNeighbors(r int32, fn func(s int32) bool) {
	if !g.Alive(r) {
		return
	}
	switch g.mode {
	case EXP:
		for _, s := range g.inReal[r] {
			if g.dead[s] || (s == r && !g.SelfLoops) {
				continue
			}
			if !fn(s) {
				return
			}
		}
	case DEDUP1:
		for _, s := range g.inReal[r] {
			if !g.emit(r, s, fn) {
				return
			}
		}
		var stack []int32
		stack = append(stack, g.inVirt[r]...)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, s := range g.vIn[v] {
				if !g.emit(r, s, fn) {
					return
				}
			}
			stack = append(stack, g.vInVirt[v]...)
		}
	case DEDUP2:
		g.forNeighborsDedup2(r, fn)
	default: // CDUP, BITMAP
		seen := make(map[int32]struct{}, 8)
		for _, s := range g.inReal[r] {
			if _, dup := seen[s]; dup {
				continue
			}
			seen[s] = struct{}{}
			if !g.emit(r, s, fn) {
				return
			}
		}
		seenVirt := make(map[int32]struct{}, 8)
		var stack []int32
		stack = append(stack, g.inVirt[r]...)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if _, dup := seenVirt[v]; dup {
				continue
			}
			seenVirt[v] = struct{}{}
			for _, s := range g.vIn[v] {
				if _, dup := seen[s]; dup {
					continue
				}
				seen[s] = struct{}{}
				if !g.emit(r, s, fn) {
					return
				}
			}
			stack = append(stack, g.vInVirt[v]...)
		}
	}
}

// NeighborsIdx returns the logical out-neighbors of r as a fresh slice.
func (g *Graph) NeighborsIdx(r int32) []int32 {
	var out []int32
	g.ForNeighbors(r, func(t int32) bool {
		out = append(out, t)
		return true
	})
	return out
}

// OutDegree returns the number of logical out-neighbors of r.
func (g *Graph) OutDegree(r int32) int {
	n := 0
	g.ForNeighbors(r, func(int32) bool { n++; return true })
	return n
}

// HasEdgeIdx reports whether the logical edge u -> w exists. Because no
// representation ever removes a logical edge — bitmaps and DEDUP surgery
// only remove redundant paths — physical forward reachability equals
// logical edge existence, so the check ignores bitmaps and mode-specific
// filtering except for DEDUP-2's 1-hop rule.
func (g *Graph) HasEdgeIdx(u, w int32) bool {
	if !g.Alive(u) || !g.Alive(w) {
		return false
	}
	if u == w && !g.SelfLoops {
		return false
	}
	for _, t := range g.outReal[u] {
		if t == w {
			return true
		}
	}
	if g.mode == DEDUP2 {
		for _, v := range g.outVirt[u] {
			if containsSorted(g.vOut[v], w) {
				return true
			}
			for _, x := range g.vUndir[v] {
				if containsSorted(g.vOut[x], w) {
					return true
				}
			}
		}
		return false
	}
	// Forward DFS through virtual nodes with early exit. The auxiliary
	// index the paper mentions is the sorted vOut list per virtual node.
	var seenVirt map[int32]struct{}
	multi := g.multiLayer()
	if multi {
		seenVirt = make(map[int32]struct{}, 8)
	}
	var stack []int32
	stack = append(stack, g.outVirt[u]...)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if multi {
			if _, dup := seenVirt[v]; dup {
				continue
			}
			seenVirt[v] = struct{}{}
		}
		if containsSorted(g.vOut[v], w) {
			return true
		}
		stack = append(stack, g.vOutVirt[v]...)
	}
	return false
}

// containsSorted reports whether x occurs in s. It binary-searches when the
// slice is long; adjacency is kept sorted by SortAdjacency, and mutation
// paths that break the order fall back to the linear scan correctness-wise
// (binary search is only used on slices verified sorted at call sites that
// guarantee it — here we scan short slices and probe long ones carefully).
func containsSorted(s []int32, x int32) bool {
	if len(s) <= 16 {
		for _, e := range s {
			if e == x {
				return true
			}
		}
		return false
	}
	// The slice may have been appended to after SortAdjacency; verify the
	// probe result with a bounded fallback when the order is broken.
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s) && s[lo] == x {
		return true
	}
	if isSorted(s) {
		return false
	}
	for _, e := range s {
		if e == x {
			return true
		}
	}
	return false
}

func isSorted(s []int32) bool {
	for i := 1; i < len(s); i++ {
		if s[i-1] > s[i] {
			return false
		}
	}
	return true
}

// ForEachReal calls fn for every live real index.
func (g *Graph) ForEachReal(fn func(r int32) bool) {
	for r := int32(0); int(r) < len(g.realID); r++ {
		if g.dead[r] {
			continue
		}
		if !fn(r) {
			return
		}
	}
}

// ForEachVirtual calls fn for every live virtual index.
func (g *Graph) ForEachVirtual(fn func(v int32) bool) {
	for v := int32(0); int(v) < len(g.vLayer); v++ {
		if g.vDead[v] {
			continue
		}
		if !fn(v) {
			return
		}
	}
}
