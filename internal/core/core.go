// Package core implements GraphGen's condensed in-memory graph — the primary
// contribution of "Extracting and Analyzing Hidden Graphs from Relational
// Databases" (SIGMOD 2017).
//
// A condensed graph GC stores two kinds of nodes:
//
//   - real nodes: the entities the user asked for in a Nodes(...) statement,
//     identified externally by an int64 NodeID;
//   - virtual nodes: one per distinct value of a large-output join attribute,
//     introduced by the extraction algorithm of Section 4.2 of the paper.
//
// For two real nodes u and v, the logical edge u -> v exists iff there is a
// directed path from u's source copy (u_s) to v's target copy (v_t) in GC.
// Physically only one copy of each real node is stored: outgoing adjacency
// plays the role of u_s and incoming adjacency the role of u_t.
//
// The same storage core backs all five in-memory representations of
// Section 4.3 (C-DUP, EXP, DEDUP-1, DEDUP-2, BITMAP); the Mode field selects
// how Neighbors resolves duplicate paths. Deduplication algorithms that
// convert between representations live in internal/dedup.
//
// Concurrency: every accessor that does not mutate the graph — the
// adjacency readers (VirtSources, VirtTargets, OutDirect, OutVirtuals, ...),
// the traversals (ForNeighbors, OutDegree, HasEdgeIdx), and the size metrics
// — performs no lazy initialization and is safe for concurrent use from
// multiple goroutines. The parallel phases in internal/extract,
// internal/bsp, and internal/dedup rely on this read-only contract. Mutating
// methods require external synchronization (the parallel callers stage
// mutations per worker and apply them serially).
package core

import (
	"fmt"
	"sort"

	"graphgen/internal/bitset"
)

// Mode identifies the in-memory representation semantics of a Graph.
type Mode uint8

// The five in-memory representations of Section 4.3.
const (
	// CDUP is the raw condensed representation with duplicate paths;
	// Neighbors deduplicates on the fly with a hash set.
	CDUP Mode = iota
	// EXP is the fully expanded graph: direct real-to-real edges only.
	EXP
	// DEDUP1 is the condensed representation with duplicate paths removed
	// by edge surgery; traversal needs no hash set.
	DEDUP1
	// DEDUP2 is the single-layer symmetric optimization using undirected
	// edges between virtual nodes (members reach through a virtual node
	// and its 1-hop virtual neighborhood).
	DEDUP2
	// BITMAP is the condensed representation with per-virtual-node bitmaps
	// masking duplicate traversal paths.
	BITMAP
)

// String returns the paper's name for the representation.
func (m Mode) String() string {
	switch m {
	case CDUP:
		return "C-DUP"
	case EXP:
		return "EXP"
	case DEDUP1:
		return "DEDUP-1"
	case DEDUP2:
		return "DEDUP-2"
	case BITMAP:
		return "BITMAP"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// none marks the absence of a dense index.
const none int32 = -1

// Graph is the condensed graph storage core. All node references in the
// exported index-level API are dense indices: real nodes and virtual nodes
// live in separate index spaces.
//
// Adjacency uses the paper's CSR variant: per-node mutable in/out slices.
// Real-node deletion is lazy (Section 3.4): deleted vertices are tombstoned
// and skipped during iteration until Compact is called.
type Graph struct {
	mode Mode

	// SelfLoops controls whether a logical self edge u -> u (which arises
	// naturally from self-join extraction queries) is reported by
	// Neighbors and counted by LogicalEdges. The paper's analyses use
	// loop-free graphs, so the default is false.
	SelfLoops bool

	// Symmetric records that the logical graph is undirected (every edge
	// extracted in both directions); DEDUP-2 requires it.
	Symmetric bool

	// Real nodes.
	realID  []int64
	realIdx map[int64]int32
	props   []map[string]string
	dead    []bool
	numDead int

	outVirt [][]int32 // real -> virtual out-neighbors (u_s -> V)
	outReal [][]int32 // real -> direct real out-neighbors
	inVirt  [][]int32 // real -> virtual in-neighbors (V -> u_t)
	inReal  [][]int32 // real -> direct real in-neighbors

	// Virtual nodes.
	vLayer   []int32   // distance-from-source layer tag (1 = first layer)
	vIn      [][]int32 // real sources pointing at this virtual node
	vInVirt  [][]int32 // virtual sources pointing at this virtual node
	vOut     [][]int32 // real targets of this virtual node
	vOutVirt [][]int32 // virtual targets of this virtual node
	vDead    []bool
	vNumDead int

	// DEDUP-2: undirected virtual-virtual edges (stored on both sides).
	vUndir [][]int32

	// BITMAP: per virtual node, per traversal-origin real node, a bitmap
	// over the virtual node's outgoing edges (vOut entries first, then
	// vOutVirt entries). A missing bitmap means "traverse everything".
	bitmaps []map[int32]*bitset.Set

	// layerHint is an upper bound on MaxLayer maintained incrementally so
	// traversals can decide in O(1) whether multi-layer bookkeeping is
	// needed. Removing virtual nodes may leave it stale-high, which only
	// costs an unnecessary visited set, never correctness.
	layerHint int32
}

// New returns an empty condensed graph in the given representation mode.
func New(mode Mode) *Graph {
	return &Graph{mode: mode, realIdx: make(map[int64]int32)}
}

// Mode returns the representation mode of the graph.
func (g *Graph) Mode() Mode { return g.mode }

// SetMode changes the representation mode. It is used by deduplication
// algorithms after they have established the target representation's
// invariants; see internal/dedup.
func (g *Graph) SetMode(m Mode) { g.mode = m }

// NumRealNodes returns the number of live real nodes.
func (g *Graph) NumRealNodes() int { return len(g.realID) - g.numDead }

// NumRealSlots returns the number of dense real-node slots including
// tombstones; valid indices are [0, NumRealSlots).
func (g *Graph) NumRealSlots() int { return len(g.realID) }

// NumVirtualNodes returns the number of live virtual nodes.
func (g *Graph) NumVirtualNodes() int { return len(g.vLayer) - g.vNumDead }

// NumVirtualSlots returns the number of dense virtual-node slots including
// tombstones.
func (g *Graph) NumVirtualSlots() int { return len(g.vLayer) }

// Alive reports whether real index r is live.
func (g *Graph) Alive(r int32) bool {
	return r >= 0 && int(r) < len(g.dead) && !g.dead[r]
}

// VirtAlive reports whether virtual index v is live.
func (g *Graph) VirtAlive(v int32) bool {
	return v >= 0 && int(v) < len(g.vDead) && !g.vDead[v]
}

// AddRealNode adds a real node with the given external ID and returns its
// dense index. Adding a duplicate ID returns the existing index.
func (g *Graph) AddRealNode(id int64) int32 {
	if idx, ok := g.realIdx[id]; ok {
		return idx
	}
	idx := int32(len(g.realID))
	g.realID = append(g.realID, id)
	g.realIdx[id] = idx
	g.props = append(g.props, nil)
	g.dead = append(g.dead, false)
	g.outVirt = append(g.outVirt, nil)
	g.outReal = append(g.outReal, nil)
	g.inVirt = append(g.inVirt, nil)
	g.inReal = append(g.inReal, nil)
	return idx
}

// AddVirtualNode adds a virtual node in the given layer (1-based from the
// source side) and returns its dense index.
func (g *Graph) AddVirtualNode(layer int32) int32 {
	idx := int32(len(g.vLayer))
	if layer > g.layerHint {
		g.layerHint = layer
	}
	g.vLayer = append(g.vLayer, layer)
	g.vIn = append(g.vIn, nil)
	g.vInVirt = append(g.vInVirt, nil)
	g.vOut = append(g.vOut, nil)
	g.vOutVirt = append(g.vOutVirt, nil)
	g.vDead = append(g.vDead, false)
	g.vUndir = append(g.vUndir, nil)
	g.bitmaps = append(g.bitmaps, nil)
	return idx
}

// RealID returns the external ID of dense real index r.
func (g *Graph) RealID(r int32) int64 { return g.realID[r] }

// RealIndex returns the dense index of external ID id.
func (g *Graph) RealIndex(id int64) (int32, bool) {
	idx, ok := g.realIdx[id]
	return idx, ok
}

// VirtLayer returns the layer tag of virtual node v.
func (g *Graph) VirtLayer(v int32) int32 { return g.vLayer[v] }

// Property returns the named property of real index r.
func (g *Graph) Property(r int32, key string) (string, bool) {
	if g.props[r] == nil {
		return "", false
	}
	val, ok := g.props[r][key]
	return val, ok
}

// SetProperty sets a property on real index r.
func (g *Graph) SetProperty(r int32, key, value string) {
	if g.props[r] == nil {
		g.props[r] = make(map[string]string, 1)
	}
	g.props[r][key] = value
}

// Properties returns the property map of real index r (nil when the node has
// none). The returned map must not be mutated.
func (g *Graph) Properties(r int32) map[string]string { return g.props[r] }

// --- Edge construction (used by extraction, generators, and dedup) ---

// ConnectRealToVirt adds the edge u_s -> V.
func (g *Graph) ConnectRealToVirt(r, v int32) {
	g.outVirt[r] = append(g.outVirt[r], v)
	g.vIn[v] = append(g.vIn[v], r)
}

// ConnectVirtToReal adds the edge V -> u_t.
func (g *Graph) ConnectVirtToReal(v, r int32) {
	g.vOut[v] = append(g.vOut[v], r)
	g.inVirt[r] = append(g.inVirt[r], v)
}

// ConnectVirtToVirt adds the directed edge V -> W between virtual nodes.
func (g *Graph) ConnectVirtToVirt(v, w int32) {
	g.vOutVirt[v] = append(g.vOutVirt[v], w)
	g.vInVirt[w] = append(g.vInVirt[w], v)
}

// ConnectVirtUndirected adds the DEDUP-2 undirected edge V <-> W.
func (g *Graph) ConnectVirtUndirected(v, w int32) {
	g.vUndir[v] = append(g.vUndir[v], w)
	g.vUndir[w] = append(g.vUndir[w], v)
}

// AddDirectEdgeIdx adds the direct real edge u -> w.
func (g *Graph) AddDirectEdgeIdx(u, w int32) {
	g.outReal[u] = append(g.outReal[u], w)
	g.inReal[w] = append(g.inReal[w], u)
}

// AddMember adds real node r as both a source and a target of virtual node
// v, the common case for symmetric (undirected) extractions where
// I(V) == O(V).
func (g *Graph) AddMember(v, r int32) {
	g.ConnectRealToVirt(r, v)
	g.ConnectVirtToReal(v, r)
}

// --- Edge removal (used by deduplication algorithms) ---

func removeOne(s []int32, x int32) []int32 {
	for i, e := range s {
		if e == x {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

// DisconnectRealToVirt removes one u_s -> V edge.
func (g *Graph) DisconnectRealToVirt(r, v int32) {
	g.outVirt[r] = removeOne(g.outVirt[r], v)
	g.vIn[v] = removeOne(g.vIn[v], r)
}

// DisconnectVirtToReal removes one V -> u_t edge.
func (g *Graph) DisconnectVirtToReal(v, r int32) {
	g.vOut[v] = removeOne(g.vOut[v], r)
	g.inVirt[r] = removeOne(g.inVirt[r], v)
}

// DisconnectVirtToVirt removes one V -> W edge.
func (g *Graph) DisconnectVirtToVirt(v, w int32) {
	g.vOutVirt[v] = removeOne(g.vOutVirt[v], w)
	g.vInVirt[w] = removeOne(g.vInVirt[w], v)
}

// DisconnectVirtUndirected removes the undirected edge V <-> W.
func (g *Graph) DisconnectVirtUndirected(v, w int32) {
	g.vUndir[v] = removeOne(g.vUndir[v], w)
	g.vUndir[w] = removeOne(g.vUndir[w], v)
}

// RemoveDirectEdgeIdx removes one direct edge u -> w.
func (g *Graph) RemoveDirectEdgeIdx(u, w int32) {
	g.outReal[u] = removeOne(g.outReal[u], w)
	g.inReal[w] = removeOne(g.inReal[w], u)
}

// RemoveVirtualNode deletes a virtual node and all its edges.
func (g *Graph) RemoveVirtualNode(v int32) {
	for _, r := range g.vIn[v] {
		g.outVirt[r] = removeOne(g.outVirt[r], v)
	}
	for _, w := range g.vInVirt[v] {
		g.vOutVirt[w] = removeOne(g.vOutVirt[w], v)
	}
	for _, r := range g.vOut[v] {
		g.inVirt[r] = removeOne(g.inVirt[r], v)
	}
	for _, w := range g.vOutVirt[v] {
		g.vInVirt[w] = removeOne(g.vInVirt[w], v)
	}
	for _, w := range g.vUndir[v] {
		g.vUndir[w] = removeOne(g.vUndir[w], v)
	}
	g.vIn[v], g.vInVirt[v], g.vOut[v], g.vOutVirt[v], g.vUndir[v] = nil, nil, nil, nil, nil
	g.bitmaps[v] = nil
	if !g.vDead[v] {
		g.vDead[v] = true
		g.vNumDead++
	}
}

// --- Accessors for deduplication algorithms ---

// VirtSources returns the real sources I(V) of virtual node v. The returned
// slice must not be mutated.
func (g *Graph) VirtSources(v int32) []int32 { return g.vIn[v] }

// VirtTargets returns the real targets O(V) of virtual node v.
func (g *Graph) VirtTargets(v int32) []int32 { return g.vOut[v] }

// VirtOutVirt returns the virtual out-neighbors of virtual node v.
func (g *Graph) VirtOutVirt(v int32) []int32 { return g.vOutVirt[v] }

// VirtInVirt returns the virtual in-neighbors of virtual node v.
func (g *Graph) VirtInVirt(v int32) []int32 { return g.vInVirt[v] }

// VirtUndirected returns the DEDUP-2 undirected neighbors of v.
func (g *Graph) VirtUndirected(v int32) []int32 { return g.vUndir[v] }

// OutVirtuals returns the virtual out-neighbors of real node r.
func (g *Graph) OutVirtuals(r int32) []int32 { return g.outVirt[r] }

// InVirtuals returns the virtual in-neighbors of real node r.
func (g *Graph) InVirtuals(r int32) []int32 { return g.inVirt[r] }

// OutDirect returns the direct real out-neighbors of real node r.
func (g *Graph) OutDirect(r int32) []int32 { return g.outReal[r] }

// InDirect returns the direct real in-neighbors of real node r.
func (g *Graph) InDirect(r int32) []int32 { return g.inReal[r] }

// SetBitmap attaches a traversal bitmap for origin real node r at virtual
// node v. The bitmap indexes v's outgoing edges: vOut entries first,
// followed by vOutVirt entries.
func (g *Graph) SetBitmap(v, r int32, b *bitset.Set) {
	if g.bitmaps[v] == nil {
		g.bitmaps[v] = make(map[int32]*bitset.Set)
	}
	g.bitmaps[v][r] = b
}

// Bitmap returns the traversal bitmap for origin r at virtual node v.
func (g *Graph) Bitmap(v, r int32) (*bitset.Set, bool) {
	if g.bitmaps[v] == nil {
		return nil, false
	}
	b, ok := g.bitmaps[v][r]
	return b, ok
}

// RemoveBitmap drops the bitmap for origin r at virtual node v.
func (g *Graph) RemoveBitmap(v, r int32) {
	if g.bitmaps[v] != nil {
		delete(g.bitmaps[v], r)
	}
}

// ForEachBitmap calls fn for every (origin, bitmap) pair stored at virtual
// node v. Iteration order is unspecified.
func (g *Graph) ForEachBitmap(v int32, fn func(origin int32, b *bitset.Set)) {
	for origin, b := range g.bitmaps[v] {
		fn(origin, b)
	}
}

// NumBitmaps returns the total number of bitmaps stored in the graph.
func (g *Graph) NumBitmaps() int {
	n := 0
	for _, m := range g.bitmaps {
		n += len(m)
	}
	return n
}

// SortAdjacency sorts every adjacency slice. Sorted adjacency makes the
// overlap computations of the deduplication algorithms (Section 5.2) fast;
// the paper keeps neighbor lists in sorted order for the same reason.
func (g *Graph) SortAdjacency() {
	for r := range g.realID {
		sortSlice(g.outVirt[r])
		sortSlice(g.outReal[r])
		sortSlice(g.inVirt[r])
		sortSlice(g.inReal[r])
	}
	for v := range g.vLayer {
		sortSlice(g.vIn[v])
		sortSlice(g.vInVirt[v])
		sortSlice(g.vOut[v])
		sortSlice(g.vOutVirt[v])
		sortSlice(g.vUndir[v])
	}
}

func sortSlice(s []int32) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

// MaxLayer returns the maximum virtual-node layer (0 when the graph has no
// virtual nodes). A graph is multi-layer when MaxLayer > 1, i.e. it contains
// a directed path of length > 2 (Section 4.1).
func (g *Graph) MaxLayer() int32 {
	var max int32
	for v, l := range g.vLayer {
		if !g.vDead[v] && l > max {
			max = l
		}
	}
	g.layerHint = max
	return max
}

// multiLayer reports (in O(1), possibly conservatively) whether the graph
// may contain more than one layer of virtual nodes.
func (g *Graph) multiLayer() bool { return g.layerHint > 1 }

// Clone returns a deep copy of the graph. Benchmarks use it to run several
// deduplication algorithms from the same C-DUP starting point.
func (g *Graph) Clone() *Graph {
	ng := &Graph{
		mode:      g.mode,
		SelfLoops: g.SelfLoops,
		Symmetric: g.Symmetric,
		realID:    append([]int64(nil), g.realID...),
		realIdx:   make(map[int64]int32, len(g.realIdx)),
		props:     make([]map[string]string, len(g.props)),
		dead:      append([]bool(nil), g.dead...),
		numDead:   g.numDead,
		outVirt:   cloneAdj(g.outVirt),
		outReal:   cloneAdj(g.outReal),
		inVirt:    cloneAdj(g.inVirt),
		inReal:    cloneAdj(g.inReal),
		vLayer:    append([]int32(nil), g.vLayer...),
		vIn:       cloneAdj(g.vIn),
		vInVirt:   cloneAdj(g.vInVirt),
		vOut:      cloneAdj(g.vOut),
		vOutVirt:  cloneAdj(g.vOutVirt),
		vDead:     append([]bool(nil), g.vDead...),
		vNumDead:  g.vNumDead,
		vUndir:    cloneAdj(g.vUndir),
		bitmaps:   make([]map[int32]*bitset.Set, len(g.bitmaps)),
		layerHint: g.layerHint,
	}
	for id, idx := range g.realIdx {
		ng.realIdx[id] = idx
	}
	for i, p := range g.props {
		if p != nil {
			np := make(map[string]string, len(p))
			for k, v := range p {
				np[k] = v
			}
			ng.props[i] = np
		}
	}
	for i, m := range g.bitmaps {
		if m != nil {
			nm := make(map[int32]*bitset.Set, len(m))
			for k, b := range m {
				nm[k] = b.Clone()
			}
			ng.bitmaps[i] = nm
		}
	}
	return ng
}

func cloneAdj(a [][]int32) [][]int32 {
	na := make([][]int32, len(a))
	for i, s := range a {
		if s != nil {
			na[i] = append([]int32(nil), s...)
		}
	}
	return na
}
