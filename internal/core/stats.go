package core

// This file computes the size metrics reported throughout the paper's
// evaluation: representation (physical) edge counts, logical (expanded)
// edge counts, and estimated memory footprints.

// RepEdges returns the number of physical edges stored by the current
// representation: real->virtual, virtual->real, virtual->virtual (directed),
// direct real->real, plus DEDUP-2 undirected virtual-virtual edges (counted
// once). This is the "Edges" number of Figure 10 and Table 1.
func (g *Graph) RepEdges() int64 {
	var n int64
	for r := range g.realID {
		if g.dead[r] {
			continue
		}
		n += int64(len(g.outVirt[r])) + int64(len(g.outReal[r]))
	}
	var undir int64
	for v := range g.vLayer {
		if g.vDead[v] {
			continue
		}
		n += int64(len(g.vOut[v])) + int64(len(g.vOutVirt[v]))
		undir += int64(len(g.vUndir[v]))
	}
	return n + undir/2
}

// LogicalEdges returns the number of edges of the expanded graph, computed
// by iterating every live real node's deduplicated neighborhood. The paper
// obtains this count as a free side effect of its deduplication algorithms;
// here it doubles as a correctness oracle in tests.
func (g *Graph) LogicalEdges() int64 {
	var n int64
	g.ForEachReal(func(r int32) bool {
		g.ForNeighbors(r, func(int32) bool { n++; return true })
		return true
	})
	return n
}

// TotalNodes returns live real + virtual node counts (the "Nodes" bars of
// Figure 10).
func (g *Graph) TotalNodes() int { return g.NumRealNodes() + g.NumVirtualNodes() }

// MemBytes estimates the heap footprint of the representation, mirroring
// the memory columns of Tables 3 and 4. It accounts for node arrays, the
// vertex index, adjacency slices, property maps, and bitmaps.
func (g *Graph) MemBytes() int64 {
	const (
		sliceHeader = 24
		mapEntry    = 48 // rough per-entry cost of a small Go map
	)
	var b int64
	// Real node arrays: id (8), dead (1), 4 slice headers + elements.
	b += int64(len(g.realID)) * (8 + 1 + 4*sliceHeader)
	for r := range g.realID {
		b += int64(len(g.outVirt[r])+len(g.outReal[r])+len(g.inVirt[r])+len(g.inReal[r])) * 4
		if g.props[r] != nil {
			for k, v := range g.props[r] {
				b += int64(len(k)+len(v)) + mapEntry
			}
		}
	}
	b += int64(len(g.realIdx)) * mapEntry
	// Virtual node arrays.
	b += int64(len(g.vLayer)) * (4 + 1 + 5*sliceHeader)
	for v := range g.vLayer {
		b += int64(len(g.vIn[v])+len(g.vInVirt[v])+len(g.vOut[v])+len(g.vOutVirt[v])+len(g.vUndir[v])) * 4
		if g.bitmaps[v] != nil {
			for _, bm := range g.bitmaps[v] {
				b += int64(bm.MemBytes()) + mapEntry
			}
		}
	}
	return b
}

// AvgVirtualSize returns the average number of real targets per live virtual
// node (the "Avg Size" column of Table 2).
func (g *Graph) AvgVirtualSize() float64 {
	var sum, n int64
	g.ForEachVirtual(func(v int32) bool {
		sum += int64(len(g.vOut[v]))
		n++
		return true
	})
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// DuplicationStats reports, over all ordered real pairs with at least one
// path, the total number of physical paths and the number of duplicated
// pairs (pairs with more than one path). Single-layer graphs only; used by
// dedup orderings and by tests.
func (g *Graph) DuplicationStats() (paths int64, dupPairs int64) {
	counts := make(map[int64]int32)
	g.ForEachVirtual(func(v int32) bool {
		for _, s := range g.vIn[v] {
			for _, t := range g.vOut[v] {
				if s == t && !g.SelfLoops {
					continue
				}
				counts[pairKey(s, t)]++
			}
		}
		return true
	})
	g.ForEachReal(func(r int32) bool {
		for _, t := range g.outReal[r] {
			if r == t && !g.SelfLoops {
				continue
			}
			counts[pairKey(r, t)]++
		}
		return true
	})
	for _, c := range counts {
		paths += int64(c)
		if c > 1 {
			dupPairs++
		}
	}
	return paths, dupPairs
}

func pairKey(a, b int32) int64 { return int64(a)<<32 | int64(uint32(b)) }
