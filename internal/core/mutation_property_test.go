package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickMutationsAgainstModel drives random AddEdge/DeleteEdge/
// DeleteVertex/Compact sequences against a naive model (a map of edges) and
// checks that the condensed graph agrees with the model after every step.
// This exercises the "quite involved" virtual-edge surgery of DeleteEdge on
// condensed representations.
func TestQuickMutationsAgainstModel(t *testing.T) {
	f := func(seed int64, opsRaw []uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 12
		g := New(CDUP)
		g.Symmetric = true
		for i := int64(1); i <= n; i++ {
			g.AddRealNode(i)
		}
		// A few overlapping virtual nodes.
		for v := 0; v < 4; v++ {
			vn := g.AddVirtualNode(1)
			perm := rng.Perm(n)
			for _, m := range perm[:3+rng.Intn(4)] {
				g.AddMember(vn, int32(m))
			}
		}
		g.SortAdjacency()
		// Model: the logical edge set plus vertex liveness.
		model := make(map[[2]int64]bool)
		alive := make(map[int64]bool)
		for i := int64(1); i <= n; i++ {
			alive[i] = true
		}
		g.ForEachReal(func(r int32) bool {
			g.ForNeighbors(r, func(t int32) bool {
				model[[2]int64{g.RealID(r), g.RealID(t)}] = true
				return true
			})
			return true
		})
		check := func() bool {
			got := g.EdgeSetByID()
			if len(got) != len(model) {
				return false
			}
			for e := range got {
				if !model[e] {
					return false
				}
			}
			return true
		}
		liveIDs := func() []int64 {
			var out []int64
			for id, ok := range alive {
				if ok {
					out = append(out, id)
				}
			}
			return out
		}
		for _, op := range opsRaw {
			ids := liveIDs()
			if len(ids) < 2 {
				break
			}
			u := ids[rng.Intn(len(ids))]
			v := ids[rng.Intn(len(ids))]
			switch op % 4 {
			case 0: // AddEdge
				if u == v {
					continue
				}
				if err := g.AddEdge(u, v); err != nil {
					t.Logf("AddEdge(%d,%d): %v", u, v, err)
					return false
				}
				model[[2]int64{u, v}] = true
			case 1: // DeleteEdge (only existing ones)
				if !model[[2]int64{u, v}] {
					continue
				}
				if err := g.DeleteEdge(u, v); err != nil {
					t.Logf("DeleteEdge(%d,%d): %v", u, v, err)
					return false
				}
				delete(model, [2]int64{u, v})
			case 2: // DeleteVertex
				if err := g.DeleteVertex(u); err != nil {
					t.Logf("DeleteVertex(%d): %v", u, err)
					return false
				}
				alive[u] = false
				for e := range model {
					if e[0] == u || e[1] == u {
						delete(model, e)
					}
				}
			case 3: // Compact
				g.Compact()
			}
			if !check() {
				t.Logf("divergence after op %d on (%d,%d): graph %d edges, model %d",
					op%4, u, v, len(g.EdgeSetByID()), len(model))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
