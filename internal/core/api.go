package core

import (
	"fmt"

	"graphgen/internal/graphapi"
)

// This file adapts the dense-index core to the external-ID graph API of
// Section 3.4. *Graph satisfies graphapi.PropertyGraph.

var _ graphapi.PropertyGraph = (*Graph)(nil)

// Vertices returns an iterator over the external IDs of all live vertices.
func (g *Graph) Vertices() graphapi.Iterator {
	return &vertexIterator{g: g}
}

type vertexIterator struct {
	g   *Graph
	pos int32
}

func (it *vertexIterator) Next() (graphapi.NodeID, bool) {
	for int(it.pos) < len(it.g.realID) {
		r := it.pos
		it.pos++
		if !it.g.dead[r] {
			return it.g.realID[r], true
		}
	}
	return 0, false
}

// Neighbors returns an iterator over the logical out-neighbors of vertex v.
// The iteration is materialized eagerly: the paper's lazy iterators save
// memory during partial scans, but an eager slice keeps the deduplication
// hash set short-lived, which its C-DUP garbage-collection analysis
// (Section 4.3) identifies as the dominant cost.
func (g *Graph) Neighbors(v graphapi.NodeID) graphapi.Iterator {
	r, ok := g.realIdx[v]
	if !ok {
		return graphapi.NewSliceIterator(nil)
	}
	ids := make([]graphapi.NodeID, 0, 8)
	g.ForNeighbors(r, func(t int32) bool {
		ids = append(ids, g.realID[t])
		return true
	})
	return graphapi.NewSliceIterator(ids)
}

// ExistsEdge reports whether the logical edge u -> v exists.
func (g *Graph) ExistsEdge(u, v graphapi.NodeID) bool {
	ui, ok := g.realIdx[u]
	if !ok {
		return false
	}
	vi, ok := g.realIdx[v]
	if !ok {
		return false
	}
	return g.HasEdgeIdx(ui, vi)
}

// AddVertex implements graphapi.Graph.
func (g *Graph) AddVertex(v graphapi.NodeID) error { return g.AddVertexID(v) }

// DeleteVertex implements graphapi.Graph.
func (g *Graph) DeleteVertex(v graphapi.NodeID) error { return g.DeleteVertexID(v) }

// AddEdge implements graphapi.Graph.
func (g *Graph) AddEdge(u, v graphapi.NodeID) error {
	ui, ok := g.realIdx[u]
	if !ok {
		return fmt.Errorf("graphgen: vertex %d not found", u)
	}
	vi, ok := g.realIdx[v]
	if !ok {
		return fmt.Errorf("graphgen: vertex %d not found", v)
	}
	return g.AddEdgeIdx(ui, vi)
}

// DeleteEdge implements graphapi.Graph.
func (g *Graph) DeleteEdge(u, v graphapi.NodeID) error {
	ui, ok := g.realIdx[u]
	if !ok {
		return fmt.Errorf("graphgen: vertex %d not found", u)
	}
	vi, ok := g.realIdx[v]
	if !ok {
		return fmt.Errorf("graphgen: vertex %d not found", v)
	}
	return g.DeleteEdgeIdx(ui, vi)
}

// NumVertices implements graphapi.Graph.
func (g *Graph) NumVertices() int { return g.NumRealNodes() }

// PropertyOf returns the named property of vertex v by external ID.
func (g *Graph) PropertyOf(v graphapi.NodeID, key string) (string, bool) {
	r, ok := g.realIdx[v]
	if !ok {
		return "", false
	}
	return g.Property(r, key)
}

// SetPropertyOf sets the named property of vertex v by external ID.
func (g *Graph) SetPropertyOf(v graphapi.NodeID, key, value string) error {
	r, ok := g.realIdx[v]
	if !ok {
		return fmt.Errorf("graphgen: vertex %d not found", v)
	}
	g.SetProperty(r, key, value)
	return nil
}
