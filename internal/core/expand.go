package core

import (
	"errors"

	"graphgen/internal/parallel"
)

// This file implements (a) the Step-6 preprocessing of Section 4.2 — expand
// every virtual node whose expansion does not increase the edge count
// meaningfully — and (b) full expansion into the EXP representation, with a
// memory guard standing in for the paper's out-of-memory DNF cases.

// ErrTooLarge is returned when expansion would exceed the configured edge
// budget. It models the paper's "did not finish / > 64GB" outcomes for EXP
// on dense datasets (Table 3).
var ErrTooLarge = errors.New("graphgen: expanded graph exceeds the memory budget")

// PreprocessExpandSmall applies the paper's preprocessing rule: a virtual
// node V with in incoming and out outgoing edges is expanded (removed, with
// direct in->out edges added) when in*out <= in+out+1. The scan over virtual
// nodes is parallelized across workers; mutations are applied serially to
// keep adjacency surgery race-free (the paper notes its multi-threaded
// implementation needed non-trivial concurrency control for the same
// reason). Returns the number of virtual nodes expanded.
func (g *Graph) PreprocessExpandSmall(workers int) int {
	// Parallel phase: decide which virtual nodes qualify.
	n := len(g.vLayer)
	candidates := make([]bool, n)
	parallel.Run(n, workers, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			if g.vDead[v] {
				continue
			}
			in := len(g.vIn[v]) + len(g.vInVirt[v])
			out := len(g.vOut[v]) + len(g.vOutVirt[v])
			if in*out <= in+out+1 {
				candidates[v] = true
			}
		}
	})
	// Serial phase: apply the expansions. Expanding one node can change
	// the degree of another, so each candidate is re-checked.
	expanded := 0
	for v := int32(0); int(v) < n; v++ {
		if !candidates[v] || g.vDead[v] {
			continue
		}
		in := len(g.vIn[v]) + len(g.vInVirt[v])
		out := len(g.vOut[v]) + len(g.vOutVirt[v])
		if in*out > in+out+1 {
			continue
		}
		g.expandVirtualNode(v)
		expanded++
	}
	return expanded
}

// expandVirtualNode removes virtual node v and connects every in-neighbor
// to every out-neighbor directly, preserving the path structure.
func (g *Graph) expandVirtualNode(v int32) {
	ins := append([]int32(nil), g.vIn[v]...)
	insV := append([]int32(nil), g.vInVirt[v]...)
	outs := append([]int32(nil), g.vOut[v]...)
	outsV := append([]int32(nil), g.vOutVirt[v]...)
	g.RemoveVirtualNode(v)
	for _, s := range ins {
		for _, t := range outs {
			g.AddDirectEdgeIdx(s, t)
		}
		for _, w := range outsV {
			g.ConnectRealToVirt(s, w)
		}
	}
	for _, sv := range insV {
		for _, t := range outs {
			g.ConnectVirtToReal(sv, t)
		}
		for _, w := range outsV {
			g.ConnectVirtToVirt(sv, w)
		}
	}
}

// FlattenToSingleLayer converts a multi-layer condensed graph into an
// equivalent single-layer one by expanding every virtual node that has
// virtual out-neighbors, leaving only the final (penultimate-to-target)
// layer — the conversion Section 5.2.2 suggests before running the
// single-layer deduplication algorithms. maxEdges bounds the growth
// (0 = unlimited); on overflow the graph is left partially flattened but
// still equivalent, and ErrTooLarge is returned.
func (g *Graph) FlattenToSingleLayer(maxEdges int64) error {
	for {
		expanded := false
		for v := int32(0); int(v) < len(g.vLayer); v++ {
			if g.vDead[v] || len(g.vOutVirt[v]) == 0 {
				continue
			}
			g.expandVirtualNode(v)
			expanded = true
		}
		if !expanded {
			break
		}
		if maxEdges > 0 && g.RepEdges() > maxEdges {
			return ErrTooLarge
		}
	}
	for v := int32(0); int(v) < len(g.vLayer); v++ {
		if !g.vDead[v] {
			g.vLayer[v] = 1
		}
	}
	g.layerHint = 1
	return nil
}

// ExpandedEdgeCount computes the number of edges the EXP representation
// would have, without materializing it. The paper computes this for free as
// a side effect of deduplication and uses it to decide whether to expand.
func (g *Graph) ExpandedEdgeCount() int64 { return g.LogicalEdges() }

// Expand materializes the fully expanded graph (EXP). maxEdges bounds the
// number of expanded edges; 0 means unlimited. On overflow it returns
// ErrTooLarge, modelling the paper's infeasible-EXP cases.
func (g *Graph) Expand(maxEdges int64) (*Graph, error) {
	ng := New(EXP)
	ng.SelfLoops = g.SelfLoops
	ng.Symmetric = g.Symmetric
	g.ForEachReal(func(r int32) bool {
		nr := ng.AddRealNode(g.realID[r])
		if g.props[r] != nil {
			for k, v := range g.props[r] {
				ng.SetProperty(nr, k, v)
			}
		}
		return true
	})
	var count int64
	var overflow bool
	g.ForEachReal(func(r int32) bool {
		nr, _ := ng.RealIndex(g.realID[r])
		g.ForNeighbors(r, func(t int32) bool {
			nt, _ := ng.RealIndex(g.realID[t])
			ng.AddDirectEdgeIdx(nr, nt)
			count++
			if maxEdges > 0 && count > maxEdges {
				overflow = true
				return false
			}
			return true
		})
		return !overflow
	})
	if overflow {
		return nil, ErrTooLarge
	}
	return ng, nil
}
