package core

import "fmt"

// This file implements the mutating half of the Graph API (Section 3.4):
// AddVertex, DeleteVertex (lazy), AddEdge, DeleteEdge, and the batch
// compaction that physically removes tombstoned vertices.

// AddVertexID adds an isolated real vertex with the given external ID.
func (g *Graph) AddVertexID(id int64) error {
	if _, ok := g.realIdx[id]; ok {
		return fmt.Errorf("graphgen: vertex %d already exists", id)
	}
	g.AddRealNode(id)
	return nil
}

// DeleteVertexID logically removes the vertex with external ID id: it is
// dropped from the vertex index immediately and tombstoned, and physically
// removed later in batch by Compact (the paper's lazy deletion mechanism,
// Section 3.4, which avoids rebuilding the vertex index per deletion).
func (g *Graph) DeleteVertexID(id int64) error {
	r, ok := g.realIdx[id]
	if !ok {
		return fmt.Errorf("graphgen: vertex %d not found", id)
	}
	delete(g.realIdx, id)
	if !g.dead[r] {
		g.dead[r] = true
		g.numDead++
	}
	return nil
}

// DeletedFraction returns the fraction of real-node slots that are
// tombstoned; callers can use it to trigger Compact.
func (g *Graph) DeletedFraction() float64 {
	if len(g.realID) == 0 {
		return 0
	}
	return float64(g.numDead) / float64(len(g.realID))
}

// AddEdgeIdx adds the logical edge u -> w as a direct edge. It is
// idempotent: if the logical edge already exists (directly or through a
// virtual path — C-DUP included), nothing is added, so a later DeleteEdge
// removes the edge completely.
func (g *Graph) AddEdgeIdx(u, w int32) error {
	if !g.Alive(u) || !g.Alive(w) {
		return fmt.Errorf("graphgen: AddEdge on missing vertex")
	}
	if g.HasEdgeIdx(u, w) {
		return nil
	}
	g.AddDirectEdgeIdx(u, w)
	return nil
}

// DeleteEdgeIdx removes the logical edge u -> w while preserving every other
// logical edge. For a direct edge this is list surgery. For an edge realized
// through shared virtual nodes the operation is the "quite involved" case
// the paper describes: u's source side is detached from its virtual nodes
// and replaced by direct edges to its remaining logical neighbors.
func (g *Graph) DeleteEdgeIdx(u, w int32) error {
	if !g.Alive(u) || !g.Alive(w) {
		return fmt.Errorf("graphgen: DeleteEdge on missing vertex")
	}
	if !g.HasEdgeIdx(u, w) {
		return fmt.Errorf("graphgen: edge %d -> %d not found", g.realID[u], g.realID[w])
	}
	if g.mode == DEDUP2 {
		return g.deleteEdgeDedup2(u, w)
	}
	// Fast path: the edge is direct (it may ALSO exist through a virtual
	// path in C-DUP, in which case the slow path below is still needed).
	hadDirect := false
	for _, t := range g.outReal[u] {
		if t == w {
			hadDirect = true
			break
		}
	}
	viaVirtual := g.reachableViaVirtual(u, w)
	if hadDirect {
		g.RemoveDirectEdgeIdx(u, w)
	}
	if !viaVirtual {
		return nil
	}
	// Detach u's out side: collect the current logical neighborhood,
	// disconnect u from all its virtual nodes, and re-add every neighbor
	// except w as a direct edge (skipping ones already direct).
	neighbors := g.NeighborsIdx(u)
	for _, v := range append([]int32(nil), g.outVirt[u]...) {
		g.DisconnectRealToVirt(u, v)
	}
	have := make(map[int32]struct{}, len(g.outReal[u]))
	for _, t := range g.outReal[u] {
		have[t] = struct{}{}
	}
	for _, t := range neighbors {
		if t == w {
			continue
		}
		if _, ok := have[t]; ok {
			continue
		}
		have[t] = struct{}{}
		g.AddDirectEdgeIdx(u, t)
	}
	return nil
}

// reachableViaVirtual reports whether w is reachable from u through at least
// one virtual path (ignoring direct edges).
func (g *Graph) reachableViaVirtual(u, w int32) bool {
	if g.mode == DEDUP2 {
		for _, v := range g.outVirt[u] {
			if containsSorted(g.vOut[v], w) {
				return true
			}
			for _, x := range g.vUndir[v] {
				if containsSorted(g.vOut[x], w) {
					return true
				}
			}
		}
		return false
	}
	var seenVirt map[int32]struct{}
	if g.multiLayer() {
		seenVirt = make(map[int32]struct{}, 8)
	}
	var stack []int32
	stack = append(stack, g.outVirt[u]...)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seenVirt != nil {
			if _, dup := seenVirt[v]; dup {
				continue
			}
			seenVirt[v] = struct{}{}
		}
		if containsSorted(g.vOut[v], w) {
			return true
		}
		stack = append(stack, g.vOutVirt[v]...)
	}
	return false
}

// deleteEdgeDedup2 removes the undirected logical edge u <-> w in a DEDUP-2
// graph. The representation is symmetric, so both directions go. The paper
// notes deletion here is cheap because a real node connects to few virtual
// nodes; we detach u from the virtual node realizing the edge and patch the
// lost connectivity with direct (undirected) edges.
func (g *Graph) deleteEdgeDedup2(u, w int32) error {
	// Direct edge case.
	for _, t := range g.outReal[u] {
		if t == w {
			g.RemoveDirectEdgeIdx(u, w)
			g.RemoveDirectEdgeIdx(w, u)
			return nil
		}
	}
	neighbors := g.NeighborsIdx(u)
	// Detach u from every virtual node it belongs to (membership = both
	// in and out edges), then re-add all former neighbors except w as
	// undirected direct edges.
	for _, v := range append([]int32(nil), g.outVirt[u]...) {
		g.DisconnectRealToVirt(u, v)
		g.DisconnectVirtToReal(v, u)
	}
	have := make(map[int32]struct{}, len(g.outReal[u]))
	for _, t := range g.outReal[u] {
		have[t] = struct{}{}
	}
	for _, t := range neighbors {
		if t == w {
			continue
		}
		if _, ok := have[t]; ok {
			continue
		}
		have[t] = struct{}{}
		g.AddDirectEdgeIdx(u, t)
		g.AddDirectEdgeIdx(t, u)
	}
	return nil
}

// NormalizeDirects removes every direct edge that duplicates a virtual
// path (the logical edge survives through the virtual node). Deduplication
// algorithms call it on their working copy so that direct-vs-virtual
// duplication is eliminated up front and only virtual-virtual duplication
// remains for them to resolve. Returns the number of edges removed.
func (g *Graph) NormalizeDirects() int {
	removed := 0
	g.ForEachReal(func(u int32) bool {
		for _, w := range append([]int32(nil), g.outReal[u]...) {
			if g.reachableViaVirtual(u, w) {
				g.RemoveDirectEdgeIdx(u, w)
				removed++
			}
		}
		return true
	})
	return removed
}

// Compact physically removes tombstoned real vertices: adjacency entries
// pointing at dead vertices are dropped and the dense index is rebuilt.
// This is the batched second half of lazy deletion.
func (g *Graph) Compact() {
	if g.numDead == 0 {
		return
	}
	// Remap old dense indices to new ones.
	remap := make([]int32, len(g.realID))
	var n int32
	for r := range g.realID {
		if g.dead[r] {
			remap[r] = none
		} else {
			remap[r] = n
			n++
		}
	}
	filter := func(s []int32) []int32 {
		out := s[:0]
		for _, e := range s {
			if remap[e] != none {
				out = append(out, remap[e])
			}
		}
		return out
	}
	// Virtual adjacency referencing real nodes.
	for v := range g.vLayer {
		if g.vDead[v] {
			continue
		}
		g.vIn[v] = filter(g.vIn[v])
		g.vOut[v] = filter(g.vOut[v])
		if g.bitmaps[v] != nil {
			// Bitmaps index positions in vOut, which just changed,
			// and are keyed by origin indices, which also changed.
			// Dropping them is safe for C-DUP semantics; BITMAP
			// graphs must be re-deduplicated after Compact.
			g.bitmaps[v] = nil
		}
	}
	// Real-node arrays.
	newID := make([]int64, 0, n)
	newProps := make([]map[string]string, 0, n)
	newOutVirt := make([][]int32, 0, n)
	newOutReal := make([][]int32, 0, n)
	newInVirt := make([][]int32, 0, n)
	newInReal := make([][]int32, 0, n)
	for r := range g.realID {
		if g.dead[r] {
			continue
		}
		newID = append(newID, g.realID[r])
		newProps = append(newProps, g.props[r])
		newOutVirt = append(newOutVirt, g.outVirt[r])
		newOutReal = append(newOutReal, filter(g.outReal[r]))
		newInVirt = append(newInVirt, g.inVirt[r])
		newInReal = append(newInReal, filter(g.inReal[r]))
	}
	g.realID, g.props = newID, newProps
	g.outVirt, g.outReal, g.inVirt, g.inReal = newOutVirt, newOutReal, newInVirt, newInReal
	g.dead = make([]bool, n)
	g.numDead = 0
	g.realIdx = make(map[int64]int32, n)
	for r, id := range g.realID {
		g.realIdx[id] = int32(r)
	}
	// Drop virtual nodes that lost all sources or targets.
	for v := int32(0); int(v) < len(g.vLayer); v++ {
		if g.vDead[v] {
			continue
		}
		if len(g.vIn[v])+len(g.vInVirt[v]) == 0 || len(g.vOut[v])+len(g.vOutVirt[v]) == 0 {
			if g.mode == DEDUP2 && len(g.vOut[v]) > 0 {
				continue // DEDUP-2 members are reachable via undirected hops
			}
			g.RemoveVirtualNode(v)
		}
	}
}
